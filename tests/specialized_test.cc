#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ir/indexing.h"
#include "ir/ranking.h"
#include "specialized/inverted_index.h"
#include "storage/relation.h"

namespace spindle {
namespace {

RelationPtr TinyDocs() {
  RelationBuilder b({{"docID", DataType::kInt64},
                     {"data", DataType::kString}});
  EXPECT_TRUE(
      b.AddRow({int64_t{1}, std::string("the cat sat on the mat")}).ok());
  EXPECT_TRUE(
      b.AddRow({int64_t{2}, std::string("The dog chased the cat")}).ok());
  EXPECT_TRUE(b.AddRow({int64_t{3}, std::string("Dogs and cats")}).ok());
  return b.Build().ValueOrDie();
}

TEST(SpecializedIndexTest, BuildStats) {
  Analyzer a = Analyzer::Make({}).ValueOrDie();
  auto idx = SpecializedIndex::Build(TinyDocs(), a).ValueOrDie();
  EXPECT_EQ(idx.num_docs(), 3);
  EXPECT_NEAR(idx.avg_doc_len(), 14.0 / 3.0, 1e-12);
  EXPECT_EQ(idx.num_terms(), 8);
}

TEST(SpecializedIndexTest, PostingsLookup) {
  Analyzer a = Analyzer::Make({}).ValueOrDie();
  auto idx = SpecializedIndex::Build(TinyDocs(), a).ValueOrDie();
  const auto* cat = idx.PostingsFor("cat");
  ASSERT_NE(cat, nullptr);
  EXPECT_EQ(cat->size(), 3u);
  const auto* the = idx.PostingsFor("the");
  ASSERT_NE(the, nullptr);
  EXPECT_EQ(the->size(), 2u);
  EXPECT_EQ(idx.PostingsFor("zebra"), nullptr);
}

TEST(SpecializedIndexTest, SearchReturnsSortedTopK) {
  Analyzer a = Analyzer::Make({}).ValueOrDie();
  auto idx = SpecializedIndex::Build(TinyDocs(), a).ValueOrDie();
  auto hits = idx.SearchBm25("sat mat cat", 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_GE(hits[0].score, hits[1].score);
  EXPECT_EQ(hits[0].doc_id, 1);  // only d1 has sat+mat
}

TEST(SpecializedIndexTest, EmptyQuery) {
  Analyzer a = Analyzer::Make({}).ValueOrDie();
  auto idx = SpecializedIndex::Build(TinyDocs(), a).ValueOrDie();
  EXPECT_TRUE(idx.SearchBm25("zebra", 10).empty());
}

/// Deterministic synthetic corpus: `ndocs` documents over a small word
/// pool with skewed frequencies.
RelationPtr SyntheticDocs(int ndocs, uint64_t seed) {
  static const char* kPool[] = {
      "database", "retrieval", "column",  "store",   "index",  "query",
      "term",     "document",  "ranking", "search",  "triple", "graph",
      "auction",  "lot",       "score",   "probability"};
  constexpr int kPoolSize = 16;
  Rng rng(seed);
  ZipfSampler zipf(kPoolSize, 1.0);
  RelationBuilder b({{"docID", DataType::kInt64},
                     {"data", DataType::kString}});
  for (int d = 0; d < ndocs; ++d) {
    int len = 3 + static_cast<int>(rng.NextBounded(15));
    std::string text;
    for (int i = 0; i < len; ++i) {
      if (i > 0) text += ' ';
      text += kPool[zipf.Sample(rng) - 1];
    }
    EXPECT_TRUE(b.AddRow({int64_t{d + 1}, text}).ok());
  }
  return b.Build().ValueOrDie();
}

/// Cross-implementation property: the IR-on-DB relational BM25 and the
/// specialized engine produce identical scores for every document.
class CrossCheckBm25 : public ::testing::TestWithParam<int> {};

TEST_P(CrossCheckBm25, RelationalEqualsSpecialized) {
  RelationPtr docs = SyntheticDocs(GetParam(), 42 + GetParam());
  Analyzer a = Analyzer::Make({}).ValueOrDie();
  auto rel_idx = TextIndex::Build(docs, a).ValueOrDie();
  auto spec_idx = SpecializedIndex::Build(docs, a).ValueOrDie();

  for (const char* query :
       {"database retrieval", "column store index", "auction lot score",
        "probability", "database database query"}) {
    RelationPtr q = rel_idx->QueryTerms(query).ValueOrDie();
    RelationPtr ranked = RankBm25(*rel_idx, q).ValueOrDie();
    std::map<int64_t, double> rel_scores;
    for (size_t r = 0; r < ranked->num_rows(); ++r) {
      rel_scores[ranked->column(0).Int64At(r)] =
          ranked->column(1).Float64At(r);
    }
    auto spec_hits = spec_idx.SearchBm25(query, /*k=*/1u << 20);
    ASSERT_EQ(spec_hits.size(), rel_scores.size()) << query;
    for (const auto& hit : spec_hits) {
      auto it = rel_scores.find(hit.doc_id);
      ASSERT_NE(it, rel_scores.end()) << query << " doc " << hit.doc_id;
      EXPECT_NEAR(it->second, hit.score, 1e-9) << query;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CorpusSizes, CrossCheckBm25,
                         ::testing::Values(5, 25, 100, 400));

TEST(CrossCheckBm25Params, NonDefaultParamsAgree) {
  RelationPtr docs = SyntheticDocs(60, 7);
  Analyzer a = Analyzer::Make({}).ValueOrDie();
  auto rel_idx = TextIndex::Build(docs, a).ValueOrDie();
  auto spec_idx = SpecializedIndex::Build(docs, a).ValueOrDie();
  Bm25Params params{0.9, 0.4};
  RelationPtr q = rel_idx->QueryTerms("index query term").ValueOrDie();
  RelationPtr ranked = RankBm25(*rel_idx, q, params).ValueOrDie();
  std::map<int64_t, double> rel_scores;
  for (size_t r = 0; r < ranked->num_rows(); ++r) {
    rel_scores[ranked->column(0).Int64At(r)] =
        ranked->column(1).Float64At(r);
  }
  auto spec_hits = spec_idx.SearchBm25("index query term", 1u << 20, params);
  ASSERT_EQ(spec_hits.size(), rel_scores.size());
  for (const auto& hit : spec_hits) {
    EXPECT_NEAR(rel_scores[hit.doc_id], hit.score, 1e-9);
  }
}

}  // namespace
}  // namespace spindle
