#include <gtest/gtest.h>

#include <map>

#include "strategy/prebuilt.h"
#include "strategy/strategy.h"
#include "workload/graph_gen.h"

namespace spindle {
namespace strategy {
namespace {

std::map<std::string, double> ById(const ProbRelation& rel) {
  std::map<std::string, double> out;
  for (size_t r = 0; r < rel.num_rows(); ++r) {
    out[rel.rel()->column(0).StringAt(r)] = rel.prob_at(r);
  }
  return out;
}

/// Hand-crafted catalog for the toy scenario.
void RegisterToyCatalog(Catalog* catalog) {
  TripleStore store;
  auto product = [&](const std::string& id, const std::string& cat,
                     const std::string& desc) {
    store.Add(id, "type", "product");
    store.Add(id, "category", cat);
    store.Add(id, "description", desc);
  };
  product("prod1", "toy", "a wooden train set for children");
  product("prod2", "toy", "remote controlled racing car");
  product("prod3", "book", "history of wooden ships");
  product("prod4", "toy", "plush bear");
  ASSERT_TRUE(store.RegisterInto(*catalog).ok());
}

/// Hand-crafted auction graph. Large enough that single-document terms
/// have positive BM25 idf (idf = ln((N - df + 0.5)/(df + 0.5)) needs
/// N >= 2 per matching document).
void RegisterAuctionCatalog(Catalog* catalog) {
  TripleStore store;
  auto lot = [&](const std::string& id, const std::string& desc,
                 const std::string& auction) {
    store.Add(id, "type", "lot");
    store.Add(id, "description", desc);
    store.Add(id, "hasAuction", auction);
  };
  auto auction = [&](const std::string& id, const std::string& desc) {
    store.Add(id, "type", "auction");
    store.Add(id, "description", desc);
  };
  auction("auction1", "estate sale of antique furniture");
  auction("auction2", "modern art collection");
  auction("auction3", "rare coins and stamps");
  auction("auction4", "garden tools clearance");
  lot("lot1", "antique oak table", "auction1");
  lot("lot2", "silver spoon", "auction1");
  lot("lot3", "abstract painting", "auction2");
  lot("lot4", "roman coin", "auction3");
  lot("lot5", "steel shovel", "auction4");
  lot("lot6", "hedge trimmer", "auction4");
  ASSERT_TRUE(store.RegisterInto(*catalog).ok());
}

TEST(StrategyGraphTest, AddValidatesArity) {
  Strategy s;
  EXPECT_FALSE(s.Add(MakeTopKBlock(3)).ok());  // needs one input
  int src = s.Add(MakeSelectByTypeBlock("lot")).ValueOrDie();
  EXPECT_TRUE(s.Add(MakeTopKBlock(3), {src}).ok());
  EXPECT_FALSE(s.Add(MakeTopKBlock(3), {42}).ok());  // unknown id
}

TEST(StrategyGraphTest, DescribeListsBlocks) {
  Strategy s = MakeToyStrategy().ValueOrDie();
  std::string desc = s.Describe();
  EXPECT_NE(desc.find("Select type product"), std::string::npos);
  EXPECT_NE(desc.find("Rank by Text bm25"), std::string::npos);
  EXPECT_NE(desc.find("Top 10"), std::string::npos);
}

TEST(StrategyGraphTest, CompileProducesSpinql) {
  Strategy s = MakeToyStrategy().ValueOrDie();
  spinql::Program p = s.Compile().ValueOrDie();
  std::string text = p.ToString();
  // The combined program contains the blocks' SpinQL fragments.
  EXPECT_NE(text.find("SELECT [and(eq($2, \"type\"), eq($3, \"product\"))]"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("RANK BM25"), std::string::npos);
  EXPECT_NE(text.find("TOPK [10]"), std::string::npos);
}

TEST(StrategyGraphTest, EmptyStrategyRejected) {
  Strategy s;
  EXPECT_FALSE(s.Compile().ok());
}

TEST(ToyStrategyTest, EndToEnd) {
  Catalog catalog;
  RegisterToyCatalog(&catalog);
  MaterializationCache cache(64 << 20);
  StrategyExecutor exec(&catalog, &cache);
  Strategy s = MakeToyStrategy().ValueOrDie();

  ProbRelation hits = exec.Run(s, "wooden").ValueOrDie();
  auto by_id = ById(hits);
  // Only toy products are searched: prod3 ("history of wooden ships") is
  // a book and must not appear even though it matches the keyword.
  ASSERT_EQ(by_id.size(), 1u);
  EXPECT_TRUE(by_id.count("prod1"));
}

TEST(ToyStrategyTest, CategoryParameter) {
  Catalog catalog;
  RegisterToyCatalog(&catalog);
  MaterializationCache cache(64 << 20);
  StrategyExecutor exec(&catalog, &cache);
  ToyStrategyOptions opts;
  opts.category = "book";
  Strategy s = MakeToyStrategy(opts).ValueOrDie();
  ProbRelation hits = exec.Run(s, "wooden").ValueOrDie();
  auto by_id = ById(hits);
  ASSERT_EQ(by_id.size(), 1u);
  EXPECT_TRUE(by_id.count("prod3"));
}

TEST(ToyStrategyTest, HotRequestsReuseIndex) {
  Catalog catalog;
  RegisterToyCatalog(&catalog);
  MaterializationCache cache(64 << 20);
  StrategyExecutor exec(&catalog, &cache);
  Strategy s = MakeToyStrategy().ValueOrDie();
  ASSERT_TRUE(exec.Run(s, "wooden train").ok());
  ASSERT_TRUE(exec.Run(s, "racing car").ok());
  ASSERT_TRUE(exec.Run(s, "plush bear").ok());
  EXPECT_EQ(exec.evaluator().stats().index_misses, 1u);
  EXPECT_EQ(exec.evaluator().stats().index_hits, 2u);
}

TEST(AuctionStrategyTest, LeftBranchFindsLotByOwnDescription) {
  Catalog catalog;
  RegisterAuctionCatalog(&catalog);
  MaterializationCache cache(64 << 20);
  StrategyExecutor exec(&catalog, &cache);
  Strategy s = MakeAuctionStrategy().ValueOrDie();
  ProbRelation hits = exec.Run(s, "silver spoon").ValueOrDie();
  auto by_id = ById(hits);
  ASSERT_TRUE(by_id.count("lot2"));
  // lot2 should be the top result.
  EXPECT_EQ(hits.rel()->column(0).StringAt(0), "lot2");
}

TEST(AuctionStrategyTest, RightBranchPropagatesAuctionScores) {
  Catalog catalog;
  RegisterAuctionCatalog(&catalog);
  MaterializationCache cache(64 << 20);
  StrategyExecutor exec(&catalog, &cache);
  Strategy s = MakeAuctionStrategy().ValueOrDie();
  // "estate furniture" matches only auction1's description; both its lots
  // inherit the score through the backward traversal.
  ProbRelation hits = exec.Run(s, "estate furniture").ValueOrDie();
  auto by_id = ById(hits);
  EXPECT_TRUE(by_id.count("lot1"));
  EXPECT_TRUE(by_id.count("lot2"));
  EXPECT_FALSE(by_id.count("lot3"));
  // Both lots inherit the same auction score, scaled by the mix weight.
  EXPECT_NEAR(by_id["lot1"], by_id["lot2"], 1e-12);
}

TEST(AuctionStrategyTest, MixWeightsChangeRanking) {
  Catalog catalog;
  RegisterAuctionCatalog(&catalog);
  MaterializationCache cache(64 << 20);
  StrategyExecutor exec(&catalog, &cache);

  // "antique" matches lot1's own description AND auction1's description.
  AuctionStrategyOptions lot_heavy;
  lot_heavy.lot_weight = 1.0;
  lot_heavy.auction_weight = 0.0;
  Strategy s1 = MakeAuctionStrategy(lot_heavy).ValueOrDie();
  auto r1 = ById(exec.Run(s1, "antique").ValueOrDie());
  // With no auction branch, lot2 (same auction, no own match) scores 0
  // and is absent or zero.
  EXPECT_GT(r1["lot1"], 0.0);
  EXPECT_DOUBLE_EQ(r1.count("lot2") ? r1["lot2"] : 0.0, 0.0);

  AuctionStrategyOptions auction_heavy;
  auction_heavy.lot_weight = 0.0;
  auction_heavy.auction_weight = 1.0;
  Strategy s2 = MakeAuctionStrategy(auction_heavy).ValueOrDie();
  auto r2 = ById(exec.Run(s2, "antique").ValueOrDie());
  // Pure auction branch: lot1 and lot2 (same auction) tie.
  ASSERT_TRUE(r2.count("lot1"));
  ASSERT_TRUE(r2.count("lot2"));
  EXPECT_NEAR(r2["lot1"], r2["lot2"], 1e-12);
}

TEST(AuctionStrategyTest, MixIsLinear) {
  Catalog catalog;
  RegisterAuctionCatalog(&catalog);
  MaterializationCache cache(64 << 20);
  StrategyExecutor exec(&catalog, &cache);
  auto run = [&](double wl, double wr) {
    AuctionStrategyOptions o;
    o.lot_weight = wl;
    o.auction_weight = wr;
    Strategy s = MakeAuctionStrategy(o).ValueOrDie();
    return ById(exec.Run(s, "antique").ValueOrDie());
  };
  auto left = run(1.0, 0.0);
  auto right = run(0.0, 1.0);
  auto mixed = run(0.7, 0.3);
  EXPECT_NEAR(mixed["lot1"], 0.7 * left["lot1"] + 0.3 * right["lot1"],
              1e-9);
}

TEST(ProductionStrategyTest, RunsOnGeneratedGraph) {
  AuctionGraphOptions gopts;
  gopts.num_lots = 200;
  gopts.num_auctions = 10;
  TripleStore store = GenerateAuctionGraph(gopts).ValueOrDie();
  Catalog catalog;
  ASSERT_TRUE(store.RegisterInto(catalog).ok());
  MaterializationCache cache(256 << 20);
  StrategyExecutor exec(&catalog, &cache);
  Strategy s = MakeProductionStrategy().ValueOrDie();
  auto queries = GenerateAuctionQueries(gopts, 3, 3);
  for (const auto& q : queries) {
    auto hits = exec.Run(s, q);
    ASSERT_TRUE(hits.ok()) << hits.status().ToString();
    EXPECT_LE(hits.ValueOrDie().num_rows(), 10u);
  }
}

TEST(ProductionStrategyTest, SynonymExpansionWidensResults) {
  TripleStore store;
  store.Add("lot1", "type", "lot");
  store.Add("lot1", "description", "antique chair");
  store.Add("lot1", "title", "chair");
  store.Add("lot1", "hasAuction", "auction1");
  store.Add("lot2", "type", "lot");
  store.Add("lot2", "description", "vintage stool");
  store.Add("lot2", "title", "stool");
  store.Add("lot2", "hasAuction", "auction1");
  // Filler lots so single-document terms keep positive idf.
  for (int i = 3; i <= 6; ++i) {
    std::string id = "lot" + std::to_string(i);
    store.Add(id, "type", "lot");
    store.Add(id, "description", "ceramic vase lot number " +
                                     std::to_string(i));
    store.Add(id, "title", "vase");
    store.Add(id, "hasAuction", "auction1");
  }
  store.Add("auction1", "type", "auction");
  store.Add("auction1", "description", "furniture");
  store.Add("chair", "synonym", "stool");
  Catalog catalog;
  ASSERT_TRUE(store.RegisterInto(catalog).ok());
  MaterializationCache cache(64 << 20);
  StrategyExecutor exec(&catalog, &cache);

  ProductionStrategyOptions no_syn;
  no_syn.expand_synonyms = false;
  auto plain =
      ById(exec.Run(MakeProductionStrategy(no_syn).ValueOrDie(), "chair")
               .ValueOrDie());
  ProductionStrategyOptions with_syn;
  with_syn.expand_synonyms = true;
  auto expanded =
      ById(exec.Run(MakeProductionStrategy(with_syn).ValueOrDie(), "chair")
               .ValueOrDie());
  // Without expansion only lot1 matches "chair"; with the chair->stool
  // synonym, lot2 enters the result list too.
  EXPECT_TRUE(plain.count("lot1"));
  EXPECT_FALSE(plain.count("lot2"));
  EXPECT_TRUE(expanded.count("lot1"));
  EXPECT_TRUE(expanded.count("lot2"));
  // The synonym match carries reduced weight: lot1 still wins.
  EXPECT_GT(expanded["lot1"], expanded["lot2"]);
}

TEST(ProductionStrategyTest, CompoundExpansionFindsConcatenations) {
  TripleStore store;
  store.Add("lot1", "type", "lot");
  store.Add("lot1", "description", "mechanical keyboard with red switches");
  store.Add("lot1", "title", "keyboard");
  store.Add("lot1", "hasAuction", "auction1");
  for (int i = 2; i <= 6; ++i) {
    std::string id = "lot" + std::to_string(i);
    store.Add(id, "type", "lot");
    store.Add(id, "description", "ceramic vase number " + std::to_string(i));
    store.Add(id, "title", "vase");
    store.Add(id, "hasAuction", "auction1");
  }
  store.Add("auction1", "type", "auction");
  store.Add("auction1", "description", "electronics sale");
  Catalog catalog;
  ASSERT_TRUE(store.RegisterInto(catalog).ok());
  MaterializationCache cache(64 << 20);
  StrategyExecutor exec(&catalog, &cache);

  // The user types "key board"; neither token exists in the collection,
  // but the compound "keyboard" does.
  ProductionStrategyOptions off;
  off.expand_synonyms = false;
  off.expand_compounds = false;
  auto plain = ById(
      exec.Run(MakeProductionStrategy(off).ValueOrDie(), "key board")
          .ValueOrDie());
  EXPECT_FALSE(plain.count("lot1"));

  ProductionStrategyOptions on;
  on.expand_synonyms = false;
  on.expand_compounds = true;
  auto expanded = ById(
      exec.Run(MakeProductionStrategy(on).ValueOrDie(), "key board")
          .ValueOrDie());
  EXPECT_TRUE(expanded.count("lot1"));
}

TEST(ProductionStrategyTest, BranchCountMatchesOptions) {
  ProductionStrategyOptions opts;
  opts.branches = {{"description", 0.5, false}, {"title", 0.5, false}};
  Strategy s = MakeProductionStrategy(opts).ValueOrDie();
  spinql::Program p = s.Compile().ValueOrDie();
  // Two RANK statements in the compiled program.
  std::string text = p.ToString();
  size_t count = 0, at = 0;
  while ((at = text.find("RANK", at)) != std::string::npos) {
    ++count;
    at += 4;
  }
  EXPECT_EQ(count, 2u);
}

}  // namespace
}  // namespace strategy
}  // namespace spindle
