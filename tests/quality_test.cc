/// \file quality_test.cc
/// \brief Retrieval-effectiveness tests: on topical collections with a
/// relevance oracle, every ranking model must retrieve the right
/// documents — not just compute its formula correctly.

#include <gtest/gtest.h>

#include "ir/eval.h"
#include "ir/searcher.h"
#include "specialized/inverted_index.h"
#include "workload/topical_gen.h"

namespace spindle {
namespace {

TEST(MetricsTest, PrecisionRecallBasics) {
  RelevantSet rel = {1, 2, 3};
  std::vector<int64_t> ranked = {1, 9, 2, 8, 7};
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, rel, 1), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, rel, 2), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, rel, 5), 0.4);
  EXPECT_DOUBLE_EQ(PrecisionAtK({}, rel, 5), 0.0);
  EXPECT_DOUBLE_EQ(RecallAtK(ranked, rel, 5), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank(ranked, rel), 1.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank({9, 8, 3}, rel), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank({9, 8}, rel), 0.0);
}

TEST(MetricsTest, AveragePrecision) {
  RelevantSet rel = {1, 2};
  // Relevant at ranks 1 and 3: AP = (1/1 + 2/3) / 2.
  EXPECT_NEAR(AveragePrecision({1, 9, 2}, rel), (1.0 + 2.0 / 3.0) / 2,
              1e-12);
  EXPECT_DOUBLE_EQ(AveragePrecision({9, 8}, rel), 0.0);
  EXPECT_DOUBLE_EQ(AveragePrecision({}, rel), 0.0);
}

class QualityTest : public ::testing::Test {
 protected:
  static const TopicalCollection& Collection() {
    static const TopicalCollection* c = [] {
      TopicalCollectionOptions opts;
      opts.num_topics = 8;
      opts.docs_per_topic = 60;
      return new TopicalCollection(
          GenerateTopicalCollection(opts).ValueOrDie());
    }();
    return *c;
  }

  /// Mean P@10 over all topic queries under a model.
  double MeanPrecisionAt10(RankModel model) {
    const auto& coll = Collection();
    Searcher searcher;
    SearchOptions opts;
    opts.model = model;
    opts.top_k = 10;
    double sum = 0;
    for (size_t t = 0; t < coll.queries.size(); ++t) {
      RelationPtr ranked =
          searcher.Search(coll.docs, "topical", coll.queries[t], opts)
              .ValueOrDie();
      sum += PrecisionAtK(RankedIds(*ranked), coll.relevant[t], 10);
    }
    return sum / coll.queries.size();
  }
};

TEST_F(QualityTest, GeneratorShape) {
  const auto& coll = Collection();
  EXPECT_EQ(coll.docs->num_rows(), 8u * 60u);
  EXPECT_EQ(coll.queries.size(), 8u);
  for (const auto& rel : coll.relevant) EXPECT_EQ(rel.size(), 60u);
}

TEST_F(QualityTest, Bm25RetrievesTheRightTopic) {
  // Random ranking would score docs_per_topic/total = 12.5%; topic
  // vocabulary is discriminative, so BM25 should be near-perfect.
  EXPECT_GT(MeanPrecisionAt10(RankModel::kBm25), 0.9);
}

TEST_F(QualityTest, AllModelsBeatChanceByFar) {
  for (RankModel m : {RankModel::kTfIdf, RankModel::kLmDirichlet,
                      RankModel::kLmJelinekMercer}) {
    EXPECT_GT(MeanPrecisionAt10(m), 0.8) << RankModelName(m);
  }
}

TEST_F(QualityTest, SpecializedEngineSameQuality) {
  const auto& coll = Collection();
  Analyzer analyzer = Analyzer::Make({}).ValueOrDie();
  auto idx = SpecializedIndex::Build(coll.docs, analyzer).ValueOrDie();
  double sum = 0;
  for (size_t t = 0; t < coll.queries.size(); ++t) {
    auto hits = idx.SearchBm25(coll.queries[t], 10);
    std::vector<int64_t> ids;
    for (const auto& h : hits) ids.push_back(h.doc_id);
    sum += PrecisionAtK(ids, coll.relevant[t], 10);
  }
  EXPECT_GT(sum / coll.queries.size(), 0.9);
}

TEST_F(QualityTest, RecallGrowsWithK) {
  const auto& coll = Collection();
  Searcher searcher;
  SearchOptions opts;
  opts.top_k = 0;  // full ranking
  RelationPtr ranked =
      searcher.Search(coll.docs, "topical", coll.queries[0], opts)
          .ValueOrDie();
  auto ids = RankedIds(*ranked);
  double r10 = RecallAtK(ids, coll.relevant[0], 10);
  double r30 = RecallAtK(ids, coll.relevant[0], 30);
  double r60 = RecallAtK(ids, coll.relevant[0], 60);
  EXPECT_LE(r10, r30);
  EXPECT_LE(r30, r60);
  // Bag-of-words recall is bounded by term overlap: a relevant document
  // matches only if it contains one of the 3 query words (each doc
  // samples ~20 of the topic's 200 private words, so roughly a quarter
  // of the relevant set is reachable at all).
  EXPECT_GT(r60, 0.1);
}

TEST_F(QualityTest, MrrIsHigh) {
  const auto& coll = Collection();
  Searcher searcher;
  SearchOptions opts;
  opts.top_k = 20;
  double sum = 0;
  for (size_t t = 0; t < coll.queries.size(); ++t) {
    RelationPtr ranked =
        searcher.Search(coll.docs, "topical", coll.queries[t], opts)
            .ValueOrDie();
    sum += ReciprocalRank(RankedIds(*ranked), coll.relevant[t]);
  }
  EXPECT_GT(sum / coll.queries.size(), 0.9);
}

}  // namespace
}  // namespace spindle
