#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "storage/io.h"
#include "workload/graph_gen.h"
#include "workload/text_gen.h"

namespace spindle {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "spindle_io_" + name;
  }

  void TearDown() override {
    for (const auto& p : created_) std::remove(p.c_str());
  }

  std::string Track(std::string path) {
    created_.push_back(path);
    return path;
  }

  std::vector<std::string> created_;
};

RelationPtr MixedRelation() {
  RelationBuilder b({{"id", DataType::kInt64},
                     {"score", DataType::kFloat64},
                     {"text", DataType::kString}});
  EXPECT_TRUE(b.AddRow({int64_t{1}, 0.5, std::string("hello world")}).ok());
  EXPECT_TRUE(
      b.AddRow({int64_t{-7}, 1.25, std::string("tab\tand\nnewline")}).ok());
  EXPECT_TRUE(b.AddRow({int64_t{0}, -3.5, std::string("")}).ok());
  return b.Build().ValueOrDie();
}

TEST_F(IoTest, BinaryRoundTrip) {
  RelationPtr rel = MixedRelation();
  std::string path = Track(TempPath("bin"));
  ASSERT_TRUE(WriteRelation(*rel, path).ok());
  RelationPtr back = ReadRelation(path).ValueOrDie();
  EXPECT_TRUE(rel->Equals(*back));
}

TEST_F(IoTest, BinaryRoundTripEmptyRelation) {
  RelationPtr rel = Relation::Empty(
      Schema({{"a", DataType::kInt64}, {"b", DataType::kString}}));
  std::string path = Track(TempPath("empty"));
  ASSERT_TRUE(WriteRelation(*rel, path).ok());
  RelationPtr back = ReadRelation(path).ValueOrDie();
  EXPECT_TRUE(rel->Equals(*back));
}

TEST_F(IoTest, BinaryRejectsGarbage) {
  std::string path = Track(TempPath("garbage"));
  FILE* f = fopen(path.c_str(), "w");
  fputs("this is not a relation", f);
  fclose(f);
  EXPECT_FALSE(ReadRelation(path).ok());
  EXPECT_FALSE(ReadRelation(TempPath("missing")).ok());
}

TEST_F(IoTest, TsvRoundTripWithEscapes) {
  RelationPtr rel = MixedRelation();
  std::string path = Track(TempPath("tsv"));
  ASSERT_TRUE(WriteTsv(*rel, path).ok());
  RelationPtr back = ReadTsv(path).ValueOrDie();
  ASSERT_TRUE(back->schema().Equals(rel->schema()));
  ASSERT_EQ(back->num_rows(), rel->num_rows());
  EXPECT_EQ(back->column(2).StringAt(1), "tab\tand\nnewline");
  EXPECT_EQ(back->column(0).Int64At(1), -7);
  EXPECT_DOUBLE_EQ(back->column(1).Float64At(2), -3.5);
}

TEST_F(IoTest, TsvRejectsMalformed) {
  std::string path = Track(TempPath("badtsv"));
  FILE* f = fopen(path.c_str(), "w");
  fputs("a:int64\tb:string\n1\n", f);  // row with one cell
  fclose(f);
  EXPECT_FALSE(ReadTsv(path).ok());

  std::string path2 = Track(TempPath("badheader"));
  f = fopen(path2.c_str(), "w");
  fputs("a:int64\tb:nosuchtype\n", f);
  fclose(f);
  EXPECT_FALSE(ReadTsv(path2).ok());
}

TEST_F(IoTest, GeneratedCollectionSurvivesRoundTrip) {
  TextCollectionOptions opts;
  opts.num_docs = 200;
  RelationPtr docs = GenerateTextCollection(opts).ValueOrDie();
  std::string path = Track(TempPath("coll"));
  ASSERT_TRUE(WriteRelation(*docs, path).ok());
  EXPECT_TRUE(docs->Equals(*ReadRelation(path).ValueOrDie()));
}

TEST_F(IoTest, TripleStoreViaTsv) {
  // The triple-store export/import path: string triples as TSV.
  ProductCatalogOptions opts;
  opts.num_products = 20;
  TripleStore store = GenerateProductCatalog(opts).ValueOrDie();
  RelationPtr triples = store.StringTriples().ValueOrDie();
  std::string path = Track(TempPath("triples"));
  ASSERT_TRUE(WriteTsv(*triples, path).ok());
  RelationPtr back = ReadTsv(path).ValueOrDie();
  EXPECT_TRUE(triples->Equals(*back));
}

}  // namespace
}  // namespace spindle
