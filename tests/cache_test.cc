#include <gtest/gtest.h>

#include "engine/materialization_cache.h"
#include "storage/relation.h"

namespace spindle {
namespace {

RelationPtr MakeRel(int rows) {
  RelationBuilder b({{"a", DataType::kInt64}});
  for (int i = 0; i < rows; ++i) {
    EXPECT_TRUE(b.AddRow({int64_t{i}}).ok());
  }
  return b.Build().ValueOrDie();
}

TEST(CacheTest, MissThenHit) {
  MaterializationCache cache(1 << 20);
  EXPECT_FALSE(cache.Get("sig1").has_value());
  EXPECT_EQ(cache.stats().misses, 1u);

  RelationPtr r = MakeRel(10);
  cache.Put("sig1", r);
  auto hit = cache.Get("sig1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE((*hit)->Equals(*r));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().inserts, 1u);
}

TEST(CacheTest, DistinctSignaturesAreDistinctEntries) {
  MaterializationCache cache(1 << 20);
  cache.Put("a", MakeRel(1));
  cache.Put("b", MakeRel(2));
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ((*cache.Get("a"))->num_rows(), 1u);
  EXPECT_EQ((*cache.Get("b"))->num_rows(), 2u);
}

TEST(CacheTest, ReplaceSameSignature) {
  MaterializationCache cache(1 << 20);
  cache.Put("a", MakeRel(1));
  cache.Put("a", MakeRel(5));
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ((*cache.Get("a"))->num_rows(), 5u);
}

TEST(CacheTest, LruEviction) {
  // Each 100-row int64 relation is ~800 bytes; budget fits about two.
  MaterializationCache cache(2000);
  cache.Put("a", MakeRel(100));
  cache.Put("b", MakeRel(100));
  ASSERT_TRUE(cache.Get("a").has_value());  // a is now most recent
  cache.Put("c", MakeRel(100));             // evicts b (LRU)
  EXPECT_FALSE(cache.Get("b").has_value());
  EXPECT_TRUE(cache.Get("a").has_value());
  EXPECT_TRUE(cache.Get("c").has_value());
  EXPECT_GE(cache.stats().evictions, 1u);
}

TEST(CacheTest, OversizedRelationNotCached) {
  MaterializationCache cache(100);
  cache.Put("big", MakeRel(1000));
  EXPECT_FALSE(cache.Get("big").has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(CacheTest, ZeroBudgetDisablesCaching) {
  MaterializationCache cache(0);
  cache.Put("a", MakeRel(1));
  EXPECT_FALSE(cache.Get("a").has_value());
}

TEST(CacheTest, ClearDropsEverything) {
  MaterializationCache cache(1 << 20);
  cache.Put("a", MakeRel(10));
  cache.Clear();
  EXPECT_FALSE(cache.Get("a").has_value());
  EXPECT_EQ(cache.stats().bytes_cached, 0u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(CacheTest, ShrinkingBudgetEvicts) {
  MaterializationCache cache(1 << 20);
  cache.Put("a", MakeRel(100));
  cache.Put("b", MakeRel(100));
  cache.set_budget_bytes(900);  // fits one ~800-byte entry
  EXPECT_EQ(cache.stats().entries, 1u);
  // The survivor is the most recently used ("b").
  EXPECT_TRUE(cache.Get("b").has_value());
}

TEST(CacheTest, ResetCountersKeepsEntries) {
  MaterializationCache cache(1 << 20);
  cache.Put("a", MakeRel(10));
  cache.Get("a");
  cache.ResetCounters();
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_TRUE(cache.Get("a").has_value());
}

TEST(CacheTest, BytesAccounting) {
  MaterializationCache cache(1 << 20);
  RelationPtr r = MakeRel(100);
  cache.Put("a", r);
  EXPECT_EQ(cache.stats().bytes_cached, r->ByteSize());
}

}  // namespace
}  // namespace spindle
