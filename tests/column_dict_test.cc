#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/hash.h"
#include "storage/column.h"
#include "storage/relation.h"
#include "storage/string_dict.h"

namespace spindle {
namespace {

Column PlainCities() {
  return Column::MakeString(
      {"oslo", "lima", "oslo", "quito", "lima", "oslo"});
}

TEST(ColumnDictTest, EncodeDecodeRoundTrip) {
  Column plain = PlainCities();
  Column dict = plain.DictEncode();
  ASSERT_TRUE(dict.dict_encoded());
  EXPECT_EQ(dict.type(), DataType::kString);
  EXPECT_EQ(dict.size(), plain.size());
  // Distinct values collapse into the dict.
  EXPECT_EQ(dict.dict()->size(), 3);
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(dict.StringAt(i), plain.StringAt(i));
  }
  Column back = dict.DecodeToPlain();
  EXPECT_FALSE(back.dict_encoded());
  EXPECT_TRUE(back.Equals(plain));
}

TEST(ColumnDictTest, EqualsAcrossRepresentations) {
  Column plain = PlainCities();
  Column dict = plain.DictEncode();
  // Logical equality must ignore the physical representation, both ways.
  EXPECT_TRUE(plain.Equals(dict));
  EXPECT_TRUE(dict.Equals(plain));
  EXPECT_TRUE(dict.Equals(dict.DictEncode()));  // re-encode shares codes

  Column other = Column::MakeString(
      {"oslo", "lima", "oslo", "quito", "lima", "OSLO"});
  EXPECT_FALSE(dict.Equals(other));
  EXPECT_FALSE(other.Equals(dict));
}

TEST(ColumnDictTest, HashMatchesPlainRepresentation) {
  Column plain = PlainCities();
  Column dict = plain.DictEncode();
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(dict.HashAt(i), plain.HashAt(i));
    EXPECT_EQ(dict.HashAt(i), HashBytes(plain.StringAt(i)));
  }
}

TEST(ColumnDictTest, ElementEqualsAndCompareAcrossRepresentations) {
  Column plain = PlainCities();
  Column dict = plain.DictEncode();
  for (size_t i = 0; i < plain.size(); ++i) {
    for (size_t j = 0; j < plain.size(); ++j) {
      EXPECT_EQ(dict.ElementEquals(i, plain, j),
                plain.ElementEquals(i, plain, j));
      EXPECT_EQ(dict.ElementEquals(i, dict, j),
                plain.ElementEquals(i, plain, j));
      // Compare must agree in sign with the plain-vs-plain result.
      int expect = plain.ElementCompare(i, plain, j);
      int got_mixed = dict.ElementCompare(i, plain, j);
      int got_dict = dict.ElementCompare(i, dict, j);
      EXPECT_EQ(expect < 0, got_mixed < 0);
      EXPECT_EQ(expect > 0, got_mixed > 0);
      EXPECT_EQ(expect < 0, got_dict < 0);
      EXPECT_EQ(expect > 0, got_dict > 0);
    }
  }
}

TEST(ColumnDictTest, GatherSharesDict) {
  Column dict = PlainCities().DictEncode();
  Column gathered = dict.Gather({5, 0, 3});
  ASSERT_TRUE(gathered.dict_encoded());
  // Zero-copy: the very same dict instance, only codes were copied.
  EXPECT_EQ(gathered.dict().get(), dict.dict().get());
  EXPECT_EQ(gathered.StringAt(0), "oslo");
  EXPECT_EQ(gathered.StringAt(1), "oslo");
  EXPECT_EQ(gathered.StringAt(2), "quito");
}

TEST(ColumnDictTest, AppendFromAdoptsSourceDict) {
  Column src = PlainCities().DictEncode();
  Column dst(DataType::kString);
  dst.AppendFrom(src, 3);
  dst.AppendFrom(src, 1);
  ASSERT_TRUE(dst.dict_encoded());
  EXPECT_EQ(dst.dict().get(), src.dict().get());
  EXPECT_EQ(dst.StringAt(0), "quito");
  EXPECT_EQ(dst.StringAt(1), "lima");
}

TEST(ColumnDictTest, AppendRawStringDecaysToPlain) {
  Column src = PlainCities().DictEncode();
  Column dst(DataType::kString);
  dst.AppendFrom(src, 0);
  ASSERT_TRUE(dst.dict_encoded());
  dst.AppendString("tokyo");  // not in the dict: must decay, stay correct
  EXPECT_FALSE(dst.dict_encoded());
  ASSERT_EQ(dst.size(), 2u);
  EXPECT_EQ(dst.StringAt(0), "oslo");
  EXPECT_EQ(dst.StringAt(1), "tokyo");
}

TEST(ColumnDictTest, AppendFromDifferentDictDecaysToPlain) {
  Column a = PlainCities().DictEncode();
  Column b = Column::MakeString({"cairo", "lima"}).DictEncode();
  Column dst(DataType::kString);
  dst.AppendFrom(a, 1);   // adopts a's dict
  dst.AppendFrom(b, 0);   // different dict instance: decay
  EXPECT_FALSE(dst.dict_encoded());
  EXPECT_EQ(dst.StringAt(0), "lima");
  EXPECT_EQ(dst.StringAt(1), "cairo");
}

TEST(ColumnDictTest, SharedDictAcrossColumns) {
  auto shared = std::make_shared<StringDict>();
  Column a = Column::MakeString({"x", "y"}).DictEncode(shared);
  Column b = Column::MakeString({"y", "z"}).DictEncode(shared);
  ASSERT_TRUE(a.dict_encoded());
  ASSERT_TRUE(b.dict_encoded());
  EXPECT_EQ(a.dict().get(), b.dict().get());
  // Same string, same code, even across columns.
  EXPECT_EQ(a.CodeAt(1), b.CodeAt(0));
  EXPECT_TRUE(a.ElementEquals(1, b, 0));
}

TEST(ColumnDictTest, MakeDictStringAccessors) {
  auto d = std::make_shared<StringDict>();
  d->Intern("alpha");
  d->Intern("beta");
  Column c = Column::MakeDictString({1, 0, 1}, d);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.StringAt(0), "beta");
  EXPECT_EQ(c.StringAt(1), "alpha");
  EXPECT_EQ(c.CodeAt(2), 1);
  EXPECT_EQ(c.ValueAt(1), Value(std::string("alpha")));
  EXPECT_EQ(c.ToStringAt(0), "beta");
}

TEST(ColumnDictTest, ByteSizeCountsCodesAndDictOnce) {
  Column plain = PlainCities();
  Column dict = plain.DictEncode();
  EXPECT_EQ(dict.ByteSizeExcludingDict(), dict.size() * sizeof(int32_t));
  EXPECT_EQ(dict.ByteSize(),
            dict.ByteSizeExcludingDict() + dict.dict()->ByteSize());
  // Plain strings charge the vector shell plus any heap payloads.
  EXPECT_GE(plain.ByteSize(), plain.size() * sizeof(std::string));
}

TEST(ColumnDictTest, ByteSizeCountsLongStringHeap) {
  std::string big(4096, 'q');
  Column c = Column::MakeString({big});
  // The heap payload must be visible, not just sizeof(std::string).
  EXPECT_GE(c.ByteSize(), sizeof(std::string) + big.size());
}

TEST(RelationDictTest, DictEncodeStringColumnsSharesOneDict) {
  RelationBuilder b({{"s", DataType::kString},
                     {"n", DataType::kInt64},
                     {"o", DataType::kString}});
  ASSERT_TRUE(b.AddRow({std::string("a"), int64_t{1}, std::string("b")}).ok());
  ASSERT_TRUE(b.AddRow({std::string("b"), int64_t{2}, std::string("a")}).ok());
  RelationPtr rel = b.Build().ValueOrDie();
  RelationPtr enc = DictEncodeStringColumns(rel);
  ASSERT_NE(enc.get(), rel.get());
  ASSERT_TRUE(enc->column(0).dict_encoded());
  ASSERT_TRUE(enc->column(2).dict_encoded());
  // Both string columns share one dict; cross-column compares hit codes.
  EXPECT_EQ(enc->column(0).dict().get(), enc->column(2).dict().get());
  EXPECT_TRUE(enc->column(0).ElementEquals(0, enc->column(2), 1));
  // The int column is shared untouched.
  EXPECT_EQ(enc->column_ptr(1).get(), rel->column_ptr(1).get());
  // Logical content unchanged.
  EXPECT_TRUE(enc->Equals(*rel));
  // Already-encoded input comes back as the same pointer.
  EXPECT_EQ(DictEncodeStringColumns(enc).get(), enc.get());
}

TEST(RelationDictTest, ByteSizeChargesSharedDictOnce) {
  RelationBuilder b({{"s", DataType::kString}, {"o", DataType::kString}});
  ASSERT_TRUE(b.AddRow({std::string("alpha"), std::string("beta")}).ok());
  RelationPtr enc = DictEncodeStringColumns(b.Build().ValueOrDie());
  ASSERT_EQ(enc->CollectDicts().size(), 1u);
  size_t dict_bytes = enc->column(0).dict()->ByteSize();
  EXPECT_EQ(enc->ByteSize(), enc->ByteSizeExcludingDicts() + dict_bytes);
  EXPECT_EQ(enc->ByteSizeExcludingDicts(),
            enc->column(0).ByteSizeExcludingDict() +
                enc->column(1).ByteSizeExcludingDict());
}

}  // namespace
}  // namespace spindle
