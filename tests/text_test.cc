#include <gtest/gtest.h>

#include "text/analyzer.h"
#include "text/stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace spindle {
namespace {

TEST(TokenizerTest, BasicSplit) {
  auto toks = Tokenize("Hello, world! 42 times");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0], (Token{"Hello", 0}));
  EXPECT_EQ(toks[1], (Token{"world", 1}));
  EXPECT_EQ(toks[2], (Token{"42", 2}));
  EXPECT_EQ(toks[3], (Token{"times", 3}));
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("... --- !!!").empty());
}

TEST(TokenizerTest, InWordApostropheKept) {
  auto toks = Tokenize("don't stop");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].text, "don't");
}

TEST(TokenizerTest, TrailingApostropheNotKept) {
  auto toks = Tokenize("the boys' toys");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[1].text, "boys");
}

TEST(TokenizerTest, NumbersCanBeDropped) {
  TokenizerOptions opts;
  opts.keep_numbers = false;
  auto toks = Tokenize("call 911 now", opts);
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].text, "call");
  EXPECT_EQ(toks[1].text, "now");
}

TEST(TokenizerTest, LengthFilters) {
  TokenizerOptions opts;
  opts.min_token_len = 2;
  opts.max_token_len = 5;
  auto toks = Tokenize("a ab abcdef abc", opts);
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].text, "ab");
  EXPECT_EQ(toks[1].text, "abc");
  // Positions count all tokens, including filtered ones.
  EXPECT_EQ(toks[0].pos, 1);
  EXPECT_EQ(toks[1].pos, 3);
}

TEST(TokenizerTest, Utf8BytesTreatedAsLetters) {
  auto toks = Tokenize("caf\xc3\xa9 au lait");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "caf\xc3\xa9");
}

TEST(StemmerRegistryTest, KnownNames) {
  for (const auto& name : ListStemmers()) {
    EXPECT_TRUE(GetStemmer(name).ok()) << name;
  }
  EXPECT_FALSE(GetStemmer("klingon").ok());
}

TEST(StemmerRegistryTest, AliasesShareImplementation) {
  const Stemmer* a = GetStemmer("sb-english").ValueOrDie();
  const Stemmer* b = GetStemmer("porter2").ValueOrDie();
  EXPECT_EQ(a, b);
}

TEST(SStemmerTest, HarmanRules) {
  const Stemmer* s = GetStemmer("s-english").ValueOrDie();
  EXPECT_EQ(s->Stem("ponies"), "pony");
  EXPECT_EQ(s->Stem("skies"), "sky");
  EXPECT_EQ(s->Stem("churches"), "churche");  // es -> e
  EXPECT_EQ(s->Stem("cats"), "cat");
  EXPECT_EQ(s->Stem("class"), "class");   // ss kept
  EXPECT_EQ(s->Stem("corpus"), "corpus"); // us kept
  EXPECT_EQ(s->Stem("is"), "is");         // too short
}

TEST(LightStemmersTest, DutchConflation) {
  const Stemmer* s = GetStemmer("sb-dutch").ValueOrDie();
  EXPECT_EQ(s->Stem("mogelijkheden"), s->Stem("mogelijkheid"));
  EXPECT_EQ(s->Stem("katten"), "kat");
  EXPECT_EQ(s->Stem("kat"), "kat");
}

TEST(LightStemmersTest, GermanConflation) {
  const Stemmer* s = GetStemmer("sb-german").ValueOrDie();
  EXPECT_EQ(s->Stem("zeitungen"), s->Stem("zeitung"));
  EXPECT_EQ(s->Stem("kinder"), "kind");
}

TEST(LightStemmersTest, FrenchConflation) {
  const Stemmer* s = GetStemmer("sb-french").ValueOrDie();
  EXPECT_EQ(s->Stem("nationales"), s->Stem("national"));
  EXPECT_EQ(s->Stem("chanter"), "chant");
}

TEST(LightStemmersTest, DifferentLanguagesDiffer) {
  // The same surface form can stem differently per language — this is why
  // on-demand indexing with a configurable analyzer matters (paper §2.1).
  const Stemmer* en = GetStemmer("sb-english").ValueOrDie();
  const Stemmer* de = GetStemmer("sb-german").ValueOrDie();
  EXPECT_NE(en->Stem("running"), de->Stem("running"));
}

TEST(StopwordsTest, CommonWordsPresent) {
  EXPECT_TRUE(IsEnglishStopword("the"));
  EXPECT_TRUE(IsEnglishStopword("and"));
  EXPECT_TRUE(IsEnglishStopword("of"));
  EXPECT_FALSE(IsEnglishStopword("retrieval"));
  EXPECT_GT(EnglishStopwords().size(), 100u);
}

TEST(AnalyzerTest, DefaultMatchesPaperPipeline) {
  // stem(lcase(token), 'sb-english') over the tokenizer output.
  Analyzer a = Analyzer::Make({}).ValueOrDie();
  auto toks = a.Analyze("Books about History");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0], (Token{"book", 0}));
  EXPECT_EQ(toks[1], (Token{"about", 1}));
  EXPECT_EQ(toks[2], (Token{"histori", 2}));
}

TEST(AnalyzerTest, StopwordRemovalKeepsPositions) {
  AnalyzerOptions opts;
  opts.remove_stopwords = true;
  Analyzer a = Analyzer::Make(opts).ValueOrDie();
  auto toks = a.Analyze("the history of books");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0], (Token{"histori", 1}));
  EXPECT_EQ(toks[1], (Token{"book", 3}));
}

TEST(AnalyzerTest, NoStemming) {
  AnalyzerOptions opts;
  opts.stemmer = "none";
  Analyzer a = Analyzer::Make(opts).ValueOrDie();
  auto toks = a.Analyze("Books");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].text, "books");
}

TEST(AnalyzerTest, CaseSensitiveWhenDisabled) {
  AnalyzerOptions opts;
  opts.lowercase = false;
  opts.stemmer = "none";
  Analyzer a = Analyzer::Make(opts).ValueOrDie();
  EXPECT_EQ(a.Analyze("Books")[0].text, "Books");
}

TEST(AnalyzerTest, AnalyzeTermMatchesAnalyze) {
  Analyzer a = Analyzer::Make({}).ValueOrDie();
  EXPECT_EQ(a.AnalyzeTerm("Connections"), "connect");
}

TEST(AnalyzerTest, UnknownStemmerRejected) {
  AnalyzerOptions opts;
  opts.stemmer = "nope";
  EXPECT_FALSE(Analyzer::Make(opts).ok());
}

TEST(AnalyzerTest, SignatureDistinguishesConfigs) {
  AnalyzerOptions a, b;
  b.stemmer = "none";
  EXPECT_NE(a.Signature(), b.Signature());
  AnalyzerOptions c;
  EXPECT_EQ(a.Signature(), c.Signature());
}

}  // namespace
}  // namespace spindle
