/// \file block_codec_test.cc
/// \brief Codec-layer tests (storage/block_codec.h): randomized
/// round-trip properties for the posting-block and integer-segment
/// codecs, a corruption matrix (every truncation point, bit flips) that
/// must yield clean failures — never out-of-bounds behaviour — plus
/// lazy-decode and concurrency behaviour of CompressedInts and the
/// compressed Column representation.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>
#include <thread>
#include <vector>

#include "storage/block_codec.h"
#include "storage/column.h"
#include "storage/relation.h"
#include "storage/string_dict.h"

namespace spindle {
namespace {

using blockcodec::CompressedInts;
using blockcodec::DecodePostingBlock;
using blockcodec::EncodeIntBlob;
using blockcodec::EncodePostingBlock;
using blockcodec::GetVarint64;
using blockcodec::kIntSegmentLen;
using blockcodec::PutVarint64;
using blockcodec::ZigZagDecode;
using blockcodec::ZigZagEncode;

// ---------------------------------------------------------------------------
// Posting-block codec
// ---------------------------------------------------------------------------

/// Strictly increasing ordinals with gaps drawn from [1, max_gap] and tfs
/// from [tf_lo, tf_hi].
void MakePostings(std::mt19937_64& rng, size_t n, uint32_t first,
                  uint32_t max_gap, int32_t tf_lo, int32_t tf_hi,
                  std::vector<uint32_t>* ords, std::vector<int32_t>* tfs) {
  std::uniform_int_distribution<uint32_t> gap(1, max_gap);
  std::uniform_int_distribution<int32_t> tf(tf_lo, tf_hi);
  ords->resize(n);
  tfs->resize(n);
  uint32_t ord = first;
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) ord += gap(rng);
    (*ords)[i] = ord;
    (*tfs)[i] = tf(rng);
  }
}

void ExpectRoundTrip(const std::vector<uint32_t>& ords,
                     const std::vector<int32_t>& tfs) {
  std::vector<uint8_t> buf;
  const size_t bytes = EncodePostingBlock(ords.data(), tfs.data(),
                                          ords.size(), &buf);
  ASSERT_EQ(bytes, buf.size());
  std::vector<uint32_t> out_ords(ords.size());
  std::vector<int32_t> out_tfs(tfs.size());
  ASSERT_TRUE(DecodePostingBlock(buf.data(), buf.size(), ords.size(),
                                 out_ords.data(), out_tfs.data()));
  EXPECT_EQ(out_ords, ords);
  EXPECT_EQ(out_tfs, tfs);
}

TEST(PostingBlockCodecTest, SingleAndTinyBlocks) {
  ExpectRoundTrip({0}, {1});
  ExpectRoundTrip({42}, {-7});  // tf sign is preserved verbatim
  ExpectRoundTrip({0, 1}, {1, 1});
  ExpectRoundTrip({5, 1000000}, {3, 2});
}

TEST(PostingBlockCodecTest, DenseRunPacksAtWidthZero) {
  // 128 consecutive ordinals with constant tf: both packed runs are
  // width 0, so the block is exactly its 10-byte header.
  std::vector<uint32_t> ords(128);
  std::vector<int32_t> tfs(128, 7);
  for (size_t i = 0; i < ords.size(); ++i) {
    ords[i] = 1000 + static_cast<uint32_t>(i);
  }
  std::vector<uint8_t> buf;
  EncodePostingBlock(ords.data(), tfs.data(), ords.size(), &buf);
  EXPECT_EQ(buf.size(), blockcodec::kPostingBlockHeaderBytes);
  ExpectRoundTrip(ords, tfs);
}

TEST(PostingBlockCodecTest, RandomizedRoundTripProperty) {
  std::mt19937_64 rng(20260808);
  struct Shape {
    size_t n;
    uint32_t first;
    uint32_t max_gap;
    int32_t tf_lo, tf_hi;
  };
  const Shape shapes[] = {
      {1, 0, 1, 1, 1},
      {2, 0, 1u << 30, 1, 1},                      // adversarial gap width
      {17, 12345, 3, 1, 2},
      {128, 0, 1, 1, 1},                           // dense block
      {128, 4000000000u, 2, 1, 5},                 // near the uint32 ceiling
      {128, 9, 1u << 24, 1, 1 << 20},              // wide both ways
      {128, 0, 5, std::numeric_limits<int32_t>::min() + 1,
       std::numeric_limits<int32_t>::min() + 3},   // negative tf frame
      {500, 7, 900, 1, 60},                        // > stack scratch (512)
      {4096, 3, 17, 1, 9},                         // max tested block
  };
  for (const Shape& s : shapes) {
    for (int rep = 0; rep < 8; ++rep) {
      std::vector<uint32_t> ords;
      std::vector<int32_t> tfs;
      MakePostings(rng, s.n, s.first, s.max_gap, s.tf_lo, s.tf_hi, &ords,
                   &tfs);
      if (ords.back() < ords.front()) continue;  // uint32 overflowed: skip
      ExpectRoundTrip(ords, tfs);
    }
  }
}

TEST(PostingBlockCodecTest, CorruptionMatrixFailsCleanly) {
  std::mt19937_64 rng(99);
  std::vector<uint32_t> ords;
  std::vector<int32_t> tfs;
  MakePostings(rng, 128, 10, 1000, 1, 300, &ords, &tfs);
  std::vector<uint8_t> buf;
  EncodePostingBlock(ords.data(), tfs.data(), ords.size(), &buf);
  std::vector<uint32_t> out_ords(ords.size());
  std::vector<int32_t> out_tfs(tfs.size());

  // Every truncation point must fail (the codec knows its exact size).
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    EXPECT_FALSE(DecodePostingBlock(buf.data(), cut, ords.size(),
                                    out_ords.data(), out_tfs.data()))
        << "truncated to " << cut;
  }
  // Trailing garbage must fail too: offsets and payload disagree.
  std::vector<uint8_t> padded = buf;
  padded.push_back(0);
  EXPECT_FALSE(DecodePostingBlock(padded.data(), padded.size(), ords.size(),
                                  out_ords.data(), out_tfs.data()));
  // Width bytes flipped to invalid values.
  std::vector<uint8_t> bad = buf;
  bad[8] = 33;  // ord_width > 32
  EXPECT_FALSE(DecodePostingBlock(bad.data(), bad.size(), ords.size(),
                                  out_ords.data(), out_tfs.data()));
  bad = buf;
  bad[9] = 0xFF;  // tf_width > 32
  EXPECT_FALSE(DecodePostingBlock(bad.data(), bad.size(), ords.size(),
                                  out_ords.data(), out_tfs.data()));
  // Single-bit flips: decode either fails or yields a block of the right
  // shape — never an out-of-bounds access (ASan enforces the "never").
  for (size_t bit = 0; bit < buf.size() * 8; bit += 7) {
    std::vector<uint8_t> flipped = buf;
    flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    (void)DecodePostingBlock(flipped.data(), flipped.size(), ords.size(),
                             out_ords.data(), out_tfs.data());
  }
  // Empty block: only a zero-byte payload is valid.
  EXPECT_TRUE(DecodePostingBlock(buf.data(), 0, 0, out_ords.data(),
                                 out_tfs.data()));
  EXPECT_FALSE(DecodePostingBlock(buf.data(), 1, 0, out_ords.data(),
                                  out_tfs.data()));
}

// ---------------------------------------------------------------------------
// Varint primitives
// ---------------------------------------------------------------------------

TEST(VarintTest, BoundaryValuesRoundTrip) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             16383,
                             16384,
                             (1ull << 35) - 1,
                             1ull << 35,
                             std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : values) {
    std::vector<uint8_t> buf;
    PutVarint64(v, &buf);
    const uint8_t* p = buf.data();
    uint64_t out = 0;
    ASSERT_TRUE(GetVarint64(&p, buf.data() + buf.size(), &out)) << v;
    EXPECT_EQ(out, v);
    EXPECT_EQ(p, buf.data() + buf.size());
  }
}

TEST(VarintTest, TruncationAndOverlongFail) {
  std::vector<uint8_t> buf;
  PutVarint64(std::numeric_limits<uint64_t>::max(), &buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    const uint8_t* p = buf.data();
    uint64_t out;
    EXPECT_FALSE(GetVarint64(&p, buf.data() + cut, &out));
  }
  // 11 continuation bytes: rejected rather than shifted past 64 bits.
  std::vector<uint8_t> overlong(11, 0x80);
  overlong.push_back(0x01);
  const uint8_t* p = overlong.data();
  uint64_t out;
  EXPECT_FALSE(GetVarint64(&p, overlong.data() + overlong.size(), &out));
}

TEST(VarintTest, ZigZagIsAnInvolutionOnExtremes) {
  const int64_t values[] = {0, -1, 1, std::numeric_limits<int64_t>::min(),
                            std::numeric_limits<int64_t>::max()};
  for (int64_t v : values) EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
}

// ---------------------------------------------------------------------------
// CompressedInts
// ---------------------------------------------------------------------------

template <typename T>
std::vector<T> RandomInts(std::mt19937_64& rng, size_t n) {
  std::uniform_int_distribution<T> dist(std::numeric_limits<T>::min(),
                                        std::numeric_limits<T>::max());
  std::vector<T> out(n);
  // Mix of smooth runs (delta-friendly) and full-range jumps.
  T v = 0;
  for (size_t i = 0; i < n; ++i) {
    if (i % 17 == 0) {
      v = dist(rng);
    } else {
      // Unsigned add: wraparound instead of signed-overflow UB near max.
      v = static_cast<T>(static_cast<std::make_unsigned_t<T>>(v) +
                         static_cast<std::make_unsigned_t<T>>(i % 5));
    }
    out[i] = v;
  }
  return out;
}

template <typename T>
void ExpectBlobRoundTrip(const std::vector<T>& values) {
  std::vector<uint8_t> blob = EncodeIntBlob<T>(values);
  auto parsed = CompressedInts<T>::Parse(std::move(blob));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto& c = *parsed.ValueOrDie();
  ASSERT_EQ(c.size(), values.size());
  std::span<const T> all = c.All();
  for (size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(all[i], values[i]) << "index " << i;
  }
}

TEST(CompressedIntsTest, RoundTripShapes) {
  std::mt19937_64 rng(4242);
  ExpectBlobRoundTrip<int64_t>({});
  ExpectBlobRoundTrip<int64_t>({0});
  ExpectBlobRoundTrip<int64_t>({std::numeric_limits<int64_t>::min(),
                                std::numeric_limits<int64_t>::max()});
  ExpectBlobRoundTrip<int64_t>(RandomInts<int64_t>(rng, kIntSegmentLen - 1));
  ExpectBlobRoundTrip<int64_t>(RandomInts<int64_t>(rng, kIntSegmentLen));
  ExpectBlobRoundTrip<int64_t>(RandomInts<int64_t>(rng, kIntSegmentLen + 1));
  ExpectBlobRoundTrip<int64_t>(RandomInts<int64_t>(rng, 3 * kIntSegmentLen));
  ExpectBlobRoundTrip<int32_t>({});
  ExpectBlobRoundTrip<int32_t>({-1, 0, 1});
  ExpectBlobRoundTrip<int32_t>(RandomInts<int32_t>(rng, kIntSegmentLen + 7));
}

TEST(CompressedIntsTest, LazyPointAccessAndAccounting) {
  std::vector<int64_t> values(2 * kIntSegmentLen + 5);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int64_t>(i) * 3 - 1000;
  }
  auto parsed = CompressedInts<int64_t>::Parse(EncodeIntBlob<int64_t>(values),
                                               /*trusted=*/true);
  ASSERT_TRUE(parsed.ok());
  const auto& c = *parsed.ValueOrDie();
  EXPECT_GT(c.CompressedBytes(), 0u);
  EXPECT_LT(c.CompressedBytes(), values.size() * sizeof(int64_t));
  EXPECT_EQ(c.DecodedHeapBytes(), 0u);  // nothing touched yet
  EXPECT_EQ(c.At(kIntSegmentLen + 3),
            values[kIntSegmentLen + 3]);  // decodes segment 1 only
  EXPECT_GT(c.DecodedHeapBytes(), 0u);
  EXPECT_EQ(c.At(0), values[0]);
  EXPECT_EQ(c.At(values.size() - 1), values.back());
}

TEST(CompressedIntsTest, ConcurrentFirstTouchIsSafe) {
  std::vector<int64_t> values(4 * kIntSegmentLen);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int64_t>(i * i % 100003);
  }
  auto parsed = CompressedInts<int64_t>::Parse(EncodeIntBlob<int64_t>(values),
                                               /*trusted=*/true);
  ASSERT_TRUE(parsed.ok());
  const auto c = parsed.ValueOrDie();
  std::vector<std::thread> workers;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&, t] {
      for (size_t i = static_cast<size_t>(t); i < values.size(); i += 8) {
        if (c->At(i) != values[i]) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(CompressedIntsTest, CorruptionMatrixYieldsParseErrors) {
  std::vector<int64_t> values(kIntSegmentLen + 100);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int64_t>(i) * 7919;
  }
  const std::vector<uint8_t> blob = EncodeIntBlob<int64_t>(values);

  // Truncation at every prefix length: ParseError, never UB. (Untrusted
  // parse decode-checks the whole stream, so corruption in any byte is
  // caught here rather than at access time.)
  for (size_t cut = 0; cut < blob.size(); cut += 13) {
    std::vector<uint8_t> t(blob.begin(), blob.begin() + cut);
    EXPECT_FALSE(CompressedInts<int64_t>::Parse(std::move(t)).ok())
        << "truncated to " << cut;
  }
  // Header corruptions.
  auto flip = [&](size_t at, uint8_t mask) {
    std::vector<uint8_t> b = blob;
    b[at] ^= mask;
    return CompressedInts<int64_t>::Parse(std::move(b));
  };
  EXPECT_FALSE(flip(0, 0xFF).ok());   // magic
  EXPECT_FALSE(flip(1, 0x0C).ok());   // element size
  EXPECT_FALSE(flip(2, 0x01).ok());   // count
  EXPECT_FALSE(flip(14, 0x01).ok());  // num_segments
  // Bit flips across the segment table and payload: either a clean
  // ParseError or (for flips that keep the stream well-formed) different
  // values — never an out-of-bounds access.
  for (size_t bit = 18 * 8; bit < blob.size() * 8; bit += 101) {
    auto r = flip(bit / 8, static_cast<uint8_t>(1u << (bit % 8)));
    if (r.ok()) (void)r.ValueOrDie()->All();
  }
  // Wrong element type for the blob.
  std::vector<uint8_t> b64 = blob;
  EXPECT_FALSE(CompressedInts<int32_t>::Parse(std::move(b64)).ok());
  // Range enforcement: values exceed [0, 10].
  std::vector<uint8_t> b2 = blob;
  EXPECT_FALSE(CompressedInts<int64_t>::Parse(std::move(b2),
                                              /*trusted=*/false,
                                              /*min_value=*/0,
                                              /*max_value=*/10)
                   .ok());
}

// ---------------------------------------------------------------------------
// Compressed Column representation
// ---------------------------------------------------------------------------

TEST(CompressedColumnTest, Int64ColumnIsTransparent) {
  std::vector<int64_t> values = {5, -3, 0, 1 << 20, -(1ll << 40), 17};
  Column plain = Column::MakeInt64(values);
  Column comp = plain.Compressed();
  ASSERT_TRUE(comp.compressed());
  EXPECT_FALSE(comp.mapped());
  ASSERT_EQ(comp.size(), plain.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(comp.Int64At(i), values[i]);
  }
  EXPECT_TRUE(comp.Equals(plain));
  EXPECT_GT(comp.CompressedByteSize(), 0u);
  EXPECT_EQ(plain.CompressedByteSize(), 0u);
  // Compressing twice is a no-op.
  EXPECT_TRUE(comp.Compressed().Equals(plain));
  // int64_data() materializes the same span contents.
  std::span<const int64_t> data = comp.int64_data();
  ASSERT_EQ(data.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) EXPECT_EQ(data[i], values[i]);
}

TEST(CompressedColumnTest, DictStringColumnIsTransparent) {
  Column plain = Column::MakeString({"b", "a", "b", "c", "a"});
  Column dict = plain.DictEncode();
  Column comp = dict.Compressed();
  ASSERT_TRUE(comp.compressed());
  ASSERT_TRUE(comp.dict_encoded());
  ASSERT_EQ(comp.size(), plain.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(comp.StringAt(i), plain.StringAt(i));
    EXPECT_EQ(comp.HashAt(i), plain.HashAt(i));
  }
  EXPECT_TRUE(comp.Equals(plain));
  EXPECT_GT(comp.CompressedByteSize(), 0u);
}

TEST(CompressedColumnTest, FloatAndPlainStringPassThrough) {
  Column f = Column::MakeFloat64({1.5, -2.5});
  EXPECT_FALSE(f.Compressed().compressed());
  Column s = Column::MakeString({"x", "y"});
  EXPECT_FALSE(s.Compressed().compressed());
}

TEST(CompressedColumnTest, CompressColumnsSharesUncompressible) {
  RelationBuilder b({{"id", DataType::kInt64},
                     {"score", DataType::kFloat64},
                     {"tag", DataType::kString}});
  ASSERT_TRUE(b.AddRow({int64_t{1}, 0.5, std::string("x")}).ok());
  ASSERT_TRUE(b.AddRow({int64_t{2}, 1.5, std::string("y")}).ok());
  RelationPtr rel = b.Build().ValueOrDie();
  RelationPtr crel = CompressColumns(rel);
  ASSERT_NE(crel, nullptr);
  EXPECT_TRUE(crel->column(0).compressed());
  EXPECT_FALSE(crel->column(1).compressed());  // float64: unchanged
  EXPECT_GT(crel->CompressedByteSize(), 0u);
  for (size_t r = 0; r < rel->num_rows(); ++r) {
    EXPECT_EQ(crel->column(0).Int64At(r), rel->column(0).Int64At(r));
    EXPECT_EQ(crel->column(2).StringAt(r), rel->column(2).StringAt(r));
  }
  // Nothing to compress -> the same relation comes back.
  RelationBuilder b2({{"v", DataType::kFloat64}});
  ASSERT_TRUE(b2.AddRow({0.25}).ok());
  RelationPtr rel2 = b2.Build().ValueOrDie();
  EXPECT_EQ(CompressColumns(rel2).get(), rel2.get());
}

}  // namespace
}  // namespace spindle
