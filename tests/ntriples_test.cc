#include <gtest/gtest.h>

#include "triples/ntriples.h"

namespace spindle {
namespace {

TEST(NTriplesTest, ParsesIrisAndLiterals) {
  const char* src =
      "# a comment\n"
      "<lot23> <hasAuction> <auction12> .\n"
      "<lot23> <description> \"antique oak table\" .\n"
      "\n"
      "<lot23> <startPrice> \"100\"^^<int> .\n"
      "<lot23> <weightKg> \"12.5\"^^<double> .\n";
  TripleStore store = ParseNTriples(src).ValueOrDie();
  EXPECT_EQ(store.size(), 4u);
  RelationPtr strs = store.StringTriples().ValueOrDie();
  ASSERT_EQ(strs->num_rows(), 2u);
  EXPECT_EQ(strs->column(0).StringAt(0), "lot23");
  EXPECT_EQ(strs->column(2).StringAt(0), "auction12");
  EXPECT_EQ(strs->column(2).StringAt(1), "antique oak table");
  RelationPtr ints = store.IntTriples().ValueOrDie();
  ASSERT_EQ(ints->num_rows(), 1u);
  EXPECT_EQ(ints->column(2).Int64At(0), 100);
  RelationPtr flts = store.FloatTriples().ValueOrDie();
  ASSERT_EQ(flts->num_rows(), 1u);
  EXPECT_DOUBLE_EQ(flts->column(2).Float64At(0), 12.5);
}

TEST(NTriplesTest, XsdStyleDatatypes) {
  const char* src =
      "<s> <p> \"7\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n"
      "<s> <p> \"2.5\"^^<http://www.w3.org/2001/XMLSchema#double> .\n"
      "<s> <p> \"x\"^^<http://www.w3.org/2001/XMLSchema#string> .\n";
  TripleStore store = ParseNTriples(src).ValueOrDie();
  EXPECT_EQ(store.IntTriples().ValueOrDie()->num_rows(), 1u);
  EXPECT_EQ(store.FloatTriples().ValueOrDie()->num_rows(), 1u);
  EXPECT_EQ(store.StringTriples().ValueOrDie()->num_rows(), 1u);
}

TEST(NTriplesTest, ProbabilityExtension) {
  const char* src = "<s> <tags> \"vintage silver\" 0.8 .\n";
  TripleStore store = ParseNTriples(src).ValueOrDie();
  RelationPtr strs = store.StringTriples().ValueOrDie();
  EXPECT_DOUBLE_EQ(strs->column(3).Float64At(0), 0.8);
}

TEST(NTriplesTest, EscapesInLiterals) {
  const char* src = "<s> <p> \"a \\\"quoted\\\" tab\\tnewline\\n\" .\n";
  TripleStore store = ParseNTriples(src).ValueOrDie();
  EXPECT_EQ(store.StringTriples().ValueOrDie()->column(2).StringAt(0),
            "a \"quoted\" tab\tnewline\n");
}

TEST(NTriplesTest, MalformedLinesRejected) {
  EXPECT_FALSE(ParseNTriples("<s> <p> \"x\"").ok());        // no dot
  EXPECT_FALSE(ParseNTriples("<s> <p> .\n").ok());          // no object
  EXPECT_FALSE(ParseNTriples("s <p> \"x\" .\n").ok());      // bare subject
  EXPECT_FALSE(ParseNTriples("<s> <p> \"x .\n").ok());      // open literal
  EXPECT_FALSE(ParseNTriples("<s> <p> \"x\" 1.5 .\n").ok());  // bad prob
  EXPECT_FALSE(ParseNTriples("<s <p> \"x\" .\n").ok());     // open IRI
  EXPECT_FALSE(ParseNTriples("<s> <p> \"x\" . junk\n").ok());
}

TEST(NTriplesTest, RoundTrip) {
  TripleStore store;
  store.Add("lot1", "description", "a \"special\" item");
  store.Add("lot1", "tags", "rare", 0.75);
  store.AddInt("lot1", "price", 42);
  store.AddFloat("lot1", "weight", 1.25);
  std::string text = ToNTriples(store).ValueOrDie();
  TripleStore back = ParseNTriples(text).ValueOrDie();
  EXPECT_TRUE(store.StringTriples().ValueOrDie()->Equals(
      *back.StringTriples().ValueOrDie()));
  EXPECT_TRUE(store.IntTriples().ValueOrDie()->Equals(
      *back.IntTriples().ValueOrDie()));
  EXPECT_TRUE(store.FloatTriples().ValueOrDie()->Equals(
      *back.FloatTriples().ValueOrDie()));
}

TEST(NTriplesTest, MissingFile) {
  EXPECT_EQ(LoadNTriplesFile("/no/such/file.nt").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace spindle
