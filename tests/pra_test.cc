#include <gtest/gtest.h>

#include <cmath>

#include "pra/pra_ops.h"
#include "storage/relation.h"

namespace spindle {
namespace {

const FunctionRegistry& Reg() { return FunctionRegistry::Default(); }

ProbRelation MakeEvents(
    const std::vector<std::pair<std::string, double>>& rows) {
  RelationBuilder b({{"id", DataType::kString}, {"p", DataType::kFloat64}});
  for (const auto& [id, p] : rows) {
    EXPECT_TRUE(b.AddRow({id, p}).ok());
  }
  return ProbRelation::Wrap(b.Build().ValueOrDie()).ValueOrDie();
}

TEST(CombineProbTest, AllAssumptions) {
  EXPECT_DOUBLE_EQ(CombineProb(Assumption::kIndependent, 0.5, 0.5), 0.75);
  EXPECT_DOUBLE_EQ(CombineProb(Assumption::kDisjoint, 0.3, 0.4), 0.7);
  EXPECT_DOUBLE_EQ(CombineProb(Assumption::kMax, 0.3, 0.4), 0.4);
  EXPECT_DOUBLE_EQ(CombineProb(Assumption::kAll, 0.3, 0.4), 0.3);
}

TEST(ProbRelationTest, WrapRequiresTrailingP) {
  RelationBuilder b({{"p", DataType::kFloat64}, {"id", DataType::kString}});
  EXPECT_TRUE(b.AddRow({0.5, std::string("a")}).ok());
  EXPECT_FALSE(ProbRelation::Wrap(b.Build().ValueOrDie()).ok());
}

TEST(ProbRelationTest, AttachAddsCertainty) {
  RelationBuilder b({{"id", DataType::kString}});
  ASSERT_TRUE(b.AddRow({std::string("a")}).ok());
  ProbRelation pr = ProbRelation::Attach(b.Build().ValueOrDie()).ValueOrDie();
  EXPECT_EQ(pr.arity(), 1u);
  EXPECT_DOUBLE_EQ(pr.prob_at(0), 1.0);
  EXPECT_TRUE(pr.ProbsAreNormalized());
}

TEST(ProbRelationTest, AttachIsIdempotent) {
  ProbRelation pr = MakeEvents({{"a", 0.5}});
  ProbRelation again = ProbRelation::Attach(pr.rel()).ValueOrDie();
  EXPECT_DOUBLE_EQ(again.prob_at(0), 0.5);
  EXPECT_EQ(again.arity(), 1u);
}

TEST(PraSelectTest, ProbabilitiesPassThrough) {
  ProbRelation pr = MakeEvents({{"a", 0.5}, {"b", 0.25}});
  ProbRelation out =
      pra::Select(pr, Expr::Eq(Expr::Column(0), Expr::LitString("b")), Reg())
          .ValueOrDie();
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(out.prob_at(0), 0.25);
}

TEST(PraProjectTest, IndependentMerge) {
  ProbRelation pr = MakeEvents({{"a", 0.5}, {"a", 0.5}, {"b", 0.1}});
  ProbRelation out =
      pra::Project(pr, {Expr::Column(0)}, {"id"}, Assumption::kIndependent,
                   Reg())
          .ValueOrDie();
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(out.prob_at(0), 0.75);  // 1 - 0.5*0.5
  EXPECT_DOUBLE_EQ(out.prob_at(1), 0.1);
}

TEST(PraProjectTest, DisjointMergeSums) {
  ProbRelation pr = MakeEvents({{"a", 0.2}, {"a", 0.3}, {"a", 0.1}});
  ProbRelation out =
      pra::Project(pr, {Expr::Column(0)}, {"id"}, Assumption::kDisjoint,
                   Reg())
          .ValueOrDie();
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_NEAR(out.prob_at(0), 0.6, 1e-12);
}

TEST(PraProjectTest, MaxMerge) {
  ProbRelation pr = MakeEvents({{"a", 0.2}, {"a", 0.9}});
  ProbRelation out = pra::Project(pr, {Expr::Column(0)}, {"id"},
                                  Assumption::kMax, Reg())
                         .ValueOrDie();
  EXPECT_DOUBLE_EQ(out.prob_at(0), 0.9);
}

TEST(PraProjectTest, AllKeepsDuplicates) {
  ProbRelation pr = MakeEvents({{"a", 0.2}, {"a", 0.9}});
  ProbRelation out = pra::Project(pr, {Expr::Column(0)}, {"id"},
                                  Assumption::kAll, Reg())
                         .ValueOrDie();
  EXPECT_EQ(out.num_rows(), 2u);
}

TEST(PraProjectTest, CountingViaDisjointProjection) {
  // PRA counting: project certain tuples (p=1) onto a key; the disjoint
  // sum yields the frequency. This is exactly how tf is expressible in
  // the algebra.
  ProbRelation pr =
      MakeEvents({{"doc1", 1.0}, {"doc1", 1.0}, {"doc1", 1.0},
                  {"doc2", 1.0}});
  ProbRelation out =
      pra::Project(pr, {Expr::Column(0)}, {"doc"}, Assumption::kDisjoint,
                   Reg())
          .ValueOrDie();
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(out.prob_at(0), 3.0);
  EXPECT_DOUBLE_EQ(out.prob_at(1), 1.0);
}

TEST(PraProjectTest, EmptyItemsAggregateEverything) {
  ProbRelation pr = MakeEvents({{"a", 0.25}, {"b", 0.5}});
  ProbRelation out =
      pra::Project(pr, {}, {}, Assumption::kDisjoint, Reg()).ValueOrDie();
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(out.prob_at(0), 0.75);
}

TEST(PraJoinTest, IndependentJoinMultiplies) {
  ProbRelation l = MakeEvents({{"x", 0.5}, {"y", 0.4}});
  ProbRelation r = MakeEvents({{"x", 0.5}, {"z", 0.9}});
  ProbRelation out = pra::JoinIndependent(l, r, {{0, 0}}).ValueOrDie();
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.arity(), 2u);
  EXPECT_DOUBLE_EQ(out.prob_at(0), 0.25);
}

TEST(PraJoinTest, PCannotBeAKey) {
  ProbRelation l = MakeEvents({{"x", 0.5}});
  ProbRelation r = MakeEvents({{"x", 0.5}});
  EXPECT_EQ(pra::JoinIndependent(l, r, {{1, 0}}).status().code(),
            StatusCode::kOutOfRange);
}

TEST(PraJoinTest, PaperToyScenario) {
  // The paper's docs view: JOIN INDEPENDENT of category/description
  // selections over the triples table; p = t1.p * t2.p.
  RelationBuilder b({{"subject", DataType::kString},
                     {"property", DataType::kString},
                     {"object", DataType::kString},
                     {"p", DataType::kFloat64}});
  auto add = [&](const char* s, const char* pr, const char* o, double p) {
    EXPECT_TRUE(
        b.AddRow({std::string(s), std::string(pr), std::string(o), p}).ok());
  };
  add("prod1", "category", "toy", 0.9);
  add("prod1", "description", "a red toy car", 1.0);
  add("prod2", "category", "book", 1.0);
  add("prod2", "description", "a history book", 1.0);
  ProbRelation triples =
      ProbRelation::Wrap(b.Build().ValueOrDie()).ValueOrDie();

  auto cat_toy = pra::Select(
      triples,
      Expr::And(Expr::Eq(Expr::Column(1), Expr::LitString("category")),
                Expr::Eq(Expr::Column(2), Expr::LitString("toy"))),
      Reg());
  auto desc = pra::Select(
      triples, Expr::Eq(Expr::Column(1), Expr::LitString("description")),
      Reg());
  ASSERT_TRUE(cat_toy.ok() && desc.ok());
  ProbRelation joined = pra::JoinIndependent(cat_toy.ValueOrDie(),
                                             desc.ValueOrDie(), {{0, 0}})
                            .ValueOrDie();
  // PROJECT [$1, $6]: subject of t1 and object of t2.
  ProbRelation docs =
      pra::Project(joined, {Expr::Column(0), Expr::Column(5)},
                   {"docID", "data"}, Assumption::kAll, Reg())
          .ValueOrDie();
  ASSERT_EQ(docs.num_rows(), 1u);
  EXPECT_EQ(docs.rel()->column(0).StringAt(0), "prod1");
  EXPECT_EQ(docs.rel()->column(1).StringAt(0), "a red toy car");
  EXPECT_DOUBLE_EQ(docs.prob_at(0), 0.9);
}

TEST(PraUniteTest, DisjointSums) {
  ProbRelation a = MakeEvents({{"x", 0.3}, {"y", 0.2}});
  ProbRelation b = MakeEvents({{"x", 0.4}});
  ProbRelation out =
      pra::Unite(Assumption::kDisjoint, {a, b}).ValueOrDie();
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_NEAR(out.prob_at(0), 0.7, 1e-12);  // x
  EXPECT_DOUBLE_EQ(out.prob_at(1), 0.2);    // y
}

TEST(PraUniteTest, IndependentNoisyOr) {
  ProbRelation a = MakeEvents({{"x", 0.5}});
  ProbRelation b = MakeEvents({{"x", 0.5}});
  ProbRelation out =
      pra::Unite(Assumption::kIndependent, {a, b}).ValueOrDie();
  EXPECT_DOUBLE_EQ(out.prob_at(0), 0.75);
}

TEST(PraUniteTest, IncompatibleSchemasRejected) {
  ProbRelation a = MakeEvents({{"x", 0.5}});
  RelationBuilder b({{"id", DataType::kInt64}, {"p", DataType::kFloat64}});
  ASSERT_TRUE(b.AddRow({int64_t{1}, 0.5}).ok());
  ProbRelation other =
      ProbRelation::Wrap(b.Build().ValueOrDie()).ValueOrDie();
  EXPECT_FALSE(pra::Unite(Assumption::kDisjoint, {a, other}).ok());
}

TEST(PraWeightTest, ScalesP) {
  ProbRelation pr = MakeEvents({{"a", 0.5}, {"b", 1.0}});
  ProbRelation out = pra::Weight(pr, 0.3).ValueOrDie();
  EXPECT_DOUBLE_EQ(out.prob_at(0), 0.15);
  EXPECT_DOUBLE_EQ(out.prob_at(1), 0.3);
}

TEST(PraWeightTest, LinearMixViaWeightAndUnite) {
  // The paper's "mixed via linear combination, with the given weights".
  ProbRelation left = MakeEvents({{"lot1", 0.8}, {"lot2", 0.2}});
  ProbRelation right = MakeEvents({{"lot1", 0.1}, {"lot3", 0.9}});
  ProbRelation mix =
      pra::Unite(Assumption::kDisjoint,
                 {pra::Weight(left, 0.7).ValueOrDie(),
                  pra::Weight(right, 0.3).ValueOrDie()})
          .ValueOrDie();
  ASSERT_EQ(mix.num_rows(), 3u);
  // lot1: 0.7*0.8 + 0.3*0.1 = 0.59
  EXPECT_NEAR(mix.prob_at(0), 0.59, 1e-12);
}

TEST(PraComplementTest, OneMinusP) {
  ProbRelation pr = MakeEvents({{"a", 0.25}});
  ProbRelation out = pra::Complement(pr).ValueOrDie();
  EXPECT_DOUBLE_EQ(out.prob_at(0), 0.75);
}

TEST(PraBayesTest, GlobalNormalization) {
  ProbRelation pr = MakeEvents({{"a", 1.0}, {"b", 3.0}});
  ProbRelation out = pra::Bayes(pr, {}).ValueOrDie();
  EXPECT_DOUBLE_EQ(out.prob_at(0), 0.25);
  EXPECT_DOUBLE_EQ(out.prob_at(1), 0.75);
  EXPECT_TRUE(out.ProbsAreNormalized());
}

TEST(PraBayesTest, GroupedNormalization) {
  RelationBuilder b({{"group", DataType::kString},
                     {"id", DataType::kString},
                     {"p", DataType::kFloat64}});
  ASSERT_TRUE(b.AddRow({std::string("g1"), std::string("a"), 2.0}).ok());
  ASSERT_TRUE(b.AddRow({std::string("g1"), std::string("b"), 2.0}).ok());
  ASSERT_TRUE(b.AddRow({std::string("g2"), std::string("c"), 5.0}).ok());
  ProbRelation pr = ProbRelation::Wrap(b.Build().ValueOrDie()).ValueOrDie();
  ProbRelation out = pra::Bayes(pr, {0}).ValueOrDie();
  EXPECT_DOUBLE_EQ(out.prob_at(0), 0.5);
  EXPECT_DOUBLE_EQ(out.prob_at(1), 0.5);
  EXPECT_DOUBLE_EQ(out.prob_at(2), 1.0);
}

TEST(PraBayesTest, ZeroMassGroupStaysZero) {
  ProbRelation pr = MakeEvents({{"a", 0.0}, {"a", 0.0}});
  ProbRelation out = pra::Bayes(pr, {0}).ValueOrDie();
  EXPECT_DOUBLE_EQ(out.prob_at(0), 0.0);
}

TEST(PraTopKTest, OrdersByP) {
  ProbRelation pr =
      MakeEvents({{"a", 0.2}, {"b", 0.9}, {"c", 0.5}, {"d", 0.7}});
  ProbRelation out = pra::TopKByProb(pr, 2).ValueOrDie();
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.rel()->column(0).StringAt(0), "b");
  EXPECT_EQ(out.rel()->column(0).StringAt(1), "d");
}

// Property: PROJECT INDEPENDENT / MAX keep probabilities in [0,1] for
// normalized inputs; JOIN INDEPENDENT of normalized inputs stays
// normalized. Swept over several synthetic sizes.
class PraNormalizationProperty : public ::testing::TestWithParam<int> {};

TEST_P(PraNormalizationProperty, OpsPreserveNormalization) {
  int n = GetParam();
  std::vector<std::pair<std::string, double>> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back({"id" + std::to_string(i % 7),
                    (i % 10) / 10.0});  // p in [0, 0.9]
  }
  ProbRelation pr = MakeEvents(rows);
  for (Assumption a : {Assumption::kIndependent, Assumption::kMax}) {
    ProbRelation out =
        pra::Project(pr, {Expr::Column(0)}, {"id"}, a, Reg()).ValueOrDie();
    EXPECT_TRUE(out.ProbsAreNormalized()) << AssumptionName(a);
  }
  ProbRelation joined = pra::JoinIndependent(pr, pr, {{0, 0}}).ValueOrDie();
  EXPECT_TRUE(joined.ProbsAreNormalized());
  EXPECT_TRUE(pra::Bayes(pr, {0}).ValueOrDie().ProbsAreNormalized());
}

INSTANTIATE_TEST_SUITE_P(Sizes, PraNormalizationProperty,
                         ::testing::Values(1, 5, 20, 100, 1000));

// Property: Unite is commutative for symmetric assumptions (up to row
// order), verified via the merged probability of a shared key.
TEST(PraUniteTest, CommutativeProbabilities) {
  ProbRelation a = MakeEvents({{"x", 0.3}, {"y", 0.2}});
  ProbRelation b = MakeEvents({{"x", 0.4}, {"z", 0.6}});
  for (Assumption asm_ : {Assumption::kIndependent, Assumption::kDisjoint,
                          Assumption::kMax}) {
    ProbRelation ab = pra::Unite(asm_, {a, b}).ValueOrDie();
    ProbRelation ba = pra::Unite(asm_, {b, a}).ValueOrDie();
    // Find "x" in both.
    auto find_p = [](const ProbRelation& pr, const std::string& key) {
      for (size_t r = 0; r < pr.num_rows(); ++r) {
        if (pr.rel()->column(0).StringAt(r) == key) return pr.prob_at(r);
      }
      return -1.0;
    };
    EXPECT_DOUBLE_EQ(find_p(ab, "x"), find_p(ba, "x"))
        << AssumptionName(asm_);
    EXPECT_DOUBLE_EQ(find_p(ab, "z"), find_p(ba, "z"));
  }
}

}  // namespace
}  // namespace spindle
