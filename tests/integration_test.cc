/// \file integration_test.cc
/// \brief Cross-module properties: the strategy layer, SpinQL evaluator,
/// PRA operators and IR pipeline must agree with each other and be
/// transparent to caching.

#include <gtest/gtest.h>

#include <map>

#include "ir/ranking.h"
#include "spinql/evaluator.h"
#include "strategy/prebuilt.h"
#include "triples/graph.h"
#include "workload/graph_gen.h"
#include "workload/text_gen.h"

namespace spindle {
namespace {

std::map<std::string, double> ById(const ProbRelation& rel) {
  std::map<std::string, double> out;
  for (size_t r = 0; r < rel.num_rows(); ++r) {
    out[rel.rel()->column(0).StringAt(r)] = rel.prob_at(r);
  }
  return out;
}

class GeneratedCatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ProductCatalogOptions opts;
    opts.num_products = 300;
    TripleStore store = GenerateProductCatalog(opts).ValueOrDie();
    ASSERT_TRUE(store.RegisterInto(catalog_).ok());
    TextCollectionOptions vocab;
    vocab.vocab_size = opts.vocab_size;
    queries_ = GenerateQueries(vocab, 5, 3);
  }

  Catalog catalog_;
  MaterializationCache cache_{256 << 20};
  std::vector<std::string> queries_;
};

TEST_F(GeneratedCatalogTest, StrategyMatchesManualPipeline) {
  // Run the Fig. 2 strategy...
  strategy::StrategyExecutor exec(&catalog_, &cache_);
  strategy::ToyStrategyOptions sopts;
  sopts.top_k = 1000;  // effectively no cutoff
  strategy::Strategy strat =
      strategy::MakeToyStrategy(sopts).ValueOrDie();
  ProbRelation via_strategy =
      exec.Run(strat, queries_[0]).ValueOrDie();

  // ...and rebuild the same answer by hand with the graph + IR APIs.
  RelationPtr triples = catalog_.Get("triples").ValueOrDie();
  ProbRelation products = SelectByType(triples, "product").ValueOrDie();
  ProbRelation toys = ProbRelation::Wrap(triples).ValueOrDie();
  // products with category=toy:
  ProbRelation toy_ids =
      SelectByProperty(triples, "category", "toy").ValueOrDie();
  ProbRelation docs =
      ExtractProperty(toy_ids, triples, "description").ValueOrDie();

  // Dense ids for the relational index.
  RelationBuilder db({{"docID", DataType::kInt64},
                      {"data", DataType::kString}});
  std::vector<std::string> ids;
  for (size_t r = 0; r < docs.num_rows(); ++r) {
    ids.push_back(docs.rel()->column(0).StringAt(r));
    ASSERT_TRUE(db.AddRow({static_cast<int64_t>(r + 1),
                           docs.rel()->column(1).StringAt(r)})
                    .ok());
  }
  Analyzer an = Analyzer::Make({}).ValueOrDie();
  auto idx = TextIndex::Build(db.Build().ValueOrDie(), an).ValueOrDie();
  RelationPtr q = idx->QueryTerms(queries_[0]).ValueOrDie();
  RelationPtr scored = RankBm25(*idx, q).ValueOrDie();

  std::map<std::string, double> manual;
  for (size_t r = 0; r < scored->num_rows(); ++r) {
    manual[ids[static_cast<size_t>(scored->column(0).Int64At(r)) - 1]] +=
        scored->column(1).Float64At(r);
  }
  auto strategic = ById(via_strategy);
  ASSERT_EQ(strategic.size(), manual.size());
  for (const auto& [id, score] : manual) {
    ASSERT_TRUE(strategic.count(id)) << id;
    EXPECT_NEAR(strategic[id], score, 1e-9) << id;
  }
}

TEST_F(GeneratedCatalogTest, CacheIsTransparent) {
  // Same program with and without the materialization cache gives
  // identical results.
  strategy::Strategy strat = strategy::MakeToyStrategy().ValueOrDie();
  spinql::Program program = strat.Compile().ValueOrDie();

  strategy::StrategyExecutor cached(&catalog_, &cache_);
  strategy::StrategyExecutor uncached(&catalog_, nullptr);
  for (const auto& q : queries_) {
    ProbRelation a = cached.RunProgram(program, q).ValueOrDie();
    ProbRelation b = uncached.RunProgram(program, q).ValueOrDie();
    EXPECT_TRUE(a.rel()->Equals(*b.rel())) << q;
  }
  EXPECT_GT(cache_.stats().hits, 0u);
}

TEST_F(GeneratedCatalogTest, RepeatedQueriesAreIdentical) {
  strategy::StrategyExecutor exec(&catalog_, &cache_);
  strategy::Strategy strat = strategy::MakeToyStrategy().ValueOrDie();
  ProbRelation first = exec.Run(strat, queries_[1]).ValueOrDie();
  ProbRelation second = exec.Run(strat, queries_[1]).ValueOrDie();
  EXPECT_TRUE(first.rel()->Equals(*second.rel()));
}

TEST_F(GeneratedCatalogTest, CompiledProgramRoundTripsThroughText) {
  // Compile -> print -> parse -> run must equal compile -> run.
  strategy::Strategy strat = strategy::MakeToyStrategy().ValueOrDie();
  spinql::Program program = strat.Compile().ValueOrDie();
  spinql::Program reparsed =
      spinql::Program::Parse(program.ToString()).ValueOrDie();
  strategy::StrategyExecutor exec(&catalog_, &cache_);
  ProbRelation a = exec.RunProgram(program, queries_[2]).ValueOrDie();
  ProbRelation b = exec.RunProgram(reparsed, queries_[2]).ValueOrDie();
  EXPECT_TRUE(a.rel()->Equals(*b.rel()));
}

class GeneratedAuctionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AuctionGraphOptions opts;
    opts.num_lots = 400;
    opts.num_auctions = 20;
    TripleStore store = GenerateAuctionGraph(opts).ValueOrDie();
    ASSERT_TRUE(store.RegisterInto(catalog_).ok());
    queries_ = GenerateAuctionQueries(opts, 4, 3);
  }

  Catalog catalog_;
  MaterializationCache cache_{512 << 20};
  std::vector<std::string> queries_;
};

TEST_F(GeneratedAuctionTest, OptimizerPreservesStrategyResults) {
  strategy::StrategyExecutor optimized(&catalog_, &cache_);
  MaterializationCache cache2(512 << 20);
  strategy::StrategyExecutor plain(&catalog_, &cache2);
  plain.set_optimize(false);
  strategy::Strategy strat =
      strategy::MakeProductionStrategy().ValueOrDie();
  for (const auto& q : queries_) {
    ProbRelation a = optimized.Run(strat, q).ValueOrDie();
    ProbRelation b = plain.Run(strat, q).ValueOrDie();
    ASSERT_EQ(a.num_rows(), b.num_rows()) << q;
    for (size_t r = 0; r < a.num_rows(); ++r) {
      EXPECT_EQ(a.rel()->column(0).StringAt(r),
                b.rel()->column(0).StringAt(r));
      EXPECT_NEAR(a.prob_at(r), b.prob_at(r), 1e-12);
    }
  }
}

TEST_F(GeneratedAuctionTest, MixIsLinearOnGeneratedData) {
  strategy::StrategyExecutor exec(&catalog_, &cache_);
  auto run = [&](double wl, double wr) {
    strategy::AuctionStrategyOptions o;
    o.lot_weight = wl;
    o.auction_weight = wr;
    o.top_k = 100000;
    return ById(exec.Run(strategy::MakeAuctionStrategy(o).ValueOrDie(),
                         queries_[0])
                    .ValueOrDie());
  };
  auto left = run(1.0, 0.0);
  auto right = run(0.0, 1.0);
  auto mixed = run(0.6, 0.4);
  for (const auto& [id, score] : mixed) {
    double l = left.count(id) ? left[id] : 0.0;
    double r = right.count(id) ? right[id] : 0.0;
    EXPECT_NEAR(score, 0.6 * l + 0.4 * r, 1e-9) << id;
  }
}

TEST_F(GeneratedAuctionTest, TopKIsPrefixOfFullRanking) {
  strategy::StrategyExecutor exec(&catalog_, &cache_);
  strategy::AuctionStrategyOptions small;
  small.top_k = 5;
  strategy::AuctionStrategyOptions big;
  big.top_k = 100000;
  ProbRelation top5 =
      exec.Run(strategy::MakeAuctionStrategy(small).ValueOrDie(),
               queries_[1])
          .ValueOrDie();
  ProbRelation all =
      exec.Run(strategy::MakeAuctionStrategy(big).ValueOrDie(),
               queries_[1])
          .ValueOrDie();
  ASSERT_LE(top5.num_rows(), 5u);
  for (size_t r = 0; r < top5.num_rows(); ++r) {
    EXPECT_EQ(top5.rel()->column(0).StringAt(r),
              all.rel()->column(0).StringAt(r));
    EXPECT_DOUBLE_EQ(top5.prob_at(r), all.prob_at(r));
  }
}

TEST_F(GeneratedAuctionTest, HotRequestsNeverRebuildIndexes) {
  strategy::StrategyExecutor exec(&catalog_, &cache_);
  strategy::Strategy strat =
      strategy::MakeAuctionStrategy().ValueOrDie();
  for (const auto& q : queries_) {
    ASSERT_TRUE(exec.Run(strat, q).ok());
  }
  // Fig. 3 builds exactly two on-demand indexes: lot descriptions and
  // auction descriptions.
  EXPECT_EQ(exec.evaluator().stats().index_misses, 2u);
  EXPECT_EQ(exec.evaluator().stats().index_hits,
            2 * (queries_.size() - 1));
}

TEST_F(GeneratedAuctionTest, UncertainTagsStayBounded) {
  // tags triples carry p = 0.8; any strategy over them must keep
  // probabilistic weighting intact (scores scale by tag confidence).
  RelationPtr triples = catalog_.Get("triples").ValueOrDie();
  ProbRelation lots = SelectByType(triples, "lot").ValueOrDie();
  ProbRelation tags =
      ExtractProperty(lots, triples, "tags").ValueOrDie();
  ASSERT_GT(tags.num_rows(), 0u);
  for (size_t r = 0; r < tags.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(tags.prob_at(r), 0.8);
  }
}

TEST_F(GeneratedAuctionTest, GraphTraversalRoundTrip) {
  // lots -> auctions -> lots covers every lot again (each lot has
  // exactly one hasAuction edge).
  RelationPtr triples = catalog_.Get("triples").ValueOrDie();
  ProbRelation lots = SelectByType(triples, "lot").ValueOrDie();
  ProbRelation auctions =
      Traverse(lots, triples, "hasAuction", Direction::kForward)
          .ValueOrDie();
  EXPECT_LE(auctions.num_rows(), 20u);
  ProbRelation back =
      Traverse(auctions, triples, "hasAuction", Direction::kBackward)
          .ValueOrDie();
  EXPECT_EQ(back.num_rows(), lots.num_rows());
}

}  // namespace
}  // namespace spindle
