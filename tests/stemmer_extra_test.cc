#include <gtest/gtest.h>

#include "text/stemmer.h"

namespace spindle {
namespace {

std::string German(const std::string& w) {
  return GetStemmer("sb-german").ValueOrDie()->Stem(w);
}

std::string P1(const std::string& w) {
  return GetStemmer("porter1").ValueOrDie()->Stem(w);
}

struct Vector {
  const char* word;
  const char* stem;
};

// ------------------------------------------------------------- German --

class GermanVectors : public ::testing::TestWithParam<Vector> {};

TEST_P(GermanVectors, StemsCorrectly) {
  EXPECT_EQ(German(GetParam().word), GetParam().stem) << GetParam().word;
}

INSTANTIATE_TEST_SUITE_P(
    Step1, GermanVectors,
    ::testing::Values(Vector{"katzen", "katz"}, Vector{"laufen", "lauf"},
                      Vector{"arbeiten", "arbeit"},
                      Vector{"hauses", "haus"}, Vector{"tisch", "tisch"},
                      Vector{"kinder", "kind"}, Vector{"bilder", "bild"},
                      Vector{"lief", "lief"}));

INSTANTIATE_TEST_SUITE_P(
    Umlauts, GermanVectors,
    ::testing::Values(Vector{"b\xc3\xbc" "cher", "buch"},   // bücher
                      Vector{"h\xc3\xa4user", "haus"},       // häuser
                      Vector{"sch\xc3\xb6nes", "schon"},     // schönes
                      Vector{"gr\xc3\xb6\xc3\x9fte", "grosst"}));  // größte

INSTANTIATE_TEST_SUITE_P(
    Steps2and3, GermanVectors,
    ::testing::Values(Vector{"schnellsten", "schnell"},
                      Vector{"bedeutung", "bedeut"},
                      Vector{"m\xc3\xb6glichkeiten", "moglich"},
                      Vector{"fr\xc3\xb6hlich", "frohlich"}));

TEST(GermanStemmerTest, ConflatesInflections) {
  EXPECT_EQ(German("zeitungen"), German("zeitung"));
  EXPECT_EQ(German("katze"), German("katzen"));
  EXPECT_EQ(German("hauses"), German("haus"));
}

TEST(GermanStemmerTest, ShortWordsStable) {
  EXPECT_EQ(German("ab"), "ab");
  EXPECT_EQ(German(""), "");
}

// --------------------------------------------------------------- Dutch --

std::string Dutch(const std::string& w) {
  return GetStemmer("sb-dutch").ValueOrDie()->Stem(w);
}

class DutchVectors : public ::testing::TestWithParam<Vector> {};

TEST_P(DutchVectors, StemsCorrectly) {
  EXPECT_EQ(Dutch(GetParam().word), GetParam().stem) << GetParam().word;
}

INSTANTIATE_TEST_SUITE_P(
    Core, DutchVectors,
    ::testing::Values(Vector{"katten", "kat"},      // en + undouble
                      Vector{"huizen", "huiz"},
                      Vector{"kinderen", "kinder"},
                      Vector{"honds", "hond"},       // s-ending
                      Vector{"maan", "man"},         // vowel undoubling
                      Vector{"brood", "brod"},       // (spec examples)
                      Vector{"lichamelijk", "licham"},
                      Vector{"mogelijkheden", "mogelijk"},
                      Vector{"gemeente", "gemeent"},
                      Vector{"eieren", "eier"}));

TEST(DutchStemmerTest, ConflatesInflections) {
  EXPECT_EQ(Dutch("mogelijkheden"), Dutch("mogelijkheid"));
  EXPECT_EQ(Dutch("katten"), Dutch("kat"));
}

// ------------------------------------------------------------- Porter1 --

class Porter1Vectors : public ::testing::TestWithParam<Vector> {};

TEST_P(Porter1Vectors, StemsCorrectly) {
  EXPECT_EQ(P1(GetParam().word), GetParam().stem) << GetParam().word;
}

// From the examples in Porter's 1980 paper.
INSTANTIATE_TEST_SUITE_P(
    PaperExamples, Porter1Vectors,
    ::testing::Values(
        Vector{"caresses", "caress"}, Vector{"ponies", "poni"},
        Vector{"ties", "ti"},  // Porter1 differs from Porter2 here
        Vector{"caress", "caress"}, Vector{"cats", "cat"},
        Vector{"feed", "feed"}, Vector{"agreed", "agre"},
        Vector{"plastered", "plaster"}, Vector{"bled", "bled"},
        Vector{"motoring", "motor"}, Vector{"sing", "sing"},
        Vector{"conflated", "conflat"}, Vector{"troubled", "troubl"},
        Vector{"sized", "size"}, Vector{"hopping", "hop"},
        Vector{"tanned", "tan"}, Vector{"falling", "fall"},
        Vector{"hissing", "hiss"}, Vector{"fizzed", "fizz"},
        Vector{"failing", "fail"}, Vector{"filing", "file"},
        Vector{"happy", "happi"}, Vector{"sky", "sky"},
        Vector{"relational", "relat"}, Vector{"conditional", "condit"},
        Vector{"rational", "ration"}, Vector{"valenci", "valenc"},
        Vector{"digitizer", "digit"}, Vector{"operator", "oper"},
        Vector{"feudalism", "feudal"}, Vector{"decisiveness", "decis"},
        Vector{"hopefulness", "hope"}, Vector{"formaliti", "formal"},
        Vector{"formative", "form"}, Vector{"formalize", "formal"},
        Vector{"electriciti", "electr"}, Vector{"electrical", "electr"},
        Vector{"hopeful", "hope"}, Vector{"goodness", "good"},
        Vector{"revival", "reviv"}, Vector{"allowance", "allow"},
        Vector{"inference", "infer"}, Vector{"airliner", "airlin"},
        Vector{"adjustable", "adjust"}, Vector{"defensible", "defens"},
        Vector{"irritant", "irrit"}, Vector{"replacement", "replac"},
        Vector{"adjustment", "adjust"}, Vector{"dependent", "depend"},
        Vector{"adoption", "adopt"}, Vector{"communism", "commun"},
        Vector{"activate", "activ"}, Vector{"angulariti", "angular"},
        Vector{"homologous", "homolog"}, Vector{"effective", "effect"},
        Vector{"bowdlerize", "bowdler"}, Vector{"probate", "probat"},
        Vector{"rate", "rate"}, Vector{"cease", "ceas"},
        Vector{"controll", "control"}, Vector{"roll", "roll"}));

TEST(Porter1Test, DiffersFromPorter2WhereDocumented) {
  const Stemmer* p2 = GetStemmer("sb-english").ValueOrDie();
  // "ties": Porter1 -> ti, Porter2 -> tie.
  EXPECT_EQ(P1("ties"), "ti");
  EXPECT_EQ(p2->Stem("ties"), "tie");
  // Porter2's exceptional forms are not in Porter1.
  EXPECT_EQ(P1("skies"), "ski");
  EXPECT_EQ(p2->Stem("skies"), "sky");
}

TEST(Porter1Test, ConflatesLikeP2OnCommonCases) {
  const Stemmer* p2 = GetStemmer("sb-english").ValueOrDie();
  for (const char* w : {"running", "cats", "motoring", "relational",
                        "goodness", "electrical"}) {
    EXPECT_EQ(P1(w), p2->Stem(w)) << w;
  }
}

}  // namespace
}  // namespace spindle
