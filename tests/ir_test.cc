#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "engine/ops.h"
#include "ir/indexing.h"
#include "ir/ranking.h"
#include "ir/searcher.h"

namespace spindle {
namespace {

/// Tiny hand-checkable corpus.
///   d1: "the cat sat on the mat"   -> the cat sat on the mat   (len 6)
///   d2: "The dog chased the cat"   -> the dog chase the cat    (len 5)
///   d3: "Dogs and cats"            -> dog and cat              (len 3)
RelationPtr TinyDocs() {
  RelationBuilder b({{"docID", DataType::kInt64},
                     {"data", DataType::kString}});
  EXPECT_TRUE(
      b.AddRow({int64_t{1}, std::string("the cat sat on the mat")}).ok());
  EXPECT_TRUE(
      b.AddRow({int64_t{2}, std::string("The dog chased the cat")}).ok());
  EXPECT_TRUE(b.AddRow({int64_t{3}, std::string("Dogs and cats")}).ok());
  return b.Build().ValueOrDie();
}

TextIndexPtr TinyIndex() {
  Analyzer a = Analyzer::Make({}).ValueOrDie();
  return TextIndex::Build(TinyDocs(), a).ValueOrDie();
}

std::map<int64_t, double> Scores(const RelationPtr& ranked) {
  std::map<int64_t, double> out;
  for (size_t r = 0; r < ranked->num_rows(); ++r) {
    const Column& v = ranked->column(1);
    out[ranked->column(0).Int64At(r)] =
        v.type() == DataType::kInt64 ? static_cast<double>(v.Int64At(r))
                                     : v.Float64At(r);
  }
  return out;
}

TEST(TokenizeRelationTest, ExplodesRows) {
  Analyzer a = Analyzer::Make({}).ValueOrDie();
  RelationPtr out = TokenizeRelation(TinyDocs(), 1, a).ValueOrDie();
  EXPECT_EQ(out->num_rows(), 14u);  // 6 + 5 + 3
  EXPECT_EQ(out->schema().field(0).name, "docID");
  EXPECT_EQ(out->schema().field(1).name, "term");
  EXPECT_EQ(out->schema().field(2).name, "pos");
  // First token of doc 1.
  EXPECT_EQ(out->column(0).Int64At(0), 1);
  EXPECT_EQ(out->column(1).StringAt(0), "the");
  EXPECT_EQ(out->column(2).Int64At(0), 0);
}

TEST(TokenizeRelationTest, NonStringColumnRejected) {
  Analyzer a = Analyzer::Make({}).ValueOrDie();
  EXPECT_FALSE(TokenizeRelation(TinyDocs(), 0, a).ok());
  EXPECT_FALSE(TokenizeRelation(TinyDocs(), 5, a).ok());
}

TEST(TextIndexTest, CollectionStats) {
  auto idx = TinyIndex();
  EXPECT_EQ(idx->stats().num_docs, 3);
  EXPECT_EQ(idx->stats().total_postings, 14);
  EXPECT_NEAR(idx->stats().avg_doc_len, 14.0 / 3.0, 1e-12);
  // distinct stems: the, cat, sat, on, mat, dog, chase, and = 8
  EXPECT_EQ(idx->stats().num_terms, 8);
}

TEST(TextIndexTest, DocLen) {
  auto idx = TinyIndex();
  auto lens = Scores(idx->doc_len());
  EXPECT_EQ(lens.size(), 3u);
  EXPECT_EQ(lens[1], 6);
  EXPECT_EQ(lens[2], 5);
  EXPECT_EQ(lens[3], 3);
}

TEST(TextIndexTest, EmptyDocGetsZeroLen) {
  RelationBuilder b({{"docID", DataType::kInt64},
                     {"data", DataType::kString}});
  ASSERT_TRUE(b.AddRow({int64_t{1}, std::string("hello")}).ok());
  ASSERT_TRUE(b.AddRow({int64_t{2}, std::string("...")}).ok());
  Analyzer a = Analyzer::Make({}).ValueOrDie();
  auto idx = TextIndex::Build(b.Build().ValueOrDie(), a).ValueOrDie();
  auto lens = Scores(idx->doc_len());
  EXPECT_EQ(lens[2], 0);
  EXPECT_EQ(idx->stats().num_docs, 2);
  EXPECT_NEAR(idx->stats().avg_doc_len, 0.5, 1e-12);
}

TEST(TextIndexTest, TermdictIsDense) {
  auto idx = TinyIndex();
  ASSERT_EQ(idx->termdict()->num_rows(), 8u);
  // termIDs are 1..8 (row_number() over distinct terms).
  std::vector<bool> seen(9, false);
  for (size_t r = 0; r < 8; ++r) {
    int64_t id = idx->termdict()->column(0).Int64At(r);
    ASSERT_GE(id, 1);
    ASSERT_LE(id, 8);
    EXPECT_FALSE(seen[id]);
    seen[id] = true;
  }
}

int64_t TermIdOf(const TextIndex& idx, const std::string& term) {
  for (size_t r = 0; r < idx.termdict()->num_rows(); ++r) {
    if (idx.termdict()->column(1).StringAt(r) == term) {
      return idx.termdict()->column(0).Int64At(r);
    }
  }
  return -1;
}

TEST(TextIndexTest, TermFrequencies) {
  auto idx = TinyIndex();
  int64_t the_id = TermIdOf(*idx, "the");
  ASSERT_GT(the_id, 0);
  // tf(the, d1) = 2, tf(the, d2) = 2.
  std::map<int64_t, int64_t> tf_the;
  for (size_t r = 0; r < idx->tf()->num_rows(); ++r) {
    if (idx->tf()->column(0).Int64At(r) == the_id) {
      tf_the[idx->tf()->column(1).Int64At(r)] =
          idx->tf()->column(2).Int64At(r);
    }
  }
  EXPECT_EQ(tf_the.size(), 2u);
  EXPECT_EQ(tf_the[1], 2);
  EXPECT_EQ(tf_the[2], 2);
}

TEST(TextIndexTest, DocumentFrequenciesAndIdf) {
  auto idx = TinyIndex();
  int64_t cat_id = TermIdOf(*idx, "cat");
  for (size_t r = 0; r < idx->idf()->num_rows(); ++r) {
    if (idx->idf()->column(0).Int64At(r) == cat_id) {
      EXPECT_EQ(idx->idf()->column(1).Int64At(r), 3);  // df
      // idf = ln((3 - 3 + 0.5) / (3 + 0.5)) — negative for ubiquitous
      // terms, as in the paper's raw BM25 formulation.
      EXPECT_NEAR(idx->idf()->column(2).Float64At(r), std::log(0.5 / 3.5),
                  1e-12);
      return;
    }
  }
  FAIL() << "cat not found in idf view";
}

TEST(TextIndexTest, CollectionFrequency) {
  auto idx = TinyIndex();
  int64_t cat_id = TermIdOf(*idx, "cat");
  for (size_t r = 0; r < idx->cf()->num_rows(); ++r) {
    if (idx->cf()->column(0).Int64At(r) == cat_id) {
      EXPECT_EQ(idx->cf()->column(1).Int64At(r), 3);
      return;
    }
  }
  FAIL() << "cat not found in cf view";
}

TEST(TextIndexTest, QueryTermsMapAndDropOov) {
  auto idx = TinyIndex();
  RelationPtr q = idx->QueryTerms("cats zebra dog").ValueOrDie();
  ASSERT_EQ(q->num_rows(), 2u);  // zebra is out-of-vocabulary
  EXPECT_EQ(q->column(0).Int64At(0), TermIdOf(*idx, "cat"));
  EXPECT_EQ(q->column(0).Int64At(1), TermIdOf(*idx, "dog"));
}

TEST(TextIndexTest, QueryTermsKeepDuplicates) {
  auto idx = TinyIndex();
  RelationPtr q = idx->QueryTerms("cat cat").ValueOrDie();
  EXPECT_EQ(q->num_rows(), 2u);
}

double Bm25Weight(double tf, double df, double len, double n, double avgdl,
                  double k1 = 1.2, double b = 0.75) {
  double idf = std::log((n - df + 0.5) / (df + 0.5));
  return idf * tf / (tf + k1 * (1 - b + b * len / avgdl));
}

TEST(RankBm25Test, HandComputedScores) {
  auto idx = TinyIndex();
  RelationPtr q = idx->QueryTerms("sat mat").ValueOrDie();
  RelationPtr ranked = RankBm25(*idx, q).ValueOrDie();
  auto scores = Scores(ranked);
  ASSERT_EQ(scores.size(), 1u);  // only d1 contains sat/mat
  const double avgdl = 14.0 / 3.0;
  double expected = Bm25Weight(1, 1, 6, 3, avgdl) * 2;  // sat + mat
  EXPECT_NEAR(scores[1], expected, 1e-12);
}

TEST(RankBm25Test, DocLengthNormalizationOrdersDocs) {
  auto idx = TinyIndex();
  RelationPtr q = idx->QueryTerms("dog").ValueOrDie();
  auto scores = Scores(RankBm25(*idx, q).ValueOrDie());
  ASSERT_EQ(scores.size(), 2u);
  const double avgdl = 14.0 / 3.0;
  EXPECT_NEAR(scores[2], Bm25Weight(1, 2, 5, 3, avgdl), 1e-12);
  EXPECT_NEAR(scores[3], Bm25Weight(1, 2, 3, 3, avgdl), 1e-12);
  // Both idfs are negative here (df=2 of 3 docs); the shorter doc has the
  // larger |weight| — check relative order matches the formula.
  EXPECT_LT(scores[3], scores[2]);
}

TEST(RankBm25Test, DuplicateQueryTermCountsTwice) {
  auto idx = TinyIndex();
  RelationPtr q1 = idx->QueryTerms("sat").ValueOrDie();
  RelationPtr q2 = idx->QueryTerms("sat sat").ValueOrDie();
  auto s1 = Scores(RankBm25(*idx, q1).ValueOrDie());
  auto s2 = Scores(RankBm25(*idx, q2).ValueOrDie());
  EXPECT_NEAR(s2[1], 2 * s1[1], 1e-12);
}

TEST(RankBm25Test, ParametersMatter) {
  auto idx = TinyIndex();
  RelationPtr q = idx->QueryTerms("dog cat").ValueOrDie();
  auto s_default = Scores(RankBm25(*idx, q, {1.2, 0.75}).ValueOrDie());
  auto s_noblen = Scores(RankBm25(*idx, q, {1.2, 0.0}).ValueOrDie());
  // With b = 0 doc-length normalization is off; scores must differ.
  EXPECT_NE(s_default[2], s_noblen[2]);
}

TEST(RankBm25Test, EmptyQueryRanksNothing) {
  auto idx = TinyIndex();
  RelationPtr q = idx->QueryTerms("zzz qqq").ValueOrDie();
  RelationPtr ranked = RankBm25(*idx, q).ValueOrDie();
  EXPECT_EQ(ranked->num_rows(), 0u);
}

TEST(RankTfIdfTest, HandComputed) {
  auto idx = TinyIndex();
  RelationPtr q = idx->QueryTerms("sat").ValueOrDie();
  auto scores = Scores(RankTfIdf(*idx, q).ValueOrDie());
  ASSERT_EQ(scores.size(), 1u);
  // (1 + ln 1) * ln(3/1) = ln 3
  EXPECT_NEAR(scores[1], std::log(3.0), 1e-12);
}

TEST(RankLmDirichletTest, HandComputed) {
  auto idx = TinyIndex();
  RelationPtr q = idx->QueryTerms("sat").ValueOrDie();
  const double mu = 100.0;
  auto scores = Scores(RankLmDirichlet(*idx, q, {mu}).ValueOrDie());
  ASSERT_EQ(scores.size(), 1u);
  // matched: ln(1 + tf*total/(mu*cf)) = ln(1 + 14/100)
  // length part: 1 * ln(mu/(len+mu)) = ln(100/106)
  double expected = std::log(1 + 14.0 / 100.0) + std::log(100.0 / 106.0);
  EXPECT_NEAR(scores[1], expected, 1e-12);
}

TEST(RankLmDirichletTest, PrefersHigherTf) {
  auto idx = TinyIndex();
  RelationPtr q = idx->QueryTerms("the").ValueOrDie();
  auto scores = Scores(RankLmDirichlet(*idx, q, {100.0}).ValueOrDie());
  ASSERT_EQ(scores.size(), 2u);
  // d2 has the same tf (2) but is shorter -> higher likelihood.
  EXPECT_GT(scores[2], scores[1]);
}

TEST(RankLmJelinekMercerTest, HandComputed) {
  auto idx = TinyIndex();
  RelationPtr q = idx->QueryTerms("sat").ValueOrDie();
  const double lambda = 0.5;
  auto scores =
      Scores(RankLmJelinekMercer(*idx, q, {lambda}).ValueOrDie());
  ASSERT_EQ(scores.size(), 1u);
  // ln(1 + (0.5/0.5) * (1/6) / (1/14)) = ln(1 + 14/6)
  EXPECT_NEAR(scores[1], std::log(1 + 14.0 / 6.0), 1e-12);
}

TEST(RankLmJelinekMercerTest, LambdaValidated) {
  auto idx = TinyIndex();
  RelationPtr q = idx->QueryTerms("sat").ValueOrDie();
  EXPECT_FALSE(RankLmJelinekMercer(*idx, q, {0.0}).ok());
  EXPECT_FALSE(RankLmJelinekMercer(*idx, q, {1.0}).ok());
}

TEST(SearcherTest, EndToEndTopK) {
  Searcher searcher;
  SearchOptions opts;
  opts.top_k = 2;
  RelationPtr hits =
      searcher.Search(TinyDocs(), "tiny", "cat dog", opts).ValueOrDie();
  ASSERT_LE(hits->num_rows(), 2u);
  ASSERT_GE(hits->num_rows(), 1u);
  // Scores sorted descending.
  if (hits->num_rows() == 2) {
    EXPECT_GE(hits->column(1).Float64At(0), hits->column(1).Float64At(1));
  }
}

TEST(SearcherTest, IndexReuseAcrossQueries) {
  Searcher searcher;
  RelationPtr docs = TinyDocs();
  ASSERT_TRUE(searcher.Search(docs, "tiny", "cat").ok());
  ASSERT_TRUE(searcher.Search(docs, "tiny", "dog").ok());
  EXPECT_EQ(searcher.stats().index_misses, 1u);
  EXPECT_EQ(searcher.stats().index_hits, 1u);
}

TEST(SearcherTest, DifferentCollectionsDifferentIndexes) {
  Searcher searcher;
  ASSERT_TRUE(searcher.Search(TinyDocs(), "a", "cat").ok());
  ASSERT_TRUE(searcher.Search(TinyDocs(), "b", "cat").ok());
  EXPECT_EQ(searcher.stats().index_misses, 2u);
}

TEST(SearcherTest, ClearCacheForcesRebuild) {
  Searcher searcher;
  RelationPtr docs = TinyDocs();
  ASSERT_TRUE(searcher.Search(docs, "tiny", "cat").ok());
  searcher.ClearIndexCache();
  ASSERT_TRUE(searcher.Search(docs, "tiny", "cat").ok());
  EXPECT_EQ(searcher.stats().index_misses, 2u);
}

TEST(SearcherTest, AllModelsRun) {
  for (RankModel m : {RankModel::kBm25, RankModel::kTfIdf,
                      RankModel::kLmDirichlet,
                      RankModel::kLmJelinekMercer}) {
    Searcher searcher;
    SearchOptions opts;
    opts.model = m;
    auto hits = searcher.Search(TinyDocs(), "tiny", "dog cat", opts);
    ASSERT_TRUE(hits.ok()) << RankModelName(m);
    EXPECT_GT(hits.ValueOrDie()->num_rows(), 0u) << RankModelName(m);
  }
}

TEST(SearcherTest, AnalyzerConfigurationChangesTermSpace) {
  // On-demand indexing: the same raw text under a different stemmer is a
  // different index (paper §2.1).
  AnalyzerOptions no_stem;
  no_stem.stemmer = "none";
  Searcher stemmed;       // default sb-english
  Searcher plain(no_stem);
  // "cats" matches d1/d2 only via stemming.
  auto hits_stemmed =
      stemmed.Search(TinyDocs(), "tiny", "cats", SearchOptions{}).ValueOrDie();
  auto hits_plain =
      plain.Search(TinyDocs(), "tiny", "cats", SearchOptions{}).ValueOrDie();
  EXPECT_EQ(hits_stemmed->num_rows(), 3u);  // stem "cat" is in all 3 docs
  EXPECT_EQ(hits_plain->num_rows(), 1u);    // literal "cats" only in d3
}

}  // namespace
}  // namespace spindle
