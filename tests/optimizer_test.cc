#include <gtest/gtest.h>

#include "common/rng.h"
#include "spinql/evaluator.h"
#include "spinql/optimizer.h"
#include "spinql/parser.h"
#include "triples/triple_store.h"
#include "workload/graph_gen.h"

namespace spindle {
namespace spinql {
namespace {

NodePtr Parse(const std::string& s) {
  return ParseExpression(s).ValueOrDie();
}

std::string Optimized(const std::string& s, OptimizerStats* stats) {
  return Optimize(Parse(s), stats).ValueOrDie()->ToString();
}

TEST(OptimizerTest, SelectFusion) {
  OptimizerStats stats;
  std::string out = Optimized(
      "SELECT [$1=\"a\"] (SELECT [$2=\"b\"] (t))", &stats);
  EXPECT_EQ(out, "SELECT [and(eq($2, \"b\"), eq($1, \"a\"))] (t)");
  EXPECT_EQ(stats.select_fusions, 1);
}

TEST(OptimizerTest, SelectFusionChain) {
  OptimizerStats stats;
  std::string out = Optimized(
      "SELECT [$1=\"a\"] (SELECT [$2=\"b\"] (SELECT [$3=\"c\"] (t)))",
      &stats);
  EXPECT_EQ(stats.select_fusions, 2);
  EXPECT_EQ(out.find("SELECT", 1), std::string::npos)
      << "only one SELECT should remain: " << out;
}

TEST(OptimizerTest, WeightFusionAndElimination) {
  OptimizerStats stats;
  EXPECT_EQ(Optimized("WEIGHT [0.5] (WEIGHT [0.4] (t))", &stats),
            "WEIGHT [0.2] (t)");
  EXPECT_EQ(stats.weight_fusions, 1);
  EXPECT_EQ(Optimized("WEIGHT [1] (t)", &stats), "t");
  EXPECT_EQ(stats.weight_eliminations, 1);
  // Fusing to weight 1 then eliminating.
  EXPECT_EQ(Optimized("WEIGHT [4] (WEIGHT [0.25] (t))", &stats), "t");
}

TEST(OptimizerTest, TopKFusion) {
  OptimizerStats stats;
  EXPECT_EQ(Optimized("TOPK [10] (TOPK [3] (t))", &stats), "TOPK [3] (t)");
  EXPECT_EQ(Optimized("TOPK [2] (TOPK [50] (t))", &stats), "TOPK [2] (t)");
  EXPECT_EQ(stats.topk_fusions, 2);
}

TEST(OptimizerTest, UniteFlattening) {
  OptimizerStats stats;
  std::string out = Optimized(
      "UNITE DISJOINT (UNITE DISJOINT (a, b), c)", &stats);
  EXPECT_EQ(out, "UNITE DISJOINT (a, b, c)");
  EXPECT_EQ(stats.unite_flattenings, 1);
  // Mixed assumptions do not flatten.
  std::string mixed = Optimized(
      "UNITE DISJOINT (UNITE MAX (a, b), c)", &stats);
  EXPECT_EQ(mixed, "UNITE DISJOINT (UNITE MAX (a, b), c)");
}

TEST(OptimizerTest, WeightDistributesOverDisjointUnite) {
  OptimizerStats stats;
  std::string out = Optimized(
      "WEIGHT [0.5] (UNITE DISJOINT (WEIGHT [0.6] (a), WEIGHT [0.4] "
      "(b)))",
      &stats);
  EXPECT_EQ(out, "UNITE DISJOINT (WEIGHT [0.3] (a), WEIGHT [0.2] (b))");
  EXPECT_GE(stats.weight_distributions, 1);
  EXPECT_GE(stats.weight_fusions, 2);
}

TEST(OptimizerTest, SelectPushdownIntoJoin) {
  OptimizerStats stats;
  // Left input has known arity (PROJECT of 2 items), right too.
  std::string out = Optimized(
      "SELECT [$1=\"x\" and $3=\"y\"] (JOIN INDEPENDENT [$1=$1] ("
      "PROJECT [$1, $2] (t), PROJECT [$1, $2] (u)))",
      &stats);
  EXPECT_EQ(stats.select_pushdowns, 1);
  // $1 pushed left; $3 pushed right as $1.
  EXPECT_NE(out.find("SELECT [eq($1, \"x\")] (PROJECT [$1, $2] (t))"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("SELECT [eq($1, \"y\")] (PROJECT [$1, $2] (u))"),
            std::string::npos)
      << out;
}

TEST(OptimizerTest, PredicateOnPBlocksPushdown) {
  OptimizerStats stats;
  std::string src =
      "SELECT [P < 0.5] (JOIN INDEPENDENT [$1=$1] (PROJECT [$1] (t), "
      "PROJECT [$1] (u)))";
  std::string out = Optimized(src, &stats);
  EXPECT_EQ(stats.select_pushdowns, 0);
  EXPECT_EQ(out, Parse(src)->ToString());
}

TEST(OptimizerTest, UnknownArityBlocksPushdown) {
  OptimizerStats stats;
  std::string src =
      "SELECT [$1=\"x\"] (JOIN INDEPENDENT [$1=$1] (t, u))";
  Optimized(src, &stats);
  EXPECT_EQ(stats.select_pushdowns, 0);
}

// ----------------------------------------------------------------------
// Equivalence properties: optimized plans produce identical relations.
// ----------------------------------------------------------------------

class OptimizerEquivalence : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    TripleStore store;
    Rng rng(31);
    const char* props[] = {"category", "description", "type", "color"};
    const char* vals[] = {"toy", "book", "red", "blue", "product"};
    for (int i = 0; i < 300; ++i) {
      std::string subj = "s";
      subj += std::to_string(rng.NextBounded(40));
      store.Add(subj,
                props[rng.NextBounded(4)], vals[rng.NextBounded(5)],
                0.1 + 0.9 * rng.NextDouble());
    }
    ASSERT_TRUE(store.RegisterInto(catalog_).ok());
  }

  Catalog catalog_;
};

/// Equality up to floating-point rounding in the probability column
/// (rewrites like weight distribution reassociate multiplications).
void ExpectApproxEqual(const ProbRelation& a, const ProbRelation& b,
                       const std::string& context) {
  ASSERT_TRUE(a.rel()->schema().TypesEqual(b.rel()->schema())) << context;
  ASSERT_EQ(a.num_rows(), b.num_rows()) << context;
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.arity(); ++c) {
      EXPECT_TRUE(a.rel()->column(c).ElementEquals(r, b.rel()->column(c),
                                                   r))
          << context << " row " << r << " col " << c;
    }
    EXPECT_NEAR(a.prob_at(r), b.prob_at(r), 1e-12)
        << context << " row " << r;
  }
}

TEST_P(OptimizerEquivalence, SameResults) {
  NodePtr plain = Parse(GetParam());
  OptimizerStats stats;
  NodePtr optimized = Optimize(plain, &stats).ValueOrDie();

  // No cache: both must evaluate from scratch.
  Evaluator ev(&catalog_, nullptr);
  Program p1, p2;
  ASSERT_TRUE(p1.Append("out", plain).ok());
  ASSERT_TRUE(p2.Append("out", optimized).ok());
  ProbRelation a = ev.Eval(p1, "out").ValueOrDie();
  ProbRelation b = ev.Eval(p2, "out").ValueOrDie();
  ExpectApproxEqual(a, b,
                    "plain: " + plain->ToString() +
                        " optimized: " + optimized->ToString());
}

INSTANTIATE_TEST_SUITE_P(
    Plans, OptimizerEquivalence,
    ::testing::Values(
        "SELECT [$2=\"category\"] (SELECT [$3=\"toy\"] (triples))",
        "WEIGHT [0.5] (WEIGHT [0.4] (triples))",
        "WEIGHT [1] (triples)",
        "TOPK [5] (TOPK [20] (triples))",
        "UNITE DISJOINT (UNITE DISJOINT (PROJECT [$1] (triples), "
        "PROJECT [$1] (triples)), PROJECT [$1] (triples))",
        "WEIGHT [0.5] (UNITE DISJOINT (WEIGHT [0.6] (PROJECT [$1] "
        "(triples)), WEIGHT [0.4] (PROJECT [$1] (triples))))",
        "SELECT [$1=\"toy\" and $3=\"red\"] (JOIN INDEPENDENT [$1=$2] ("
        "PROJECT [$3, $1] (triples), PROJECT [$1, $3] (triples)))",
        "SELECT [P < 0.5] (SELECT [$2=\"color\"] (triples))",
        "UNITE MAX (UNITE MAX (PROJECT [$1] (triples), PROJECT [$1] "
        "(triples)), PROJECT [$2] (triples))",
        "UNITE INDEPENDENT (UNITE INDEPENDENT (PROJECT [$1] (triples), "
        "PROJECT [$1] (triples)), PROJECT [$1] (triples))"));

}  // namespace
}  // namespace spinql
}  // namespace spindle
