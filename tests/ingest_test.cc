/// \file ingest_test.cc
/// \brief Tests for live ingestion (src/ingest/): the keystone invariant
/// that a live-written collection answers every query bit-identically to
/// a cold build over the same logical collection — checked per write by
/// a randomized interleaving property test against a cold-rebuilt
/// oracle, across all four ranking models, several k cutoffs and thread
/// counts — plus write-validation semantics, copy-on-write version
/// pinning, epoch-based cache invalidation, the wire commands, the
/// connection pool and coordinator write routing.
///
/// The concurrent writers-vs-readers test also runs under
/// ThreadSanitizer in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "exec/exec_context.h"
#include "ingest/delta_index.h"
#include "ingest/live_table.h"
#include "ir/indexing.h"
#include "ir/searcher.h"
#include "server/client.h"
#include "server/line_server.h"
#include "server/query_service.h"
#include "shard/coordinator.h"
#include "shard/global_stats.h"
#include "shard/partitioner.h"
#include "text/analyzer.h"
#include "workload/text_gen.h"

namespace spindle {
namespace {

using ingest::WriteOp;
using server::FlushRequest;
using server::LineClient;
using server::LineClientPool;
using server::LineServer;
using server::LineServerOptions;
using server::QueryService;
using server::QueryServiceOptions;
using server::SearchRequest;
using server::SerializeRows;
using server::WriteRequest;

// ---------------------------------------------------------------------------
// Shared fixtures and helpers
// ---------------------------------------------------------------------------

TextCollectionOptions SmallGenOptions() {
  TextCollectionOptions gen;
  gen.num_docs = 300;
  gen.vocab_size = 500;
  gen.avg_doc_len = 24;
  return gen;
}

RelationPtr BaseDocs() {
  static RelationPtr docs =
      GenerateTextCollection(SmallGenOptions()).ValueOrDie();
  return docs;
}

const std::vector<std::string>& TestQueries() {
  static std::vector<std::string> queries =
      GenerateQueries(SmallGenOptions(), 3, 2);
  return queries;
}

/// Random document text over the same vocabulary band the generator
/// uses, so live writes share terms with the base collection.
std::string RandomWords(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> len_d(4, 24);
  std::uniform_int_distribution<uint64_t> rank_d(1, 300);
  const int len = len_d(rng);
  std::string out;
  for (int i = 0; i < len; ++i) {
    if (i > 0) out += ' ';
    out += WordForRank(rank_d(rng));
  }
  return out;
}

std::vector<int64_t> DocIds(const RelationPtr& docs) {
  std::vector<int64_t> ids;
  ids.reserve(docs->num_rows());
  for (size_t r = 0; r < docs->num_rows(); ++r) {
    ids.push_back(docs->column(0).Int64At(r));
  }
  return ids;
}

WriteOp MakeAdd(int64_t id, std::string text) {
  WriteOp op;
  op.kind = WriteOp::Kind::kAdd;
  op.doc_id = id;
  op.text = std::move(text);
  return op;
}

WriteOp MakeUpdate(int64_t id, std::string text) {
  WriteOp op;
  op.kind = WriteOp::Kind::kUpdate;
  op.doc_id = id;
  op.text = std::move(text);
  return op;
}

WriteOp MakeDelete(int64_t id) {
  WriteOp op;
  op.kind = WriteOp::Kind::kDelete;
  op.doc_id = id;
  return op;
}

Result<server::QueryResponse> Apply(QueryService& service, const WriteOp& op) {
  WriteRequest req;
  req.collection = "live";
  req.op = op;
  return service.Write(req);
}

Status FlushLive(QueryService& service) {
  FlushRequest req;
  req.collection = "live";
  return service.Flush(req).status();
}

/// The keystone check: the live service must answer bit-identically to
/// a cold oracle over the merged logical collection, for every model,
/// several k cutoffs and thread counts. `sig` must be unique per
/// logical state so the oracle searcher never serves a stale index.
void ExpectMatchesOracle(QueryService& service, Searcher& oracle,
                         const RelationPtr& merged, const std::string& sig) {
  const RankModel kModels[] = {RankModel::kBm25, RankModel::kTfIdf,
                               RankModel::kLmDirichlet,
                               RankModel::kLmJelinekMercer};
  const size_t kCutoffs[] = {1, 10, 100};
  const int kThreads[] = {1, 4};
  for (RankModel model : kModels) {
    for (size_t k : kCutoffs) {
      for (int threads : kThreads) {
        ScopedExecContext scope{ExecContext(threads)};
        for (const std::string& q : TestQueries()) {
          SearchOptions options;
          options.model = model;
          options.top_k = k;
          SearchRequest req;
          req.collection = "live";
          req.query = q;
          req.options = options;
          auto got = service.Search(req);
          ASSERT_TRUE(got.ok()) << got.status().ToString();
          auto want = oracle.Search(merged, sig, q, options);
          ASSERT_TRUE(want.ok()) << want.status().ToString();
          ASSERT_EQ(SerializeRows(*got.ValueOrDie().rows),
                    SerializeRows(*want.ValueOrDie()))
              << "state " << sig << " model " << RankModelName(model)
              << " k=" << k << " threads=" << threads << " query '" << q
              << "'";
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Randomized interleaving vs. cold-rebuilt oracle (the keystone)
// ---------------------------------------------------------------------------

TEST(IngestOracleTest, RandomizedInterleavingMatchesColdBuild) {
  QueryServiceOptions sopts;
  sopts.auto_compact = false;  // flush only at the chosen steps
  QueryService service(sopts);
  service.RegisterCollection("live", BaseDocs());

  Searcher oracle;
  std::mt19937_64 rng(20260808);
  std::vector<WriteOp> log;  // every accepted write, in order
  std::vector<int64_t> live = DocIds(BaseDocs());
  int64_t next_id = 1'000'000;
  int flushes = 0;

  for (int step = 0; step < 40; ++step) {
    const int roll = std::uniform_int_distribution<int>(0, 99)(rng);
    const std::string sig = "oracle@" + std::to_string(step);
    if (roll >= 85 && step > 0) {
      // FLUSH: quiesce, then the merged state must survive compaction.
      ASSERT_TRUE(FlushLive(service).ok());
      ++flushes;
      EXPECT_EQ(service.LiveStats("live").delta_docs, 0u);
      EXPECT_EQ(service.LiveStats("live").deleted_docs, 0u);
      auto merged = ingest::ApplyWritesCold(BaseDocs(), log).ValueOrDie();
      ExpectMatchesOracle(service, oracle, merged, sig);
      continue;
    }
    WriteOp op;
    if (roll < 40 || live.empty()) {
      op = MakeAdd(next_id++, RandomWords(rng));
      live.push_back(op.doc_id);
    } else if (roll < 65) {
      const size_t i = std::uniform_int_distribution<size_t>(
          0, live.size() - 1)(rng);
      op = MakeUpdate(live[i], RandomWords(rng));
    } else {
      const size_t i = std::uniform_int_distribution<size_t>(
          0, live.size() - 1)(rng);
      op = MakeDelete(live[i]);
      live.erase(live.begin() + static_cast<ptrdiff_t>(i));
    }
    auto wrote = Apply(service, op);
    ASSERT_TRUE(wrote.ok()) << wrote.status().ToString();
    log.push_back(op);
    auto merged = ingest::ApplyWritesCold(BaseDocs(), log).ValueOrDie();
    ExpectMatchesOracle(service, oracle, merged, sig);
  }

  // Final quiesce: post-FLUSH results are served from the main index
  // alone and must still match the oracle bit for bit.
  ASSERT_TRUE(FlushLive(service).ok());
  auto merged = ingest::ApplyWritesCold(BaseDocs(), log).ValueOrDie();
  ExpectMatchesOracle(service, oracle, merged, "oracle@final");
  EXPECT_EQ(service.metrics().writes_total.load(), log.size());
  EXPECT_GE(flushes, 0);
}

TEST(IngestOracleTest, BackgroundCompactionPreservesBitIdentity) {
  // A tiny threshold forces several background compactions while the
  // write stream is in flight; results must stay oracle-identical no
  // matter where the compaction swap lands.
  QueryServiceOptions sopts;
  sopts.compact_threshold = 8;
  QueryService service(sopts);
  service.RegisterCollection("live", BaseDocs());

  Searcher oracle;
  std::mt19937_64 rng(7);
  std::vector<WriteOp> log;
  std::vector<int64_t> live = DocIds(BaseDocs());
  int64_t next_id = 2'000'000;

  for (int step = 0; step < 30; ++step) {
    WriteOp op;
    if (step % 5 == 4) {
      const size_t i = std::uniform_int_distribution<size_t>(
          0, live.size() - 1)(rng);
      op = MakeDelete(live[i]);
      live.erase(live.begin() + static_cast<ptrdiff_t>(i));
    } else {
      op = MakeAdd(next_id++, RandomWords(rng));
      live.push_back(op.doc_id);
    }
    auto wrote = Apply(service, op);
    ASSERT_TRUE(wrote.ok()) << wrote.status().ToString();
    log.push_back(op);

    // Quick per-write check (default model); the full cross product runs
    // after the final flush below.
    auto merged = ingest::ApplyWritesCold(BaseDocs(), log).ValueOrDie();
    const std::string sig = "compact-oracle@" + std::to_string(step);
    for (const std::string& q : TestQueries()) {
      SearchRequest req;
      req.collection = "live";
      req.query = q;
      auto got = service.Search(req);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      auto want = oracle.Search(merged, sig, q, SearchOptions{});
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      ASSERT_EQ(SerializeRows(*got.ValueOrDie().rows),
                SerializeRows(*want.ValueOrDie()))
          << "step " << step << " query '" << q << "'";
    }
  }

  ASSERT_TRUE(FlushLive(service).ok());
  auto merged = ingest::ApplyWritesCold(BaseDocs(), log).ValueOrDie();
  ExpectMatchesOracle(service, oracle, merged, "compact-oracle@final");
  // 30 writes over threshold 8 must have compacted at least once in the
  // background (plus the final flush).
  EXPECT_GE(service.LiveStats("live").compactions, 2u);
}

// ---------------------------------------------------------------------------
// Write-validation semantics
// ---------------------------------------------------------------------------

class IngestSemanticsTest : public ::testing::Test {
 protected:
  std::unique_ptr<QueryService> MakeService() {
    QueryServiceOptions sopts;
    sopts.auto_compact = false;
    auto service = std::make_unique<QueryService>(sopts);
    service->RegisterCollection("live", BaseDocs());
    return service;
  }
};

TEST_F(IngestSemanticsTest, AddOfLiveDocFailsAlreadyExists) {
  auto service = MakeService();
  const int64_t existing = BaseDocs()->column(0).Int64At(0);
  auto r = Apply(*service, MakeAdd(existing, "dup text"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(service->metrics().writes_rejected.load(), 1u);
  EXPECT_EQ(service->metrics().writes_total.load(), 0u);
  // The rejected write left no delta behind.
  EXPECT_EQ(service->LiveStats("live").delta_docs, 0u);

  // A fresh docID ADDs fine, and re-ADDing it then fails.
  ASSERT_TRUE(Apply(*service, MakeAdd(9001, "fresh doc")).ok());
  auto dup = Apply(*service, MakeAdd(9001, "fresh doc again"));
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(IngestSemanticsTest, UpdateAndDeleteOfAbsentDocFailNotFound) {
  auto service = MakeService();
  EXPECT_EQ(Apply(*service, MakeUpdate(77'777, "nope")).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(Apply(*service, MakeDelete(77'777)).status().code(),
            StatusCode::kNotFound);
  // A deleted doc is no longer live: the second delete fails too.
  const int64_t existing = BaseDocs()->column(0).Int64At(3);
  ASSERT_TRUE(Apply(*service, MakeDelete(existing)).ok());
  EXPECT_EQ(Apply(*service, MakeDelete(existing)).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(Apply(*service, MakeUpdate(existing, "x")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(IngestSemanticsTest, ReAddAfterDeleteServesTheNewText) {
  auto service = MakeService();
  const int64_t id = BaseDocs()->column(0).Int64At(5);
  ASSERT_TRUE(Apply(*service, MakeDelete(id)).ok());
  ASSERT_TRUE(Apply(*service, MakeAdd(id, "zebrazebra quokka")).ok());

  SearchRequest req;
  req.collection = "live";
  req.query = "zebrazebra";
  auto resp = service->Search(req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  const Relation& rows = *resp.ValueOrDie().rows;
  ASSERT_EQ(rows.num_rows(), 1u);
  EXPECT_EQ(rows.column(0).Int64At(0), id);
}

TEST_F(IngestSemanticsTest, FlushOfCleanOrUnwrittenCollectionIsNoop) {
  auto service = MakeService();
  // Never written: FLUSH validates the collection and reports its size.
  FlushRequest req;
  req.collection = "live";
  auto r = service->Flush(req);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Relation& row = *r.ValueOrDie().rows;
  EXPECT_EQ(row.column(1).Int64At(0),
            static_cast<int64_t>(BaseDocs()->num_rows()));

  // Unknown collection: FLUSH is an error, not a silent no-op.
  FlushRequest bad;
  bad.collection = "nope";
  EXPECT_FALSE(service->Flush(bad).ok());

  // Written then flushed twice: the second flush is a clean no-op.
  ASSERT_TRUE(Apply(*service, MakeAdd(9002, "one doc")).ok());
  ASSERT_TRUE(FlushLive(*service).ok());
  ASSERT_TRUE(FlushLive(*service).ok());
  EXPECT_EQ(service->LiveStats("live").delta_docs, 0u);
}

TEST_F(IngestSemanticsTest, PhraseBoostRejectedOnlyWhileDeltaIsDirty) {
  auto service = MakeService();
  SearchRequest req;
  req.collection = "live";
  req.query = TestQueries()[0];
  req.options.phrase_boost = 1.0;
  ASSERT_TRUE(service->Search(req).ok());  // clean: phrase path fine

  ASSERT_TRUE(Apply(*service, MakeAdd(9003, "phrase breaker")).ok());
  auto dirty = service->Search(req);
  ASSERT_FALSE(dirty.ok());
  EXPECT_EQ(dirty.status().code(), StatusCode::kInvalidArgument);

  // Plain ranking still works against the dirty delta...
  SearchRequest plain = req;
  plain.options.phrase_boost = 0.0;
  EXPECT_TRUE(service->Search(plain).ok());

  // ...and FLUSH restores the phrase path.
  ASSERT_TRUE(FlushLive(*service).ok());
  EXPECT_TRUE(service->Search(req).ok());
}

TEST_F(IngestSemanticsTest, EpochBumpsPerAcceptedWriteOnly) {
  auto service = MakeService();
  const uint64_t e0 = service->catalog().Epoch("live");
  ASSERT_TRUE(Apply(*service, MakeAdd(9004, "bump")).ok());
  const uint64_t e1 = service->catalog().Epoch("live");
  EXPECT_GT(e1, e0);
  // A rejected write must not invalidate anything.
  ASSERT_FALSE(Apply(*service, MakeAdd(9004, "bump again")).ok());
  EXPECT_EQ(service->catalog().Epoch("live"), e1);
}

TEST_F(IngestSemanticsTest, SpinqlSeesCompactedWritesAndNoStaleCache) {
  auto service = MakeService();
  const std::string expr = "PROJECT [$1] (live)";
  server::SpinqlRequest sreq;
  sreq.text = expr;
  auto before = service->EvalSpinql(sreq);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  const size_t rows_before = before.ValueOrDie().rows->num_rows();

  // Evaluate twice so the materialization cache holds the plan, then
  // write + flush: the re-registered relation and the epoch-tagged plan
  // signature must keep the cached result from being served stale.
  ASSERT_TRUE(service->EvalSpinql(sreq).ok());
  ASSERT_TRUE(Apply(*service, MakeAdd(9005, "spinql visible")).ok());
  ASSERT_TRUE(FlushLive(*service).ok());

  auto after = service->EvalSpinql(sreq);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after.ValueOrDie().rows->num_rows(), rows_before + 1);
}

TEST_F(IngestSemanticsTest, LocalStatsRejectDirtyDelta) {
  auto service = MakeService();
  ASSERT_TRUE(Apply(*service, MakeAdd(9006, "stats pending")).ok());
  auto dirty = service->ComputeLocalStats("live");
  ASSERT_FALSE(dirty.ok());
  EXPECT_EQ(dirty.status().code(), StatusCode::kInvalidArgument);

  ASSERT_TRUE(FlushLive(*service).ok());
  auto clean = service->ComputeLocalStats("live");
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(clean.ValueOrDie()->num_docs(),
            static_cast<int64_t>(BaseDocs()->num_rows()) + 1);
}

TEST_F(IngestSemanticsTest, MetricsExposeIngestCounters) {
  auto service = MakeService();
  ASSERT_TRUE(Apply(*service, MakeAdd(9007, "metered")).ok());
  ASSERT_TRUE(
      Apply(*service, MakeDelete(BaseDocs()->column(0).Int64At(7))).ok());
  const std::string json = service->MetricsJson();
  EXPECT_NE(json.find("\"ingest\""), std::string::npos);
  EXPECT_NE(json.find("\"writes_total\":2"), std::string::npos);
  EXPECT_NE(json.find("\"delta_docs\":1"), std::string::npos);
  EXPECT_NE(json.find("\"deleted_docs\":1"), std::string::npos);
  EXPECT_NE(json.find("\"freshness_lag_us\""), std::string::npos);
  EXPECT_EQ(service->metrics().freshness_lag_us.count(), 2u);
}

// ---------------------------------------------------------------------------
// Write-command parsing
// ---------------------------------------------------------------------------

TEST(ParseWriteCommandTest, ParsesAllVerbs) {
  auto add = ingest::ParseWriteCommand("ADD docs 42 the quick  brown fox");
  ASSERT_TRUE(add.ok());
  EXPECT_EQ(add.ValueOrDie().collection, "docs");
  EXPECT_EQ(add.ValueOrDie().op.kind, WriteOp::Kind::kAdd);
  EXPECT_EQ(add.ValueOrDie().op.doc_id, 42);
  EXPECT_EQ(add.ValueOrDie().op.text, "the quick  brown fox");

  auto upd = ingest::ParseWriteCommand("UPDATE docs -3 new text");
  ASSERT_TRUE(upd.ok());
  EXPECT_EQ(upd.ValueOrDie().op.kind, WriteOp::Kind::kUpdate);
  EXPECT_EQ(upd.ValueOrDie().op.doc_id, -3);

  auto del = ingest::ParseWriteCommand("DELETE docs 7");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del.ValueOrDie().op.kind, WriteOp::Kind::kDelete);
  EXPECT_TRUE(del.ValueOrDie().op.text.empty());
}

TEST(ParseWriteCommandTest, RejectsMalformedLines) {
  EXPECT_FALSE(ingest::ParseWriteCommand("UPSERT docs 1 x").ok());
  EXPECT_FALSE(ingest::ParseWriteCommand("ADD").ok());
  EXPECT_FALSE(ingest::ParseWriteCommand("ADD docs notanid text").ok());
  EXPECT_FALSE(ingest::ParseWriteCommand("DELETE docs 7 trailing").ok());
  EXPECT_FALSE(ingest::ParseWriteCommand("DELETE docs").ok());
}

// ---------------------------------------------------------------------------
// Copy-on-write version pinning (LiveTable directly)
// ---------------------------------------------------------------------------

TEST(LiveTableTest, PinnedVersionsStayConsistentAcrossWrites) {
  AnalyzerOptions aopts;
  Analyzer analyzer = Analyzer::Make(aopts).ValueOrDie();
  RelationPtr docs = BaseDocs();
  TextIndexPtr index = TextIndex::Build(docs, analyzer).ValueOrDie();
  ingest::LiveTable::Options lopts;
  lopts.auto_compact = false;
  auto table = ingest::LiveTable::Make("live", docs, index, aopts, lopts,
                                       ingest::LiveTable::Hooks{})
                   .MoveValueOrDie();

  auto v0 = table->Pin();
  EXPECT_EQ(v0->epoch, 0u);
  EXPECT_FALSE(v0->delta->dirty());

  SearchOptions options;
  PruningStats ps;
  auto r0 = table->Search(v0, TestQueries()[0], options, &ps).ValueOrDie();

  ASSERT_TRUE(table->Apply(MakeAdd(9100, "pinned versions")).ok());
  ASSERT_TRUE(
      table->Apply(MakeDelete(docs->column(0).Int64At(0))).ok());

  auto v1 = table->Pin();
  EXPECT_EQ(v1->epoch, 2u);
  EXPECT_TRUE(v1->delta->dirty());
  // v0 is immutable: searching it again returns the identical bytes even
  // though two writes landed since it was pinned.
  EXPECT_FALSE(v0->delta->dirty());
  auto r0_again =
      table->Search(v0, TestQueries()[0], options, &ps).ValueOrDie();
  EXPECT_EQ(SerializeRows(*r0), SerializeRows(*r0_again));

  // The two versions share the storage generation (no compaction ran).
  EXPECT_EQ(v0->storage_version, v1->storage_version);
  EXPECT_EQ(v0->docs.get(), v1->docs.get());
  EXPECT_EQ(v0->index.get(), v1->index.get());
}

// ---------------------------------------------------------------------------
// Concurrent writers vs. readers (runs under TSan in CI)
// ---------------------------------------------------------------------------

TEST(IngestConcurrencyTest, WritersVsReadersWithBackgroundCompaction) {
  QueryServiceOptions sopts;
  sopts.compact_threshold = 16;  // force compactions mid-stream
  QueryService service(sopts);
  service.RegisterCollection("live", BaseDocs());

  constexpr int kWriters = 2;
  constexpr int kReaders = 2;
  constexpr int kOpsPerWriter = 100;
  std::vector<std::vector<WriteOp>> logs(kWriters);
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      // Disjoint docID ranges: cross-thread interleavings commute, so
      // the per-thread logs concatenated in any order give one oracle.
      std::mt19937_64 rng(1000 + w);
      const int64_t base_id = 3'000'000 + w * 100'000;
      std::vector<int64_t> own;
      for (int i = 0; i < kOpsPerWriter; ++i) {
        WriteOp op;
        if (i % 3 == 2 && !own.empty()) {
          op = MakeDelete(own.back());
          own.pop_back();
        } else if (i % 7 == 5 && !own.empty()) {
          op = MakeUpdate(own.front(), RandomWords(rng));
        } else {
          op = MakeAdd(base_id + i, RandomWords(rng));
          own.push_back(op.doc_id);
        }
        auto r = Apply(service, op);
        EXPECT_TRUE(r.ok()) << r.status().ToString();
        if (r.ok()) logs[w].push_back(op);
      }
    });
  }

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        SearchRequest req;
        req.collection = "live";
        req.query = TestQueries()[i++ % TestQueries().size()];
        auto resp = service.Search(req);
        EXPECT_TRUE(resp.ok()) << resp.status().ToString();
      }
    });
  }

  for (auto& t : writers) t.join();
  stop.store(true);
  for (auto& t : readers) t.join();

  // Quiesce and check the final state against the cold oracle once.
  ASSERT_TRUE(FlushLive(service).ok());
  std::vector<WriteOp> all;
  for (const auto& log : logs) all.insert(all.end(), log.begin(), log.end());
  auto merged = ingest::ApplyWritesCold(BaseDocs(), all).ValueOrDie();
  Searcher oracle;
  for (const std::string& q : TestQueries()) {
    SearchRequest req;
    req.collection = "live";
    req.query = q;
    auto got = service.Search(req);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    auto want = oracle.Search(merged, "concurrent-oracle", q, SearchOptions{});
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    EXPECT_EQ(SerializeRows(*got.ValueOrDie().rows),
              SerializeRows(*want.ValueOrDie()));
  }
  EXPECT_EQ(service.metrics().writes_total.load(),
            static_cast<uint64_t>(all.size()));
}

// ---------------------------------------------------------------------------
// Wire commands end to end
// ---------------------------------------------------------------------------

TEST(IngestWireTest, WriteCommandsOverSocket) {
  QueryServiceOptions sopts;
  sopts.auto_compact = false;
  QueryService service(sopts);
  service.RegisterCollection("live", BaseDocs());
  LineServer server(&service, LineServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  auto add = client.Add("live", 9500, "wire doc alpha");
  ASSERT_TRUE(add.ok()) << add.status().ToString();
  ASSERT_EQ(add.ValueOrDie().rows.size(), 1u);
  EXPECT_EQ(add.ValueOrDie().rows[0], "epoch=1");

  auto upd = client.Update("live", 9500, "wire doc beta");
  ASSERT_TRUE(upd.ok());
  EXPECT_EQ(upd.ValueOrDie().rows[0], "epoch=2");

  auto del = client.Delete("live", BaseDocs()->column(0).Int64At(0));
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del.ValueOrDie().rows[0], "epoch=3");

  // Validation errors surface as ERR lines, not broken connections.
  EXPECT_FALSE(client.Add("live", 9500, "dup").ok());
  EXPECT_FALSE(client.broken());
  EXPECT_TRUE(client.Ping().ok());

  // Dirty delta: local statistics are refused until FLUSH.
  EXPECT_FALSE(client.Call("GSTATSL live").ok());

  auto flush = client.Flush("live");
  ASSERT_TRUE(flush.ok()) << flush.status().ToString();
  EXPECT_EQ(flush.ValueOrDie().rows[0],
            "epoch=3 docs=" + std::to_string(BaseDocs()->num_rows()));

  auto gstatsl = client.Call("GSTATSL live");
  ASSERT_TRUE(gstatsl.ok()) << gstatsl.status().ToString();
  auto stats = shard::GlobalStats::FromWireRows(gstatsl.ValueOrDie().rows);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.ValueOrDie()->num_docs(),
            static_cast<int64_t>(BaseDocs()->num_rows()));

  server.Stop();
}

// ---------------------------------------------------------------------------
// Connection pool
// ---------------------------------------------------------------------------

TEST(LineClientPoolTest, ReusesIdleConnections) {
  QueryService service{QueryServiceOptions{}};
  LineServer server(&service, LineServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  LineClientPool pool;
  for (int i = 0; i < 3; ++i) {
    auto lease = pool.Acquire("127.0.0.1", server.port());
    ASSERT_TRUE(lease.ok()) << lease.status().ToString();
    EXPECT_TRUE(lease.ValueOrDie()->Ping().ok());
  }
  EXPECT_EQ(pool.stats().dials, 1u);
  EXPECT_EQ(pool.stats().reuses, 2u);

  // Two concurrent leases need two connections; both return to the pool.
  {
    auto a = pool.Acquire("127.0.0.1", server.port()).MoveValueOrDie();
    auto b = pool.Acquire("127.0.0.1", server.port()).MoveValueOrDie();
    EXPECT_TRUE(a->Ping().ok());
    EXPECT_TRUE(b->Ping().ok());
  }
  EXPECT_EQ(pool.stats().dials, 2u);
  auto again = pool.Acquire("127.0.0.1", server.port());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(pool.stats().dials, 2u);
  EXPECT_EQ(pool.stats().reuses, 4u);

  server.Stop();
}

TEST(LineClientPoolTest, BrokenConnectionsAreDroppedNotReused) {
  QueryService service{QueryServiceOptions{}};
  auto server = std::make_unique<LineServer>(&service, LineServerOptions{});
  ASSERT_TRUE(server->Start().ok());
  const int port = server->port();

  LineClientPool pool;
  {
    auto lease = pool.Acquire("127.0.0.1", port).MoveValueOrDie();
    ASSERT_TRUE(lease->Ping().ok());
    // An explicitly closed connection must not go back to the pool.
    lease->Close();
  }
  {
    auto lease = pool.Acquire("127.0.0.1", port).MoveValueOrDie();
    EXPECT_EQ(pool.stats().dials, 2u);
    EXPECT_EQ(pool.stats().reuses, 0u);
    // Kill the server mid-lease: the next call fails at the transport
    // level and poisons the connection.
    server->Stop();
    server.reset();
    EXPECT_FALSE(lease->Ping().ok());
    EXPECT_TRUE(lease->broken());
  }
  // The poisoned connection was dropped; a fresh acquire has to dial a
  // dead address and fails loudly instead of handing back a zombie.
  auto dead = pool.Acquire("127.0.0.1", port);
  EXPECT_FALSE(dead.ok());
  EXPECT_EQ(pool.stats().reuses, 0u);
}

// ---------------------------------------------------------------------------
// Coordinator write routing
// ---------------------------------------------------------------------------

TEST(IngestShardedTest, CoordinatorWritesRouteByStableHashAndFlushRestoresExactness) {
  constexpr int kShards = 2;
  AnalyzerOptions aopts;
  auto stats = shard::GlobalStats::Compute(BaseDocs(), aopts).ValueOrDie();

  std::vector<std::unique_ptr<QueryService>> services;
  shard::ShardCoordinator coordinator;
  for (int i = 0; i < kShards; ++i) {
    QueryServiceOptions sopts;
    sopts.auto_compact = false;
    auto service = std::make_unique<QueryService>(sopts);
    service->RegisterCollection(
        "docs",
        shard::PartitionCollection(BaseDocs(), i, kShards).MoveValueOrDie());
    ASSERT_TRUE(service->SetGlobalStats("docs", stats).ok());
    coordinator.AddShard(std::make_shared<shard::LocalShardBackend>(
        "shard" + std::to_string(i), service.get()));
    services.push_back(std::move(service));
  }
  ASSERT_TRUE(coordinator.SetGlobalStats("docs", stats).ok());

  // Stream writes through the coordinator: adds, one update, one delete.
  std::vector<WriteOp> log;
  std::mt19937_64 rng(99);
  for (int i = 0; i < 12; ++i) {
    log.push_back(MakeAdd(5'000'000 + i, RandomWords(rng)));
  }
  log.push_back(MakeUpdate(BaseDocs()->column(0).Int64At(1),
                           RandomWords(rng)));
  log.push_back(MakeDelete(BaseDocs()->column(0).Int64At(2)));
  for (const WriteOp& op : log) {
    auto r = coordinator.Write("docs", op);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    // The write landed on the shard the stable hash owns: its delta (or
    // deletion set) is non-empty.
    const uint32_t owner = shard::Partitioner::Assign(
        op.doc_id, static_cast<uint32_t>(kShards));
    const auto lstats = services[owner]->LiveStats("docs");
    EXPECT_GT(lstats.delta_docs + lstats.deleted_docs, 0u)
        << "doc " << op.doc_id << " expected on shard " << owner;
  }
  EXPECT_EQ(coordinator.metrics().writes_total.load(), log.size());

  // FLUSH compacts every shard and refreshes the fleet statistics.
  auto flushed = coordinator.Flush("docs");
  ASSERT_TRUE(flushed.ok()) << flushed.status().ToString();
  EXPECT_EQ(flushed.ValueOrDie(),
            static_cast<int64_t>(BaseDocs()->num_rows()) + 12 - 1);

  // Post-FLUSH distributed results are bit-identical to a single-node
  // cold build over the merged logical collection.
  auto merged = ingest::ApplyWritesCold(BaseDocs(), log).ValueOrDie();
  Searcher oracle;
  for (const std::string& q : TestQueries()) {
    shard::CoordSearchRequest req;
    req.collection = "docs";
    req.query = q;
    req.options.top_k = 10;
    auto got = coordinator.Search(req);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    auto want = oracle.Search(merged, "sharded-oracle", q, req.options);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    EXPECT_EQ(SerializeRows(*got.ValueOrDie().rows),
              SerializeRows(*want.ValueOrDie()))
        << "query '" << q << "'";
  }
}

}  // namespace
}  // namespace spindle
