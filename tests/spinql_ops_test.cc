/// \file spinql_ops_test.cc
/// \brief Evaluator coverage for every SpinQL operator and their
/// equivalence with the direct PRA/engine APIs.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "pra/pra_ops.h"
#include "spinql/evaluator.h"

namespace spindle {
namespace spinql {
namespace {

class SpinqlOpsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RelationBuilder b({{"id", DataType::kString},
                       {"group", DataType::kString},
                       {"p", DataType::kFloat64}});
    auto add = [&](const char* id, const char* g, double p) {
      ASSERT_TRUE(b.AddRow({std::string(id), std::string(g), p}).ok());
    };
    add("a", "g1", 0.5);
    add("b", "g1", 0.5);
    add("c", "g2", 0.25);
    add("a", "g2", 0.75);
    catalog_.Register("events", b.Build().ValueOrDie());
  }

  ProbRelation Eval(const std::string& expr) {
    Evaluator ev(&catalog_, &cache_);
    auto r = ev.EvalExpression(expr);
    EXPECT_TRUE(r.ok()) << expr << ": " << r.status().ToString();
    return r.MoveValueOrDie();
  }

  std::map<std::string, double> ById(const ProbRelation& rel) {
    std::map<std::string, double> out;
    for (size_t r = 0; r < rel.num_rows(); ++r) {
      out[rel.rel()->column(0).StringAt(r)] = rel.prob_at(r);
    }
    return out;
  }

  Catalog catalog_;
  MaterializationCache cache_{64 << 20};
};

TEST_F(SpinqlOpsTest, Complement) {
  ProbRelation out = Eval("COMPLEMENT (events)");
  EXPECT_DOUBLE_EQ(out.prob_at(0), 0.5);
  EXPECT_DOUBLE_EQ(out.prob_at(2), 0.75);
}

TEST_F(SpinqlOpsTest, DoubleComplementIsIdentity) {
  ProbRelation twice = Eval("COMPLEMENT (COMPLEMENT (events))");
  ProbRelation plain = Eval("events");
  EXPECT_TRUE(twice.rel()->Equals(*plain.rel()));
}

TEST_F(SpinqlOpsTest, BayesGroups) {
  ProbRelation out = Eval("BAYES [$2] (events)");
  // g1 mass = 1.0, g2 mass = 1.0.
  EXPECT_DOUBLE_EQ(out.prob_at(0), 0.5);
  EXPECT_DOUBLE_EQ(out.prob_at(2), 0.25);
  EXPECT_DOUBLE_EQ(out.prob_at(3), 0.75);
  EXPECT_TRUE(out.ProbsAreNormalized());
}

TEST_F(SpinqlOpsTest, BayesGlobal) {
  ProbRelation out = Eval("BAYES [] (events)");
  double total = 0;
  for (size_t r = 0; r < out.num_rows(); ++r) total += out.prob_at(r);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST_F(SpinqlOpsTest, TopK) {
  ProbRelation out = Eval("TOPK [2] (events)");
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(out.prob_at(0), 0.75);
  EXPECT_DOUBLE_EQ(out.prob_at(1), 0.5);
}

TEST_F(SpinqlOpsTest, TopKZero) {
  EXPECT_EQ(Eval("TOPK [0] (events)").num_rows(), 0u);
}

TEST_F(SpinqlOpsTest, UniteManyInputs) {
  ProbRelation out = Eval(
      "UNITE DISJOINT (PROJECT [$1] (events), PROJECT [$1] (events), "
      "PROJECT [$1] (events))");
  auto by_id = ById(out);
  // a appears twice per copy: (0.5 + 0.75) * 3.
  EXPECT_NEAR(by_id["a"], 3.75, 1e-12);
  EXPECT_NEAR(by_id["b"], 1.5, 1e-12);
}

TEST_F(SpinqlOpsTest, ProjectComputedColumns) {
  ProbRelation out =
      Eval("PROJECT [concat($1, $2) AS key, P * 2 AS dbl] (events)");
  EXPECT_EQ(out.arity(), 2u);
  EXPECT_EQ(out.rel()->schema().field(0).name, "key");
  EXPECT_EQ(out.rel()->column(0).StringAt(0), "ag1");
  EXPECT_DOUBLE_EQ(out.rel()->column(1).Float64At(0), 1.0);
  // P in an item reads the probability; the p column itself is unchanged.
  EXPECT_DOUBLE_EQ(out.prob_at(0), 0.5);
}

TEST_F(SpinqlOpsTest, SelectWithArithmetic) {
  ProbRelation out = Eval("SELECT [P + 0.25 >= 1.0] (events)");
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.rel()->column(0).StringAt(0), "a");
  EXPECT_DOUBLE_EQ(out.prob_at(0), 0.75);
}

TEST_F(SpinqlOpsTest, WeightChain) {
  ProbRelation out = Eval("WEIGHT [0.5] (WEIGHT [0.5] (events))");
  EXPECT_DOUBLE_EQ(out.prob_at(0), 0.125);
}

TEST_F(SpinqlOpsTest, EquivalenceWithDirectPra) {
  // SpinQL and the C++ PRA API must produce identical relations.
  ProbRelation via_spinql =
      Eval("PROJECT INDEPENDENT [$1] (SELECT [$2=\"g1\"] (events))");
  ProbRelation base =
      ProbRelation::Wrap(catalog_.Get("events").ValueOrDie()).ValueOrDie();
  ProbRelation selected =
      pra::Select(base, Expr::Eq(Expr::Column(1), Expr::LitString("g1")),
                  FunctionRegistry::Default())
          .ValueOrDie();
  ProbRelation direct =
      pra::Project(selected, {Expr::Column(0)}, {"id"},
                   Assumption::kIndependent, FunctionRegistry::Default())
          .ValueOrDie();
  ASSERT_EQ(via_spinql.num_rows(), direct.num_rows());
  for (size_t r = 0; r < direct.num_rows(); ++r) {
    EXPECT_EQ(via_spinql.rel()->column(0).StringAt(r),
              direct.rel()->column(0).StringAt(r));
    EXPECT_DOUBLE_EQ(via_spinql.prob_at(r), direct.prob_at(r));
  }
}

TEST_F(SpinqlOpsTest, RankModelsThroughEvaluator) {
  RelationBuilder docs({{"id", DataType::kString},
                        {"text", DataType::kString},
                        {"p", DataType::kFloat64}});
  ASSERT_TRUE(docs.AddRow({std::string("d1"),
                           std::string("relational keyword search"), 1.0})
                  .ok());
  ASSERT_TRUE(docs.AddRow({std::string("d2"),
                           std::string("column store engines"), 1.0})
                  .ok());
  ASSERT_TRUE(docs.AddRow({std::string("d3"),
                           std::string("inverted index structures"), 1.0})
                  .ok());
  catalog_.Register("docs", docs.Build().ValueOrDie());
  RelationBuilder q({{"data", DataType::kString},
                     {"p", DataType::kFloat64}});
  ASSERT_TRUE(q.AddRow({std::string("keyword search"), 1.0}).ok());
  catalog_.Register("query", q.Build().ValueOrDie());

  for (const char* model :
       {"BM25", "TFIDF", "LMD [mu=100]", "LMJM [lambda=0.5]"}) {
    ProbRelation out =
        Eval(std::string("RANK ") + model + " (docs, query)");
    ASSERT_EQ(out.num_rows(), 1u) << model;
    EXPECT_EQ(out.rel()->column(0).StringAt(0), "d1") << model;
  }
}

TEST_F(SpinqlOpsTest, RankScalesWithDocConfidence) {
  RelationBuilder docs({{"id", DataType::kString},
                        {"text", DataType::kString},
                        {"p", DataType::kFloat64}});
  ASSERT_TRUE(
      docs.AddRow({std::string("sure"), std::string("apple pie"), 1.0})
          .ok());
  ASSERT_TRUE(
      docs.AddRow({std::string("maybe"), std::string("apple pie"), 0.5})
          .ok());
  ASSERT_TRUE(
      docs.AddRow({std::string("other"), std::string("plum cake"), 1.0})
          .ok());
  ASSERT_TRUE(
      docs.AddRow({std::string("more"), std::string("pear tart"), 1.0})
          .ok());
  // Keep df(apple)=2 < N/2 so BM25's idf stays positive.
  ASSERT_TRUE(
      docs.AddRow({std::string("fifth"), std::string("cherry jam"), 1.0})
          .ok());
  catalog_.Register("docs", docs.Build().ValueOrDie());
  RelationBuilder q({{"data", DataType::kString},
                     {"p", DataType::kFloat64}});
  ASSERT_TRUE(q.AddRow({std::string("apple"), 1.0}).ok());
  catalog_.Register("query", q.Build().ValueOrDie());

  ProbRelation out = Eval("RANK BM25 (docs, query)");
  auto by_id = ById(out);
  ASSERT_EQ(by_id.size(), 2u);
  // Identical text, half the confidence -> half the score.
  EXPECT_NEAR(by_id["maybe"], by_id["sure"] * 0.5, 1e-12);
}

TEST_F(SpinqlOpsTest, RankRejectsBadInputs) {
  Evaluator ev(&catalog_, &cache_);
  RelationBuilder q({{"data", DataType::kString},
                     {"p", DataType::kFloat64}});
  ASSERT_TRUE(q.AddRow({std::string("x"), 1.0}).ok());
  catalog_.Register("query", q.Build().ValueOrDie());
  // events (id, group, p): group is a string, so it *is* rankable text;
  // a truly bad collection is one without a string second column.
  RelationBuilder bad({{"id", DataType::kString},
                       {"num", DataType::kInt64},
                       {"p", DataType::kFloat64}});
  ASSERT_TRUE(bad.AddRow({std::string("x"), int64_t{1}, 1.0}).ok());
  catalog_.Register("bad_docs", bad.Build().ValueOrDie());
  EXPECT_FALSE(ev.EvalExpression("RANK BM25 (bad_docs, query)").ok());
}

}  // namespace
}  // namespace spinql
}  // namespace spindle
