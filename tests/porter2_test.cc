#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "text/stemmer.h"

namespace spindle {
namespace {

std::string Stem(const std::string& w) { return SnowballEnglish().Stem(w); }

struct Vector {
  const char* word;
  const char* stem;
};

// Hand-derived against the published Snowball English algorithm
// (regions R1/R2, steps 0-5, exceptional forms).
class Porter2Vectors : public ::testing::TestWithParam<Vector> {};

TEST_P(Porter2Vectors, StemsCorrectly) {
  EXPECT_EQ(Stem(GetParam().word), GetParam().stem) << GetParam().word;
}

INSTANTIATE_TEST_SUITE_P(
    Step1a, Porter2Vectors,
    ::testing::Values(Vector{"caresses", "caress"}, Vector{"ponies", "poni"},
                      Vector{"ties", "tie"}, Vector{"dies", "die"},
                      Vector{"caress", "caress"}, Vector{"cats", "cat"},
                      Vector{"dogs", "dog"}, Vector{"gas", "gas"},
                      Vector{"this", "this"}, Vector{"consensus",
                                                     "consensus"}));

INSTANTIATE_TEST_SUITE_P(
    Step1b, Porter2Vectors,
    ::testing::Values(Vector{"feed", "feed"}, Vector{"agreed", "agre"},
                      Vector{"plastered", "plaster"},
                      Vector{"motoring", "motor"}, Vector{"sing", "sing"},
                      Vector{"conflated", "conflat"},
                      Vector{"troubled", "troubl"}, Vector{"sized", "size"},
                      Vector{"hopping", "hop"}, Vector{"hoping", "hope"},
                      Vector{"falling", "fall"}, Vector{"filing", "file"},
                      Vector{"running", "run"}));

INSTANTIATE_TEST_SUITE_P(
    Step1c, Porter2Vectors,
    ::testing::Values(Vector{"happy", "happi"}, Vector{"cry", "cri"},
                      Vector{"by", "by"}, Vector{"say", "say"},
                      Vector{"enjoy", "enjoy"}));

INSTANTIATE_TEST_SUITE_P(
    Steps2to4, Porter2Vectors,
    ::testing::Values(Vector{"relational", "relat"},
                      Vector{"conditional", "condit"},
                      Vector{"rational", "ration"},
                      Vector{"electricity", "electr"},
                      Vector{"electrical", "electr"},
                      Vector{"hopefulness", "hope"},
                      Vector{"goodness", "good"},
                      Vector{"radically", "radic"},
                      Vector{"quickly", "quick"},
                      Vector{"knightly", "knight"},
                      Vector{"consolation", "consol"},
                      Vector{"argument", "argument"},
                      Vector{"arguments", "argument"},
                      Vector{"replacement", "replac"},
                      Vector{"adjustment", "adjust"},
                      Vector{"communism", "communism"},
                      Vector{"national", "nation"}));

INSTANTIATE_TEST_SUITE_P(
    Step5AndRegions, Porter2Vectors,
    ::testing::Values(Vector{"generate", "generat"},
                      Vector{"generic", "generic"},
                      Vector{"rate", "rate"}, Vector{"cease", "ceas"},
                      Vector{"controlled", "control"},
                      Vector{"rolled", "roll"}));

INSTANTIATE_TEST_SUITE_P(
    Exceptions, Porter2Vectors,
    ::testing::Values(Vector{"skis", "ski"}, Vector{"skies", "sky"},
                      Vector{"dying", "die"}, Vector{"lying", "lie"},
                      Vector{"tying", "tie"}, Vector{"idly", "idl"},
                      Vector{"gently", "gentl"}, Vector{"ugly", "ugli"},
                      Vector{"early", "earli"}, Vector{"only", "onli"},
                      Vector{"singly", "singl"}, Vector{"sky", "sky"},
                      Vector{"news", "news"}, Vector{"howe", "howe"},
                      Vector{"atlas", "atlas"}, Vector{"cosmos", "cosmos"},
                      Vector{"bias", "bias"}, Vector{"andes", "andes"},
                      Vector{"inning", "inning"}, Vector{"outing", "outing"},
                      Vector{"canning", "canning"},
                      Vector{"herring", "herring"},
                      Vector{"earring", "earring"},
                      Vector{"proceed", "proceed"},
                      Vector{"exceed", "exceed"},
                      Vector{"succeed", "succeed"}));

INSTANTIATE_TEST_SUITE_P(
    Apostrophes, Porter2Vectors,
    ::testing::Values(Vector{"boy's", "boy"}, Vector{"boys'", "boy"},
                      Vector{"nation's", "nation"}));

TEST(Porter2Test, ShortWordsUnchanged) {
  EXPECT_EQ(Stem("a"), "a");
  EXPECT_EQ(Stem("is"), "is");
  EXPECT_EQ(Stem("be"), "be");
  EXPECT_EQ(Stem(""), "");
}

TEST(Porter2Test, UppercaseInputIsLowercased) {
  EXPECT_EQ(Stem("Running"), "run");
  EXPECT_EQ(Stem("CATS"), "cat");
}

TEST(Porter2Test, OutputsAreFixedPoints) {
  // Every expected stem in our vectors should itself stem to itself
  // (stability of the reduced vocabulary).
  for (const char* s :
       {"caress", "poni", "tie", "cat", "plaster", "motor", "conflat",
        "troubl", "size", "hop", "hope", "fall", "file", "run", "happi",
        "relat", "electr", "good", "quick", "knight", "consol", "replac",
        "nation", "generat", "boy"}) {
    EXPECT_EQ(Stem(s), s) << s;
  }
}

TEST(Porter2Test, ConflatesInflections) {
  // The property that matters for retrieval: morphological variants map
  // to one term.
  EXPECT_EQ(Stem("connect"), Stem("connected"));
  EXPECT_EQ(Stem("connect"), Stem("connecting"));
  EXPECT_EQ(Stem("connect"), Stem("connection"));
  EXPECT_EQ(Stem("connect"), Stem("connections"));
  EXPECT_EQ(Stem("retrieve"), Stem("retrieval"));
  EXPECT_EQ(Stem("probability"), Stem("probabilities"));
}

}  // namespace
}  // namespace spindle
