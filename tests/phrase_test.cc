#include <gtest/gtest.h>

#include <map>

#include "ir/phrase.h"
#include "ir/searcher.h"
#include "storage/relation.h"

namespace spindle {
namespace {

RelationPtr PhraseDocs() {
  RelationBuilder b({{"docID", DataType::kInt64},
                     {"data", DataType::kString}});
  // d1: phrase "column store" twice; d2: both words, never adjacent;
  // d3: reversed order; d4: neither.
  EXPECT_TRUE(b.AddRow({int64_t{1},
                        std::string("the column store wins a column store "
                                    "benchmark")})
                  .ok());
  EXPECT_TRUE(b.AddRow({int64_t{2},
                        std::string("this store has a column of marble")})
                  .ok());
  EXPECT_TRUE(
      b.AddRow({int64_t{3}, std::string("store column layouts differ")})
          .ok());
  EXPECT_TRUE(
      b.AddRow({int64_t{4}, std::string("completely unrelated text")}).ok());
  return b.Build().ValueOrDie();
}

TextIndexPtr PhraseIndex() {
  Analyzer a = Analyzer::Make({}).ValueOrDie();
  return TextIndex::Build(PhraseDocs(), a).ValueOrDie();
}

std::map<int64_t, int64_t> Counts(const RelationPtr& rel) {
  std::map<int64_t, int64_t> out;
  for (size_t r = 0; r < rel->num_rows(); ++r) {
    out[rel->column(0).Int64At(r)] = rel->column(1).Int64At(r);
  }
  return out;
}

TEST(MatchPhraseTest, ExactAdjacencyOnly) {
  auto idx = PhraseIndex();
  auto counts = Counts(MatchPhrase(*idx, "column store").ValueOrDie());
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[1], 2);  // two occurrences in d1
}

TEST(MatchPhraseTest, OrderMatters) {
  auto idx = PhraseIndex();
  auto counts = Counts(MatchPhrase(*idx, "store column").ValueOrDie());
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts.count(3), 1u);  // only d3 has the reversed phrase
}

TEST(MatchPhraseTest, SingleTermDegeneratesToTf) {
  auto idx = PhraseIndex();
  auto counts = Counts(MatchPhrase(*idx, "column").ValueOrDie());
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(counts.count(4), 0u);
}

TEST(MatchPhraseTest, ThreeTermPhrase) {
  auto idx = PhraseIndex();
  auto counts =
      Counts(MatchPhrase(*idx, "the column store").ValueOrDie());
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[1], 1);  // only the first occurrence follows "the"
}

TEST(MatchPhraseTest, OovAndEmpty) {
  auto idx = PhraseIndex();
  EXPECT_EQ(MatchPhrase(*idx, "zebra crossing").ValueOrDie()->num_rows(),
            0u);
  EXPECT_EQ(MatchPhrase(*idx, "").ValueOrDie()->num_rows(), 0u);
  EXPECT_EQ(MatchPhrase(*idx, "column zebra").ValueOrDie()->num_rows(),
            0u);
}

TEST(MatchPhraseTest, StemmedPhraseMatches) {
  // The analyzer stems both sides: "column stores" matches "column store".
  auto idx = PhraseIndex();
  auto counts = Counts(MatchPhrase(*idx, "column stores").ValueOrDie());
  EXPECT_EQ(counts[1], 2);
}

TEST(RankBm25PhraseBoostedTest, PhraseHitsRankAboveBagHits) {
  auto idx = PhraseIndex();
  RelationPtr ranked =
      RankBm25PhraseBoosted(*idx, "column store", {}).ValueOrDie();
  std::map<int64_t, double> scores;
  for (size_t r = 0; r < ranked->num_rows(); ++r) {
    scores[ranked->column(0).Int64At(r)] = ranked->column(1).Float64At(r);
  }
  // d1 (exact phrase) must beat d2/d3 (bag-of-words only).
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_GT(scores[1], scores[2]);
  EXPECT_GT(scores[1], scores[3]);
}

TEST(RankBm25PhraseBoostedTest, ZeroBoostEqualsPlainBm25) {
  auto idx = PhraseIndex();
  PhraseBoostParams params;
  params.boost = 0.0;
  RelationPtr boosted =
      RankBm25PhraseBoosted(*idx, "column store", params).ValueOrDie();
  RelationPtr qterms = idx->QueryTerms("column store").ValueOrDie();
  RelationPtr plain = RankBm25(*idx, qterms).ValueOrDie();
  std::map<int64_t, double> a, b;
  for (size_t r = 0; r < boosted->num_rows(); ++r) {
    a[boosted->column(0).Int64At(r)] = boosted->column(1).Float64At(r);
  }
  for (size_t r = 0; r < plain->num_rows(); ++r) {
    b[plain->column(0).Int64At(r)] = plain->column(1).Float64At(r);
  }
  EXPECT_EQ(a, b);
}

TEST(SearcherPhraseTest, PhraseBoostThroughSearcher) {
  Searcher searcher;
  SearchOptions boosted;
  boosted.phrase_boost = 2.0;
  boosted.top_k = 1;
  RelationPtr top =
      searcher.Search(PhraseDocs(), "phrase", "column store", boosted)
          .ValueOrDie();
  ASSERT_EQ(top->num_rows(), 1u);
  EXPECT_EQ(top->column(0).Int64At(0), 1);

  // Non-BM25 models ignore the boost (documented).
  SearchOptions lm;
  lm.phrase_boost = 2.0;
  lm.model = RankModel::kLmDirichlet;
  EXPECT_TRUE(
      searcher.Search(PhraseDocs(), "phrase", "column store", lm).ok());
}

TEST(RankBm25PhraseBoostedTest, NoPhraseInQueryFallsBack) {
  auto idx = PhraseIndex();
  RelationPtr ranked =
      RankBm25PhraseBoosted(*idx, "marble", {}).ValueOrDie();
  ASSERT_EQ(ranked->num_rows(), 1u);
  EXPECT_EQ(ranked->column(0).Int64At(0), 2);
}

}  // namespace
}  // namespace spindle
