#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/str.h"
#include "text/analyzer.h"
#include "workload/graph_gen.h"
#include "workload/text_gen.h"

namespace spindle {
namespace {

TEST(WordForRankTest, DeterministicAndUnique) {
  std::set<std::string> seen;
  for (uint64_t r = 1; r <= 5000; ++r) {
    std::string w = WordForRank(r);
    EXPECT_EQ(w, WordForRank(r));
    EXPECT_TRUE(seen.insert(w).second) << "collision at rank " << r;
    for (char c : w) {
      EXPECT_GE(c, 'a');
      EXPECT_LE(c, 'z');
    }
  }
}

TEST(TextGenTest, ShapeAndDeterminism) {
  TextCollectionOptions opts;
  opts.num_docs = 100;
  opts.avg_doc_len = 40;
  RelationPtr a = GenerateTextCollection(opts).ValueOrDie();
  RelationPtr b = GenerateTextCollection(opts).ValueOrDie();
  EXPECT_EQ(a->num_rows(), 100u);
  EXPECT_TRUE(a->Equals(*b));
  opts.seed = 43;
  RelationPtr c = GenerateTextCollection(opts).ValueOrDie();
  EXPECT_FALSE(a->Equals(*c));
}

TEST(TextGenTest, DocLengthsWithinJitterBand) {
  TextCollectionOptions opts;
  opts.num_docs = 200;
  opts.avg_doc_len = 50;
  opts.length_jitter = 0.2;
  RelationPtr docs = GenerateTextCollection(opts).ValueOrDie();
  for (size_t r = 0; r < docs->num_rows(); ++r) {
    const std::string& text = docs->column(1).StringAt(r);
    size_t tokens = 1 + std::count(text.begin(), text.end(), ' ');
    EXPECT_GE(tokens, 40u);
    EXPECT_LE(tokens, 60u);
  }
}

TEST(TextGenTest, TermDistributionIsSkewed) {
  TextCollectionOptions opts;
  opts.num_docs = 300;
  opts.vocab_size = 1000;
  RelationPtr docs = GenerateTextCollection(opts).ValueOrDie();
  std::map<std::string, int> freq;
  for (size_t r = 0; r < docs->num_rows(); ++r) {
    for (const auto& piece :
         Split(docs->column(1).StringAt(r), ' ')) {
      freq[piece]++;
    }
  }
  // The most frequent term should dominate the median term massively.
  std::vector<int> counts;
  for (const auto& [w, c] : freq) counts.push_back(c);
  std::sort(counts.rbegin(), counts.rend());
  ASSERT_GT(counts.size(), 100u);
  EXPECT_GT(counts[0], 20 * counts[counts.size() / 2]);
  // And the rank-1 word of the vocabulary is that term.
  EXPECT_EQ(freq[WordForRank(1)], counts[0]);
}

TEST(TextGenTest, QueriesUseMidFrequencyVocabulary) {
  TextCollectionOptions opts;
  opts.vocab_size = 10000;
  auto queries = GenerateQueries(opts, 50, 3);
  ASSERT_EQ(queries.size(), 50u);
  for (const auto& q : queries) {
    auto parts = Split(q, ' ');
    EXPECT_EQ(parts.size(), 3u);
  }
  // Deterministic.
  EXPECT_EQ(queries, GenerateQueries(opts, 50, 3));
}

TEST(ProductCatalogTest, SchemaAndCounts) {
  ProductCatalogOptions opts;
  opts.num_products = 50;
  TripleStore store = GenerateProductCatalog(opts).ValueOrDie();
  RelationPtr s = store.StringTriples().ValueOrDie();
  RelationPtr i = store.IntTriples().ValueOrDie();
  RelationPtr f = store.FloatTriples().ValueOrDie();
  // 3 string triples per product (type, category, description).
  EXPECT_EQ(s->num_rows(), 150u);
  EXPECT_EQ(i->num_rows(), 50u);  // price
  EXPECT_EQ(f->num_rows(), 50u);  // rating
  // Categories round-robin over 5 defaults: 10 each.
  std::map<std::string, int> per_category;
  for (size_t r = 0; r < s->num_rows(); ++r) {
    if (s->column(1).StringAt(r) == "category") {
      per_category[s->column(2).StringAt(r)]++;
    }
  }
  EXPECT_EQ(per_category.size(), 5u);
  for (const auto& [cat, count] : per_category) EXPECT_EQ(count, 10);
}

TEST(AuctionGraphTest, ShapeAndDeterminism) {
  AuctionGraphOptions opts;
  opts.num_lots = 100;
  opts.num_auctions = 8;
  opts.num_synonym_pairs = 20;
  TripleStore a = GenerateAuctionGraph(opts).ValueOrDie();
  TripleStore b = GenerateAuctionGraph(opts).ValueOrDie();
  RelationPtr ra = a.StringTriples().ValueOrDie();
  EXPECT_TRUE(ra->Equals(*b.StringTriples().ValueOrDie()));

  std::map<std::string, int> per_property;
  int lot_types = 0, auction_types = 0;
  for (size_t r = 0; r < ra->num_rows(); ++r) {
    per_property[ra->column(1).StringAt(r)]++;
    if (ra->column(1).StringAt(r) == "type") {
      if (ra->column(2).StringAt(r) == "lot") lot_types++;
      if (ra->column(2).StringAt(r) == "auction") auction_types++;
    }
  }
  EXPECT_EQ(lot_types, 100);
  EXPECT_EQ(auction_types, 8);
  EXPECT_EQ(per_property["hasAuction"], 100);
  EXPECT_EQ(per_property["description"], 108);  // lots + auctions
  EXPECT_EQ(per_property["title"], 100);
  EXPECT_GT(per_property["synonym"], 0);
  // Optional properties hit roughly their configured fractions.
  EXPECT_GT(per_property["tags"], 20);
  EXPECT_LT(per_property["tags"], 80);
}

TEST(AuctionGraphTest, TagsCarryConfidence) {
  AuctionGraphOptions opts;
  opts.num_lots = 50;
  opts.num_auctions = 5;
  opts.tags_confidence = 0.8;
  TripleStore store = GenerateAuctionGraph(opts).ValueOrDie();
  RelationPtr rel = store.StringTriples().ValueOrDie();
  bool found = false;
  for (size_t r = 0; r < rel->num_rows(); ++r) {
    if (rel->column(1).StringAt(r) == "tags") {
      EXPECT_DOUBLE_EQ(rel->column(3).Float64At(r), 0.8);
      found = true;
    } else {
      EXPECT_DOUBLE_EQ(rel->column(3).Float64At(r), 1.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(AuctionGraphTest, SynonymsAreSymmetric) {
  AuctionGraphOptions opts;
  opts.num_lots = 10;
  opts.num_auctions = 2;
  opts.num_synonym_pairs = 30;
  TripleStore store = GenerateAuctionGraph(opts).ValueOrDie();
  RelationPtr rel = store.StringTriples().ValueOrDie();
  std::set<std::pair<std::string, std::string>> pairs;
  for (size_t r = 0; r < rel->num_rows(); ++r) {
    if (rel->column(1).StringAt(r) == "synonym") {
      pairs.insert({rel->column(0).StringAt(r),
                    rel->column(2).StringAt(r)});
    }
  }
  for (const auto& [a, b] : pairs) {
    EXPECT_TRUE(pairs.count({b, a})) << a << " <-> " << b;
  }
}

TEST(AuctionGraphTest, QueriesDrawFromVocabulary) {
  AuctionGraphOptions opts;
  auto queries = GenerateAuctionQueries(opts, 10, 3);
  ASSERT_EQ(queries.size(), 10u);
  for (const auto& q : queries) {
    EXPECT_EQ(Split(q, ' ').size(), 3u);
  }
}

TEST(GeneratorValidationTest, BadOptionsRejected) {
  TextCollectionOptions t;
  t.vocab_size = 0;
  EXPECT_FALSE(GenerateTextCollection(t).ok());
  ProductCatalogOptions p;
  p.categories.clear();
  EXPECT_FALSE(GenerateProductCatalog(p).ok());
  AuctionGraphOptions a;
  a.num_auctions = 0;
  EXPECT_FALSE(GenerateAuctionGraph(a).ok());
}

}  // namespace
}  // namespace spindle
