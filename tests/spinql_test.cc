#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "ir/ranking.h"
#include "spinql/evaluator.h"
#include "spinql/lexer.h"
#include "spinql/parser.h"
#include "spinql/sql_emitter.h"
#include "workload/graph_gen.h"

namespace spindle {
namespace spinql {
namespace {

// ---------------------------------------------------------------- lexer --

TEST(LexerTest, BasicTokens) {
  auto toks = Lex("docs = SELECT [$2=\"toy\"] (triples);").ValueOrDie();
  ASSERT_GE(toks.size(), 10u);
  EXPECT_EQ(toks[0].kind, TokKind::kIdent);
  EXPECT_EQ(toks[0].text, "docs");
  EXPECT_EQ(toks[1].kind, TokKind::kEquals);
  EXPECT_EQ(toks[3].kind, TokKind::kLBracket);
  EXPECT_EQ(toks[4].kind, TokKind::kDollar);
  EXPECT_EQ(toks[4].number, 2);
  EXPECT_EQ(toks[6].kind, TokKind::kString);
  EXPECT_EQ(toks[6].text, "toy");
  EXPECT_EQ(toks.back().kind, TokKind::kEnd);
}

TEST(LexerTest, NumbersAndOperators) {
  auto toks = Lex("0.75 12 1e3 <= != <>").ValueOrDie();
  EXPECT_EQ(toks[0].kind, TokKind::kFloat);
  EXPECT_DOUBLE_EQ(toks[0].number, 0.75);
  EXPECT_EQ(toks[1].kind, TokKind::kInt);
  EXPECT_EQ(toks[2].kind, TokKind::kFloat);
  EXPECT_DOUBLE_EQ(toks[2].number, 1000);
  EXPECT_EQ(toks[3].kind, TokKind::kLessEq);
  EXPECT_EQ(toks[4].kind, TokKind::kNotEquals);
  EXPECT_EQ(toks[5].kind, TokKind::kNotEquals);
}

TEST(LexerTest, CommentsAndEscapes) {
  auto toks = Lex("-- a comment\nx \"a\\\"b\"").ValueOrDie();
  EXPECT_EQ(toks[0].text, "x");
  EXPECT_EQ(toks[1].text, "a\"b");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Lex("\"unterminated").ok());
  EXPECT_FALSE(Lex("$x").ok());
  EXPECT_FALSE(Lex("a ! b").ok());
  EXPECT_FALSE(Lex("a @ b").ok());
}

// --------------------------------------------------------------- parser --

TEST(ParserTest, PaperDocsQueryParses) {
  // Verbatim from the paper (Section 2.3).
  const char* src =
      "docs = PROJECT [$1,$6] (\n"
      "  JOIN INDEPENDENT [$1=$1] (\n"
      "    SELECT [$2=\"category\" and $3=\"toy\"] (triples),\n"
      "    SELECT [$2=\"description\"] (triples) ) );\n";
  Program p = Program::Parse(src).ValueOrDie();
  ASSERT_EQ(p.statements().size(), 1u);
  EXPECT_EQ(p.output(), "docs");
  NodePtr node = p.Lookup("docs").ValueOrDie();
  EXPECT_EQ(node->kind(), NodeKind::kProject);
  EXPECT_EQ(node->inputs()[0]->kind(), NodeKind::kJoin);
}

TEST(ParserTest, CanonicalPrintRoundTrips) {
  const char* srcs[] = {
      "SELECT [eq($2, \"toy\")] (triples)",
      "PROJECT DISJOINT [$1] (t)",
      "PROJECT [$1 AS id, $2 * P AS w] (t)",
      "JOIN INDEPENDENT [$1=$2, $3=$1] (a, b)",
      "UNITE MAX (a, b, c)",
      "WEIGHT [0.3] (a)",
      "COMPLEMENT (a)",
      "BAYES [$1] (a)",
      "BAYES [] (a)",
      "TOKENIZE [$2, \"sb-english\"] (docs)",
      "RANK BM25 [k1=1.2, b=0.75, analyzer=\"sb-english\"] (docs, query)",
      "RANK LMD [mu=2000, analyzer=\"sb-english\"] (docs, query)",
      "TOPK [10] (a)",
  };
  for (const char* src : srcs) {
    auto first = ParseExpression(src);
    ASSERT_TRUE(first.ok()) << src << ": " << first.status().ToString();
    std::string printed = first.ValueOrDie()->ToString();
    auto second = ParseExpression(printed);
    ASSERT_TRUE(second.ok()) << printed << ": "
                             << second.status().ToString();
    EXPECT_EQ(second.ValueOrDie()->ToString(), printed) << src;
  }
}

TEST(ParserTest, PredicateOperators) {
  auto node =
      ParseExpression(
          "SELECT [NOT ($1 = \"x\" OR $2 != \"y\") AND $3 >= 5] (t)")
          .ValueOrDie();
  EXPECT_EQ(node->kind(), NodeKind::kSelect);
  // Shape: and(not(or(eq, ne)), ge)
  EXPECT_EQ(node->predicate()->ToString(),
            "and(not(or(eq($1, \"x\"), ne($2, \"y\"))), ge($3, 5))");
}

TEST(ParserTest, ScalarArithmeticPrecedence) {
  auto node =
      ParseExpression("PROJECT [$1 + $2 * 3 - 1] (t)").ValueOrDie();
  EXPECT_EQ(node->items()[0]->ToString(),
            "sub(add($1, mul($2, 3)), 1)");
}

TEST(ParserTest, FunctionCalls) {
  auto node = ParseExpression(
                  "PROJECT [stem(lcase($1), \"sb-english\")] (t)")
                  .ValueOrDie();
  EXPECT_EQ(node->items()[0]->ToString(),
            "stem(lcase($1), \"sb-english\")");
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseExpression("SELECT [$1=1] t").ok());     // missing ()
  EXPECT_FALSE(ParseExpression("JOIN [$1=$1] (a, b)").ok()); // no INDEPENDENT
  EXPECT_FALSE(ParseExpression("UNITE (a, b)").ok());        // no assumption
  EXPECT_FALSE(ParseExpression("PROJECT [$0] (t)").ok());    // 1-based refs
  EXPECT_FALSE(ParseExpression("RANK FOO (a, b)").ok());
  EXPECT_FALSE(ParseExpression("TOPK [2.5] (a)").ok());
  EXPECT_FALSE(Program::Parse("").ok());
  EXPECT_FALSE(Program::Parse("a = t; a = t;").ok());        // duplicate
}

// ------------------------------------------------------------ evaluator --

class EvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TripleStore store;
    store.Add("prod1", "category", "toy", 0.9);
    store.Add("prod1", "description", "a red toy car");
    store.Add("prod2", "category", "book");
    store.Add("prod2", "description", "a history book");
    store.Add("prod3", "category", "toy");
    store.Add("prod3", "description", "blue wooden blocks");
    ASSERT_TRUE(store.RegisterInto(catalog_).ok());
  }

  Catalog catalog_;
  MaterializationCache cache_{64 << 20};
};

TEST_F(EvalTest, PaperDocsQueryEvaluates) {
  const char* src =
      "docs = PROJECT [$1,$6] (JOIN INDEPENDENT [$1=$1] ("
      "SELECT [$2=\"category\" and $3=\"toy\"] (triples),"
      "SELECT [$2=\"description\"] (triples)));";
  Program p = Program::Parse(src).ValueOrDie();
  Evaluator ev(&catalog_, &cache_);
  ProbRelation docs = ev.Eval(p).ValueOrDie();
  ASSERT_EQ(docs.num_rows(), 2u);
  std::map<std::string, double> by_id;
  for (size_t r = 0; r < docs.num_rows(); ++r) {
    by_id[docs.rel()->column(0).StringAt(r)] = docs.prob_at(r);
  }
  EXPECT_DOUBLE_EQ(by_id["prod1"], 0.9);  // t1.p * t2.p
  EXPECT_DOUBLE_EQ(by_id["prod3"], 1.0);
}

TEST_F(EvalTest, SelectOnP) {
  Evaluator ev(&catalog_, &cache_);
  ProbRelation out =
      ev.EvalExpression("SELECT [P < 1.0] (triples)").ValueOrDie();
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.rel()->column(0).StringAt(0), "prod1");
}

TEST_F(EvalTest, WeightUniteMix) {
  Evaluator ev(&catalog_, &cache_);
  const char* src =
      "a = PROJECT MAX [$1] (SELECT [$2=\"category\" and $3=\"toy\"] "
      "(triples));"
      "b = PROJECT MAX [$1] (SELECT [$2=\"category\" and $3=\"book\"] "
      "(triples));"
      "mix = UNITE DISJOINT (WEIGHT [0.7] (a), WEIGHT [0.3] (b));";
  Program p = Program::Parse(src).ValueOrDie();
  ProbRelation mix = ev.Eval(p).ValueOrDie();
  ASSERT_EQ(mix.num_rows(), 3u);
  std::map<std::string, double> by_id;
  for (size_t r = 0; r < mix.num_rows(); ++r) {
    by_id[mix.rel()->column(0).StringAt(r)] = mix.prob_at(r);
  }
  EXPECT_NEAR(by_id["prod1"], 0.63, 1e-12);  // 0.7 * 0.9
  EXPECT_NEAR(by_id["prod2"], 0.3, 1e-12);
  EXPECT_NEAR(by_id["prod3"], 0.7, 1e-12);
}

TEST_F(EvalTest, BindingsResolveAcrossStatements) {
  Evaluator ev(&catalog_, &cache_);
  const char* src =
      "toys = SELECT [$2=\"category\" and $3=\"toy\"] (triples);"
      "ids = PROJECT MAX [$1] (toys);";
  Program p = Program::Parse(src).ValueOrDie();
  ProbRelation ids = ev.Eval(p, "ids").ValueOrDie();
  EXPECT_EQ(ids.num_rows(), 2u);
  ProbRelation toys = ev.Eval(p, "toys").ValueOrDie();
  EXPECT_EQ(toys.arity(), 3u);
}

TEST_F(EvalTest, UnknownTableOrBindingFails) {
  Evaluator ev(&catalog_, &cache_);
  EXPECT_FALSE(ev.EvalExpression("SELECT [$1=\"x\"] (nope)").ok());
  Program p = Program::Parse("a = triples;").ValueOrDie();
  EXPECT_FALSE(ev.Eval(p, "zzz").ok());
}

TEST_F(EvalTest, IntermediatesAreMaterialized) {
  Evaluator ev(&catalog_, &cache_);
  ASSERT_TRUE(
      ev.EvalExpression("SELECT [$2=\"description\"] (triples)").ok());
  uint64_t misses = cache_.stats().misses;
  // Second evaluation of the same expression hits the cache.
  ASSERT_TRUE(
      ev.EvalExpression("SELECT [$2=\"description\"] (triples)").ok());
  EXPECT_EQ(cache_.stats().misses, misses);
  EXPECT_GE(cache_.stats().hits, 1u);
}

TEST_F(EvalTest, CacheInvalidatedByTableReplacement) {
  Evaluator ev(&catalog_, &cache_);
  ProbRelation before =
      ev.EvalExpression("SELECT [$2=\"description\"] (triples)")
          .ValueOrDie();
  EXPECT_EQ(before.num_rows(), 3u);
  // Replace the table: signatures pin the version, so the stale entry is
  // simply never hit again.
  TripleStore store;
  store.Add("x", "description", "fresh");
  catalog_.Register("triples", store.StringTriples().ValueOrDie());
  ProbRelation after =
      ev.EvalExpression("SELECT [$2=\"description\"] (triples)")
          .ValueOrDie();
  EXPECT_EQ(after.num_rows(), 1u);
}

TEST_F(EvalTest, SubexpressionSharedAcrossQueries) {
  Evaluator ev(&catalog_, &cache_);
  // Two different programs share the description-selection subexpression.
  ASSERT_TRUE(ev.EvalExpression("PROJECT [$1] (SELECT [$2=\"description\"] "
                                "(triples))")
                  .ok());
  cache_.ResetCounters();
  ASSERT_TRUE(ev.EvalExpression("PROJECT [$3] (SELECT [$2=\"description\"] "
                                "(triples))")
                  .ok());
  EXPECT_GE(cache_.stats().hits, 1u);  // the SELECT was reused
}

TEST_F(EvalTest, TokenizeExplodesAndKeepsP) {
  Evaluator ev(&catalog_, &cache_);
  ProbRelation out =
      ev.EvalExpression("TOKENIZE [$3, \"none\"] (SELECT "
                        "[$2=\"description\" and $1=\"prod1\"] (triples))")
          .ValueOrDie();
  // "a red toy car" -> 4 tokens; attrs: subject, property, term, pos.
  ASSERT_EQ(out.num_rows(), 4u);
  EXPECT_EQ(out.arity(), 4u);
  EXPECT_EQ(out.rel()->schema().field(out.arity()).name, "p");
  EXPECT_EQ(out.rel()->column(2).StringAt(1), "red");
}

TEST_F(EvalTest, RankMatchesIrPipeline) {
  Evaluator ev(&catalog_, &cache_);
  Program p = Program::Parse(
                  "docs = PROJECT [$1, $3] (SELECT [$2=\"description\"] "
                  "(triples));"
                  "hits = RANK BM25 [k1=1.2, b=0.75, "
                  "analyzer=\"sb-english\"] (docs, query);")
                  .ValueOrDie();
  RelationBuilder qb({{"data", DataType::kString},
                      {"p", DataType::kFloat64}});
  ASSERT_TRUE(qb.AddRow({std::string("toy car"), 1.0}).ok());
  catalog_.Register("query", qb.Build().ValueOrDie());

  ProbRelation hits = ev.Eval(p).ValueOrDie();
  ASSERT_EQ(hits.num_rows(), 1u);
  EXPECT_EQ(hits.rel()->column(0).StringAt(0), "prod1");

  // Cross-check the score against the direct IR pipeline on the same
  // 3-document sub-collection (prod1's p = 1.0 for description).
  RelationBuilder db({{"docID", DataType::kInt64},
                      {"data", DataType::kString}});
  ASSERT_TRUE(db.AddRow({int64_t{1}, std::string("a red toy car")}).ok());
  ASSERT_TRUE(db.AddRow({int64_t{2}, std::string("a history book")}).ok());
  ASSERT_TRUE(
      db.AddRow({int64_t{3}, std::string("blue wooden blocks")}).ok());
  Analyzer an = Analyzer::Make({}).ValueOrDie();
  auto idx = TextIndex::Build(db.Build().ValueOrDie(), an).ValueOrDie();
  RelationPtr q = idx->QueryTerms("toy car").ValueOrDie();
  RelationPtr scored = RankBm25(*idx, q).ValueOrDie();
  ASSERT_EQ(scored->num_rows(), 1u);
  EXPECT_NEAR(hits.prob_at(0), scored->column(1).Float64At(0), 1e-9);
}

TEST_F(EvalTest, RankReusesOnDemandIndex) {
  Evaluator ev(&catalog_, &cache_);
  Program p = Program::Parse(
                  "docs = PROJECT [$1, $3] (SELECT [$2=\"description\"] "
                  "(triples));"
                  "hits = RANK BM25 (docs, query);")
                  .ValueOrDie();
  for (const char* qtext : {"toy", "book", "blocks"}) {
    RelationBuilder qb({{"data", DataType::kString},
                        {"p", DataType::kFloat64}});
    ASSERT_TRUE(qb.AddRow({std::string(qtext), 1.0}).ok());
    catalog_.Register("query", qb.Build().ValueOrDie());
    ASSERT_TRUE(ev.Eval(p).ok());
  }
  EXPECT_EQ(ev.stats().index_misses, 1u);
  EXPECT_EQ(ev.stats().index_hits, 2u);
}

TEST_F(EvalTest, RankWeightedQueryRows) {
  Evaluator ev(&catalog_, &cache_);
  Program p = Program::Parse(
                  "docs = PROJECT [$1, $3] (SELECT [$2=\"description\"] "
                  "(triples));"
                  "hits = RANK BM25 (docs, query);")
                  .ValueOrDie();
  // Two query rows: "toy" at weight 1 and "car" at weight 0.5.
  RelationBuilder qb({{"data", DataType::kString},
                      {"p", DataType::kFloat64}});
  ASSERT_TRUE(qb.AddRow({std::string("toy"), 1.0}).ok());
  ASSERT_TRUE(qb.AddRow({std::string("car"), 0.5}).ok());
  catalog_.Register("query", qb.Build().ValueOrDie());
  ProbRelation weighted = ev.Eval(p).ValueOrDie();

  RelationBuilder qb2({{"data", DataType::kString},
                       {"p", DataType::kFloat64}});
  ASSERT_TRUE(qb2.AddRow({std::string("toy"), 1.0}).ok());
  catalog_.Register("query", qb2.Build().ValueOrDie());
  ProbRelation toy_only = ev.Eval(p).ValueOrDie();

  // prod1 matches both terms; with the weighted extra term its score must
  // strictly exceed the toy-only score.
  EXPECT_GT(weighted.prob_at(0), toy_only.prob_at(0));
}

// ----------------------------------------------------------- SQL emitter --

TEST_F(EvalTest, SqlEmissionMatchesPaperShape) {
  const char* src =
      "docs = PROJECT [$1,$6] (JOIN INDEPENDENT [$1=$1] ("
      "SELECT [$2=\"category\" and $3=\"toy\"] (triples),"
      "SELECT [$2=\"description\"] (triples)));";
  Program p = Program::Parse(src).ValueOrDie();
  std::string sql =
      EmitSql(p.Lookup("docs").ValueOrDie(), p, catalog_).ValueOrDie();
  // The paper's translation: p = t1.p * t2.p, category/description
  // selections, join on subject.
  EXPECT_NE(sql.find("t1.p * t2.p AS p"), std::string::npos) << sql;
  EXPECT_NE(sql.find("= 'toy'"), std::string::npos);
  EXPECT_NE(sql.find("= 'description'"), std::string::npos);
  EXPECT_NE(sql.find("t1.c1 = t2.c1"), std::string::npos);
}

TEST_F(EvalTest, SqlEmissionAggregates) {
  Program p = Program::Parse(
                  "a = PROJECT DISJOINT [$1] (triples);"
                  "b = PROJECT INDEPENDENT [$1] (triples);"
                  "c = BAYES [$2] (triples);")
                  .ValueOrDie();
  std::string a =
      EmitSql(p.Lookup("a").ValueOrDie(), p, catalog_).ValueOrDie();
  EXPECT_NE(a.find("SUM(t.p)"), std::string::npos);
  EXPECT_NE(a.find("GROUP BY"), std::string::npos);
  std::string b =
      EmitSql(p.Lookup("b").ValueOrDie(), p, catalog_).ValueOrDie();
  EXPECT_NE(b.find("1 - EXP(SUM(LN(1 - t.p)))"), std::string::npos);
  std::string c =
      EmitSql(p.Lookup("c").ValueOrDie(), p, catalog_).ValueOrDie();
  EXPECT_NE(c.find("OVER (PARTITION BY t.c2)"), std::string::npos);
}

TEST_F(EvalTest, SqlEmissionRankCascade) {
  Program p = Program::Parse(
                  "docs = PROJECT [$1, $3] (SELECT [$2=\"description\"] "
                  "(triples));"
                  "hits = RANK BM25 [k1=1.2, b=0.75] (docs, query);")
                  .ValueOrDie();
  RelationBuilder qb({{"data", DataType::kString},
                      {"p", DataType::kFloat64}});
  ASSERT_TRUE(qb.AddRow({std::string("toy"), 1.0}).ok());
  catalog_.Register("query", qb.Build().ValueOrDie());
  std::string sql =
      EmitSql(p.Lookup("hits").ValueOrDie(), p, catalog_).ValueOrDie();
  // The paper's §2.1 view cascade.
  for (const char* view : {"term_doc", "doc_len", "termdict", "tf AS",
                           "idf AS", "tf_bm25", "qterms"}) {
    EXPECT_NE(sql.find(view), std::string::npos) << view << "\n" << sql;
  }
  EXPECT_NE(sql.find("row_number() OVER ()"), std::string::npos);
  EXPECT_NE(sql.find("stem(lcase("), std::string::npos);
}

TEST_F(EvalTest, ProgramSqlEmitsViews) {
  Program p = Program::Parse(
                  "a = SELECT [$2=\"description\"] (triples);"
                  "b = PROJECT MAX [$1] (a);")
                  .ValueOrDie();
  std::string sql = EmitProgramSql(p, catalog_).ValueOrDie();
  EXPECT_NE(sql.find("CREATE VIEW a AS"), std::string::npos);
  EXPECT_NE(sql.find("CREATE VIEW b AS"), std::string::npos);
  EXPECT_NE(sql.find("FROM a"), std::string::npos);
}

TEST_F(EvalTest, InferArity) {
  Program p = Program::Parse(
                  "a = SELECT [$2=\"x\"] (triples);"
                  "b = PROJECT [$1, $2] (a);"
                  "c = JOIN INDEPENDENT [$1=$1] (a, b);"
                  "d = TOKENIZE [$3] (a);")
                  .ValueOrDie();
  EXPECT_EQ(InferArity(p.Lookup("a").ValueOrDie(), p, catalog_).ValueOrDie(),
            3u);
  EXPECT_EQ(InferArity(p.Lookup("b").ValueOrDie(), p, catalog_).ValueOrDie(),
            2u);
  EXPECT_EQ(InferArity(p.Lookup("c").ValueOrDie(), p, catalog_).ValueOrDie(),
            5u);
  EXPECT_EQ(InferArity(p.Lookup("d").ValueOrDie(), p, catalog_).ValueOrDie(),
            4u);
}

}  // namespace
}  // namespace spinql
}  // namespace spindle
