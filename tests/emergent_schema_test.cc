#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>

#include "engine/ops.h"
#include "triples/emergent_schema.h"
#include "triples/triple_store.h"
#include "workload/graph_gen.h"

namespace spindle {
namespace {

/// Catalog where most products share one characteristic set and a few
/// are irregular.
RelationPtr RegularCatalog() {
  TripleStore store;
  for (int i = 1; i <= 20; ++i) {
    std::string id = "prod" + std::to_string(i);
    store.Add(id, "type", "product");
    store.Add(id, "category", i % 2 == 0 ? "toy" : "book");
    store.Add(id, "description", "item number " + std::to_string(i));
  }
  // Two irregular subjects.
  store.Add("odd1", "type", "product");
  store.Add("odd2", "category", "toy");
  return store.StringTriples().ValueOrDie();
}

TEST(EmergentSchemaTest, DetectsDominantCharacteristicSet) {
  auto schema = EmergentSchema::Detect(RegularCatalog()).ValueOrDie();
  ASSERT_GE(schema.tables().size(), 1u);
  const EmergentTable& top = schema.tables()[0];
  EXPECT_EQ(top.properties,
            (std::vector<std::string>{"category", "description", "type"}));
  EXPECT_EQ(top.num_subjects, 20u);
  EXPECT_EQ(top.table->num_rows(), 20u);
  // subject + 3 properties + p.
  EXPECT_EQ(top.table->num_columns(), 5u);
  EXPECT_EQ(schema.num_subjects(), 22u);
  EXPECT_GT(schema.coverage(), 0.9);
}

TEST(EmergentSchemaTest, WideTableValuesMatchTriples) {
  auto schema = EmergentSchema::Detect(RegularCatalog()).ValueOrDie();
  const EmergentTable& top = schema.tables()[0];
  auto cat_col = top.table->schema().FindField("category");
  auto desc_col = top.table->schema().FindField("description");
  ASSERT_TRUE(cat_col && desc_col);
  for (size_t r = 0; r < top.table->num_rows(); ++r) {
    const std::string& subject = top.table->column(0).StringAt(r);
    int i = std::atoi(subject.c_str() + 4);
    EXPECT_EQ(top.table->column(*cat_col).StringAt(r),
              i % 2 == 0 ? "toy" : "book");
    EXPECT_EQ(top.table->column(*desc_col).StringAt(r),
              "item number " + std::to_string(i));
    EXPECT_DOUBLE_EQ(
        top.table->column(top.table->num_columns() - 1).Float64At(r), 1.0);
  }
}

TEST(EmergentSchemaTest, MinCoverageFiltersRareSets) {
  EmergentSchemaOptions strict;
  strict.min_coverage = 0.5;
  auto schema =
      EmergentSchema::Detect(RegularCatalog(), strict).ValueOrDie();
  EXPECT_EQ(schema.tables().size(), 1u);  // only the dominant set
}

TEST(EmergentSchemaTest, MaxTablesRespected) {
  EmergentSchemaOptions one;
  one.max_tables = 1;
  one.min_coverage = 0.0;
  auto schema = EmergentSchema::Detect(RegularCatalog(), one).ValueOrDie();
  EXPECT_EQ(schema.tables().size(), 1u);
}

TEST(EmergentSchemaTest, TableForProjectsRequestedProperties) {
  auto schema = EmergentSchema::Detect(RegularCatalog()).ValueOrDie();
  RelationPtr docs =
      schema.TableFor({"category", "description"}).ValueOrDie();
  EXPECT_EQ(docs->num_rows(), 20u);
  EXPECT_EQ(docs->schema().field(0).name, "subject");
  EXPECT_EQ(docs->schema().field(1).name, "category");
  EXPECT_EQ(docs->schema().field(2).name, "description");
  EXPECT_EQ(docs->schema().field(3).name, "p");
}

TEST(EmergentSchemaTest, TableForUnknownPropertyFails) {
  auto schema = EmergentSchema::Detect(RegularCatalog()).ValueOrDie();
  EXPECT_EQ(schema.TableFor({"nonexistent"}).status().code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(schema.TableFor({}).ok());
}

TEST(EmergentSchemaTest, EquivalentToSelfJoinOnCoveredSubjects) {
  // The emergent-table projection must agree with the paper's triples
  // self-join for every covered subject.
  RelationPtr triples = RegularCatalog();
  auto schema = EmergentSchema::Detect(triples).ValueOrDie();
  RelationPtr via_emergent =
      schema.TableFor({"category", "description"}).ValueOrDie();

  const auto& reg = FunctionRegistry::Default();
  RelationPtr cat =
      Filter(triples, Expr::Eq(Expr::Column(1), Expr::LitString("category")),
             reg)
          .ValueOrDie();
  RelationPtr desc =
      Filter(triples,
             Expr::Eq(Expr::Column(1), Expr::LitString("description")),
             reg)
          .ValueOrDie();
  RelationPtr joined = HashJoin(cat, desc, {{0, 0}}).ValueOrDie();
  std::map<std::string, std::pair<std::string, std::string>> expected;
  for (size_t r = 0; r < joined->num_rows(); ++r) {
    expected[joined->column(0).StringAt(r)] = {
        joined->column(2).StringAt(r), joined->column(6).StringAt(r)};
  }
  ASSERT_EQ(via_emergent->num_rows(), expected.size());
  for (size_t r = 0; r < via_emergent->num_rows(); ++r) {
    const std::string& s = via_emergent->column(0).StringAt(r);
    ASSERT_TRUE(expected.count(s)) << s;
    EXPECT_EQ(via_emergent->column(1).StringAt(r), expected[s].first);
    EXPECT_EQ(via_emergent->column(2).StringAt(r), expected[s].second);
  }
}

TEST(EmergentSchemaTest, MultipleCharacteristicSets) {
  auto schema = EmergentSchema::Detect(
                    GenerateAuctionGraph({}).ValueOrDie()
                        .StringTriples()
                        .ValueOrDie(),
                    {16, 0.0})
                    .ValueOrDie();
  // Lots come in several shapes (with/without tags, sellerNotes) plus
  // auctions and synonym words.
  EXPECT_GT(schema.tables().size(), 3u);
  EXPECT_GT(schema.coverage(), 0.9);
  // Every lot-shaped table contains type+description+title+hasAuction.
  bool found_lot_shape = false;
  for (const auto& t : schema.tables()) {
    if (std::find(t.properties.begin(), t.properties.end(),
                  "hasAuction") != t.properties.end()) {
      found_lot_shape = true;
    }
  }
  EXPECT_TRUE(found_lot_shape);
}

TEST(EmergentSchemaTest, UncertainTriplesMultiplyIntoRowP) {
  TripleStore store;
  store.Add("s1", "a", "x", 0.5);
  store.Add("s1", "b", "y", 0.8);
  store.Add("s2", "a", "x");
  store.Add("s2", "b", "y");
  auto schema = EmergentSchema::Detect(store.StringTriples().ValueOrDie(),
                                       {8, 0.0})
                    .ValueOrDie();
  ASSERT_EQ(schema.tables().size(), 1u);
  const RelationPtr& t = schema.tables()[0].table;
  std::map<std::string, double> p_by_subject;
  for (size_t r = 0; r < t->num_rows(); ++r) {
    p_by_subject[t->column(0).StringAt(r)] =
        t->column(t->num_columns() - 1).Float64At(r);
  }
  EXPECT_DOUBLE_EQ(p_by_subject["s1"], 0.4);  // 0.5 * 0.8
  EXPECT_DOUBLE_EQ(p_by_subject["s2"], 1.0);
}

TEST(EmergentSchemaTest, RejectsNonStringTriples) {
  TripleStore store;
  store.AddInt("s", "p", 1);
  EXPECT_FALSE(
      EmergentSchema::Detect(store.IntTriples().ValueOrDie()).ok());
}

}  // namespace
}  // namespace spindle
