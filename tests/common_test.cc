#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/hash.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/str.h"

namespace spindle {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing table");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing table");
  EXPECT_EQ(s.ToString(), "NotFound: missing table");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (auto code : {StatusCode::kOk, StatusCode::kInvalidArgument,
                    StatusCode::kNotFound, StatusCode::kAlreadyExists,
                    StatusCode::kOutOfRange, StatusCode::kTypeMismatch,
                    StatusCode::kParseError, StatusCode::kNotImplemented,
                    StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Result<int> Doubled(int v) {
  SPINDLE_ASSIGN_OR_RETURN(int x, ParsePositive(v));
  return x * 2;
}

TEST(ResultTest, ValueRoundTrip) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 21);
}

TEST(ResultTest, ErrorPropagates) {
  Result<int> r = Doubled(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Doubled(4).ValueOrDie(), 8);
}

TEST(ResultTest, ValueOr) {
  EXPECT_EQ(ParsePositive(-5).ValueOr(7), 7);
  EXPECT_EQ(ParsePositive(5).ValueOr(7), 5);
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_EQ(a.Next(), b.Next());
  Rng a2(42);
  EXPECT_NE(a2.Next(), c.Next());
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedStaysInBound) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(123);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(ZipfTest, RanksInRange) {
  Rng rng(5);
  ZipfSampler zipf(100, 1.0);
  for (int i = 0; i < 1000; ++i) {
    uint64_t r = zipf.Sample(rng);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 100u);
  }
}

TEST(ZipfTest, LowRanksDominate) {
  Rng rng(5);
  ZipfSampler zipf(1000, 1.0);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) counts[zipf.Sample(rng)]++;
  // Rank 1 should be roughly twice as frequent as rank 2 and far more
  // frequent than rank 100.
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[1], 10 * counts[100]);
  double ratio = static_cast<double>(counts[1]) / counts[2];
  EXPECT_NEAR(ratio, 2.0, 0.5);
}

TEST(HashTest, StableAndSpread) {
  EXPECT_EQ(HashBytes("abc"), HashBytes("abc"));
  EXPECT_NE(HashBytes("abc"), HashBytes("abd"));
  EXPECT_NE(HashInt64(1), HashInt64(2));
  EXPECT_NE(HashCombine(HashInt64(1), HashInt64(2)),
            HashCombine(HashInt64(2), HashInt64(1)));
}

TEST(StrTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("HeLLo WORLD 42"), "hello world 42");
  EXPECT_EQ(ToLowerAscii(""), "");
  // Non-ASCII bytes pass through unchanged.
  EXPECT_EQ(ToLowerAscii("Caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(StrTest, SplitAndJoin) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join({"x", "y", "z"}, "-"), "x-y-z");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StrTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.5), "1.5");
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(0.25), "0.25");
}

TEST(StrTest, QuoteString) {
  EXPECT_EQ(QuoteString("abc"), "\"abc\"");
  EXPECT_EQ(QuoteString("a\"b"), "\"a\\\"b\"");
}

TEST(StrTest, IsDigits) {
  EXPECT_TRUE(IsDigits("0123"));
  EXPECT_FALSE(IsDigits(""));
  EXPECT_FALSE(IsDigits("12a"));
  EXPECT_FALSE(IsDigits("-1"));
}

}  // namespace
}  // namespace spindle
