/// \file index_invariants_test.cc
/// \brief Property tests: the relational index views must satisfy the
/// textbook inverted-index invariants for any collection and analyzer.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "ir/indexing.h"
#include "workload/text_gen.h"

namespace spindle {
namespace {

struct Config {
  int64_t num_docs;
  const char* stemmer;
  bool stopwords;
};

class IndexInvariants : public ::testing::TestWithParam<Config> {};

TEST_P(IndexInvariants, AllViewsConsistent) {
  const Config& cfg = GetParam();
  TextCollectionOptions gopts;
  gopts.num_docs = cfg.num_docs;
  gopts.vocab_size = 2000;
  gopts.avg_doc_len = 30;
  RelationPtr docs = GenerateTextCollection(gopts).ValueOrDie();

  AnalyzerOptions aopts;
  aopts.stemmer = cfg.stemmer;
  aopts.remove_stopwords = cfg.stopwords;
  Analyzer analyzer = Analyzer::Make(aopts).ValueOrDie();
  TextIndexPtr idx = TextIndex::Build(docs, analyzer).ValueOrDie();

  // 1. Total postings = term_doc rows = sum of doc lengths.
  int64_t len_sum = 0;
  for (int64_t len : idx->doc_len()->column(1).int64_data()) {
    len_sum += len;
    EXPECT_GE(len, 0);
  }
  EXPECT_EQ(len_sum, idx->stats().total_postings);
  EXPECT_EQ(static_cast<int64_t>(idx->term_doc()->num_rows()),
            idx->stats().total_postings);

  // 2. Every document appears in doc_len exactly once.
  EXPECT_EQ(idx->doc_len()->num_rows(),
            static_cast<size_t>(idx->stats().num_docs));
  std::set<int64_t> seen_docs;
  for (int64_t d : idx->doc_len()->column(0).int64_data()) {
    EXPECT_TRUE(seen_docs.insert(d).second);
  }

  // 3. tf sums back to postings; every tf >= 1.
  int64_t tf_sum = 0;
  for (int64_t tf : idx->tf()->column(2).int64_data()) {
    EXPECT_GE(tf, 1);
    tf_sum += tf;
  }
  EXPECT_EQ(tf_sum, idx->stats().total_postings);

  // 4. termdict is dense 1..T and unique both ways.
  const int64_t T = idx->stats().num_terms;
  std::set<int64_t> ids;
  std::set<std::string> terms;
  for (size_t r = 0; r < idx->termdict()->num_rows(); ++r) {
    int64_t id = idx->termdict()->column(0).Int64At(r);
    EXPECT_GE(id, 1);
    EXPECT_LE(id, T);
    EXPECT_TRUE(ids.insert(id).second);
    EXPECT_TRUE(terms.insert(idx->termdict()->column(1).StringAt(r)).second);
  }

  // 5. df in [1, N]; idf matches the BM25 formula; cf >= df.
  std::map<int64_t, int64_t> df_by_term;
  for (size_t r = 0; r < idx->idf()->num_rows(); ++r) {
    int64_t df = idx->idf()->column(1).Int64At(r);
    EXPECT_GE(df, 1);
    EXPECT_LE(df, idx->stats().num_docs);
    df_by_term[idx->idf()->column(0).Int64At(r)] = df;
    double expect =
        std::log((idx->stats().num_docs - df + 0.5) / (df + 0.5));
    EXPECT_NEAR(idx->idf()->column(2).Float64At(r), expect, 1e-12);
  }
  for (size_t r = 0; r < idx->cf()->num_rows(); ++r) {
    int64_t term = idx->cf()->column(0).Int64At(r);
    EXPECT_GE(idx->cf()->column(1).Int64At(r), df_by_term[term]);
  }
  EXPECT_EQ(idx->idf()->num_rows(), static_cast<size_t>(T));
  EXPECT_EQ(idx->cf()->num_rows(), static_cast<size_t>(T));

  // 6. The term-partitioned access path covers tf exactly.
  size_t covered = 0;
  for (int64_t t = 1; t <= T; ++t) {
    auto [rows, len] = idx->TfRowsForTerm(t);
    for (size_t i = 0; i < len; ++i) {
      EXPECT_EQ(idx->tf()->column(0).Int64At(rows[i]), t);
    }
    covered += len;
  }
  EXPECT_EQ(covered, idx->tf()->num_rows());
  EXPECT_EQ(idx->TfRowsForTerm(0).second, 0u);
  EXPECT_EQ(idx->TfRowsForTerm(T + 1).second, 0u);

  // 7. avg_doc_len consistent.
  if (idx->stats().num_docs > 0) {
    EXPECT_NEAR(idx->stats().avg_doc_len,
                static_cast<double>(len_sum) / idx->stats().num_docs,
                1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, IndexInvariants,
    ::testing::Values(Config{1, "sb-english", false},
                      Config{50, "sb-english", false},
                      Config{500, "sb-english", false},
                      Config{500, "none", false},
                      Config{500, "porter1", false},
                      Config{500, "s-english", false},
                      Config{500, "sb-english", true},
                      Config{500, "sb-german", false},
                      Config{0, "sb-english", false}));

TEST(IndexAnalyzerTest, StrongerStemmingShrinksTermSpace) {
  // On English-like text, sb-english conflates at least as much as the
  // weak s-stemmer, which conflates at least as much as no stemming.
  RelationBuilder b({{"docID", DataType::kInt64},
                     {"data", DataType::kString}});
  const char* texts[] = {
      "connection connections connected connecting connect",
      "retrieval retrieve retrieves retrieved",
      "databases database relational relations",
      "running runs runner ran",
  };
  int64_t id = 1;
  for (const char* t : texts) {
    ASSERT_TRUE(b.AddRow({id++, std::string(t)}).ok());
  }
  RelationPtr docs = b.Build().ValueOrDie();
  auto terms_with = [&](const char* stemmer) {
    AnalyzerOptions opts;
    opts.stemmer = stemmer;
    Analyzer a = Analyzer::Make(opts).ValueOrDie();
    return TextIndex::Build(docs, a).ValueOrDie()->stats().num_terms;
  };
  int64_t none = terms_with("none");
  int64_t weak = terms_with("s-english");
  int64_t full = terms_with("sb-english");
  EXPECT_LE(weak, none);
  EXPECT_LE(full, weak);
  EXPECT_LT(full, none);
}

}  // namespace
}  // namespace spindle
