/// \file parser_robustness_test.cc
/// \brief Robustness sweep: the SpinQL front-end must return ParseError
/// statuses (never crash or accept garbage silently) on mutated input.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "spinql/parser.h"

namespace spindle {
namespace spinql {
namespace {

const char* kSeeds[] = {
    "docs = PROJECT [$1,$6] (JOIN INDEPENDENT [$1=$1] ("
    "SELECT [$2=\"category\" and $3=\"toy\"] (triples),"
    "SELECT [$2=\"description\"] (triples)));",
    "a = RANK BM25 [k1=1.2, b=0.75] (docs, query);",
    "b = UNITE DISJOINT (WEIGHT [0.7] (x), WEIGHT [0.3] (y));",
    "c = TOKENIZE [$2, \"sb-english\"] (docs);",
    "d = BAYES [$1] (TOPK [10] (events));",
};

TEST(ParserRobustnessTest, TruncationsNeverCrash) {
  for (const char* seed : kSeeds) {
    std::string src(seed);
    for (size_t len = 0; len < src.size(); ++len) {
      auto result = Program::Parse(src.substr(0, len));
      // Either a clean parse (possible when a statement boundary is cut)
      // or a Status — never a crash.
      if (!result.ok()) {
        EXPECT_EQ(result.status().code(), StatusCode::kParseError);
      }
    }
  }
}

TEST(ParserRobustnessTest, RandomMutationsNeverCrash) {
  Rng rng(99);
  const char kAlphabet[] = "abS$=()[]{};,\"1.\\ +-*/<>!PROJECT";
  for (const char* seed : kSeeds) {
    for (int trial = 0; trial < 200; ++trial) {
      std::string src(seed);
      int mutations = 1 + static_cast<int>(rng.NextBounded(4));
      for (int m = 0; m < mutations; ++m) {
        size_t pos = rng.NextBounded(src.size());
        src[pos] = kAlphabet[rng.NextBounded(sizeof(kAlphabet) - 1)];
      }
      auto result = Program::Parse(src);
      if (!result.ok()) {
        EXPECT_EQ(result.status().code(), StatusCode::kParseError)
            << src;
      } else {
        // Whatever parsed must re-parse from its canonical printing.
        std::string printed = result.ValueOrDie().ToString();
        auto again = Program::Parse(printed);
        EXPECT_TRUE(again.ok()) << printed;
      }
    }
  }
}

TEST(ParserRobustnessTest, RandomGarbageNeverCrashes) {
  Rng rng(123);
  for (int trial = 0; trial < 500; ++trial) {
    size_t len = rng.NextBounded(64);
    std::string src;
    for (size_t i = 0; i < len; ++i) {
      src.push_back(static_cast<char>(32 + rng.NextBounded(95)));
    }
    auto result = Program::Parse(src);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kParseError);
    }
  }
}

TEST(ParserRobustnessTest, DeepNestingTerminates) {
  // 200 levels of nested COMPLEMENT.
  std::string src = "a = ";
  for (int i = 0; i < 200; ++i) src += "COMPLEMENT (";
  src += "t";
  for (int i = 0; i < 200; ++i) src += ")";
  src += ";";
  auto result = Program::Parse(src);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie().statements().size(), 1u);
}

}  // namespace
}  // namespace spinql
}  // namespace spindle
