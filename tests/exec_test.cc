/// \file exec_test.cc
/// \brief Tests for the morsel-driven parallel execution subsystem:
/// ExecContext resolution, the work-stealing scheduler, parallel operator
/// equivalence against the serial engine, splittable RNG streams, and the
/// concurrency-safety of StringDict and MaterializationCache.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "engine/materialization_cache.h"
#include "engine/ops.h"
#include "exec/scheduler.h"
#include "storage/relation.h"
#include "storage/string_dict.h"
#include "workload/graph_gen.h"
#include "workload/text_gen.h"

namespace spindle {
namespace {

const FunctionRegistry& Reg() { return FunctionRegistry::Default(); }

/// Runs `fn` under an ExecContext with the given thread count.
template <typename Fn>
auto WithThreads(int threads, Fn&& fn) {
  ScopedExecContext scope(ExecContext(threads));
  return fn();
}

// ---------------------------------------------------------------------------
// ExecContext

TEST(ExecContextTest, DefaultThreadsIsPositive) {
  EXPECT_GE(ExecContext::DefaultThreads(), 1);
  EXPECT_GE(ExecContext::Current().threads, 1);
}

TEST(ExecContextTest, ScopedOverrideNestsAndRestores) {
  ExecContext outer(3);
  {
    ScopedExecContext a(outer);
    EXPECT_EQ(ExecContext::Current().threads, 3);
    {
      ScopedExecContext b{ExecContext(7)};
      EXPECT_EQ(ExecContext::Current().threads, 7);
    }
    EXPECT_EQ(ExecContext::Current().threads, 3);
  }
  EXPECT_EQ(ExecContext::Current().threads, ExecContext::DefaultThreads());
}

TEST(ExecContextTest, SetDefaultThreadsOverridesAndRestores) {
  ExecContext::SetDefaultThreads(5);
  EXPECT_EQ(ExecContext::DefaultThreads(), 5);
  EXPECT_EQ(ExecContext::Current().threads, 5);
  ExecContext::SetDefaultThreads(0);  // back to env/hardware default
  EXPECT_GE(ExecContext::DefaultThreads(), 1);
}

TEST(ExecContextTest, ShouldParallelize) {
  ExecContext serial(1);
  EXPECT_FALSE(serial.ShouldParallelize(1u << 20));
  ExecContext par(4);
  EXPECT_FALSE(par.ShouldParallelize(par.morsel_rows));      // single morsel
  EXPECT_TRUE(par.ShouldParallelize(par.morsel_rows + 1));  // two morsels
}

// ---------------------------------------------------------------------------
// Scheduler

TEST(SchedulerTest, ParallelForCoversEveryIndexExactlyOnce) {
  ExecContext ctx(8);
  ctx.morsel_rows = 1000;
  const size_t n = 100123;
  std::vector<char> hits(n, 0);  // morsels are disjoint: no two writers
  std::atomic<size_t> total{0};
  ParallelFor(ctx, n, [&](size_t begin, size_t end, size_t /*morsel*/) {
    for (size_t i = begin; i < end; ++i) hits[i]++;
    total.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), n);
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST(SchedulerTest, ParallelForSerialRunsInAscendingOrder) {
  ExecContext ctx(1);
  ctx.morsel_rows = 64;
  std::vector<size_t> morsels;
  ParallelFor(ctx, 1000, [&](size_t begin, size_t end, size_t morsel) {
    EXPECT_EQ(begin, morsel * ctx.morsel_rows);
    EXPECT_LE(end, 1000u);
    morsels.push_back(morsel);
  });
  ASSERT_EQ(morsels.size(), NumMorsels(ctx, 1000));
  for (size_t m = 0; m < morsels.size(); ++m) EXPECT_EQ(morsels[m], m);
}

TEST(SchedulerTest, ParallelForEmptyRange) {
  int calls = 0;
  ParallelFor(ExecContext(4), 0,
              [&](size_t, size_t, size_t) { calls++; });
  EXPECT_EQ(calls, 0);
}

TEST(SchedulerTest, MorselGridIndependentOfThreadCount) {
  ExecContext two(2), eight(8);
  for (size_t n : {0u, 1u, 8192u, 8193u, 100000u}) {
    EXPECT_EQ(NumMorsels(two, n), NumMorsels(eight, n));
  }
}

TEST(SchedulerTest, TaskGroupRunsEveryTask) {
  Scheduler::Global().EnsureWorkers(3);
  std::atomic<int> count{0};
  TaskGroup group;
  for (int i = 0; i < 200; ++i) {
    group.Spawn([&count] { count.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(count.load(), 200);
}

TEST(SchedulerTest, NestedTaskGroupsDoNotDeadlock) {
  Scheduler::Global().EnsureWorkers(3);
  std::atomic<int> count{0};
  TaskGroup outer;
  for (int i = 0; i < 8; ++i) {
    outer.Spawn([&count] {
      TaskGroup inner;
      for (int j = 0; j < 8; ++j) {
        inner.Spawn([&count] { count.fetch_add(1); });
      }
      inner.Wait();
    });
  }
  outer.Wait();
  EXPECT_EQ(count.load(), 64);
}

TEST(SchedulerTest, SpawnedTasksInheritExecContext) {
  Scheduler::Global().EnsureWorkers(2);
  ExecContext ctx(3);
  ctx.morsel_rows = 777;
  ScopedExecContext scope(ctx);
  std::atomic<int> seen_threads{0};
  std::atomic<size_t> seen_morsel{0};
  TaskGroup group;
  group.Spawn([&] {
    seen_threads = ExecContext::Current().threads;
    seen_morsel = ExecContext::Current().morsel_rows;
  });
  group.Wait();
  EXPECT_EQ(seen_threads.load(), 3);
  EXPECT_EQ(seen_morsel.load(), 777u);
}

// ---------------------------------------------------------------------------
// Splittable RNG

TEST(RngSplitTest, SplitDependsOnlyOnConstructorSeed) {
  Rng a(42);
  for (int i = 0; i < 100; ++i) a.Next();  // advance position
  Rng from_advanced = a.Split(7);
  Rng from_fresh = Rng(42).Split(7);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(from_advanced.Next(), from_fresh.Next());
  }
}

TEST(RngSplitTest, DistinctStreamsDiffer) {
  Rng root(42);
  Rng s0 = root.Split(0), s1 = root.Split(1);
  int equal = 0;
  for (int i = 0; i < 16; ++i) equal += (s0.Next() == s1.Next());
  EXPECT_LT(equal, 4);
}

// ---------------------------------------------------------------------------
// Parallel operators vs the serial engine

/// A 4-column table big enough to span several morsels (40k rows > 4
/// default 8192-row morsels): int64 id, int64 val, float64 f, string cat.
RelationPtr MakeWide(size_t n, uint64_t seed = 7) {
  std::vector<int64_t> id(n), val(n);
  std::vector<double> f(n);
  std::vector<std::string> cat(n);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    id[i] = static_cast<int64_t>(i);
    val[i] = static_cast<int64_t>(rng.NextBounded(1000));
    f[i] = rng.NextDouble();
    cat[i] = "c" + std::to_string(val[i] % 97);
  }
  Schema schema({{"id", DataType::kInt64},
                 {"val", DataType::kInt64},
                 {"f", DataType::kFloat64},
                 {"cat", DataType::kString}});
  std::vector<Column> cols;
  cols.push_back(Column::MakeInt64(std::move(id)));
  cols.push_back(Column::MakeInt64(std::move(val)));
  cols.push_back(Column::MakeFloat64(std::move(f)));
  cols.push_back(Column::MakeString(std::move(cat)));
  return Relation::Make(std::move(schema), std::move(cols)).ValueOrDie();
}

/// Compares two relations cell by cell. When float_exact is false, float64
/// cells are compared with a relative tolerance (parallel aggregation may
/// re-associate sums); everything else must match exactly.
void ExpectSameRelation(const RelationPtr& a, const RelationPtr& b,
                        bool float_exact = true) {
  ASSERT_TRUE(a->schema().Equals(b->schema()))
      << a->schema().ToString() << " vs " << b->schema().ToString();
  ASSERT_EQ(a->num_rows(), b->num_rows());
  for (size_t c = 0; c < a->num_columns(); ++c) {
    for (size_t r = 0; r < a->num_rows(); ++r) {
      switch (a->column(c).type()) {
        case DataType::kInt64:
          ASSERT_EQ(a->column(c).Int64At(r), b->column(c).Int64At(r))
              << "col " << c << " row " << r;
          break;
        case DataType::kFloat64:
          if (float_exact) {
            ASSERT_EQ(a->column(c).Float64At(r), b->column(c).Float64At(r))
                << "col " << c << " row " << r;
          } else {
            double x = a->column(c).Float64At(r);
            double y = b->column(c).Float64At(r);
            ASSERT_NEAR(x, y, 1e-9 * (1.0 + std::fabs(x)))
                << "col " << c << " row " << r;
          }
          break;
        case DataType::kString:
          ASSERT_EQ(a->column(c).StringAt(r), b->column(c).StringAt(r))
              << "col " << c << " row " << r;
          break;
      }
    }
  }
}

constexpr size_t kRows = 40000;

TEST(ParallelOpsTest, FilterMatchesSerial) {
  auto rel = MakeWide(kRows);
  auto pred = Expr::Lt(Expr::ColumnNamed("val"), Expr::LitInt(300));
  auto serial =
      WithThreads(1, [&] { return Filter(rel, pred, Reg()).ValueOrDie(); });
  for (int threads : {2, 8}) {
    auto parallel = WithThreads(
        threads, [&] { return Filter(rel, pred, Reg()).ValueOrDie(); });
    ExpectSameRelation(serial, parallel);
  }
}

TEST(ParallelOpsTest, ProjectExprsMatchesSerial) {
  auto rel = MakeWide(kRows);
  std::vector<ExprPtr> exprs = {
      Expr::ColumnNamed("id"),
      Expr::Mul(Expr::ColumnNamed("val"), Expr::LitInt(3)),
      Expr::Add(Expr::ColumnNamed("f"), Expr::LitFloat(1.0))};
  std::vector<std::string> names = {"id", "val3", "f1"};
  auto serial = WithThreads(
      1, [&] { return ProjectExprs(rel, exprs, names, Reg()).ValueOrDie(); });
  for (int threads : {2, 8}) {
    auto parallel = WithThreads(threads, [&] {
      return ProjectExprs(rel, exprs, names, Reg()).ValueOrDie();
    });
    ExpectSameRelation(serial, parallel);
  }
}

TEST(ParallelOpsTest, HashJoinIntKeysMatchesSerial) {
  auto fact = MakeWide(kRows);
  // Dimension table keyed by val in [0, 1000).
  std::vector<int64_t> key(1000);
  std::vector<std::string> name(1000);
  for (size_t i = 0; i < 1000; ++i) {
    key[i] = static_cast<int64_t>(i);
    name[i] = "dim" + std::to_string(i);
  }
  std::vector<Column> cols;
  cols.push_back(Column::MakeInt64(std::move(key)));
  cols.push_back(Column::MakeString(std::move(name)));
  auto dim = Relation::Make(Schema({{"key", DataType::kInt64},
                                    {"name", DataType::kString}}),
                            std::move(cols))
                 .ValueOrDie();
  auto serial = WithThreads(
      1, [&] { return HashJoin(fact, dim, {{1, 0}}).ValueOrDie(); });
  for (int threads : {2, 8}) {
    auto parallel = WithThreads(
        threads, [&] { return HashJoin(fact, dim, {{1, 0}}).ValueOrDie(); });
    ExpectSameRelation(serial, parallel);
  }
}

TEST(ParallelOpsTest, HashJoinStringKeysAndSemiAntiMatchSerial) {
  auto fact = MakeWide(kRows);
  // String-keyed dimension covering half the categories.
  std::vector<std::string> cats;
  for (int i = 0; i < 97; i += 2) cats.push_back("c" + std::to_string(i));
  std::vector<Column> cols;
  cols.push_back(Column::MakeString(std::move(cats)));
  auto dim =
      Relation::Make(Schema({{"cat", DataType::kString}}), std::move(cols))
          .ValueOrDie();
  for (JoinType type :
       {JoinType::kInner, JoinType::kLeftSemi, JoinType::kLeftAnti}) {
    auto serial = WithThreads(1, [&] {
      return HashJoin(fact, dim, {{3, 0}}, type).ValueOrDie();
    });
    for (int threads : {2, 8}) {
      auto parallel = WithThreads(threads, [&] {
        return HashJoin(fact, dim, {{3, 0}}, type).ValueOrDie();
      });
      ExpectSameRelation(serial, parallel);
    }
  }
}

TEST(ParallelOpsTest, TopKMatchesSerial) {
  auto rel = MakeWide(kRows);
  auto serial = WithThreads(
      1, [&] { return TopK(rel, SortKey{2, true}, 100).ValueOrDie(); });
  for (int threads : {2, 8}) {
    auto parallel = WithThreads(
        threads, [&] { return TopK(rel, SortKey{2, true}, 100).ValueOrDie(); });
    ExpectSameRelation(serial, parallel);
  }
}

TEST(ParallelOpsTest, GroupAggregateMatchesSerial) {
  auto rel = MakeWide(kRows);
  std::vector<AggSpec> aggs = {{AggKind::kCount, 0, "n"},
                               {AggKind::kSum, 1, "sum_val"},
                               {AggKind::kMin, 1, "min_val"},
                               {AggKind::kMax, 1, "max_val"},
                               {AggKind::kSum, 2, "sum_f"},
                               {AggKind::kAvg, 2, "avg_f"}};
  auto serial = WithThreads(
      1, [&] { return GroupAggregate(rel, {3}, aggs).ValueOrDie(); });
  for (int threads : {2, 8}) {
    auto parallel = WithThreads(
        threads, [&] { return GroupAggregate(rel, {3}, aggs).ValueOrDie(); });
    // Group order and integer aggregates are exact; float sums may
    // re-associate across morsels, hence the tolerance.
    ExpectSameRelation(serial, parallel, /*float_exact=*/false);
  }
}

TEST(ParallelOpsTest, ParallelResultsIdenticalAcrossThreadCounts) {
  // The morsel grid depends only on the row count, so any threads >= 2
  // produce bit-identical output — including float sums.
  auto rel = MakeWide(kRows);
  std::vector<AggSpec> aggs = {{AggKind::kSum, 2, "sum_f"},
                               {AggKind::kAvg, 2, "avg_f"}};
  auto two = WithThreads(
      2, [&] { return GroupAggregate(rel, {3}, aggs).ValueOrDie(); });
  auto eight = WithThreads(
      8, [&] { return GroupAggregate(rel, {3}, aggs).ValueOrDie(); });
  ExpectSameRelation(two, eight, /*float_exact=*/true);
}

// ---------------------------------------------------------------------------
// Workload generators: thread-count invariance

TEST(WorkloadParallelTest, TextCollectionIdenticalAtEveryThreadCount) {
  TextCollectionOptions opts;
  opts.num_docs = 9000;  // > one morsel, so the parallel path runs
  opts.vocab_size = 2000;
  opts.avg_doc_len = 8;
  opts.seed = 99;
  auto serial = WithThreads(
      1, [&] { return GenerateTextCollection(opts).ValueOrDie(); });
  for (int threads : {2, 4}) {
    auto parallel = WithThreads(
        threads, [&] { return GenerateTextCollection(opts).ValueOrDie(); });
    ExpectSameRelation(serial, parallel);
  }
}

TEST(WorkloadParallelTest, AuctionGraphDeterministic) {
  AuctionGraphOptions opts;
  opts.num_lots = 200;
  opts.num_auctions = 10;
  auto a = GenerateAuctionGraph(opts).ValueOrDie();
  auto b = GenerateAuctionGraph(opts).ValueOrDie();
  EXPECT_EQ(a.size(), b.size());
}

// ---------------------------------------------------------------------------
// StringDict concurrency

TEST(StringDictConcurrencyTest, ConcurrentInternAndLookup) {
  StringDict dict;
  constexpr int kThreads = 4;
  constexpr int kUnique = 500;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < 4000; ++i) {
        std::string s =
            "key" + std::to_string(rng.NextBounded(kUnique));
        int64_t id = dict.Intern(s);
        int64_t looked = dict.Lookup(s);
        if (looked != id) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(dict.size(), kUnique);
  // Every id round-trips: StringFor(Intern(s)) == s.
  for (int i = 0; i < kUnique; ++i) {
    std::string s = "key" + std::to_string(i);
    int64_t id = dict.Lookup(s);
    ASSERT_GE(id, dict.first_id());
    EXPECT_EQ(dict.StringFor(id), s);
  }
}

// ---------------------------------------------------------------------------
// MaterializationCache concurrency + pinning

TEST(CacheConcurrencyTest, PinnedEntrySurvivesEvictionPressure) {
  MaterializationCache cache(1 << 18);  // 256 KiB
  RelationPtr held = MakeWide(2048, /*seed=*/1);
  cache.Put("held", held);  // `held` keeps a reference: pinned
  for (int i = 0; i < 32; ++i) {
    cache.Put("filler" + std::to_string(i),
              MakeWide(2048, static_cast<uint64_t>(i + 2)));
  }
  auto got = cache.Get("held");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->get(), held.get());
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(CacheConcurrencyTest, ConcurrentGetPutStress) {
  MaterializationCache cache(1 << 18);
  constexpr int kThreads = 4;
  constexpr int kIters = 300;
  constexpr int kKeys = 20;
  // Prebuild the relations so the loop hammers the cache, not the builder.
  std::vector<RelationPtr> rels;
  for (int k = 0; k < kKeys; ++k) {
    rels.push_back(MakeWide(1024, static_cast<uint64_t>(k)));
  }
  std::vector<std::thread> threads;
  std::atomic<uint64_t> gets{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 77);
      for (int i = 0; i < kIters; ++i) {
        int k = static_cast<int>(rng.NextBounded(kKeys));
        std::string key = "k" + std::to_string(k);
        auto hit = cache.Get(key);
        gets.fetch_add(1);
        if (!hit.has_value()) {
          cache.Put(key, rels[static_cast<size_t>(k)]);
        } else {
          // A hit must return the exact relation put under that key.
          EXPECT_EQ(hit->get(), rels[static_cast<size_t>(k)].get());
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, gets.load());
  EXPECT_LE(stats.entries, static_cast<size_t>(kKeys));
}

}  // namespace
}  // namespace spindle
