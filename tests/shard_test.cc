/// \file shard_test.cc
/// \brief Tests for the sharded-serving subsystem (src/shard/): the
/// partitioner, full-collection statistics (merge == full-compute,
/// byte-stable encodings), the scatter-gather coordinator — including the
/// randomized bit-identity property: for N in {1,2,3,8} shards, every
/// model and k in {1,10,100}, the coordinator's merged top-k equals
/// single-node ranking bit for bit — plus fault injection (failed shard,
/// slow shard vs deadline, hedged replicas) and the remote wire path
/// (SEARCHG / GSTATS end-to-end over real sockets).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "ir/indexing.h"
#include "ir/searcher.h"
#include "obs/metrics_registry.h"
#include "obs/span_wire.h"
#include "server/client.h"
#include "server/line_server.h"
#include "server/query_service.h"
#include "shard/coordinator.h"
#include "shard/global_stats.h"
#include "shard/partitioner.h"
#include "shard/wire.h"
#include "storage/catalog.h"
#include "text/analyzer.h"
#include "workload/text_gen.h"

namespace spindle {
namespace shard {
namespace {

using server::LineClient;
using server::LineClientOptions;
using server::LineServer;
using server::LineServerOptions;
using server::QueryService;
using server::QueryServiceOptions;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TextCollectionOptions TestGen() {
  TextCollectionOptions gen;
  gen.num_docs = 2000;
  gen.vocab_size = 3000;
  gen.avg_doc_len = 40;
  return gen;
}

RelationPtr TestDocs() {
  static RelationPtr docs =
      GenerateTextCollection(TestGen()).MoveValueOrDie();
  return docs;
}

GlobalStatsPtr TestStats() {
  static GlobalStatsPtr stats =
      GlobalStats::Compute(TestDocs(), AnalyzerOptions()).MoveValueOrDie();
  return stats;
}

/// Asserts two (docID, score) relations are bit-identical: same row
/// count, same docIDs, exactly equal score doubles, same order.
void ExpectBitIdentical(const RelationPtr& got, const RelationPtr& want,
                        const std::string& context) {
  ASSERT_EQ(got->num_rows(), want->num_rows()) << context;
  for (size_t r = 0; r < want->num_rows(); ++r) {
    EXPECT_EQ(got->column(0).Int64At(r), want->column(0).Int64At(r))
        << context << " row " << r;
    // Exact double equality on purpose: distributed ranking must
    // reproduce single-node score bits, not approximate them.
    EXPECT_EQ(got->column(1).Float64At(r), want->column(1).Float64At(r))
        << context << " row " << r;
  }
}

/// An N-shard in-process fleet: one QueryService per partition, each with
/// the full-collection statistics installed, fronted by LocalShardBackends.
struct LocalFleet {
  std::vector<std::unique_ptr<QueryService>> services;
  std::unique_ptr<ShardCoordinator> coordinator;

  explicit LocalFleet(uint32_t num_shards,
                      CoordinatorOptions coord_opts = {}) {
    coordinator = std::make_unique<ShardCoordinator>(coord_opts);
    for (uint32_t i = 0; i < num_shards; ++i) {
      auto service = std::make_unique<QueryService>(QueryServiceOptions{});
      service->RegisterCollection(
          "docs",
          PartitionCollection(TestDocs(), i, num_shards).MoveValueOrDie());
      EXPECT_TRUE(service->SetGlobalStats("docs", TestStats()).ok());
      coordinator->AddShard(std::make_shared<LocalShardBackend>(
          "shard" + std::to_string(i), service.get()));
      services.push_back(std::move(service));
    }
    EXPECT_TRUE(coordinator->SetGlobalStats("docs", TestStats()).ok());
  }
};

/// Builds a service's on-demand index ahead of a timing-sensitive query
/// (cold index builds under sanitizers can outlast test deadlines).
void WarmService(QueryService* service, const std::string& query) {
  server::SearchRequest req;
  req.collection = "docs";
  req.query = query;
  req.options.top_k = 1;
  req.request.deadline_ms = -1;
  ASSERT_TRUE(service->Search(req).ok());
}

// ---------------------------------------------------------------------------
// Partitioner
// ---------------------------------------------------------------------------

TEST(PartitionerTest, AssignIsStableAndInRange) {
  for (int64_t doc = -5; doc < 100; ++doc) {
    uint32_t first = Partitioner::Assign(doc, 8);
    EXPECT_LT(first, 8u);
    EXPECT_EQ(first, Partitioner::Assign(doc, 8));  // stable
  }
  EXPECT_EQ(Partitioner::Assign(7, 1), 0u);
  EXPECT_EQ(Partitioner::Assign(7, 0), 0u);  // 0 treated as 1
}

TEST(PartitionerTest, PartitionsAreDisjointAndCover) {
  const RelationPtr docs = TestDocs();
  const uint32_t n = 3;
  std::set<int64_t> seen;
  size_t total = 0;
  for (uint32_t shard = 0; shard < n; ++shard) {
    RelationPtr part =
        PartitionCollection(docs, shard, n).MoveValueOrDie();
    total += part->num_rows();
    for (size_t r = 0; r < part->num_rows(); ++r) {
      const int64_t doc = part->column(0).Int64At(r);
      EXPECT_EQ(Partitioner::Assign(doc, n), shard);
      EXPECT_TRUE(seen.insert(doc).second)
          << "doc " << doc << " in two partitions";
    }
  }
  EXPECT_EQ(total, docs->num_rows());
}

TEST(PartitionerTest, RejectsBadShardArguments) {
  EXPECT_FALSE(PartitionCollection(TestDocs(), 3, 3).ok());
  EXPECT_FALSE(PartitionCollection(TestDocs(), 0, 0).ok());
}

// ---------------------------------------------------------------------------
// GlobalStats
// ---------------------------------------------------------------------------

TEST(GlobalStatsTest, MergerOfPartitionsEqualsFullCompute) {
  const RelationPtr docs = TestDocs();
  Analyzer analyzer = Analyzer::Make(AnalyzerOptions()).MoveValueOrDie();
  GlobalStats::Merger merger;
  for (uint32_t shard = 0; shard < 3; ++shard) {
    RelationPtr part = PartitionCollection(docs, shard, 3).MoveValueOrDie();
    TextIndexPtr index = TextIndex::Build(part, analyzer).MoveValueOrDie();
    ASSERT_TRUE(merger.Add(*index).ok());
  }
  GlobalStatsPtr merged = merger.Finish().MoveValueOrDie();
  // Disjoint partitions sum to the full collection exactly — including
  // the serialized bytes (canonical term order).
  EXPECT_EQ(merged->Serialize(), TestStats()->Serialize());
  EXPECT_EQ(merged->num_docs(), TestStats()->num_docs());
  EXPECT_EQ(merged->avg_doc_len(), TestStats()->avg_doc_len());
}

TEST(GlobalStatsTest, SerializeRoundTripsByteEqual) {
  const std::string bytes = TestStats()->Serialize();
  GlobalStatsPtr restored = GlobalStats::Deserialize(bytes).MoveValueOrDie();
  EXPECT_EQ(restored->Serialize(), bytes);
  EXPECT_EQ(restored->num_docs(), TestStats()->num_docs());
  EXPECT_EQ(restored->total_postings(), TestStats()->total_postings());
  EXPECT_EQ(restored->avg_doc_len(), TestStats()->avg_doc_len());
  EXPECT_EQ(restored->analyzer_signature(),
            TestStats()->analyzer_signature());
}

TEST(GlobalStatsTest, WireRowsRoundTripByteEqual) {
  std::vector<std::string> rows = TestStats()->ToWireRows();
  GlobalStatsPtr restored = GlobalStats::FromWireRows(rows).MoveValueOrDie();
  EXPECT_EQ(restored->Serialize(), TestStats()->Serialize());
}

TEST(GlobalStatsTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(GlobalStats::Deserialize("not a stats blob").ok());
  EXPECT_FALSE(GlobalStats::FromWireRows({"bogus header"}).ok());
  EXPECT_FALSE(GlobalStats::FromWireRows({}).ok());
}

TEST(GlobalStatsTest, ResolveQueryKeepsOrderAndDuplicates) {
  Analyzer analyzer = Analyzer::Make(AnalyzerOptions()).MoveValueOrDie();
  // Build a tiny collection with a known vocabulary.
  std::vector<Column> cols;
  cols.push_back(Column::MakeInt64({1, 2}));
  cols.push_back(
      Column::MakeString({"apple banana apple", "cherry banana"}));
  RelationPtr docs =
      Relation::Make(Schema({{"docID", DataType::kInt64},
                             {"data", DataType::kString}}),
                     std::move(cols))
          .MoveValueOrDie();
  GlobalStatsPtr stats =
      GlobalStats::Compute(docs, AnalyzerOptions()).MoveValueOrDie();

  QueryGlobalStats q =
      stats->ResolveQuery("banana apple banana zzz", analyzer)
          .MoveValueOrDie();
  // "zzz" occurs nowhere — dropped; duplicates and order preserved.
  // Terms are analyzer output, i.e. stemmed ("apple" → "appl").
  ASSERT_EQ(q.terms.size(), 3u);
  EXPECT_EQ(q.terms[0].term, "banana");
  EXPECT_EQ(q.terms[1].term, "appl");
  EXPECT_EQ(q.terms[2].term, "banana");
  EXPECT_EQ(q.terms[0].df, 2);
  EXPECT_EQ(q.terms[1].df, 1);
  EXPECT_EQ(q.terms[1].cf, 2);
  EXPECT_EQ(q.num_docs, 2);
}

// ---------------------------------------------------------------------------
// Sharded search on a single service
// ---------------------------------------------------------------------------

TEST(ShardedSearchTest, OneShardWithOwnStatsEqualsSearch) {
  QueryService service{QueryServiceOptions{}};
  service.RegisterCollection("docs", TestDocs());
  ASSERT_TRUE(service.SetGlobalStats("docs", TestStats()).ok());
  Analyzer analyzer = Analyzer::Make(AnalyzerOptions()).MoveValueOrDie();

  for (const std::string& query : GenerateQueries(TestGen(), 4, 2)) {
    server::SearchRequest plain;
    plain.collection = "docs";
    plain.query = query;
    plain.options.top_k = 10;
    auto want = service.Search(plain);
    ASSERT_TRUE(want.ok()) << want.status().ToString();

    server::ShardSearchRequest sharded;
    sharded.collection = "docs";
    sharded.options.top_k = 10;
    sharded.global =
        TestStats()->ResolveQuery(query, analyzer).MoveValueOrDie();
    auto got = service.SearchSharded(sharded);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectBitIdentical(got.ValueOrDie().rows, want.ValueOrDie().rows,
                       "query: " + query);
  }
}

// ---------------------------------------------------------------------------
// The bit-identity property
// ---------------------------------------------------------------------------

TEST(CoordinatorPropertyTest, BitIdenticalToSingleNodeAcrossShardCounts) {
  QueryService single{QueryServiceOptions{}};
  single.RegisterCollection("docs", TestDocs());
  const std::vector<std::string> queries = GenerateQueries(TestGen(), 8, 2);
  const RankModel models[] = {RankModel::kBm25, RankModel::kTfIdf,
                              RankModel::kLmDirichlet,
                              RankModel::kLmJelinekMercer};
  const size_t ks[] = {1, 10, 100};

  for (uint32_t n : {1u, 2u, 3u, 8u}) {
    LocalFleet fleet(n);
    for (RankModel model : models) {
      for (size_t k : ks) {
        for (const std::string& query : queries) {
          SearchOptions options;
          options.model = model;
          options.top_k = k;

          server::SearchRequest sreq;
          sreq.collection = "docs";
          sreq.query = query;
          sreq.options = options;
          auto want = single.Search(sreq);
          ASSERT_TRUE(want.ok()) << want.status().ToString();

          CoordSearchRequest creq;
          creq.collection = "docs";
          creq.query = query;
          creq.options = options;
          auto got = fleet.coordinator->Search(creq);
          ASSERT_TRUE(got.ok()) << got.status().ToString();
          EXPECT_FALSE(got.ValueOrDie().partial);
          ExpectBitIdentical(
              got.ValueOrDie().rows, want.ValueOrDie().rows,
              "n=" + std::to_string(n) + " model=" +
                  RankModelName(model) + " k=" + std::to_string(k) +
                  " query: " + query);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// A backend that always fails fast.
class FailingBackend : public ShardBackend {
 public:
  explicit FailingBackend(std::string name) : name_(std::move(name)) {}
  const std::string& name() const override { return name_; }
  Result<RelationPtr> SearchSharded(const std::string&,
                                    const QueryGlobalStats&,
                                    const SearchOptions&, int64_t,
                                    CancelTokenPtr) override {
    return Status::Internal("injected shard failure");
  }
  Status Ping() override { return Status::Internal("down"); }
  Result<GlobalStatsPtr> FetchGlobalStats(const std::string&) override {
    return Status::Internal("down");
  }

 private:
  std::string name_;
};

/// A backend that blocks until its cancel token trips (or a 2 s cap),
/// then reports how it was released.
class SlowBackend : public ShardBackend {
 public:
  explicit SlowBackend(std::string name) : name_(std::move(name)) {}
  const std::string& name() const override { return name_; }
  Result<RelationPtr> SearchSharded(const std::string&,
                                    const QueryGlobalStats&,
                                    const SearchOptions&, int64_t,
                                    CancelTokenPtr token) override {
    const auto cap = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(2000);
    while (std::chrono::steady_clock::now() < cap) {
      if (token != nullptr && token->cancelled()) {
        observed_cancel_.store(true, std::memory_order_release);
        return token->ToStatus();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    timed_out_.store(true, std::memory_order_release);
    return Status::Internal("slow backend hit its cap uncancelled");
  }
  Status Ping() override { return Status::OK(); }
  Result<GlobalStatsPtr> FetchGlobalStats(const std::string&) override {
    return Status::Internal("slow");
  }
  bool observed_cancel() const {
    return observed_cancel_.load(std::memory_order_acquire);
  }

 private:
  std::string name_;
  std::atomic<bool> observed_cancel_{false};
  std::atomic<bool> timed_out_{false};
};

TEST(CoordinatorFaultTest, FailedShardFailsQueryUnderFailPolicy) {
  CoordinatorOptions opts;
  opts.partial = PartialPolicy::kFail;
  LocalFleet fleet(2, opts);
  fleet.coordinator->AddShard(std::make_shared<FailingBackend>("bad"));

  CoordSearchRequest req;
  req.collection = "docs";
  req.query = GenerateQueries(TestGen(), 1, 2)[0];
  req.options.top_k = 10;
  auto got = fleet.coordinator->Search(req);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(fleet.coordinator->metrics().requests_failed.load(), 1u);
}

TEST(CoordinatorFaultTest, FailedShardDegradesUnderDegradePolicy) {
  CoordinatorOptions opts;
  opts.partial = PartialPolicy::kDegrade;
  LocalFleet fleet(2, opts);
  fleet.coordinator->AddShard(std::make_shared<FailingBackend>("bad"));

  CoordSearchRequest req;
  req.collection = "docs";
  req.query = GenerateQueries(TestGen(), 1, 2)[0];
  req.options.top_k = 10;
  auto got = fleet.coordinator->Search(req);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  const CoordSearchResponse& resp = got.ValueOrDie();
  EXPECT_TRUE(resp.partial);
  ASSERT_EQ(resp.failed_shards.size(), 1u);
  EXPECT_EQ(resp.failed_shards[0], "bad");
  EXPECT_GT(resp.rows->num_rows(), 0u);
  EXPECT_EQ(fleet.coordinator->metrics().requests_partial.load(), 1u);
}

TEST(CoordinatorFaultTest, AllShardsFailedIsUnavailableEvenDegraded) {
  CoordinatorOptions opts;
  opts.partial = PartialPolicy::kDegrade;
  ShardCoordinator coordinator(opts);
  coordinator.AddShard(std::make_shared<FailingBackend>("bad0"));
  coordinator.AddShard(std::make_shared<FailingBackend>("bad1"));
  ASSERT_TRUE(coordinator.SetGlobalStats("docs", TestStats()).ok());

  CoordSearchRequest req;
  req.collection = "docs";
  req.query = GenerateQueries(TestGen(), 1, 2)[0];
  req.options.top_k = 10;
  auto got = coordinator.Search(req);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
}

TEST(CoordinatorFaultTest, SlowShardIsCancelledAtDeadline) {
  CoordinatorOptions opts;
  opts.partial = PartialPolicy::kDegrade;
  LocalFleet fleet(2, opts);
  auto slow = std::make_shared<SlowBackend>("slow");
  fleet.coordinator->AddShard(slow);

  const std::string query = GenerateQueries(TestGen(), 1, 2)[0];
  // Warm the healthy shards' indexes so only the straggler is slow —
  // cold builds under sanitizers could miss the deadline themselves.
  for (auto& service : fleet.services) WarmService(service.get(), query);

  CoordSearchRequest req;
  req.collection = "docs";
  req.query = query;
  req.options.top_k = 10;
  req.deadline_ms = 200;
  const auto t0 = std::chrono::steady_clock::now();
  auto got = fleet.coordinator->Search(req);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(got.ValueOrDie().partial);
  // The deadline bounds the answer; the 2 s straggler must not.
  EXPECT_LT(elapsed.count(), 1500);
  // The straggler observes cooperative cancellation (poll briefly: its
  // dispatch thread may still be between the trip and the check).
  for (int i = 0; i < 200 && !slow->observed_cancel(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(slow->observed_cancel());
}

TEST(CoordinatorFaultTest, FailedPrimaryFailsOverToReplica) {
  CoordinatorOptions opts;
  opts.partial = PartialPolicy::kFail;
  LocalFleet fleet(2, opts);
  // Third shard: dead primary, healthy replica over partition 2 of 3 —
  // rebuild the fleet by hand for the mixed topology.
  ShardCoordinator coordinator(opts);
  std::vector<std::unique_ptr<QueryService>> services;
  for (uint32_t i = 0; i < 3; ++i) {
    auto service = std::make_unique<QueryService>(QueryServiceOptions{});
    service->RegisterCollection(
        "docs", PartitionCollection(TestDocs(), i, 3).MoveValueOrDie());
    ASSERT_TRUE(service->SetGlobalStats("docs", TestStats()).ok());
    auto healthy = std::make_shared<LocalShardBackend>(
        "shard" + std::to_string(i), service.get());
    if (i == 2) {
      coordinator.AddShard(std::make_shared<FailingBackend>("bad2"),
                           healthy);
    } else {
      coordinator.AddShard(healthy);
    }
    services.push_back(std::move(service));
  }
  ASSERT_TRUE(coordinator.SetGlobalStats("docs", TestStats()).ok());

  QueryService single{QueryServiceOptions{}};
  single.RegisterCollection("docs", TestDocs());
  const std::string query = GenerateQueries(TestGen(), 1, 2)[0];

  server::SearchRequest sreq;
  sreq.collection = "docs";
  sreq.query = query;
  sreq.options.top_k = 10;
  auto want = single.Search(sreq);
  ASSERT_TRUE(want.ok());

  CoordSearchRequest req;
  req.collection = "docs";
  req.query = query;
  req.options.top_k = 10;
  auto got = coordinator.Search(req);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  // Failover kept the answer complete and exact.
  EXPECT_FALSE(got.ValueOrDie().partial);
  ExpectBitIdentical(got.ValueOrDie().rows, want.ValueOrDie().rows,
                     "failover");
  EXPECT_GE(coordinator.metrics().hedges_issued.load(), 1u);
}

TEST(CoordinatorFaultTest, SlowPrimaryIsHedgedToReplica) {
  CoordinatorOptions opts;
  opts.hedge_after_ms = 50;
  ShardCoordinator coordinator(opts);
  auto service = std::make_unique<QueryService>(QueryServiceOptions{});
  service->RegisterCollection("docs", TestDocs());
  ASSERT_TRUE(service->SetGlobalStats("docs", TestStats()).ok());
  auto slow = std::make_shared<SlowBackend>("slow-primary");
  coordinator.AddShard(
      slow, std::make_shared<LocalShardBackend>("replica", service.get()));
  ASSERT_TRUE(coordinator.SetGlobalStats("docs", TestStats()).ok());

  const std::string query = GenerateQueries(TestGen(), 1, 2)[0];
  // Warm the replica's index: the hedge must answer well before the
  // straggler's 2 s cap even under sanitizer slowdown.
  WarmService(service.get(), query);

  CoordSearchRequest req;
  req.collection = "docs";
  req.query = query;
  req.options.top_k = 10;
  const auto t0 = std::chrono::steady_clock::now();
  auto got = coordinator.Search(req);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_FALSE(got.ValueOrDie().partial);
  EXPECT_GT(got.ValueOrDie().rows->num_rows(), 0u);
  EXPECT_GE(got.ValueOrDie().hedges, 1u);
  EXPECT_LT(elapsed.count(), 1500);  // hedge, not the 2 s straggler
  EXPECT_GE(coordinator.metrics().hedges_issued.load(), 1u);
  EXPECT_GE(coordinator.metrics().hedge_wins.load(), 1u);
  // The losing primary gets cancelled once the hedge answers.
  for (int i = 0; i < 200 && !slow->observed_cancel(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(slow->observed_cancel());
}

TEST(CoordinatorTest, RejectsUnknownCollectionAndBadOptions) {
  LocalFleet fleet(2);
  CoordSearchRequest req;
  req.collection = "nope";
  req.query = "anything";
  req.options.top_k = 10;
  EXPECT_EQ(fleet.coordinator->Search(req).status().code(),
            StatusCode::kNotFound);

  req.collection = "docs";
  req.options.top_k = 0;
  EXPECT_EQ(fleet.coordinator->Search(req).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Remote path: SEARCHG / GSTATS over real sockets
// ---------------------------------------------------------------------------

TEST(RemoteShardTest, EndToEndOverSockets) {
  // Three shard servers...
  std::vector<std::unique_ptr<QueryService>> services;
  std::vector<std::unique_ptr<LineServer>> servers;
  ShardCoordinator coordinator;
  for (uint32_t i = 0; i < 3; ++i) {
    auto service = std::make_unique<QueryService>(QueryServiceOptions{});
    service->RegisterCollection(
        "docs", PartitionCollection(TestDocs(), i, 3).MoveValueOrDie());
    ASSERT_TRUE(service->SetGlobalStats("docs", TestStats()).ok());
    auto server = std::make_unique<LineServer>(service.get());
    ASSERT_TRUE(server->Start().ok());
    RemoteShardBackend::Options bopts;
    bopts.connect_timeout_ms = 2000;
    coordinator.AddShard(std::make_shared<RemoteShardBackend>(
        "shard" + std::to_string(i), "127.0.0.1", server->port(), bopts));
    services.push_back(std::move(service));
    servers.push_back(std::move(server));
  }
  // ...statistics bootstrapped over the wire (GSTATS), cross-checked.
  ASSERT_TRUE(coordinator.BootstrapGlobalStats("docs").ok());
  ASSERT_NE(coordinator.GetGlobalStats("docs"), nullptr);
  EXPECT_EQ(coordinator.GetGlobalStats("docs")->Serialize(),
            TestStats()->Serialize());

  QueryService single{QueryServiceOptions{}};
  single.RegisterCollection("docs", TestDocs());

  // The coordinator itself behind a LineServer, driven by a LineClient —
  // the full spindle_client-compatible stack.
  CoordinatorHandler handler(&coordinator);
  LineServer coord_server(&handler);
  ASSERT_TRUE(coord_server.Start().ok());
  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", coord_server.port()).ok());

  for (const std::string& query : GenerateQueries(TestGen(), 4, 2)) {
    server::SearchRequest sreq;
    sreq.collection = "docs";
    sreq.query = query;
    sreq.options.top_k = 10;
    auto want = single.Search(sreq);
    ASSERT_TRUE(want.ok());
    const std::vector<std::string> want_rows =
        server::SerializeRows(*want.ValueOrDie().rows);

    auto resp = client.Search("docs", 10, 0, query);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_FALSE(resp.ValueOrDie().partial);
    // Byte-identical wire rows: the %.17g doubles survived the shard →
    // coordinator → client round trip exactly.
    EXPECT_EQ(resp.ValueOrDie().rows, want_rows) << "query: " << query;
  }

  for (auto& server : servers) server->Stop();
  coord_server.Stop();
}

TEST(RemoteShardTest, SearchGRejectsMalformedLines) {
  QueryService service{QueryServiceOptions{}};
  service.RegisterCollection("docs", TestDocs());
  ASSERT_TRUE(service.SetGlobalStats("docs", TestStats()).ok());
  LineServer server(&service);
  ASSERT_TRUE(server.Start().ok());
  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  EXPECT_EQ(client.Call("SEARCHG").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(client.Call("SEARCHG docs").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      client.Call("SEARCHG docs 10 0 bm25 1.2 0.75 2000 0.1 not numbers")
          .status()
          .code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(client.Call("GSTATS nope").status().code(),
            StatusCode::kNotFound);
  server.Stop();
}

// ---------------------------------------------------------------------------
// LineClient timeouts (satellite a)
// ---------------------------------------------------------------------------

TEST(LineClientTimeoutTest, ConnectToDeadPortIsUnavailable) {
  // Find a port that nothing listens on by binding and closing it.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const int dead_port = ntohs(addr.sin_port);
  ::close(fd);

  LineClientOptions opts;
  opts.connect_timeout_ms = 200;
  opts.connect_retries = 2;
  opts.backoff_ms = 10;
  LineClient client(opts);
  const auto t0 = std::chrono::steady_clock::now();
  Status st = client.Connect("127.0.0.1", dead_port);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  // 3 attempts with 10+20ms backoff, each connect refused instantly on
  // loopback — well under a second.
  EXPECT_LT(elapsed.count(), 2000);
}

TEST(LineClientTimeoutTest, ReadTimeoutIsUnavailable) {
  // A listener that accepts the TCP handshake but never answers.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_EQ(::listen(fd, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);

  LineClientOptions opts;
  opts.read_timeout_ms = 100;
  LineClient client(opts);
  ASSERT_TRUE(client.Connect("127.0.0.1", ntohs(addr.sin_port)).ok());
  Status st = client.Call("PING").status();
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(client.connected());  // a timed-out connection is dropped
  ::close(fd);
}

// ---------------------------------------------------------------------------
// Shard snapshots
// ---------------------------------------------------------------------------

TEST(ShardSnapshotTest, GlobalStatsSurviveServiceSnapshot) {
  const std::string path = TempPath("shard_gstats.snap");
  {
    QueryService service{QueryServiceOptions{}};
    service.RegisterCollection(
        "docs", PartitionCollection(TestDocs(), 0, 2).MoveValueOrDie());
    ASSERT_TRUE(service.SetGlobalStats("docs", TestStats()).ok());
    ASSERT_TRUE(service.SaveSnapshot(path).ok());
  }
  QueryService restored{QueryServiceOptions{}};
  ASSERT_TRUE(restored.LoadSnapshot(path).ok());
  GlobalStatsPtr stats = restored.GetGlobalStats("docs");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->Serialize(), TestStats()->Serialize());
}

TEST(ShardSnapshotTest, WriteShardSnapshotsServeBitIdentical) {
  Catalog full;
  full.Register("docs", TestDocs());
  const std::string prefix = TempPath("fleet");
  auto infos =
      WriteShardSnapshots(full, AnalyzerOptions(), 3, prefix);
  ASSERT_TRUE(infos.ok()) << infos.status().ToString();
  ASSERT_EQ(infos.ValueOrDie().size(), 3u);

  // A fleet restored purely from the snapshot files...
  ShardCoordinator coordinator;
  std::vector<std::unique_ptr<QueryService>> services;
  int64_t total_docs = 0;
  for (const ShardSnapshotInfo& info : infos.ValueOrDie()) {
    total_docs += info.num_docs;
    auto service = std::make_unique<QueryService>(QueryServiceOptions{});
    ASSERT_TRUE(service->LoadSnapshot(info.path).ok());
    ASSERT_NE(service->GetGlobalStats("docs"), nullptr);
    coordinator.AddShard(
        std::make_shared<LocalShardBackend>(info.path, service.get()));
    services.push_back(std::move(service));
  }
  EXPECT_EQ(total_docs, static_cast<int64_t>(TestDocs()->num_rows()));
  ASSERT_TRUE(coordinator.BootstrapGlobalStats("docs").ok());

  // ...serves bit-identically to single-node over the full collection.
  QueryService single{QueryServiceOptions{}};
  single.RegisterCollection("docs", TestDocs());
  for (const std::string& query : GenerateQueries(TestGen(), 4, 2)) {
    server::SearchRequest sreq;
    sreq.collection = "docs";
    sreq.query = query;
    sreq.options.top_k = 10;
    auto want = single.Search(sreq);
    ASSERT_TRUE(want.ok());

    CoordSearchRequest creq;
    creq.collection = "docs";
    creq.query = query;
    creq.options.top_k = 10;
    auto got = coordinator.Search(creq);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectBitIdentical(got.ValueOrDie().rows, want.ValueOrDie().rows,
                       "snapshot fleet, query: " + query);
  }
}

// ---------------------------------------------------------------------------
// Wire encoding
// ---------------------------------------------------------------------------

TEST(WireTest, SearchGRoundTripsExactly) {
  Analyzer analyzer = Analyzer::Make(AnalyzerOptions()).MoveValueOrDie();
  QueryGlobalStats global =
      TestStats()
          ->ResolveQuery(GenerateQueries(TestGen(), 1, 3)[0], analyzer)
          .MoveValueOrDie();
  SearchOptions options;
  options.model = RankModel::kLmDirichlet;
  options.dirichlet.mu = 1234.5;
  options.top_k = 17;

  const std::string line = EncodeSearchG("docs", 250, options, global);
  ASSERT_EQ(line.rfind("SEARCHG ", 0), 0u);

  std::string collection;
  int64_t deadline_ms = 0;
  SearchOptions parsed_options;
  QueryGlobalStats parsed;
  std::string rest = line.substr(8);
  ASSERT_TRUE(ParseSearchG(rest, &collection, &deadline_ms,
                           &parsed_options, &parsed)
                  .ok());
  EXPECT_EQ(collection, "docs");
  EXPECT_EQ(deadline_ms, 250);
  EXPECT_EQ(parsed_options.model, RankModel::kLmDirichlet);
  EXPECT_EQ(parsed_options.dirichlet.mu, options.dirichlet.mu);
  EXPECT_EQ(parsed_options.top_k, options.top_k);
  EXPECT_EQ(parsed.num_docs, global.num_docs);
  EXPECT_EQ(parsed.total_postings, global.total_postings);
  EXPECT_EQ(parsed.avg_doc_len, global.avg_doc_len);  // bit-exact
  ASSERT_EQ(parsed.terms.size(), global.terms.size());
  for (size_t i = 0; i < global.terms.size(); ++i) {
    EXPECT_EQ(parsed.terms[i].term, global.terms[i].term);
    EXPECT_EQ(parsed.terms[i].df, global.terms[i].df);
    EXPECT_EQ(parsed.terms[i].cf, global.terms[i].cf);
  }
}

TEST(WireTest, TraceTokenRoundTripsAndRejectsGarbage) {
  EXPECT_EQ(FormatTraceToken(0xdeadbeef, 42), "tid=deadbeef:42");
  uint64_t trace = 0, span = 0;
  ASSERT_TRUE(ParseTraceToken("tid=deadbeef:42", &trace, &span));
  EXPECT_EQ(trace, 0xdeadbeefull);
  EXPECT_EQ(span, 42u);
  ASSERT_TRUE(ParseTraceToken(FormatTraceToken(~uint64_t{0}, 0), &trace,
                              &span));
  EXPECT_EQ(trace, ~uint64_t{0});
  EXPECT_EQ(span, 0u);
  for (const char* bad :
       {"tid=", "tid=zz:1", "tid=1f", "tid=1f:", "tid=1f:x", "tid=0:5",
        "tid=1f:2x", "xid=1f:2", "tid=1f:2:3"}) {
    EXPECT_FALSE(ParseTraceToken(bad, &trace, &span)) << bad;
  }
}

// ---------------------------------------------------------------------------
// Distributed tracing, fleet metrics, coordinator slow log
// ---------------------------------------------------------------------------

/// A 2-shard remote fleet (real sockets) fronted by a traced coordinator.
struct RemoteTracedFleet {
  std::vector<std::unique_ptr<QueryService>> services;
  std::vector<std::unique_ptr<LineServer>> servers;
  std::unique_ptr<ShardCoordinator> coordinator;

  explicit RemoteTracedFleet(CoordinatorOptions coord_opts) {
    coordinator = std::make_unique<ShardCoordinator>(coord_opts);
    for (uint32_t i = 0; i < 2; ++i) {
      auto service = std::make_unique<QueryService>(QueryServiceOptions{});
      service->RegisterCollection(
          "docs", PartitionCollection(TestDocs(), i, 2).MoveValueOrDie());
      EXPECT_TRUE(service->SetGlobalStats("docs", TestStats()).ok());
      auto server = std::make_unique<LineServer>(service.get());
      EXPECT_TRUE(server->Start().ok());
      RemoteShardBackend::Options bopts;
      bopts.connect_timeout_ms = 2000;
      coordinator->AddShard(std::make_shared<RemoteShardBackend>(
          "shard" + std::to_string(i), "127.0.0.1", server->port(),
          bopts));
      services.push_back(std::move(service));
      servers.push_back(std::move(server));
    }
    EXPECT_TRUE(coordinator->SetGlobalStats("docs", TestStats()).ok());
  }

  ~RemoteTracedFleet() {
    for (auto& server : servers) server->Stop();
  }
};

TEST(DistributedTraceTest, MergedTraceHasOneLanePerShardUnderOneId) {
  CoordinatorOptions opts;
  opts.trace_requests = true;
  RemoteTracedFleet fleet(opts);

  CoordSearchRequest req;
  req.collection = "docs";
  req.query = GenerateQueries(TestGen(), 1, 2)[0];
  req.options.top_k = 10;
  auto resp = fleet.coordinator->Search(req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  const uint64_t trace_id = resp.ValueOrDie().trace_id;
  ASSERT_NE(trace_id, 0u);

  // The merged trace is pullable from the coordinator and contains the
  // spliced shard spans: one root per dispatched shard copy, annotated
  // with the shard name and the measured clock offset.
  auto pull = fleet.coordinator->PullTraceRows(trace_id);
  ASSERT_TRUE(pull.ok()) << pull.status().ToString();
  auto payload = obs::SpanPayloadFromRows(pull.ValueOrDie());
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  const auto& spans = payload.ValueOrDie().spans;
  EXPECT_EQ(payload.ValueOrDie().trace_id, trace_id);

  std::set<std::string> shards_seen;
  for (const obs::SpanRecord& s : spans) {
    for (const auto& [key, value] : s.notes) {
      if (std::string(key) == "shard") shards_seen.insert(value);
    }
  }
  EXPECT_EQ(shards_seen,
            (std::set<std::string>{"shard0", "shard1"}));

  // Imported roots attach under the coordinator's per-shard wait spans:
  // every span reaches a coordinator root through recorded parents.
  std::set<uint64_t> ids;
  for (const obs::SpanRecord& s : spans) ids.insert(s.id);
  for (const obs::SpanRecord& s : spans) {
    if (s.parent != 0) {
      EXPECT_TRUE(ids.count(s.parent))
          << "span " << s.name << " has dangling parent";
    }
  }

  // The Chrome export labels the imported lanes with the shard names.
  std::string chrome = fleet.coordinator->ExportChromeTraceJson();
  EXPECT_NE(chrome.find("shard0"), std::string::npos);
  EXPECT_NE(chrome.find("shard1"), std::string::npos);
  EXPECT_NE(chrome.find("\"pid\":" + std::to_string(trace_id)),
            std::string::npos);
}

TEST(FleetMetricsTest, CoordinatorViewSumsShardScrapesExactly) {
  CoordinatorOptions opts;
  RemoteTracedFleet fleet(opts);

  for (const std::string& q : GenerateQueries(TestGen(), 3, 2)) {
    CoordSearchRequest req;
    req.collection = "docs";
    req.query = q;
    req.options.top_k = 5;
    ASSERT_TRUE(fleet.coordinator->Search(req).ok());
  }

  std::string text = fleet.coordinator->MetricsPrometheus();
  auto parsed = obs::ParsePrometheusText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  // The coordinator's own families are present...
  EXPECT_NE(text.find("spindle_coord_requests_total{outcome=\"ok\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("spindle_coord_request_latency_us_bucket"),
            std::string::npos);

  // ...and the fleet view sums per-shard counters exactly: each shard
  // served 3 SEARCHG requests, so the merged series reads 6 and the
  // per-shard re-exports read 3 each.
  EXPECT_NE(text.find("spindle_requests_total{outcome=\"ok\"} 6"),
            std::string::npos)
      << text;
  EXPECT_NE(
      text.find(
          "spindle_requests_total{shard=\"shard0\",outcome=\"ok\"} 3"),
      std::string::npos)
      << text;
  EXPECT_NE(
      text.find(
          "spindle_requests_total{shard=\"shard1\",outcome=\"ok\"} 3"),
      std::string::npos)
      << text;

  // Exactness against the ground truth scrapes, counter by counter.
  double shard_sum = 0.0;
  for (const auto& service : fleet.services) {
    auto sparsed = obs::ParsePrometheusText(service->MetricsPrometheus());
    ASSERT_TRUE(sparsed.ok());
    for (const auto& f : sparsed.ValueOrDie()) {
      if (f.name != "spindle_requests_total") continue;
      for (const auto& s : f.samples) {
        if (s.labels == R"(outcome="ok")") shard_sum += s.value;
      }
    }
  }
  for (const auto& f : parsed.ValueOrDie()) {
    if (f.name != "spindle_requests_total") continue;
    for (const auto& s : f.samples) {
      if (s.labels == R"(outcome="ok")") {
        EXPECT_EQ(s.value, shard_sum);
      }
    }
  }
}

TEST(CoordinatorSlowLogTest, SampledRequestsPinExemplarTraces) {
  CoordinatorOptions opts;
  opts.slow_sample = 1;  // record every request
  LocalFleet fleet(2, opts);

  const std::string query = GenerateQueries(TestGen(), 1, 2)[0];
  CoordSearchRequest req;
  req.collection = "docs";
  req.query = query;
  req.options.top_k = 5;
  req.trace = true;  // per-request trace (as a tid= token would force)
  auto resp = fleet.coordinator->Search(req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_NE(resp.ValueOrDie().trace_id, 0u);

  std::vector<std::string> rows = fleet.coordinator->SlowLogRows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_NE(rows[0].find("\"kind\":\"search\""), std::string::npos)
      << rows[0];
  EXPECT_NE(rows[0].find(query), std::string::npos) << rows[0];
  EXPECT_NE(rows[0].find("\"status\":\"ok\""), std::string::npos)
      << rows[0];

  // The logged exemplar trace id is the request's and stays pullable.
  EXPECT_NE(rows[0].find("\"trace_id\":" +
                         std::to_string(resp.ValueOrDie().trace_id)),
            std::string::npos)
      << rows[0];
  EXPECT_TRUE(
      fleet.coordinator->PullTraceRows(resp.ValueOrDie().trace_id).ok());
}

}  // namespace
}  // namespace shard
}  // namespace spindle
