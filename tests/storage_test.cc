#include <gtest/gtest.h>

#include "storage/catalog.h"
#include "storage/column.h"
#include "storage/relation.h"
#include "storage/schema.h"
#include "storage/string_dict.h"

namespace spindle {
namespace {

TEST(ColumnTest, Int64Basics) {
  Column c(DataType::kInt64);
  c.AppendInt64(3);
  c.AppendInt64(-7);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.Int64At(0), 3);
  EXPECT_EQ(c.Int64At(1), -7);
  EXPECT_EQ(c.ToStringAt(1), "-7");
  EXPECT_EQ(std::get<int64_t>(c.ValueAt(0)), 3);
}

TEST(ColumnTest, StringBasics) {
  Column c = Column::MakeString({"abc", "def"});
  EXPECT_EQ(c.type(), DataType::kString);
  EXPECT_EQ(c.StringAt(1), "def");
  EXPECT_GT(c.ByteSize(), 0u);
}

TEST(ColumnTest, AppendValueTypeChecked) {
  Column c(DataType::kInt64);
  EXPECT_TRUE(c.AppendValue(Value(int64_t{5})).ok());
  Status bad = c.AppendValue(Value(std::string("x")));
  EXPECT_EQ(bad.code(), StatusCode::kTypeMismatch);
}

TEST(ColumnTest, Gather) {
  Column c = Column::MakeInt64({10, 20, 30, 40});
  Column g = c.Gather({3, 1, 1});
  ASSERT_EQ(g.size(), 3u);
  EXPECT_EQ(g.Int64At(0), 40);
  EXPECT_EQ(g.Int64At(1), 20);
  EXPECT_EQ(g.Int64At(2), 20);
}

TEST(ColumnTest, EqualsAndCompare) {
  Column a = Column::MakeFloat64({1.0, 2.5});
  Column b = Column::MakeFloat64({1.0, 2.5});
  Column c = Column::MakeFloat64({1.0, 2.6});
  EXPECT_TRUE(a.Equals(b));
  EXPECT_FALSE(a.Equals(c));
  EXPECT_LT(a.ElementCompare(1, c, 1), 0);
  EXPECT_EQ(a.ElementCompare(0, c, 0), 0);
}

TEST(ColumnTest, HashConsistentWithEquality) {
  Column a = Column::MakeString({"term", "term", "other"});
  EXPECT_EQ(a.HashAt(0), a.HashAt(1));
  EXPECT_NE(a.HashAt(0), a.HashAt(2));
}

TEST(SchemaTest, FindAndToString) {
  Schema s({{"docID", DataType::kInt64}, {"data", DataType::kString}});
  EXPECT_EQ(s.num_fields(), 2u);
  EXPECT_EQ(*s.FindField("data"), 1u);
  EXPECT_FALSE(s.FindField("nope").has_value());
  EXPECT_EQ(s.ToString(), "(docID: int64, data: string)");
}

TEST(SchemaTest, TypesEqualIgnoresNames) {
  Schema a({{"x", DataType::kInt64}});
  Schema b({{"y", DataType::kInt64}});
  Schema c({{"x", DataType::kString}});
  EXPECT_TRUE(a.TypesEqual(b));
  EXPECT_FALSE(a.Equals(b));
  EXPECT_FALSE(a.TypesEqual(c));
}

TEST(RelationTest, MakeValidatesShape) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kString}});
  {
    std::vector<Column> cols;
    cols.push_back(Column::MakeInt64({1, 2}));
    cols.push_back(Column::MakeString({"x", "y"}));
    auto r = Relation::Make(s, std::move(cols));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.ValueOrDie()->num_rows(), 2u);
  }
  {
    std::vector<Column> cols;
    cols.push_back(Column::MakeInt64({1, 2}));
    auto r = Relation::Make(s, std::move(cols));
    EXPECT_FALSE(r.ok());
  }
  {
    std::vector<Column> cols;
    cols.push_back(Column::MakeInt64({1, 2}));
    cols.push_back(Column::MakeString({"x"}));
    auto r = Relation::Make(s, std::move(cols));
    EXPECT_FALSE(r.ok());
  }
  {
    std::vector<Column> cols;
    cols.push_back(Column::MakeString({"x", "y"}));
    cols.push_back(Column::MakeString({"x", "y"}));
    auto r = Relation::Make(s, std::move(cols));
    EXPECT_EQ(r.status().code(), StatusCode::kTypeMismatch);
  }
}

TEST(RelationTest, EmptyAndRowAccess) {
  Schema s({{"a", DataType::kInt64}});
  RelationPtr e = Relation::Empty(s);
  EXPECT_EQ(e->num_rows(), 0u);

  RelationBuilder b({{"a", DataType::kInt64}, {"p", DataType::kFloat64}});
  ASSERT_TRUE(b.AddRow({int64_t{1}, 0.5}).ok());
  ASSERT_TRUE(b.AddRow({int64_t{2}, 0.25}).ok());
  RelationPtr r = b.Build().ValueOrDie();
  auto row = r->Row(1);
  EXPECT_EQ(std::get<int64_t>(row[0]), 2);
  EXPECT_EQ(std::get<double>(row[1]), 0.25);
}

TEST(RelationTest, BuilderRejectsWrongArity) {
  RelationBuilder b({{"a", DataType::kInt64}});
  EXPECT_FALSE(b.AddRow({int64_t{1}, int64_t{2}}).ok());
}

TEST(RelationTest, EqualsIsDeep) {
  RelationBuilder b1({{"a", DataType::kInt64}});
  RelationBuilder b2({{"a", DataType::kInt64}});
  ASSERT_TRUE(b1.AddRow({int64_t{1}}).ok());
  ASSERT_TRUE(b2.AddRow({int64_t{1}}).ok());
  RelationPtr r1 = b1.Build().ValueOrDie();
  RelationPtr r2 = b2.Build().ValueOrDie();
  EXPECT_TRUE(r1->Equals(*r2));
}

TEST(RelationTest, ToStringTruncates) {
  RelationBuilder b({{"a", DataType::kInt64}});
  for (int i = 0; i < 30; ++i) ASSERT_TRUE(b.AddRow({int64_t{i}}).ok());
  RelationPtr r = b.Build().ValueOrDie();
  std::string s = r->ToString(5);
  EXPECT_NE(s.find("[30 rows]"), std::string::npos);
  EXPECT_NE(s.find("(25 more)"), std::string::npos);
}

TEST(CatalogTest, RegisterGetVersion) {
  Catalog cat;
  EXPECT_FALSE(cat.Get("t").ok());
  EXPECT_EQ(cat.Version("t"), 0u);

  RelationPtr r = Relation::Empty(Schema({{"a", DataType::kInt64}}));
  cat.Register("t", r);
  EXPECT_TRUE(cat.Contains("t"));
  uint64_t v1 = cat.Version("t");
  EXPECT_GT(v1, 0u);
  ASSERT_TRUE(cat.Get("t").ok());

  cat.Register("t", r);  // replace bumps version
  EXPECT_GT(cat.Version("t"), v1);

  cat.Drop("t");
  EXPECT_FALSE(cat.Contains("t"));
}

TEST(CatalogTest, ListIsSorted) {
  Catalog cat;
  RelationPtr r = Relation::Empty(Schema({{"a", DataType::kInt64}}));
  cat.Register("zeta", r);
  cat.Register("alpha", r);
  auto names = cat.List();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

TEST(StringDictTest, InternIsIdempotent) {
  StringDict dict;
  int64_t a = dict.Intern("book");
  int64_t b = dict.Intern("cake");
  EXPECT_EQ(dict.Intern("book"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.StringFor(a), "book");
  EXPECT_EQ(dict.StringFor(b), "cake");
  EXPECT_EQ(dict.Lookup("book"), a);
  EXPECT_EQ(dict.Lookup("absent"), -1);
  EXPECT_EQ(dict.size(), 2);
}

TEST(StringDictTest, FirstIdRespected) {
  StringDict dict(100);
  EXPECT_EQ(dict.Intern("x"), 100);
  EXPECT_EQ(dict.Intern("y"), 101);
  EXPECT_EQ(dict.StringFor(101), "y");
}

TEST(StringDictTest, SurvivesReallocation) {
  StringDict dict;
  // Force multiple growth cycles with small (SSO) strings whose buffers
  // move on vector reallocation.
  for (int i = 0; i < 1000; ++i) {
    std::string w = "w";
    w += std::to_string(i);
    dict.Intern(w);
  }
  for (int i = 0; i < 1000; ++i) {
    std::string w = "w";
    w += std::to_string(i);
    EXPECT_EQ(dict.Lookup(w), 1 + i) << w;
    EXPECT_EQ(dict.StringFor(1 + i), w);
  }
}

}  // namespace
}  // namespace spindle
