/// \file snapshot_test.cc
/// \brief Tests for persistent memory-mapped snapshots: the sectioned
/// container (checksums, corruption rejection), relation/catalog round
/// trips (zero-copy borrow semantics, dict sharing, byte accounting) and
/// whole-service round trips — queries served from a mapped snapshot must
/// be bit-identical to a fresh build across ranking models, k and thread
/// counts, including the trace-visible pruning counters.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "ir/index_snapshot.h"
#include "ir/searcher.h"
#include "server/query_service.h"
#include "storage/block_codec.h"
#include "storage/catalog.h"
#include "storage/mmap_file.h"
#include "storage/relation.h"
#include "storage/snapshot.h"
#include "workload/text_gen.h"

namespace spindle {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

RelationPtr SmallCollection(int64_t num_docs) {
  TextCollectionOptions gen;
  gen.num_docs = num_docs;
  gen.vocab_size = 2000;
  gen.avg_doc_len = 40;
  return GenerateTextCollection(gen).ValueOrDie();
}

// ---------------------------------------------------------------------------
// Container layer: raw sections, checksums, corruption rejection
// ---------------------------------------------------------------------------

TEST(SnapshotContainerTest, RawSectionRoundTrip) {
  const std::string path = TempPath("raw_sections.snap");
  std::vector<int64_t> ints = {1, -2, 3, 1LL << 40};
  std::vector<double> doubles = {0.5, -1.25, 3e100};

  SnapshotWriter writer;
  uint32_t ints_id = writer.AddPodSection<int64_t>("ints", ints);
  uint32_t doubles_id = writer.AddPodSection<double>("doubles", doubles);
  uint32_t meta_id = writer.AddOwnedSection("meta", std::string("hello"));
  ASSERT_TRUE(writer.Finish(path).ok());

  auto snap = SnapshotReader::Open(path).ValueOrDie();
  EXPECT_EQ(snap->num_sections(), 3u);
  EXPECT_EQ(snap->FindSection("ints").ValueOrDie(), ints_id);
  EXPECT_FALSE(snap->FindSection("absent").ok());
  EXPECT_TRUE(snap->HasSection("doubles"));

  auto got_ints = snap->PodSection<int64_t>(ints_id).ValueOrDie();
  ASSERT_EQ(got_ints.size(), ints.size());
  for (size_t i = 0; i < ints.size(); ++i) EXPECT_EQ(got_ints[i], ints[i]);
  // Payloads start on 64-byte boundaries: reinterpretation is aligned.
  EXPECT_EQ(reinterpret_cast<uintptr_t>(got_ints.data()) % 64, 0u);

  auto got_doubles = snap->PodSection<double>(doubles_id).ValueOrDie();
  ASSERT_EQ(got_doubles.size(), doubles.size());
  for (size_t i = 0; i < doubles.size(); ++i) {
    EXPECT_EQ(got_doubles[i], doubles[i]);
  }

  auto meta = snap->SectionBytes(meta_id).ValueOrDie();
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(meta.data()),
                        meta.size()),
            "hello");

  // A borrowed MappedVector keeps the mapping alive past the reader ref.
  MappedVector<int64_t> borrowed =
      snap->MappedSection<int64_t>(ints_id).ValueOrDie();
  snap.reset();
  ASSERT_EQ(borrowed.size(), ints.size());
  EXPECT_EQ(borrowed[3], 1LL << 40);
  EXPECT_GT(borrowed.MappedBytes(), 0u);
  EXPECT_EQ(borrowed.HeapBytes(), 0u);
}

TEST(SnapshotContainerTest, MissingFileIsNotFound) {
  auto r = SnapshotReader::Open(TempPath("does_not_exist.snap"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

class SnapshotCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("corrupt_target.snap");
    std::vector<int64_t> payload(100, 7);
    SnapshotWriter writer;
    writer.AddPodSection<int64_t>("payload", payload);
    ASSERT_TRUE(writer.Finish(path_).ok());
    bytes_ = ReadFileBytes(path_);
    ASSERT_GT(bytes_.size(), 128u);
  }

  /// Writes a mutated copy and asserts Open rejects it with a clean
  /// error Status (never UB, never OK).
  void ExpectRejected(const std::string& mutated) {
    const std::string p = TempPath("corrupt_mutated.snap");
    WriteFileBytes(p, mutated);
    auto r = SnapshotReader::Open(p);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kParseError)
        << r.status().ToString();
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(SnapshotCorruptionTest, IntactFileOpens) {
  EXPECT_TRUE(SnapshotReader::Open(path_).ok());
}

TEST_F(SnapshotCorruptionTest, RejectsBadMagic) {
  std::string m = bytes_;
  m[0] ^= 0x5A;
  ExpectRejected(m);
}

TEST_F(SnapshotCorruptionTest, RejectsBadFormatVersion) {
  std::string m = bytes_;
  m[8] ^= 0x7F;  // format_version lives at header offset 8
  ExpectRejected(m);
}

TEST_F(SnapshotCorruptionTest, VersionMismatchReportsFoundAndExpected) {
  // An operator pointing a new binary at an old snapshot (or vice versa)
  // gets both numbers, not just "bad version".
  std::string m = bytes_;
  m[8] ^= 0x7F;
  const std::string p = TempPath("corrupt_version.snap");
  WriteFileBytes(p, m);
  auto r = SnapshotReader::Open(p);
  ASSERT_FALSE(r.ok());
  const std::string& msg = r.status().message();
  EXPECT_NE(msg.find("found version " +
                     std::to_string(kSnapshotFormatVersion ^ 0x7FU)),
            std::string::npos)
      << msg;
  EXPECT_NE(msg.find("expected version " +
                     std::to_string(kSnapshotFormatVersion)),
            std::string::npos)
      << msg;
}

TEST_F(SnapshotCorruptionTest, RejectsTruncatedHeader) {
  ExpectRejected(bytes_.substr(0, 32));
}

TEST_F(SnapshotCorruptionTest, RejectsTruncatedSection) {
  ExpectRejected(bytes_.substr(0, bytes_.size() - 64));
}

TEST_F(SnapshotCorruptionTest, RejectsFlippedPayloadByte) {
  std::string m = bytes_;
  m[m.size() - 1] ^= 0x01;
  ExpectRejected(m);
}

TEST_F(SnapshotCorruptionTest, RejectsFlippedTocByte) {
  std::string m = bytes_;
  m[64 + 48] ^= 0xFF;  // a TOC entry's offset field
  ExpectRejected(m);
}

// ---------------------------------------------------------------------------
// Relation / catalog round trips
// ---------------------------------------------------------------------------

TEST(CatalogSnapshotTest, MixedColumnTypesRoundTripBitIdentical) {
  RelationBuilder b({{"id", DataType::kInt64},
                     {"score", DataType::kFloat64},
                     {"tag", DataType::kString}});
  ASSERT_TRUE(b.AddRow({int64_t{1}, 0.5, std::string("alpha")}).ok());
  ASSERT_TRUE(b.AddRow({int64_t{2}, -2.25, std::string("beta")}).ok());
  ASSERT_TRUE(b.AddRow({int64_t{3}, 1e-300, std::string("alpha")}).ok());
  RelationPtr rel = b.Build().ValueOrDie();

  Catalog catalog;
  catalog.Register("plain", rel);            // plain string column
  catalog.RegisterEncoded("encoded", rel);   // dict-encoded string column

  const std::string path = TempPath("catalog_mixed.snap");
  ASSERT_TRUE(SaveSnapshotFile(path, catalog, {}).ok());

  Catalog loaded;
  SnapshotLoadInfo info;
  ASSERT_TRUE(LoadSnapshotFile(path, &loaded, nullptr, &info).ok());
  EXPECT_EQ(info.relations, 2u);
  EXPECT_GT(info.file_bytes, 0u);

  for (const std::string& name : {"plain", "encoded"}) {
    RelationPtr got = loaded.Get(name).ValueOrDie();
    RelationPtr want = catalog.Get(name).ValueOrDie();
    EXPECT_TRUE(got->Equals(*want)) << name;
  }

  // Numeric and dict-code columns borrow the mapping; heap accounting
  // reports them as mapped bytes, not heap bytes.
  RelationPtr enc = loaded.Get("encoded").ValueOrDie();
  EXPECT_TRUE(enc->column(0).mapped());
  EXPECT_TRUE(enc->column(1).mapped());
  EXPECT_GT(enc->MappedByteSize(), 0u);
  EXPECT_EQ(enc->column(0).ByteSizeExcludingDict(), 0u);
}

TEST(CatalogSnapshotTest, EmptyCatalogRoundTrips) {
  Catalog catalog;
  const std::string path = TempPath("catalog_empty.snap");
  ASSERT_TRUE(SaveSnapshotFile(path, catalog, {}).ok());
  Catalog loaded;
  ASSERT_TRUE(LoadSnapshotFile(path, &loaded).ok());
  EXPECT_TRUE(loaded.List().empty());
}

TEST(CatalogSnapshotTest, CatalogUntouchedOnCorruptFile) {
  Catalog catalog;
  catalog.Register("keep", SmallCollection(10));
  const uint64_t version_before = catalog.Version("keep");

  // A valid snapshot containing a table named "keep" — then corrupted.
  Catalog source;
  source.Register("keep", SmallCollection(20));
  source.Register("extra", SmallCollection(5));
  const std::string path = TempPath("catalog_corrupt.snap");
  ASSERT_TRUE(SaveSnapshotFile(path, source, {}).ok());
  std::string bytes = ReadFileBytes(path);
  bytes[bytes.size() / 2] ^= 0x10;
  WriteFileBytes(path, bytes);

  ASSERT_FALSE(LoadSnapshotFile(path, &catalog).ok());
  EXPECT_EQ(catalog.Version("keep"), version_before);
  EXPECT_FALSE(catalog.Contains("extra"));
}

TEST(CatalogSnapshotTest, ByteSizesSeparateHeapFromMapped) {
  Catalog catalog;
  catalog.RegisterEncoded("docs", SmallCollection(200));
  Catalog::ByteStats fresh = catalog.ByteSizes();
  EXPECT_GT(fresh.heap_bytes, 0u);
  EXPECT_EQ(fresh.mapped_bytes, 0u);

  const std::string path = TempPath("catalog_bytes.snap");
  ASSERT_TRUE(SaveSnapshotFile(path, catalog, {}).ok());
  Catalog loaded;
  ASSERT_TRUE(LoadSnapshotFile(path, &loaded).ok());
  Catalog::ByteStats mapped = loaded.ByteSizes();
  EXPECT_GT(mapped.mapped_bytes, 0u);
  // Dicts are still heap (materialized on load), but the bulk columns
  // moved to the mapping: heap shrinks, and mapped bytes are disjoint
  // from (not double-charged into) the heap number.
  EXPECT_LT(mapped.heap_bytes, fresh.heap_bytes);
}

TEST(CatalogSnapshotTest, CompressedColumnsRoundTripAndAccount) {
  Catalog catalog;
  catalog.RegisterEncoded("t", SmallCollection(300));
  RelationPtr original = catalog.Get("t").ValueOrDie();
  const uint64_t version_before = catalog.Version("t");

  ASSERT_TRUE(catalog.Compress("t"));
  EXPECT_FALSE(catalog.Compress("missing"));
  // Same logical content, same version (index-cache signatures derived
  // from "name@version" stay valid), physically compressed.
  EXPECT_EQ(catalog.Version("t"), version_before);
  RelationPtr compressed = catalog.Get("t").ValueOrDie();
  EXPECT_TRUE(compressed->column(0).compressed());  // docID int64
  EXPECT_TRUE(compressed->column(1).compressed());  // data dict codes
  EXPECT_TRUE(compressed->Equals(*original));
  Catalog::ByteStats stats = catalog.ByteSizes();
  EXPECT_GT(stats.compressed_bytes, 0u);
  EXPECT_EQ(stats.mapped_bytes, 0u);

  // The compressed representation round-trips through a snapshot: the
  // blob is written verbatim and the loaded columns decode lazily from
  // the mapping, accounted as compressed bytes (not heap, not mapped).
  const std::string path = TempPath("catalog_compressed.snap");
  ASSERT_TRUE(SaveSnapshotFile(path, catalog, {}).ok());
  Catalog loaded;
  ASSERT_TRUE(LoadSnapshotFile(path, &loaded).ok());
  RelationPtr got = loaded.Get("t").ValueOrDie();
  EXPECT_TRUE(got->column(0).compressed());
  EXPECT_TRUE(got->column(1).compressed());
  EXPECT_TRUE(got->Equals(*original));
  Catalog::ByteStats lstats = loaded.ByteSizes();
  EXPECT_GT(lstats.compressed_bytes, 0u);
}

// ---------------------------------------------------------------------------
// Whole-service round trips: bit-identical serving from a mapped snapshot
// ---------------------------------------------------------------------------

class ServiceSnapshotTest : public ::testing::Test {
 protected:
  static server::QueryServiceOptions ServiceOptions(int threads) {
    server::QueryServiceOptions opts;
    opts.threads = threads;
    return opts;
  }

  /// Builds a fresh service and a snapshot-restored one over the same
  /// collection; returns the snapshot path.
  std::string MakePair(int threads,
                       std::unique_ptr<server::QueryService>* fresh,
                       std::unique_ptr<server::QueryService>* restored) {
    const std::string path = TempPath("service_t" +
                                      std::to_string(threads) + ".snap");
    std::remove(path.c_str());
    RelationPtr docs = SmallCollection(kNumDocs);
    *fresh = std::make_unique<server::QueryService>(ServiceOptions(threads));
    (*fresh)->RegisterCollection("docs", docs);
    EXPECT_TRUE((*fresh)->SaveSnapshot(path).ok());

    *restored =
        std::make_unique<server::QueryService>(ServiceOptions(threads));
    SnapshotLoadInfo info;
    EXPECT_TRUE((*restored)->LoadSnapshot(path, &info).ok());
    EXPECT_EQ(info.relations, 1u);
    EXPECT_EQ(info.indexes, 1u);
    return path;
  }

  static constexpr int64_t kNumDocs = 2500;
};

TEST_F(ServiceSnapshotTest, SearchBitIdenticalAcrossModelsKAndThreads) {
  TextCollectionOptions gen;
  gen.num_docs = kNumDocs;
  gen.vocab_size = 2000;
  gen.avg_doc_len = 40;
  const std::vector<std::string> queries = GenerateQueries(gen, 6, 2);
  const RankModel models[] = {RankModel::kBm25, RankModel::kTfIdf,
                              RankModel::kLmDirichlet,
                              RankModel::kLmJelinekMercer};

  for (int threads : {1, 4}) {
    std::unique_ptr<server::QueryService> fresh, restored;
    MakePair(threads, &fresh, &restored);
    for (RankModel model : models) {
      for (size_t k : {size_t{1}, size_t{10}, size_t{100}}) {
        for (const std::string& q : queries) {
          server::SearchRequest req;
          req.collection = "docs";
          req.query = q;
          req.options.model = model;
          req.options.top_k = k;
          auto a = fresh->Search(req);
          auto b = restored->Search(req);
          ASSERT_TRUE(a.ok()) << RankModelName(model);
          ASSERT_TRUE(b.ok()) << RankModelName(model);
          // Bit-identical rows AND scores (Equals compares the doubles).
          EXPECT_TRUE(a.ValueOrDie().rows->Equals(*b.ValueOrDie().rows))
              << RankModelName(model) << " k=" << k << " threads="
              << threads << " q=\"" << q << "\"";
          if (threads == 1) {
            // Single-threaded pruning is deterministic: the restored
            // index must drive exactly the same pruning decisions.
            const Searcher::Stats& sa = a.ValueOrDie().stats.search;
            const Searcher::Stats& sb = b.ValueOrDie().stats.search;
            EXPECT_EQ(sa.docs_scored, sb.docs_scored);
            EXPECT_EQ(sa.docs_skipped, sb.docs_skipped);
            EXPECT_EQ(sa.blocks_skipped, sb.blocks_skipped);
            EXPECT_EQ(sa.fused_path_used, sb.fused_path_used);
          }
        }
      }
    }
  }
}

TEST_F(ServiceSnapshotTest, FirstQueryAfterRestoreHitsInstalledIndex) {
  std::unique_ptr<server::QueryService> fresh, restored;
  MakePair(1, &fresh, &restored);

  server::SearchRequest req;
  req.collection = "docs";
  req.query = GenerateQueries({}, 1, 2)[0];
  req.options.top_k = 10;
  auto resp = restored->Search(req);
  ASSERT_TRUE(resp.ok());
  // The restored index serves immediately: a cache hit, no rebuild — no
  // document was re-tokenized.
  EXPECT_EQ(resp.ValueOrDie().stats.search.index_hits, 1u);
  EXPECT_EQ(resp.ValueOrDie().stats.search.index_misses, 0u);
}

TEST_F(ServiceSnapshotTest, SpinqlBitIdenticalFromSnapshot) {
  std::unique_ptr<server::QueryService> fresh, restored;
  MakePair(1, &fresh, &restored);

  for (const char* expr :
       {"PROJECT [$1] (docs)", "TOPK [7] (PROJECT [$1] (docs))"}) {
    server::SpinqlRequest req;
    req.text = expr;
    auto a = fresh->EvalSpinql(req);
    auto b = restored->EvalSpinql(req);
    ASSERT_TRUE(a.ok()) << expr;
    ASSERT_TRUE(b.ok()) << expr;
    EXPECT_TRUE(a.ValueOrDie().rows->Equals(*b.ValueOrDie().rows)) << expr;
  }
}

TEST_F(ServiceSnapshotTest, MetricsReportMappedCatalogBytes) {
  std::unique_ptr<server::QueryService> fresh, restored;
  MakePair(1, &fresh, &restored);

  Catalog::ByteStats fresh_bytes = fresh->catalog().ByteSizes();
  Catalog::ByteStats mapped_bytes = restored->catalog().ByteSizes();
  EXPECT_EQ(fresh_bytes.mapped_bytes, 0u);
  EXPECT_GT(mapped_bytes.mapped_bytes, 0u);

  std::string json = restored->MetricsJson();
  EXPECT_NE(json.find("\"catalog\""), std::string::npos);
  EXPECT_NE(json.find("\"mapped_bytes\":" +
                      std::to_string(mapped_bytes.mapped_bytes)),
            std::string::npos);
}

TEST_F(ServiceSnapshotTest, UncompressedIndexSnapshotRoundTrips) {
  // With compression disabled the writer emits the flat `.ords`/`.tfs`
  // posting sections (format v2, flag byte 0) — the legacy physical
  // layout must keep round-tripping bit-identically.
  blockcodec::ScopedCompressionDefaults off({false, false});
  std::unique_ptr<server::QueryService> fresh, restored;
  MakePair(1, &fresh, &restored);
  EXPECT_EQ(fresh->catalog().ByteSizes().compressed_bytes, 0u);
  EXPECT_EQ(restored->catalog().ByteSizes().compressed_bytes, 0u);

  for (const std::string& q : GenerateQueries({}, 4, 2)) {
    server::SearchRequest req;
    req.collection = "docs";
    req.query = q;
    req.options.top_k = 10;
    auto a = fresh->Search(req);
    auto b = restored->Search(req);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_TRUE(a.ValueOrDie().rows->Equals(*b.ValueOrDie().rows))
        << "q=\"" << q << "\"";
    // Nothing to decode on either side: flat postings, plain columns.
    EXPECT_EQ(a.ValueOrDie().stats.search.blocks_decoded, 0u);
    EXPECT_EQ(b.ValueOrDie().stats.search.blocks_decoded, 0u);
  }
}

TEST_F(ServiceSnapshotTest, MismatchedAnalyzerSkipsIndexInstall) {
  const std::string path = TempPath("service_analyzer.snap");
  std::remove(path.c_str());
  server::QueryService writer_svc(ServiceOptions(1));
  writer_svc.RegisterCollection("docs", SmallCollection(100));
  ASSERT_TRUE(writer_svc.SaveSnapshot(path).ok());

  server::QueryServiceOptions opts = ServiceOptions(1);
  opts.analyzer.stemmer = "none";  // different term space
  server::QueryService other(opts);
  ASSERT_TRUE(other.LoadSnapshot(path).ok());

  server::SearchRequest req;
  req.collection = "docs";
  req.query = GenerateQueries({}, 1, 2)[0];
  auto resp = other.Search(req);
  ASSERT_TRUE(resp.ok());
  // The stored index was built under a different analyzer: it must NOT
  // be served; the searcher rebuilds under its own analyzer instead.
  EXPECT_EQ(resp.ValueOrDie().stats.search.index_misses, 1u);
}

TEST_F(ServiceSnapshotTest, IndexViewsShareOneDictAfterRoundTrip) {
  // term_doc and termdict share a StringDict at build time; the dict
  // table must preserve that sharing across the round trip so term joins
  // still compare codes from one dictionary.
  Searcher searcher;
  RelationPtr docs = SmallCollection(300);
  TextIndexPtr index =
      searcher.GetOrBuildIndex(docs, "sig").ValueOrDie();

  Catalog catalog;
  const std::string path = TempPath("index_dicts.snap");
  ASSERT_TRUE(SaveSnapshotFile(path, catalog, {{"docs", index}}).ok());
  std::vector<SnapshotIndexEntry> entries;
  Catalog loaded;
  ASSERT_TRUE(LoadSnapshotFile(path, &loaded, &entries).ok());
  ASSERT_EQ(entries.size(), 1u);
  const TextIndex& got = *entries[0].index;

  EXPECT_TRUE(got.term_doc()->Equals(*index->term_doc()));
  EXPECT_TRUE(got.termdict()->Equals(*index->termdict()));
  EXPECT_TRUE(got.tf()->Equals(*index->tf()));
  EXPECT_TRUE(got.idf()->Equals(*index->idf()));
  ASSERT_TRUE(got.term_doc()->column(0).dict_encoded());
  ASSERT_TRUE(got.termdict()->column(1).dict_encoded());
  EXPECT_EQ(got.term_doc()->column(0).dict().get(),
            got.termdict()->column(1).dict().get());
  EXPECT_GT(got.MappedByteSize(), 0u);
  EXPECT_EQ(index->MappedByteSize(), 0u);
}

}  // namespace
}  // namespace spindle
