#include <gtest/gtest.h>

#include "engine/materialization_cache.h"
#include "triples/graph.h"
#include "triples/partitioning.h"
#include "triples/triple_store.h"

namespace spindle {
namespace {

/// The paper's §3 auction micro-graph: lots in auctions.
TripleStore AuctionGraph() {
  TripleStore store;
  store.Add("lot23", "type", "lot");
  store.Add("lot24", "type", "lot");
  store.Add("lot25", "type", "lot");
  store.Add("auction12", "type", "auction");
  store.Add("lot23", "hasAuction", "auction12");
  store.Add("lot24", "hasAuction", "auction12");
  store.Add("lot25", "hasAuction", "auction13");
  store.Add("lot23", "description", "antique oak table");
  store.Add("lot24", "description", "vintage silver spoon");
  store.Add("auction12", "description", "estate sale of antiques");
  store.AddInt("lot23", "startPrice", 100);
  store.AddFloat("lot23", "weightKg", 12.5);
  return store;
}

TEST(TripleStoreTest, TypePartitioning) {
  TripleStore store = AuctionGraph();
  EXPECT_EQ(store.size(), 12u);
  RelationPtr s = store.StringTriples().ValueOrDie();
  RelationPtr i = store.IntTriples().ValueOrDie();
  RelationPtr f = store.FloatTriples().ValueOrDie();
  EXPECT_EQ(s->num_rows(), 10u);
  EXPECT_EQ(i->num_rows(), 1u);
  EXPECT_EQ(f->num_rows(), 1u);
  EXPECT_EQ(i->column(2).type(), DataType::kInt64);
  EXPECT_EQ(f->column(2).type(), DataType::kFloat64);
}

TEST(TripleStoreTest, AllAsStringsSerializes) {
  TripleStore store = AuctionGraph();
  RelationPtr all = store.AllAsStrings().ValueOrDie();
  EXPECT_EQ(all->num_rows(), 12u);
  // The int and float objects are serialized.
  bool found_int = false, found_float = false;
  for (size_t r = 0; r < all->num_rows(); ++r) {
    if (all->column(2).StringAt(r) == "100") found_int = true;
    if (all->column(2).StringAt(r) == "12.5") found_float = true;
  }
  EXPECT_TRUE(found_int);
  EXPECT_TRUE(found_float);
}

TEST(TripleStoreTest, RegisterInto) {
  TripleStore store = AuctionGraph();
  Catalog cat;
  ASSERT_TRUE(store.RegisterInto(cat).ok());
  EXPECT_TRUE(cat.Contains("triples"));
  EXPECT_TRUE(cat.Contains("triples_int"));
  EXPECT_TRUE(cat.Contains("triples_float"));
}

TEST(TripleStoreTest, DefaultProbabilityIsOne) {
  TripleStore store;
  store.Add("s", "p", "o");
  store.Add("s2", "p", "o2", 0.4);
  RelationPtr rel = store.StringTriples().ValueOrDie();
  EXPECT_DOUBLE_EQ(rel->column(3).Float64At(0), 1.0);
  EXPECT_DOUBLE_EQ(rel->column(3).Float64At(1), 0.4);
}

class PartitioningTest : public ::testing::TestWithParam<TripleLayout> {};

TEST_P(PartitioningTest, AllLayoutsAgree) {
  TripleStore store = AuctionGraph();
  RelationPtr triples = store.StringTriples().ValueOrDie();
  MaterializationCache cache(16 << 20);
  auto part =
      PartitionedTriples::Make(triples, GetParam(),
                               GetParam() == TripleLayout::kAdaptive
                                   ? &cache
                                   : nullptr)
          .ValueOrDie();
  RelationPtr desc = part.Pattern("description").ValueOrDie();
  EXPECT_EQ(desc->num_rows(), 3u);
  EXPECT_EQ(desc->num_columns(), 3u);  // (subject, object, p)
  RelationPtr none = part.Pattern("noSuchProperty").ValueOrDie();
  EXPECT_EQ(none->num_rows(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Layouts, PartitioningTest,
                         ::testing::Values(TripleLayout::kSingleTable,
                                           TripleLayout::kPerProperty,
                                           TripleLayout::kAdaptive));

TEST(PartitioningTest, PerPropertyBuildsEagerly) {
  TripleStore store = AuctionGraph();
  RelationPtr triples = store.StringTriples().ValueOrDie();
  auto part = PartitionedTriples::Make(triples, TripleLayout::kPerProperty,
                                       nullptr)
                  .ValueOrDie();
  EXPECT_EQ(part.num_partitions(), 3u);  // type, hasAuction, description
}

TEST(PartitioningTest, AdaptiveCachesOnSecondAccess) {
  TripleStore store = AuctionGraph();
  RelationPtr triples = store.StringTriples().ValueOrDie();
  MaterializationCache cache(16 << 20);
  auto part =
      PartitionedTriples::Make(triples, TripleLayout::kAdaptive, &cache)
          .ValueOrDie();
  ASSERT_TRUE(part.Pattern("description").ok());
  EXPECT_EQ(cache.stats().hits, 0u);
  ASSERT_TRUE(part.Pattern("description").ok());
  EXPECT_EQ(cache.stats().hits, 1u);
  // Only the accessed property was materialized.
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(PartitioningTest, AdaptiveRequiresCache) {
  TripleStore store = AuctionGraph();
  RelationPtr triples = store.StringTriples().ValueOrDie();
  EXPECT_FALSE(
      PartitionedTriples::Make(triples, TripleLayout::kAdaptive, nullptr)
          .ok());
}

TEST(GraphTest, SelectByType) {
  RelationPtr triples = AuctionGraph().StringTriples().ValueOrDie();
  ProbRelation lots = SelectByType(triples, "lot").ValueOrDie();
  EXPECT_EQ(lots.num_rows(), 3u);
  EXPECT_DOUBLE_EQ(lots.prob_at(0), 1.0);
}

TEST(GraphTest, TraverseForward) {
  RelationPtr triples = AuctionGraph().StringTriples().ValueOrDie();
  ProbRelation lots = SelectByType(triples, "lot").ValueOrDie();
  ProbRelation auctions =
      Traverse(lots, triples, "hasAuction", Direction::kForward)
          .ValueOrDie();
  // lot23, lot24 -> auction12 (merged); lot25 -> auction13.
  EXPECT_EQ(auctions.num_rows(), 2u);
}

TEST(GraphTest, TraverseBackwardPropagatesScores) {
  // The paper's right branch: rank auctions, then traverse hasAuction
  // backward; lots inherit the auction scores transparently.
  RelationPtr triples = AuctionGraph().StringTriples().ValueOrDie();
  RelationBuilder b({{"id", DataType::kString}, {"p", DataType::kFloat64}});
  ASSERT_TRUE(b.AddRow({std::string("auction12"), 0.8}).ok());
  ASSERT_TRUE(b.AddRow({std::string("auction13"), 0.2}).ok());
  ProbRelation ranked_auctions =
      ProbRelation::Wrap(b.Build().ValueOrDie()).ValueOrDie();
  ProbRelation lots =
      Traverse(ranked_auctions, triples, "hasAuction", Direction::kBackward)
          .ValueOrDie();
  ASSERT_EQ(lots.num_rows(), 3u);
  double p23 = -1, p25 = -1;
  for (size_t r = 0; r < lots.num_rows(); ++r) {
    if (lots.rel()->column(0).StringAt(r) == "lot23") p23 = lots.prob_at(r);
    if (lots.rel()->column(0).StringAt(r) == "lot25") p25 = lots.prob_at(r);
  }
  EXPECT_DOUBLE_EQ(p23, 0.8);  // inherits auction12's score
  EXPECT_DOUBLE_EQ(p25, 0.2);
}

TEST(GraphTest, TraverseMergesMultiplePaths) {
  TripleStore store;
  store.Add("a", "linksTo", "t", 0.5);
  store.Add("b", "linksTo", "t", 0.5);
  RelationPtr triples = store.StringTriples().ValueOrDie();
  RelationBuilder b({{"id", DataType::kString}, {"p", DataType::kFloat64}});
  ASSERT_TRUE(b.AddRow({std::string("a"), 1.0}).ok());
  ASSERT_TRUE(b.AddRow({std::string("b"), 1.0}).ok());
  ProbRelation nodes = ProbRelation::Wrap(b.Build().ValueOrDie()).ValueOrDie();

  ProbRelation merged_max = Traverse(nodes, triples, "linksTo",
                                     Direction::kForward, Assumption::kMax)
                                .ValueOrDie();
  ASSERT_EQ(merged_max.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(merged_max.prob_at(0), 0.5);

  ProbRelation merged_ind =
      Traverse(nodes, triples, "linksTo", Direction::kForward,
               Assumption::kIndependent)
          .ValueOrDie();
  EXPECT_DOUBLE_EQ(merged_ind.prob_at(0), 0.75);
}

TEST(GraphTest, ExtractProperty) {
  RelationPtr triples = AuctionGraph().StringTriples().ValueOrDie();
  ProbRelation lots = SelectByType(triples, "lot").ValueOrDie();
  ProbRelation descs =
      ExtractProperty(lots, triples, "description").ValueOrDie();
  // lot25 has no description.
  EXPECT_EQ(descs.num_rows(), 2u);
  EXPECT_EQ(descs.arity(), 2u);
}

TEST(GraphTest, SelectByProperty) {
  RelationPtr triples = AuctionGraph().StringTriples().ValueOrDie();
  ProbRelation nodes =
      SelectByProperty(triples, "hasAuction", "auction12").ValueOrDie();
  EXPECT_EQ(nodes.num_rows(), 2u);
}

TEST(GraphTest, UncertainTriplesPropagate) {
  TripleStore store;
  store.Add("item1", "type", "lot", 0.6);  // confidence-based extraction
  RelationPtr triples = store.StringTriples().ValueOrDie();
  ProbRelation lots = SelectByType(triples, "lot").ValueOrDie();
  ASSERT_EQ(lots.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(lots.prob_at(0), 0.6);
}

}  // namespace
}  // namespace spindle
