/// \file server_test.cc
/// \brief Tests for the query-serving subsystem: cancellation tokens and
/// deadlines, admission control (shedding, FIFO fairness, priorities),
/// metrics histograms, the QueryService (bit-identical results vs direct
/// library calls, concurrent smoke) and the line-protocol server.
///
/// The concurrent tests here also run under ThreadSanitizer in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/materialization_cache.h"
#include "exec/exec_context.h"
#include "exec/request_context.h"
#include "exec/scheduler.h"
#include "ir/searcher.h"
#include "obs/metrics_registry.h"
#include "obs/span_wire.h"
#include "server/admission.h"
#include "server/client.h"
#include "server/line_server.h"
#include "server/metrics.h"
#include "server/query_service.h"
#include "spinql/evaluator.h"
#include "storage/catalog.h"
#include "workload/text_gen.h"

namespace spindle {
namespace server {
namespace {

using std::chrono::milliseconds;

// ---------------------------------------------------------------------------
// CancelToken / RequestContext
// ---------------------------------------------------------------------------

TEST(CancelTokenTest, FirstCancellationWins) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.ToStatus().ok());

  token.Cancel(StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), StatusCode::kDeadlineExceeded);

  // A later cancel with a different reason must not overwrite the first.
  token.Cancel(StatusCode::kCancelled);
  EXPECT_EQ(token.reason(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(token.ToStatus().code(), StatusCode::kDeadlineExceeded);
}

TEST(RequestContextTest, ExpiredDeadlineTripsToken) {
  RequestContext rc;
  rc.token = std::make_shared<CancelToken>();
  rc.deadline = RequestContext::Clock::now() - milliseconds(5);
  ASSERT_TRUE(rc.has_deadline());

  Status st = rc.Check();
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  // The deadline check must trip the shared token so sibling threads of
  // the same request observe the cancellation too.
  EXPECT_TRUE(rc.token->cancelled());
  EXPECT_EQ(rc.token->reason(), StatusCode::kDeadlineExceeded);
}

TEST(RequestContextTest, NoAmbientContextIsOk) {
  // Library callers without a serving context pay one thread-local read
  // and proceed.
  EXPECT_EQ(RequestContext::Current(), nullptr);
  EXPECT_TRUE(RequestContext::CheckCurrent().ok());
  EXPECT_FALSE(RequestContext::CurrentCancelled());
}

TEST(RequestContextTest, ScopedInstallAndRestore) {
  RequestContext rc = RequestContext::WithDeadlineMs(10'000);
  {
    ScopedRequestContext scope(rc);
    ASSERT_NE(RequestContext::Current(), nullptr);
    EXPECT_TRUE(RequestContext::CheckCurrent().ok());
    rc.token->Cancel(StatusCode::kCancelled);
    EXPECT_TRUE(RequestContext::CurrentCancelled());
    EXPECT_EQ(RequestContext::CheckCurrent().code(), StatusCode::kCancelled);
  }
  EXPECT_EQ(RequestContext::Current(), nullptr);
}

TEST(RequestContextTest, ParallelForObservesCancelledContext) {
  // A cancelled ambient context stops ParallelFor at morsel granularity:
  // no morsel body runs when the token is tripped before the loop.
  RequestContext rc;
  rc.token = std::make_shared<CancelToken>();
  rc.token->Cancel(StatusCode::kCancelled);
  ScopedRequestContext scope(rc);

  ExecContext serial(1);
  std::atomic<size_t> rows{0};
  ParallelFor(serial, serial.morsel_rows * 4,
              [&](size_t, size_t begin, size_t end) {
                rows.fetch_add(end - begin);
              });
  EXPECT_EQ(rows.load(), 0u);

  ExecContext parallel(2);
  ParallelFor(parallel, parallel.morsel_rows * 4,
              [&](size_t, size_t begin, size_t end) {
                rows.fetch_add(end - begin);
              });
  EXPECT_EQ(rows.load(), 0u);
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

RequestContext PlainContext(Priority pri = Priority::kInteractive) {
  RequestContext rc;
  rc.token = std::make_shared<CancelToken>();
  rc.priority = pri;
  return rc;
}

TEST(AdmissionTest, QueueCapSheds) {
  AdmissionController::Options opts;
  opts.max_inflight = 1;
  opts.max_queue = 1;
  AdmissionController ac(opts);

  // Claim the only slot.
  ASSERT_TRUE(ac.Admit(PlainContext()).ok());
  EXPECT_EQ(ac.inflight(), 1);

  // One waiter fits in the queue; it parks with a short deadline.
  std::thread waiter([&] {
    RequestContext rc = RequestContext::WithDeadlineMs(30'000);
    if (ac.Admit(rc).ok()) ac.Release();
  });
  while (ac.queued() < 1) std::this_thread::yield();

  // The queue is at capacity: the next arrival sheds immediately.
  Status st = ac.Admit(PlainContext());
  EXPECT_EQ(st.code(), StatusCode::kOverloaded);
  EXPECT_EQ(ac.shed_total(), 1u);

  ac.Release();  // lets the queued waiter through
  waiter.join();
  EXPECT_EQ(ac.inflight(), 0);
  EXPECT_EQ(ac.queued(), 0u);
}

TEST(AdmissionTest, QueuedWaiterHonorsDeadline) {
  AdmissionController::Options opts;
  opts.max_inflight = 1;
  opts.max_queue = 8;
  AdmissionController ac(opts);

  ASSERT_TRUE(ac.Admit(PlainContext()).ok());  // occupy the slot

  RequestContext rc = RequestContext::WithDeadlineMs(20);
  Status st = ac.Admit(rc);
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ac.queued(), 0u);  // the dead waiter left the queue

  ac.Release();
}

TEST(AdmissionTest, QueuedWaiterHonorsExplicitCancel) {
  AdmissionController::Options opts;
  opts.max_inflight = 1;
  opts.max_queue = 8;
  AdmissionController ac(opts);

  ASSERT_TRUE(ac.Admit(PlainContext()).ok());

  RequestContext rc = PlainContext();
  std::thread canceller([&] {
    std::this_thread::sleep_for(milliseconds(20));
    rc.token->Cancel(StatusCode::kCancelled);
  });
  Status st = ac.Admit(rc);
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  canceller.join();
  ac.Release();
}

TEST(AdmissionTest, FifoFairnessWithinClass) {
  AdmissionController::Options opts;
  opts.max_inflight = 1;
  opts.max_queue = 16;
  AdmissionController ac(opts);

  ASSERT_TRUE(ac.Admit(PlainContext()).ok());  // hold the slot

  // Enqueue waiters in a known arrival order (each waits for the previous
  // one to be parked before arriving).
  constexpr int kWaiters = 4;
  std::vector<int> grant_order;
  std::mutex order_mu;
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    while (ac.queued() < static_cast<size_t>(i)) std::this_thread::yield();
    waiters.emplace_back([&, i] {
      RequestContext rc = RequestContext::WithDeadlineMs(60'000);
      ASSERT_TRUE(ac.Admit(rc).ok());
      {
        std::lock_guard<std::mutex> lock(order_mu);
        grant_order.push_back(i);
      }
      ac.Release();
    });
  }
  while (ac.queued() < static_cast<size_t>(kWaiters)) {
    std::this_thread::yield();
  }

  ac.Release();  // start the chain
  for (auto& t : waiters) t.join();

  // Strict arrival order: no waiter barged past an earlier one.
  ASSERT_EQ(grant_order.size(), static_cast<size_t>(kWaiters));
  for (int i = 0; i < kWaiters; ++i) EXPECT_EQ(grant_order[i], i);
}

TEST(AdmissionTest, InteractiveAdmittedBeforeBatch) {
  AdmissionController::Options opts;
  opts.max_inflight = 1;
  opts.max_queue = 8;
  AdmissionController ac(opts);

  ASSERT_TRUE(ac.Admit(PlainContext()).ok());

  // A batch waiter arrives FIRST, then an interactive one.
  std::vector<std::string> grant_order;
  std::mutex order_mu;
  std::thread batch([&] {
    RequestContext rc = RequestContext::WithDeadlineMs(60'000);
    rc.priority = Priority::kBatch;
    ASSERT_TRUE(ac.Admit(rc).ok());
    {
      std::lock_guard<std::mutex> lock(order_mu);
      grant_order.push_back("batch");
    }
    ac.Release();
  });
  while (ac.queued() < 1) std::this_thread::yield();
  std::thread interactive([&] {
    RequestContext rc = RequestContext::WithDeadlineMs(60'000);
    ASSERT_TRUE(ac.Admit(rc).ok());
    {
      std::lock_guard<std::mutex> lock(order_mu);
      grant_order.push_back("interactive");
    }
    ac.Release();
  });
  while (ac.queued() < 2) std::this_thread::yield();

  ac.Release();
  batch.join();
  interactive.join();

  ASSERT_EQ(grant_order.size(), 2u);
  EXPECT_EQ(grant_order[0], "interactive");
  EXPECT_EQ(grant_order[1], "batch");
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(LatencyHistogramTest, BucketBoundsAreMonotone) {
  // Sweep values: the bucket index never decreases, and every value is
  // covered by its bucket's upper bound (so percentile estimates are
  // conservative). Buckets 4..7 are unreachable padding below the first
  // full octave, hence the sweep rather than iterating raw indices.
  int prev_bucket = -1;
  uint64_t prev_upper = 0;
  for (uint64_t us = 0; us < 1'000'000; us = us < 16 ? us + 1 : us * 2) {
    int b = LatencyHistogram::BucketOf(us);
    uint64_t upper = LatencyHistogram::BucketUpperUs(b);
    EXPECT_LE(us, upper) << us;
    EXPECT_GE(b, prev_bucket) << us;
    if (b != prev_bucket) {
      if (prev_bucket >= 0) {
        EXPECT_GT(upper, prev_upper) << us;
      }
      prev_upper = upper;
      prev_bucket = b;
    }
  }
}

TEST(LatencyHistogramTest, PercentilesAreConservative) {
  LatencyHistogram h;
  EXPECT_EQ(h.PercentileUs(50), 0u);
  for (uint64_t us = 1; us <= 1000; ++us) h.Record(us);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.max_us(), 1000u);
  // Bucketed nearest-rank estimates never under-report (~12% resolution).
  EXPECT_GE(h.PercentileUs(50), 500u);
  EXPECT_LE(h.PercentileUs(50), 640u);
  EXPECT_GE(h.PercentileUs(99), 990u);
  EXPECT_LE(h.PercentileUs(99), 1280u);
  std::string json = h.ToJson();
  EXPECT_NE(json.find("\"count\":1000"), std::string::npos);
}

TEST(LatencyHistogramTest, ConcurrentRecordIsClean) {
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t * kPerThread + i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads * kPerThread));
}

// ---------------------------------------------------------------------------
// QueryService
// ---------------------------------------------------------------------------

class QueryServiceTest : public ::testing::Test {
 protected:
  static constexpr int64_t kDocs = 2000;

  static TextCollectionOptions GenOptions() {
    TextCollectionOptions gen;
    gen.num_docs = kDocs;
    gen.vocab_size = 2000;
    gen.avg_doc_len = 60;
    return gen;
  }

  static RelationPtr Docs() {
    static RelationPtr docs =
        GenerateTextCollection(GenOptions()).ValueOrDie();
    return docs;
  }

  static const std::vector<std::string>& Queries() {
    static std::vector<std::string> queries =
        GenerateQueries(GenOptions(), 16, 2);
    return queries;
  }

  std::unique_ptr<QueryService> MakeService(
      QueryServiceOptions opts = {}) {
    auto service = std::make_unique<QueryService>(opts);
    service->RegisterCollection("docs", Docs());
    return service;
  }
};

TEST_F(QueryServiceTest, SearchBitIdenticalToDirectCall) {
  auto service = MakeService();
  SearchOptions options;
  options.top_k = 10;

  // Direct library call against the same collection relation.
  Searcher direct;
  for (const std::string& q : Queries()) {
    SearchRequest req;
    req.collection = "docs";
    req.query = q;
    req.options = options;
    auto resp = service->Search(req);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();

    auto want = direct.Search(Docs(), "sig", q, options);
    ASSERT_TRUE(want.ok()) << want.status().ToString();

    // %.17g serialization makes float64 comparison exact, so equal rows
    // means bit-identical scores.
    EXPECT_EQ(SerializeRows(*resp.ValueOrDie().rows),
              SerializeRows(*want.ValueOrDie()));
  }
  EXPECT_EQ(service->metrics().requests_ok.load(), Queries().size());
  EXPECT_EQ(service->metrics().requests_total.load(), Queries().size());
}

TEST_F(QueryServiceTest, PreCancelledTokenShortCircuits) {
  auto service = MakeService();
  SearchRequest req;
  req.collection = "docs";
  req.query = Queries()[0];
  req.request.token = std::make_shared<CancelToken>();
  req.request.token->Cancel(StatusCode::kCancelled);

  auto resp = service->Search(req);
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(service->metrics().requests_cancelled.load(), 1u);
}

TEST_F(QueryServiceTest, TightDeadlineReturnsDeadlineExceeded) {
  // A 1 ms budget cannot cover a cold index build over 2000 docs plus
  // ranking; the request must come back as DeadlineExceeded, not hang and
  // not return partial results.
  auto service = MakeService();
  SearchRequest req;
  req.collection = "docs";
  req.query = Queries()[0];
  req.request.deadline_ms = 1;

  auto resp = service->Search(req);
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service->metrics().requests_deadline_exceeded.load(), 1u);

  // The same query with no deadline still works and matches the direct
  // call: cancellation never corrupts service state.
  SearchRequest ok_req;
  ok_req.collection = "docs";
  ok_req.query = Queries()[0];
  auto ok_resp = service->Search(ok_req);
  ASSERT_TRUE(ok_resp.ok()) << ok_resp.status().ToString();
  Searcher direct;
  auto want = direct.Search(Docs(), "sig", Queries()[0], SearchOptions{});
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(SerializeRows(*ok_resp.ValueOrDie().rows),
            SerializeRows(*want.ValueOrDie()));
}

TEST_F(QueryServiceTest, UnknownCollectionIsAnError) {
  auto service = MakeService();
  SearchRequest req;
  req.collection = "nope";
  req.query = "anything";
  auto resp = service->Search(req);
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(service->metrics().requests_error.load(), 1u);
}

TEST_F(QueryServiceTest, SpinqlErrorsSurfaceAsStatus) {
  auto service = MakeService();
  // Parse error, unknown relation, and a numeric literal that overflows
  // double: each fails with a Status — the service never terminates.
  for (const char* bad :
       {"SELECT [", "SELECT [P < 0.5] (no_such_relation)",
        "SELECT [P < 1e999999] (docs)"}) {
    SpinqlRequest req;
    req.text = bad;
    auto resp = service->EvalSpinql(req);
    EXPECT_FALSE(resp.ok()) << bad;
  }
  EXPECT_EQ(service->metrics().requests_error.load(), 3u);
}

TEST_F(QueryServiceTest, SpinqlBitIdenticalToDirectEvaluator) {
  auto service = MakeService();
  const std::string expr = "PROJECT [$1] (docs)";
  SpinqlRequest req;
  req.text = expr;
  auto resp = service->EvalSpinql(req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();

  Catalog catalog;
  catalog.RegisterEncoded("docs", Docs());
  MaterializationCache cache(64u << 20);
  spinql::Evaluator ev(&catalog, &cache);
  auto want = ev.EvalExpression(expr);
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  EXPECT_EQ(SerializeRows(*resp.ValueOrDie().rows),
            SerializeRows(*want.ValueOrDie().rel()));
}

TEST_F(QueryServiceTest, OverloadShedsWithOverloaded) {
  QueryServiceOptions opts;
  opts.admission.max_inflight = 1;
  opts.admission.max_queue = 1;
  auto service = MakeService(opts);

  // Saturate: occupy the slot and the single queue seat from the outside.
  ASSERT_TRUE(service->admission().Admit(PlainContext()).ok());
  std::thread parked([&] {
    RequestContext rc = RequestContext::WithDeadlineMs(30'000);
    if (service->admission().Admit(rc).ok()) service->admission().Release();
  });
  while (service->admission().queued() < 1) std::this_thread::yield();

  SearchRequest req;
  req.collection = "docs";
  req.query = Queries()[0];
  auto resp = service->Search(req);
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kOverloaded);
  EXPECT_EQ(service->metrics().requests_overloaded.load(), 1u);

  service->admission().Release();
  parked.join();
}

TEST_F(QueryServiceTest, ConcurrentClientsBitIdentical) {
  // The TSan-checked smoke: 16 client threads hammer the service with a
  // shared query set; every response must be bit-identical to the direct
  // library result computed up front.
  auto service = MakeService();
  SearchOptions options;
  options.top_k = 10;

  Searcher direct;
  std::vector<std::vector<std::string>> want;
  for (const std::string& q : Queries()) {
    auto r = direct.Search(Docs(), "sig", q, options);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    want.push_back(SerializeRows(*r.ValueOrDie()));
  }

  constexpr int kClients = 16;
  constexpr int kPerClient = 8;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        size_t qi = static_cast<size_t>(c * kPerClient + i) %
                    Queries().size();
        SearchRequest req;
        req.collection = "docs";
        req.query = Queries()[qi];
        req.options = options;
        auto resp = service->Search(req);
        if (!resp.ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (SerializeRows(*resp.ValueOrDie().rows) != want[qi]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(service->metrics().requests_ok.load(),
            static_cast<uint64_t>(kClients * kPerClient));
  // Every request either hit or missed the index cache (clients racing
  // the cold build may each count a miss; the first insert wins).
  EXPECT_GE(service->metrics().index_misses.load(), 1u);
  EXPECT_EQ(service->metrics().index_hits.load() +
                service->metrics().index_misses.load(),
            static_cast<uint64_t>(kClients * kPerClient));
  std::string json = service->MetricsJson();
  EXPECT_NE(json.find("\"requests\""), std::string::npos);
  EXPECT_NE(json.find("\"latency_us\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Line-protocol server + client
// ---------------------------------------------------------------------------

class LineServerTest : public QueryServiceTest {};

TEST_F(LineServerTest, EndToEndOverSocket) {
  auto service = MakeService();
  LineServer server(service.get(), LineServerOptions{});  // port 0
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  EXPECT_TRUE(client.Ping().ok());

  // SEARCH over the wire is bit-identical to the direct library call.
  const std::string& q = Queries()[0];
  auto resp = client.Search("docs", 10, 0, q);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  SearchOptions options;
  options.top_k = 10;
  Searcher direct;
  auto want = direct.Search(Docs(), "sig", q, options);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(resp.ValueOrDie().rows, SerializeRows(*want.ValueOrDie()));

  // Errors come back as ERR lines that rehydrate into typed Statuses.
  auto bad = client.Search("no_such_collection", 10, 0, q);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);

  auto spinql = client.Spinql(0, "PROJECT [$1] (docs)");
  ASSERT_TRUE(spinql.ok()) << spinql.status().ToString();
  EXPECT_EQ(spinql.ValueOrDie().rows.size(), static_cast<size_t>(kDocs));

  auto bad_spinql = client.Spinql(0, "SELECT [");
  ASSERT_FALSE(bad_spinql.ok());

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats.ValueOrDie().find("\"requests\""), std::string::npos);

  // Malformed command lines get an error, not a dropped connection.
  auto garbage = client.Call("BOGUS COMMAND");
  ASSERT_FALSE(garbage.ok());
  EXPECT_TRUE(client.Ping().ok());

  EXPECT_TRUE(client.Shutdown().ok());
  server.Stop();
  EXPECT_TRUE(server.stopping());
}

TEST_F(LineServerTest, TraceCommandAndTracedHeaders) {
  QueryServiceOptions opts;
  opts.trace_log_capacity = 4;
  auto service = MakeService(opts);
  LineServer server(service.get(), LineServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  // TRACE executes the query and returns the operator tree instead of
  // rows; the header carries the request's trace id. Run it first so the
  // materialization cache is cold and the full operator tree shows.
  auto traced = client.Trace(0, "TOPK [3] (PROJECT [$1] (docs))");
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();
  const auto& wire = traced.ValueOrDie();
  EXPECT_NE(wire.trace_id, 0u);
  ASSERT_FALSE(wire.rows.empty());
  EXPECT_EQ(wire.rows[0].rfind("request", 0), 0u) << wire.rows[0];
  std::string tree;
  for (const auto& row : wire.rows) tree += row + "\n";
  EXPECT_NE(tree.find("admission"), std::string::npos) << tree;
  EXPECT_NE(tree.find("topk"), std::string::npos) << tree;
  EXPECT_NE(tree.find("project"), std::string::npos) << tree;
  EXPECT_NE(tree.find(" ms"), std::string::npos) << tree;

  // Untraced requests carry no trace id.
  auto plain = client.Spinql(0, "TOPK [3] (PROJECT [$1] (docs))");
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_EQ(plain.ValueOrDie().trace_id, 0u);

  // Parse/eval errors in a traced expression surface as ERR.
  auto bad = client.Trace(0, "TOPK [");
  EXPECT_FALSE(bad.ok());

  // STATS includes the per-operator rollup once a traced request ran.
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.ValueOrDie().find("\"top_operators\""),
            std::string::npos);
  EXPECT_NE(stats.ValueOrDie().find("server/request"), std::string::npos);

  // The retained trace exports as Chrome trace-event JSON.
  std::string chrome = service->ExportChromeTraceJson();
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"pid\":" + std::to_string(wire.trace_id)),
            std::string::npos);

  server.Stop();
}

TEST_F(LineServerTest, ServiceWideTracingStampsEveryResponse) {
  QueryServiceOptions opts;
  opts.trace_requests = true;
  auto service = MakeService(opts);
  LineServer server(service.get(), LineServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  auto r1 = client.Search("docs", 5, 0, Queries()[0]);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  auto r2 = client.Spinql(0, "TOPK [2] (docs)");
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_NE(r1.ValueOrDie().trace_id, 0u);
  EXPECT_NE(r2.ValueOrDie().trace_id, 0u);
  EXPECT_NE(r1.ValueOrDie().trace_id, r2.ValueOrDie().trace_id);

  // Traced search results stay bit-identical to the direct library call.
  SearchOptions options;
  options.top_k = 5;
  Searcher direct;
  auto want = direct.Search(Docs(), "sig", Queries()[0], options);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(r1.ValueOrDie().rows, SerializeRows(*want.ValueOrDie()));

  server.Stop();
}

TEST_F(LineServerTest, ConcurrentSocketClients) {
  auto service = MakeService();
  LineServer server(service.get(), LineServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  // Warm the index once so the concurrent phase measures serving, then
  // compute the expected wire payloads.
  SearchOptions options;
  options.top_k = 10;
  Searcher direct;
  std::vector<std::vector<std::string>> want;
  for (const std::string& q : Queries()) {
    auto r = direct.Search(Docs(), "sig", q, options);
    ASSERT_TRUE(r.ok());
    want.push_back(SerializeRows(*r.ValueOrDie()));
  }

  constexpr int kClients = 8;
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      LineClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        bad.fetch_add(1);
        return;
      }
      for (size_t qi = 0; qi < Queries().size(); ++qi) {
        auto resp = client.Search("docs", 10, 0, Queries()[qi]);
        if (!resp.ok() || resp.ValueOrDie().rows != want[qi]) {
          bad.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);

  server.Stop();
}

TEST_F(LineServerTest, MetricsHealthAndSlowlogOverTheWire) {
  QueryServiceOptions opts;
  opts.slow_sample = 1;  // capture every request in the slow log
  auto service = MakeService(opts);
  LineServer server(service.get(), LineServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  const std::string& q = Queries()[0];
  ASSERT_TRUE(client.Search("docs", 5, 0, q).ok());

  // METRICS: valid Prometheus text that reflects the request just served.
  auto metrics = client.Call("METRICS");
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  std::string text;
  for (const auto& row : metrics.ValueOrDie().rows) text += row + "\n";
  EXPECT_NE(text.find("# TYPE spindle_requests_total counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("spindle_requests_total{outcome=\"ok\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("spindle_request_latency_us_bucket"),
            std::string::npos)
      << text;
  auto parsed = obs::ParsePrometheusText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_GT(parsed.ValueOrDie().size(), 5u);

  // HEALTH: one row, served without taking an admission slot.
  auto health = client.Call("HEALTH");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  ASSERT_EQ(health.ValueOrDie().rows.size(), 1u);
  EXPECT_NE(health.ValueOrDie().rows[0].find("ready=1"),
            std::string::npos)
      << health.ValueOrDie().rows[0];

  // SLOWLOG: the sampled request shows up with its query text.
  auto slowlog = client.Call("SLOWLOG");
  ASSERT_TRUE(slowlog.ok()) << slowlog.status().ToString();
  ASSERT_FALSE(slowlog.ValueOrDie().rows.empty());
  const std::string& entry = slowlog.ValueOrDie().rows.back();
  EXPECT_NE(entry.find("\"kind\":\"search\""), std::string::npos) << entry;
  EXPECT_NE(entry.find(q), std::string::npos) << entry;
  EXPECT_NE(entry.find("\"sampled\":true"), std::string::npos) << entry;

  server.Stop();
}

TEST_F(LineServerTest, TracepullReturnsSpansForTracedRequests) {
  QueryServiceOptions opts;
  opts.trace_requests = true;
  auto service = MakeService(opts);
  LineServer server(service.get(), LineServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  auto resp = client.Search("docs", 5, 0, Queries()[0]);
  ASSERT_TRUE(resp.ok());
  uint64_t id = resp.ValueOrDie().trace_id;
  ASSERT_NE(id, 0u);

  char hex[32];
  std::snprintf(hex, sizeof(hex), "%llx",
                static_cast<unsigned long long>(id));
  auto pull = client.Call(std::string("TRACEPULL ") + hex);
  ASSERT_TRUE(pull.ok()) << pull.status().ToString();
  const auto& rows = pull.ValueOrDie().rows;
  ASSERT_GE(rows.size(), 2u);
  EXPECT_EQ(rows[0].rfind("trace=", 0), 0u) << rows[0];
  auto payload = obs::SpanPayloadFromRows(rows);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  EXPECT_FALSE(payload.ValueOrDie().spans.empty());

  // Unknown and malformed ids are errors, not hangs.
  EXPECT_FALSE(client.Call("TRACEPULL ffffffffffffffff").ok());
  EXPECT_FALSE(client.Call("TRACEPULL zz").ok());
  EXPECT_FALSE(client.Call("TRACEPULL").ok());

  server.Stop();
}

TEST_F(LineServerTest, TraceTokenPropagatesAndStaysBitIdentical) {
  auto service = MakeService();  // tracing OFF service-wide
  LineServer server(service.get(), LineServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  const std::string& q = Queries()[0];

  // Baseline: the untraced request line (byte-identical to the pre-token
  // protocol since no ambient trace context is installed).
  auto plain = client.Search("docs", 10, 0, q);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.ValueOrDie().trace_id, 0u);

  // The same search carrying a foreign trace token: rows bit-identical,
  // spans recorded under the foreign id and pullable.
  auto traced =
      client.Call("SEARCH tid=deadbeef123:42 docs 10 0 " + q);
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();
  EXPECT_EQ(traced.ValueOrDie().rows, plain.ValueOrDie().rows);

  auto pull = client.Call("TRACEPULL deadbeef123");
  ASSERT_TRUE(pull.ok()) << pull.status().ToString();
  const auto& rows = pull.ValueOrDie().rows;
  ASSERT_GE(rows.size(), 2u);
  auto payload = obs::SpanPayloadFromRows(rows);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  EXPECT_EQ(payload.ValueOrDie().trace_id, 0xdeadbeef123ull);
  EXPECT_EQ(payload.ValueOrDie().parent_span, 42u);

  // A malformed token is rejected up front — it must never be misread as
  // a collection name.
  EXPECT_FALSE(client.Call("SEARCH tid=xyz docs 10 0 " + q).ok());
  EXPECT_FALSE(client.Call("SEARCH tid=1f docs 10 0 " + q).ok());

  server.Stop();
}

}  // namespace
}  // namespace server
}  // namespace spindle
