#include <gtest/gtest.h>

#include "engine/ops.h"
#include "storage/relation.h"

namespace spindle {
namespace {

RelationPtr Products() {
  RelationBuilder b({{"id", DataType::kInt64},
                     {"category", DataType::kString},
                     {"price", DataType::kFloat64}});
  auto add = [&](int64_t id, const char* cat, double price) {
    EXPECT_TRUE(b.AddRow({id, std::string(cat), price}).ok());
  };
  add(1, "toy", 10.0);
  add(2, "book", 5.0);
  add(3, "toy", 7.5);
  add(4, "food", 2.0);
  add(5, "toy", 1.0);
  return b.Build().ValueOrDie();
}

const FunctionRegistry& Reg() { return FunctionRegistry::Default(); }

TEST(FilterTest, SelectsMatchingRows) {
  auto rel = Products();
  auto pred = Expr::Eq(Expr::ColumnNamed("category"), Expr::LitString("toy"));
  RelationPtr out = Filter(rel, pred, Reg()).ValueOrDie();
  ASSERT_EQ(out->num_rows(), 3u);
  EXPECT_EQ(out->column(0).Int64At(0), 1);
  EXPECT_EQ(out->column(0).Int64At(1), 3);
  EXPECT_EQ(out->column(0).Int64At(2), 5);
}

TEST(FilterTest, ConstantPredicate) {
  auto rel = Products();
  RelationPtr all = Filter(rel, Expr::LitInt(1), Reg()).ValueOrDie();
  EXPECT_EQ(all->num_rows(), 5u);
  RelationPtr none = Filter(rel, Expr::LitInt(0), Reg()).ValueOrDie();
  EXPECT_EQ(none->num_rows(), 0u);
  EXPECT_TRUE(none->schema().Equals(rel->schema()));
}

TEST(FilterTest, NonBooleanPredicateRejected) {
  auto rel = Products();
  auto r = Filter(rel, Expr::LitString("x"), Reg());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeMismatch);
}

TEST(ProjectTest, ColumnsShareBuffers) {
  auto rel = Products();
  RelationPtr out = ProjectColumns(rel, {2, 0}).ValueOrDie();
  ASSERT_EQ(out->num_columns(), 2u);
  EXPECT_EQ(out->schema().field(0).name, "price");
  // Buffer sharing: same underlying column object.
  EXPECT_EQ(out->column_ptr(0).get(), rel->column_ptr(2).get());
}

TEST(ProjectTest, Renames) {
  auto rel = Products();
  RelationPtr out = ProjectColumns(rel, {0}, {"docID"}).ValueOrDie();
  EXPECT_EQ(out->schema().field(0).name, "docID");
}

TEST(ProjectTest, ExprProjection) {
  auto rel = Products();
  RelationPtr out =
      ProjectExprs(rel,
                   {Expr::ColumnNamed("id"),
                    Expr::Mul(Expr::ColumnNamed("price"), Expr::LitFloat(2))},
                   {"id", "double_price"}, Reg())
          .ValueOrDie();
  EXPECT_DOUBLE_EQ(out->column(1).Float64At(0), 20.0);
  EXPECT_EQ(out->schema().field(1).name, "double_price");
}

TEST(ProjectTest, BroadcastLiteralExpands) {
  auto rel = Products();
  RelationPtr out =
      ProjectExprs(rel, {Expr::LitInt(9)}, {"nine"}, Reg()).ValueOrDie();
  ASSERT_EQ(out->num_rows(), 5u);
  EXPECT_EQ(out->column(0).Int64At(4), 9);
}

RelationPtr Orders() {
  RelationBuilder b(
      {{"product_id", DataType::kInt64}, {"qty", DataType::kInt64}});
  EXPECT_TRUE(b.AddRow({int64_t{1}, int64_t{2}}).ok());
  EXPECT_TRUE(b.AddRow({int64_t{3}, int64_t{1}}).ok());
  EXPECT_TRUE(b.AddRow({int64_t{1}, int64_t{5}}).ok());
  EXPECT_TRUE(b.AddRow({int64_t{9}, int64_t{1}}).ok());
  return b.Build().ValueOrDie();
}

TEST(HashJoinTest, InnerJoin) {
  auto joined =
      HashJoin(Orders(), Products(), {{0, 0}}, JoinType::kInner).ValueOrDie();
  // Orders 1,3,1 match products; order for product 9 does not.
  ASSERT_EQ(joined->num_rows(), 3u);
  ASSERT_EQ(joined->num_columns(), 5u);
  // Left-row order preserved.
  EXPECT_EQ(joined->column(0).Int64At(0), 1);
  EXPECT_EQ(joined->column(0).Int64At(1), 3);
  EXPECT_EQ(joined->column(0).Int64At(2), 1);
  // Right payload attached.
  EXPECT_EQ(joined->column(3).StringAt(1), "toy");
}

TEST(HashJoinTest, SemiAndAnti) {
  auto semi =
      HashJoin(Orders(), Products(), {{0, 0}}, JoinType::kLeftSemi)
          .ValueOrDie();
  ASSERT_EQ(semi->num_rows(), 3u);
  EXPECT_EQ(semi->num_columns(), 2u);

  auto anti =
      HashJoin(Orders(), Products(), {{0, 0}}, JoinType::kLeftAnti)
          .ValueOrDie();
  ASSERT_EQ(anti->num_rows(), 1u);
  EXPECT_EQ(anti->column(0).Int64At(0), 9);
}

TEST(HashJoinTest, MultiKeyAndStringKeys) {
  RelationBuilder l({{"k", DataType::kString}, {"v", DataType::kInt64}});
  ASSERT_TRUE(l.AddRow({std::string("a"), int64_t{1}}).ok());
  ASSERT_TRUE(l.AddRow({std::string("a"), int64_t{2}}).ok());
  RelationBuilder r({{"k", DataType::kString}, {"v", DataType::kInt64}});
  ASSERT_TRUE(r.AddRow({std::string("a"), int64_t{2}}).ok());
  ASSERT_TRUE(r.AddRow({std::string("b"), int64_t{2}}).ok());
  auto out = HashJoin(l.Build().ValueOrDie(), r.Build().ValueOrDie(),
                      {{0, 0}, {1, 1}})
                 .ValueOrDie();
  ASSERT_EQ(out->num_rows(), 1u);
  EXPECT_EQ(out->column(1).Int64At(0), 2);
}

TEST(HashJoinTest, KeyTypeMismatchRejected) {
  auto r = HashJoin(Orders(), Products(), {{0, 1}});
  EXPECT_EQ(r.status().code(), StatusCode::kTypeMismatch);
}

TEST(HashJoinTest, DuplicateKeysProduceCrossMatches) {
  RelationBuilder l({{"k", DataType::kInt64}});
  RelationBuilder r({{"k", DataType::kInt64}});
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(l.AddRow({int64_t{7}}).ok());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(r.AddRow({int64_t{7}}).ok());
  auto out =
      HashJoin(l.Build().ValueOrDie(), r.Build().ValueOrDie(), {{0, 0}})
          .ValueOrDie();
  EXPECT_EQ(out->num_rows(), 6u);
}

TEST(GroupAggregateTest, CountSumAvgMinMax) {
  auto rel = Products();
  auto out = GroupAggregate(rel, {1},
                            {{AggKind::kCount, 0, "n"},
                             {AggKind::kSum, 2, "total"},
                             {AggKind::kAvg, 2, "mean"},
                             {AggKind::kMin, 2, "lo"},
                             {AggKind::kMax, 2, "hi"}})
                 .ValueOrDie();
  // Groups in first-appearance order: toy, book, food.
  ASSERT_EQ(out->num_rows(), 3u);
  EXPECT_EQ(out->column(0).StringAt(0), "toy");
  EXPECT_EQ(out->column(1).Int64At(0), 3);
  EXPECT_DOUBLE_EQ(out->column(2).Float64At(0), 18.5);
  EXPECT_DOUBLE_EQ(out->column(3).Float64At(0), 18.5 / 3);
  EXPECT_DOUBLE_EQ(out->column(4).Float64At(0), 1.0);
  EXPECT_DOUBLE_EQ(out->column(5).Float64At(0), 10.0);
}

TEST(GroupAggregateTest, IntSumStaysInt) {
  auto out = GroupAggregate(Orders(), {0}, {{AggKind::kSum, 1, "qty"}})
                 .ValueOrDie();
  EXPECT_EQ(out->schema().field(1).type, DataType::kInt64);
  EXPECT_EQ(out->column(1).Int64At(0), 7);  // product 1: 2+5
}

TEST(GroupAggregateTest, GlobalAggregate) {
  auto out =
      GroupAggregate(Products(), {}, {{AggKind::kCount, 0, "n"}}).ValueOrDie();
  ASSERT_EQ(out->num_rows(), 1u);
  EXPECT_EQ(out->column(0).Int64At(0), 5);
}

TEST(GroupAggregateTest, GlobalAggregateOnEmptyInput) {
  RelationPtr empty = Relation::Empty(Schema({{"x", DataType::kInt64}}));
  auto out =
      GroupAggregate(empty, {}, {{AggKind::kCount, 0, "n"}}).ValueOrDie();
  ASSERT_EQ(out->num_rows(), 1u);
  EXPECT_EQ(out->column(0).Int64At(0), 0);
}

TEST(GroupAggregateTest, MinMaxOnStrings) {
  auto out = GroupAggregate(Products(), {},
                            {{AggKind::kMin, 1, "first"},
                             {AggKind::kMax, 1, "last"}})
                 .ValueOrDie();
  EXPECT_EQ(out->column(0).StringAt(0), "book");
  EXPECT_EQ(out->column(1).StringAt(0), "toy");
}

TEST(GroupAggregateTest, SumOnStringRejected) {
  auto r = GroupAggregate(Products(), {}, {{AggKind::kSum, 1, "bad"}});
  EXPECT_EQ(r.status().code(), StatusCode::kTypeMismatch);
}

TEST(DistinctTest, AllColumns) {
  RelationBuilder b({{"a", DataType::kInt64}, {"b", DataType::kString}});
  ASSERT_TRUE(b.AddRow({int64_t{1}, std::string("x")}).ok());
  ASSERT_TRUE(b.AddRow({int64_t{1}, std::string("x")}).ok());
  ASSERT_TRUE(b.AddRow({int64_t{1}, std::string("y")}).ok());
  auto out = Distinct(b.Build().ValueOrDie()).ValueOrDie();
  EXPECT_EQ(out->num_rows(), 2u);
}

TEST(DistinctTest, SubsetProjectsAndDedups) {
  auto out = Distinct(Products(), {1}).ValueOrDie();
  ASSERT_EQ(out->num_columns(), 1u);
  ASSERT_EQ(out->num_rows(), 3u);
  EXPECT_EQ(out->column(0).StringAt(0), "toy");  // first-appearance order
  EXPECT_EQ(out->column(0).StringAt(1), "book");
}

TEST(SortTest, StableMultiKey) {
  auto out = SortBy(Products(), {{1, false}, {2, true}}).ValueOrDie();
  // Sorted by category asc, price desc.
  EXPECT_EQ(out->column(1).StringAt(0), "book");
  EXPECT_EQ(out->column(1).StringAt(1), "food");
  EXPECT_EQ(out->column(1).StringAt(2), "toy");
  EXPECT_DOUBLE_EQ(out->column(2).Float64At(2), 10.0);
  EXPECT_DOUBLE_EQ(out->column(2).Float64At(4), 1.0);
}

TEST(TopKTest, ReturnsKLargest) {
  auto out = TopK(Products(), {2, true}, 2).ValueOrDie();
  ASSERT_EQ(out->num_rows(), 2u);
  EXPECT_DOUBLE_EQ(out->column(2).Float64At(0), 10.0);
  EXPECT_DOUBLE_EQ(out->column(2).Float64At(1), 7.5);
}

TEST(TopKTest, KLargerThanInput) {
  auto out = TopK(Products(), {2, false}, 100).ValueOrDie();
  EXPECT_EQ(out->num_rows(), 5u);
  EXPECT_DOUBLE_EQ(out->column(2).Float64At(0), 1.0);
}

TEST(UnionTest, AppendsCompatibleInputs) {
  auto rel = Products();
  auto out = UnionAll({rel, rel}).ValueOrDie();
  EXPECT_EQ(out->num_rows(), 10u);
}

TEST(UnionTest, IncompatibleRejected) {
  auto r = UnionAll({Products(), Orders()});
  EXPECT_EQ(r.status().code(), StatusCode::kTypeMismatch);
}

TEST(LimitTest, TruncatesAndPassesThrough) {
  EXPECT_EQ(Limit(Products(), 2).ValueOrDie()->num_rows(), 2u);
  EXPECT_EQ(Limit(Products(), 99).ValueOrDie()->num_rows(), 5u);
}

TEST(WithRowNumberTest, NumbersFromOne) {
  auto out = WithRowNumber(Products(), "rn").ValueOrDie();
  ASSERT_EQ(out->num_columns(), 4u);
  EXPECT_EQ(out->schema().field(3).name, "rn");
  EXPECT_EQ(out->column(3).Int64At(0), 1);
  EXPECT_EQ(out->column(3).Int64At(4), 5);
}

// --- Dictionary-encoded string columns through the engine kernels. ---

RelationPtr DictProducts() { return DictEncodeStringColumns(Products()); }

TEST(DictOpsTest, JoinOnSharedDictKeysMatchesPlain) {
  RelationBuilder b({{"category", DataType::kString},
                     {"tax", DataType::kFloat64}});
  ASSERT_TRUE(b.AddRow({std::string("toy"), 0.2}).ok());
  ASSERT_TRUE(b.AddRow({std::string("food"), 0.1}).ok());
  RelationPtr rates = b.Build().ValueOrDie();

  auto plain = HashJoin(Products(), rates, {{1, 0}}).ValueOrDie();
  // Every representation pairing must produce the same join result.
  for (const auto& [l, r] :
       {std::pair{DictProducts(), rates},
        std::pair{Products(), DictEncodeStringColumns(rates)},
        std::pair{DictProducts(), DictEncodeStringColumns(rates)}}) {
    auto out = HashJoin(l, r, {{1, 0}}).ValueOrDie();
    EXPECT_TRUE(out->Equals(*plain));
  }
}

TEST(DictOpsTest, JoinAcrossDifferentDictsRecodes) {
  // Two independently-built dicts: same strings get different codes, so a
  // correct join must go through RecodeToShared, not raw codes.
  RelationPtr left = DictProducts();
  RelationBuilder b({{"category", DataType::kString},
                     {"rank", DataType::kInt64}});
  ASSERT_TRUE(b.AddRow({std::string("food"), int64_t{1}}).ok());
  ASSERT_TRUE(b.AddRow({std::string("toy"), int64_t{2}}).ok());
  ASSERT_TRUE(b.AddRow({std::string("game"), int64_t{3}}).ok());
  RelationPtr right = DictEncodeStringColumns(b.Build().ValueOrDie());
  ASSERT_NE(left->column(1).dict().get(), right->column(0).dict().get());

  auto out = HashJoin(left, right, {{1, 0}}).ValueOrDie();
  ASSERT_EQ(out->num_rows(), 4u);  // 3 toys + 1 food; "game" unmatched
  for (size_t r = 0; r < out->num_rows(); ++r) {
    EXPECT_EQ(out->column(1).StringAt(r), out->column(3).StringAt(r));
  }
}

TEST(DictOpsTest, RecodeToSharedAgreesWithStringEquality) {
  Column a = Column::MakeString({"x", "y", "z", "x"}).DictEncode();
  Column b = Column::MakeString({"y", "w", "x"}).DictEncode();
  auto recoded = RecodeToShared(a, b);
  ASSERT_TRUE(recoded.has_value());
  const auto& [ra, rb] = *recoded;
  ASSERT_EQ(ra.size(), a.size());
  ASSERT_EQ(rb.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) {
      EXPECT_EQ(ra.Int64At(i) == rb.Int64At(j),
                a.StringAt(i) == b.StringAt(j))
          << "i=" << i << " j=" << j;
    }
  }
  // Neither side encoded: nothing to do.
  Column p = Column::MakeString({"x"});
  EXPECT_FALSE(RecodeToShared(p, p).has_value());
}

TEST(DictOpsTest, GroupAggregateOnDictKeys) {
  auto plain = GroupAggregate(Products(), {1},
                              {{AggKind::kCount, 0, "n"},
                               {AggKind::kSum, 2, "total"}})
                   .ValueOrDie();
  auto dict = GroupAggregate(DictProducts(), {1},
                             {{AggKind::kCount, 0, "n"},
                              {AggKind::kSum, 2, "total"}})
                  .ValueOrDie();
  EXPECT_TRUE(dict->Equals(*plain));
  // The group-key output column still shares the input dict.
  EXPECT_TRUE(dict->column(0).dict_encoded());
}

TEST(DictOpsTest, DistinctOnDictKeys) {
  auto out = Distinct(DictProducts(), {1}).ValueOrDie();
  EXPECT_TRUE(out->Equals(*Distinct(Products(), {1}).ValueOrDie()));
}

TEST(DictOpsTest, SortByDictColumnMatchesPlain) {
  auto plain = SortBy(Products(), {{1, false}, {2, true}}).ValueOrDie();
  auto dict = SortBy(DictProducts(), {{1, false}, {2, true}}).ValueOrDie();
  EXPECT_TRUE(dict->Equals(*plain));
  auto desc = SortBy(DictProducts(), {{1, true}}).ValueOrDie();
  EXPECT_EQ(desc->column(1).StringAt(0), "toy");
  EXPECT_EQ(desc->column(1).StringAt(4), "book");
}

TEST(DictOpsTest, EmptyRelationEdgeCases) {
  RelationPtr empty =
      Filter(DictProducts(), Expr::LitInt(0), Reg()).ValueOrDie();
  ASSERT_EQ(empty->num_rows(), 0u);
  EXPECT_EQ(HashJoin(empty, DictProducts(), {{1, 1}})
                .ValueOrDie()
                ->num_rows(),
            0u);
  EXPECT_EQ(HashJoin(DictProducts(), empty, {{1, 1}})
                .ValueOrDie()
                ->num_rows(),
            0u);
  EXPECT_EQ(Distinct(empty, {1}).ValueOrDie()->num_rows(), 0u);
  EXPECT_EQ(SortBy(empty, {{1, false}}).ValueOrDie()->num_rows(), 0u);
  EXPECT_EQ(TopK(empty, {2, true}, 3).ValueOrDie()->num_rows(), 0u);
}

TEST(DictOpsTest, DictSharedThroughFilterJoinTopKPipeline) {
  RelationPtr products = DictProducts();
  const StringDict* dict = products->column(1).dict().get();
  ASSERT_NE(dict, nullptr);

  auto cheap = Filter(products,
                      Expr::Lt(Expr::ColumnNamed("price"), Expr::LitFloat(9)),
                      Reg())
                   .ValueOrDie();
  ASSERT_EQ(cheap->num_rows(), 4u);
  EXPECT_EQ(cheap->column(1).dict().get(), dict);

  auto joined = HashJoin(Orders(), cheap, {{0, 0}}).ValueOrDie();
  ASSERT_EQ(joined->num_rows(), 1u);  // only product 3 is cheap & ordered
  EXPECT_EQ(joined->column(3).dict().get(), dict);

  auto top = TopK(joined, {1, true}, 5).ValueOrDie();
  ASSERT_GE(top->num_rows(), 1u);
  // The very same StringDict instance survived Filter -> Join -> TopK:
  // no string was copied anywhere along the pipeline.
  EXPECT_EQ(top->column(3).dict().get(), dict);
  EXPECT_EQ(top->column(3).StringAt(0), "toy");
}

}  // namespace
}  // namespace spindle
