/// \file obs_test.cc
/// \brief Tests for the query-level tracing subsystem: span recording and
/// nesting, cross-thread parent linkage through ParallelFor/TaskGroup,
/// concurrent emission, the zero-cost disabled path (bit-identical
/// results), EXPLAIN ANALYZE tree shape, Chrome trace-event export and
/// the STATS aggregator.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/materialization_cache.h"
#include "exec/exec_context.h"
#include "exec/scheduler.h"
#include "ir/searcher.h"
#include "obs/span_wire.h"
#include "obs/trace.h"
#include "server/line_server.h"
#include "spinql/evaluator.h"
#include "storage/catalog.h"
#include "storage/relation.h"
#include "workload/text_gen.h"

namespace spindle {
namespace {

using obs::ScopedTracer;
using obs::Span;
using obs::SpanRecord;
using obs::TraceAggregator;
using obs::Tracer;
using obs::TreeOptions;

std::map<std::string, SpanRecord> ByName(const Tracer& tracer) {
  std::map<std::string, SpanRecord> out;
  for (const SpanRecord& s : tracer.Snapshot()) out[s.name] = s;
  return out;
}

// ---------------------------------------------------------------------------
// Core span mechanics

TEST(TracerTest, RecordsNestedSpansWithCountersAndNotes) {
  Tracer tracer;
  {
    ScopedTracer scope(&tracer);
    ASSERT_TRUE(obs::TracingActive());
    Span outer("spinql", "topk");
    outer.Add("rows", 10);
    outer.Add("rows", 5);  // repeated key accumulates
    outer.Note("cache", "miss");
    {
      Span inner("engine", "top_k");
      inner.Add("k", 3);
    }
    obs::Event("cache", "hit");
  }
  EXPECT_FALSE(obs::TracingActive());

  auto spans = ByName(tracer);
  ASSERT_EQ(spans.size(), 3u);
  const SpanRecord& outer = spans.at("topk");
  const SpanRecord& inner = spans.at("top_k");
  const SpanRecord& hit = spans.at("hit");
  EXPECT_EQ(outer.parent, 0u);
  EXPECT_EQ(inner.parent, outer.id);
  EXPECT_EQ(hit.parent, outer.id);  // Event under innermost open span
  EXPECT_TRUE(hit.instant);
  EXPECT_GT(outer.end_ns, 0u);
  EXPECT_GE(outer.duration_ns(), inner.duration_ns());
  ASSERT_EQ(outer.counters.size(), 1u);
  EXPECT_STREQ(outer.counters[0].first, "rows");
  EXPECT_EQ(outer.counters[0].second, 15);
  ASSERT_EQ(outer.notes.size(), 1u);
  EXPECT_EQ(outer.notes[0].second, "miss");
}

TEST(TracerTest, InactiveWithoutAmbientTracer) {
  Span span("engine", "filter");
  EXPECT_FALSE(span.active());
  span.Add("rows", 1);       // all no-ops
  span.Note("cache", "hit");
  obs::Event("cache", "miss");
  EXPECT_EQ(obs::CurrentTraceContext().tracer, nullptr);
}

TEST(TracerTest, SpanCapCountsDropped) {
  Tracer tracer(/*max_spans=*/2);
  {
    ScopedTracer scope(&tracer);
    Span a("t", "a");
    Span b("t", "b");
    Span c("t", "c");  // over the cap: dropped, inactive
    EXPECT_TRUE(a.active());
    EXPECT_FALSE(c.active());
  }
  EXPECT_EQ(tracer.num_spans(), 2u);
  EXPECT_GE(tracer.dropped(), 1u);
}

TEST(TracerTest, ScopedTracerNestsAndRestores) {
  Tracer outer_tracer, inner_tracer;
  ScopedTracer a(&outer_tracer);
  Span outer("t", "outer");
  {
    // A nested tracer starts a fresh span stack (parent resets to root)
    // and restores the outer tracer *and* its open span on exit.
    ScopedTracer b(&inner_tracer);
    Span inner("t", "inner");
    EXPECT_EQ(obs::CurrentTraceContext().tracer, &inner_tracer);
  }
  EXPECT_EQ(obs::CurrentTraceContext().tracer, &outer_tracer);
  Span sibling("t", "sibling");
  auto inner_spans = ByName(inner_tracer);
  EXPECT_EQ(inner_spans.at("inner").parent, 0u);
  auto outer_spans = ByName(outer_tracer);
  EXPECT_EQ(outer_spans.at("sibling").parent, outer_spans.at("outer").id);
}

// ---------------------------------------------------------------------------
// Cross-thread propagation

class ParallelForSpanTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelForSpanTest, MorselSpansLinkToSpawningSpan) {
  const int threads = GetParam();
  Tracer tracer;
  const size_t n = 10000;  // several morsels at the 8192-row grid
  {
    ScopedTracer scope(&tracer);
    Span root("test", "query");
    ExecContext ctx(threads);
    std::atomic<size_t> rows{0};
    ParallelFor(ctx, n, [&](size_t begin, size_t end, size_t) {
      rows.fetch_add(end - begin, std::memory_order_relaxed);
    });
    EXPECT_EQ(rows.load(), n);
  }

  std::vector<SpanRecord> spans = tracer.Snapshot();
  uint64_t root_id = 0;
  for (const SpanRecord& s : spans) {
    if (s.name == "query") root_id = s.id;
  }
  ASSERT_NE(root_id, 0u);
  // Every morsel span must reach the root through recorded parents —
  // on pool workers via the forwarded "task" span, inline via root
  // directly — regardless of thread count.
  std::map<uint64_t, uint64_t> parent_of;
  for (const SpanRecord& s : spans) parent_of[s.id] = s.parent;
  size_t morsels = 0;
  for (const SpanRecord& s : spans) {
    if (s.name != "morsel") continue;
    ++morsels;
    uint64_t p = s.id;
    while (p != 0 && p != root_id) p = parent_of[p];
    EXPECT_EQ(p, root_id) << "morsel span detached from query root";
  }
  EXPECT_EQ(morsels, NumMorsels(ExecContext(threads), n));
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelForSpanTest,
                         ::testing::Values(1, 2, 8));

TEST(TracerTest, ConcurrentEmissionFromManyThreads) {
  Tracer tracer;
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 500;
  {
    ScopedTracer scope(&tracer);
    Span root("test", "root");
    const obs::TraceContext ctx = obs::CurrentTraceContext();
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([ctx] {
        obs::ScopedTraceContext install(ctx);
        for (int i = 0; i < kSpansPerThread; ++i) {
          Span s("test", "work");
          s.Add("i", i);
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  EXPECT_EQ(tracer.num_spans(), 1u + kThreads * kSpansPerThread);
  EXPECT_EQ(tracer.dropped(), 0u);
  // Lanes: root thread plus up to kThreads distinct worker lanes.
  std::vector<SpanRecord> spans = tracer.Snapshot();
  uint64_t root_id = spans.front().id;
  for (const SpanRecord& s : spans) {
    if (s.name == "work") EXPECT_EQ(s.parent, root_id);
  }
}

// ---------------------------------------------------------------------------
// Disabled path is bit-identical

TEST(TracerTest, DisabledTracingIsBitIdentical) {
  TextCollectionOptions gen;
  gen.num_docs = 500;
  gen.vocab_size = 2000;
  auto docs_r = GenerateTextCollection(gen);
  ASSERT_TRUE(docs_r.ok());
  RelationPtr docs = docs_r.MoveValueOrDie();
  std::string query = GenerateQueries(gen, 1, 2)[0];

  auto run = [&](Tracer* tracer) -> RelationPtr {
    ScopedTracer scope(tracer);
    Searcher searcher;
    SearchOptions options;
    options.top_k = 10;
    auto r = searcher.Search(docs, "sig", query, options);
    EXPECT_TRUE(r.ok());
    return r.MoveValueOrDie();
  };

  RelationPtr plain = run(nullptr);
  Tracer tracer;
  RelationPtr traced = run(&tracer);
  EXPECT_GT(tracer.num_spans(), 0u);

  // %.17g serialization makes float64 comparison exact, so equal rows
  // means bit-identical scores.
  EXPECT_EQ(server::SerializeRows(*plain), server::SerializeRows(*traced));
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TextCollectionOptions gen;
    gen.num_docs = 200;
    auto docs = GenerateTextCollection(gen);
    ASSERT_TRUE(docs.ok());
    catalog_.RegisterEncoded("docs", docs.MoveValueOrDie());
  }

  Catalog catalog_;
  MaterializationCache cache_{64u << 20};
};

TEST_F(ExplainAnalyzeTest, PrintsOperatorTreeWithTimesAndCache) {
  spinql::Evaluator ev(&catalog_, &cache_);
  auto tree = ev.ExplainAnalyze(
      "EXPLAIN ANALYZE TOPK [5] (PROJECT [$1] (docs))");
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  const std::string& t = tree.ValueOrDie();
  // Operator lines, nested two spaces per depth, with wall time and
  // rows/cache annotations.
  EXPECT_NE(t.find("topk"), std::string::npos) << t;
  EXPECT_NE(t.find("\n  project"), std::string::npos) << t;
  EXPECT_NE(t.find(" ms"), std::string::npos) << t;
  EXPECT_NE(t.find("rows_out=5"), std::string::npos) << t;
  EXPECT_NE(t.find("cache=miss"), std::string::npos) << t;
  // engine/exec spans are filtered from the operator tree by default.
  EXPECT_EQ(t.find("morsel"), std::string::npos) << t;

  // Second run: same query is served from the materialization cache.
  auto again = ev.ExplainAnalyze(
      "explain analyze TOPK [5] (PROJECT [$1] (docs))");
  ASSERT_TRUE(again.ok());
  EXPECT_NE(again.ValueOrDie().find("cache=hit"), std::string::npos)
      << again.ValueOrDie();
}

TEST_F(ExplainAnalyzeTest, PrefixIsOptionalAndErrorsPropagate) {
  spinql::Evaluator ev(&catalog_, &cache_);
  EXPECT_TRUE(ev.ExplainAnalyze("TOPK [2] (docs)").ok());
  EXPECT_FALSE(ev.ExplainAnalyze("EXPLAIN ANALYZE TOPK [").ok());
}

// ---------------------------------------------------------------------------
// Chrome export

TEST(ChromeExportTest, ExportsValidStructureWithLanesAndArgs) {
  Tracer tracer;
  {
    ScopedTracer scope(&tracer);
    Span root("server", "request");
    root.Add("rows", 2);
    root.Note("status", "OK");
    Span child("engine", "filter");
    obs::Event("cache", "hit");
  }
  std::string json = tracer.ExportChromeTrace();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json;
  EXPECT_EQ(json[json.find_last_not_of('\n')], '}');
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // metadata
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // complete
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant
  EXPECT_NE(json.find("\"cat\":\"engine\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\":2"), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"OK\""), std::string::npos);

  // Multi-tracer export: one Chrome pid per tracer.
  auto t1 = std::make_shared<Tracer>();
  auto t2 = std::make_shared<Tracer>();
  for (auto& t : {t1, t2}) {
    ScopedTracer scope(t.get());
    Span s("server", "request");
  }
  std::string merged = obs::ExportChromeTrace(
      {std::static_pointer_cast<const Tracer>(t1),
       std::static_pointer_cast<const Tracer>(t2)});
  EXPECT_NE(merged.find("\"pid\":" + std::to_string(t1->trace_id())),
            std::string::npos);
  EXPECT_NE(merged.find("\"pid\":" + std::to_string(t2->trace_id())),
            std::string::npos);
}

TEST(ChromeExportTest, EscapesJsonStrings) {
  EXPECT_EQ(obs::EscapeJson("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  Tracer tracer;
  {
    ScopedTracer scope(&tracer);
    Span s("t", "quote\"name");
    s.Note("key", "tab\there");
  }
  std::string json = tracer.ExportChromeTrace();
  EXPECT_NE(json.find("quote\\\"name"), std::string::npos);
  EXPECT_NE(json.find("tab\\there"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Aggregator

TEST(TraceAggregatorTest, RollsUpByCategoryAndName) {
  Tracer tracer;
  {
    ScopedTracer scope(&tracer);
    { Span s("engine", "filter"); }
    { Span s("engine", "filter"); }
    { Span s("ir", "search"); }
    obs::Event("cache", "hit");  // instants are excluded from rollups
  }
  TraceAggregator agg;
  agg.Merge(tracer);
  auto top = agg.Top(10);
  ASSERT_EQ(top.size(), 2u);
  auto filter = std::find_if(top.begin(), top.end(), [](const auto& o) {
    return o.op == "engine/filter";
  });
  ASSERT_NE(filter, top.end());
  EXPECT_EQ(filter->count, 2u);
  EXPECT_GE(filter->max_ns, 0u);

  std::string json = agg.TopJson(1);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"op\":"), std::string::npos);
  EXPECT_NE(json.find("\"mean_us\":"), std::string::npos);
}

// ---------------------------------------------------------------------------
// RenderTree

TEST(RenderTreeTest, FiltersExecAndReattachesOrphans) {
  Tracer tracer;
  {
    ScopedTracer scope(&tracer);
    Span root("spinql", "select");
    {
      Span task("exec", "task");  // filtered out by default
      Span morsel("engine", "filter");  // must reattach under select
      (void)task;
      (void)morsel;
    }
  }
  std::string tree = tracer.RenderTree();
  EXPECT_EQ(tree.find("task"), std::string::npos) << tree;
  // filter's recorded parent (task) is excluded: it indents under select.
  EXPECT_NE(tree.find("\n  filter"), std::string::npos) << tree;

  TreeOptions all;
  all.include_exec = true;
  std::string full = tracer.RenderTree(all);
  EXPECT_NE(full.find("task"), std::string::npos) << full;
}

// ---------------------------------------------------------------------------
// Span wire + ImportSpans (distributed trace splicing)

TEST(SpanWireTest, PayloadRoundTripsExactly) {
  Tracer tracer;
  {
    ScopedTracer scope(&tracer);
    Span root("server", "request");
    root.Add("rows", 7);
    root.Note("model", "bm25");
    {
      Span child("engine", "top k");  // space forces percent-encoding
      child.Note("q", "a%b c\nd");
    }
    obs::Event("cache", "hit");
  }
  obs::SpanPayload payload;
  payload.trace_id = 0xabc123;
  payload.parent_span = 9;
  payload.now_ns = obs::NowNs();
  payload.dropped = 1;
  payload.spans = tracer.Snapshot();

  std::vector<std::string> rows = obs::SpanPayloadToRows(payload);
  ASSERT_EQ(rows.size(), 1 + payload.spans.size());
  EXPECT_EQ(rows[0].rfind("trace=abc123 parent=9 ", 0), 0u) << rows[0];

  auto back = obs::SpanPayloadFromRows(rows);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  const obs::SpanPayload& got = back.ValueOrDie();
  EXPECT_EQ(got.trace_id, payload.trace_id);
  EXPECT_EQ(got.parent_span, payload.parent_span);
  EXPECT_EQ(got.now_ns, payload.now_ns);
  EXPECT_EQ(got.dropped, payload.dropped);
  ASSERT_EQ(got.spans.size(), payload.spans.size());
  for (size_t i = 0; i < payload.spans.size(); ++i) {
    const SpanRecord& a = payload.spans[i];
    const SpanRecord& b = got.spans[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.parent, b.parent);
    EXPECT_EQ(a.lane, b.lane);
    EXPECT_EQ(a.instant, b.instant);
    EXPECT_EQ(a.start_ns, b.start_ns);
    EXPECT_EQ(a.end_ns, b.end_ns);
    EXPECT_STREQ(a.category, b.category);
    EXPECT_EQ(a.name, b.name);
    ASSERT_EQ(a.counters.size(), b.counters.size());
    for (size_t c = 0; c < a.counters.size(); ++c) {
      EXPECT_STREQ(a.counters[c].first, b.counters[c].first);
      EXPECT_EQ(a.counters[c].second, b.counters[c].second);
    }
    ASSERT_EQ(a.notes.size(), b.notes.size());
    for (size_t n = 0; n < a.notes.size(); ++n) {
      EXPECT_STREQ(a.notes[n].first, b.notes[n].first);
      EXPECT_EQ(a.notes[n].second, b.notes[n].second);
    }
  }
}

TEST(SpanWireTest, RejectsMalformedRows) {
  EXPECT_FALSE(obs::SpanPayloadFromRows({}).ok());
  EXPECT_FALSE(obs::SpanPayloadFromRows({"not a header"}).ok());
  EXPECT_FALSE(obs::SpanPayloadFromRows(
                   {"trace=1 parent=0 now=5 spans=1 dropped=0",
                    "1 0 0"})  // truncated span row
                   .ok());
}

TEST(ImportSpansTest, RemapsIdsShiftsClocksAndNamesLanes) {
  // A "shard" trace whose clock sits 1 ms behind the importer's.
  Tracer shard;
  {
    ScopedTracer scope(&shard);
    Span root("server", "request");
    { Span child("engine", "score"); }
  }
  std::vector<SpanRecord> foreign = shard.Snapshot();
  ASSERT_EQ(foreign.size(), 2u);

  Tracer coord;
  uint64_t attach = 0;
  {
    ScopedTracer scope(&coord);
    Span wait("coord", "shard_wait");
    attach = wait.id();
  }
  const int64_t offset_ns = 1000000;
  size_t imported =
      coord.ImportSpans(foreign, attach, offset_ns, "shard0",
                        {{"shard", "shard0"}, {"skew_ns", "0"}});
  EXPECT_EQ(imported, 2u);

  auto spans = ByName(coord);
  const SpanRecord& wait = spans.at("shard_wait");
  const SpanRecord& root = spans.at("request");
  const SpanRecord& child = spans.at("score");
  // Foreign roots attach under the wait span; the child keeps its
  // (remapped) parent.
  EXPECT_EQ(root.parent, wait.id);
  EXPECT_EQ(child.parent, root.id);
  EXPECT_NE(root.id, foreign[0].id);
  // Timestamps shifted onto the importer's clock.
  EXPECT_EQ(root.start_ns, foreign[0].start_ns + offset_ns);
  EXPECT_EQ(child.end_ns, foreign[1].end_ns + offset_ns);
  // Root annotations applied to the imported root only.
  bool root_has_shard_note = false;
  for (const auto& [k, v] : root.notes) {
    if (std::string(k) == "shard") root_has_shard_note = v == "shard0";
  }
  EXPECT_TRUE(root_has_shard_note);
  for (const auto& [k, v] : child.notes) {
    EXPECT_NE(std::string(k), "shard") << v;
  }
  // The imported lane is fresh (not the importer's lane 0) and the
  // Chrome export labels it.
  EXPECT_NE(root.lane, wait.lane);
  EXPECT_EQ(root.lane, child.lane);
  std::string chrome = coord.ExportChromeTrace();
  EXPECT_NE(chrome.find("shard0"), std::string::npos) << chrome;
}

TEST(ImportSpansTest, OpenSpansStayOpenAndNegativeShiftClamps) {
  Tracer shard;
  std::vector<SpanRecord> foreign;
  {
    ScopedTracer scope(&shard);
    Span root("server", "request");  // still open at snapshot time
    foreign = shard.Snapshot();
  }
  ASSERT_EQ(foreign.size(), 1u);
  ASSERT_EQ(foreign[0].end_ns, 0u);  // open

  Tracer coord;
  // A negative offset larger than the start time must clamp to a positive
  // timestamp instead of wrapping around uint64.
  int64_t huge_negative =
      -static_cast<int64_t>(foreign[0].start_ns) - 1000000;
  size_t imported =
      coord.ImportSpans(foreign, 0, huge_negative, "lagging");
  EXPECT_EQ(imported, 1u);
  auto spans = coord.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].end_ns, 0u) << "open span must stay open";
  EXPECT_GT(spans[0].start_ns, 0u);
  EXPECT_LT(spans[0].start_ns, foreign[0].start_ns);
}

}  // namespace
}  // namespace spindle
