#include <gtest/gtest.h>

#include <cmath>

#include "engine/expr.h"
#include "storage/relation.h"
#include "text/text_functions.h"

namespace spindle {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RelationBuilder b({{"id", DataType::kInt64},
                       {"score", DataType::kFloat64},
                       {"name", DataType::kString}});
    ASSERT_TRUE(b.AddRow({int64_t{1}, 0.5, std::string("Apple")}).ok());
    ASSERT_TRUE(b.AddRow({int64_t{2}, 1.5, std::string("banana")}).ok());
    ASSERT_TRUE(b.AddRow({int64_t{3}, 2.0, std::string("Apple")}).ok());
    rel_ = b.Build().ValueOrDie();
  }

  Column Eval(const ExprPtr& e) {
    auto r = e->Evaluate(*rel_, FunctionRegistry::Default());
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.MoveValueOrDie();
  }

  RelationPtr rel_;
};

TEST_F(ExprTest, ColumnRefByIndex) {
  Column c = Eval(Expr::Column(0));
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.Int64At(2), 3);
}

TEST_F(ExprTest, ColumnRefByName) {
  Column c = Eval(Expr::ColumnNamed("score"));
  EXPECT_DOUBLE_EQ(c.Float64At(1), 1.5);
}

TEST_F(ExprTest, ColumnRefOutOfRange) {
  auto r = Expr::Column(9)->Evaluate(*rel_, FunctionRegistry::Default());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  auto r2 =
      Expr::ColumnNamed("zzz")->Evaluate(*rel_, FunctionRegistry::Default());
  EXPECT_EQ(r2.status().code(), StatusCode::kNotFound);
}

TEST_F(ExprTest, LiteralIsBroadcast) {
  Column c = Eval(Expr::LitInt(7));
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.Int64At(0), 7);
}

TEST_F(ExprTest, IntArithmeticStaysInt) {
  Column c = Eval(Expr::Add(Expr::Column(0), Expr::LitInt(10)));
  ASSERT_EQ(c.type(), DataType::kInt64);
  EXPECT_EQ(c.Int64At(0), 11);
  EXPECT_EQ(c.Int64At(2), 13);
}

TEST_F(ExprTest, MixedArithmeticPromotes) {
  Column c = Eval(Expr::Mul(Expr::Column(0), Expr::LitFloat(0.5)));
  ASSERT_EQ(c.type(), DataType::kFloat64);
  EXPECT_DOUBLE_EQ(c.Float64At(2), 1.5);
}

TEST_F(ExprTest, DivisionAlwaysFloat) {
  Column c = Eval(Expr::Div(Expr::LitInt(1), Expr::LitInt(2)));
  ASSERT_EQ(c.type(), DataType::kFloat64);
  EXPECT_DOUBLE_EQ(c.Float64At(0), 0.5);
}

TEST_F(ExprTest, Comparisons) {
  Column c = Eval(Expr::Gt(Expr::Column(1), Expr::LitFloat(1.0)));
  ASSERT_EQ(c.type(), DataType::kInt64);
  EXPECT_EQ(c.Int64At(0), 0);
  EXPECT_EQ(c.Int64At(1), 1);
  EXPECT_EQ(c.Int64At(2), 1);
}

TEST_F(ExprTest, StringEquality) {
  Column c = Eval(Expr::Eq(Expr::Column(2), Expr::LitString("Apple")));
  EXPECT_EQ(c.Int64At(0), 1);
  EXPECT_EQ(c.Int64At(1), 0);
  EXPECT_EQ(c.Int64At(2), 1);
}

TEST_F(ExprTest, IncomparableTypesRejected) {
  auto r = Expr::Eq(Expr::Column(0), Expr::LitString("x"))
               ->Evaluate(*rel_, FunctionRegistry::Default());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeMismatch);
}

TEST_F(ExprTest, BooleanLogic) {
  auto gt1 = Expr::Gt(Expr::Column(1), Expr::LitFloat(1.0));
  auto isapple = Expr::Eq(Expr::Column(2), Expr::LitString("Apple"));
  Column c = Eval(Expr::And(gt1, isapple));
  EXPECT_EQ(c.Int64At(0), 0);
  EXPECT_EQ(c.Int64At(1), 0);
  EXPECT_EQ(c.Int64At(2), 1);
  Column d = Eval(Expr::Or(gt1, isapple));
  EXPECT_EQ(d.Int64At(0), 1);
  Column n = Eval(Expr::Not(isapple));
  EXPECT_EQ(n.Int64At(0), 0);
  EXPECT_EQ(n.Int64At(1), 1);
}

TEST_F(ExprTest, MathFunctions) {
  Column c = Eval(Expr::Call("log", {Expr::LitFloat(std::exp(1.0))}));
  EXPECT_NEAR(c.Float64At(0), 1.0, 1e-12);
  Column s = Eval(Expr::Call("sqrt", {Expr::LitFloat(9.0)}));
  EXPECT_DOUBLE_EQ(s.Float64At(0), 3.0);
  Column p = Eval(Expr::Call("pow", {Expr::LitFloat(2.0), Expr::LitInt(10)}));
  EXPECT_DOUBLE_EQ(p.Float64At(0), 1024.0);
  Column a = Eval(Expr::Call("abs", {Expr::LitInt(-4)}));
  EXPECT_EQ(a.Int64At(0), 4);
}

TEST_F(ExprTest, StringFunctions) {
  Column c = Eval(Expr::Call("lcase", {Expr::Column(2)}));
  EXPECT_EQ(c.StringAt(0), "apple");
  Column u = Eval(Expr::Call("ucase", {Expr::LitString("abc")}));
  EXPECT_EQ(u.StringAt(0), "ABC");
  Column cat = Eval(
      Expr::Call("concat", {Expr::Column(2), Expr::LitString("!")}));
  EXPECT_EQ(cat.StringAt(1), "banana!");
  Column len = Eval(Expr::Call("strlen", {Expr::Column(2)}));
  EXPECT_EQ(len.Int64At(1), 6);
}

TEST_F(ExprTest, Casts) {
  Column f = Eval(Expr::Call("to_float64", {Expr::Column(0)}));
  EXPECT_EQ(f.type(), DataType::kFloat64);
  EXPECT_DOUBLE_EQ(f.Float64At(2), 3.0);
  Column i = Eval(Expr::Call("to_int64", {Expr::LitString("42")}));
  EXPECT_EQ(i.Int64At(0), 42);
  Column s = Eval(Expr::Call("to_string", {Expr::Column(0)}));
  EXPECT_EQ(s.StringAt(0), "1");
}

TEST_F(ExprTest, IfFunction) {
  auto cond = Expr::Gt(Expr::Column(1), Expr::LitFloat(1.0));
  Column c = Eval(Expr::Call(
      "if", {cond, Expr::LitString("big"), Expr::LitString("small")}));
  EXPECT_EQ(c.StringAt(0), "small");
  EXPECT_EQ(c.StringAt(1), "big");
}

TEST_F(ExprTest, UnknownFunctionRejected) {
  auto r = Expr::Call("frobnicate", {})
               ->Evaluate(*rel_, FunctionRegistry::Default());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(ExprTest, ConstantFolding) {
  // All-literal expressions stay broadcast (size 1).
  Column c = Eval(Expr::Add(Expr::LitInt(1), Expr::LitInt(2)));
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.Int64At(0), 3);
}

TEST_F(ExprTest, StemFunction) {
  RegisterTextFunctions(FunctionRegistry::Default());
  Column c = Eval(Expr::Call("stem", {Expr::Call("lcase", {Expr::Column(2)}),
                                      Expr::LitString("sb-english")}));
  EXPECT_EQ(c.StringAt(0), "appl");
  EXPECT_EQ(c.StringAt(1), "banana");
}

TEST_F(ExprTest, StemUnknownLanguage) {
  RegisterTextFunctions(FunctionRegistry::Default());
  auto r = Expr::Call("stem", {Expr::Column(2), Expr::LitString("klingon")})
               ->Evaluate(*rel_, FunctionRegistry::Default());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(ExprTest, ToStringCanonical) {
  auto e = Expr::And(Expr::Eq(Expr::Column(1), Expr::LitString("toy")),
                     Expr::Gt(Expr::Column(0), Expr::LitInt(5)));
  EXPECT_EQ(e->ToString(), "and(eq($2, \"toy\"), gt($1, 5))");
}

TEST(MaterializeFullTest, BroadcastExpansion) {
  Column c = Column::MakeInt64({7});
  Column full = MaterializeFull(std::move(c), 4).ValueOrDie();
  ASSERT_EQ(full.size(), 4u);
  EXPECT_EQ(full.Int64At(3), 7);
}

}  // namespace
}  // namespace spindle
