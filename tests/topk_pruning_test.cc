/// \file topk_pruning_test.cc
/// \brief Exactness and structure tests for the fused top-k pruning path:
/// the fused RankTopK must be bit-identical (same docIDs, same score
/// doubles, same order) to the exhaustive rank→TopK cascade for every
/// model, k, thread count, and collection shape.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "exec/exec_context.h"
#include "ir/indexing.h"
#include "ir/ranking.h"
#include "ir/searcher.h"
#include "ir/topk_pruning.h"
#include "spinql/evaluator.h"
#include "spinql/parser.h"
#include "specialized/inverted_index.h"
#include "storage/block_codec.h"
#include "storage/relation.h"
#include "triples/triple_store.h"
#include "workload/text_gen.h"

namespace spindle {
namespace {

using spinql::Evaluator;
using spinql::Program;

/// Bitwise double equality (NaN-safe, distinguishes -0.0 from 0.0): the
/// fused path promises the *same doubles*, not nearly the same.
bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void ExpectIdenticalRanking(const RelationPtr& fused,
                            const RelationPtr& exhaustive,
                            const std::string& what) {
  ASSERT_EQ(fused->num_rows(), exhaustive->num_rows()) << what;
  for (size_t r = 0; r < fused->num_rows(); ++r) {
    EXPECT_EQ(fused->column(0).Int64At(r), exhaustive->column(0).Int64At(r))
        << what << " docID row " << r;
    EXPECT_TRUE(SameBits(fused->column(1).Float64At(r),
                         exhaustive->column(1).Float64At(r)))
        << what << " score row " << r << ": fused "
        << fused->column(1).Float64At(r) << " vs exhaustive "
        << exhaustive->column(1).Float64At(r);
  }
}

TextIndexPtr BuildIndex(const RelationPtr& docs) {
  Analyzer a = Analyzer::Make({}).ValueOrDie();
  return TextIndex::Build(docs, a).ValueOrDie();
}

/// The exhaustive reference, always evaluated strictly serially so its
/// float accumulation is the canonical left-to-right association order.
RelationPtr ExhaustiveTopK(const TextIndex& index, const RelationPtr& qterms,
                           SearchOptions options) {
  ScopedExecContext serial{ExecContext(1)};
  return RankWithModel(index, qterms, options).ValueOrDie();
}

SearchOptions OptionsFor(RankModel model, size_t k) {
  SearchOptions options;
  options.model = model;
  options.top_k = k;
  return options;
}

// ---------------------------------------------------------------------------
// ImpactIndex structure
// ---------------------------------------------------------------------------

RelationPtr ShuffledIdDocs() {
  // docIDs deliberately out of ingest order: ordinals must re-sort them.
  RelationBuilder b({{"docID", DataType::kInt64},
                     {"data", DataType::kString}});
  EXPECT_TRUE(b.AddRow({int64_t{30}, std::string("cat cat dog")}).ok());
  EXPECT_TRUE(b.AddRow({int64_t{10}, std::string("dog")}).ok());
  EXPECT_TRUE(b.AddRow({int64_t{20}, std::string("cat fish dog")}).ok());
  return b.Build().ValueOrDie();
}

int64_t TermIdOf(const TextIndex& index, const std::string& term) {
  const Relation& td = *index.termdict();
  for (size_t r = 0; r < td.num_rows(); ++r) {
    if (td.column(1).StringAt(r) == term) return td.column(0).Int64At(r);
  }
  return -1;
}

TEST(ImpactIndexTest, OrdinalsFollowDocIdOrder) {
  TextIndexPtr index = BuildIndex(ShuffledIdDocs());
  const ImpactIndex& impact = index->impact();
  ASSERT_EQ(impact.num_docs(), 3u);
  EXPECT_EQ(impact.doc_id(0), 10);
  EXPECT_EQ(impact.doc_id(1), 20);
  EXPECT_EQ(impact.doc_id(2), 30);
  EXPECT_EQ(impact.doc_len(0), 1);
  EXPECT_EQ(impact.doc_len(2), 3);
}

TEST(ImpactIndexTest, PostingsSortedWithPerTermBoxes) {
  TextIndexPtr index = BuildIndex(ShuffledIdDocs());
  const ImpactIndex& impact = index->impact();

  int64_t cat = TermIdOf(*index, "cat");
  ASSERT_GT(cat, 0);
  auto pv = impact.postings(cat);
  ASSERT_EQ(pv.size, 2u);
  // cat appears in docID 20 (ordinal 1, tf 1) and docID 30 (ordinal 2,
  // tf 2) — sorted by ordinal even though docID 30 was ingested first.
  // DecodePostings works for both physical representations.
  std::vector<uint32_t> ords;
  std::vector<int32_t> tfs;
  impact.DecodePostings(cat, &ords, &tfs);
  ASSERT_EQ(ords.size(), 2u);
  EXPECT_EQ(ords[0], 1u);
  EXPECT_EQ(tfs[0], 1);
  EXPECT_EQ(ords[1], 2u);
  EXPECT_EQ(tfs[1], 2);
  ASSERT_EQ(pv.num_blocks, 1u);
  EXPECT_EQ(pv.blocks[0].last_ord, 2u);
  EXPECT_EQ(pv.blocks[0].max_tf, 2);
  EXPECT_EQ(pv.blocks[0].min_tf, 1);
  EXPECT_EQ(pv.blocks[0].min_len, 3);
  EXPECT_EQ(pv.blocks[0].max_len, 3);

  const ImpactIndex::TermMeta& meta = impact.term_meta(cat);
  EXPECT_EQ(meta.max_tf, 2);
  EXPECT_EQ(meta.min_tf, 1);
  EXPECT_EQ(meta.df, 2);
  EXPECT_EQ(meta.cf, 3);

  // dog is in every doc.
  int64_t dog = TermIdOf(*index, "dog");
  EXPECT_EQ(impact.postings(dog).size, 3u);
  // Out-of-range ids yield empty views.
  EXPECT_EQ(impact.postings(0).size, 0u);
  EXPECT_EQ(impact.postings(9999).size, 0u);

  EXPECT_EQ(impact.min_posting_len(), 1);
  EXPECT_EQ(impact.max_posting_len(), 3);
}

TEST(ImpactIndexTest, MultiBlockTermsGetPerBlockMaxima) {
  // 300 docs with a shared term forces ceil(300/128) = 3 blocks; one doc
  // in the middle carries an extreme tf that must only inflate its block.
  RelationBuilder b({{"docID", DataType::kInt64},
                     {"data", DataType::kString}});
  for (int64_t d = 1; d <= 300; ++d) {
    std::string text = "common";
    if (d == 200) text = "common common common common";
    ASSERT_TRUE(b.AddRow({d, text}).ok());
  }
  TextIndexPtr index = BuildIndex(b.Build().ValueOrDie());
  const ImpactIndex& impact = index->impact();
  int64_t common = TermIdOf(*index, "common");
  auto pv = impact.postings(common);
  ASSERT_EQ(pv.size, 300u);
  ASSERT_EQ(pv.num_blocks, 3u);
  EXPECT_EQ(pv.blocks[0].last_ord, 127u);
  EXPECT_EQ(pv.blocks[1].last_ord, 255u);
  EXPECT_EQ(pv.blocks[2].last_ord, 299u);
  // Doc 200 is ordinal 199 — inside block 1 only.
  EXPECT_EQ(pv.blocks[0].max_tf, 1);
  EXPECT_EQ(pv.blocks[1].max_tf, 4);
  EXPECT_EQ(pv.blocks[2].max_tf, 1);
  EXPECT_EQ(impact.term_meta(common).max_tf, 4);
}

// ---------------------------------------------------------------------------
// Adversarial exactness
// ---------------------------------------------------------------------------

TEST(RankTopKTest, SingleDocTermsAndAllEqualTf) {
  // Every term appears in exactly one doc (no overlap) plus one term in
  // all docs with identical tf — maximal score ties.
  RelationBuilder b({{"docID", DataType::kInt64},
                     {"data", DataType::kString}});
  for (int64_t d = 1; d <= 50; ++d) {
    std::string text = "shared unique" + std::to_string(d);
    ASSERT_TRUE(b.AddRow({d, text}).ok());
  }
  TextIndexPtr index = BuildIndex(b.Build().ValueOrDie());
  for (RankModel model : {RankModel::kBm25, RankModel::kTfIdf,
                          RankModel::kLmDirichlet,
                          RankModel::kLmJelinekMercer}) {
    for (size_t k : {size_t{1}, size_t{7}, size_t{50}, size_t{200}}) {
      SearchOptions options = OptionsFor(model, k);
      RelationPtr qterms =
          index->QueryTerms("shared unique7 unique33").ValueOrDie();
      RelationPtr fused = RankTopK(*index, qterms, options).ValueOrDie();
      RelationPtr exhaustive = ExhaustiveTopK(*index, qterms, options);
      ExpectIdenticalRanking(fused, exhaustive,
                             std::string(RankModelName(model)) + " k=" +
                                 std::to_string(k));
    }
  }
}

TEST(RankTopKTest, BlockSkippingIsExactAndObservable) {
  // A rare term far apart in ordinal space drives the candidates; the
  // common term is non-essential and must be *skipped over* in blocks,
  // never mis-scored.
  RelationBuilder b({{"docID", DataType::kInt64},
                     {"data", DataType::kString}});
  for (int64_t d = 1; d <= 2000; ++d) {
    std::string text = d % 3 == 0 ? "alpha filler" : "filler";
    // Low-scoring zeta doc early (long), high-scoring one late (short):
    // after doc 50 sets the threshold, doc 1950's bound stays above it,
    // forcing a probe of the non-essential alpha list — which must jump
    // over ~5 blocks of alpha postings to reach ordinal 1949.
    if (d == 50) text = "filler filler filler filler filler zeta";
    if (d == 1950) text = "alpha zeta";
    ASSERT_TRUE(b.AddRow({d, text}).ok());
  }
  TextIndexPtr index = BuildIndex(b.Build().ValueOrDie());
  SearchOptions options = OptionsFor(RankModel::kBm25, 1);
  RelationPtr qterms = index->QueryTerms("zeta alpha").ValueOrDie();
  PruningStats stats;
  RelationPtr fused = RankTopK(*index, qterms, options, &stats).ValueOrDie();
  RelationPtr exhaustive = ExhaustiveTopK(*index, qterms, options);
  ExpectIdenticalRanking(fused, exhaustive, "block skip");
  EXPECT_GT(stats.blocks_skipped, 0u);
  // Far fewer docs scored than the ~700 candidates of the alpha list.
  EXPECT_LT(stats.docs_scored, 100u);
}

TEST(RankTopKTest, NegativeIdfTermsStaySafe) {
  // A term in > half the collection has negative BM25 idf — upper bounds
  // must stay correct when contributions are negative.
  RelationBuilder b({{"docID", DataType::kInt64},
                     {"data", DataType::kString}});
  for (int64_t d = 1; d <= 200; ++d) {
    std::string text = "everywhere";
    if (d % 7 == 0) text += " sometimes";
    if (d == 3 || d == 120) text += " rare rare";
    ASSERT_TRUE(b.AddRow({d, text}).ok());
  }
  TextIndexPtr index = BuildIndex(b.Build().ValueOrDie());
  for (size_t k : {size_t{1}, size_t{5}, size_t{200}}) {
    SearchOptions options = OptionsFor(RankModel::kBm25, k);
    RelationPtr qterms =
        index->QueryTerms("everywhere sometimes rare").ValueOrDie();
    RelationPtr fused = RankTopK(*index, qterms, options).ValueOrDie();
    RelationPtr exhaustive = ExhaustiveTopK(*index, qterms, options);
    ExpectIdenticalRanking(fused, exhaustive,
                           "negative idf k=" + std::to_string(k));
  }
}

TEST(RankTopKTest, DuplicateAndWeightedQueryTerms) {
  TextCollectionOptions copts;
  copts.num_docs = 800;
  copts.vocab_size = 400;
  copts.avg_doc_len = 30;
  copts.seed = 7;
  RelationPtr docs = GenerateTextCollection(copts).ValueOrDie();
  TextIndexPtr index = BuildIndex(docs);
  // A term queried twice contributes twice; expansion terms carry
  // fractional weights.
  RelationPtr qterms =
      index
          ->QueryTermsWeighted({{WordForRank(8), 1.0},
                                {WordForRank(8), 1.0},
                                {WordForRank(20), 0.4},
                                {WordForRank(3), 0.7}})
          .ValueOrDie();
  for (RankModel model : {RankModel::kBm25, RankModel::kTfIdf,
                          RankModel::kLmDirichlet,
                          RankModel::kLmJelinekMercer}) {
    SearchOptions options = OptionsFor(model, 10);
    RelationPtr fused = RankTopK(*index, qterms, options).ValueOrDie();
    RelationPtr exhaustive = ExhaustiveTopK(*index, qterms, options);
    ExpectIdenticalRanking(fused, exhaustive,
                           std::string("weighted ") + RankModelName(model));
  }
}

TEST(RankTopKTest, EmptyAndDegenerateQueries) {
  TextIndexPtr index = BuildIndex(ShuffledIdDocs());
  SearchOptions options = OptionsFor(RankModel::kBm25, 5);
  RelationPtr none = index->QueryTerms("zebra quagga").ValueOrDie();
  RelationPtr fused = RankTopK(*index, none, options).ValueOrDie();
  EXPECT_EQ(fused->num_rows(), 0u);
  EXPECT_EQ(fused->num_columns(), 2u);

  // k == 0 is the exhaustive cascade's job.
  RelationPtr some = index->QueryTerms("cat").ValueOrDie();
  EXPECT_FALSE(RankTopK(*index, some, OptionsFor(RankModel::kBm25, 0)).ok());
}

// ---------------------------------------------------------------------------
// Randomized exactness property: collections × models × k × threads
// ---------------------------------------------------------------------------

TEST(RankTopKTest, RandomizedExactnessProperty) {
  struct CollectionSpec {
    int64_t num_docs;
    int64_t vocab;
    int avg_len;
    uint64_t seed;
  };
  const CollectionSpec specs[] = {
      {600, 300, 25, 11},   // dense: short vocab, heavy overlap, many ties
      {1500, 3000, 40, 22}, // sparse: selective posting lists
  };
  const RankModel models[] = {RankModel::kBm25, RankModel::kTfIdf,
                              RankModel::kLmDirichlet,
                              RankModel::kLmJelinekMercer};
  PruningStats aggregate;
  for (const auto& spec : specs) {
    TextCollectionOptions copts;
    copts.num_docs = spec.num_docs;
    copts.vocab_size = spec.vocab;
    copts.avg_doc_len = spec.avg_len;
    copts.seed = spec.seed;
    RelationPtr docs = GenerateTextCollection(copts).ValueOrDie();
    TextIndexPtr index = BuildIndex(docs);
    std::vector<std::string> queries =
        GenerateQueries(copts, /*num_queries=*/6, /*terms_per_query=*/3,
                        /*seed=*/spec.seed + 1);
    for (const std::string& query : queries) {
      RelationPtr qterms = index->QueryTerms(query).ValueOrDie();
      if (qterms->num_rows() == 0) continue;
      for (RankModel model : models) {
        for (size_t k :
             {size_t{1}, size_t{5}, size_t{37},
              static_cast<size_t>(spec.num_docs)}) {
          SearchOptions options = OptionsFor(model, k);
          RelationPtr exhaustive = ExhaustiveTopK(*index, qterms, options);
          for (int threads : {1, 4}) {
            ScopedExecContext scope{ExecContext(threads)};
            PruningStats stats;
            RelationPtr fused =
                RankTopK(*index, qterms, options, &stats).ValueOrDie();
            ExpectIdenticalRanking(
                fused, exhaustive,
                std::string(RankModelName(model)) + " k=" +
                    std::to_string(k) + " threads=" +
                    std::to_string(threads) + " q=\"" + query + "\"");
            aggregate.docs_scored += stats.docs_scored;
            aggregate.docs_skipped += stats.docs_skipped;
            aggregate.blocks_skipped += stats.blocks_skipped;
          }
        }
      }
    }
  }
  // Across the sweep, pruning must actually engage.
  EXPECT_GT(aggregate.docs_skipped, 0u);
  EXPECT_GT(aggregate.blocks_skipped, 0u);
}

TEST(RankTopKTest, ParallelMachineryForcedIsBitIdentical) {
  // Small morsels force the per-morsel heap + deterministic merge path
  // even on a small collection.
  TextCollectionOptions copts;
  copts.num_docs = 1200;
  copts.vocab_size = 600;
  copts.avg_doc_len = 30;
  copts.seed = 33;
  RelationPtr docs = GenerateTextCollection(copts).ValueOrDie();
  TextIndexPtr index = BuildIndex(docs);
  std::vector<std::string> queries = GenerateQueries(copts, 4, 3, 99);
  for (const std::string& query : queries) {
    RelationPtr qterms = index->QueryTerms(query).ValueOrDie();
    if (qterms->num_rows() == 0) continue;
    for (RankModel model : {RankModel::kBm25, RankModel::kTfIdf,
                            RankModel::kLmDirichlet,
                            RankModel::kLmJelinekMercer}) {
      SearchOptions options = OptionsFor(model, 10);
      RelationPtr exhaustive = ExhaustiveTopK(*index, qterms, options);
      ExecContext ctx(4);
      ctx.morsel_rows = 256;  // 1200 docs -> 5 morsels
      ScopedExecContext scope{ctx};
      RelationPtr fused = RankTopK(*index, qterms, options).ValueOrDie();
      ExpectIdenticalRanking(fused, exhaustive,
                             std::string("forced-parallel ") +
                                 RankModelName(model) + " q=\"" + query +
                                 "\"");
    }
  }
}

// ---------------------------------------------------------------------------
// Compressed postings: bit-identity and decode observability
// ---------------------------------------------------------------------------

TEST(CompressedPostingsTest, CompressedMatchesUncompressedBitIdentical) {
  TextCollectionOptions copts;
  copts.num_docs = 1500;
  copts.vocab_size = 700;
  copts.avg_doc_len = 35;
  copts.seed = 41;
  RelationPtr docs = GenerateTextCollection(copts).ValueOrDie();
  TextIndexPtr comp;
  TextIndexPtr uncomp;
  {
    blockcodec::ScopedCompressionDefaults on({true, true});
    comp = BuildIndex(docs);
  }
  {
    blockcodec::ScopedCompressionDefaults off({false, false});
    uncomp = BuildIndex(docs);
  }
  ASSERT_TRUE(comp->impact().compressed());
  ASSERT_FALSE(uncomp->impact().compressed());

  // The codec is lossless: every term's logical posting list round-trips.
  for (int64_t t = 1; t <= static_cast<int64_t>(comp->impact().num_terms());
       ++t) {
    std::vector<uint32_t> co, uo;
    std::vector<int32_t> ct, ut;
    comp->impact().DecodePostings(t, &co, &ct);
    uncomp->impact().DecodePostings(t, &uo, &ut);
    ASSERT_EQ(co, uo) << "term " << t;
    ASSERT_EQ(ct, ut) << "term " << t;
  }

  const RankModel models[] = {RankModel::kBm25, RankModel::kTfIdf,
                              RankModel::kLmDirichlet,
                              RankModel::kLmJelinekMercer};
  std::vector<std::string> queries = GenerateQueries(copts, 5, 3, 42);
  PruningStats aggregate;
  for (const std::string& query : queries) {
    RelationPtr qterms = comp->QueryTerms(query).ValueOrDie();
    if (qterms->num_rows() == 0) continue;
    for (RankModel model : models) {
      for (size_t k : {size_t{1}, size_t{10}, size_t{100}}) {
        SearchOptions options = OptionsFor(model, k);
        for (int threads : {1, 4}) {
          ScopedExecContext scope{ExecContext(threads)};
          PruningStats stats;
          RelationPtr fused_c =
              RankTopK(*comp, qterms, options, &stats).ValueOrDie();
          RelationPtr fused_u =
              RankTopK(*uncomp, qterms, options).ValueOrDie();
          ExpectIdenticalRanking(
              fused_c, fused_u,
              std::string("compressed ") + RankModelName(model) + " k=" +
                  std::to_string(k) + " threads=" + std::to_string(threads) +
                  " q=\"" + query + "\"");
          aggregate.blocks_decoded += stats.blocks_decoded;
          aggregate.decode_bytes += stats.decode_bytes;
          aggregate.blocks_skipped += stats.blocks_skipped;
        }
      }
    }
  }
  // The compressed arm really decoded blocks (and reported the bytes).
  EXPECT_GT(aggregate.blocks_decoded, 0u);
  EXPECT_GT(aggregate.decode_bytes, 0u);
  // Footprint: the compressed index must be smaller than the baseline.
  EXPECT_LT(comp->ByteSizes().total(), uncomp->ByteSizes().total());
  EXPECT_GT(comp->ByteSizes().compressed_bytes, 0u);
  EXPECT_EQ(uncomp->ByteSizes().compressed_bytes, 0u);
}

TEST(CompressedPostingsTest, SkippedBlocksAreNeverDecoded) {
  // Same shape as BlockSkippingIsExactAndObservable: a rare term drives
  // candidates and the common term's blocks must be jumped. In compressed
  // mode a jumped block must not be decompressed, so with one morsel
  // (each block decoded at most once per cursor) strictly fewer blocks
  // are decoded than exist across the query's posting lists.
  blockcodec::ScopedCompressionDefaults on({true, true});
  RelationBuilder b({{"docID", DataType::kInt64},
                     {"data", DataType::kString}});
  for (int64_t d = 1; d <= 2000; ++d) {
    std::string text = d % 3 == 0 ? "alpha filler" : "filler";
    if (d == 50) text = "filler filler filler filler filler zeta";
    if (d == 1950) text = "alpha zeta";
    ASSERT_TRUE(b.AddRow({d, text}).ok());
  }
  TextIndexPtr index = BuildIndex(b.Build().ValueOrDie());
  ASSERT_TRUE(index->impact().compressed());
  const size_t total_blocks =
      index->impact().postings(TermIdOf(*index, "alpha")).num_blocks +
      index->impact().postings(TermIdOf(*index, "zeta")).num_blocks;

  ExecContext ctx(1);
  ctx.morsel_rows = 1 << 20;  // one morsel: no boundary re-decodes
  ScopedExecContext scope{ctx};
  SearchOptions options = OptionsFor(RankModel::kBm25, 1);
  RelationPtr qterms = index->QueryTerms("zeta alpha").ValueOrDie();
  PruningStats stats;
  RelationPtr fused = RankTopK(*index, qterms, options, &stats).ValueOrDie();
  RelationPtr exhaustive = ExhaustiveTopK(*index, qterms, options);
  ExpectIdenticalRanking(fused, exhaustive, "compressed block skip");
  EXPECT_GT(stats.blocks_skipped, 0u);
  EXPECT_GT(stats.blocks_decoded, 0u);
  EXPECT_LT(stats.blocks_decoded, total_blocks);
}

// ---------------------------------------------------------------------------
// Searcher integration
// ---------------------------------------------------------------------------

TEST(SearcherFusedTest, SearchRoutesThroughFusedPathAndCountsIt) {
  TextCollectionOptions copts;
  copts.num_docs = 500;
  copts.vocab_size = 250;
  copts.avg_doc_len = 25;
  RelationPtr docs = GenerateTextCollection(copts).ValueOrDie();
  Searcher searcher;
  SearchOptions options;
  options.top_k = 10;
  RelationPtr hits =
      searcher.Search(docs, "c1", WordForRank(5) + " " + WordForRank(9),
                      options)
          .ValueOrDie();
  EXPECT_LE(hits->num_rows(), 10u);
  Searcher::Stats stats = searcher.stats();
  EXPECT_EQ(stats.fused_path_used, 1u);
  EXPECT_GT(stats.docs_scored, 0u);
  // Compression is the build default, so the fused query decoded blocks
  // and the decode counters surfaced through Searcher::Stats.
  EXPECT_GT(stats.blocks_decoded, 0u);
  EXPECT_GT(stats.decode_bytes, 0u);

  // k == 0 falls back to the exhaustive cascade.
  options.top_k = 0;
  ASSERT_TRUE(searcher.Search(docs, "c1", WordForRank(5), options).ok());
  EXPECT_EQ(searcher.stats().fused_path_used, 1u);

  // The phrase-boost path also bypasses the fused scorer.
  options.top_k = 5;
  options.phrase_boost = 1.0;
  ASSERT_TRUE(searcher
                  .Search(docs, "c1", WordForRank(5) + " " + WordForRank(9),
                          options)
                  .ok());
  EXPECT_EQ(searcher.stats().fused_path_used, 1u);
}

TEST(SearcherFusedTest, SearchMatchesExhaustiveRankCascade) {
  TextCollectionOptions copts;
  copts.num_docs = 900;
  copts.vocab_size = 450;
  copts.avg_doc_len = 30;
  copts.seed = 5;
  RelationPtr docs = GenerateTextCollection(copts).ValueOrDie();
  Searcher searcher;
  for (RankModel model : {RankModel::kBm25, RankModel::kTfIdf,
                          RankModel::kLmDirichlet,
                          RankModel::kLmJelinekMercer}) {
    SearchOptions options;
    options.model = model;
    options.top_k = 8;
    std::string query = WordForRank(6) + " " + WordForRank(11);
    RelationPtr via_search =
        searcher.Search(docs, "sig", query, options).ValueOrDie();
    TextIndexPtr index = searcher.GetOrBuildIndex(docs, "sig").ValueOrDie();
    RelationPtr qterms = index->QueryTerms(query).ValueOrDie();
    RelationPtr exhaustive = ExhaustiveTopK(*index, qterms, options);
    ExpectIdenticalRanking(via_search, exhaustive,
                           std::string("Search ") + RankModelName(model));
  }
}

// ---------------------------------------------------------------------------
// Cross-engine: specialized DAAT vs TAAT vs relational, tie-heavy
// ---------------------------------------------------------------------------

TEST(SpecializedDaatTest, DaatBitIdenticalToTaat) {
  TextCollectionOptions copts;
  copts.num_docs = 1000;
  copts.vocab_size = 500;
  copts.avg_doc_len = 30;
  copts.seed = 13;
  RelationPtr docs = GenerateTextCollection(copts).ValueOrDie();
  Analyzer a = Analyzer::Make({}).ValueOrDie();
  auto idx = SpecializedIndex::Build(docs, a).ValueOrDie();
  std::vector<std::string> queries = GenerateQueries(copts, 8, 3, 77);
  // Head-of-Zipf terms can sit in more than half the collection —
  // negative idf — and must stay exact in the DAAT bounds too.
  queries.push_back(WordForRank(1) + " " + WordForRank(40));
  PruningStats aggregate;
  for (const std::string& query : queries) {
    for (size_t k : {size_t{1}, size_t{10}, size_t{1000}}) {
      auto taat = idx.SearchBm25(query, k);
      PruningStats stats;
      auto daat = idx.SearchBm25Daat(query, k, {}, &stats);
      ASSERT_EQ(daat.size(), taat.size()) << query << " k=" << k;
      for (size_t i = 0; i < daat.size(); ++i) {
        EXPECT_EQ(daat[i].doc_id, taat[i].doc_id)
            << query << " k=" << k << " row " << i;
        EXPECT_TRUE(SameBits(daat[i].score, taat[i].score))
            << query << " k=" << k << " row " << i;
      }
      aggregate.docs_scored += stats.docs_scored;
      aggregate.docs_skipped += stats.docs_skipped;
      aggregate.blocks_skipped += stats.blocks_skipped;
    }
  }
  EXPECT_GT(aggregate.docs_skipped + aggregate.blocks_skipped, 0u);
}

TEST(SpecializedDaatTest, CrossEngineTieHeavyTotalOrder) {
  // Duplicate documents under distinct docIDs: every duplicate pair ties
  // exactly, so result order is decided purely by the docID tie-break —
  // which all three engines (relational exhaustive, relational fused,
  // specialized TAAT/DAAT) must agree on.
  RelationBuilder b({{"docID", DataType::kInt64},
                     {"data", DataType::kString}});
  const char* texts[] = {"red toy car", "history book", "wooden blocks",
                         "red fire truck", "toy train set"};
  int64_t id = 1;
  for (int rep = 0; rep < 8; ++rep) {
    for (const char* t : texts) {
      ASSERT_TRUE(b.AddRow({id++, std::string(t)}).ok());
    }
  }
  RelationPtr docs = b.Build().ValueOrDie();
  TextIndexPtr index = BuildIndex(docs);
  Analyzer a = Analyzer::Make({}).ValueOrDie();
  auto sidx = SpecializedIndex::Build(docs, a).ValueOrDie();

  const std::string query = "red toy";
  const size_t k = 12;  // cuts through a tie group
  SearchOptions options = OptionsFor(RankModel::kBm25, k);
  RelationPtr qterms = index->QueryTerms(query).ValueOrDie();
  RelationPtr fused = RankTopK(*index, qterms, options).ValueOrDie();
  RelationPtr exhaustive = ExhaustiveTopK(*index, qterms, options);
  ExpectIdenticalRanking(fused, exhaustive, "tie-heavy relational");

  auto taat = sidx.SearchBm25(query, k);
  auto daat = sidx.SearchBm25Daat(query, k);
  ASSERT_EQ(taat.size(), fused->num_rows());
  for (size_t i = 0; i < taat.size(); ++i) {
    EXPECT_EQ(taat[i].doc_id, fused->column(0).Int64At(i)) << "row " << i;
    EXPECT_EQ(daat[i].doc_id, fused->column(0).Int64At(i)) << "row " << i;
    // Engines differ in association shape ((idf*tf)/norm vs (tf/norm)*idf)
    // so scores agree to tolerance, not bitwise.
    EXPECT_NEAR(taat[i].score, fused->column(1).Float64At(i), 1e-9);
    EXPECT_TRUE(SameBits(daat[i].score, taat[i].score));
  }
}

// ---------------------------------------------------------------------------
// SpinQL TOPK-over-RANK fusion
// ---------------------------------------------------------------------------

class TopKFusionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TripleStore store;
    store.Add("prod1", "description", "a red toy car");
    store.Add("prod2", "description", "a history book about cars");
    store.Add("prod3", "description", "blue wooden toy blocks");
    store.Add("prod4", "description", "red toy fire truck");
    store.Add("prod5", "description", "cookbook for beginners");
    ASSERT_TRUE(store.RegisterInto(catalog_).ok());
    RelationBuilder qb({{"data", DataType::kString},
                        {"p", DataType::kFloat64}});
    ASSERT_TRUE(qb.AddRow({std::string("red toy"), 1.0}).ok());
    catalog_.Register("query", qb.Build().ValueOrDie());
  }

  Catalog catalog_;
};

TEST_F(TopKFusionTest, FusedTopKOverRankMatchesUnfused) {
  const char* src =
      "docs = PROJECT [$1, $3] (SELECT [$2=\"description\"] (triples));"
      "hits = TOPK [2] (RANK BM25 (docs, query));";
  Program p = Program::Parse(src).ValueOrDie();

  Evaluator fused_ev(&catalog_);  // no cache: fusion engages directly
  ProbRelation fused = fused_ev.Eval(p).ValueOrDie();
  EXPECT_EQ(fused_ev.stats().fused_topk_ranks, 1u);

  // Reference: the full ranking, cut by TopKByProb semantics (prob
  // descending, ties by row order) — what the unfused path computes.
  Program full = Program::Parse(
                     "docs = PROJECT [$1, $3] (SELECT [$2=\"description\"] "
                     "(triples));"
                     "hits = RANK BM25 (docs, query);")
                     .ValueOrDie();
  Evaluator full_ev(&catalog_);
  ProbRelation all = full_ev.Eval(full).ValueOrDie();
  ASSERT_GE(all.num_rows(), 2u);
  ASSERT_EQ(fused.num_rows(), 2u);
  for (size_t r = 0; r < 2; ++r) {
    EXPECT_EQ(fused.rel()->column(0).StringAt(r),
              all.rel()->column(0).StringAt(r))
        << "row " << r;
    EXPECT_TRUE(SameBits(fused.prob_at(r), all.prob_at(r))) << "row " << r;
  }
}

TEST_F(TopKFusionTest, WeightedDocsFallBackToExhaustive) {
  // WEIGHT scales every doc prob below 1.0, which makes the pre-cut
  // unsafe — fusion must not engage, and results must still be correct.
  const char* src =
      "docs = WEIGHT [0.5] (PROJECT [$1, $3] (SELECT [$2=\"description\"] "
      "(triples)));"
      "hits = TOPK [2] (RANK BM25 (docs, query));";
  Program p = Program::Parse(src).ValueOrDie();
  Evaluator ev(&catalog_);
  ProbRelation hits = ev.Eval(p).ValueOrDie();
  EXPECT_EQ(ev.stats().fused_topk_ranks, 0u);
  EXPECT_EQ(hits.num_rows(), 2u);
}

TEST_F(TopKFusionTest, DuplicateExternalIdsFallBackToExhaustive) {
  // Two description triples for one product: the disjoint projection
  // merges them, so the fused pre-cut would be unsound.
  TripleStore store;
  store.Add("prod1", "description", "a red toy car");
  store.Add("prod1", "description", "a shiny red toy");
  store.Add("prod2", "description", "a history book");
  ASSERT_TRUE(store.RegisterInto(catalog_).ok());
  const char* src =
      "docs = PROJECT [$1, $3] (SELECT [$2=\"description\"] (triples));"
      "hits = TOPK [1] (RANK BM25 (docs, query));";
  Program p = Program::Parse(src).ValueOrDie();
  Evaluator ev(&catalog_);
  ProbRelation hits = ev.Eval(p).ValueOrDie();
  EXPECT_EQ(ev.stats().fused_topk_ranks, 0u);
  ASSERT_EQ(hits.num_rows(), 1u);
  EXPECT_EQ(hits.rel()->column(0).StringAt(0), "prod1");
}

}  // namespace
}  // namespace spindle
