/// \file metrics_registry_test.cc
/// \brief Tests for the fleet observability layer: log-bucketed histogram
/// bucketing and percentile interpolation error bounds, the metrics
/// registry's Prometheus text exposition, the scrape parser, exactness of
/// the coordinator's fleet aggregation (merged histogram == histogram of
/// the union of samples), and concurrent registration vs. scraping.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics_registry.h"

namespace spindle {
namespace {

using obs::AggregateScrapes;
using obs::LatencyHistogram;
using obs::MetricsRegistry;
using obs::MetricType;
using obs::ParsePrometheusText;
using obs::PrometheusFamily;
using obs::RenderLabels;

// ---------------------------------------------------------------------------
// Histogram bucketing

TEST(LatencyHistogramTest, BucketBoundsContainTheirValues) {
  // Sweep values (not bucket indices: low-octave indices are dead by
  // construction — tiny values map to exact buckets): every value must
  // land in a bucket whose [lower, upper] contains it, bucket indices
  // must be monotone in the value, and consecutive occupied buckets must
  // tile without gap or overlap.
  int prev_bucket = -1;
  uint64_t prev_upper = 0;
  for (uint64_t v = 0; v <= (1u << 16); ++v) {
    int b = LatencyHistogram::BucketOf(v);
    uint64_t lower = LatencyHistogram::BucketLowerUs(b);
    uint64_t upper = LatencyHistogram::BucketUpperUs(b);
    ASSERT_LE(lower, v) << "bucket " << b;
    ASSERT_GE(upper, v) << "bucket " << b;
    if (b != prev_bucket) {
      ASSERT_GT(b, prev_bucket) << "v=" << v;
      if (prev_bucket >= 0) {
        ASSERT_EQ(lower, prev_upper + 1)
            << "gap or overlap entering bucket " << b;
      }
      prev_bucket = b;
      prev_upper = upper;
    }
  }
  // Exponentially sampled large values stay contained too, up to the
  // top representable value (beyond it everything clamps to the last
  // bucket, checked below).
  for (uint64_t v = 1u << 16; v < (uint64_t{1} << 32); v = v * 2 + 7) {
    int b = LatencyHistogram::BucketOf(v);
    ASSERT_LE(LatencyHistogram::BucketLowerUs(b), v);
    ASSERT_GE(LatencyHistogram::BucketUpperUs(b), v);
  }
  // Values past the top bucket clamp into it.
  EXPECT_EQ(LatencyHistogram::BucketOf(~uint64_t{0}),
            LatencyHistogram::kBuckets - 1);
}

// The interpolation satellite: a percentile estimate must stay within the
// bucket resolution of the true nearest-rank sample. With 4 sub-buckets
// per octave the bucket width is at most 25% of its lower bound, so 25%
// is the worst-case relative error; we pin 26% to leave integer-rounding
// slack at tiny values.
TEST(LatencyHistogramTest, InterpolatedPercentileErrorIsBounded) {
  // Single-valued distributions across magnitudes: the estimate must land
  // inside the value's bucket and never exceed the recorded max.
  for (uint64_t v : {1ull, 3ull, 7ull, 19ull, 100ull, 1234ull, 98765ull,
                     5000000ull, 3600000000ull}) {
    LatencyHistogram h;
    for (int i = 0; i < 100; ++i) h.Record(v);
    for (double q : {50.0, 95.0, 99.0}) {
      uint64_t est = h.PercentileUs(q);
      double rel = std::fabs(static_cast<double>(est) -
                             static_cast<double>(v)) /
                   static_cast<double>(v);
      EXPECT_LE(rel, 0.26) << "v=" << v << " q=" << q << " est=" << est;
      EXPECT_LE(est, h.max_us());
    }
  }
  // A spread distribution: exact nearest-rank values are known, so the
  // estimate's relative error is directly checkable.
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 10000; ++v) h.Record(v);
  for (double q : {10.0, 50.0, 90.0, 99.0, 99.9}) {
    uint64_t exact = static_cast<uint64_t>(std::ceil(q / 100.0 * 10000));
    uint64_t est = h.PercentileUs(q);
    double rel = std::fabs(static_cast<double>(est) -
                           static_cast<double>(exact)) /
                 static_cast<double>(exact);
    EXPECT_LE(rel, 0.26) << "q=" << q << " exact=" << exact
                         << " est=" << est;
  }
}

TEST(LatencyHistogramTest, EmptyAndMaxClampBehaviour) {
  LatencyHistogram h;
  EXPECT_EQ(h.PercentileUs(50), 0u);
  h.Record(1000);
  // p100-ish rank of a single sample interpolates within the bucket but
  // clamps to the recorded maximum.
  EXPECT_LE(h.PercentileUs(99.9), 1000u);
  EXPECT_EQ(h.max_us(), 1000u);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum_us(), 1000u);
}

// ---------------------------------------------------------------------------
// Exposition format

TEST(RenderLabelsTest, EscapesQuotesBackslashesNewlines) {
  EXPECT_EQ(RenderLabels({{"shard", "s0"}}), "shard=\"s0\"");
  EXPECT_EQ(RenderLabels({{"a", "x"}, {"b", "y"}}), "a=\"x\",b=\"y\"");
  EXPECT_EQ(RenderLabels({{"q", "say \"hi\"\\\n"}}),
            "q=\"say \\\"hi\\\"\\\\\\n\"");
}

TEST(MetricsRegistryTest, PrometheusTextGolden) {
  MetricsRegistry reg;
  std::atomic<uint64_t> ok{7}, err{2}, inflight{3};
  reg.AddCounter("spindle_requests_total", "Requests by outcome.",
                 R"(outcome="ok")", &ok);
  reg.AddCounter("spindle_requests_total", "Requests by outcome.",
                 R"(outcome="error")", &err);
  reg.AddGauge("spindle_inflight", "In-flight requests.", "", &inflight);
  reg.AddGaugeFn("spindle_threads", "Worker threads.", "",
                 []() { return 4.0; });
  reg.AddGaugeCallback(
      "spindle_epoch", "Freshness epoch per collection.",
      [](std::vector<std::pair<std::string, double>>* out) {
        out->emplace_back(R"(collection="docs")", 12.0);
      });
  LatencyHistogram hist;
  hist.Record(1);  // bucket [1,1] -> le="1"
  hist.Record(1);
  hist.Record(100);  // le="103"
  reg.AddHistogram("spindle_latency_us", "Request latency.", "", &hist);

  const std::string expected =
      "# HELP spindle_requests_total Requests by outcome.\n"
      "# TYPE spindle_requests_total counter\n"
      "spindle_requests_total{outcome=\"ok\"} 7\n"
      "spindle_requests_total{outcome=\"error\"} 2\n"
      "# HELP spindle_inflight In-flight requests.\n"
      "# TYPE spindle_inflight gauge\n"
      "spindle_inflight 3\n"
      "# HELP spindle_threads Worker threads.\n"
      "# TYPE spindle_threads gauge\n"
      "spindle_threads 4\n"
      "# HELP spindle_epoch Freshness epoch per collection.\n"
      "# TYPE spindle_epoch gauge\n"
      "spindle_epoch{collection=\"docs\"} 12\n"
      "# HELP spindle_latency_us Request latency.\n"
      "# TYPE spindle_latency_us histogram\n"
      "spindle_latency_us_bucket{le=\"1\"} 2\n" +
      std::string("spindle_latency_us_bucket{le=\"") +
      std::to_string(LatencyHistogram::BucketUpperUs(
          LatencyHistogram::BucketOf(100))) +
      "\"} 3\n"
      "spindle_latency_us_bucket{le=\"+Inf\"} 3\n"
      "spindle_latency_us_sum 102\n"
      "spindle_latency_us_count 3\n";
  EXPECT_EQ(reg.PrometheusText(), expected);
}

TEST(MetricsRegistryTest, ParseRoundTrip) {
  MetricsRegistry reg;
  std::atomic<uint64_t> hits{41};
  reg.AddCounter("spindle_cache_hits_total", "Cache hits.",
                 R"(cache="block")", &hits);
  LatencyHistogram hist;
  hist.Record(5);
  hist.Record(700);
  reg.AddHistogram("spindle_wait_us", "Queue wait.", "", &hist);

  auto parsed = ParsePrometheusText(reg.PrometheusText());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const std::vector<PrometheusFamily>& families = parsed.ValueOrDie();
  ASSERT_EQ(families.size(), 2u);

  EXPECT_EQ(families[0].name, "spindle_cache_hits_total");
  EXPECT_EQ(families[0].help, "Cache hits.");
  EXPECT_EQ(families[0].type, MetricType::kCounter);
  ASSERT_EQ(families[0].samples.size(), 1u);
  EXPECT_EQ(families[0].samples[0].labels, "cache=\"block\"");
  EXPECT_EQ(families[0].samples[0].value, 41.0);

  EXPECT_EQ(families[1].name, "spindle_wait_us");
  EXPECT_EQ(families[1].type, MetricType::kHistogram);
  // 2 nonzero buckets + +Inf + sum + count.
  ASSERT_EQ(families[1].samples.size(), 5u);
  EXPECT_EQ(families[1].samples.back().name, "spindle_wait_us_count");
  EXPECT_EQ(families[1].samples.back().value, 2.0);
  EXPECT_TRUE(std::isinf(families[1].samples[2].value) ||
              families[1].samples[2].labels.find("+Inf") !=
                  std::string::npos);
}

TEST(MetricsRegistryTest, ParseRejectsMalformedLines) {
  EXPECT_FALSE(ParsePrometheusText("spindle_x{le=\"1\" 3\n").ok());
  EXPECT_FALSE(ParsePrometheusText("lonely_name_no_value\n").ok());
  EXPECT_FALSE(ParsePrometheusText("spindle_x notanumber\n").ok());
  EXPECT_TRUE(ParsePrometheusText("").ok());
  EXPECT_TRUE(ParsePrometheusText("# just a comment\n").ok());
}

// ---------------------------------------------------------------------------
// Fleet aggregation exactness

// Renders one histogram through a registry and parses it back, as the
// coordinator does with a shard scrape.
std::vector<PrometheusFamily> ScrapeOf(const LatencyHistogram& hist,
                                       const std::atomic<uint64_t>& ctr) {
  MetricsRegistry reg;
  reg.AddCounter("spindle_requests_total", "Requests.", "", &ctr);
  reg.AddHistogram("spindle_latency_us", "Latency.", "", &hist);
  auto parsed = ParsePrometheusText(reg.PrometheusText());
  EXPECT_TRUE(parsed.ok());
  return parsed.ValueOrDie();
}

TEST(AggregateScrapesTest, MergedHistogramEqualsHistogramOfUnion) {
  LatencyHistogram a, b, both;
  std::atomic<uint64_t> ca{17}, cb{25}, cboth{42};
  // Deliberately non-overlapping bucket sets plus one shared bucket, so
  // the de-cumulate/re-cumulate path is exercised: shard b has samples in
  // buckets below a's smallest, which a naive per-le cumulative sum gets
  // wrong.
  for (uint64_t v : {900ull, 901ull, 5000ull, 70000ull}) {
    a.Record(v);
    both.Record(v);
  }
  for (uint64_t v : {3ull, 10ull, 11ull, 900ull, 1000000ull}) {
    b.Record(v);
    both.Record(v);
  }

  auto merged_text = AggregateScrapes(
      {{"s0", ScrapeOf(a, ca)}, {"s1", ScrapeOf(b, cb)}});
  auto merged = ParsePrometheusText(merged_text);
  ASSERT_TRUE(merged.ok()) << merged_text;

  // Reference: the same samples recorded into one histogram.
  auto want_families = ScrapeOf(both, cboth);

  // Pull the merged (shard-label-free) samples per family.
  auto merged_samples = [&](const std::string& family) {
    std::vector<obs::PrometheusSample> out;
    for (const auto& f : merged.ValueOrDie()) {
      if (f.name != family) continue;
      for (const auto& s : f.samples) {
        if (s.labels.find("shard=") == std::string::npos) out.push_back(s);
      }
    }
    return out;
  };

  // Counter: exact sum.
  auto ctr = merged_samples("spindle_requests_total");
  ASSERT_EQ(ctr.size(), 1u);
  EXPECT_EQ(ctr[0].value, 42.0);

  // Histogram: sample-for-sample identical to the union histogram.
  auto got = merged_samples("spindle_latency_us");
  std::vector<obs::PrometheusSample> want;
  for (const auto& f : want_families) {
    if (f.name == "spindle_latency_us") want = f.samples;
  }
  ASSERT_EQ(got.size(), want.size()) << merged_text;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].name, want[i].name) << i;
    EXPECT_EQ(got[i].labels, want[i].labels) << i;
    if (std::isinf(want[i].value)) {
      EXPECT_TRUE(std::isinf(got[i].value)) << i;
    } else {
      EXPECT_EQ(got[i].value, want[i].value)
          << i << " " << got[i].name << "{" << got[i].labels << "}";
    }
  }

  // Per-shard series survive with a shard label.
  EXPECT_NE(merged_text.find("spindle_requests_total{shard=\"s0\"} 17"),
            std::string::npos)
      << merged_text;
  EXPECT_NE(merged_text.find("spindle_requests_total{shard=\"s1\"} 25"),
            std::string::npos);
}

TEST(AggregateScrapesTest, GaugesAreReExportedPerShardNotSummed) {
  MetricsRegistry ra, rb;
  std::atomic<uint64_t> ga{5}, gb{9};
  ra.AddGauge("spindle_heap_bytes", "Heap bytes.", "", &ga);
  rb.AddGauge("spindle_heap_bytes", "Heap bytes.", "", &gb);
  auto fa = ParsePrometheusText(ra.PrometheusText());
  auto fb = ParsePrometheusText(rb.PrometheusText());
  ASSERT_TRUE(fa.ok() && fb.ok());
  std::string merged = AggregateScrapes(
      {{"s0", fa.ValueOrDie()}, {"s1", fb.ValueOrDie()}});
  // No unlabeled (summed) gauge sample — a summed gauge is meaningless.
  EXPECT_EQ(merged.find("spindle_heap_bytes 14"), std::string::npos)
      << merged;
  EXPECT_NE(merged.find("spindle_heap_bytes{shard=\"s0\"} 5"),
            std::string::npos);
  EXPECT_NE(merged.find("spindle_heap_bytes{shard=\"s1\"} 9"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Concurrency (meaningful under TSan)

TEST(MetricsRegistryTest, ConcurrentRegistrationIncrementAndScrape) {
  MetricsRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 16;
  std::deque<std::atomic<uint64_t>> cells;
  for (int i = 0; i < kThreads * kPerThread; ++i) cells.emplace_back(0);

  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::string text = reg.PrometheusText();
      EXPECT_TRUE(ParsePrometheusText(text).ok());
    }
  });
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::atomic<uint64_t>& cell = cells[t * kPerThread + i];
        reg.AddCounter("spindle_worker_ops_total", "Ops.",
                       RenderLabels({{"worker", std::to_string(t)},
                                     {"op", std::to_string(i)}}),
                       &cell);
        for (int n = 0; n < 100; ++n) {
          cell.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true, std::memory_order_release);
  scraper.join();

  // Final scrape sees every registered cell at its final value.
  std::string text = reg.PrometheusText();
  auto parsed = ParsePrometheusText(text);
  ASSERT_TRUE(parsed.ok());
  size_t samples = 0;
  for (const auto& f : parsed.ValueOrDie()) {
    if (f.name != "spindle_worker_ops_total") continue;
    for (const auto& s : f.samples) {
      ++samples;
      EXPECT_EQ(s.value, 100.0) << s.labels;
    }
  }
  EXPECT_EQ(samples, static_cast<size_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace spindle
