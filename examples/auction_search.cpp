/// \file auction_search.cpp
/// \brief The paper's §3 real-world scenario: rank auction lots with the
/// Fig. 3 strategy (lot-description branch + auction-description branch,
/// mixed linearly) and the production variant (5 parallel branches +
/// synonym query expansion), reporting hot/cold request latencies.
///
/// Usage: ./auction_search [num_lots] [num_auctions] [num_requests]

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "strategy/prebuilt.h"
#include "workload/graph_gen.h"

using namespace spindle;

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  AuctionGraphOptions gen;
  gen.num_lots = argc > 1 ? std::atoll(argv[1]) : 20000;
  gen.num_auctions = argc > 2 ? std::atoll(argv[2]) : 200;
  int num_requests = argc > 3 ? std::atoi(argv[3]) : 20;

  auto store = GenerateAuctionGraph(gen);
  if (!store.ok()) return 1;
  Catalog catalog;
  if (!store.ValueOrDie().RegisterInto(catalog).ok()) return 1;
  std::printf(
      "auction database: %lld lots in %lld auctions (%zu triples)\n",
      static_cast<long long>(gen.num_lots),
      static_cast<long long>(gen.num_auctions), store.ValueOrDie().size());

  auto queries = GenerateAuctionQueries(gen, num_requests, 3);

  for (bool production : {false, true}) {
    Result<strategy::Strategy> strat =
        production
            ? strategy::MakeProductionStrategy()
            : strategy::MakeAuctionStrategy();
    if (!strat.ok()) return 1;
    std::printf("\n== %s ==\n%s", production
                                      ? "Production strategy (5 branches + "
                                        "synonym expansion)"
                                      : "Fig. 3 strategy",
                strat.ValueOrDie().Describe().c_str());

    MaterializationCache cache(1024 << 20);
    strategy::StrategyExecutor executor(&catalog, &cache);

    // First request pays the on-demand indexing cost (cold); subsequent
    // requests run against the hot database, like the paper's 150k
    // requests/day deployment.
    double cold_ms = 0, hot_ms = 0;
    for (int i = 0; i < num_requests; ++i) {
      auto start = std::chrono::steady_clock::now();
      auto hits = executor.Run(strat.ValueOrDie(), queries[i]);
      double ms = MillisSince(start);
      if (!hits.ok()) {
        std::fprintf(stderr, "request failed: %s\n",
                     hits.status().ToString().c_str());
        return 1;
      }
      if (i == 0) {
        cold_ms = ms;
      } else {
        hot_ms += ms;
      }
      if (i == 0) {
        std::printf("sample results for \"%s\":\n%s", queries[0].c_str(),
                    hits.ValueOrDie().rel()->ToString(5).c_str());
      }
    }
    std::printf("cold request (builds indexes on demand): %8.1f ms\n",
                cold_ms);
    if (num_requests > 1) {
      std::printf("hot request average (%d requests):      %8.1f ms\n",
                  num_requests - 1, hot_ms / (num_requests - 1));
    }
    std::printf("on-demand indexes built: %llu, reused: %llu\n",
                static_cast<unsigned long long>(
                    executor.evaluator().stats().index_misses),
                static_cast<unsigned long long>(
                    executor.evaluator().stats().index_hits));
  }
  return 0;
}
