/// \file multilingual.cpp
/// \brief Why on-demand indexing with configurable analyzers matters
/// (paper §2.1): the same raw text, indexed under different Snowball
/// stemmers, yields different — language-appropriate — retrieval.
///
/// A mixed German/English product collection is searched twice per query:
/// once with the German stemmer, once with the English one. Neither index
/// required re-ingesting anything: both are built on demand from the same
/// stored strings.

#include <cstdio>
#include <string>

#include "ir/searcher.h"
#include "storage/relation.h"

using namespace spindle;

namespace {

RelationPtr Collection() {
  RelationBuilder b({{"docID", DataType::kInt64},
                     {"data", DataType::kString}});
  struct Doc {
    int64_t id;
    const char* text;
  };
  const Doc docs[] = {
      // German product descriptions.
      {1, "Antike B\xc3\xbc" "cher aus dem Nachlass, viele Zeitungen"},
      {2, "Zeitung von 1923, gut erhalten"},
      {3, "Katzen Figuren aus Porzellan, die Katze ist handbemalt"},
      // English product descriptions.
      {4, "Antique books from an estate, many newspapers"},
      {5, "Running shoes, barely used for runs"},
      {6, "Porcelain cat figurines, the cats are hand painted"},
  };
  for (const auto& d : docs) {
    if (!b.AddRow({d.id, std::string(d.text)}).ok()) abort();
  }
  return b.Build().ValueOrDie();
}

void Show(const char* label, const RelationPtr& hits) {
  std::printf("%s\n", label);
  if (hits->num_rows() == 0) {
    std::printf("  (no results)\n");
    return;
  }
  for (size_t r = 0; r < hits->num_rows(); ++r) {
    std::printf("  doc %lld  score %.4f\n",
                static_cast<long long>(hits->column(0).Int64At(r)),
                hits->column(1).Float64At(r));
  }
}

}  // namespace

int main() {
  RelationPtr docs = Collection();

  AnalyzerOptions de;
  de.stemmer = "sb-german";
  AnalyzerOptions en;
  en.stemmer = "sb-english";
  Searcher german(de);
  Searcher english(en);

  struct Query {
    const char* text;
    const char* why;
  };
  const Query queries[] = {
      {"Zeitungen",
       "German plural; sb-german conflates Zeitungen/Zeitung"},
      {"Katze", "sb-german maps Katzen/Katze to one stem"},
      {"runs", "sb-english conflates runs/running"},
      {"cats", "sb-english maps cats/cat to one stem"},
  };
  for (const auto& q : queries) {
    std::printf("== query \"%s\" (%s) ==\n", q.text, q.why);
    Show(" sb-german index:",
         german.Search(docs, "multi", q.text, {}).ValueOrDie());
    Show(" sb-english index:",
         english.Search(docs, "multi", q.text, {}).ValueOrDie());
    std::printf("\n");
  }
  std::printf(
      "Both indexes were built on demand from the same raw strings —\n"
      "changing the stemming language never re-ingests data (paper "
      "\xc2\xa7" "2.1).\n");
  return 0;
}
