/// \file toy_products.cpp
/// \brief The paper's Fig. 2 scenario end-to-end: keyword search on a
/// product database, restricted to descriptions of products in category
/// "toy" — modeled as a block strategy, compiled to SpinQL, translated to
/// SQL, and executed.
///
/// Usage: ./toy_products [num_products] [query...]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "spinql/sql_emitter.h"
#include "strategy/prebuilt.h"
#include "workload/graph_gen.h"
#include "workload/text_gen.h"

using namespace spindle;

int main(int argc, char** argv) {
  int64_t num_products = argc > 1 ? std::atoll(argv[1]) : 2000;
  std::string query;
  for (int i = 2; i < argc; ++i) {
    if (!query.empty()) query += ' ';
    query += argv[i];
  }

  ProductCatalogOptions gen;
  gen.num_products = num_products;
  auto store = GenerateProductCatalog(gen);
  if (!store.ok()) return 1;
  Catalog catalog;
  if (!store.ValueOrDie().RegisterInto(catalog).ok()) return 1;
  std::printf("product catalog: %lld products, %zu triples\n",
              static_cast<long long>(num_products),
              store.ValueOrDie().size());

  if (query.empty()) {
    // Default: three mid-frequency vocabulary terms.
    TextCollectionOptions vocab;
    vocab.vocab_size = gen.vocab_size;
    query = GenerateQueries(vocab, 1, 3, /*seed=*/5)[0];
  }

  auto strategy = strategy::MakeToyStrategy();
  if (!strategy.ok()) return 1;
  std::printf("\n== Strategy (Fig. 2) ==\n%s",
              strategy.ValueOrDie().Describe().c_str());

  auto program = strategy.ValueOrDie().Compile();
  if (!program.ok()) return 1;
  std::printf("\n== Compiled SpinQL ==\n%s",
              program.ValueOrDie().ToString().c_str());

  MaterializationCache cache(256 << 20);
  strategy::StrategyExecutor executor(&catalog, &cache);
  auto hits = executor.Run(strategy.ValueOrDie(), query);
  if (!hits.ok()) {
    std::fprintf(stderr, "strategy failed: %s\n",
                 hits.status().ToString().c_str());
    return 1;
  }
  std::printf("\n== Results for \"%s\" ==\n%s", query.c_str(),
              hits.ValueOrDie().rel()->ToString().c_str());

  // The SQL the paper would show for the docs sub-strategy.
  auto sql = spinql::EmitProgramSql(program.ValueOrDie(), catalog);
  if (sql.ok()) {
    std::printf("\n== SpinQL -> SQL (view cascade, truncated) ==\n%.1200s",
                sql.ValueOrDie().c_str());
    std::printf("...\n");
  }
  return 0;
}
