/// \file expert_finding.cpp
/// \brief Expert finding — one of the complex search tasks motivating the
/// paper ("expert finding [7, 2]", §1) — built from the same strategy
/// blocks as the auction engine, on a completely different graph.
///
/// Model: persons author papers; papers have abstracts. An expert for a
/// query is a person whose papers rank highly — rank papers by text, then
/// traverse authorship backward, accumulating evidence per person
/// (PROJECT DISJOINT: the classic profile-sum expert model, expressed
/// entirely in the probabilistic relational algebra).
///
/// Usage: ./expert_finding [num_persons] [num_papers] [query...]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/rng.h"
#include "strategy/strategy.h"
#include "triples/triple_store.h"
#include "workload/text_gen.h"

using namespace spindle;

int main(int argc, char** argv) {
  int64_t num_persons = argc > 1 ? std::atoll(argv[1]) : 200;
  int64_t num_papers = argc > 2 ? std::atoll(argv[2]) : 2000;
  std::string query;
  for (int i = 3; i < argc; ++i) {
    if (!query.empty()) query += ' ';
    query += argv[i];
  }

  // Synthetic publication graph: each paper has 1-3 authors and an
  // abstract; prolific authors follow a Zipf distribution, like real
  // co-authorship networks.
  Rng rng(2026);
  ZipfSampler author_zipf(static_cast<uint64_t>(num_persons), 1.0);
  ZipfSampler vocab(20000, 1.0);
  TripleStore store;
  for (int64_t p = 0; p < num_persons; ++p) {
    store.Add("person" + std::to_string(p + 1), "type", "person");
  }
  for (int64_t d = 0; d < num_papers; ++d) {
    std::string paper = "paper" + std::to_string(d + 1);
    store.Add(paper, "type", "paper");
    store.Add(paper, "abstract", RandomText(rng, vocab, 40));
    int num_authors = 1 + static_cast<int>(rng.NextBounded(3));
    for (int a = 0; a < num_authors; ++a) {
      store.Add("person" + std::to_string(author_zipf.Sample(rng)),
                "authorOf", paper);
    }
  }
  Catalog catalog;
  if (!store.RegisterInto(catalog).ok()) return 1;
  std::printf("publication graph: %lld persons, %lld papers, %zu triples\n",
              static_cast<long long>(num_persons),
              static_cast<long long>(num_papers), store.size());

  if (query.empty()) {
    TextCollectionOptions vocab_opts;
    vocab_opts.vocab_size = 20000;
    query = GenerateQueries(vocab_opts, 1, 3, /*seed=*/3)[0];
  }

  // The strategy, from the same blocks as the auction engine:
  //   papers --extract abstract--> rank by text --traverse authorOf
  //   backward (disjoint: evidence accumulates per person)--> top-10.
  strategy::Strategy s;
  auto papers =
      s.Add(strategy::MakeSelectByTypeBlock("paper")).ValueOrDie();
  auto docs = s.Add(strategy::MakeExtractPropertyBlock("abstract"),
                    {papers})
                  .ValueOrDie();
  auto q = s.Add(strategy::MakeQueryBlock()).ValueOrDie();
  auto ranked =
      s.Add(strategy::MakeRankByTextBlock(), {docs, q}).ValueOrDie();
  auto experts =
      s.Add(strategy::MakeTraverseBlock("authorOf", Direction::kBackward,
                                        Assumption::kDisjoint),
            {ranked})
          .ValueOrDie();
  auto top = s.Add(strategy::MakeTopKBlock(10), {experts}).ValueOrDie();
  (void)top;

  std::printf("\n== Strategy ==\n%s", s.Describe().c_str());
  std::printf("\n== Compiled SpinQL ==\n%s",
              s.Compile().ValueOrDie().ToString().c_str());

  MaterializationCache cache(512 << 20);
  strategy::StrategyExecutor executor(&catalog, &cache);
  auto hits = executor.Run(s, query);
  if (!hits.ok()) {
    std::fprintf(stderr, "failed: %s\n", hits.status().ToString().c_str());
    return 1;
  }
  std::printf("\n== Experts for \"%s\" ==\n%s", query.c_str(),
              hits.ValueOrDie().rel()->ToString().c_str());
  return 0;
}
