/// \file run_spinql.cpp
/// \brief Batch SpinQL runner: load a triple file, execute a SpinQL
/// program, print (or save) the result — the scripting counterpart of
/// spinql_shell.
///
/// Usage:
///   run_spinql <triples.nt | triples.tsv> <program.spinql>
///              [--query "text"] [--sql] [--out result.tsv]
///
/// The triple file is registered as table `triples` (plus `triples_int`,
/// `triples_float` for .nt input). With --query, a (data, p) singleton is
/// registered as `query` so programs can use RANK. --sql prints the SQL
/// translation of the program instead of executing it.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "spinql/evaluator.h"
#include "spinql/optimizer.h"
#include "spinql/sql_emitter.h"
#include "storage/io.h"
#include "triples/ntriples.h"

using namespace spindle;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

bool EndsWith(const std::string& s, const char* suffix) {
  size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <triples.nt|.tsv> <program.spinql> "
                 "[--query \"text\"] [--sql] [--out result.tsv]\n",
                 argv[0]);
    return 2;
  }
  std::string triples_path = argv[1];
  std::string program_path = argv[2];
  std::string query_text;
  std::string out_path;
  bool emit_sql = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sql") == 0) {
      emit_sql = true;
    } else if (std::strcmp(argv[i], "--query") == 0 && i + 1 < argc) {
      query_text = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  Catalog catalog;
  if (EndsWith(triples_path, ".tsv")) {
    auto rel = ReadTsv(triples_path);
    if (!rel.ok()) return Fail(rel.status());
    catalog.Register("triples", rel.ValueOrDie());
  } else {
    auto store = LoadNTriplesFile(triples_path);
    if (!store.ok()) return Fail(store.status());
    Status st = store.ValueOrDie().RegisterInto(catalog);
    if (!st.ok()) return Fail(st);
  }

  std::ifstream program_file(program_path);
  if (!program_file) {
    std::fprintf(stderr, "cannot open %s\n", program_path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << program_file.rdbuf();
  auto program = spinql::Program::Parse(buffer.str());
  if (!program.ok()) return Fail(program.status());

  if (!query_text.empty()) {
    RelationBuilder qb(
        {{"data", DataType::kString}, {"p", DataType::kFloat64}});
    Status st = qb.AddRow({query_text, 1.0});
    if (!st.ok()) return Fail(st);
    auto qrel = qb.Build();
    if (!qrel.ok()) return Fail(qrel.status());
    catalog.Register("query", qrel.ValueOrDie());
  }

  if (emit_sql) {
    auto sql = spinql::EmitProgramSql(program.ValueOrDie(), catalog);
    if (!sql.ok()) return Fail(sql.status());
    std::printf("%s", sql.ValueOrDie().c_str());
    return 0;
  }

  auto optimized =
      spinql::OptimizeProgram(program.ValueOrDie(), nullptr);
  if (!optimized.ok()) return Fail(optimized.status());

  MaterializationCache cache(512 << 20);
  spinql::Evaluator evaluator(&catalog, &cache);
  auto result = evaluator.Eval(optimized.ValueOrDie());
  if (!result.ok()) return Fail(result.status());

  if (!out_path.empty()) {
    Status st = WriteTsv(*result.ValueOrDie().rel(), out_path);
    if (!st.ok()) return Fail(st);
    std::printf("wrote %zu rows to %s\n",
                result.ValueOrDie().num_rows(), out_path.c_str());
  } else {
    std::printf("%s", result.ValueOrDie().rel()->ToString(50).c_str());
  }
  return 0;
}
