/// \file spinql_shell.cpp
/// \brief Interactive SpinQL shell over a generated product catalog and
/// auction graph — explore the probabilistic relational algebra directly.
///
/// Reads statements (`name = expr;`) or expressions from stdin, one per
/// line (end with ';' for statements). Special commands:
///   .tables            list catalog tables
///   .sql <binding>     show the SQL translation of a binding
///   .program           print accumulated program
///   EXPLAIN ANALYZE <expr>   execute the expression and print the
///                      per-operator tree (wall time, rows, cache
///                      hit/miss) instead of rows; session bindings are
///                      not visible to EXPLAIN ANALYZE
///   SAVE SNAPSHOT <path>     persist the whole catalog to a mapped
///                      snapshot file (storage/snapshot.h format)
///   LOAD SNAPSHOT <path>     map a snapshot and register its relations
///                      (replacing same-named tables, zero-copy)
///   .quit
///
/// Usage: ./spinql_shell   (then type, e.g.)
///   SELECT [$2="category" and $3="toy"] (triples)
///   docs = PROJECT [$1,$6] (JOIN INDEPENDENT [$1=$1] (
///       SELECT [$2="category" and $3="toy"] (triples),
///       SELECT [$2="description"] (triples)));
///   docs

#include <cstdio>
#include <iostream>
#include <string>

#include "ir/index_snapshot.h"
#include "spinql/evaluator.h"
#include "spinql/parser.h"
#include "spinql/sql_emitter.h"
#include "workload/graph_gen.h"

using namespace spindle;

int main() {
  Catalog catalog;
  {
    ProductCatalogOptions popts;
    popts.num_products = 500;
    auto products = GenerateProductCatalog(popts);
    if (!products.ok() ||
        !products.ValueOrDie().RegisterInto(catalog).ok()) {
      return 1;
    }
    AuctionGraphOptions aopts;
    aopts.num_lots = 500;
    aopts.num_auctions = 10;
    auto auctions = GenerateAuctionGraph(aopts);
    if (!auctions.ok() ||
        !auctions.ValueOrDie().RegisterInto(catalog, "auction_triples")
             .ok()) {
      return 1;
    }
  }
  MaterializationCache cache(256 << 20);
  spinql::Evaluator evaluator(&catalog, &cache);
  spinql::Program session;

  std::printf("Spindle SpinQL shell. Tables: ");
  for (const auto& name : catalog.List()) std::printf("%s ", name.c_str());
  std::printf("\nType .quit to exit.\n");

  std::string line;
  while (std::printf("spinql> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == ".quit" || line == ".exit") break;
    if (line == ".tables") {
      for (const auto& name : catalog.List()) {
        auto rel = catalog.Get(name).ValueOrDie();
        std::printf("  %-18s %s [%zu rows]\n", name.c_str(),
                    rel->schema().ToString().c_str(), rel->num_rows());
      }
      continue;
    }
    if (line == ".program") {
      std::printf("%s", session.ToString().c_str());
      continue;
    }
    if (line.rfind(".sql ", 0) == 0) {
      std::string name = line.substr(5);
      auto node = session.Lookup(name);
      if (!node.ok()) {
        std::printf("%s\n", node.status().ToString().c_str());
        continue;
      }
      auto sql = spinql::EmitSql(node.ValueOrDie(), session, catalog);
      std::printf("%s\n", sql.ok() ? sql.ValueOrDie().c_str()
                                   : sql.status().ToString().c_str());
      continue;
    }

    if (line.rfind("SAVE SNAPSHOT ", 0) == 0) {
      std::string path = line.substr(14);
      Status st = SaveSnapshotFile(path, catalog, {});
      std::printf("%s\n", st.ok() ? ("saved " + path).c_str()
                                  : st.ToString().c_str());
      continue;
    }
    if (line.rfind("LOAD SNAPSHOT ", 0) == 0) {
      std::string path = line.substr(14);
      SnapshotLoadInfo info;
      Status st = LoadSnapshotFile(path, &catalog, nullptr, &info);
      if (st.ok()) {
        std::printf("loaded %s: %zu relations, %zu bytes mapped\n",
                    path.c_str(), info.relations, info.file_bytes);
      } else {
        std::printf("%s\n", st.ToString().c_str());
      }
      continue;
    }

    if (line.rfind("EXPLAIN", 0) == 0 || line.rfind("explain", 0) == 0) {
      auto tree = evaluator.ExplainAnalyze(line);
      std::printf("%s", tree.ok() ? tree.ValueOrDie().c_str()
                                  : (tree.status().ToString() + "\n").c_str());
      continue;
    }

    // Statement (contains '=') accumulates into the session program;
    // a bare expression evaluates immediately.
    bool is_statement = line.find(';') != std::string::npos;
    if (is_statement) {
      auto parsed = spinql::Program::Parse(line);
      if (!parsed.ok()) {
        std::printf("%s\n", parsed.status().ToString().c_str());
        continue;
      }
      bool ok = true;
      for (const auto& [name, node] : parsed.ValueOrDie().statements()) {
        Status st = session.Append(name, node);
        if (!st.ok()) {
          std::printf("%s\n", st.ToString().c_str());
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      auto result = evaluator.Eval(
          session, parsed.ValueOrDie().statements().back().first);
      if (!result.ok()) {
        std::printf("%s\n", result.status().ToString().c_str());
        continue;
      }
      std::printf("%s", result.ValueOrDie().rel()->ToString(10).c_str());
    } else {
      auto node = spinql::ParseExpression(line);
      if (!node.ok()) {
        std::printf("%s\n", node.status().ToString().c_str());
        continue;
      }
      // Bindings from the session are visible to bare expressions.
      spinql::Program scratch = session;
      Status st = scratch.Append("_", node.ValueOrDie());
      if (!st.ok()) {
        std::printf("%s\n", st.ToString().c_str());
        continue;
      }
      auto result = evaluator.Eval(scratch, "_");
      if (!result.ok()) {
        std::printf("%s\n", result.status().ToString().c_str());
        continue;
      }
      std::printf("%s", result.ValueOrDie().rel()->ToString(10).c_str());
    }
  }
  return 0;
}
