/// \file quickstart.cpp
/// \brief Spindle in five minutes: keyword search on a database.
///
/// Shows the two entry points:
///  1. the high-level Searcher (on-demand BM25 over any (docID, data)
///     relation), and
///  2. SpinQL, the probabilistic relational algebra, including its SQL
///     translation.
///
/// Build & run:  ./quickstart

#include <cstdio>

#include "ir/searcher.h"
#include "spinql/evaluator.h"
#include "spinql/sql_emitter.h"
#include "storage/relation.h"
#include "triples/triple_store.h"

using namespace spindle;

int main() {
  // ---------------------------------------------------------------------
  // 1. IR-on-DB: a text collection is just a relation.
  // ---------------------------------------------------------------------
  RelationBuilder builder({{"docID", DataType::kInt64},
                           {"data", DataType::kString}});
  struct Doc {
    int64_t id;
    const char* text;
  };
  const Doc docs[] = {
      {1, "Implementing keyword search on top of relational engines"},
      {2, "Column stores are great at analytical workloads"},
      {3, "Inverted indexes map terms to posting lists"},
      {4, "A probabilistic relational algebra integrates IR and databases"},
      {5, "Snowball stemmers normalize morphological variants"},
  };
  for (const auto& d : docs) {
    if (!builder.AddRow({d.id, std::string(d.text)}).ok()) return 1;
  }
  RelationPtr collection = builder.Build().ValueOrDie();

  Searcher searcher;  // default analyzer: lowercase + Snowball English
  SearchOptions options;
  options.top_k = 3;
  auto hits =
      searcher.Search(collection, "quickstart", "relational search engines",
                      options);
  if (!hits.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 hits.status().ToString().c_str());
    return 1;
  }
  std::printf("== BM25 top-3 for \"relational search engines\" ==\n");
  RelationPtr ranked = hits.ValueOrDie();
  for (size_t r = 0; r < ranked->num_rows(); ++r) {
    std::printf("  doc %2lld   score %.4f\n",
                static_cast<long long>(ranked->column(0).Int64At(r)),
                ranked->column(1).Float64At(r));
  }

  // ---------------------------------------------------------------------
  // 2. SpinQL over a probabilistic triple store (the paper's toy query).
  // ---------------------------------------------------------------------
  TripleStore store;
  store.Add("prod1", "category", "toy");
  store.Add("prod1", "description", "a red toy car");
  store.Add("prod2", "category", "book");
  store.Add("prod2", "description", "a history book");
  Catalog catalog;
  if (!store.RegisterInto(catalog).ok()) return 1;

  const char* program_src =
      "docs = PROJECT [$1,$6] (\n"
      "  JOIN INDEPENDENT [$1=$1] (\n"
      "    SELECT [$2=\"category\" and $3=\"toy\"] (triples),\n"
      "    SELECT [$2=\"description\"] (triples) ) );\n";
  auto program = spinql::Program::Parse(program_src);
  if (!program.ok()) return 1;

  MaterializationCache cache(64 << 20);
  spinql::Evaluator evaluator(&catalog, &cache);
  auto result = evaluator.Eval(program.ValueOrDie());
  if (!result.ok()) return 1;
  std::printf("\n== SpinQL: toy product descriptions ==\n%s",
              result.ValueOrDie().rel()->ToString().c_str());

  auto sql = spinql::EmitSql(
      program.ValueOrDie().Lookup("docs").ValueOrDie(),
      program.ValueOrDie(), catalog);
  if (sql.ok()) {
    std::printf("\n== Translated to SQL (paper Section 2.3) ==\n%s\n",
                sql.ValueOrDie().c_str());
  }
  return 0;
}
