file(REMOVE_RECURSE
  "CMakeFiles/spindle_specialized.dir/inverted_index.cc.o"
  "CMakeFiles/spindle_specialized.dir/inverted_index.cc.o.d"
  "libspindle_specialized.a"
  "libspindle_specialized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spindle_specialized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
