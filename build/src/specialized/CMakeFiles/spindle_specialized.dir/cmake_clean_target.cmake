file(REMOVE_RECURSE
  "libspindle_specialized.a"
)
