# Empty compiler generated dependencies file for spindle_specialized.
# This may be replaced when dependencies are built.
