
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/specialized/inverted_index.cc" "src/specialized/CMakeFiles/spindle_specialized.dir/inverted_index.cc.o" "gcc" "src/specialized/CMakeFiles/spindle_specialized.dir/inverted_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/spindle_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/spindle_text.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/spindle_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/spindle_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spindle_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
