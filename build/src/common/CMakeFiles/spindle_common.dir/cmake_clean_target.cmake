file(REMOVE_RECURSE
  "libspindle_common.a"
)
