file(REMOVE_RECURSE
  "CMakeFiles/spindle_common.dir/rng.cc.o"
  "CMakeFiles/spindle_common.dir/rng.cc.o.d"
  "CMakeFiles/spindle_common.dir/status.cc.o"
  "CMakeFiles/spindle_common.dir/status.cc.o.d"
  "CMakeFiles/spindle_common.dir/str.cc.o"
  "CMakeFiles/spindle_common.dir/str.cc.o.d"
  "libspindle_common.a"
  "libspindle_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spindle_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
