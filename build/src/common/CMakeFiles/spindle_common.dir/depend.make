# Empty dependencies file for spindle_common.
# This may be replaced when dependencies are built.
