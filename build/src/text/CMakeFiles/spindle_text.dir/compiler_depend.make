# Empty compiler generated dependencies file for spindle_text.
# This may be replaced when dependencies are built.
