file(REMOVE_RECURSE
  "libspindle_text.a"
)
