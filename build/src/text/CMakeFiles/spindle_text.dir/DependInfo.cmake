
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/analyzer.cc" "src/text/CMakeFiles/spindle_text.dir/analyzer.cc.o" "gcc" "src/text/CMakeFiles/spindle_text.dir/analyzer.cc.o.d"
  "/root/repo/src/text/dutch.cc" "src/text/CMakeFiles/spindle_text.dir/dutch.cc.o" "gcc" "src/text/CMakeFiles/spindle_text.dir/dutch.cc.o.d"
  "/root/repo/src/text/german.cc" "src/text/CMakeFiles/spindle_text.dir/german.cc.o" "gcc" "src/text/CMakeFiles/spindle_text.dir/german.cc.o.d"
  "/root/repo/src/text/porter1.cc" "src/text/CMakeFiles/spindle_text.dir/porter1.cc.o" "gcc" "src/text/CMakeFiles/spindle_text.dir/porter1.cc.o.d"
  "/root/repo/src/text/porter2.cc" "src/text/CMakeFiles/spindle_text.dir/porter2.cc.o" "gcc" "src/text/CMakeFiles/spindle_text.dir/porter2.cc.o.d"
  "/root/repo/src/text/simple_stemmers.cc" "src/text/CMakeFiles/spindle_text.dir/simple_stemmers.cc.o" "gcc" "src/text/CMakeFiles/spindle_text.dir/simple_stemmers.cc.o.d"
  "/root/repo/src/text/stopwords.cc" "src/text/CMakeFiles/spindle_text.dir/stopwords.cc.o" "gcc" "src/text/CMakeFiles/spindle_text.dir/stopwords.cc.o.d"
  "/root/repo/src/text/text_functions.cc" "src/text/CMakeFiles/spindle_text.dir/text_functions.cc.o" "gcc" "src/text/CMakeFiles/spindle_text.dir/text_functions.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/text/CMakeFiles/spindle_text.dir/tokenizer.cc.o" "gcc" "src/text/CMakeFiles/spindle_text.dir/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/spindle_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spindle_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/spindle_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
