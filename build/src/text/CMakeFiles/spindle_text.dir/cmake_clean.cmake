file(REMOVE_RECURSE
  "CMakeFiles/spindle_text.dir/analyzer.cc.o"
  "CMakeFiles/spindle_text.dir/analyzer.cc.o.d"
  "CMakeFiles/spindle_text.dir/dutch.cc.o"
  "CMakeFiles/spindle_text.dir/dutch.cc.o.d"
  "CMakeFiles/spindle_text.dir/german.cc.o"
  "CMakeFiles/spindle_text.dir/german.cc.o.d"
  "CMakeFiles/spindle_text.dir/porter1.cc.o"
  "CMakeFiles/spindle_text.dir/porter1.cc.o.d"
  "CMakeFiles/spindle_text.dir/porter2.cc.o"
  "CMakeFiles/spindle_text.dir/porter2.cc.o.d"
  "CMakeFiles/spindle_text.dir/simple_stemmers.cc.o"
  "CMakeFiles/spindle_text.dir/simple_stemmers.cc.o.d"
  "CMakeFiles/spindle_text.dir/stopwords.cc.o"
  "CMakeFiles/spindle_text.dir/stopwords.cc.o.d"
  "CMakeFiles/spindle_text.dir/text_functions.cc.o"
  "CMakeFiles/spindle_text.dir/text_functions.cc.o.d"
  "CMakeFiles/spindle_text.dir/tokenizer.cc.o"
  "CMakeFiles/spindle_text.dir/tokenizer.cc.o.d"
  "libspindle_text.a"
  "libspindle_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spindle_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
