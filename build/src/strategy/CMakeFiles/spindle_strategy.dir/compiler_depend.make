# Empty compiler generated dependencies file for spindle_strategy.
# This may be replaced when dependencies are built.
