file(REMOVE_RECURSE
  "libspindle_strategy.a"
)
