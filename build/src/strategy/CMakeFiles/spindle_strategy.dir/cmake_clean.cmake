file(REMOVE_RECURSE
  "CMakeFiles/spindle_strategy.dir/block.cc.o"
  "CMakeFiles/spindle_strategy.dir/block.cc.o.d"
  "CMakeFiles/spindle_strategy.dir/prebuilt.cc.o"
  "CMakeFiles/spindle_strategy.dir/prebuilt.cc.o.d"
  "CMakeFiles/spindle_strategy.dir/strategy.cc.o"
  "CMakeFiles/spindle_strategy.dir/strategy.cc.o.d"
  "libspindle_strategy.a"
  "libspindle_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spindle_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
