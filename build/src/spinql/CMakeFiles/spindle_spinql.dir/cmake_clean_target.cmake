file(REMOVE_RECURSE
  "libspindle_spinql.a"
)
