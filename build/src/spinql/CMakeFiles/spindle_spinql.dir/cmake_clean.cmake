file(REMOVE_RECURSE
  "CMakeFiles/spindle_spinql.dir/ast.cc.o"
  "CMakeFiles/spindle_spinql.dir/ast.cc.o.d"
  "CMakeFiles/spindle_spinql.dir/evaluator.cc.o"
  "CMakeFiles/spindle_spinql.dir/evaluator.cc.o.d"
  "CMakeFiles/spindle_spinql.dir/lexer.cc.o"
  "CMakeFiles/spindle_spinql.dir/lexer.cc.o.d"
  "CMakeFiles/spindle_spinql.dir/optimizer.cc.o"
  "CMakeFiles/spindle_spinql.dir/optimizer.cc.o.d"
  "CMakeFiles/spindle_spinql.dir/parser.cc.o"
  "CMakeFiles/spindle_spinql.dir/parser.cc.o.d"
  "CMakeFiles/spindle_spinql.dir/sql_emitter.cc.o"
  "CMakeFiles/spindle_spinql.dir/sql_emitter.cc.o.d"
  "libspindle_spinql.a"
  "libspindle_spinql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spindle_spinql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
