
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spinql/ast.cc" "src/spinql/CMakeFiles/spindle_spinql.dir/ast.cc.o" "gcc" "src/spinql/CMakeFiles/spindle_spinql.dir/ast.cc.o.d"
  "/root/repo/src/spinql/evaluator.cc" "src/spinql/CMakeFiles/spindle_spinql.dir/evaluator.cc.o" "gcc" "src/spinql/CMakeFiles/spindle_spinql.dir/evaluator.cc.o.d"
  "/root/repo/src/spinql/lexer.cc" "src/spinql/CMakeFiles/spindle_spinql.dir/lexer.cc.o" "gcc" "src/spinql/CMakeFiles/spindle_spinql.dir/lexer.cc.o.d"
  "/root/repo/src/spinql/optimizer.cc" "src/spinql/CMakeFiles/spindle_spinql.dir/optimizer.cc.o" "gcc" "src/spinql/CMakeFiles/spindle_spinql.dir/optimizer.cc.o.d"
  "/root/repo/src/spinql/parser.cc" "src/spinql/CMakeFiles/spindle_spinql.dir/parser.cc.o" "gcc" "src/spinql/CMakeFiles/spindle_spinql.dir/parser.cc.o.d"
  "/root/repo/src/spinql/sql_emitter.cc" "src/spinql/CMakeFiles/spindle_spinql.dir/sql_emitter.cc.o" "gcc" "src/spinql/CMakeFiles/spindle_spinql.dir/sql_emitter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pra/CMakeFiles/spindle_pra.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/spindle_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/spindle_text.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/spindle_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/spindle_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spindle_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
