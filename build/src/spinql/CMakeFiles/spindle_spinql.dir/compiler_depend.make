# Empty compiler generated dependencies file for spindle_spinql.
# This may be replaced when dependencies are built.
