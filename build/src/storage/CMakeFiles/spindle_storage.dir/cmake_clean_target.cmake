file(REMOVE_RECURSE
  "libspindle_storage.a"
)
