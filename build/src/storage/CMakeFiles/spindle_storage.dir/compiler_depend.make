# Empty compiler generated dependencies file for spindle_storage.
# This may be replaced when dependencies are built.
