file(REMOVE_RECURSE
  "CMakeFiles/spindle_storage.dir/catalog.cc.o"
  "CMakeFiles/spindle_storage.dir/catalog.cc.o.d"
  "CMakeFiles/spindle_storage.dir/column.cc.o"
  "CMakeFiles/spindle_storage.dir/column.cc.o.d"
  "CMakeFiles/spindle_storage.dir/io.cc.o"
  "CMakeFiles/spindle_storage.dir/io.cc.o.d"
  "CMakeFiles/spindle_storage.dir/relation.cc.o"
  "CMakeFiles/spindle_storage.dir/relation.cc.o.d"
  "CMakeFiles/spindle_storage.dir/schema.cc.o"
  "CMakeFiles/spindle_storage.dir/schema.cc.o.d"
  "CMakeFiles/spindle_storage.dir/string_dict.cc.o"
  "CMakeFiles/spindle_storage.dir/string_dict.cc.o.d"
  "CMakeFiles/spindle_storage.dir/types.cc.o"
  "CMakeFiles/spindle_storage.dir/types.cc.o.d"
  "libspindle_storage.a"
  "libspindle_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spindle_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
