
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/catalog.cc" "src/storage/CMakeFiles/spindle_storage.dir/catalog.cc.o" "gcc" "src/storage/CMakeFiles/spindle_storage.dir/catalog.cc.o.d"
  "/root/repo/src/storage/column.cc" "src/storage/CMakeFiles/spindle_storage.dir/column.cc.o" "gcc" "src/storage/CMakeFiles/spindle_storage.dir/column.cc.o.d"
  "/root/repo/src/storage/io.cc" "src/storage/CMakeFiles/spindle_storage.dir/io.cc.o" "gcc" "src/storage/CMakeFiles/spindle_storage.dir/io.cc.o.d"
  "/root/repo/src/storage/relation.cc" "src/storage/CMakeFiles/spindle_storage.dir/relation.cc.o" "gcc" "src/storage/CMakeFiles/spindle_storage.dir/relation.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/storage/CMakeFiles/spindle_storage.dir/schema.cc.o" "gcc" "src/storage/CMakeFiles/spindle_storage.dir/schema.cc.o.d"
  "/root/repo/src/storage/string_dict.cc" "src/storage/CMakeFiles/spindle_storage.dir/string_dict.cc.o" "gcc" "src/storage/CMakeFiles/spindle_storage.dir/string_dict.cc.o.d"
  "/root/repo/src/storage/types.cc" "src/storage/CMakeFiles/spindle_storage.dir/types.cc.o" "gcc" "src/storage/CMakeFiles/spindle_storage.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/spindle_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
