file(REMOVE_RECURSE
  "libspindle_workload.a"
)
