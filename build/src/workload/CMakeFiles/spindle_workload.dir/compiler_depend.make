# Empty compiler generated dependencies file for spindle_workload.
# This may be replaced when dependencies are built.
