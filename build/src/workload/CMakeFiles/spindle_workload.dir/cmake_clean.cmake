file(REMOVE_RECURSE
  "CMakeFiles/spindle_workload.dir/graph_gen.cc.o"
  "CMakeFiles/spindle_workload.dir/graph_gen.cc.o.d"
  "CMakeFiles/spindle_workload.dir/text_gen.cc.o"
  "CMakeFiles/spindle_workload.dir/text_gen.cc.o.d"
  "CMakeFiles/spindle_workload.dir/topical_gen.cc.o"
  "CMakeFiles/spindle_workload.dir/topical_gen.cc.o.d"
  "libspindle_workload.a"
  "libspindle_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spindle_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
