file(REMOVE_RECURSE
  "libspindle_triples.a"
)
