file(REMOVE_RECURSE
  "CMakeFiles/spindle_triples.dir/emergent_schema.cc.o"
  "CMakeFiles/spindle_triples.dir/emergent_schema.cc.o.d"
  "CMakeFiles/spindle_triples.dir/graph.cc.o"
  "CMakeFiles/spindle_triples.dir/graph.cc.o.d"
  "CMakeFiles/spindle_triples.dir/ntriples.cc.o"
  "CMakeFiles/spindle_triples.dir/ntriples.cc.o.d"
  "CMakeFiles/spindle_triples.dir/partitioning.cc.o"
  "CMakeFiles/spindle_triples.dir/partitioning.cc.o.d"
  "CMakeFiles/spindle_triples.dir/triple_store.cc.o"
  "CMakeFiles/spindle_triples.dir/triple_store.cc.o.d"
  "libspindle_triples.a"
  "libspindle_triples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spindle_triples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
