# Empty dependencies file for spindle_triples.
# This may be replaced when dependencies are built.
