
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/triples/emergent_schema.cc" "src/triples/CMakeFiles/spindle_triples.dir/emergent_schema.cc.o" "gcc" "src/triples/CMakeFiles/spindle_triples.dir/emergent_schema.cc.o.d"
  "/root/repo/src/triples/graph.cc" "src/triples/CMakeFiles/spindle_triples.dir/graph.cc.o" "gcc" "src/triples/CMakeFiles/spindle_triples.dir/graph.cc.o.d"
  "/root/repo/src/triples/ntriples.cc" "src/triples/CMakeFiles/spindle_triples.dir/ntriples.cc.o" "gcc" "src/triples/CMakeFiles/spindle_triples.dir/ntriples.cc.o.d"
  "/root/repo/src/triples/partitioning.cc" "src/triples/CMakeFiles/spindle_triples.dir/partitioning.cc.o" "gcc" "src/triples/CMakeFiles/spindle_triples.dir/partitioning.cc.o.d"
  "/root/repo/src/triples/triple_store.cc" "src/triples/CMakeFiles/spindle_triples.dir/triple_store.cc.o" "gcc" "src/triples/CMakeFiles/spindle_triples.dir/triple_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/spindle_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/pra/CMakeFiles/spindle_pra.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/spindle_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spindle_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
