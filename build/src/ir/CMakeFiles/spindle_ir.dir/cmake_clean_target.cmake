file(REMOVE_RECURSE
  "libspindle_ir.a"
)
