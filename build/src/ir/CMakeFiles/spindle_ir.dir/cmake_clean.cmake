file(REMOVE_RECURSE
  "CMakeFiles/spindle_ir.dir/eval.cc.o"
  "CMakeFiles/spindle_ir.dir/eval.cc.o.d"
  "CMakeFiles/spindle_ir.dir/indexing.cc.o"
  "CMakeFiles/spindle_ir.dir/indexing.cc.o.d"
  "CMakeFiles/spindle_ir.dir/phrase.cc.o"
  "CMakeFiles/spindle_ir.dir/phrase.cc.o.d"
  "CMakeFiles/spindle_ir.dir/ranking.cc.o"
  "CMakeFiles/spindle_ir.dir/ranking.cc.o.d"
  "CMakeFiles/spindle_ir.dir/searcher.cc.o"
  "CMakeFiles/spindle_ir.dir/searcher.cc.o.d"
  "libspindle_ir.a"
  "libspindle_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spindle_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
