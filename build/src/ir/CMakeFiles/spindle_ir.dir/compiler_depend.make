# Empty compiler generated dependencies file for spindle_ir.
# This may be replaced when dependencies are built.
