file(REMOVE_RECURSE
  "CMakeFiles/spindle_engine.dir/expr.cc.o"
  "CMakeFiles/spindle_engine.dir/expr.cc.o.d"
  "CMakeFiles/spindle_engine.dir/materialization_cache.cc.o"
  "CMakeFiles/spindle_engine.dir/materialization_cache.cc.o.d"
  "CMakeFiles/spindle_engine.dir/ops.cc.o"
  "CMakeFiles/spindle_engine.dir/ops.cc.o.d"
  "libspindle_engine.a"
  "libspindle_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spindle_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
