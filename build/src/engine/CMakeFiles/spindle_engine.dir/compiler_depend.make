# Empty compiler generated dependencies file for spindle_engine.
# This may be replaced when dependencies are built.
