
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/expr.cc" "src/engine/CMakeFiles/spindle_engine.dir/expr.cc.o" "gcc" "src/engine/CMakeFiles/spindle_engine.dir/expr.cc.o.d"
  "/root/repo/src/engine/materialization_cache.cc" "src/engine/CMakeFiles/spindle_engine.dir/materialization_cache.cc.o" "gcc" "src/engine/CMakeFiles/spindle_engine.dir/materialization_cache.cc.o.d"
  "/root/repo/src/engine/ops.cc" "src/engine/CMakeFiles/spindle_engine.dir/ops.cc.o" "gcc" "src/engine/CMakeFiles/spindle_engine.dir/ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/spindle_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spindle_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
