file(REMOVE_RECURSE
  "libspindle_engine.a"
)
