# Empty compiler generated dependencies file for spindle_pra.
# This may be replaced when dependencies are built.
