file(REMOVE_RECURSE
  "CMakeFiles/spindle_pra.dir/pra_ops.cc.o"
  "CMakeFiles/spindle_pra.dir/pra_ops.cc.o.d"
  "CMakeFiles/spindle_pra.dir/prob_relation.cc.o"
  "CMakeFiles/spindle_pra.dir/prob_relation.cc.o.d"
  "libspindle_pra.a"
  "libspindle_pra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spindle_pra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
