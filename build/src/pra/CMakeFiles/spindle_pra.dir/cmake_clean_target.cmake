file(REMOVE_RECURSE
  "libspindle_pra.a"
)
