
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pra/pra_ops.cc" "src/pra/CMakeFiles/spindle_pra.dir/pra_ops.cc.o" "gcc" "src/pra/CMakeFiles/spindle_pra.dir/pra_ops.cc.o.d"
  "/root/repo/src/pra/prob_relation.cc" "src/pra/CMakeFiles/spindle_pra.dir/prob_relation.cc.o" "gcc" "src/pra/CMakeFiles/spindle_pra.dir/prob_relation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/spindle_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/spindle_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spindle_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
