# Empty dependencies file for bench_e2_term_lookup.
# This may be replaced when dependencies are built.
