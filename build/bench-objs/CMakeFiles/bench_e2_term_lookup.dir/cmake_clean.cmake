file(REMOVE_RECURSE
  "../bench/bench_e2_term_lookup"
  "../bench/bench_e2_term_lookup.pdb"
  "CMakeFiles/bench_e2_term_lookup.dir/bench_e2_term_lookup.cpp.o"
  "CMakeFiles/bench_e2_term_lookup.dir/bench_e2_term_lookup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_term_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
