file(REMOVE_RECURSE
  "../bench/bench_e6_toy_strategy"
  "../bench/bench_e6_toy_strategy.pdb"
  "CMakeFiles/bench_e6_toy_strategy.dir/bench_e6_toy_strategy.cpp.o"
  "CMakeFiles/bench_e6_toy_strategy.dir/bench_e6_toy_strategy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_toy_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
