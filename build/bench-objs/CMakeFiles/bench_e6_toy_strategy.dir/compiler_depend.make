# Empty compiler generated dependencies file for bench_e6_toy_strategy.
# This may be replaced when dependencies are built.
