# Empty dependencies file for bench_e7_auction_strategy.
# This may be replaced when dependencies are built.
