file(REMOVE_RECURSE
  "../bench/bench_e7_auction_strategy"
  "../bench/bench_e7_auction_strategy.pdb"
  "CMakeFiles/bench_e7_auction_strategy.dir/bench_e7_auction_strategy.cpp.o"
  "CMakeFiles/bench_e7_auction_strategy.dir/bench_e7_auction_strategy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_auction_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
