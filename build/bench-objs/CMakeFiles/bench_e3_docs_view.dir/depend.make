# Empty dependencies file for bench_e3_docs_view.
# This may be replaced when dependencies are built.
