file(REMOVE_RECURSE
  "../bench/bench_e3_docs_view"
  "../bench/bench_e3_docs_view.pdb"
  "CMakeFiles/bench_e3_docs_view.dir/bench_e3_docs_view.cpp.o"
  "CMakeFiles/bench_e3_docs_view.dir/bench_e3_docs_view.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_docs_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
