file(REMOVE_RECURSE
  "../bench/bench_e9_vs_specialized"
  "../bench/bench_e9_vs_specialized.pdb"
  "CMakeFiles/bench_e9_vs_specialized.dir/bench_e9_vs_specialized.cpp.o"
  "CMakeFiles/bench_e9_vs_specialized.dir/bench_e9_vs_specialized.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_vs_specialized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
