# Empty compiler generated dependencies file for bench_e9_vs_specialized.
# This may be replaced when dependencies are built.
