file(REMOVE_RECURSE
  "../bench/bench_e5_score_propagation"
  "../bench/bench_e5_score_propagation.pdb"
  "CMakeFiles/bench_e5_score_propagation.dir/bench_e5_score_propagation.cpp.o"
  "CMakeFiles/bench_e5_score_propagation.dir/bench_e5_score_propagation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_score_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
