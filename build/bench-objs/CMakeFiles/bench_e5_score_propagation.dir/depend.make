# Empty dependencies file for bench_e5_score_propagation.
# This may be replaced when dependencies are built.
