file(REMOVE_RECURSE
  "../bench/bench_e1_keyword_latency"
  "../bench/bench_e1_keyword_latency.pdb"
  "CMakeFiles/bench_e1_keyword_latency.dir/bench_e1_keyword_latency.cpp.o"
  "CMakeFiles/bench_e1_keyword_latency.dir/bench_e1_keyword_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_keyword_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
