# Empty dependencies file for bench_e8_on_demand_indexing.
# This may be replaced when dependencies are built.
