file(REMOVE_RECURSE
  "../bench/bench_e8_on_demand_indexing"
  "../bench/bench_e8_on_demand_indexing.pdb"
  "CMakeFiles/bench_e8_on_demand_indexing.dir/bench_e8_on_demand_indexing.cpp.o"
  "CMakeFiles/bench_e8_on_demand_indexing.dir/bench_e8_on_demand_indexing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_on_demand_indexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
