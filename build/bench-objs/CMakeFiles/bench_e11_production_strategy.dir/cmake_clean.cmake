file(REMOVE_RECURSE
  "../bench/bench_e11_production_strategy"
  "../bench/bench_e11_production_strategy.pdb"
  "CMakeFiles/bench_e11_production_strategy.dir/bench_e11_production_strategy.cpp.o"
  "CMakeFiles/bench_e11_production_strategy.dir/bench_e11_production_strategy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_production_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
