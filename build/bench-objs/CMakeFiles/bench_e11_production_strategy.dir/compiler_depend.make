# Empty compiler generated dependencies file for bench_e11_production_strategy.
# This may be replaced when dependencies are built.
