# Empty dependencies file for bench_e10_ranking_models.
# This may be replaced when dependencies are built.
