file(REMOVE_RECURSE
  "../bench/bench_e10_ranking_models"
  "../bench/bench_e10_ranking_models.pdb"
  "CMakeFiles/bench_e10_ranking_models.dir/bench_e10_ranking_models.cpp.o"
  "CMakeFiles/bench_e10_ranking_models.dir/bench_e10_ranking_models.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_ranking_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
