
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e4_partitioning_scaling.cpp" "bench-objs/CMakeFiles/bench_e4_partitioning_scaling.dir/bench_e4_partitioning_scaling.cpp.o" "gcc" "bench-objs/CMakeFiles/bench_e4_partitioning_scaling.dir/bench_e4_partitioning_scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/specialized/CMakeFiles/spindle_specialized.dir/DependInfo.cmake"
  "/root/repo/build/src/strategy/CMakeFiles/spindle_strategy.dir/DependInfo.cmake"
  "/root/repo/build/src/spinql/CMakeFiles/spindle_spinql.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/spindle_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/spindle_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/spindle_text.dir/DependInfo.cmake"
  "/root/repo/build/src/triples/CMakeFiles/spindle_triples.dir/DependInfo.cmake"
  "/root/repo/build/src/pra/CMakeFiles/spindle_pra.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/spindle_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/spindle_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spindle_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
