file(REMOVE_RECURSE
  "../bench/bench_e4_partitioning_scaling"
  "../bench/bench_e4_partitioning_scaling.pdb"
  "CMakeFiles/bench_e4_partitioning_scaling.dir/bench_e4_partitioning_scaling.cpp.o"
  "CMakeFiles/bench_e4_partitioning_scaling.dir/bench_e4_partitioning_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_partitioning_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
