file(REMOVE_RECURSE
  "CMakeFiles/auction_search.dir/auction_search.cpp.o"
  "CMakeFiles/auction_search.dir/auction_search.cpp.o.d"
  "auction_search"
  "auction_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auction_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
