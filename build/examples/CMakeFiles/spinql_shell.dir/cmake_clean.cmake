file(REMOVE_RECURSE
  "CMakeFiles/spinql_shell.dir/spinql_shell.cpp.o"
  "CMakeFiles/spinql_shell.dir/spinql_shell.cpp.o.d"
  "spinql_shell"
  "spinql_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spinql_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
