# Empty compiler generated dependencies file for spinql_shell.
# This may be replaced when dependencies are built.
