# Empty compiler generated dependencies file for toy_products.
# This may be replaced when dependencies are built.
