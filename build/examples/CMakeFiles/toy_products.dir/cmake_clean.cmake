file(REMOVE_RECURSE
  "CMakeFiles/toy_products.dir/toy_products.cpp.o"
  "CMakeFiles/toy_products.dir/toy_products.cpp.o.d"
  "toy_products"
  "toy_products.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toy_products.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
