file(REMOVE_RECURSE
  "CMakeFiles/multilingual.dir/multilingual.cpp.o"
  "CMakeFiles/multilingual.dir/multilingual.cpp.o.d"
  "multilingual"
  "multilingual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multilingual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
