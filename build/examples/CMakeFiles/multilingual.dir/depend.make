# Empty dependencies file for multilingual.
# This may be replaced when dependencies are built.
