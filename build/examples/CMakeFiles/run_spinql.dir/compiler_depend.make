# Empty compiler generated dependencies file for run_spinql.
# This may be replaced when dependencies are built.
