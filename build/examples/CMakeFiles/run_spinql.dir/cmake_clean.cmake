file(REMOVE_RECURSE
  "CMakeFiles/run_spinql.dir/run_spinql.cpp.o"
  "CMakeFiles/run_spinql.dir/run_spinql.cpp.o.d"
  "run_spinql"
  "run_spinql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_spinql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
