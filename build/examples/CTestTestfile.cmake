# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_toy_products "/root/repo/build/examples/toy_products" "300")
set_tests_properties(example_toy_products PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_auction_search "/root/repo/build/examples/auction_search" "1000" "10" "3")
set_tests_properties(example_auction_search PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_expert_finding "/root/repo/build/examples/expert_finding" "50" "300")
set_tests_properties(example_expert_finding PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multilingual "/root/repo/build/examples/multilingual")
set_tests_properties(example_multilingual PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_run_spinql "/root/repo/build/examples/run_spinql" "/root/repo/examples/data/demo.nt" "/root/repo/examples/data/demo.spinql" "--query" "antique table")
set_tests_properties(example_run_spinql PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
