# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/engine_expr_test[1]_include.cmake")
include("/root/repo/build/tests/engine_ops_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/porter2_test[1]_include.cmake")
include("/root/repo/build/tests/pra_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/specialized_test[1]_include.cmake")
include("/root/repo/build/tests/triples_test[1]_include.cmake")
include("/root/repo/build/tests/spinql_test[1]_include.cmake")
include("/root/repo/build/tests/strategy_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/phrase_test[1]_include.cmake")
include("/root/repo/build/tests/stemmer_extra_test[1]_include.cmake")
include("/root/repo/build/tests/index_invariants_test[1]_include.cmake")
include("/root/repo/build/tests/spinql_ops_test[1]_include.cmake")
include("/root/repo/build/tests/parser_robustness_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/quality_test[1]_include.cmake")
include("/root/repo/build/tests/ntriples_test[1]_include.cmake")
include("/root/repo/build/tests/emergent_schema_test[1]_include.cmake")
