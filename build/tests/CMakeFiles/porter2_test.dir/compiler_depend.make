# Empty compiler generated dependencies file for porter2_test.
# This may be replaced when dependencies are built.
