file(REMOVE_RECURSE
  "CMakeFiles/porter2_test.dir/porter2_test.cc.o"
  "CMakeFiles/porter2_test.dir/porter2_test.cc.o.d"
  "porter2_test"
  "porter2_test.pdb"
  "porter2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/porter2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
