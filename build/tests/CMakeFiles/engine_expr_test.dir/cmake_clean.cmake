file(REMOVE_RECURSE
  "CMakeFiles/engine_expr_test.dir/engine_expr_test.cc.o"
  "CMakeFiles/engine_expr_test.dir/engine_expr_test.cc.o.d"
  "engine_expr_test"
  "engine_expr_test.pdb"
  "engine_expr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
