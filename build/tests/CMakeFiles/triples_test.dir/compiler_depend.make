# Empty compiler generated dependencies file for triples_test.
# This may be replaced when dependencies are built.
