file(REMOVE_RECURSE
  "CMakeFiles/triples_test.dir/triples_test.cc.o"
  "CMakeFiles/triples_test.dir/triples_test.cc.o.d"
  "triples_test"
  "triples_test.pdb"
  "triples_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triples_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
