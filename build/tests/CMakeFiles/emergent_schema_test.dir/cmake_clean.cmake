file(REMOVE_RECURSE
  "CMakeFiles/emergent_schema_test.dir/emergent_schema_test.cc.o"
  "CMakeFiles/emergent_schema_test.dir/emergent_schema_test.cc.o.d"
  "emergent_schema_test"
  "emergent_schema_test.pdb"
  "emergent_schema_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emergent_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
