# Empty dependencies file for emergent_schema_test.
# This may be replaced when dependencies are built.
