file(REMOVE_RECURSE
  "CMakeFiles/index_invariants_test.dir/index_invariants_test.cc.o"
  "CMakeFiles/index_invariants_test.dir/index_invariants_test.cc.o.d"
  "index_invariants_test"
  "index_invariants_test.pdb"
  "index_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
