# Empty compiler generated dependencies file for index_invariants_test.
# This may be replaced when dependencies are built.
