file(REMOVE_RECURSE
  "CMakeFiles/phrase_test.dir/phrase_test.cc.o"
  "CMakeFiles/phrase_test.dir/phrase_test.cc.o.d"
  "phrase_test"
  "phrase_test.pdb"
  "phrase_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phrase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
