# Empty compiler generated dependencies file for phrase_test.
# This may be replaced when dependencies are built.
