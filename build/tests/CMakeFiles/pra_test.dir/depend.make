# Empty dependencies file for pra_test.
# This may be replaced when dependencies are built.
