file(REMOVE_RECURSE
  "CMakeFiles/pra_test.dir/pra_test.cc.o"
  "CMakeFiles/pra_test.dir/pra_test.cc.o.d"
  "pra_test"
  "pra_test.pdb"
  "pra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
