file(REMOVE_RECURSE
  "CMakeFiles/stemmer_extra_test.dir/stemmer_extra_test.cc.o"
  "CMakeFiles/stemmer_extra_test.dir/stemmer_extra_test.cc.o.d"
  "stemmer_extra_test"
  "stemmer_extra_test.pdb"
  "stemmer_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stemmer_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
