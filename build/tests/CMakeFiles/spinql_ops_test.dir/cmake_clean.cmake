file(REMOVE_RECURSE
  "CMakeFiles/spinql_ops_test.dir/spinql_ops_test.cc.o"
  "CMakeFiles/spinql_ops_test.dir/spinql_ops_test.cc.o.d"
  "spinql_ops_test"
  "spinql_ops_test.pdb"
  "spinql_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spinql_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
