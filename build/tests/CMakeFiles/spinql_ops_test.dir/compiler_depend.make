# Empty compiler generated dependencies file for spinql_ops_test.
# This may be replaced when dependencies are built.
