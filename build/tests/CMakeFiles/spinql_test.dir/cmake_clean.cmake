file(REMOVE_RECURSE
  "CMakeFiles/spinql_test.dir/spinql_test.cc.o"
  "CMakeFiles/spinql_test.dir/spinql_test.cc.o.d"
  "spinql_test"
  "spinql_test.pdb"
  "spinql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spinql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
