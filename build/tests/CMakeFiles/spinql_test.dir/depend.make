# Empty dependencies file for spinql_test.
# This may be replaced when dependencies are built.
