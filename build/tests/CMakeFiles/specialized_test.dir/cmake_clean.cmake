file(REMOVE_RECURSE
  "CMakeFiles/specialized_test.dir/specialized_test.cc.o"
  "CMakeFiles/specialized_test.dir/specialized_test.cc.o.d"
  "specialized_test"
  "specialized_test.pdb"
  "specialized_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specialized_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
