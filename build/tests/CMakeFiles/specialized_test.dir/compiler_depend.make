# Empty compiler generated dependencies file for specialized_test.
# This may be replaced when dependencies are built.
