/// \file bench_e10_ranking_models.cpp
/// \brief E10 — paper §2.1: "most alternative ranking functions would
/// easily adapt or reuse large parts of this implementation. Also, most
/// of the SQL queries above are independent of query-terms, which allows
/// to materialize intermediate results for reuse."
///
/// All four models run over the *same* materialized query-independent
/// views; only the final join-project-aggregate differs. Reproduction
/// target: per-query latency within the same ballpark across models.

#include "bench/bench_util.h"
#include "ir/ranking.h"

namespace spindle {
namespace bench {
namespace {

constexpr int64_t kDocs = 20000;

void RunModel(benchmark::State& state, RankModel model) {
  TextIndexPtr index = GetIndex(kDocs);
  const auto& queries = GetQueries(kDocs, 3);
  SearchOptions options;
  options.model = model;
  options.top_k = 10;
  size_t qi = 0;
  for (auto _ : state) {
    const std::string& query = queries[qi++ % queries.size()];
    RelationPtr qterms = OrDie(index->QueryTerms(query), "qterms");
    RelationPtr top = OrDie(RankWithModel(*index, qterms, options), "rank");
    benchmark::DoNotOptimize(top);
  }
  state.SetLabel(RankModelName(model));
}

void BM_RankBm25(benchmark::State& state) {
  RunModel(state, RankModel::kBm25);
}
void BM_RankTfIdf(benchmark::State& state) {
  RunModel(state, RankModel::kTfIdf);
}
void BM_RankLmDirichlet(benchmark::State& state) {
  RunModel(state, RankModel::kLmDirichlet);
}
void BM_RankLmJelinekMercer(benchmark::State& state) {
  RunModel(state, RankModel::kLmJelinekMercer);
}

BENCHMARK(BM_RankBm25)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RankTfIdf)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RankLmDirichlet)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RankLmJelinekMercer)->Unit(benchmark::kMillisecond);

/// BM25 parameter sweep: free parameters change scores, not cost.
void BM_RankBm25Params(benchmark::State& state) {
  TextIndexPtr index = GetIndex(kDocs);
  const auto& queries = GetQueries(kDocs, 3);
  Bm25Params params{state.range(0) / 100.0, state.range(1) / 100.0};
  size_t qi = 0;
  for (auto _ : state) {
    RelationPtr qterms =
        OrDie(index->QueryTerms(queries[qi++ % queries.size()]), "qterms");
    RelationPtr scored = OrDie(RankBm25(*index, qterms, params), "bm25");
    benchmark::DoNotOptimize(scored);
  }
}

BENCHMARK(BM_RankBm25Params)
    ->ArgNames({"k1x100", "bx100"})
    ->Args({120, 75})
    ->Args({90, 40})
    ->Args({200, 100})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace spindle

BENCHMARK_MAIN();
