/// \file bench_e18_compression.cpp
/// \brief E18 — block compression: storage footprint and fused-query
/// latency of the compressed index representation (storage/block_codec.h)
/// against the uncompressed baseline, on the same collection and query
/// stream.
///
/// Two arms per (docs, k) point, built from the same documents:
///   - compressed: frame-of-reference bit-packed posting blocks plus
///     zigzag-varint cold columns (the build default);
///   - uncompressed: flat (ord, tf) arrays and plain columns
///     (ScopedCompressionDefaults off).
/// Each arm reports the three-way footprint (heap / mapped / compressed
/// bytes), fused p50/p95/p99 latency, and the decode counters
/// (blocks_decoded, decode_bytes per query — zero by definition on the
/// uncompressed arm).
///
/// Reproduction target: >= 30% total-byte reduction on the 50k-doc
/// collection with fused p50 within 10% of the uncompressed arm and
/// blocks_skipped > 0 (skipped blocks are never decoded).
///
/// `--check` runs a self-contained correctness gate instead of the
/// benchmark loop (used by the CI smoke): asserts the compressed index is
/// strictly smaller and that fused results are byte-identical to the
/// uncompressed index across all four models and k in {1, 10, 100};
/// exits non-zero on any violation.

#include <cstdint>
#include <cstring>

#include "bench/bench_util.h"
#include "ir/topk_pruning.h"
#include "storage/block_codec.h"

namespace spindle {
namespace bench {
namespace {

/// Uncompressed-baseline TextIndex over GetCollection(num_docs), cached.
/// GetIndex() builds with the process defaults (compression on), so the
/// two fixtures differ only in physical representation.
TextIndexPtr GetUncompressedIndex(int64_t num_docs) {
  static auto* cache = new std::map<int64_t, TextIndexPtr>();
  auto it = cache->find(num_docs);
  if (it != cache->end()) return it->second;
  blockcodec::ScopedCompressionDefaults off({false, false});
  Analyzer analyzer = OrDie(Analyzer::Make({}), "analyzer");
  TextIndexPtr index =
      OrDie(TextIndex::Build(GetCollection(num_docs), analyzer), "index");
  cache->emplace(num_docs, index);
  return index;
}

void RunFused(benchmark::State& state, const TextIndexPtr& index) {
  const size_t k = static_cast<size_t>(state.range(1));
  const auto& queries = GetQueries(state.range(0), 3);
  SearchOptions options;
  options.top_k = k;
  PruningStats stats;
  LatencyRecorder lat;
  size_t qi = 0;
  for (auto _ : state) {
    const std::string& query = queries[qi++ % queries.size()];
    lat.Start();
    RelationPtr qterms = OrDie(index->QueryTerms(query), "qterms");
    RelationPtr top = OrDie(RankTopK(*index, qterms, options, &stats),
                            "fused topk");
    lat.Stop();
    benchmark::DoNotOptimize(top);
  }
  lat.Report(state);
  ReportFootprint(state, index->ByteSizes());
  const double iters = static_cast<double>(state.iterations());
  state.counters["blocks_skipped"] =
      static_cast<double>(stats.blocks_skipped) / iters;
  state.counters["blocks_decoded"] =
      static_cast<double>(stats.blocks_decoded) / iters;
  state.counters["decode_bytes"] =
      static_cast<double>(stats.decode_bytes) / iters;
}

void BM_FusedCompressed(benchmark::State& state) {
  RunFused(state, GetIndex(state.range(0)));
}

void BM_FusedUncompressed(benchmark::State& state) {
  RunFused(state, GetUncompressedIndex(state.range(0)));
}

BENCHMARK(BM_FusedCompressed)
    ->ArgNames({"docs", "k"})
    ->Args({50000, 10})
    ->Args({50000, 100})
    ->Args({10000, 10})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FusedUncompressed)
    ->ArgNames({"docs", "k"})
    ->Args({50000, 10})
    ->Args({50000, 100})
    ->Args({10000, 10})
    ->Unit(benchmark::kMillisecond);

/// True when the two top-k relations are byte-identical: same row count,
/// same docIDs, and score doubles whose bit patterns match exactly (not
/// merely approximately equal).
bool BitIdentical(const Relation& a, const Relation& b) {
  if (a.num_rows() != b.num_rows()) return false;
  for (size_t r = 0; r < a.num_rows(); ++r) {
    if (a.column(0).Int64At(r) != b.column(0).Int64At(r)) return false;
    const double sa = a.column(1).Float64At(r);
    const double sb = b.column(1).Float64At(r);
    uint64_t ba, bb;
    std::memcpy(&ba, &sa, sizeof(ba));
    std::memcpy(&bb, &sb, sizeof(bb));
    if (ba != bb) return false;
  }
  return true;
}

/// CI gate: footprint reduction and bit-identity. Returns a process exit
/// code (0 = pass).
int RunCheck() {
  const int64_t num_docs = 50000;
  TextIndexPtr comp = GetIndex(num_docs);
  TextIndexPtr uncomp = GetUncompressedIndex(num_docs);

  const StorageByteStats cb = comp->ByteSizes();
  const StorageByteStats ub = uncomp->ByteSizes();
  const double reduction =
      1.0 - static_cast<double>(cb.total()) / static_cast<double>(ub.total());
  std::fprintf(stderr,
               "footprint: uncompressed=%zu compressed=%zu (heap=%zu "
               "mapped=%zu packed=%zu) reduction=%.1f%%\n",
               ub.total(), cb.total(), cb.heap_bytes, cb.mapped_bytes,
               cb.compressed_bytes, 100.0 * reduction);
  if (!(reduction > 0.0)) {
    std::fprintf(stderr, "FAIL: compressed index is not smaller\n");
    return 1;
  }
  if (cb.compressed_bytes == 0) {
    std::fprintf(stderr, "FAIL: no bytes in the compressed bucket\n");
    return 1;
  }

  const auto& queries = GetQueries(num_docs, 3);
  const RankModel models[] = {RankModel::kBm25, RankModel::kTfIdf,
                              RankModel::kLmDirichlet,
                              RankModel::kLmJelinekMercer};
  const size_t ks[] = {1, 10, 100};
  PruningStats cstats;
  int failures = 0;
  for (RankModel model : models) {
    for (size_t k : ks) {
      SearchOptions options;
      options.model = model;
      options.top_k = k;
      for (size_t qi = 0; qi < 16 && qi < queries.size(); ++qi) {
        const std::string& query = queries[qi];
        RelationPtr cq = OrDie(comp->QueryTerms(query), "qterms");
        RelationPtr uq = OrDie(uncomp->QueryTerms(query), "qterms");
        RelationPtr ct =
            OrDie(RankTopK(*comp, cq, options, &cstats), "fused");
        RelationPtr ut = OrDie(RankTopK(*uncomp, uq, options), "fused");
        if (!BitIdentical(*ct, *ut)) {
          std::fprintf(stderr,
                       "FAIL: results differ (model=%s k=%zu query=\"%s\")\n",
                       RankModelName(model), k, query.c_str());
          ++failures;
        }
      }
    }
  }
  if (cstats.blocks_decoded == 0) {
    std::fprintf(stderr, "FAIL: compressed arm never decoded a block\n");
    ++failures;
  }
  if (cstats.blocks_skipped == 0) {
    std::fprintf(stderr, "FAIL: no blocks were skipped\n");
    ++failures;
  }
  std::fprintf(stderr,
               "check: blocks_decoded=%llu blocks_skipped=%llu "
               "decode_bytes=%llu failures=%d\n",
               static_cast<unsigned long long>(cstats.blocks_decoded),
               static_cast<unsigned long long>(cstats.blocks_skipped),
               static_cast<unsigned long long>(cstats.decode_bytes),
               failures);
  if (failures == 0) std::fprintf(stderr, "compression check PASSED\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace spindle

int main(int argc, char** argv) {
  bool check = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (check) return spindle::bench::RunCheck();
  spindle::bench::ParseJsonFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
