/// \file bench_e15_trace_overhead.cpp
/// \brief E15: cost of query-level tracing (docs/observability.md).
///
/// Every instrumentation point in the engine is one thread-local read
/// plus a null check when tracing is off; when on, each span is a clock
/// read at open/close plus one mutex-guarded append. This experiment
/// quantifies both, per workload:
///
///   BM_KeywordTraced / BM_SpinqlTraced with arm:
///     0 = tracing off   (baseline: ambient tracer is null)
///     1 = tracing on    (per-query tracer minted, spans recorded)
///     2 = on + export   (arm 1 plus Chrome-JSON serialization)
///
/// Each reports p50/p95 latency so the overhead shows up where it
/// matters (the tail, where a traced query contends on the span mutex).
///
/// `--check-overhead=<pct>` runs a self-test instead of benchmarks:
/// median traced latency must be within <pct> percent of untraced, else
/// exit 1. CI runs this with a generous bound to catch regressions that
/// make tracing non-cheap (an allocation or syscall on the hot path).

#include <optional>

#include "bench/bench_util.h"
#include "ir/topk_pruning.h"
#include "obs/trace.h"
#include "spinql/evaluator.h"

namespace spindle {
namespace bench {
namespace {

enum TraceArm { kOff = 0, kOn = 1, kOnExport = 2 };

/// One keyword query through the fused top-k path (the serving hot
/// path): query-term lookup + RankTopK over the cached index.
void KeywordOnce(const TextIndex& index, const std::string& query,
                 size_t k) {
  SearchOptions options;
  options.top_k = k;
  PruningStats stats;
  RelationPtr qterms = OrDie(index.QueryTerms(query), "qterms");
  RelationPtr top =
      OrDie(RankTopK(index, qterms, options, &stats), "fused topk");
  benchmark::DoNotOptimize(top);
}

void BM_KeywordTraced(benchmark::State& state) {
  const int64_t num_docs = state.range(0);
  const TraceArm arm = static_cast<TraceArm>(state.range(1));
  TextIndexPtr index = GetIndex(num_docs);
  const auto& queries = GetQueries(num_docs, 3);
  LatencyRecorder lat;
  size_t qi = 0;
  for (auto _ : state) {
    const std::string& query = queries[qi++ % queries.size()];
    // Per-iteration tracer mint mirrors the server's per-request tracer,
    // so the measured cost includes everything a traced request pays.
    std::unique_ptr<obs::Tracer> tracer;
    std::optional<obs::ScopedTracer> scope;
    lat.Start();
    if (arm != kOff) {
      tracer = std::make_unique<obs::Tracer>();
      scope.emplace(tracer.get());
    }
    KeywordOnce(*index, query, TopKFlag());
    scope.reset();
    if (arm == kOnExport) {
      std::string json = tracer->ExportChromeTrace();
      benchmark::DoNotOptimize(json);
    }
    lat.Stop();
  }
  lat.Report(state);
}

/// Catalog with the benchmark collection registered as "docs", cached.
Catalog& GetDocsCatalog(int64_t num_docs) {
  static auto* cache = new std::map<int64_t, std::unique_ptr<Catalog>>();
  auto it = cache->find(num_docs);
  if (it != cache->end()) return *it->second;
  auto catalog = std::make_unique<Catalog>();
  catalog->RegisterEncoded("docs", GetCollection(num_docs));
  return *cache->emplace(num_docs, std::move(catalog)).first->second;
}

void BM_SpinqlTraced(benchmark::State& state) {
  const int64_t num_docs = state.range(0);
  const TraceArm arm = static_cast<TraceArm>(state.range(1));
  Catalog& catalog = GetDocsCatalog(num_docs);
  // No materialization cache: every iteration re-executes the operator
  // tree, so the spans measured are real work, not cache hits.
  spinql::Evaluator evaluator(&catalog, nullptr);
  const std::string expr = "TOPK [10] (TOKENIZE [$2] (docs))";
  LatencyRecorder lat;
  for (auto _ : state) {
    std::unique_ptr<obs::Tracer> tracer;
    std::optional<obs::ScopedTracer> scope;
    lat.Start();
    if (arm != kOff) {
      tracer = std::make_unique<obs::Tracer>();
      scope.emplace(tracer.get());
    }
    ProbRelation out = OrDie(evaluator.EvalExpression(expr), "spinql");
    benchmark::DoNotOptimize(out);
    scope.reset();
    if (arm == kOnExport) {
      std::string json = tracer->ExportChromeTrace();
      benchmark::DoNotOptimize(json);
    }
    lat.Stop();
  }
  lat.Report(state);
}

BENCHMARK(BM_KeywordTraced)
    ->ArgNames({"docs", "trace"})
    ->Args({50000, kOff})
    ->Args({50000, kOn})
    ->Args({50000, kOnExport})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SpinqlTraced)
    ->ArgNames({"docs", "trace"})
    ->Args({10000, kOff})
    ->Args({10000, kOn})
    ->Args({10000, kOnExport})
    ->Unit(benchmark::kMillisecond);

/// Median keyword latency (ms) over `iters` runs, traced or not.
double MedianKeywordMs(bool traced, int iters) {
  TextIndexPtr index = GetIndex(10000);
  const auto& queries = GetQueries(10000, 3);
  LatencyRecorder lat;
  for (int i = 0; i < iters; ++i) {
    const std::string& query = queries[i % queries.size()];
    std::unique_ptr<obs::Tracer> tracer;
    std::optional<obs::ScopedTracer> scope;
    lat.Start();
    if (traced) {
      tracer = std::make_unique<obs::Tracer>();
      scope.emplace(tracer.get());
    }
    KeywordOnce(*index, query, 10);
    scope.reset();
    lat.Stop();
  }
  return lat.Percentile(50);
}

/// Self-test for CI: traced median within `pct`% of untraced median.
int RunOverheadCheck(double pct) {
  const int kIters = 400;
  MedianKeywordMs(false, 50);  // warm index, queries, allocator
  // Interleave-by-halves to be robust against machine-wide drift: take
  // the best of two baseline and two traced medians.
  double base = std::min(MedianKeywordMs(false, kIters),
                         MedianKeywordMs(false, kIters));
  double traced = std::min(MedianKeywordMs(true, kIters),
                           MedianKeywordMs(true, kIters));
  double overhead_pct =
      base > 0 ? (traced - base) / base * 100.0 : 0.0;
  std::fprintf(stderr,
               "trace overhead check: base=%.4fms traced=%.4fms "
               "overhead=%.2f%% (limit %.1f%%)\n",
               base, traced, overhead_pct, pct);
  return overhead_pct <= pct ? 0 : 1;
}

/// Parses and strips `--check-overhead=<pct>`; negative when absent.
double ParseCheckOverheadFlag(int* argc, char** argv) {
  double pct = -1.0;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--check-overhead=", 0) == 0) {
      pct = std::atof(arg.c_str() + 17);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return pct;
}

}  // namespace
}  // namespace bench
}  // namespace spindle

int main(int argc, char** argv) {
  double check_pct =
      spindle::bench::ParseCheckOverheadFlag(&argc, argv);
  if (check_pct >= 0) {
    return spindle::bench::RunOverheadCheck(check_pct);
  }
  spindle::bench::ParseTraceFlag(&argc, argv);
  spindle::bench::ParseJsonFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
