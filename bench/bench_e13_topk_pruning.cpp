/// \file bench_e13_topk_pruning.cpp
/// \brief E13 — top-k dynamic pruning: the fused MaxScore/WAND rank-TopK
/// (ir/topk_pruning.h) against the exhaustive rank-then-cut pipeline it
/// replaces, on the same index and query stream.
///
/// Sweeps the result-list size k in {1, 10, 100, 1000}: pruning leverage
/// comes from the heap threshold, so small k should win big and the gap
/// should narrow as k grows. Both arms produce bit-identical relations
/// (asserted by tests/topk_pruning_test.cc); this experiment measures
/// only the latency difference and surfaces the pruning counters
/// (docs_scored / docs_skipped / blocks_skipped, per query) plus
/// p50/p95/p99 tail latencies.
///
/// Reproduction target: >= 1.5x p50 speedup for BM25 k=10 on the 50k-doc
/// collection, with docs_skipped > 0 demonstrating the bounds actually
/// reject candidates rather than merely reordering work.

#include "bench/bench_util.h"
#include "ir/topk_pruning.h"

namespace spindle {
namespace bench {
namespace {

void BM_FusedTopK(benchmark::State& state) {
  const int64_t num_docs = state.range(0);
  const size_t k = static_cast<size_t>(state.range(1));
  TextIndexPtr index = GetIndex(num_docs);
  const auto& queries = GetQueries(num_docs, 3);
  SearchOptions options;
  options.top_k = k;
  PruningStats stats;
  LatencyRecorder lat;
  size_t qi = 0;
  for (auto _ : state) {
    const std::string& query = queries[qi++ % queries.size()];
    lat.Start();
    RelationPtr qterms = OrDie(index->QueryTerms(query), "qterms");
    RelationPtr top = OrDie(RankTopK(*index, qterms, options, &stats),
                            "fused topk");
    lat.Stop();
    benchmark::DoNotOptimize(top);
  }
  lat.Report(state);
  const double iters = static_cast<double>(state.iterations());
  state.counters["docs_scored"] =
      static_cast<double>(stats.docs_scored) / iters;
  state.counters["docs_skipped"] =
      static_cast<double>(stats.docs_skipped) / iters;
  state.counters["blocks_skipped"] =
      static_cast<double>(stats.blocks_skipped) / iters;
}

void BM_ExhaustiveTopK(benchmark::State& state) {
  const int64_t num_docs = state.range(0);
  const size_t k = static_cast<size_t>(state.range(1));
  TextIndexPtr index = GetIndex(num_docs);
  const auto& queries = GetQueries(num_docs, 3);
  SearchOptions options;
  options.top_k = k;
  LatencyRecorder lat;
  size_t qi = 0;
  for (auto _ : state) {
    const std::string& query = queries[qi++ % queries.size()];
    lat.Start();
    RelationPtr qterms = OrDie(index->QueryTerms(query), "qterms");
    RelationPtr top =
        OrDie(RankWithModel(*index, qterms, options), "exhaustive topk");
    lat.Stop();
    benchmark::DoNotOptimize(top);
  }
  lat.Report(state);
}

BENCHMARK(BM_FusedTopK)
    ->ArgNames({"docs", "k"})
    ->Args({50000, 1})
    ->Args({50000, 10})
    ->Args({50000, 100})
    ->Args({50000, 1000})
    ->Args({10000, 10})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExhaustiveTopK)
    ->ArgNames({"docs", "k"})
    ->Args({50000, 1})
    ->Args({50000, 10})
    ->Args({50000, 100})
    ->Args({50000, 1000})
    ->Args({10000, 10})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace spindle

BENCHMARK_MAIN();
