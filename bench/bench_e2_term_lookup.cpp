/// \file bench_e2_term_lookup.cpp
/// \brief E2 — paper Fig. 1: "term lookup requires an inner join on terms
/// between a table containing query terms and a table containing term
/// occurrences".
///
/// Measures the relational join formulation of posting-list lookup
/// against collection size and query-term document frequency, and
/// contrasts it with a specialized dictionary lookup (hash probe into
/// per-term postings). The join is expected to cost O(|term_doc|) per
/// batch of query terms, the specialized probe O(|postings|) — the gap is
/// the price of generality the paper accepts.

#include "bench/bench_util.h"
#include "engine/ops.h"

namespace spindle {
namespace bench {
namespace {

/// Join-based lookup (Fig. 1b): query terms join term_doc on term.
void BM_TermLookupJoin(benchmark::State& state) {
  const int64_t num_docs = state.range(0);
  TextIndexPtr index = GetIndex(num_docs);
  const auto& queries = GetQueries(num_docs, 3);
  Analyzer analyzer = OrDie(Analyzer::Make({}), "analyzer");

  size_t qi = 0;
  for (auto _ : state) {
    const std::string& query = queries[qi++ % queries.size()];
    RelationBuilder qb({{"term", DataType::kString}});
    for (const Token& tok : analyzer.Analyze(query)) {
      Status st = qb.AddRow({tok.text});
      if (!st.ok()) abort();
    }
    RelationPtr qrel = OrDie(qb.Build(), "qrel");
    RelationPtr matches =
        OrDie(HashJoin(index->term_doc(), qrel, {{0, 0}}), "join");
    benchmark::DoNotOptimize(matches);
  }
  state.counters["term_doc_rows"] =
      static_cast<double>(index->term_doc()->num_rows());
}

BENCHMARK(BM_TermLookupJoin)
    ->ArgNames({"docs"})
    ->Arg(2000)
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);

/// Specialized lookup: dictionary probe straight to the postings list.
void BM_TermLookupSpecialized(benchmark::State& state) {
  const int64_t num_docs = state.range(0);
  const SpecializedIndex& index = GetSpecializedIndex(num_docs);
  const auto& queries = GetQueries(num_docs, 3);
  Analyzer analyzer = OrDie(Analyzer::Make({}), "analyzer");

  size_t qi = 0;
  int64_t postings_touched = 0;
  for (auto _ : state) {
    const std::string& query = queries[qi++ % queries.size()];
    for (const Token& tok : analyzer.Analyze(query)) {
      const auto* plist = index.PostingsFor(tok.text);
      if (plist != nullptr) {
        postings_touched += static_cast<int64_t>(plist->size());
        benchmark::DoNotOptimize(plist->data());
      }
    }
  }
  state.counters["postings/query"] =
      static_cast<double>(postings_touched) / state.iterations();
}

BENCHMARK(BM_TermLookupSpecialized)
    ->ArgNames({"docs"})
    ->Arg(2000)
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace spindle

BENCHMARK_MAIN();
