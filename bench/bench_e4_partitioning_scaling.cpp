/// \file bench_e4_partitioning_scaling.cpp
/// \brief E4 — paper §2.2 / refs [1, 13]: per-property vertical
/// partitioning "is less scalable when the number of properties is high".
///
/// Fixed triple count (~200k), sweeping the number of distinct
/// properties. Measures (a) the eager build cost of per-property
/// partitioning, which grows with property count, and (b) access latency
/// for a working set of 5 properties under each layout — adaptive only
/// ever materializes the 5 touched properties, reproducing the
/// "not all swans are white" shape.

#include "bench/bench_util.h"
#include "triples/partitioning.h"

namespace spindle {
namespace bench {
namespace {

constexpr int64_t kTotalTriples = 200000;

RelationPtr SyntheticGraph(int64_t num_properties) {
  static auto* cache = new std::map<int64_t, RelationPtr>();
  auto it = cache->find(num_properties);
  if (it != cache->end()) return it->second;
  Rng rng(17);
  TripleStore store;
  for (int64_t i = 0; i < kTotalTriples; ++i) {
    int64_t prop = rng.NextBounded(static_cast<uint64_t>(num_properties));
    store.Add("node" + std::to_string(rng.NextBounded(50000)),
              "prop" + std::to_string(prop),
              "value" + std::to_string(rng.NextBounded(1000)));
  }
  RelationPtr rel = OrDie(store.StringTriples(), "triples");
  cache->emplace(num_properties, rel);
  return rel;
}

void BM_PerPropertyBuild(benchmark::State& state) {
  const int64_t num_properties = state.range(0);
  RelationPtr triples = SyntheticGraph(num_properties);
  size_t partitions = 0;
  for (auto _ : state) {
    auto layout = OrDie(PartitionedTriples::Make(
                            triples, TripleLayout::kPerProperty, nullptr),
                        "layout");
    benchmark::DoNotOptimize(layout);
    partitions = layout.num_partitions();
  }
  state.counters["properties"] = static_cast<double>(partitions);
}

BENCHMARK(BM_PerPropertyBuild)
    ->ArgNames({"properties"})
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(5000)
    ->Unit(benchmark::kMillisecond);

void AccessWorkingSet(benchmark::State& state, TripleLayout kind) {
  const int64_t num_properties = state.range(0);
  RelationPtr triples = SyntheticGraph(num_properties);
  MaterializationCache cache(1024 << 20);
  auto layout = OrDie(
      PartitionedTriples::Make(
          triples, kind,
          kind == TripleLayout::kAdaptive ? &cache : nullptr),
      "layout");
  for (auto _ : state) {
    for (int p = 0; p < 5; ++p) {
      RelationPtr part =
          OrDie(layout.Pattern("prop" + std::to_string(p)), "pattern");
      benchmark::DoNotOptimize(part);
    }
  }
  if (kind == TripleLayout::kAdaptive) {
    state.counters["materialized"] =
        static_cast<double>(cache.stats().entries);
  }
}

void BM_AccessSingleTable(benchmark::State& state) {
  AccessWorkingSet(state, TripleLayout::kSingleTable);
}
void BM_AccessPerProperty(benchmark::State& state) {
  AccessWorkingSet(state, TripleLayout::kPerProperty);
}
void BM_AccessAdaptive(benchmark::State& state) {
  AccessWorkingSet(state, TripleLayout::kAdaptive);
}

BENCHMARK(BM_AccessSingleTable)
    ->ArgNames({"properties"})
    ->Arg(10)
    ->Arg(1000)
    ->Arg(5000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AccessPerProperty)
    ->ArgNames({"properties"})
    ->Arg(10)
    ->Arg(1000)
    ->Arg(5000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AccessAdaptive)
    ->ArgNames({"properties"})
    ->Arg(10)
    ->Arg(1000)
    ->Arg(5000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace spindle

BENCHMARK_MAIN();
