/// \file bench_e16_snapshot_restart.cpp
/// \brief E16 — warm restarts from memory-mapped snapshots.
///
/// A production retrieval service cannot afford to re-tokenize its corpus
/// on every process start. This experiment compares:
///   (a) cold build: generate-free path a fresh process pays — index every
///       document (tokenize, stem, materialize the index views);
///   (b) mapped restore: open the snapshot, validate checksums, borrow
///       postings/columns from the mapping (zero-copy);
///   (c) first-query latency on a restored service — served from the
///       installed index, without re-tokenizing a single document.
/// The restore path is expected to be >= 10x faster than the cold build
/// at 50k docs (the acceptance bar of the snapshot work); the snapshot
/// file size is reported as a counter.

#include <cstdio>

#include "bench/bench_util.h"
#include "ir/index_snapshot.h"
#include "server/query_service.h"
#include "storage/snapshot.h"

namespace spindle {
namespace bench {
namespace {

std::string SnapshotPathFor(int64_t num_docs) {
  return "bench_e16_" + std::to_string(num_docs) + ".snap";
}

/// Writes (once per process per size) a catalog+index snapshot of the
/// standard benchmark collection; returns the path.
const std::string& GetSnapshot(int64_t num_docs) {
  static auto* cache = new std::map<int64_t, std::string>();
  auto it = cache->find(num_docs);
  if (it != cache->end()) return it->second;
  std::string path = SnapshotPathFor(num_docs);
  std::remove(path.c_str());
  server::QueryService service;
  service.RegisterCollection("docs", GetCollection(num_docs));
  Status st = service.SaveSnapshot(path);
  if (!st.ok()) {
    std::fprintf(stderr, "snapshot save failed: %s\n",
                 st.ToString().c_str());
    std::abort();
  }
  return cache->emplace(num_docs, std::move(path)).first->second;
}

/// (a) Cold build: what a restart without a snapshot pays — register the
/// collection and build the full text index from raw text.
void BM_ColdBuild(benchmark::State& state) {
  const int64_t num_docs = state.range(0);
  RelationPtr docs = GetCollection(num_docs);
  for (auto _ : state) {
    server::QueryService service;
    service.RegisterCollection("docs", docs);
    // Force the index build the first query would otherwise pay.
    server::SearchRequest req;
    req.collection = "docs";
    req.query = GetQueries(num_docs, 2)[0];
    auto resp = service.Search(req);
    if (!resp.ok()) std::abort();
    benchmark::DoNotOptimize(resp);
  }
  state.counters["docs"] = static_cast<double>(num_docs);
}

BENCHMARK(BM_ColdBuild)
    ->ArgNames({"docs"})
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);

/// (b) Mapped restore: open + validate + borrow, then the same first
/// query — the warm-restart path of spindle_serve --snapshot.
void BM_MappedRestore(benchmark::State& state) {
  const int64_t num_docs = state.range(0);
  const std::string& path = GetSnapshot(num_docs);
  size_t file_bytes = 0;
  for (auto _ : state) {
    server::QueryService service;
    SnapshotLoadInfo info;
    Status st = service.LoadSnapshot(path, &info);
    if (!st.ok()) std::abort();
    file_bytes = info.file_bytes;
    server::SearchRequest req;
    req.collection = "docs";
    req.query = GetQueries(num_docs, 2)[0];
    auto resp = service.Search(req);
    if (!resp.ok() ||
        resp.ValueOrDie().stats.search.index_misses != 0) {
      std::abort();  // a restore that rebuilds is not a restore
    }
    benchmark::DoNotOptimize(resp);
  }
  state.counters["docs"] = static_cast<double>(num_docs);
  state.counters["snapshot_bytes"] = static_cast<double>(file_bytes);
}

BENCHMARK(BM_MappedRestore)
    ->ArgNames({"docs"})
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);

/// (c) First-query latency alone on an already-restored service (the
/// load is paid outside the timed loop; every iteration serves from a
/// fresh restored service's installed index).
void BM_FirstQueryAfterRestore(benchmark::State& state) {
  const int64_t num_docs = state.range(0);
  const std::string& path = GetSnapshot(num_docs);
  for (auto _ : state) {
    state.PauseTiming();
    server::QueryService service;
    if (!service.LoadSnapshot(path).ok()) std::abort();
    server::SearchRequest req;
    req.collection = "docs";
    req.query = GetQueries(num_docs, 2)[0];
    state.ResumeTiming();
    auto resp = service.Search(req);
    if (!resp.ok() ||
        resp.ValueOrDie().stats.search.index_hits != 1) {
      std::abort();
    }
    benchmark::DoNotOptimize(resp);
  }
  state.counters["docs"] = static_cast<double>(num_docs);
}

BENCHMARK(BM_FirstQueryAfterRestore)
    ->ArgNames({"docs"})
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace spindle

BENCHMARK_MAIN();
