/// \file bench_e17_shard_scaling.cpp
/// \brief E17: scatter-gather serving vs shard count.
///
/// A closed loop of concurrent clients issues keyword queries through a
/// ShardCoordinator over {1, 2, 4} in-process shard backends (each shard
/// a QueryService holding its disjoint partition, scoring with the
/// shipped full-collection statistics). Reported per shard count:
///   - items_per_second  merged queries per second (QPS)
///   - p50/p95/p99_ms    end-to-end coordinator latency percentiles
///
/// A final arm kills one of 4 shards under PartialPolicy::kDegrade and
/// reports the same numbers for degraded (partial) answers — the cost
/// and availability of serving through a failure.
///
///   ./bench_e17_shard_scaling
///   ./bench_e17_shard_scaling --topk=100

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "server/query_service.h"
#include "shard/coordinator.h"
#include "shard/global_stats.h"
#include "shard/partitioner.h"

namespace spindle {
namespace bench {
namespace {

constexpr int64_t kNumDocs = 50000;
constexpr int kClients = 4;
constexpr int kQueriesPerClientPerIter = 8;

shard::GlobalStatsPtr GetStats() {
  static shard::GlobalStatsPtr stats = OrDie(
      shard::GlobalStats::Compute(GetCollection(kNumDocs), {}), "stats");
  return stats;
}

/// One fleet per (shard count, degraded) arm, cached for the process so
/// every iteration serves from warm per-shard indexes.
struct Fleet {
  std::vector<std::unique_ptr<server::QueryService>> services;
  std::unique_ptr<shard::ShardCoordinator> coordinator;
};

Fleet* GetFleet(uint32_t num_shards, bool one_shard_down) {
  static auto* cache = new std::map<std::pair<uint32_t, bool>, Fleet*>();
  auto key = std::make_pair(num_shards, one_shard_down);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second;

  auto* fleet = new Fleet();
  shard::CoordinatorOptions copts;
  copts.partial = one_shard_down ? shard::PartialPolicy::kDegrade
                                 : shard::PartialPolicy::kFail;
  fleet->coordinator =
      std::make_unique<shard::ShardCoordinator>(copts);
  for (uint32_t i = 0; i < num_shards; ++i) {
    server::QueryServiceOptions sopts;
    sopts.admission.max_inflight = 8;
    auto service = std::make_unique<server::QueryService>(sopts);
    service->RegisterCollection(
        "docs", OrDie(shard::PartitionCollection(GetCollection(kNumDocs),
                                                 i, num_shards),
                      "partition"));
    Status st = service->SetGlobalStats("docs", GetStats());
    if (!st.ok()) std::abort();
    fleet->coordinator->AddShard(
        std::make_shared<shard::LocalShardBackend>(
            "shard" + std::to_string(i), service.get()));
    fleet->services.push_back(std::move(service));
  }
  if (one_shard_down) {
    // The "killed" shard: a backend whose service no longer exists is
    // modeled by one that always fails fast.
    class DeadBackend : public shard::ShardBackend {
     public:
      const std::string& name() const override { return name_; }
      Result<RelationPtr> SearchSharded(const std::string&,
                                        const QueryGlobalStats&,
                                        const SearchOptions&, int64_t,
                                        CancelTokenPtr) override {
        return Status::Unavailable("shard killed");
      }
      Status Ping() override { return Status::Unavailable("dead"); }
      Result<shard::GlobalStatsPtr> FetchGlobalStats(
          const std::string&) override {
        return Status::Unavailable("dead");
      }

     private:
      std::string name_ = "dead";
    };
    fleet->coordinator->AddShard(std::make_shared<DeadBackend>());
  }
  Status st = fleet->coordinator->SetGlobalStats("docs", GetStats());
  if (!st.ok()) std::abort();
  cache->emplace(key, fleet);
  return fleet;
}

void RunArm(benchmark::State& state, uint32_t num_shards,
            bool one_shard_down) {
  Fleet* fleet = GetFleet(num_shards, one_shard_down);
  const std::vector<std::string>& queries = GetQueries(kNumDocs, 2);

  SearchOptions options;
  options.top_k = TopKFlag();

  // Warm every shard's on-demand index once.
  {
    shard::CoordSearchRequest req;
    req.collection = "docs";
    req.query = queries[0];
    req.options = options;
    auto r = fleet->coordinator->Search(req);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
  }

  LatencyRecorder recorder;
  uint64_t completed = 0;
  uint64_t errors = 0;
  uint64_t partials = 0;

  for (auto _ : state) {
    std::vector<LatencyRecorder> per_client(kClients);
    std::atomic<uint64_t> iter_ok{0};
    std::atomic<uint64_t> iter_partial{0};
    std::atomic<uint64_t> iter_errors{0};
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        LatencyRecorder& rec = per_client[c];
        for (int i = 0; i < kQueriesPerClientPerIter; ++i) {
          shard::CoordSearchRequest req;
          req.collection = "docs";
          req.query = queries[(c * kQueriesPerClientPerIter + i) %
                              queries.size()];
          req.options = options;
          rec.Start();
          auto r = fleet->coordinator->Search(req);
          rec.Stop();
          if (r.ok()) {
            iter_ok.fetch_add(1, std::memory_order_relaxed);
            if (r.ValueOrDie().partial) {
              iter_partial.fetch_add(1, std::memory_order_relaxed);
            }
            benchmark::DoNotOptimize(r.ValueOrDie().rows);
          } else {
            iter_errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    for (const LatencyRecorder& rec : per_client) recorder.Merge(rec);
    completed += iter_ok.load();
    partials += iter_partial.load();
    errors += iter_errors.load();
  }

  if (errors > 0) {
    state.SkipWithError("coordinator requests failed");
    return;
  }
  if (one_shard_down && partials != completed) {
    state.SkipWithError("degraded arm expected every answer partial");
    return;
  }
  state.SetItemsProcessed(static_cast<int64_t>(completed));
  recorder.Report(state);
  state.counters["shards"] = num_shards + (one_shard_down ? 1 : 0);
  state.counters["partial_rate"] =
      completed > 0 ? static_cast<double>(partials) /
                          static_cast<double>(completed)
                    : 0.0;
}

void BM_E17_ShardScaling(benchmark::State& state) {
  RunArm(state, static_cast<uint32_t>(state.range(0)),
         /*one_shard_down=*/false);
}

/// 4-shard fleet with one shard killed, degraded-answer policy: the
/// coordinator keeps answering (partial=1) from the 3 healthy shards.
void BM_E17_OneShardKilledDegraded(benchmark::State& state) {
  RunArm(state, 3, /*one_shard_down=*/true);
}

BENCHMARK(BM_E17_ShardScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK(BM_E17_OneShardKilledDegraded)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace bench
}  // namespace spindle

int main(int argc, char** argv) {
  spindle::bench::TopKFlag() =
      spindle::bench::ParseTopKFlag(&argc, argv);
  spindle::bench::ParseTraceFlag(&argc, argv);
  spindle::bench::ParseJsonFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
