/// \file bench_e7_auction_strategy.cpp
/// \brief E7 — paper §3 headline claim: the auction strategy "searches
/// about 8 million lots in 25 thousand auctions, 150,000 times per day
/// (with peaks of 450 per minute) with response times of about 150 ms per
/// request (hot database)".
///
/// Measures hot request latency of the Fig. 3 strategy over scaled
/// auction graphs, plus mix-weight variants (the weights only change the
/// final WEIGHT/UNITE, so their cost impact should be nil). Throughput =
/// 1/latency since requests are sequential, to compare against the
/// paper's 450 req/min peak.

#include "bench/bench_util.h"
#include "strategy/prebuilt.h"

namespace spindle {
namespace bench {
namespace {

void BM_AuctionStrategyHot(benchmark::State& state) {
  const int64_t num_lots = state.range(0);
  Catalog& catalog = GetAuctionCatalog(num_lots);
  MaterializationCache cache(2048ull << 20);
  strategy::StrategyExecutor executor(&catalog, &cache);
  strategy::Strategy strat =
      OrDie(strategy::MakeAuctionStrategy(), "strategy");
  const auto& queries = GetAuctionQueries(num_lots);
  OrDie(executor.Run(strat, queries[0]), "warmup");

  size_t qi = 0;
  for (auto _ : state) {
    ProbRelation hits =
        OrDie(executor.Run(strat, queries[qi++ % queries.size()]), "run");
    benchmark::DoNotOptimize(hits);
  }
  state.counters["lots"] = static_cast<double>(num_lots);
  state.counters["auctions"] =
      static_cast<double>(AuctionOptions(num_lots).num_auctions);
  state.counters["req_per_min"] = benchmark::Counter(
      60.0, benchmark::Counter::kIsIterationInvariantRate);
}

BENCHMARK(BM_AuctionStrategyHot)
    ->ArgNames({"lots"})
    ->Arg(5000)
    ->Arg(20000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);

void BM_AuctionStrategyCold(benchmark::State& state) {
  const int64_t num_lots = state.range(0);
  Catalog& catalog = GetAuctionCatalog(num_lots);
  const auto& queries = GetAuctionQueries(num_lots);
  size_t qi = 0;
  for (auto _ : state) {
    MaterializationCache cache(2048ull << 20);
    strategy::StrategyExecutor executor(&catalog, &cache);
    strategy::Strategy strat =
        OrDie(strategy::MakeAuctionStrategy(), "strategy");
    ProbRelation hits =
        OrDie(executor.Run(strat, queries[qi++ % queries.size()]), "run");
    benchmark::DoNotOptimize(hits);
  }
}

BENCHMARK(BM_AuctionStrategyCold)
    ->ArgNames({"lots"})
    ->Arg(5000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void BM_AuctionStrategyWeights(benchmark::State& state) {
  const int64_t num_lots = 20000;
  Catalog& catalog = GetAuctionCatalog(num_lots);
  MaterializationCache cache(2048ull << 20);
  strategy::StrategyExecutor executor(&catalog, &cache);
  strategy::AuctionStrategyOptions opts;
  opts.lot_weight = state.range(0) / 100.0;
  opts.auction_weight = 1.0 - opts.lot_weight;
  strategy::Strategy strat =
      OrDie(strategy::MakeAuctionStrategy(opts), "strategy");
  const auto& queries = GetAuctionQueries(num_lots);
  OrDie(executor.Run(strat, queries[0]), "warmup");

  size_t qi = 0;
  for (auto _ : state) {
    ProbRelation hits =
        OrDie(executor.Run(strat, queries[qi++ % queries.size()]), "run");
    benchmark::DoNotOptimize(hits);
  }
  state.counters["lot_weight_pct"] = static_cast<double>(state.range(0));
}

BENCHMARK(BM_AuctionStrategyWeights)
    ->ArgNames({"lot_weight_pct"})
    ->Arg(100)
    ->Arg(70)
    ->Arg(30)
    ->Unit(benchmark::kMillisecond);

/// Parallel serving: the paper's deployment handles 150k requests/day
/// with 450/min peaks on one VM. The catalog is thread-safe and its
/// relations immutable, so workers share it; each thread owns the rest
/// of its mutable state — cache and executor — like independent server
/// workers.
void BM_AuctionStrategyParallelHot(benchmark::State& state) {
  const int64_t num_lots = 20000;
  // Per-thread state: own cache and executor over the shared catalog.
  Catalog& catalog = GetAuctionCatalog(num_lots);
  MaterializationCache cache(1024ull << 20);
  strategy::StrategyExecutor executor(&catalog, &cache);
  strategy::Strategy strat =
      OrDie(strategy::MakeAuctionStrategy(), "strategy");
  const auto queries = GetAuctionQueries(num_lots);
  OrDie(executor.Run(strat, queries[0]), "warmup");

  size_t qi = static_cast<size_t>(state.thread_index());
  for (auto _ : state) {
    ProbRelation hits =
        OrDie(executor.Run(strat, queries[qi++ % queries.size()]), "run");
    benchmark::DoNotOptimize(hits);
  }
  state.counters["req_per_sec"] = benchmark::Counter(
      1.0, benchmark::Counter::kIsIterationInvariantRate);
}

BENCHMARK(BM_AuctionStrategyParallelHot)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace spindle

BENCHMARK_MAIN();
