/// \file bench_e8_on_demand_indexing.cpp
/// \brief E8 — paper §2.1: "the ability to create such index structures
/// on-demand is crucial ... their parameters (e.g. stemming language) are
/// often hard to decide upfront. Data fed to our system undergoes almost
/// no pre-processing."
///
/// Measures (a) the cost of building the full relational index for
/// sub-collections of varying size (what a cold filtered search pays),
/// and (b) re-indexing the same raw text under different analyzer
/// configurations — no re-ingest, just a different on-demand index.

#include "bench/bench_util.h"
#include "engine/ops.h"

namespace spindle {
namespace bench {
namespace {

constexpr int64_t kCorpus = 20000;

void BM_IndexSubCollection(benchmark::State& state) {
  const int64_t pct = state.range(0);
  RelationPtr full = GetCollection(kCorpus);
  const size_t take = static_cast<size_t>(kCorpus * pct / 100);
  RelationPtr sub = OrDie(Limit(full, take), "limit");
  Analyzer analyzer = OrDie(Analyzer::Make({}), "analyzer");
  int64_t postings = 0;
  for (auto _ : state) {
    TextIndexPtr index = OrDie(TextIndex::Build(sub, analyzer), "build");
    benchmark::DoNotOptimize(index);
    postings = index->stats().total_postings;
  }
  state.counters["docs"] = static_cast<double>(take);
  state.counters["postings"] = static_cast<double>(postings);
}

BENCHMARK(BM_IndexSubCollection)
    ->ArgNames({"pct"})
    ->Arg(1)
    ->Arg(10)
    ->Arg(50)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_ReindexWithAnalyzer(benchmark::State& state) {
  // 0: none, 1: s-english, 2: sb-english, 3: sb-english + stopwords.
  AnalyzerOptions opts;
  switch (state.range(0)) {
    case 0:
      opts.stemmer = "none";
      break;
    case 1:
      opts.stemmer = "s-english";
      break;
    case 2:
      opts.stemmer = "sb-english";
      break;
    case 3:
      opts.stemmer = "sb-english";
      opts.remove_stopwords = true;
      break;
  }
  RelationPtr docs = OrDie(Limit(GetCollection(kCorpus), 5000), "limit");
  Analyzer analyzer = OrDie(Analyzer::Make(opts), "analyzer");
  int64_t terms = 0;
  for (auto _ : state) {
    TextIndexPtr index = OrDie(TextIndex::Build(docs, analyzer), "build");
    benchmark::DoNotOptimize(index);
    terms = index->stats().num_terms;
  }
  state.counters["distinct_terms"] = static_cast<double>(terms);
}

BENCHMARK(BM_ReindexWithAnalyzer)
    ->ArgNames({"analyzer"})
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace spindle

BENCHMARK_MAIN();
