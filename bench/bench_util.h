/// \file bench_util.h
/// \brief Shared fixtures for the experiment benchmarks (E1-E13).
///
/// Fixtures are built once per process and cached by parameter, so
/// google-benchmark iterations measure hot behaviour; cold behaviour is
/// measured explicitly where an experiment calls for it.

#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exec/exec_context.h"
#include "ir/indexing.h"
#include "ir/searcher.h"
#include "obs/trace.h"
#include "specialized/inverted_index.h"
#include "storage/catalog.h"
#include "workload/graph_gen.h"
#include "workload/text_gen.h"

namespace spindle {
namespace bench {

/// Aborts the benchmark with a message if a Result failed.
template <typename T>
T OrDie(Result<T> result, const char* what) {
  if (!result.ok()) {
    fprintf(stderr, "%s failed: %s\n", what,
            result.status().ToString().c_str());
    abort();
  }
  return std::move(result).ValueOrDie();
}

/// Parses and strips a `--threads=N` argument for benchmarks that take an
/// explicit engine thread count (e.g. E12's scaling sweep). Returns 0 when
/// the flag is absent — callers then fall back to their own sweep or to
/// the process default (the SPINDLE_THREADS environment variable, see
/// ExecContext::DefaultThreads()). Must run before benchmark::Initialize,
/// which rejects unknown flags.
inline int ParseThreadsFlag(int* argc, char** argv) {
  int threads = 0;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      threads = std::atoi(arg.c_str() + 10);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return threads;
}

/// Parses and strips a `--topk=N` argument for the query benchmarks whose
/// result-list size is configurable (E1/E9/E13). Returns `fallback` when
/// the flag is absent. Like ParseThreadsFlag, must run before
/// benchmark::Initialize, which rejects unknown flags.
inline size_t ParseTopKFlag(int* argc, char** argv, size_t fallback = 10) {
  size_t k = fallback;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--topk=", 0) == 0) {
      k = static_cast<size_t>(std::atoll(arg.c_str() + 7));
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return k;
}

/// The process-wide --topk value (set once in main, read by benchmarks;
/// google-benchmark registration cannot thread extra arguments through).
inline size_t& TopKFlag() {
  static size_t k = 10;
  return k;
}

/// Process-lifetime tracing for benchmark binaries. When enabled, one
/// obs::Tracer is installed as the main thread's ambient tracer for the
/// whole run (ParallelFor workers inherit it through TaskGroup::Spawn)
/// and its Chrome trace-event JSON is written at process exit — load the
/// file in chrome://tracing or Perfetto. Two activation paths:
///   - SPINDLE_TRACE=1 (default path spindle_trace.json) or
///     SPINDLE_TRACE=<path> in the environment: zero code changes, works
///     for plain BENCHMARK_MAIN() binaries;
///   - --trace=<path> via ParseTraceFlag, for benches with their own
///     main().
/// Tracing only observes — results are bit-identical; spans beyond the
/// tracer's cap are dropped and the count is reported on exit.
class ProcessTracer {
 public:
  static ProcessTracer& Instance() {
    // Deliberately leaked so the tracer outlives every static fixture and
    // is still valid when the atexit dump runs.
    static ProcessTracer* t = new ProcessTracer();
    return *t;
  }

  /// Idempotent; a later call just retargets the output path.
  void Enable(const std::string& path) {
    path_ = path;
    if (tracer_ != nullptr) return;
    tracer_ = new obs::Tracer();
    scope_ = new obs::ScopedTracer(tracer_);
    std::atexit([]() { Instance().Dump(); });
  }

  bool enabled() const { return tracer_ != nullptr; }

 private:
  ProcessTracer() = default;

  void Dump() {
    if (tracer_ == nullptr) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "trace: could not open %s\n", path_.c_str());
      return;
    }
    std::string json = tracer_->ExportChromeTrace();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "trace: wrote %zu spans to %s (%llu dropped)\n",
                 tracer_->num_spans(), path_.c_str(),
                 static_cast<unsigned long long>(tracer_->dropped()));
  }

  std::string path_;
  obs::Tracer* tracer_ = nullptr;       // leaked: alive through atexit
  obs::ScopedTracer* scope_ = nullptr;  // leaked: ambient for process life
};

/// Env-driven activation. An inline variable's dynamic initializer runs
/// during static init of any binary including this header, so
/// SPINDLE_TRACE works for BENCHMARK_MAIN() benches with no code changes.
inline const bool kTraceEnvActivated = []() {
  const char* env = std::getenv("SPINDLE_TRACE");
  if (env == nullptr || env[0] == '\0' || std::strcmp(env, "0") == 0) {
    return false;
  }
  ProcessTracer::Instance().Enable(
      std::strcmp(env, "1") == 0 ? "spindle_trace.json" : env);
  return true;
}();

/// Rewrites `--json=PATH` into `--benchmark_out=PATH` in place, so every
/// bench binary exports machine-readable results with one short uniform
/// flag (google-benchmark's out format defaults to JSON). The rewritten
/// strings live in leaked storage because google-benchmark keeps argv
/// pointers past Initialize. Must run before benchmark::Initialize.
inline void ParseJsonFlag(int* argc, char** argv) {
  // Deque, not vector: growth must not invalidate earlier c_str()s
  // already planted in argv.
  static auto* storage = new std::deque<std::string>();
  for (int i = 1; i < *argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      storage->push_back("--benchmark_out=" + arg.substr(7));
      argv[i] = const_cast<char*>(storage->back().c_str());
    }
  }
}

/// Parses and strips `--trace=<path.json>`, enabling process-lifetime
/// tracing (see ProcessTracer). Like ParseThreadsFlag, must run before
/// benchmark::Initialize, which rejects unknown flags.
inline bool ParseTraceFlag(int* argc, char** argv) {
  bool enabled = false;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      ProcessTracer::Instance().Enable(arg.substr(8));
      enabled = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return enabled;
}

/// Per-iteration wall-clock samples with tail percentiles. Latency
/// experiments care about p95/p99, which google-benchmark's mean/median
/// aggregates hide; this records every iteration of the timed loop and
/// publishes p50/p95/p99 as counters (milliseconds).
class LatencyRecorder {
 public:
  void Start() { t0_ = std::chrono::steady_clock::now(); }
  void Stop() {
    samples_.push_back(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0_)
            .count());
  }

  /// Appends another recorder's samples. LatencyRecorder is not
  /// thread-safe: concurrent benchmarks keep one recorder per client
  /// thread and merge them after the closed loop joins (E14).
  void Merge(const LatencyRecorder& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
  }

  size_t num_samples() const { return samples_.size(); }

  /// Nearest-rank percentile over the recorded samples, q in [0, 100].
  double Percentile(double q) {
    if (samples_.empty()) return 0.0;
    std::sort(samples_.begin(), samples_.end());
    size_t idx = static_cast<size_t>((q / 100.0) * samples_.size());
    if (idx >= samples_.size()) idx = samples_.size() - 1;
    return samples_[idx];
  }

  void Report(benchmark::State& state) {
    state.counters["p50_ms"] = Percentile(50);
    state.counters["p95_ms"] = Percentile(95);
    state.counters["p99_ms"] = Percentile(99);
  }

 private:
  std::chrono::steady_clock::time_point t0_;
  std::vector<double> samples_;
};

/// Publishes an index's three-way storage footprint (see
/// Catalog::ByteSizes / TextIndex::ByteSizes) as benchmark counters, so
/// footprint experiments report heap, mapped and compressed bytes
/// separately instead of one conflated number.
inline void ReportFootprint(benchmark::State& state,
                            const StorageByteStats& bytes) {
  state.counters["heap_bytes"] = static_cast<double>(bytes.heap_bytes);
  state.counters["mapped_bytes"] = static_cast<double>(bytes.mapped_bytes);
  state.counters["compressed_bytes"] =
      static_cast<double>(bytes.compressed_bytes);
  state.counters["total_bytes"] = static_cast<double>(bytes.total());
}

inline TextCollectionOptions CollectionOptions(int64_t num_docs) {
  TextCollectionOptions opts;
  opts.num_docs = num_docs;
  opts.vocab_size = std::max<int64_t>(2000, num_docs / 2);
  opts.avg_doc_len = 60;
  return opts;
}

/// (docID, data) collection of the given size, cached.
inline RelationPtr GetCollection(int64_t num_docs) {
  static auto* cache = new std::map<int64_t, RelationPtr>();
  auto it = cache->find(num_docs);
  if (it != cache->end()) return it->second;
  RelationPtr docs = OrDie(
      GenerateTextCollection(CollectionOptions(num_docs)), "text gen");
  cache->emplace(num_docs, docs);
  return docs;
}

/// Relational TextIndex over GetCollection(num_docs), cached.
inline TextIndexPtr GetIndex(int64_t num_docs) {
  static auto* cache = new std::map<int64_t, TextIndexPtr>();
  auto it = cache->find(num_docs);
  if (it != cache->end()) return it->second;
  Analyzer analyzer = OrDie(Analyzer::Make({}), "analyzer");
  TextIndexPtr index =
      OrDie(TextIndex::Build(GetCollection(num_docs), analyzer), "index");
  cache->emplace(num_docs, index);
  return index;
}

/// Specialized baseline index over the same collection, cached.
inline const SpecializedIndex& GetSpecializedIndex(int64_t num_docs) {
  static auto* cache = new std::map<int64_t, SpecializedIndex>();
  auto it = cache->find(num_docs);
  if (it != cache->end()) return it->second;
  Analyzer analyzer = OrDie(Analyzer::Make({}), "analyzer");
  auto index = OrDie(
      SpecializedIndex::Build(GetCollection(num_docs), analyzer),
      "specialized index");
  return cache->emplace(num_docs, std::move(index)).first->second;
}

/// Query workload over the collection vocabulary, cached.
inline const std::vector<std::string>& GetQueries(int64_t num_docs,
                                                  int terms) {
  static auto* cache =
      new std::map<std::pair<int64_t, int>, std::vector<std::string>>();
  auto key = std::make_pair(num_docs, terms);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second;
  auto queries = GenerateQueries(CollectionOptions(num_docs), 64, terms);
  return cache->emplace(key, std::move(queries)).first->second;
}

inline AuctionGraphOptions AuctionOptions(int64_t num_lots) {
  AuctionGraphOptions opts;
  opts.num_lots = num_lots;
  opts.num_auctions = std::max<int64_t>(2, num_lots / 100);
  return opts;
}

/// Catalog with a registered auction graph, cached per size.
inline Catalog& GetAuctionCatalog(int64_t num_lots) {
  static auto* cache = new std::map<int64_t, std::unique_ptr<Catalog>>();
  auto it = cache->find(num_lots);
  if (it != cache->end()) return *it->second;
  auto catalog = std::make_unique<Catalog>();
  TripleStore store =
      OrDie(GenerateAuctionGraph(AuctionOptions(num_lots)), "auction gen");
  Status st = store.RegisterInto(*catalog);
  if (!st.ok()) abort();
  return *cache->emplace(num_lots, std::move(catalog)).first->second;
}

inline const std::vector<std::string>& GetAuctionQueries(int64_t num_lots) {
  static auto* cache = new std::map<int64_t, std::vector<std::string>>();
  auto it = cache->find(num_lots);
  if (it != cache->end()) return it->second;
  auto queries =
      GenerateAuctionQueries(AuctionOptions(num_lots), 64, 3);
  return cache->emplace(num_lots, std::move(queries)).first->second;
}

}  // namespace bench
}  // namespace spindle

/// Every bench that uses the stock google-benchmark main still accepts
/// --json=PATH: the redefinition below rewrites it to --benchmark_out
/// before Initialize (which would otherwise reject the unknown flag).
/// Benches with a custom main() call ParseJsonFlag themselves.
#undef BENCHMARK_MAIN
#define BENCHMARK_MAIN()                                                \
  int main(int argc, char** argv) {                                     \
    char arg0_default[] = "benchmark";                                  \
    char* args_default = arg0_default;                                  \
    if (!argv) {                                                        \
      argc = 1;                                                         \
      argv = &args_default;                                             \
    }                                                                   \
    ::spindle::bench::ParseJsonFlag(&argc, argv);                       \
    ::benchmark::Initialize(&argc, argv);                               \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                              \
    ::benchmark::Shutdown();                                            \
    return 0;                                                           \
  }                                                                     \
  int main(int, char**)
