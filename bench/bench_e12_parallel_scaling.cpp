/// \file bench_e12_parallel_scaling.cpp
/// \brief E12 — morsel-driven parallel scaling of the relational IR engine.
///
/// Measures the two hot paths the exec subsystem parallelizes, at 1/2/4/8
/// engine threads over one fixed collection:
///
///  - keyword query: BM25 over the relational text index (MatchQuery term
///    fan-out, parallel hash joins, parallel group-by, parallel top-k);
///  - term lookup: the paper's Fig. 1 inner join of query terms against
///    term occurrences (parallel probe of the big term_doc side).
///
/// The 1-thread runs take the legacy serial code paths bit-exactly, so the
/// reported ratio serial/parallel is the subsystem's true speedup. Pass
/// --threads=N to pin a single thread count instead of sweeping (the
/// SPINDLE_THREADS environment variable sets the process default for all
/// other benchmarks, but this sweep installs explicit per-run contexts).

#include "bench/bench_util.h"
#include "engine/ops.h"
#include "exec/exec_context.h"

namespace spindle {
namespace bench {

constexpr int64_t kDocs = 50000;

/// Full keyword query: analyze, match, BM25-rank, top-10.
void BM_KeywordQueryScaling(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  TextIndexPtr index = GetIndex(kDocs);
  const auto& queries = GetQueries(kDocs, 3);
  ScopedExecContext scope{ExecContext(threads)};
  size_t qi = 0;
  for (auto _ : state) {
    const std::string& query = queries[qi++ % queries.size()];
    RelationPtr qterms = OrDie(index->QueryTerms(query), "qterms");
    RelationPtr top =
        OrDie(RankWithModel(*index, qterms, SearchOptions{}), "rank");
    benchmark::DoNotOptimize(top);
  }
  state.counters["threads"] = threads;
}

/// Term-lookup join (paper Fig. 1b): query terms x term_doc on term. The
/// build side is the tiny query relation; the morsel-parallel probe of
/// term_doc is what scales.
void BM_TermLookupJoinScaling(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  TextIndexPtr index = GetIndex(kDocs);
  const auto& queries = GetQueries(kDocs, 3);
  Analyzer analyzer = OrDie(Analyzer::Make({}), "analyzer");
  ScopedExecContext scope{ExecContext(threads)};
  size_t qi = 0;
  for (auto _ : state) {
    const std::string& query = queries[qi++ % queries.size()];
    RelationBuilder qb({{"term", DataType::kString}});
    for (const Token& tok : analyzer.Analyze(query)) {
      Status st = qb.AddRow({tok.text});
      if (!st.ok()) abort();
    }
    RelationPtr qrel = OrDie(qb.Build(), "qrel");
    RelationPtr matches =
        OrDie(HashJoin(index->term_doc(), qrel, {{0, 0}}), "join");
    benchmark::DoNotOptimize(matches);
  }
  state.counters["threads"] = threads;
  state.counters["term_doc_rows"] =
      static_cast<double>(index->term_doc()->num_rows());
}

}  // namespace bench
}  // namespace spindle

int main(int argc, char** argv) {
  const int threads_flag = spindle::bench::ParseThreadsFlag(&argc, argv);
  spindle::bench::ParseTraceFlag(&argc, argv);
  std::vector<int64_t> sweep;
  if (threads_flag > 0) {
    sweep = {threads_flag};
  } else {
    sweep = {1, 2, 4, 8};
  }
  for (int64_t t : sweep) {
    benchmark::RegisterBenchmark("BM_KeywordQueryScaling",
                                 spindle::bench::BM_KeywordQueryScaling)
        ->ArgNames({"threads"})
        ->Arg(t)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("BM_TermLookupJoinScaling",
                                 spindle::bench::BM_TermLookupJoinScaling)
        ->ArgNames({"threads"})
        ->Arg(t)
        ->Unit(benchmark::kMillisecond);
  }
  spindle::bench::ParseJsonFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
