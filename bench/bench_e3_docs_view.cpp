/// \file bench_e3_docs_view.cpp
/// \brief E3 — paper §2.2: building the toy scenario's `docs` view
/// (category filter self-joined with description extraction) under three
/// storage layouts:
///   single-table  — filter the big triples table on every access,
///   per-property  — Abadi-style eager vertical partitioning [1],
///   adaptive      — the paper's query-driven materialization (cold pays
///                   once, hot is a cache hit).
///
/// Reproduction target: adaptive-hot ~ per-property << single-table, with
/// adaptive paying the single-table cost exactly once (cold).

#include <chrono>

#include "bench/bench_util.h"
#include "engine/ops.h"
#include "triples/emergent_schema.h"
#include "triples/partitioning.h"

namespace spindle {
namespace bench {
namespace {

RelationPtr GetCatalogTriples(int64_t num_products) {
  static auto* cache = new std::map<int64_t, RelationPtr>();
  auto it = cache->find(num_products);
  if (it != cache->end()) return it->second;
  ProductCatalogOptions opts;
  opts.num_products = num_products;
  TripleStore store = OrDie(GenerateProductCatalog(opts), "catalog gen");
  RelationPtr triples = OrDie(store.StringTriples(), "triples");
  cache->emplace(num_products, triples);
  return triples;
}

/// Builds the docs view from (subject, object, p) property partitions.
RelationPtr BuildDocsView(const PartitionedTriples& layout) {
  RelationPtr cat = OrDie(layout.Pattern("category"), "category");
  RelationPtr toys = OrDie(
      Filter(cat, Expr::Eq(Expr::Column(1), Expr::LitString("toy")),
             FunctionRegistry::Default()),
      "toy filter");
  RelationPtr desc = OrDie(layout.Pattern("description"), "description");
  RelationPtr joined = OrDie(HashJoin(toys, desc, {{0, 0}}), "join");
  // (subject, object, p, subject, object, p) -> (docID, data)
  return OrDie(ProjectColumns(joined, {0, 4}, {"docID", "data"}), "proj");
}

void RunLayout(benchmark::State& state, TripleLayout layout_kind,
               bool clear_cache_each_iteration) {
  const int64_t num_products = state.range(0);
  RelationPtr triples = GetCatalogTriples(num_products);
  MaterializationCache cache(1024 << 20);
  auto layout = OrDie(
      PartitionedTriples::Make(
          triples, layout_kind,
          layout_kind == TripleLayout::kAdaptive ? &cache : nullptr),
      "layout");
  int64_t docs_rows = 0;
  for (auto _ : state) {
    if (clear_cache_each_iteration) cache.Clear();
    RelationPtr docs = BuildDocsView(layout);
    benchmark::DoNotOptimize(docs);
    docs_rows = static_cast<int64_t>(docs->num_rows());
  }
  state.counters["triples"] = static_cast<double>(triples->num_rows());
  state.counters["docs_rows"] = static_cast<double>(docs_rows);
}

void BM_DocsViewSingleTable(benchmark::State& state) {
  RunLayout(state, TripleLayout::kSingleTable, false);
}
void BM_DocsViewPerProperty(benchmark::State& state) {
  RunLayout(state, TripleLayout::kPerProperty, false);
}
void BM_DocsViewAdaptiveCold(benchmark::State& state) {
  RunLayout(state, TripleLayout::kAdaptive, true);
}
void BM_DocsViewAdaptiveHot(benchmark::State& state) {
  RunLayout(state, TripleLayout::kAdaptive, false);
}

BENCHMARK(BM_DocsViewSingleTable)
    ->ArgNames({"products"})
    ->Arg(2000)
    ->Arg(20000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DocsViewPerProperty)
    ->ArgNames({"products"})
    ->Arg(2000)
    ->Arg(20000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DocsViewAdaptiveCold)
    ->ArgNames({"products"})
    ->Arg(2000)
    ->Arg(20000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DocsViewAdaptiveHot)
    ->ArgNames({"products"})
    ->Arg(2000)
    ->Arg(20000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

/// The §2.2 future-work alternative: emergent schemas [11] eliminate the
/// self-join entirely — the docs view becomes a filter + projection on
/// one wide table. Detection cost is reported as a counter (paid once).
void BM_DocsViewEmergentSchema(benchmark::State& state) {
  const int64_t num_products = state.range(0);
  RelationPtr triples = GetCatalogTriples(num_products);
  auto detect_start = std::chrono::steady_clock::now();
  auto schema = OrDie(EmergentSchema::Detect(triples), "detect");
  double detect_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - detect_start)
                         .count();
  for (auto _ : state) {
    RelationPtr wide =
        OrDie(schema.TableFor({"category", "description"}), "table");
    RelationPtr toys = OrDie(
        Filter(wide, Expr::Eq(Expr::Column(1), Expr::LitString("toy")),
               FunctionRegistry::Default()),
        "filter");
    RelationPtr docs = OrDie(
        ProjectColumns(toys, {0, 2}, {"docID", "data"}), "project");
    benchmark::DoNotOptimize(docs);
  }
  state.counters["detect_ms"] = detect_ms;
  state.counters["coverage_pct"] = 100.0 * schema.coverage();
}

BENCHMARK(BM_DocsViewEmergentSchema)
    ->ArgNames({"products"})
    ->Arg(2000)
    ->Arg(20000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace spindle

BENCHMARK_MAIN();
