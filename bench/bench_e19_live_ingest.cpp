/// \file bench_e19_live_ingest.cpp
/// \brief E19: query serving under a live write stream.
///
/// Closed-loop reader clients (4 threads) issue keyword queries against
/// one QueryService while a paced writer applies ADD/UPDATE/DELETE at a
/// fixed rate. Reported per write rate (0, 10, 100 writes/second):
///   - items_per_second   completed queries per second (QPS)
///   - p50/p95/p99_ms     per-query latency percentiles
///   - freshness_p50/p99_ms  write-arrival -> searchable lag percentiles
///                        (from the service's freshness histogram)
///   - compactions        background compactions during the measurement
///   - compact_pause_ms   cumulative compaction build wall time — all of
///                        it off-thread: queries keep serving the pinned
///                        version while the rebuild runs
///
/// The 0-writes point is the baseline: the same service and workload
/// with the writer idle, so any delta between rows is the cost of
/// freshness, not of the serving stack.
///
///   ./bench_e19_live_ingest
///   ./bench_e19_live_ingest --topk=100

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "server/query_service.h"

namespace spindle {
namespace bench {
namespace {

constexpr int64_t kNumDocs = 20000;
constexpr int kReaderThreads = 4;
constexpr int kQueriesPerReaderPerIter = 16;

/// Round-robin ADD / UPDATE / DELETE over a private docID range so every
/// write validates (the paced writer never collides with base docIDs).
class WriteStream {
 public:
  explicit WriteStream(int64_t first_id) : next_id_(first_id) {}

  server::WriteRequest Next() {
    server::WriteRequest req;
    req.collection = "live";
    const int turn = static_cast<int>(ops_ % 3);
    if (turn == 0 || live_.empty()) {
      req.op.kind = ingest::WriteOp::Kind::kAdd;
      req.op.doc_id = next_id_++;
      req.op.text = "fresh document body " + std::to_string(req.op.doc_id);
      live_.push_back(req.op.doc_id);
    } else if (turn == 1) {
      req.op.kind = ingest::WriteOp::Kind::kUpdate;
      req.op.doc_id = live_.back();
      req.op.text = "updated document body " + std::to_string(ops_);
    } else {
      req.op.kind = ingest::WriteOp::Kind::kDelete;
      req.op.doc_id = live_.front();
      live_.erase(live_.begin());
    }
    ++ops_;
    return req;
  }

 private:
  int64_t next_id_;
  uint64_t ops_ = 0;
  std::vector<int64_t> live_;
};

void BM_E19_LiveIngest(benchmark::State& state) {
  const int writes_per_second = static_cast<int>(state.range(0));

  // A fresh service per rate point: the write stream mutates the
  // collection, so sharing one instance would let earlier points warm
  // (or grow) the collection for later ones.
  server::QueryServiceOptions opts;
  opts.compact_threshold = 64;
  server::QueryService service(opts);
  service.RegisterCollection("live", GetCollection(kNumDocs));

  const std::vector<std::string>& queries = GetQueries(kNumDocs, 2);
  SearchOptions options;
  options.top_k = TopKFlag();

  // Warm the index, then dirty the delta once so readers measure the
  // two-lane live path (a permanently clean delta would measure E14).
  {
    server::SearchRequest req;
    req.collection = "live";
    req.query = queries[0];
    req.options = options;
    auto r = service.Search(req);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
  }
  WriteStream stream(10'000'000);
  if (writes_per_second > 0) {
    auto w = service.Write(stream.Next());
    if (!w.ok()) {
      state.SkipWithError(w.status().ToString().c_str());
      return;
    }
  }

  const uint64_t base_compactions = service.LiveStats("live").compactions;
  const uint64_t base_compaction_us =
      service.LiveStats("live").compaction_us;

  LatencyRecorder recorder;
  uint64_t completed = 0;
  std::atomic<uint64_t> write_errors{0};

  for (auto _ : state) {
    std::atomic<bool> stop{false};
    // Paced writer: sleeps 1/rate between writes. Writes outside the
    // readers' closed loop are not counted as items.
    std::thread writer;
    if (writes_per_second > 0) {
      writer = std::thread([&] {
        const auto period = std::chrono::microseconds(
            1'000'000 / writes_per_second);
        while (!stop.load(std::memory_order_relaxed)) {
          auto w = service.Write(stream.Next());
          if (!w.ok()) {
            write_errors.fetch_add(1, std::memory_order_relaxed);
          }
          // Sliced sleep so the iteration join is not gated on a full
          // write period (100 ms at 10 writes/s would dominate).
          const auto until = std::chrono::steady_clock::now() + period;
          while (!stop.load(std::memory_order_relaxed) &&
                 std::chrono::steady_clock::now() < until) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        }
      });
    }

    std::vector<LatencyRecorder> per_reader(kReaderThreads);
    std::atomic<uint64_t> iter_ok{0};
    std::atomic<uint64_t> iter_errors{0};
    std::vector<std::thread> readers;
    readers.reserve(kReaderThreads);
    for (int c = 0; c < kReaderThreads; ++c) {
      readers.emplace_back([&, c] {
        LatencyRecorder& rec = per_reader[c];
        for (int i = 0; i < kQueriesPerReaderPerIter; ++i) {
          server::SearchRequest req;
          req.collection = "live";
          req.query = queries[(c * kQueriesPerReaderPerIter + i) %
                              queries.size()];
          req.options = options;
          rec.Start();
          auto r = service.Search(req);
          rec.Stop();
          if (r.ok()) {
            iter_ok.fetch_add(1, std::memory_order_relaxed);
            benchmark::DoNotOptimize(r.ValueOrDie().rows);
          } else {
            iter_errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& t : readers) t.join();
    stop.store(true, std::memory_order_relaxed);
    if (writer.joinable()) writer.join();

    if (iter_errors.load() > 0) {
      state.SkipWithError("queries failed");
      return;
    }
    for (const LatencyRecorder& rec : per_reader) recorder.Merge(rec);
    completed += iter_ok.load();
  }

  if (write_errors.load() > 0) {
    state.SkipWithError("writes failed");
    return;
  }

  state.SetItemsProcessed(static_cast<int64_t>(completed));
  recorder.Report(state);
  state.counters["writes_per_second"] = writes_per_second;

  const auto& fresh = service.metrics().freshness_lag_us;
  state.counters["freshness_p50_ms"] =
      static_cast<double>(fresh.PercentileUs(50)) / 1000.0;
  state.counters["freshness_p99_ms"] =
      static_cast<double>(fresh.PercentileUs(99)) / 1000.0;

  const auto live = service.LiveStats("live");
  state.counters["compactions"] =
      static_cast<double>(live.compactions - base_compactions);
  state.counters["compact_pause_ms"] =
      static_cast<double>(live.compaction_us - base_compaction_us) / 1000.0;
}

BENCHMARK(BM_E19_LiveIngest)
    ->Arg(0)
    ->Arg(10)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace bench
}  // namespace spindle

int main(int argc, char** argv) {
  spindle::bench::TopKFlag() =
      spindle::bench::ParseTopKFlag(&argc, argv);
  spindle::bench::ParseTraceFlag(&argc, argv);
  spindle::bench::ParseJsonFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
