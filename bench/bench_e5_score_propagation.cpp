/// \file bench_e5_score_propagation.cpp
/// \brief E5 — paper §2.3: the probabilistic relational algebra appends a
/// probability column to every table and combines it in every operator.
/// This benchmark quantifies the overhead of score propagation by pairing
/// each PRA operator with its boolean-only engine equivalent.
///
/// Reproduction target: propagation costs a small constant factor (one
/// extra float64 column and a multiply/merge per tuple), not an
/// asymptotic change — which is what makes "structured search playing
/// alongside unstructured search with the very same tools" affordable.

#include "bench/bench_util.h"
#include "engine/ops.h"
#include "pra/pra_ops.h"

namespace spindle {
namespace bench {
namespace {

ProbRelation MakeEvents(int64_t n, uint64_t seed) {
  Rng rng(seed);
  RelationBuilder b({{"id", DataType::kInt64},
                     {"key", DataType::kInt64},
                     {"p", DataType::kFloat64}});
  for (int64_t i = 0; i < n; ++i) {
    Status st = b.AddRow({i, static_cast<int64_t>(rng.NextBounded(n / 4)),
                          rng.NextDouble()});
    if (!st.ok()) abort();
  }
  return OrDie(ProbRelation::Wrap(OrDie(b.Build(), "build")), "wrap");
}

void BM_JoinBoolean(benchmark::State& state) {
  ProbRelation l = MakeEvents(state.range(0), 1);
  ProbRelation r = MakeEvents(state.range(0), 2);
  for (auto _ : state) {
    RelationPtr out = OrDie(HashJoin(l.rel(), r.rel(), {{1, 1}}), "join");
    benchmark::DoNotOptimize(out);
  }
}

void BM_JoinIndependent(benchmark::State& state) {
  ProbRelation l = MakeEvents(state.range(0), 1);
  ProbRelation r = MakeEvents(state.range(0), 2);
  for (auto _ : state) {
    ProbRelation out = OrDie(pra::JoinIndependent(l, r, {{1, 1}}), "join");
    benchmark::DoNotOptimize(out);
  }
}

void BM_ProjectDistinctBoolean(benchmark::State& state) {
  ProbRelation in = MakeEvents(state.range(0), 3);
  for (auto _ : state) {
    RelationPtr out = OrDie(Distinct(in.rel(), {1}), "distinct");
    benchmark::DoNotOptimize(out);
  }
}

void BM_ProjectIndependent(benchmark::State& state) {
  ProbRelation in = MakeEvents(state.range(0), 3);
  for (auto _ : state) {
    ProbRelation out =
        OrDie(pra::ProjectPositions(in, {1}, Assumption::kIndependent),
              "project");
    benchmark::DoNotOptimize(out);
  }
}

void BM_SelectBoolean(benchmark::State& state) {
  ProbRelation in = MakeEvents(state.range(0), 4);
  auto pred = Expr::Lt(Expr::Column(1), Expr::LitInt(state.range(0) / 8));
  for (auto _ : state) {
    RelationPtr out =
        OrDie(Filter(in.rel(), pred, FunctionRegistry::Default()),
              "filter");
    benchmark::DoNotOptimize(out);
  }
}

void BM_SelectProbabilistic(benchmark::State& state) {
  ProbRelation in = MakeEvents(state.range(0), 4);
  auto pred = Expr::Lt(Expr::Column(1), Expr::LitInt(state.range(0) / 8));
  for (auto _ : state) {
    ProbRelation out =
        OrDie(pra::Select(in, pred, FunctionRegistry::Default()), "select");
    benchmark::DoNotOptimize(out);
  }
}

void BM_BayesNormalization(benchmark::State& state) {
  ProbRelation in = MakeEvents(state.range(0), 5);
  for (auto _ : state) {
    ProbRelation out = OrDie(pra::Bayes(in, {1}), "bayes");
    benchmark::DoNotOptimize(out);
  }
}

BENCHMARK(BM_JoinBoolean)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_JoinIndependent)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ProjectDistinctBoolean)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ProjectIndependent)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SelectBoolean)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SelectProbabilistic)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BayesNormalization)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace spindle

BENCHMARK_MAIN();
