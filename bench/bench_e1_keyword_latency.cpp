/// \file bench_e1_keyword_latency.cpp
/// \brief E1 — paper §2.1 headline claim: "runtime performance in the
/// range of 20 ms (hot data) for 3-term queries against a 2.3 GB
/// collection of raw text (1.1 M documents)".
///
/// Measures hot BM25 query latency on the relational pipeline, sweeping
/// collection size x query-term count. The query-independent views
/// (term_doc, termdict, tf, doc_len, idf) are materialized once per
/// collection; the timed region is exactly what varies per query: qterms
/// mapping + the join-project-aggregate of §2.1's final SQL.
///
/// Reproduction target: tens of milliseconds per 3-term query at the
/// largest collection, growing roughly linearly with collection size and
/// sub-linearly with query length.

#include "bench/bench_util.h"
#include "ir/ranking.h"
#include "ir/topk_pruning.h"

namespace spindle {
namespace bench {
namespace {

void BM_KeywordQueryHot(benchmark::State& state) {
  const int64_t num_docs = state.range(0);
  const int terms = static_cast<int>(state.range(1));
  TextIndexPtr index = GetIndex(num_docs);
  const auto& queries = GetQueries(num_docs, terms);

  LatencyRecorder lat;
  size_t qi = 0;
  int64_t results = 0;
  for (auto _ : state) {
    const std::string& query = queries[qi++ % queries.size()];
    lat.Start();
    RelationPtr qterms = OrDie(index->QueryTerms(query), "qterms");
    RelationPtr scored = OrDie(RankBm25(*index, qterms), "bm25");
    lat.Stop();
    benchmark::DoNotOptimize(scored);
    results += static_cast<int64_t>(scored->num_rows());
  }
  lat.Report(state);
  state.counters["docs"] = static_cast<double>(num_docs);
  state.counters["postings"] =
      static_cast<double>(index->stats().total_postings);
  state.counters["terms/query"] = terms;
  state.counters["avg_results"] =
      static_cast<double>(results) / state.iterations();
}

/// The same query stream through the fused MaxScore/WAND top-k path
/// (ir/topk_pruning.h) at k = --topk (default 10) — the user-facing
/// ranked-search configuration, where the engine may skip documents it
/// can prove sub-threshold instead of scoring the full match set.
void BM_KeywordQueryHotTopK(benchmark::State& state) {
  const int64_t num_docs = state.range(0);
  const int terms = static_cast<int>(state.range(1));
  TextIndexPtr index = GetIndex(num_docs);
  const auto& queries = GetQueries(num_docs, terms);
  SearchOptions options;
  options.top_k = TopKFlag();

  LatencyRecorder lat;
  PruningStats stats;
  size_t qi = 0;
  for (auto _ : state) {
    const std::string& query = queries[qi++ % queries.size()];
    lat.Start();
    RelationPtr qterms = OrDie(index->QueryTerms(query), "qterms");
    RelationPtr top =
        OrDie(RankTopK(*index, qterms, options, &stats), "fused topk");
    lat.Stop();
    benchmark::DoNotOptimize(top);
  }
  lat.Report(state);
  const double iters = static_cast<double>(state.iterations());
  state.counters["k"] = static_cast<double>(options.top_k);
  state.counters["docs_scored"] =
      static_cast<double>(stats.docs_scored) / iters;
  state.counters["docs_skipped"] =
      static_cast<double>(stats.docs_skipped) / iters;
  state.counters["blocks_skipped"] =
      static_cast<double>(stats.blocks_skipped) / iters;
}

BENCHMARK(BM_KeywordQueryHot)
    ->ArgNames({"docs", "terms"})
    ->Args({2000, 3})
    ->Args({10000, 3})
    ->Args({50000, 3})
    ->Args({50000, 1})
    ->Args({50000, 2})
    ->Args({50000, 5})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_KeywordQueryHotTopK)
    ->ArgNames({"docs", "terms"})
    ->Args({10000, 3})
    ->Args({50000, 3})
    ->Args({50000, 5})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace spindle

int main(int argc, char** argv) {
  spindle::bench::TopKFlag() =
      spindle::bench::ParseTopKFlag(&argc, argv, /*fallback=*/10);
  spindle::bench::ParseTraceFlag(&argc, argv);
  spindle::bench::ParseJsonFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
