/// \file bench_e6_toy_strategy.cpp
/// \brief E6 — paper Fig. 2: the toy strategy end-to-end (select category,
/// extract descriptions, on-demand index, BM25 rank, top-k), swept over
/// catalog size, hot and cold.
///
/// Reproduction target: hot requests are dominated by the per-query
/// ranking joins; cold requests additionally pay sub-collection filtering
/// and on-demand index construction, which the adaptive cache then
/// amortizes over all subsequent requests.

#include "bench/bench_util.h"
#include "strategy/prebuilt.h"

namespace spindle {
namespace bench {
namespace {

Catalog& GetProductCatalog(int64_t num_products) {
  static auto* cache = new std::map<int64_t, std::unique_ptr<Catalog>>();
  auto it = cache->find(num_products);
  if (it != cache->end()) return *it->second;
  ProductCatalogOptions opts;
  opts.num_products = num_products;
  TripleStore store = OrDie(GenerateProductCatalog(opts), "catalog gen");
  auto catalog = std::make_unique<Catalog>();
  if (!store.RegisterInto(*catalog).ok()) abort();
  return *cache->emplace(num_products, std::move(catalog)).first->second;
}

std::vector<std::string> ProductQueries(int64_t num_products) {
  ProductCatalogOptions gopts;
  gopts.num_products = num_products;
  TextCollectionOptions vocab;
  vocab.vocab_size = gopts.vocab_size;
  return GenerateQueries(vocab, 64, 3);
}

void BM_ToyStrategyHot(benchmark::State& state) {
  const int64_t num_products = state.range(0);
  Catalog& catalog = GetProductCatalog(num_products);
  MaterializationCache cache(1024 << 20);
  strategy::StrategyExecutor executor(&catalog, &cache);
  strategy::Strategy strat =
      OrDie(strategy::MakeToyStrategy(), "strategy");
  auto queries = ProductQueries(num_products);
  // Warm up: build sub-collection + index once.
  OrDie(executor.Run(strat, queries[0]), "warmup");

  size_t qi = 0;
  for (auto _ : state) {
    ProbRelation hits =
        OrDie(executor.Run(strat, queries[qi++ % queries.size()]), "run");
    benchmark::DoNotOptimize(hits);
  }
  state.counters["products"] = static_cast<double>(num_products);
  state.counters["index_builds"] =
      static_cast<double>(executor.evaluator().stats().index_misses);
}

BENCHMARK(BM_ToyStrategyHot)
    ->ArgNames({"products"})
    ->Arg(2000)
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);

void BM_ToyStrategyCold(benchmark::State& state) {
  const int64_t num_products = state.range(0);
  Catalog& catalog = GetProductCatalog(num_products);
  auto queries = ProductQueries(num_products);
  size_t qi = 0;
  for (auto _ : state) {
    // Fresh cache + evaluator: everything on demand.
    MaterializationCache cache(1024 << 20);
    strategy::StrategyExecutor executor(&catalog, &cache);
    strategy::Strategy strat =
        OrDie(strategy::MakeToyStrategy(), "strategy");
    ProbRelation hits =
        OrDie(executor.Run(strat, queries[qi++ % queries.size()]), "run");
    benchmark::DoNotOptimize(hits);
  }
  state.counters["products"] = static_cast<double>(num_products);
}

BENCHMARK(BM_ToyStrategyCold)
    ->ArgNames({"products"})
    ->Arg(2000)
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace spindle

BENCHMARK_MAIN();
