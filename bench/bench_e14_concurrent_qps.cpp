/// \file bench_e14_concurrent_qps.cpp
/// \brief E14: concurrent serving throughput and tail latency.
///
/// Closed-loop clients (1, 4, 16, 64 threads) issue keyword queries
/// against one QueryService. Reported per client count:
///   - items_per_second  completed queries per second (QPS)
///   - p50/p95/p99_ms    per-request latency percentiles (admission +
///                       execution, merged across client recorders)
///   - shed_rate         fraction of requests shed with Overloaded
///
/// The admission controller is configured tighter than the default
/// (4 in flight, queue of 16) so the 64-client point demonstrates
/// explicit load shedding instead of unbounded queueing — the paper's
/// industrial-strength requirement that overload degrade predictably.
///
///   ./bench_e14_concurrent_qps
///   ./bench_e14_concurrent_qps --topk=100

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "server/query_service.h"

namespace spindle {
namespace bench {
namespace {

constexpr int64_t kNumDocs = 50000;
constexpr int kQueriesPerClientPerIter = 8;

/// One service per process, shared by every client count so the index and
/// caches are warm (the cold path is E8's experiment).
server::QueryService& GetService() {
  static auto* service = [] {
    server::QueryServiceOptions opts;
    opts.admission.max_inflight = 4;
    opts.admission.max_queue = 16;
    auto* s = new server::QueryService(opts);
    s->RegisterCollection("docs", GetCollection(kNumDocs));
    return s;
  }();
  return *service;
}

void BM_E14_ConcurrentQps(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  server::QueryService& service = GetService();
  const std::vector<std::string>& queries = GetQueries(kNumDocs, 2);

  SearchOptions options;
  options.top_k = TopKFlag();

  // Warm the on-demand index once so the closed loop measures serving.
  {
    server::SearchRequest req;
    req.collection = "docs";
    req.query = queries[0];
    req.options = options;
    auto r = service.Search(req);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
  }

  LatencyRecorder recorder;
  uint64_t completed = 0;
  uint64_t shed = 0;
  uint64_t errors = 0;

  for (auto _ : state) {
    std::vector<LatencyRecorder> per_client(clients);
    std::atomic<uint64_t> iter_ok{0};
    std::atomic<uint64_t> iter_shed{0};
    std::atomic<uint64_t> iter_errors{0};
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        LatencyRecorder& rec = per_client[c];
        for (int i = 0; i < kQueriesPerClientPerIter; ++i) {
          server::SearchRequest req;
          req.collection = "docs";
          req.query = queries[(c * kQueriesPerClientPerIter + i) %
                              queries.size()];
          req.options = options;
          rec.Start();
          auto r = service.Search(req);
          rec.Stop();
          if (r.ok()) {
            iter_ok.fetch_add(1, std::memory_order_relaxed);
            benchmark::DoNotOptimize(r.ValueOrDie().rows);
          } else if (r.status().code() == StatusCode::kOverloaded) {
            iter_shed.fetch_add(1, std::memory_order_relaxed);
          } else {
            iter_errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    for (const LatencyRecorder& rec : per_client) recorder.Merge(rec);
    completed += iter_ok.load();
    shed += iter_shed.load();
    errors += iter_errors.load();
  }

  if (errors > 0) {
    state.SkipWithError("requests failed with unexpected statuses");
    return;
  }
  state.SetItemsProcessed(static_cast<int64_t>(completed));
  recorder.Report(state);
  const double attempts = static_cast<double>(completed + shed);
  state.counters["shed_rate"] =
      attempts > 0 ? static_cast<double>(shed) / attempts : 0.0;
  state.counters["clients"] = clients;
}

BENCHMARK(BM_E14_ConcurrentQps)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace bench
}  // namespace spindle

int main(int argc, char** argv) {
  spindle::bench::TopKFlag() =
      spindle::bench::ParseTopKFlag(&argc, argv);
  spindle::bench::ParseTraceFlag(&argc, argv);
  spindle::bench::ParseJsonFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
