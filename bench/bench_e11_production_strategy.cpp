/// \file bench_e11_production_strategy.cpp
/// \brief E11 — paper §3: "the production version of this strategy ...
/// includes 5 parallel keyword search branches and query expansion with
/// synonyms and compound terms".
///
/// Measures hot request latency as branches are added (1..5) and with
/// synonym expansion toggled. Reproduction target: latency grows roughly
/// linearly in the number of rank branches; synonym expansion adds the
/// cost of the extra query rows, not of new indexes.

#include "bench/bench_util.h"
#include "strategy/prebuilt.h"

namespace spindle {
namespace bench {
namespace {

constexpr int64_t kLots = 20000;

strategy::ProductionStrategyOptions OptionsForBranches(int branches,
                                                       bool synonyms) {
  strategy::ProductionStrategyOptions opts;
  std::vector<strategy::ProductionStrategyOptions::Branch> all = {
      {"description", 0.35, false}, {"title", 0.25, false},
      {"tags", 0.1, false},         {"sellerNotes", 0.1, false},
      {"description", 0.2, true},
  };
  opts.branches.assign(all.begin(), all.begin() + branches);
  opts.expand_synonyms = synonyms;
  return opts;
}

void BM_ProductionBranches(benchmark::State& state) {
  const int branches = static_cast<int>(state.range(0));
  Catalog& catalog = GetAuctionCatalog(kLots);
  MaterializationCache cache(2048ull << 20);
  strategy::StrategyExecutor executor(&catalog, &cache);
  strategy::Strategy strat =
      OrDie(strategy::MakeProductionStrategy(
                OptionsForBranches(branches, /*synonyms=*/false)),
            "strategy");
  const auto& queries = GetAuctionQueries(kLots);
  OrDie(executor.Run(strat, queries[0]), "warmup");

  size_t qi = 0;
  for (auto _ : state) {
    ProbRelation hits =
        OrDie(executor.Run(strat, queries[qi++ % queries.size()]), "run");
    benchmark::DoNotOptimize(hits);
  }
  state.counters["branches"] = branches;
  state.counters["indexes"] =
      static_cast<double>(executor.evaluator().stats().index_misses);
}

BENCHMARK(BM_ProductionBranches)
    ->ArgNames({"branches"})
    ->DenseRange(1, 5)
    ->Unit(benchmark::kMillisecond);

void BM_ProductionSynonyms(benchmark::State& state) {
  const bool synonyms = state.range(0) != 0;
  Catalog& catalog = GetAuctionCatalog(kLots);
  MaterializationCache cache(2048ull << 20);
  strategy::StrategyExecutor executor(&catalog, &cache);
  strategy::Strategy strat = OrDie(
      strategy::MakeProductionStrategy(OptionsForBranches(5, synonyms)),
      "strategy");
  const auto& queries = GetAuctionQueries(kLots);
  OrDie(executor.Run(strat, queries[0]), "warmup");

  size_t qi = 0;
  for (auto _ : state) {
    ProbRelation hits =
        OrDie(executor.Run(strat, queries[qi++ % queries.size()]), "run");
    benchmark::DoNotOptimize(hits);
  }
  state.SetLabel(synonyms ? "with synonym expansion" : "plain query");
}

BENCHMARK(BM_ProductionSynonyms)
    ->ArgNames({"synonyms"})
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace spindle

BENCHMARK_MAIN();
