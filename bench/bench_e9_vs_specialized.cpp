/// \file bench_e9_vs_specialized.cpp
/// \brief E9 — paper §2.1: "while beating specialized text retrieval
/// systems on raw speed is not the focus of this study, reaching
/// reasonable performance is a requirement".
///
/// Same collection, same analyzer, same BM25 formula (score equality is
/// asserted by tests/specialized_test.cc): the relational pipeline vs the
/// classic dictionary+postings engine, for query and index-build time.
///
/// Reproduction target: the specialized engine wins on raw query speed by
/// a constant factor (it touches only matching postings; the relational
/// join scans tf), while the relational side keeps "reasonable"
/// single-digit-to-tens-of-ms latencies — the paper's trade-off.

#include "bench/bench_util.h"
#include "engine/ops.h"
#include "ir/ranking.h"
#include "ir/topk_pruning.h"

namespace spindle {
namespace bench {
namespace {

void BM_QueryRelational(benchmark::State& state) {
  const int64_t num_docs = state.range(0);
  TextIndexPtr index = GetIndex(num_docs);
  const auto& queries = GetQueries(num_docs, 3);
  size_t qi = 0;
  for (auto _ : state) {
    const std::string& query = queries[qi++ % queries.size()];
    RelationPtr qterms = OrDie(index->QueryTerms(query), "qterms");
    RelationPtr scored = OrDie(RankBm25(*index, qterms), "bm25");
    RelationPtr top = OrDie(TopK(scored, {1, true}, TopKFlag()), "topk");
    benchmark::DoNotOptimize(top);
  }
}

/// Ablation: the same query via a full scan-join of tf (what the
/// relational path costs without the query-independent term-partitioned
/// access path — i.e., without MonetDB-style indexed column access).
void BM_QueryRelationalScanJoin(benchmark::State& state) {
  const int64_t num_docs = state.range(0);
  TextIndexPtr index = GetIndex(num_docs);
  const auto& queries = GetQueries(num_docs, 3);
  size_t qi = 0;
  for (auto _ : state) {
    const std::string& query = queries[qi++ % queries.size()];
    RelationPtr qterms = OrDie(index->QueryTerms(query), "qterms");
    RelationPtr matched =
        OrDie(HashJoin(index->tf(), qterms, {{0, 0}}), "scan join");
    benchmark::DoNotOptimize(matched);
  }
  state.counters["tf_rows"] =
      static_cast<double>(index->tf()->num_rows());
}

BENCHMARK(BM_QueryRelationalScanJoin)
    ->ArgNames({"docs"})
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);

/// The fused MaxScore/WAND relational path (ir/topk_pruning.h): same
/// index, same queries, same top-10 cut as BM_QueryRelational, but the
/// scorer prunes documents it can bound below the heap threshold instead
/// of materializing the full scored relation first.
void BM_QueryRelationalFused(benchmark::State& state) {
  const int64_t num_docs = state.range(0);
  TextIndexPtr index = GetIndex(num_docs);
  const auto& queries = GetQueries(num_docs, 3);
  SearchOptions options;
  options.top_k = TopKFlag();
  PruningStats stats;
  size_t qi = 0;
  for (auto _ : state) {
    const std::string& query = queries[qi++ % queries.size()];
    RelationPtr qterms = OrDie(index->QueryTerms(query), "qterms");
    RelationPtr top =
        OrDie(RankTopK(*index, qterms, options, &stats), "fused topk");
    benchmark::DoNotOptimize(top);
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["k"] = static_cast<double>(options.top_k);
  state.counters["docs_scored"] =
      static_cast<double>(stats.docs_scored) / iters;
  state.counters["docs_skipped"] =
      static_cast<double>(stats.docs_skipped) / iters;
  state.counters["blocks_skipped"] =
      static_cast<double>(stats.blocks_skipped) / iters;
}

void BM_QuerySpecialized(benchmark::State& state) {
  const int64_t num_docs = state.range(0);
  const SpecializedIndex& index = GetSpecializedIndex(num_docs);
  const auto& queries = GetQueries(num_docs, 3);
  size_t qi = 0;
  for (auto _ : state) {
    auto hits =
        index.SearchBm25(queries[qi++ % queries.size()], TopKFlag());
    benchmark::DoNotOptimize(hits);
  }
}

/// The specialized engine's document-at-a-time mode with the same
/// MaxScore/WAND bounds as the relational fused path — like against
/// like on both sides of the specialized-vs-relational comparison.
void BM_QuerySpecializedDaat(benchmark::State& state) {
  const int64_t num_docs = state.range(0);
  const SpecializedIndex& index = GetSpecializedIndex(num_docs);
  const auto& queries = GetQueries(num_docs, 3);
  PruningStats stats;
  size_t qi = 0;
  for (auto _ : state) {
    auto hits = index.SearchBm25Daat(queries[qi++ % queries.size()],
                                     TopKFlag(), {}, &stats);
    benchmark::DoNotOptimize(hits);
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["docs_scored"] =
      static_cast<double>(stats.docs_scored) / iters;
  state.counters["docs_skipped"] =
      static_cast<double>(stats.docs_skipped) / iters;
  state.counters["blocks_skipped"] =
      static_cast<double>(stats.blocks_skipped) / iters;
}

void BM_BuildRelational(benchmark::State& state) {
  RelationPtr docs = GetCollection(state.range(0));
  Analyzer analyzer = OrDie(Analyzer::Make({}), "analyzer");
  for (auto _ : state) {
    TextIndexPtr index = OrDie(TextIndex::Build(docs, analyzer), "build");
    benchmark::DoNotOptimize(index);
  }
}

void BM_BuildSpecialized(benchmark::State& state) {
  RelationPtr docs = GetCollection(state.range(0));
  Analyzer analyzer = OrDie(Analyzer::Make({}), "analyzer");
  for (auto _ : state) {
    auto index =
        OrDie(SpecializedIndex::Build(docs, analyzer), "build");
    benchmark::DoNotOptimize(index);
  }
}

BENCHMARK(BM_QueryRelational)
    ->ArgNames({"docs"})
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_QueryRelationalFused)
    ->ArgNames({"docs"})
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_QuerySpecialized)
    ->ArgNames({"docs"})
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_QuerySpecializedDaat)
    ->ArgNames({"docs"})
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BuildRelational)
    ->ArgNames({"docs"})
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BuildSpecialized)
    ->ArgNames({"docs"})
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace spindle

int main(int argc, char** argv) {
  spindle::bench::TopKFlag() =
      spindle::bench::ParseTopKFlag(&argc, argv, /*fallback=*/10);
  spindle::bench::ParseTraceFlag(&argc, argv);
  spindle::bench::ParseJsonFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
