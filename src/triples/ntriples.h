/// \file ntriples.h
/// \brief N-Triples-style interchange for the triple store.
///
/// The paper's system ingests RDF-ish semantic graphs; this loader reads
/// the line-based N-Triples subset that covers that use:
///
///   <subject> <predicate> <object> .            # IRI object
///   <subject> <predicate> "literal" .           # string literal
///   <subject> <predicate> "12"^^<int> .         # typed literals
///   <subject> <predicate> "3.5"^^<double> .
///
/// Spindle extension: an optional probability before the final dot
/// carries tuple-level uncertainty (paper §2.3):
///
///   <s> <p> "extracted value" 0.8 .
///
/// `#` starts a comment; blank lines are ignored. IRIs are stored
/// verbatim without the angle brackets.

#pragma once

#include <string>

#include "common/status.h"
#include "triples/triple_store.h"

namespace spindle {

/// \brief Parses N-Triples text into a TripleStore.
Result<TripleStore> ParseNTriples(const std::string& text);

/// \brief Loads an .nt file.
Result<TripleStore> LoadNTriplesFile(const std::string& path);

/// \brief Serializes a store back to N-Triples text (string, int and
/// float partitions; probabilities < 1 are emitted with the extension
/// syntax).
Result<std::string> ToNTriples(const TripleStore& store);

}  // namespace spindle
