#include "triples/triple_store.h"

#include "common/str.h"

namespace spindle {

namespace {

/// Interns a string vector into `dict`, yielding a dict-encoded column.
/// Subjects, properties and objects of one relation share a single dict so
/// self-joins (subject = object graph walks) compare codes directly.
Column EncodeColumn(const std::vector<std::string>& values,
                    const std::shared_ptr<StringDict>& dict) {
  const int64_t first = dict->first_id();
  std::vector<int32_t> codes;
  codes.reserve(values.size());
  for (const auto& v : values) {
    codes.push_back(static_cast<int32_t>(dict->Intern(v) - first));
  }
  return Column::MakeDictString(std::move(codes), dict);
}

}  // namespace

void TripleStore::Add(std::string subject, std::string property,
                      std::string object, double p) {
  str_.subjects.push_back(std::move(subject));
  str_.properties.push_back(std::move(property));
  str_.objects.push_back(std::move(object));
  str_.probs.push_back(p);
}

void TripleStore::AddInt(std::string subject, std::string property,
                         int64_t object, double p) {
  int_.subjects.push_back(std::move(subject));
  int_.properties.push_back(std::move(property));
  int_.objects.push_back(object);
  int_.probs.push_back(p);
}

void TripleStore::AddFloat(std::string subject, std::string property,
                           double object, double p) {
  flt_.subjects.push_back(std::move(subject));
  flt_.properties.push_back(std::move(property));
  flt_.objects.push_back(object);
  flt_.probs.push_back(p);
}

Result<RelationPtr> TripleStore::StringTriples() const {
  Schema schema({{"subject", DataType::kString},
                 {"property", DataType::kString},
                 {"object", DataType::kString},
                 {"p", DataType::kFloat64}});
  auto dict = std::make_shared<StringDict>();
  std::vector<Column> cols;
  cols.push_back(EncodeColumn(str_.subjects, dict));
  cols.push_back(EncodeColumn(str_.properties, dict));
  cols.push_back(EncodeColumn(str_.objects, dict));
  cols.push_back(Column::MakeFloat64(str_.probs));
  return Relation::Make(std::move(schema), std::move(cols));
}

Result<RelationPtr> TripleStore::IntTriples() const {
  Schema schema({{"subject", DataType::kString},
                 {"property", DataType::kString},
                 {"object", DataType::kInt64},
                 {"p", DataType::kFloat64}});
  auto dict = std::make_shared<StringDict>();
  std::vector<Column> cols;
  cols.push_back(EncodeColumn(int_.subjects, dict));
  cols.push_back(EncodeColumn(int_.properties, dict));
  cols.push_back(Column::MakeInt64(int_.objects));
  cols.push_back(Column::MakeFloat64(int_.probs));
  return Relation::Make(std::move(schema), std::move(cols));
}

Result<RelationPtr> TripleStore::FloatTriples() const {
  Schema schema({{"subject", DataType::kString},
                 {"property", DataType::kString},
                 {"object", DataType::kFloat64},
                 {"p", DataType::kFloat64}});
  auto dict = std::make_shared<StringDict>();
  std::vector<Column> cols;
  cols.push_back(EncodeColumn(flt_.subjects, dict));
  cols.push_back(EncodeColumn(flt_.properties, dict));
  cols.push_back(Column::MakeFloat64(flt_.objects));
  cols.push_back(Column::MakeFloat64(flt_.probs));
  return Relation::Make(std::move(schema), std::move(cols));
}

Result<RelationPtr> TripleStore::AllAsStrings() const {
  Schema schema({{"subject", DataType::kString},
                 {"property", DataType::kString},
                 {"object", DataType::kString},
                 {"p", DataType::kFloat64}});
  auto dict = std::make_shared<StringDict>();
  const int64_t first = dict->first_id();
  size_t total = size();
  std::vector<int32_t> subj, prop, obj;
  subj.reserve(total);
  prop.reserve(total);
  obj.reserve(total);
  Column probs(DataType::kFloat64);
  probs.Reserve(total);

  auto code = [&](const std::string& s) {
    return static_cast<int32_t>(dict->Intern(s) - first);
  };
  for (size_t i = 0; i < str_.subjects.size(); ++i) {
    subj.push_back(code(str_.subjects[i]));
    prop.push_back(code(str_.properties[i]));
    obj.push_back(code(str_.objects[i]));
    probs.AppendFloat64(str_.probs[i]);
  }
  for (size_t i = 0; i < int_.subjects.size(); ++i) {
    subj.push_back(code(int_.subjects[i]));
    prop.push_back(code(int_.properties[i]));
    obj.push_back(code(std::to_string(int_.objects[i])));
    probs.AppendFloat64(int_.probs[i]);
  }
  for (size_t i = 0; i < flt_.subjects.size(); ++i) {
    subj.push_back(code(flt_.subjects[i]));
    prop.push_back(code(flt_.properties[i]));
    obj.push_back(code(FormatDouble(flt_.objects[i])));
    probs.AppendFloat64(flt_.probs[i]);
  }
  std::vector<Column> cols;
  cols.push_back(Column::MakeDictString(std::move(subj), dict));
  cols.push_back(Column::MakeDictString(std::move(prop), dict));
  cols.push_back(Column::MakeDictString(std::move(obj), dict));
  cols.push_back(std::move(probs));
  return Relation::Make(std::move(schema), std::move(cols));
}

Status TripleStore::RegisterInto(Catalog& catalog,
                                 const std::string& prefix) const {
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr s, StringTriples());
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr i, IntTriples());
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr f, FloatTriples());
  catalog.Register(prefix, std::move(s));
  catalog.Register(prefix + "_int", std::move(i));
  catalog.Register(prefix + "_float", std::move(f));
  return Status::OK();
}

}  // namespace spindle
