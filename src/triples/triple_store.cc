#include "triples/triple_store.h"

#include "common/str.h"

namespace spindle {

void TripleStore::Add(std::string subject, std::string property,
                      std::string object, double p) {
  str_.subjects.push_back(std::move(subject));
  str_.properties.push_back(std::move(property));
  str_.objects.push_back(std::move(object));
  str_.probs.push_back(p);
}

void TripleStore::AddInt(std::string subject, std::string property,
                         int64_t object, double p) {
  int_.subjects.push_back(std::move(subject));
  int_.properties.push_back(std::move(property));
  int_.objects.push_back(object);
  int_.probs.push_back(p);
}

void TripleStore::AddFloat(std::string subject, std::string property,
                           double object, double p) {
  flt_.subjects.push_back(std::move(subject));
  flt_.properties.push_back(std::move(property));
  flt_.objects.push_back(object);
  flt_.probs.push_back(p);
}

Result<RelationPtr> TripleStore::StringTriples() const {
  Schema schema({{"subject", DataType::kString},
                 {"property", DataType::kString},
                 {"object", DataType::kString},
                 {"p", DataType::kFloat64}});
  std::vector<Column> cols;
  cols.push_back(Column::MakeString(str_.subjects));
  cols.push_back(Column::MakeString(str_.properties));
  cols.push_back(Column::MakeString(str_.objects));
  cols.push_back(Column::MakeFloat64(str_.probs));
  return Relation::Make(std::move(schema), std::move(cols));
}

Result<RelationPtr> TripleStore::IntTriples() const {
  Schema schema({{"subject", DataType::kString},
                 {"property", DataType::kString},
                 {"object", DataType::kInt64},
                 {"p", DataType::kFloat64}});
  std::vector<Column> cols;
  cols.push_back(Column::MakeString(int_.subjects));
  cols.push_back(Column::MakeString(int_.properties));
  cols.push_back(Column::MakeInt64(int_.objects));
  cols.push_back(Column::MakeFloat64(int_.probs));
  return Relation::Make(std::move(schema), std::move(cols));
}

Result<RelationPtr> TripleStore::FloatTriples() const {
  Schema schema({{"subject", DataType::kString},
                 {"property", DataType::kString},
                 {"object", DataType::kFloat64},
                 {"p", DataType::kFloat64}});
  std::vector<Column> cols;
  cols.push_back(Column::MakeString(flt_.subjects));
  cols.push_back(Column::MakeString(flt_.properties));
  cols.push_back(Column::MakeFloat64(flt_.objects));
  cols.push_back(Column::MakeFloat64(flt_.probs));
  return Relation::Make(std::move(schema), std::move(cols));
}

Result<RelationPtr> TripleStore::AllAsStrings() const {
  Schema schema({{"subject", DataType::kString},
                 {"property", DataType::kString},
                 {"object", DataType::kString},
                 {"p", DataType::kFloat64}});
  std::vector<Column> cols(4, Column(DataType::kString));
  cols[3] = Column(DataType::kFloat64);
  size_t total = size();
  for (auto& c : cols) c.Reserve(total);

  auto append_strings = [&](const Partition<std::string>& part) {
    for (size_t i = 0; i < part.subjects.size(); ++i) {
      cols[0].AppendString(part.subjects[i]);
      cols[1].AppendString(part.properties[i]);
      cols[2].AppendString(part.objects[i]);
      cols[3].AppendFloat64(part.probs[i]);
    }
  };
  append_strings(str_);
  for (size_t i = 0; i < int_.subjects.size(); ++i) {
    cols[0].AppendString(int_.subjects[i]);
    cols[1].AppendString(int_.properties[i]);
    cols[2].AppendString(std::to_string(int_.objects[i]));
    cols[3].AppendFloat64(int_.probs[i]);
  }
  for (size_t i = 0; i < flt_.subjects.size(); ++i) {
    cols[0].AppendString(flt_.subjects[i]);
    cols[1].AppendString(flt_.properties[i]);
    cols[2].AppendString(FormatDouble(flt_.objects[i]));
    cols[3].AppendFloat64(flt_.probs[i]);
  }
  return Relation::Make(std::move(schema), std::move(cols));
}

Status TripleStore::RegisterInto(Catalog& catalog,
                                 const std::string& prefix) const {
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr s, StringTriples());
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr i, IntTriples());
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr f, FloatTriples());
  catalog.Register(prefix, std::move(s));
  catalog.Register(prefix + "_int", std::move(i));
  catalog.Register(prefix + "_float", std::move(f));
  return Status::OK();
}

}  // namespace spindle
