#include "triples/ntriples.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/str.h"

namespace spindle {

namespace {

/// Cursor over one line.
class LineParser {
 public:
  LineParser(const std::string& line, size_t line_no)
      : line_(line), line_no_(line_no) {}

  Status Error(const std::string& msg) const {
    return Status::ParseError("line " + std::to_string(line_no_) + ": " +
                              msg + " in '" + line_ + "'");
  }

  void SkipSpace() {
    while (pos_ < line_.size() &&
           std::isspace(static_cast<unsigned char>(line_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= line_.size();
  }

  char Peek() {
    SkipSpace();
    return pos_ < line_.size() ? line_[pos_] : '\0';
  }

  /// <iri> -> contents without brackets.
  Result<std::string> ParseIri() {
    SkipSpace();
    if (pos_ >= line_.size() || line_[pos_] != '<') {
      return Error("expected '<'");
    }
    size_t end = line_.find('>', pos_ + 1);
    if (end == std::string::npos) return Error("unterminated IRI");
    std::string iri = line_.substr(pos_ + 1, end - pos_ - 1);
    pos_ = end + 1;
    return iri;
  }

  /// "literal" with \" \\ \n \t escapes.
  Result<std::string> ParseLiteral() {
    SkipSpace();
    if (pos_ >= line_.size() || line_[pos_] != '"') {
      return Error("expected '\"'");
    }
    std::string out;
    ++pos_;
    while (pos_ < line_.size()) {
      char c = line_[pos_];
      if (c == '\\' && pos_ + 1 < line_.size()) {
        char next = line_[pos_ + 1];
        switch (next) {
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          default:
            out.push_back(next);
        }
        pos_ += 2;
        continue;
      }
      if (c == '"') {
        ++pos_;
        return out;
      }
      out.push_back(c);
      ++pos_;
    }
    return Error("unterminated literal");
  }

  /// Optional ^^<type> after a literal; "" if absent.
  Result<std::string> ParseDatatype() {
    if (pos_ + 1 < line_.size() && line_[pos_] == '^' &&
        line_[pos_ + 1] == '^') {
      pos_ += 2;
      return ParseIri();
    }
    return std::string();
  }

  /// Optional probability; 1.0 if absent.
  Result<double> ParseProbability() {
    SkipSpace();
    if (pos_ >= line_.size() || line_[pos_] == '.') return 1.0;
    char* end = nullptr;
    double p = std::strtod(line_.c_str() + pos_, &end);
    if (end == line_.c_str() + pos_) {
      return Error("expected probability or '.'");
    }
    if (p < 0.0 || p > 1.0) return Error("probability out of [0,1]");
    pos_ = static_cast<size_t>(end - line_.c_str());
    return p;
  }

  Status ExpectDot() {
    SkipSpace();
    if (pos_ >= line_.size() || line_[pos_] != '.') {
      return Error("expected terminating '.'");
    }
    ++pos_;
    SkipSpace();
    if (pos_ < line_.size()) return Error("trailing content after '.'");
    return Status::OK();
  }

 private:
  const std::string& line_;
  size_t line_no_;
  size_t pos_ = 0;
};

std::string EscapeLiteral(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace

Result<TripleStore> ParseNTriples(const std::string& text) {
  TripleStore store;
  std::vector<std::string> lines = Split(text, '\n');
  for (size_t i = 0; i < lines.size(); ++i) {
    LineParser p(lines[i], i + 1);
    if (p.AtEnd() || p.Peek() == '#') continue;
    SPINDLE_ASSIGN_OR_RETURN(std::string subject, p.ParseIri());
    SPINDLE_ASSIGN_OR_RETURN(std::string predicate, p.ParseIri());
    if (p.Peek() == '<') {
      SPINDLE_ASSIGN_OR_RETURN(std::string object, p.ParseIri());
      SPINDLE_ASSIGN_OR_RETURN(double prob, p.ParseProbability());
      SPINDLE_RETURN_IF_ERROR(p.ExpectDot());
      store.Add(std::move(subject), std::move(predicate),
                std::move(object), prob);
      continue;
    }
    SPINDLE_ASSIGN_OR_RETURN(std::string literal, p.ParseLiteral());
    SPINDLE_ASSIGN_OR_RETURN(std::string datatype, p.ParseDatatype());
    SPINDLE_ASSIGN_OR_RETURN(double prob, p.ParseProbability());
    SPINDLE_RETURN_IF_ERROR(p.ExpectDot());
    if (datatype == "int" || datatype == "integer" ||
        datatype.find("#integer") != std::string::npos ||
        datatype.find("#int") != std::string::npos) {
      store.AddInt(std::move(subject), std::move(predicate),
                   std::strtoll(literal.c_str(), nullptr, 10), prob);
    } else if (datatype == "double" || datatype == "float" ||
               datatype.find("#double") != std::string::npos ||
               datatype.find("#float") != std::string::npos ||
               datatype.find("#decimal") != std::string::npos) {
      store.AddFloat(std::move(subject), std::move(predicate),
                     std::strtod(literal.c_str(), nullptr), prob);
    } else if (datatype.empty() ||
               datatype.find("#string") != std::string::npos) {
      store.Add(std::move(subject), std::move(predicate),
                std::move(literal), prob);
    } else {
      // Unknown datatype: keep the lexical form as a string (the
      // paper's "almost no pre-processing" stance).
      store.Add(std::move(subject), std::move(predicate),
                std::move(literal), prob);
    }
  }
  return store;
}

Result<TripleStore> LoadNTriplesFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  std::string content;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, got);
  }
  std::fclose(f);
  return ParseNTriples(content);
}

Result<std::string> ToNTriples(const TripleStore& store) {
  std::string out;
  auto emit_prob = [&](double p) {
    if (p < 1.0) {
      out.push_back(' ');
      out += FormatDouble(p);
    }
    out += " .\n";
  };
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr strs, store.StringTriples());
  for (size_t r = 0; r < strs->num_rows(); ++r) {
    out += "<" + strs->column(0).StringAt(r) + "> <" +
           strs->column(1).StringAt(r) + "> \"" +
           EscapeLiteral(strs->column(2).StringAt(r)) + "\"";
    emit_prob(strs->column(3).Float64At(r));
  }
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr ints, store.IntTriples());
  for (size_t r = 0; r < ints->num_rows(); ++r) {
    out += "<" + ints->column(0).StringAt(r) + "> <" +
           ints->column(1).StringAt(r) + "> \"" +
           std::to_string(ints->column(2).Int64At(r)) + "\"^^<int>";
    emit_prob(ints->column(3).Float64At(r));
  }
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr flts, store.FloatTriples());
  for (size_t r = 0; r < flts->num_rows(); ++r) {
    out += "<" + flts->column(0).StringAt(r) + "> <" +
           flts->column(1).StringAt(r) + "> \"" +
           FormatDouble(flts->column(2).Float64At(r)) + "\"^^<double>";
    emit_prob(flts->column(3).Float64At(r));
  }
  return out;
}

}  // namespace spindle
