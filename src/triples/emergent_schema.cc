#include "triples/emergent_schema.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "engine/ops.h"

namespace spindle {

namespace {

Status CheckTriples(const RelationPtr& triples) {
  if (triples->num_columns() != 4 ||
      triples->column(0).type() != DataType::kString ||
      triples->column(1).type() != DataType::kString ||
      triples->column(2).type() != DataType::kString ||
      triples->column(3).type() != DataType::kFloat64) {
    return Status::InvalidArgument(
        "emergent schema detection expects string "
        "(subject, property, object, p) triples, got " +
        triples->schema().ToString());
  }
  return Status::OK();
}

}  // namespace

Result<EmergentSchema> EmergentSchema::Detect(
    const RelationPtr& triples, const EmergentSchemaOptions& opts) {
  SPINDLE_RETURN_IF_ERROR(CheckTriples(triples));

  // 1. Characteristic set per subject; remember the first (object, p)
  // per (subject, property).
  struct SubjectInfo {
    std::vector<std::string> properties;  // sorted unique
    std::map<std::string, std::pair<std::string, double>> first_value;
  };
  std::unordered_map<std::string, SubjectInfo> subjects;
  std::vector<const std::string*> subject_order;  // stable output order
  for (size_t r = 0; r < triples->num_rows(); ++r) {
    const std::string& s = triples->column(0).StringAt(r);
    const std::string& p = triples->column(1).StringAt(r);
    auto [it, inserted] = subjects.try_emplace(s);
    if (inserted) subject_order.push_back(&it->first);
    SubjectInfo& info = it->second;
    if (info.first_value
            .emplace(p, std::make_pair(triples->column(2).StringAt(r),
                                       triples->column(3).Float64At(r)))
            .second) {
      info.properties.push_back(p);
    }
  }
  for (auto& [s, info] : subjects) {
    std::sort(info.properties.begin(), info.properties.end());
  }

  // 2. Frequency of each characteristic set.
  std::map<std::vector<std::string>, size_t> set_counts;
  for (const auto& [s, info] : subjects) {
    set_counts[info.properties]++;
  }
  std::vector<std::pair<std::vector<std::string>, size_t>> ranked(
      set_counts.begin(), set_counts.end());
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });

  EmergentSchema schema;
  schema.num_subjects_ = subjects.size();
  const double total = static_cast<double>(subjects.size());
  size_t covered = 0;
  for (const auto& [props, count] : ranked) {
    if (schema.tables_.size() >= opts.max_tables) break;
    if (props.empty()) continue;
    if (static_cast<double>(count) / total < opts.min_coverage) continue;

    // 3. Materialize the wide table, one row per subject with exactly
    // this characteristic set, in first-appearance order.
    Schema table_schema;
    table_schema.AddField({"subject", DataType::kString});
    for (const auto& p : props) {
      table_schema.AddField({p, DataType::kString});
    }
    table_schema.AddField({"p", DataType::kFloat64});
    RelationBuilder builder(table_schema);
    for (const std::string* s : subject_order) {
      const SubjectInfo& info = subjects.at(*s);
      if (info.properties != props) continue;
      std::vector<Value> row;
      row.reserve(props.size() + 2);
      row.emplace_back(*s);
      double prob = 1.0;
      for (const auto& p : props) {
        const auto& [value, vp] = info.first_value.at(p);
        row.emplace_back(value);
        prob *= vp;
      }
      row.emplace_back(prob);
      SPINDLE_RETURN_IF_ERROR(builder.AddRow(row));
    }
    EmergentTable table;
    table.properties = props;
    table.num_subjects = count;
    SPINDLE_ASSIGN_OR_RETURN(table.table, builder.Build());
    covered += count;
    schema.tables_.push_back(std::move(table));
  }
  schema.coverage_ =
      total == 0 ? 0.0 : static_cast<double>(covered) / total;
  return schema;
}

Result<RelationPtr> EmergentSchema::TableFor(
    const std::vector<std::string>& properties) const {
  if (properties.empty()) {
    return Status::InvalidArgument("TableFor needs at least one property");
  }
  std::vector<RelationPtr> pieces;
  for (const auto& table : tables_) {
    bool qualifies = true;
    std::vector<size_t> cols = {0};  // subject
    for (const auto& want : properties) {
      auto idx = table.table->schema().FindField(want);
      if (!idx.has_value()) {
        qualifies = false;
        break;
      }
      cols.push_back(*idx);
    }
    if (!qualifies) continue;
    cols.push_back(table.table->num_columns() - 1);  // p
    std::vector<std::string> names = {"subject"};
    names.insert(names.end(), properties.begin(), properties.end());
    names.push_back("p");
    SPINDLE_ASSIGN_OR_RETURN(RelationPtr piece,
                             ProjectColumns(table.table, cols, names));
    pieces.push_back(std::move(piece));
  }
  if (pieces.empty()) {
    return Status::NotFound(
        "no emergent table covers the requested properties");
  }
  if (pieces.size() == 1) return pieces[0];
  return UnionAll(pieces);
}

}  // namespace spindle
