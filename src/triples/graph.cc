#include "triples/graph.h"

#include "engine/ops.h"
#include "pra/pra_ops.h"

namespace spindle {

namespace {

Status CheckTriples(const RelationPtr& triples) {
  if (triples->num_columns() != 4 ||
      triples->column(0).type() != DataType::kString ||
      triples->column(1).type() != DataType::kString ||
      triples->column(3).type() != DataType::kFloat64) {
    return Status::InvalidArgument(
        "expected (subject, property, object, p) triples, got " +
        triples->schema().ToString());
  }
  return Status::OK();
}

Status CheckNodes(const ProbRelation& nodes) {
  if (nodes.arity() != 1 ||
      nodes.rel()->column(0).type() != DataType::kString) {
    return Status::InvalidArgument("expected a node set (id: string, p)");
  }
  return Status::OK();
}

/// SELECT [property = prop AND object = value] then PROJECT [subject].
Result<ProbRelation> SelectNodes(const RelationPtr& triples,
                                 const std::string& property,
                                 const std::string& value) {
  SPINDLE_RETURN_IF_ERROR(CheckTriples(triples));
  SPINDLE_ASSIGN_OR_RETURN(ProbRelation all, ProbRelation::Wrap(triples));
  auto pred =
      Expr::And(Expr::Eq(Expr::Column(1), Expr::LitString(property)),
                Expr::Eq(Expr::Column(2), Expr::LitString(value)));
  SPINDLE_ASSIGN_OR_RETURN(
      ProbRelation matched,
      pra::Select(all, pred, FunctionRegistry::Default()));
  SPINDLE_ASSIGN_OR_RETURN(
      ProbRelation ids,
      pra::Project(matched, {Expr::Column(0)}, {"id"}, Assumption::kMax,
                   FunctionRegistry::Default()));
  return ids;
}

}  // namespace

Result<ProbRelation> SelectByType(const RelationPtr& triples,
                                  const std::string& type,
                                  const std::string& type_property) {
  return SelectNodes(triples, type_property, type);
}

Result<ProbRelation> SelectByProperty(const RelationPtr& triples,
                                      const std::string& property,
                                      const std::string& value) {
  return SelectNodes(triples, property, value);
}

Result<ProbRelation> Traverse(const ProbRelation& nodes,
                              const RelationPtr& triples,
                              const std::string& property,
                              Direction direction, Assumption assumption) {
  SPINDLE_RETURN_IF_ERROR(CheckTriples(triples));
  SPINDLE_RETURN_IF_ERROR(CheckNodes(nodes));
  if (direction == Direction::kForward &&
      triples->column(2).type() != DataType::kString) {
    return Status::TypeMismatch(
        "forward traversal requires string objects (node ids)");
  }
  SPINDLE_ASSIGN_OR_RETURN(ProbRelation all, ProbRelation::Wrap(triples));
  SPINDLE_ASSIGN_OR_RETURN(
      ProbRelation edges,
      pra::Select(all,
                  Expr::Eq(Expr::Column(1), Expr::LitString(property)),
                  FunctionRegistry::Default()));
  // Forward joins node id on subject and projects the object;
  // backward joins node id on object and projects the subject.
  const size_t join_col = direction == Direction::kForward ? 0 : 2;
  const size_t out_col = direction == Direction::kForward ? 2 : 0;
  SPINDLE_ASSIGN_OR_RETURN(
      ProbRelation joined,
      pra::JoinIndependent(nodes, edges, {{0, join_col}}));
  // joined attrs: id, subject, property, object
  return pra::Project(joined, {Expr::Column(1 + out_col)}, {"id"},
                      assumption, FunctionRegistry::Default());
}

Result<ProbRelation> ExtractProperty(const ProbRelation& nodes,
                                     const RelationPtr& triples,
                                     const std::string& property) {
  SPINDLE_RETURN_IF_ERROR(CheckTriples(triples));
  SPINDLE_RETURN_IF_ERROR(CheckNodes(nodes));
  SPINDLE_ASSIGN_OR_RETURN(ProbRelation all, ProbRelation::Wrap(triples));
  SPINDLE_ASSIGN_OR_RETURN(
      ProbRelation edges,
      pra::Select(all,
                  Expr::Eq(Expr::Column(1), Expr::LitString(property)),
                  FunctionRegistry::Default()));
  SPINDLE_ASSIGN_OR_RETURN(ProbRelation joined,
                           pra::JoinIndependent(nodes, edges, {{0, 0}}));
  // joined attrs: id, subject, property, object
  return pra::Project(joined, {Expr::Column(0), Expr::Column(3)},
                      {"id", "value"}, Assumption::kAll,
                      FunctionRegistry::Default());
}

}  // namespace spindle
