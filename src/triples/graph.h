/// \file graph.h
/// \brief Graph operations over the triple store: the structured-search
/// building blocks of the paper's strategies (select nodes by type,
/// traverse a property forward/backward, extract a property value).
///
/// Every operation consumes and produces probabilistic node sets
/// (id: string, p) and "propagates probabilities through the graph"
/// (paper §3): traversals multiply node and edge probabilities
/// (JOIN INDEPENDENT) and merge multiple paths to the same node under a
/// configurable assumption.

#pragma once

#include <string>

#include "common/status.h"
#include "pra/prob_relation.h"
#include "storage/relation.h"

namespace spindle {

/// \brief Traversal direction along a property edge.
enum class Direction { kForward, kBackward };

/// \brief Nodes of a given type: (id, p) from triples (id, "type", t).
/// The `type_property` defaults to "type".
Result<ProbRelation> SelectByType(const RelationPtr& triples,
                                  const std::string& type,
                                  const std::string& type_property = "type");

/// \brief Nodes whose `property` equals `value`: (id, p).
Result<ProbRelation> SelectByProperty(const RelationPtr& triples,
                                      const std::string& property,
                                      const std::string& value);

/// \brief Follows `property` edges from `nodes`.
///
/// Forward:  node --property--> object   yields (object, p_node * p_edge).
/// Backward: subject --property--> node  yields (subject, p_node * p_edge)
/// — the paper's "traverses hasAuction backward, to obtain lots again".
/// Multiple paths reaching one node merge under `assumption`.
Result<ProbRelation> Traverse(const ProbRelation& nodes,
                              const RelationPtr& triples,
                              const std::string& property,
                              Direction direction,
                              Assumption assumption = Assumption::kMax);

/// \brief Extracts (id, value, p) pairs for `property` of `nodes` — e.g.
/// the (docID, description) collection handed to keyword search.
Result<ProbRelation> ExtractProperty(const ProbRelation& nodes,
                                     const RelationPtr& triples,
                                     const std::string& property);

}  // namespace spindle
