/// \file partitioning.h
/// \brief Vertical-partitioning layouts for the triples table (paper §2.2).
///
/// Three query-time layouts over the same logical triple set:
///   - kSingleTable: every property access scans/filters the one big table
///     (the naive layout whose self-joins the paper worries about);
///   - kPerProperty: one table per property, built eagerly — Abadi et
///     al.'s proposal [1], which Sidirourgos et al. [13] showed degrades
///     when the number of properties is high (E4 reproduces that shape);
///   - kAdaptive: the paper's approach — property selections are computed
///     on demand and materialized in the adaptive cache keyed by their
///     expression signature, so repeated access is free and only the
///     properties actually used pay any cost.

#pragma once

#include <map>
#include <string>

#include "common/status.h"
#include "engine/materialization_cache.h"
#include "storage/relation.h"

namespace spindle {

/// \brief Storage layout for property access.
enum class TripleLayout { kSingleTable, kPerProperty, kAdaptive };

const char* TripleLayoutName(TripleLayout layout);

/// \brief Provides (subject, object, p) access per property under a
/// configurable layout.
class PartitionedTriples {
 public:
  /// \brief Wraps a (subject, property, object, p) relation.
  /// For kPerProperty, all per-property tables are built eagerly here
  /// (their cost is what E4 measures). For kAdaptive, `cache` must
  /// outlive this object; pass nullptr for the other layouts.
  static Result<PartitionedTriples> Make(RelationPtr triples,
                                         TripleLayout layout,
                                         MaterializationCache* cache);

  /// \brief All (subject, object, p) rows with the given property.
  Result<RelationPtr> Pattern(const std::string& property) const;

  TripleLayout layout() const { return layout_; }

  /// \brief Number of eagerly built per-property tables (kPerProperty).
  size_t num_partitions() const { return partitions_.size(); }

 private:
  PartitionedTriples(RelationPtr triples, TripleLayout layout,
                     MaterializationCache* cache)
      : triples_(std::move(triples)), layout_(layout), cache_(cache) {}

  Result<RelationPtr> FilterProperty(const std::string& property) const;

  RelationPtr triples_;
  TripleLayout layout_;
  MaterializationCache* cache_;
  std::map<std::string, RelationPtr> partitions_;
};

}  // namespace spindle
