/// \file emergent_schema.h
/// \brief Emergent-schema detection (Pham & Boncz [11]) — the alternative
/// the paper flags for future consideration in §2.2: "a data-driven
/// technique to find a relational schema that is considered optimal for a
/// given graph, thus eliminating many join operations."
///
/// Detection groups subjects by their *characteristic set* (the set of
/// properties they carry), keeps the most frequent sets, and materializes
/// one wide relational table per set: (subject, prop_1, ..., prop_k, p).
/// Reading several properties of a subject then becomes a projection on
/// one table instead of a cascade of self-joins on triples (benchmarked
/// in E3's emergent case).

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/relation.h"

namespace spindle {

/// \brief Detection parameters.
struct EmergentSchemaOptions {
  /// Keep at most this many emergent tables (most frequent sets first).
  size_t max_tables = 8;
  /// Drop characteristic sets covering less than this fraction of
  /// subjects.
  double min_coverage = 0.01;
};

/// \brief One materialized emergent table.
struct EmergentTable {
  /// The characteristic set, sorted.
  std::vector<std::string> properties;
  /// (subject: string, <one string column per property>, p: float64).
  /// For multi-valued properties the first value (in triple order) is
  /// kept; p is the product of the used triples' probabilities.
  RelationPtr table;
  size_t num_subjects = 0;
};

/// \brief The detected schema over one triple relation.
class EmergentSchema {
 public:
  /// \brief Detects and materializes emergent tables from a
  /// (subject, property, object, p) relation with string objects.
  static Result<EmergentSchema> Detect(const RelationPtr& triples,
                                       const EmergentSchemaOptions& opts =
                                           {});

  const std::vector<EmergentTable>& tables() const { return tables_; }

  /// \brief Fraction of subjects covered by the materialized tables.
  double coverage() const { return coverage_; }
  size_t num_subjects() const { return num_subjects_; }

  /// \brief A (subject, <requested properties...>, p) relation assembled
  /// from every emergent table whose characteristic set contains all
  /// requested properties. Subjects outside the emergent tables are not
  /// included — callers needing exactness fall back to self-joins for
  /// the uncovered remainder (NotFound when no table qualifies).
  Result<RelationPtr> TableFor(
      const std::vector<std::string>& properties) const;

 private:
  std::vector<EmergentTable> tables_;
  double coverage_ = 0.0;
  size_t num_subjects_ = 0;
};

}  // namespace spindle
