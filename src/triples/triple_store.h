/// \file triple_store.h
/// \brief The flexible data model (paper §2.2): semantic triples on the
/// relational engine.
///
/// Triples encode uncertain statements (subject, property, object, p) — the
/// probabilistic quadruple of §2.3. The only *data-driven* partitioning
/// applied is by the physical type of the object ("rather than serializing
/// every literal into strings"): string, int64 and float64 objects live in
/// three separate tables. Everything else (per-property tables, adaptive
/// caching) is a query-time layout — see partitioning.h.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/catalog.h"
#include "storage/relation.h"

namespace spindle {

/// \brief Builder + snapshot view of a probabilistic triple collection.
class TripleStore {
 public:
  /// \name Adding statements. Probabilities default to 1.0 (facts);
  /// smaller values model confidence-weighted extraction (paper §2.3).
  /// @{
  void Add(std::string subject, std::string property, std::string object,
           double p = 1.0);
  void AddInt(std::string subject, std::string property, int64_t object,
              double p = 1.0);
  void AddFloat(std::string subject, std::string property, double object,
                double p = 1.0);
  /// @}

  size_t size() const {
    return str_.subjects.size() + int_.subjects.size() + flt_.subjects.size();
  }

  /// \brief The string-object partition:
  /// (subject, property, object, p) with object: string.
  Result<RelationPtr> StringTriples() const;
  /// \brief The int64-object partition (object: int64).
  Result<RelationPtr> IntTriples() const;
  /// \brief The float64-object partition (object: float64).
  Result<RelationPtr> FloatTriples() const;

  /// \brief The naive single-table layout: every object serialized to a
  /// string. This is the baseline the type partitioning improves on.
  Result<RelationPtr> AllAsStrings() const;

  /// \brief Registers the partitions as `<prefix>` (string objects),
  /// `<prefix>_int`, `<prefix>_float` in `catalog`.
  Status RegisterInto(Catalog& catalog,
                      const std::string& prefix = "triples") const;

 private:
  template <typename T>
  struct Partition {
    std::vector<std::string> subjects;
    std::vector<std::string> properties;
    std::vector<T> objects;
    std::vector<double> probs;
  };

  Partition<std::string> str_;
  Partition<int64_t> int_;
  Partition<double> flt_;
};

}  // namespace spindle
