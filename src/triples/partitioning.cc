#include "triples/partitioning.h"

#include "engine/ops.h"

namespace spindle {

const char* TripleLayoutName(TripleLayout layout) {
  switch (layout) {
    case TripleLayout::kSingleTable:
      return "single-table";
    case TripleLayout::kPerProperty:
      return "per-property";
    case TripleLayout::kAdaptive:
      return "adaptive";
  }
  return "?";
}

Result<PartitionedTriples> PartitionedTriples::Make(
    RelationPtr triples, TripleLayout layout, MaterializationCache* cache) {
  if (triples->num_columns() != 4) {
    return Status::InvalidArgument(
        "expected (subject, property, object, p), got " +
        triples->schema().ToString());
  }
  if (layout == TripleLayout::kAdaptive && cache == nullptr) {
    return Status::InvalidArgument("adaptive layout requires a cache");
  }
  PartitionedTriples out(std::move(triples), layout, cache);
  if (layout == TripleLayout::kPerProperty) {
    // Eagerly split by property (Abadi-style vertical partitioning).
    SPINDLE_ASSIGN_OR_RETURN(RelationPtr props,
                             Distinct(out.triples_, {1}));
    for (size_t r = 0; r < props->num_rows(); ++r) {
      const std::string& prop = props->column(0).StringAt(r);
      SPINDLE_ASSIGN_OR_RETURN(RelationPtr part, out.FilterProperty(prop));
      out.partitions_.emplace(prop, std::move(part));
    }
  }
  return out;
}

Result<RelationPtr> PartitionedTriples::FilterProperty(
    const std::string& property) const {
  SPINDLE_ASSIGN_OR_RETURN(
      RelationPtr filtered,
      Filter(triples_,
             Expr::Eq(Expr::Column(1), Expr::LitString(property)),
             FunctionRegistry::Default()));
  return ProjectColumns(filtered, {0, 2, 3});
}

Result<RelationPtr> PartitionedTriples::Pattern(
    const std::string& property) const {
  switch (layout_) {
    case TripleLayout::kSingleTable:
      return FilterProperty(property);
    case TripleLayout::kPerProperty: {
      auto it = partitions_.find(property);
      if (it == partitions_.end()) {
        // Unknown property: empty result with the partition schema.
        return Relation::Empty(Schema({{"subject", DataType::kString},
                                       {"object", DataType::kString},
                                       {"p", DataType::kFloat64}}));
      }
      return it->second;
    }
    case TripleLayout::kAdaptive: {
      std::string sig = "triples[property=" + property + "]";
      if (auto hit = cache_->Get(sig)) return *hit;
      SPINDLE_ASSIGN_OR_RETURN(RelationPtr part, FilterProperty(property));
      cache_->Put(sig, part);
      return part;
    }
  }
  return Status::Internal("unreachable layout");
}

}  // namespace spindle
