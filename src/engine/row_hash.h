/// \file row_hash.h
/// \brief Hashing/equality over relation rows restricted to a column
/// subset. Shared by the join/aggregate kernels and the PRA deduplication
/// operators.

#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "storage/relation.h"

namespace spindle {

/// \brief A view over selected columns of a relation that can hash and
/// compare rows. The relation and column vector must outlive the hasher.
class RowHasher {
 public:
  RowHasher(const Relation& rel, std::vector<size_t> cols)
      : rel_(rel), cols_(std::move(cols)) {}

  uint64_t Hash(size_t row) const {
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (size_t c : cols_) h = HashCombine(h, rel_.column(c).HashAt(row));
    return h;
  }

  bool Equals(size_t row, const RowHasher& other, size_t other_row) const {
    for (size_t i = 0; i < cols_.size(); ++i) {
      if (!rel_.column(cols_[i]).ElementEquals(
              row, other.rel_.column(other.cols_[i]), other_row)) {
        return false;
      }
    }
    return true;
  }

  const std::vector<size_t>& columns() const { return cols_; }

 private:
  const Relation& rel_;
  std::vector<size_t> cols_;
};

}  // namespace spindle
