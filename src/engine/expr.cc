#include "engine/expr.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/str.h"

namespace spindle {

namespace {

/// Broadcast-aware element index.
inline size_t BIdx(const Column& c, size_t row) {
  return c.size() == 1 ? 0 : row;
}

/// Output size: 1 if every argument is a broadcast scalar, else nrows.
size_t OutSize(const std::vector<Column>& args, size_t nrows) {
  for (const auto& a : args) {
    if (a.size() != 1) return nrows;
  }
  return args.empty() ? nrows : 1;
}

bool IsNumeric(DataType t) {
  return t == DataType::kInt64 || t == DataType::kFloat64;
}

double AsFloat(const Column& c, size_t i) {
  return c.type() == DataType::kInt64 ? static_cast<double>(c.Int64At(i))
                                      : c.Float64At(i);
}

Status ExpectArgCount(const char* name, const std::vector<Column>& args,
                      size_t n) {
  if (args.size() != n) {
    return Status::InvalidArgument(std::string(name) + " expects " +
                                   std::to_string(n) + " arguments, got " +
                                   std::to_string(args.size()));
  }
  return Status::OK();
}

/// Numeric binary op preserving int64 when both inputs are int64.
template <typename IntOp, typename FloatOp>
Result<Column> NumericBinary(const char* name, const std::vector<Column>& args,
                             size_t nrows, IntOp iop, FloatOp fop) {
  SPINDLE_RETURN_IF_ERROR(ExpectArgCount(name, args, 2));
  if (!IsNumeric(args[0].type()) || !IsNumeric(args[1].type())) {
    return Status::TypeMismatch(std::string(name) +
                                " requires numeric arguments");
  }
  size_t out_n = OutSize(args, nrows);
  if (args[0].type() == DataType::kInt64 &&
      args[1].type() == DataType::kInt64) {
    std::vector<int64_t> out(out_n);
    for (size_t r = 0; r < out_n; ++r) {
      out[r] = iop(args[0].Int64At(BIdx(args[0], r)),
                   args[1].Int64At(BIdx(args[1], r)));
    }
    return Column::MakeInt64(std::move(out));
  }
  std::vector<double> out(out_n);
  for (size_t r = 0; r < out_n; ++r) {
    out[r] = fop(AsFloat(args[0], BIdx(args[0], r)),
                 AsFloat(args[1], BIdx(args[1], r)));
  }
  return Column::MakeFloat64(std::move(out));
}

/// Float-only binary op (always yields float64).
template <typename FloatOp>
Result<Column> FloatBinary(const char* name, const std::vector<Column>& args,
                           size_t nrows, FloatOp fop) {
  SPINDLE_RETURN_IF_ERROR(ExpectArgCount(name, args, 2));
  if (!IsNumeric(args[0].type()) || !IsNumeric(args[1].type())) {
    return Status::TypeMismatch(std::string(name) +
                                " requires numeric arguments");
  }
  size_t out_n = OutSize(args, nrows);
  std::vector<double> out(out_n);
  for (size_t r = 0; r < out_n; ++r) {
    out[r] = fop(AsFloat(args[0], BIdx(args[0], r)),
                 AsFloat(args[1], BIdx(args[1], r)));
  }
  return Column::MakeFloat64(std::move(out));
}

/// Float-only unary op.
template <typename FloatOp>
Result<Column> FloatUnary(const char* name, const std::vector<Column>& args,
                          size_t nrows, FloatOp fop) {
  SPINDLE_RETURN_IF_ERROR(ExpectArgCount(name, args, 1));
  if (!IsNumeric(args[0].type())) {
    return Status::TypeMismatch(std::string(name) +
                                " requires a numeric argument");
  }
  size_t out_n = OutSize(args, nrows);
  std::vector<double> out(out_n);
  for (size_t r = 0; r < out_n; ++r) {
    out[r] = fop(AsFloat(args[0], BIdx(args[0], r)));
  }
  return Column::MakeFloat64(std::move(out));
}

/// Comparison: int/float (promoted) or string vs string.
template <typename Cmp>
Result<Column> Compare(const char* name, const std::vector<Column>& args,
                       size_t nrows, Cmp cmp) {
  SPINDLE_RETURN_IF_ERROR(ExpectArgCount(name, args, 2));
  size_t out_n = OutSize(args, nrows);
  std::vector<int64_t> out(out_n);
  const Column& a = args[0];
  const Column& b = args[1];
  if (a.type() == DataType::kString && b.type() == DataType::kString) {
    for (size_t r = 0; r < out_n; ++r) {
      int c = a.StringAt(BIdx(a, r)).compare(b.StringAt(BIdx(b, r)));
      out[r] = cmp(c, 0) ? 1 : 0;
    }
  } else if (IsNumeric(a.type()) && IsNumeric(b.type())) {
    if (a.type() == DataType::kInt64 && b.type() == DataType::kInt64) {
      for (size_t r = 0; r < out_n; ++r) {
        int64_t x = a.Int64At(BIdx(a, r)), y = b.Int64At(BIdx(b, r));
        int c = x < y ? -1 : (x > y ? 1 : 0);
        out[r] = cmp(c, 0) ? 1 : 0;
      }
    } else {
      for (size_t r = 0; r < out_n; ++r) {
        double x = AsFloat(a, BIdx(a, r)), y = AsFloat(b, BIdx(b, r));
        int c = x < y ? -1 : (x > y ? 1 : 0);
        out[r] = cmp(c, 0) ? 1 : 0;
      }
    }
  } else {
    return Status::TypeMismatch(std::string(name) +
                                ": incomparable argument types");
  }
  return Column::MakeInt64(std::move(out));
}

Result<Column> BoolBinary(const char* name, const std::vector<Column>& args,
                          size_t nrows, bool is_and) {
  SPINDLE_RETURN_IF_ERROR(ExpectArgCount(name, args, 2));
  if (args[0].type() != DataType::kInt64 ||
      args[1].type() != DataType::kInt64) {
    return Status::TypeMismatch(std::string(name) +
                                " requires boolean (int64) arguments");
  }
  size_t out_n = OutSize(args, nrows);
  std::vector<int64_t> out(out_n);
  for (size_t r = 0; r < out_n; ++r) {
    bool x = args[0].Int64At(BIdx(args[0], r)) != 0;
    bool y = args[1].Int64At(BIdx(args[1], r)) != 0;
    out[r] = (is_and ? (x && y) : (x || y)) ? 1 : 0;
  }
  return Column::MakeInt64(std::move(out));
}

void RegisterBuiltins(FunctionRegistry* reg) {
  reg->Register("add", [](const std::vector<Column>& a, size_t n) {
    return NumericBinary("add", a, n, [](int64_t x, int64_t y) { return x + y; },
                         [](double x, double y) { return x + y; });
  });
  reg->Register("sub", [](const std::vector<Column>& a, size_t n) {
    return NumericBinary("sub", a, n, [](int64_t x, int64_t y) { return x - y; },
                         [](double x, double y) { return x - y; });
  });
  reg->Register("mul", [](const std::vector<Column>& a, size_t n) {
    return NumericBinary("mul", a, n, [](int64_t x, int64_t y) { return x * y; },
                         [](double x, double y) { return x * y; });
  });
  reg->Register("div", [](const std::vector<Column>& a, size_t n) {
    return FloatBinary("div", a, n, [](double x, double y) { return x / y; });
  });
  reg->Register("pow", [](const std::vector<Column>& a, size_t n) {
    return FloatBinary("pow", a, n,
                       [](double x, double y) { return std::pow(x, y); });
  });
  reg->Register("min2", [](const std::vector<Column>& a, size_t n) {
    return NumericBinary("min2", a, n,
                         [](int64_t x, int64_t y) { return x < y ? x : y; },
                         [](double x, double y) { return x < y ? x : y; });
  });
  reg->Register("max2", [](const std::vector<Column>& a, size_t n) {
    return NumericBinary("max2", a, n,
                         [](int64_t x, int64_t y) { return x > y ? x : y; },
                         [](double x, double y) { return x > y ? x : y; });
  });
  reg->Register("neg", [](const std::vector<Column>& a, size_t n) -> Result<Column> {
    SPINDLE_RETURN_IF_ERROR(ExpectArgCount("neg", a, 1));
    if (a[0].type() == DataType::kInt64) {
      size_t out_n = OutSize(a, n);
      std::vector<int64_t> out(out_n);
      for (size_t r = 0; r < out_n; ++r) out[r] = -a[0].Int64At(BIdx(a[0], r));
      return Column::MakeInt64(std::move(out));
    }
    return FloatUnary("neg", a, n, [](double x) { return -x; });
  });

  reg->Register("eq", [](const std::vector<Column>& a, size_t n) {
    return Compare("eq", a, n, [](int c, int) { return c == 0; });
  });
  reg->Register("ne", [](const std::vector<Column>& a, size_t n) {
    return Compare("ne", a, n, [](int c, int) { return c != 0; });
  });
  reg->Register("lt", [](const std::vector<Column>& a, size_t n) {
    return Compare("lt", a, n, [](int c, int) { return c < 0; });
  });
  reg->Register("le", [](const std::vector<Column>& a, size_t n) {
    return Compare("le", a, n, [](int c, int) { return c <= 0; });
  });
  reg->Register("gt", [](const std::vector<Column>& a, size_t n) {
    return Compare("gt", a, n, [](int c, int) { return c > 0; });
  });
  reg->Register("ge", [](const std::vector<Column>& a, size_t n) {
    return Compare("ge", a, n, [](int c, int) { return c >= 0; });
  });

  reg->Register("and", [](const std::vector<Column>& a, size_t n) {
    return BoolBinary("and", a, n, /*is_and=*/true);
  });
  reg->Register("or", [](const std::vector<Column>& a, size_t n) {
    return BoolBinary("or", a, n, /*is_and=*/false);
  });
  reg->Register("not", [](const std::vector<Column>& a, size_t n) -> Result<Column> {
    SPINDLE_RETURN_IF_ERROR(ExpectArgCount("not", a, 1));
    if (a[0].type() != DataType::kInt64) {
      return Status::TypeMismatch("not requires a boolean (int64) argument");
    }
    size_t out_n = OutSize(a, n);
    std::vector<int64_t> out(out_n);
    for (size_t r = 0; r < out_n; ++r) {
      out[r] = a[0].Int64At(BIdx(a[0], r)) == 0 ? 1 : 0;
    }
    return Column::MakeInt64(std::move(out));
  });

  reg->Register("log", [](const std::vector<Column>& a, size_t n) {
    return FloatUnary("log", a, n, [](double x) { return std::log(x); });
  });
  reg->Register("log2", [](const std::vector<Column>& a, size_t n) {
    return FloatUnary("log2", a, n, [](double x) { return std::log2(x); });
  });
  reg->Register("log10", [](const std::vector<Column>& a, size_t n) {
    return FloatUnary("log10", a, n, [](double x) { return std::log10(x); });
  });
  reg->Register("exp", [](const std::vector<Column>& a, size_t n) {
    return FloatUnary("exp", a, n, [](double x) { return std::exp(x); });
  });
  reg->Register("sqrt", [](const std::vector<Column>& a, size_t n) {
    return FloatUnary("sqrt", a, n, [](double x) { return std::sqrt(x); });
  });
  reg->Register("abs", [](const std::vector<Column>& a, size_t n) -> Result<Column> {
    SPINDLE_RETURN_IF_ERROR(ExpectArgCount("abs", a, 1));
    if (a[0].type() == DataType::kInt64) {
      size_t out_n = OutSize(a, n);
      std::vector<int64_t> out(out_n);
      for (size_t r = 0; r < out_n; ++r) {
        int64_t v = a[0].Int64At(BIdx(a[0], r));
        out[r] = v < 0 ? -v : v;
      }
      return Column::MakeInt64(std::move(out));
    }
    return FloatUnary("abs", a, n, [](double x) { return std::fabs(x); });
  });

  reg->Register("lcase", [](const std::vector<Column>& a, size_t n) -> Result<Column> {
    SPINDLE_RETURN_IF_ERROR(ExpectArgCount("lcase", a, 1));
    if (a[0].type() != DataType::kString) {
      return Status::TypeMismatch("lcase requires a string argument");
    }
    size_t out_n = OutSize(a, n);
    std::vector<std::string> out(out_n);
    for (size_t r = 0; r < out_n; ++r) {
      out[r] = ToLowerAscii(a[0].StringAt(BIdx(a[0], r)));
    }
    return Column::MakeString(std::move(out));
  });
  reg->Register("ucase", [](const std::vector<Column>& a, size_t n) -> Result<Column> {
    SPINDLE_RETURN_IF_ERROR(ExpectArgCount("ucase", a, 1));
    if (a[0].type() != DataType::kString) {
      return Status::TypeMismatch("ucase requires a string argument");
    }
    size_t out_n = OutSize(a, n);
    std::vector<std::string> out(out_n);
    for (size_t r = 0; r < out_n; ++r) {
      const std::string& s = a[0].StringAt(BIdx(a[0], r));
      std::string up;
      up.reserve(s.size());
      for (unsigned char c : s) {
        up.push_back(c < 0x80 ? static_cast<char>(std::toupper(c))
                              : static_cast<char>(c));
      }
      out[r] = std::move(up);
    }
    return Column::MakeString(std::move(out));
  });
  reg->Register("concat", [](const std::vector<Column>& a, size_t n) -> Result<Column> {
    SPINDLE_RETURN_IF_ERROR(ExpectArgCount("concat", a, 2));
    if (a[0].type() != DataType::kString || a[1].type() != DataType::kString) {
      return Status::TypeMismatch("concat requires string arguments");
    }
    size_t out_n = OutSize(a, n);
    std::vector<std::string> out(out_n);
    for (size_t r = 0; r < out_n; ++r) {
      out[r] = a[0].StringAt(BIdx(a[0], r)) + a[1].StringAt(BIdx(a[1], r));
    }
    return Column::MakeString(std::move(out));
  });
  reg->Register("strlen", [](const std::vector<Column>& a, size_t n) -> Result<Column> {
    SPINDLE_RETURN_IF_ERROR(ExpectArgCount("strlen", a, 1));
    if (a[0].type() != DataType::kString) {
      return Status::TypeMismatch("strlen requires a string argument");
    }
    size_t out_n = OutSize(a, n);
    std::vector<int64_t> out(out_n);
    for (size_t r = 0; r < out_n; ++r) {
      out[r] = static_cast<int64_t>(a[0].StringAt(BIdx(a[0], r)).size());
    }
    return Column::MakeInt64(std::move(out));
  });

  reg->Register("to_float64", [](const std::vector<Column>& a, size_t n) -> Result<Column> {
    SPINDLE_RETURN_IF_ERROR(ExpectArgCount("to_float64", a, 1));
    if (a[0].type() == DataType::kFloat64) return a[0];
    if (a[0].type() == DataType::kInt64) {
      return FloatUnary("to_float64", a, n, [](double x) { return x; });
    }
    size_t out_n = OutSize(a, n);
    std::vector<double> out(out_n);
    for (size_t r = 0; r < out_n; ++r) {
      out[r] = std::strtod(a[0].StringAt(BIdx(a[0], r)).c_str(), nullptr);
    }
    return Column::MakeFloat64(std::move(out));
  });
  reg->Register("to_int64", [](const std::vector<Column>& a, size_t n) -> Result<Column> {
    SPINDLE_RETURN_IF_ERROR(ExpectArgCount("to_int64", a, 1));
    size_t out_n = OutSize(a, n);
    std::vector<int64_t> out(out_n);
    for (size_t r = 0; r < out_n; ++r) {
      size_t i = BIdx(a[0], r);
      switch (a[0].type()) {
        case DataType::kInt64:
          out[r] = a[0].Int64At(i);
          break;
        case DataType::kFloat64:
          out[r] = static_cast<int64_t>(a[0].Float64At(i));
          break;
        case DataType::kString:
          out[r] = std::strtoll(a[0].StringAt(i).c_str(), nullptr, 10);
          break;
      }
    }
    return Column::MakeInt64(std::move(out));
  });
  reg->Register("to_string", [](const std::vector<Column>& a, size_t n) -> Result<Column> {
    SPINDLE_RETURN_IF_ERROR(ExpectArgCount("to_string", a, 1));
    size_t out_n = OutSize(a, n);
    std::vector<std::string> out(out_n);
    for (size_t r = 0; r < out_n; ++r) {
      out[r] = a[0].ToStringAt(BIdx(a[0], r));
    }
    return Column::MakeString(std::move(out));
  });

  reg->Register("if", [](const std::vector<Column>& a, size_t n) -> Result<Column> {
    SPINDLE_RETURN_IF_ERROR(ExpectArgCount("if", a, 3));
    if (a[0].type() != DataType::kInt64) {
      return Status::TypeMismatch("if requires a boolean (int64) condition");
    }
    if (a[1].type() != a[2].type()) {
      return Status::TypeMismatch("if branches must have the same type");
    }
    size_t out_n = OutSize(a, n);
    Column out(a[1].type());
    out.Reserve(out_n);
    for (size_t r = 0; r < out_n; ++r) {
      bool cond = a[0].Int64At(BIdx(a[0], r)) != 0;
      const Column& src = cond ? a[1] : a[2];
      out.AppendFrom(src, BIdx(src, r));
    }
    return out;
  });
}

}  // namespace

FunctionRegistry::FunctionRegistry() { RegisterBuiltins(this); }

FunctionRegistry& FunctionRegistry::Default() {
  static FunctionRegistry* instance = new FunctionRegistry();
  return *instance;
}

void FunctionRegistry::Register(const std::string& name, ScalarFn fn) {
  fns_[name] = std::move(fn);
}

const ScalarFn* FunctionRegistry::Find(const std::string& name) const {
  auto it = fns_.find(name);
  return it == fns_.end() ? nullptr : &it->second;
}

std::vector<std::string> FunctionRegistry::List() const {
  std::vector<std::string> names;
  names.reserve(fns_.size());
  for (const auto& [name, fn] : fns_) names.push_back(name);
  return names;
}

ExprPtr Expr::Column(size_t index) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kColumnRef));
  e->column_index_ = index;
  return e;
}

ExprPtr Expr::ColumnNamed(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kNamedColumnRef));
  e->name_ = std::move(name);
  return e;
}

ExprPtr Expr::Lit(Value v) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kLiteral));
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::Call(std::string fn, std::vector<ExprPtr> args) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kCall));
  e->name_ = std::move(fn);
  e->args_ = std::move(args);
  return e;
}

Result<Column> Expr::Evaluate(const Relation& rel,
                              const FunctionRegistry& registry) const {
  switch (kind_) {
    case ExprKind::kColumnRef: {
      if (column_index_ >= rel.num_columns()) {
        return Status::OutOfRange("column index " +
                                  std::to_string(column_index_) +
                                  " out of range for schema " +
                                  rel.schema().ToString());
      }
      return rel.column(column_index_);
    }
    case ExprKind::kNamedColumnRef: {
      auto idx = rel.schema().FindField(name_);
      if (!idx.has_value()) {
        return Status::NotFound("no column named '" + name_ + "' in " +
                                rel.schema().ToString());
      }
      return rel.column(*idx);
    }
    case ExprKind::kLiteral: {
      spindle::Column c(ValueType(literal_));
      Status st = c.AppendValue(literal_);
      if (!st.ok()) return st;
      return c;
    }
    case ExprKind::kCall: {
      const ScalarFn* fn = registry.Find(name_);
      if (fn == nullptr) {
        return Status::NotFound("no scalar function named '" + name_ + "'");
      }
      std::vector<spindle::Column> arg_cols;
      arg_cols.reserve(args_.size());
      for (const auto& a : args_) {
        SPINDLE_ASSIGN_OR_RETURN(spindle::Column c,
                                 a->Evaluate(rel, registry));
        arg_cols.push_back(std::move(c));
      }
      return (*fn)(arg_cols, rel.num_rows());
    }
  }
  return Status::Internal("unreachable expression kind");
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kColumnRef: {
      std::string out = "$";
      out += std::to_string(column_index_ + 1);
      return out;
    }
    case ExprKind::kNamedColumnRef:
      // The probability column prints as SpinQL's `P` keyword so canonical
      // output stays parseable; other named refs are engine-internal.
      if (name_ == "p") return "P";
      return "col('" + name_ + "')";
    case ExprKind::kLiteral:
      if (ValueType(literal_) == DataType::kString) {
        return QuoteString(std::get<std::string>(literal_));
      }
      return ValueToString(literal_);
    case ExprKind::kCall: {
      std::string out = name_ + "(";
      for (size_t i = 0; i < args_.size(); ++i) {
        if (i > 0) out += ", ";
        out += args_[i]->ToString();
      }
      out += ")";
      return out;
    }
  }
  return "";
}

Result<Column> MaterializeFull(Column col, size_t nrows) {
  if (col.size() == nrows) return col;
  if (col.size() != 1) {
    return Status::Internal("expression produced " +
                            std::to_string(col.size()) + " rows, expected " +
                            std::to_string(nrows) + " or 1");
  }
  Column out(col.type());
  out.Reserve(nrows);
  for (size_t r = 0; r < nrows; ++r) out.AppendFrom(col, 0);
  return out;
}

}  // namespace spindle
