/// \file expr.h
/// \brief Vectorized scalar expressions evaluated over relations.
///
/// Expressions are trees of column references, literals and function calls.
/// Evaluation is columnar: each node produces a whole Column. A column of
/// size 1 acts as a broadcast scalar. Booleans are Int64 columns holding
/// 0 or 1.

#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/relation.h"

namespace spindle {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// \brief A scalar function: consumes evaluated argument columns (size
/// `nrows` or broadcast size 1) and produces a column of size `nrows` or 1.
using ScalarFn = std::function<Result<Column>(const std::vector<Column>& args,
                                              size_t nrows)>;

/// \brief Named scalar functions available to expressions.
///
/// Builtins (always present in Default()):
///   arithmetic: add, sub, mul, div (div always yields float64), neg
///   comparison: eq, ne, lt, le, gt, ge  (int64/float64/string)
///   logic:      and, or, not
///   math:       log (natural), log2, log10, exp, sqrt, abs, pow,
///               min2, max2
///   string:     lcase, ucase, concat, strlen
///   casts:      to_int64, to_float64, to_string
///   misc:       if (cond, then, else)
///
/// Other modules register additional functions (e.g. the text module's
/// `stem(term, language)` — the paper's Snowball UDF).
class FunctionRegistry {
 public:
  /// \brief Creates a registry preloaded with the builtins above.
  FunctionRegistry();

  /// \brief The process-wide default registry.
  static FunctionRegistry& Default();

  /// \brief Registers (or replaces) a function. Idempotent.
  void Register(const std::string& name, ScalarFn fn);

  /// \brief Returns the function or nullptr.
  const ScalarFn* Find(const std::string& name) const;

  /// \brief Sorted names, for diagnostics.
  std::vector<std::string> List() const;

 private:
  std::map<std::string, ScalarFn> fns_;
};

/// \brief Node kinds of the expression tree.
enum class ExprKind { kColumnRef, kNamedColumnRef, kLiteral, kCall };

/// \brief An immutable scalar expression tree.
class Expr {
 public:
  /// \name Factories.
  /// @{
  /// Reference to a column by 0-based position.
  static ExprPtr Column(size_t index);
  /// Reference to a column by name (first match in the schema).
  static ExprPtr ColumnNamed(std::string name);
  static ExprPtr Lit(Value v);
  static ExprPtr LitInt(int64_t v) { return Lit(Value(v)); }
  static ExprPtr LitFloat(double v) { return Lit(Value(v)); }
  static ExprPtr LitString(std::string v) { return Lit(Value(std::move(v))); }
  static ExprPtr Call(std::string fn, std::vector<ExprPtr> args);
  /// @}

  /// \name Convenience combinators.
  /// @{
  static ExprPtr Eq(ExprPtr a, ExprPtr b) { return Call("eq", {a, b}); }
  static ExprPtr Ne(ExprPtr a, ExprPtr b) { return Call("ne", {a, b}); }
  static ExprPtr Lt(ExprPtr a, ExprPtr b) { return Call("lt", {a, b}); }
  static ExprPtr Le(ExprPtr a, ExprPtr b) { return Call("le", {a, b}); }
  static ExprPtr Gt(ExprPtr a, ExprPtr b) { return Call("gt", {a, b}); }
  static ExprPtr Ge(ExprPtr a, ExprPtr b) { return Call("ge", {a, b}); }
  static ExprPtr And(ExprPtr a, ExprPtr b) { return Call("and", {a, b}); }
  static ExprPtr Or(ExprPtr a, ExprPtr b) { return Call("or", {a, b}); }
  static ExprPtr Not(ExprPtr a) { return Call("not", {a}); }
  static ExprPtr Add(ExprPtr a, ExprPtr b) { return Call("add", {a, b}); }
  static ExprPtr Sub(ExprPtr a, ExprPtr b) { return Call("sub", {a, b}); }
  static ExprPtr Mul(ExprPtr a, ExprPtr b) { return Call("mul", {a, b}); }
  static ExprPtr Div(ExprPtr a, ExprPtr b) { return Call("div", {a, b}); }
  /// @}

  ExprKind kind() const { return kind_; }
  size_t column_index() const { return column_index_; }
  const std::string& column_name() const { return name_; }
  const Value& literal() const { return literal_; }
  const std::string& function_name() const { return name_; }
  const std::vector<ExprPtr>& args() const { return args_; }

  /// \brief Evaluates against a relation. The result has rel.num_rows()
  /// rows, or 1 row when the whole expression is constant.
  Result<spindle::Column> Evaluate(const Relation& rel,
                                   const FunctionRegistry& registry) const;

  /// \brief Canonical rendering, used in cache signatures.
  std::string ToString() const;

 private:
  explicit Expr(ExprKind kind) : kind_(kind) {}

  ExprKind kind_;
  size_t column_index_ = 0;
  std::string name_;       // column name or function name
  Value literal_ = int64_t{0};
  std::vector<ExprPtr> args_;
};

/// \brief Expands a broadcast (size-1) column to `nrows` rows; columns
/// already at `nrows` pass through unchanged.
Result<Column> MaterializeFull(Column col, size_t nrows);

}  // namespace spindle
