#include "engine/ops.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <unordered_map>

#include "common/hash.h"
#include "exec/scheduler.h"
#include "obs/trace.h"

namespace spindle {

namespace {

/// Hashes/compares rows over a set of key columns.
///
/// `self_keyed` marks single-relation uses (group-by, distinct) where both
/// sides of every comparison are this same RowKey: dict-encoded string
/// columns are then hashed by their 4-byte code (one integer mix) instead
/// of the string hash, which is valid because codes are unique within one
/// dict. Cross-relation uses (join) must leave it false so that plain and
/// dict representations still meet in one hash table.
class RowKey {
 public:
  RowKey(const Relation& rel, const std::vector<size_t>& cols,
         bool self_keyed = false)
      : self_keyed_(self_keyed) {
    cols_.reserve(cols.size());
    for (size_t c : cols) cols_.push_back(&rel.column(c));
  }

  explicit RowKey(std::vector<const Column*> cols, bool self_keyed = false)
      : cols_(std::move(cols)), self_keyed_(self_keyed) {}

  uint64_t Hash(size_t row) const {
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (const Column* c : cols_) {
      uint64_t v = self_keyed_ && c->dict_encoded()
                       ? HashInt64(static_cast<uint64_t>(c->CodeAt(row)))
                       : c->HashAt(row);
      h = HashCombine(h, v);
    }
    return h;
  }

  bool Equals(size_t row, const RowKey& other, size_t other_row) const {
    for (size_t i = 0; i < cols_.size(); ++i) {
      if (!cols_[i]->ElementEquals(row, *other.cols_[i], other_row)) {
        return false;
      }
    }
    return true;
  }

 private:
  std::vector<const Column*> cols_;
  bool self_keyed_;
};

/// Lexicographic rank of every dict entry (rank[pos] orders like the
/// strings do), so sorting dict columns compares 4-byte ints.
std::vector<int32_t> DictRanks(const StringDict& dict) {
  std::vector<int32_t> order(static_cast<size_t>(dict.size()));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    return dict.StringAtPos(static_cast<size_t>(a)) <
           dict.StringAtPos(static_cast<size_t>(b));
  });
  std::vector<int32_t> ranks(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    ranks[static_cast<size_t>(order[i])] = static_cast<int32_t>(i);
  }
  return ranks;
}

/// One sort key with an optional dict-rank fast lane.
struct SortKeyCtx {
  const Column* col;
  bool descending;
  std::vector<int32_t> ranks;  // non-empty iff the rank lane is active

  int Compare(uint32_t a, uint32_t b) const {
    if (!ranks.empty()) {
      int32_t ra = ranks[static_cast<size_t>(col->CodeAt(a))];
      int32_t rb = ranks[static_cast<size_t>(col->CodeAt(b))];
      return ra < rb ? -1 : (ra > rb ? 1 : 0);
    }
    return col->ElementCompare(a, *col, b);
  }
};

SortKeyCtx MakeSortKeyCtx(const Relation& rel, const SortKey& key) {
  SortKeyCtx ctx{&rel.column(key.column), key.descending, {}};
  // Building ranks costs O(U log U) string compares; it pays off unless the
  // dict dwarfs the row count being sorted.
  if (ctx.col->dict_encoded() &&
      static_cast<size_t>(ctx.col->dict()->size()) <=
          rel.num_rows() * 2 + 64) {
    ctx.ranks = DictRanks(*ctx.col->dict());
  }
  return ctx;
}

Status CheckColumnRange(const Relation& rel, const std::vector<size_t>& cols) {
  for (size_t c : cols) {
    if (c >= rel.num_columns()) {
      return Status::OutOfRange("column index " + std::to_string(c) +
                                " out of range for " +
                                rel.schema().ToString());
    }
  }
  return Status::OK();
}

Result<RelationPtr> GatherRows(const Relation& rel,
                               const std::vector<uint32_t>& rows) {
  const ExecContext& ctx = ExecContext::Current();
  std::vector<Column> cols;
  cols.reserve(rel.num_columns());
  for (size_t c = 0; c < rel.num_columns(); ++c) {
    cols.push_back(GatherColumnRows(rel.column(c), rows, ctx));
  }
  return Relation::Make(rel.schema(), std::move(cols));
}

/// Hash table over a join's build side. On the parallel path the table is
/// radix-partitioned on the high bits of the key hash so partitions build
/// concurrently; each partition's buckets hold rows in ascending order,
/// exactly as the serial single-map build produces, so probe results are
/// bit-identical no matter how the table was built.
struct JoinTable {
  std::vector<std::unordered_map<uint64_t, std::vector<uint32_t>>> parts;
  std::vector<uint64_t> hashes;  // precomputed build-side hashes
  int shift = 64;                // partition(h) = h >> shift (1 part: unused)

  const std::vector<uint32_t>* Find(uint64_t h) const {
    const auto& m =
        parts.size() == 1 ? parts[0] : parts[static_cast<size_t>(h >> shift)];
    auto it = m.find(h);
    return it == m.end() ? nullptr : &it->second;
  }
};

JoinTable BuildJoinTable(const RowKey& key, size_t n,
                         const ExecContext& ctx) {
  JoinTable table;
  if (!ctx.ShouldParallelize(n)) {
    table.parts.resize(1);
    auto& m = table.parts[0];
    m.reserve(n * 2);
    for (size_t r = 0; r < n; ++r) {
      m[key.Hash(r)].push_back(static_cast<uint32_t>(r));
    }
    return table;
  }

  table.hashes.resize(n);
  auto& hashes = table.hashes;
  ParallelFor(ctx, n, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) hashes[i] = key.Hash(i);
  });

  size_t p = 1;
  int log2p = 0;
  while (p < static_cast<size_t>(ctx.threads) * 4 && p < 256) {
    p <<= 1;
    ++log2p;
  }
  table.shift = 64 - log2p;

  // Two-pass radix partition that preserves row order within a partition:
  // per-morsel histograms, serial prefix sums, parallel scatter.
  const size_t num_morsels = NumMorsels(ctx, n);
  std::vector<std::vector<uint32_t>> counts(
      num_morsels, std::vector<uint32_t>(p, 0));
  ParallelFor(ctx, n, [&](size_t begin, size_t end, size_t m) {
    auto& c = counts[m];
    for (size_t i = begin; i < end; ++i) c[hashes[i] >> table.shift]++;
  });
  std::vector<std::vector<uint32_t>> offsets(
      num_morsels, std::vector<uint32_t>(p, 0));
  std::vector<uint32_t> part_sizes(p, 0);
  for (size_t part = 0; part < p; ++part) {
    uint32_t off = 0;
    for (size_t m = 0; m < num_morsels; ++m) {
      offsets[m][part] = off;
      off += counts[m][part];
    }
    part_sizes[part] = off;
  }
  std::vector<std::vector<uint32_t>> part_rows(p);
  for (size_t part = 0; part < p; ++part) {
    part_rows[part].resize(part_sizes[part]);
  }
  ParallelFor(ctx, n, [&](size_t begin, size_t end, size_t m) {
    std::vector<uint32_t> cursor = offsets[m];
    for (size_t i = begin; i < end; ++i) {
      size_t part = hashes[i] >> table.shift;
      part_rows[part][cursor[part]++] = static_cast<uint32_t>(i);
    }
  });

  table.parts.resize(p);
  Scheduler::Global().EnsureWorkers(ctx.threads - 1);
  TaskGroup group;
  for (size_t part = 0; part < p; ++part) {
    group.Spawn([&, part] {
      auto& m = table.parts[part];
      m.reserve(part_rows[part].size() * 2);
      for (uint32_t r : part_rows[part]) m[hashes[r]].push_back(r);
    });
  }
  group.Wait();
  return table;
}

}  // namespace

Column GatherColumnRows(const Column& col, const std::vector<uint32_t>& rows,
                        const ExecContext& ctx) {
  const size_t n = rows.size();
  if (!ctx.ShouldParallelize(n)) return col.Gather(rows);
  switch (col.type()) {
    case DataType::kInt64: {
      std::vector<int64_t> out(n);
      const auto& src = col.int64_data();
      ParallelFor(ctx, n, [&](size_t begin, size_t end, size_t) {
        for (size_t i = begin; i < end; ++i) out[i] = src[rows[i]];
      });
      return Column::MakeInt64(std::move(out));
    }
    case DataType::kFloat64: {
      std::vector<double> out(n);
      const auto& src = col.float64_data();
      ParallelFor(ctx, n, [&](size_t begin, size_t end, size_t) {
        for (size_t i = begin; i < end; ++i) out[i] = src[rows[i]];
      });
      return Column::MakeFloat64(std::move(out));
    }
    case DataType::kString: {
      if (col.dict_encoded()) {
        std::vector<int32_t> out(n);
        const auto& src = col.dict_codes();
        ParallelFor(ctx, n, [&](size_t begin, size_t end, size_t) {
          for (size_t i = begin; i < end; ++i) out[i] = src[rows[i]];
        });
        return Column::MakeDictString(std::move(out), col.dict());
      }
      std::vector<std::string> out(n);
      const auto& src = col.string_data();
      ParallelFor(ctx, n, [&](size_t begin, size_t end, size_t) {
        for (size_t i = begin; i < end; ++i) out[i] = src[rows[i]];
      });
      return Column::MakeString(std::move(out));
    }
  }
  return col.Gather(rows);  // unreachable
}

std::optional<std::pair<Column, Column>> RecodeToShared(const Column& a,
                                                        const Column& b) {
  if (a.type() != DataType::kString || b.type() != DataType::kString) {
    return std::nullopt;
  }
  if (!a.dict_encoded() && !b.dict_encoded()) return std::nullopt;

  auto codes_as_ids = [](const Column& c) {
    std::vector<int64_t> ids(c.size());
    const auto& codes = c.dict_codes();
    for (size_t i = 0; i < codes.size(); ++i) ids[i] = codes[i];
    return Column::MakeInt64(std::move(ids));
  };

  if (a.dict_encoded() && b.dict_encoded() && a.dict() == b.dict()) {
    return std::make_pair(codes_as_ids(a), codes_as_ids(b));
  }

  // Base = the side with the larger dict; the other side is recoded
  // against it. Strings missing from the base dict get unique negative
  // ids: they cannot match the base side (all base values are in its
  // dict), and join keys only ever compare across sides.
  const bool base_is_a =
      a.dict_encoded() &&
      (!b.dict_encoded() || a.dict()->size() >= b.dict()->size());
  const Column& base = base_is_a ? a : b;
  const Column& rec = base_is_a ? b : a;
  const StringDict& dict = *base.dict();
  const int64_t first = dict.first_id();

  std::vector<int64_t> rec_ids(rec.size());
  int64_t next_missing = -1;
  if (rec.dict_encoded()) {
    // Translate rec's dict to base positions once, then map codes.
    const StringDict& rdict = *rec.dict();
    std::vector<int64_t> mapping(static_cast<size_t>(rdict.size()));
    for (size_t p = 0; p < mapping.size(); ++p) {
      int64_t id = dict.Lookup(rdict.StringAtPos(p));
      mapping[p] = id < 0 ? next_missing-- : id - first;
    }
    const auto& codes = rec.dict_codes();
    for (size_t i = 0; i < codes.size(); ++i) {
      rec_ids[i] = mapping[static_cast<size_t>(codes[i])];
    }
  } else {
    for (size_t i = 0; i < rec.size(); ++i) {
      int64_t id = dict.Lookup(rec.StringAt(i));
      rec_ids[i] = id < 0 ? next_missing-- : id - first;
    }
  }
  Column rec_col = Column::MakeInt64(std::move(rec_ids));
  Column base_col = codes_as_ids(base);
  if (base_is_a) {
    return std::make_pair(std::move(base_col), std::move(rec_col));
  }
  return std::make_pair(std::move(rec_col), std::move(base_col));
}

Result<RelationPtr> Filter(const RelationPtr& rel, const ExprPtr& predicate,
                           const FunctionRegistry& registry) {
  obs::Span span("engine", "filter");
  if (span.active()) {
    span.Add("rows_in", static_cast<int64_t>(rel->num_rows()));
  }
  SPINDLE_ASSIGN_OR_RETURN(Column mask, predicate->Evaluate(*rel, registry));
  if (mask.type() != DataType::kInt64) {
    return Status::TypeMismatch("filter predicate must be boolean (int64)");
  }
  std::vector<uint32_t> rows;
  if (mask.size() == 1) {
    if (mask.Int64At(0) != 0) return rel;
    return Relation::Empty(rel->schema());
  }
  if (mask.size() != rel->num_rows()) {
    return Status::Internal("predicate result has wrong row count");
  }
  const auto& bits = mask.int64_data();
  const ExecContext& ctx = ExecContext::Current();
  if (ctx.ShouldParallelize(bits.size())) {
    // Per-morsel selection vectors concatenated in morsel order: identical
    // row list to the serial scan, built on ctx.threads threads.
    std::vector<std::vector<uint32_t>> selected(NumMorsels(ctx, bits.size()));
    ParallelFor(ctx, bits.size(), [&](size_t begin, size_t end, size_t m) {
      auto& out = selected[m];
      for (size_t r = begin; r < end; ++r) {
        if (bits[r] != 0) out.push_back(static_cast<uint32_t>(r));
      }
    });
    size_t total = 0;
    for (const auto& part : selected) total += part.size();
    rows.reserve(total);
    for (const auto& part : selected) {
      rows.insert(rows.end(), part.begin(), part.end());
    }
  } else {
    for (size_t r = 0; r < bits.size(); ++r) {
      if (bits[r] != 0) rows.push_back(static_cast<uint32_t>(r));
    }
  }
  if (span.active()) {
    span.Add("rows_out", static_cast<int64_t>(rows.size()));
    span.Add("morsels", static_cast<int64_t>(NumMorsels(ctx, bits.size())));
  }
  return GatherRows(*rel, rows);
}

Result<RelationPtr> ProjectColumns(const RelationPtr& rel,
                                   const std::vector<size_t>& columns,
                                   const std::vector<std::string>& names) {
  SPINDLE_RETURN_IF_ERROR(CheckColumnRange(*rel, columns));
  if (!names.empty() && names.size() != columns.size()) {
    return Status::InvalidArgument(
        "ProjectColumns: names/columns size mismatch");
  }
  Schema schema;
  std::vector<ColumnPtr> cols;
  cols.reserve(columns.size());
  for (size_t i = 0; i < columns.size(); ++i) {
    const Field& f = rel->schema().field(columns[i]);
    schema.AddField({names.empty() ? f.name : names[i], f.type});
    cols.push_back(rel->column_ptr(columns[i]));
  }
  return Relation::MakeShared(std::move(schema), std::move(cols));
}

Result<RelationPtr> ProjectExprs(const RelationPtr& rel,
                                 const std::vector<ExprPtr>& exprs,
                                 const std::vector<std::string>& names,
                                 const FunctionRegistry& registry) {
  obs::Span span("engine", "project");
  if (span.active()) {
    span.Add("rows_in", static_cast<int64_t>(rel->num_rows()));
    span.Add("exprs", static_cast<int64_t>(exprs.size()));
  }
  if (exprs.size() != names.size()) {
    return Status::InvalidArgument("ProjectExprs: names/exprs size mismatch");
  }
  Schema schema;
  std::vector<Column> cols;
  cols.reserve(exprs.size());
  const ExecContext& ctx = ExecContext::Current();
  if (ctx.threads > 1 && exprs.size() > 1 &&
      rel->num_rows() > ctx.morsel_rows) {
    // Independent output expressions evaluate concurrently; errors are
    // reported in expression order, matching the serial short-circuit.
    struct Slot {
      Status st;
      std::optional<Column> col;
    };
    std::vector<Slot> slots(exprs.size());
    Scheduler::Global().EnsureWorkers(ctx.threads - 1);
    TaskGroup group;
    for (size_t i = 0; i < exprs.size(); ++i) {
      group.Spawn([&, i] {
        // Expression subtrees may themselves hit parallel kernels; keep
        // them serial so this fan-out alone bounds thread use.
        ScopedExecContext serial{ExecContext(1)};
        Result<Column> c = exprs[i]->Evaluate(*rel, registry);
        if (!c.ok()) {
          slots[i].st = c.status();
          return;
        }
        Result<Column> full =
            MaterializeFull(std::move(c).ValueOrDie(), rel->num_rows());
        if (!full.ok()) {
          slots[i].st = full.status();
          return;
        }
        slots[i].col = std::move(full).ValueOrDie();
      });
    }
    group.Wait();
    for (size_t i = 0; i < exprs.size(); ++i) {
      if (!slots[i].st.ok()) return slots[i].st;
      schema.AddField({names[i], slots[i].col->type()});
      cols.push_back(std::move(*slots[i].col));
    }
    return Relation::Make(std::move(schema), std::move(cols));
  }
  for (size_t i = 0; i < exprs.size(); ++i) {
    SPINDLE_ASSIGN_OR_RETURN(Column c, exprs[i]->Evaluate(*rel, registry));
    SPINDLE_ASSIGN_OR_RETURN(c, MaterializeFull(std::move(c),
                                                rel->num_rows()));
    schema.AddField({names[i], c.type()});
    cols.push_back(std::move(c));
  }
  return Relation::Make(std::move(schema), std::move(cols));
}

Result<RelationPtr> HashJoin(const RelationPtr& left, const RelationPtr& right,
                             const std::vector<JoinKey>& keys,
                             JoinType type) {
  obs::Span span("engine", "hash_join");
  if (span.active()) {
    span.Add("rows_left", static_cast<int64_t>(left->num_rows()));
    span.Add("rows_right", static_cast<int64_t>(right->num_rows()));
  }
  if (keys.empty()) {
    return Status::InvalidArgument("HashJoin requires at least one key");
  }
  std::vector<size_t> lcols, rcols;
  lcols.reserve(keys.size());
  rcols.reserve(keys.size());
  for (const auto& k : keys) {
    lcols.push_back(k.left);
    rcols.push_back(k.right);
  }
  SPINDLE_RETURN_IF_ERROR(CheckColumnRange(*left, lcols));
  SPINDLE_RETURN_IF_ERROR(CheckColumnRange(*right, rcols));
  for (size_t i = 0; i < keys.size(); ++i) {
    if (left->column(lcols[i]).type() != right->column(rcols[i]).type()) {
      return Status::TypeMismatch(
          "join key type mismatch at key " + std::to_string(i) + ": " +
          DataTypeName(left->column(lcols[i]).type()) + " vs " +
          DataTypeName(right->column(rcols[i]).type()));
    }
  }

  // String keys where either side is dict-encoded are recoded to shared
  // integer ids: build and probe then hash/compare 8-byte ids instead of
  // strings, regardless of which representation each side arrived in.
  std::vector<Column> shadow_keys;
  shadow_keys.reserve(keys.size() * 2);
  std::vector<const Column*> lkey_cols, rkey_cols;
  lkey_cols.reserve(keys.size());
  rkey_cols.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    const Column& lc = left->column(lcols[i]);
    const Column& rc = right->column(rcols[i]);
    if (auto recoded = RecodeToShared(lc, rc)) {
      shadow_keys.push_back(std::move(recoded->first));
      lkey_cols.push_back(&shadow_keys.back());
      shadow_keys.push_back(std::move(recoded->second));
      rkey_cols.push_back(&shadow_keys.back());
    } else {
      lkey_cols.push_back(&lc);
      rkey_cols.push_back(&rc);
    }
  }
  RowKey lkey(std::move(lkey_cols));
  RowKey rkey(std::move(rkey_cols));

  const ExecContext& ctx = ExecContext::Current();
  std::vector<uint32_t> lrows, rrows;
  // Output contract: matches ordered by (left row, right row). The
  // default plan builds a hash table on the right side and probes with
  // the left, which produces that order directly. When the left side is
  // much smaller (an inner join of a tiny filtered set against a big
  // table — the shape of every per-query ranking join), building on the
  // left and probing the right avoids allocating a large table; the
  // match list is then sorted back into contract order.
  //
  // Both plans parallelize independently of each other: the build side
  // through the radix-partitioned JoinTable, the probe side per-morsel
  // with match lists concatenated in morsel order — so results are
  // bit-identical to the serial engine at every thread count.
  const bool build_on_left =
      type == JoinType::kInner &&
      left->num_rows() * 8 < right->num_rows();
  if (span.active()) {
    span.Note("build_side", build_on_left ? "left" : "right");
  }
  if (build_on_left) {
    JoinTable table = [&] {
      obs::Span build_span("engine", "join_build");
      if (build_span.active()) {
        build_span.Add("rows", static_cast<int64_t>(left->num_rows()));
      }
      return BuildJoinTable(lkey, left->num_rows(), ctx);
    }();
    std::vector<std::pair<uint32_t, uint32_t>> matches;
    const size_t probe_n = right->num_rows();
    obs::Span probe_span("engine", "join_probe");
    if (probe_span.active()) {
      probe_span.Add("rows", static_cast<int64_t>(probe_n));
      probe_span.Add("morsels",
                     static_cast<int64_t>(NumMorsels(ctx, probe_n)));
    }
    if (ctx.ShouldParallelize(probe_n)) {
      std::vector<std::vector<std::pair<uint32_t, uint32_t>>> found(
          NumMorsels(ctx, probe_n));
      ParallelFor(ctx, probe_n, [&](size_t begin, size_t end, size_t m) {
        auto& out = found[m];
        for (size_t r = begin; r < end; ++r) {
          const std::vector<uint32_t>* bucket = table.Find(rkey.Hash(r));
          if (bucket == nullptr) continue;
          for (uint32_t l : *bucket) {
            if (lkey.Equals(l, rkey, r)) {
              out.emplace_back(l, static_cast<uint32_t>(r));
            }
          }
        }
      });
      size_t total = 0;
      for (const auto& part : found) total += part.size();
      matches.reserve(total);
      for (const auto& part : found) {
        matches.insert(matches.end(), part.begin(), part.end());
      }
    } else {
      for (size_t r = 0; r < probe_n; ++r) {
        const std::vector<uint32_t>* bucket = table.Find(rkey.Hash(r));
        if (bucket == nullptr) continue;
        for (uint32_t l : *bucket) {
          if (lkey.Equals(l, rkey, r)) {
            matches.emplace_back(l, static_cast<uint32_t>(r));
          }
        }
      }
    }
    std::sort(matches.begin(), matches.end());
    lrows.reserve(matches.size());
    rrows.reserve(matches.size());
    for (const auto& [l, r] : matches) {
      lrows.push_back(l);
      rrows.push_back(r);
    }
  } else {
    JoinTable table = [&] {
      obs::Span build_span("engine", "join_build");
      if (build_span.active()) {
        build_span.Add("rows", static_cast<int64_t>(right->num_rows()));
      }
      return BuildJoinTable(rkey, right->num_rows(), ctx);
    }();
    const size_t probe_n = left->num_rows();
    obs::Span probe_span("engine", "join_probe");
    if (probe_span.active()) {
      probe_span.Add("rows", static_cast<int64_t>(probe_n));
      probe_span.Add("morsels",
                     static_cast<int64_t>(NumMorsels(ctx, probe_n)));
    }
    auto probe_range = [&](size_t begin, size_t end,
                           std::vector<uint32_t>& lout,
                           std::vector<uint32_t>& rout) {
      for (size_t l = begin; l < end; ++l) {
        const std::vector<uint32_t>* bucket = table.Find(lkey.Hash(l));
        bool matched = false;
        if (bucket != nullptr) {
          for (uint32_t r : *bucket) {
            if (lkey.Equals(l, rkey, r)) {
              matched = true;
              if (type == JoinType::kInner) {
                lout.push_back(static_cast<uint32_t>(l));
                rout.push_back(r);
              } else {
                break;  // semi/anti only need existence
              }
            }
          }
        }
        if (type == JoinType::kLeftSemi && matched) {
          lout.push_back(static_cast<uint32_t>(l));
        } else if (type == JoinType::kLeftAnti && !matched) {
          lout.push_back(static_cast<uint32_t>(l));
        }
      }
    };
    if (ctx.ShouldParallelize(probe_n)) {
      const size_t num_morsels = NumMorsels(ctx, probe_n);
      std::vector<std::vector<uint32_t>> lparts(num_morsels);
      std::vector<std::vector<uint32_t>> rparts(num_morsels);
      ParallelFor(ctx, probe_n, [&](size_t begin, size_t end, size_t m) {
        probe_range(begin, end, lparts[m], rparts[m]);
      });
      size_t total = 0;
      for (const auto& part : lparts) total += part.size();
      lrows.reserve(total);
      rrows.reserve(total);
      for (size_t m = 0; m < num_morsels; ++m) {
        lrows.insert(lrows.end(), lparts[m].begin(), lparts[m].end());
        rrows.insert(rrows.end(), rparts[m].begin(), rparts[m].end());
      }
    } else {
      probe_range(0, probe_n, lrows, rrows);
    }
  }

  if (span.active()) span.Add("rows_out", static_cast<int64_t>(lrows.size()));
  Schema schema;
  std::vector<Column> cols;
  for (size_t c = 0; c < left->num_columns(); ++c) {
    schema.AddField(left->schema().field(c));
    cols.push_back(GatherColumnRows(left->column(c), lrows, ctx));
  }
  if (type == JoinType::kInner) {
    for (size_t c = 0; c < right->num_columns(); ++c) {
      schema.AddField(right->schema().field(c));
      cols.push_back(GatherColumnRows(right->column(c), rrows, ctx));
    }
  }
  return Relation::Make(std::move(schema), std::move(cols));
}

namespace {

/// Per-group accumulators for one AggSpec.
struct Acc {
  std::vector<int64_t> counts;
  std::vector<double> fsums;
  std::vector<int64_t> isums;
  std::vector<uint32_t> minmax_row;  // row index of current min/max
  std::vector<bool> seen;
};

/// Appends `extra` zero-initialized group slots to every accumulator.
void GrowAccs(const Relation& rel, const std::vector<AggSpec>& aggs,
              std::vector<Acc>& accs, size_t extra) {
  for (size_t i = 0; i < aggs.size(); ++i) {
    const auto& a = aggs[i];
    Acc& acc = accs[i];
    if (a.kind == AggKind::kCount) {
      acc.counts.resize(acc.counts.size() + extra, 0);
    } else if (a.kind == AggKind::kSum || a.kind == AggKind::kAvg) {
      acc.counts.resize(acc.counts.size() + extra, 0);
      if (rel.column(a.column).type() == DataType::kInt64) {
        acc.isums.resize(acc.isums.size() + extra, 0);
      }
      acc.fsums.resize(acc.fsums.size() + extra, 0.0);
    } else {
      acc.minmax_row.resize(acc.minmax_row.size() + extra, 0);
      acc.seen.resize(acc.seen.size() + extra, false);
    }
  }
}

/// Folds row `r` into group `g` of every accumulator.
void AccumulateRow(const Relation& rel, const std::vector<AggSpec>& aggs,
                   std::vector<Acc>& accs, uint32_t g, size_t r) {
  for (size_t i = 0; i < aggs.size(); ++i) {
    const auto& a = aggs[i];
    Acc& acc = accs[i];
    switch (a.kind) {
      case AggKind::kCount:
        acc.counts[g]++;
        break;
      case AggKind::kSum:
      case AggKind::kAvg: {
        const Column& c = rel.column(a.column);
        acc.counts[g]++;
        if (c.type() == DataType::kInt64) {
          acc.isums[g] += c.Int64At(r);
          acc.fsums[g] += static_cast<double>(c.Int64At(r));
        } else {
          acc.fsums[g] += c.Float64At(r);
        }
        break;
      }
      case AggKind::kMin:
      case AggKind::kMax: {
        const Column& c = rel.column(a.column);
        if (!acc.seen[g]) {
          acc.seen[g] = true;
          acc.minmax_row[g] = static_cast<uint32_t>(r);
        } else {
          int cmp = c.ElementCompare(r, c, acc.minmax_row[g]);
          if ((a.kind == AggKind::kMin && cmp < 0) ||
              (a.kind == AggKind::kMax && cmp > 0)) {
            acc.minmax_row[g] = static_cast<uint32_t>(r);
          }
        }
        break;
      }
    }
  }
}

/// Folds local group `lg` of `local` (first seen at local representative
/// row `lrow`) into global group `g`. Min/max replace only on a strict
/// improvement; since morsels merge in ascending row order this reproduces
/// the serial "earliest best row wins" exactly.
void MergeGroup(const Relation& rel, const std::vector<AggSpec>& aggs,
                std::vector<Acc>& accs, uint32_t g,
                const std::vector<Acc>& local, uint32_t lg) {
  for (size_t i = 0; i < aggs.size(); ++i) {
    const auto& a = aggs[i];
    Acc& acc = accs[i];
    const Acc& lacc = local[i];
    switch (a.kind) {
      case AggKind::kCount:
        acc.counts[g] += lacc.counts[lg];
        break;
      case AggKind::kSum:
      case AggKind::kAvg: {
        acc.counts[g] += lacc.counts[lg];
        if (!acc.isums.empty()) acc.isums[g] += lacc.isums[lg];
        acc.fsums[g] += lacc.fsums[lg];
        break;
      }
      case AggKind::kMin:
      case AggKind::kMax: {
        if (!lacc.seen[lg]) break;
        const Column& c = rel.column(a.column);
        uint32_t cand = lacc.minmax_row[lg];
        if (!acc.seen[g]) {
          acc.seen[g] = true;
          acc.minmax_row[g] = cand;
        } else {
          int cmp = c.ElementCompare(cand, c, acc.minmax_row[g]);
          if ((a.kind == AggKind::kMin && cmp < 0) ||
              (a.kind == AggKind::kMax && cmp > 0)) {
            acc.minmax_row[g] = cand;
          }
        }
        break;
      }
    }
  }
}

/// Builds the (group columns, aggregate columns) output relation.
Result<RelationPtr> AssembleGroupOutput(
    const Relation& rel, const std::vector<size_t>& group_columns,
    const std::vector<AggSpec>& aggs, const std::vector<uint32_t>& repr_rows,
    const std::vector<Acc>& accs, size_t num_groups, const ExecContext& ctx) {
  Schema schema;
  std::vector<Column> cols;
  for (size_t gc : group_columns) {
    schema.AddField(rel.schema().field(gc));
    cols.push_back(GatherColumnRows(rel.column(gc), repr_rows, ctx));
  }
  for (size_t i = 0; i < aggs.size(); ++i) {
    const auto& a = aggs[i];
    const Acc& acc = accs[i];
    switch (a.kind) {
      case AggKind::kCount: {
        schema.AddField({a.name, DataType::kInt64});
        cols.push_back(Column::MakeInt64(acc.counts));
        break;
      }
      case AggKind::kSum: {
        if (rel.column(a.column).type() == DataType::kInt64) {
          schema.AddField({a.name, DataType::kInt64});
          cols.push_back(Column::MakeInt64(acc.isums));
        } else {
          schema.AddField({a.name, DataType::kFloat64});
          cols.push_back(Column::MakeFloat64(acc.fsums));
        }
        break;
      }
      case AggKind::kAvg: {
        std::vector<double> avgs(num_groups, 0.0);
        for (size_t g = 0; g < num_groups; ++g) {
          if (acc.counts[g] > 0) {
            avgs[g] = acc.fsums[g] / static_cast<double>(acc.counts[g]);
          }
        }
        schema.AddField({a.name, DataType::kFloat64});
        cols.push_back(Column::MakeFloat64(std::move(avgs)));
        break;
      }
      case AggKind::kMin:
      case AggKind::kMax: {
        const Column& c = rel.column(a.column);
        Column out(c.type());
        out.Reserve(num_groups);
        for (size_t g = 0; g < num_groups; ++g) {
          if (acc.seen.empty() || !acc.seen[g]) {
            // Empty group (only possible for the global empty-input case):
            // emit a type-appropriate zero.
            switch (c.type()) {
              case DataType::kInt64:
                out.AppendInt64(0);
                break;
              case DataType::kFloat64:
                out.AppendFloat64(0.0);
                break;
              case DataType::kString:
                out.AppendString("");
                break;
            }
          } else {
            out.AppendFrom(c, acc.minmax_row[g]);
          }
        }
        schema.AddField({a.name, c.type()});
        cols.push_back(std::move(out));
        break;
      }
    }
  }
  return Relation::Make(std::move(schema), std::move(cols));
}

}  // namespace

Result<RelationPtr> GroupAggregate(const RelationPtr& rel,
                                   const std::vector<size_t>& group_columns,
                                   const std::vector<AggSpec>& aggs) {
  obs::Span span("engine", "group_aggregate");
  if (span.active()) {
    span.Add("rows_in", static_cast<int64_t>(rel->num_rows()));
    span.Add("group_cols", static_cast<int64_t>(group_columns.size()));
  }
  SPINDLE_RETURN_IF_ERROR(CheckColumnRange(*rel, group_columns));
  for (const auto& a : aggs) {
    if (a.kind != AggKind::kCount) {
      SPINDLE_RETURN_IF_ERROR(CheckColumnRange(*rel, {a.column}));
      if (a.kind != AggKind::kMin && a.kind != AggKind::kMax &&
          rel->column(a.column).type() == DataType::kString) {
        return Status::TypeMismatch("sum/avg require a numeric column");
      }
    }
  }

  RowKey key(*rel, group_columns, /*self_keyed=*/true);
  const ExecContext& ctx = ExecContext::Current();
  const bool global = group_columns.empty();
  const size_t n = rel->num_rows();

  if (ctx.ShouldParallelize(n)) {
    // Morsel-local grouping and accumulation, merged serially in morsel
    // order. Because the morsel grid is independent of the thread count
    // and the merge walks morsels in ascending order, global group ids
    // come out in first-occurrence order — identical to the serial scan
    // for any thread count. (Float sums associate per-morsel instead of
    // per-row, so kSum/kAvg over float64 may differ from serial in the
    // last ulps; integer aggregates are exact.)
    struct MorselAgg {
      std::vector<uint32_t> repr;       // local first-occurrence order
      std::vector<uint64_t> repr_hash;  // cached key hashes of repr rows
      std::vector<Acc> accs;
    };
    const size_t num_morsels = NumMorsels(ctx, n);
    std::vector<MorselAgg> morsels(num_morsels);
    ParallelFor(ctx, n, [&](size_t begin, size_t end, size_t m) {
      MorselAgg& mg = morsels[m];
      mg.accs.resize(aggs.size());
      std::unordered_map<uint64_t,
                         std::vector<std::pair<uint32_t, uint32_t>>>
          lgroups;
      lgroups.reserve(end - begin);
      for (size_t r = begin; r < end; ++r) {
        uint64_t h = key.Hash(r);
        auto& bucket = lgroups[h];
        uint32_t gid = UINT32_MAX;
        for (auto& [repr, g] : bucket) {
          if (key.Equals(r, key, repr)) {
            gid = g;
            break;
          }
        }
        if (gid == UINT32_MAX) {
          gid = static_cast<uint32_t>(mg.repr.size());
          mg.repr.push_back(static_cast<uint32_t>(r));
          mg.repr_hash.push_back(h);
          bucket.emplace_back(static_cast<uint32_t>(r), gid);
          GrowAccs(*rel, aggs, mg.accs, 1);
        }
        AccumulateRow(*rel, aggs, mg.accs, gid, r);
      }
    });

    std::unordered_map<uint64_t, std::vector<std::pair<uint32_t, uint32_t>>>
        groups;
    std::vector<uint32_t> repr_rows;
    std::vector<Acc> accs(aggs.size());
    for (const MorselAgg& mg : morsels) {
      for (size_t j = 0; j < mg.repr.size(); ++j) {
        uint64_t h = mg.repr_hash[j];
        auto& bucket = groups[h];
        uint32_t gid = UINT32_MAX;
        for (auto& [repr, g] : bucket) {
          if (key.Equals(mg.repr[j], key, repr)) {
            gid = g;
            break;
          }
        }
        if (gid == UINT32_MAX) {
          gid = static_cast<uint32_t>(repr_rows.size());
          repr_rows.push_back(mg.repr[j]);
          bucket.emplace_back(mg.repr[j], gid);
          GrowAccs(*rel, aggs, accs, 1);
        }
        MergeGroup(*rel, aggs, accs, gid, mg.accs,
                   static_cast<uint32_t>(j));
      }
    }
    return AssembleGroupOutput(*rel, group_columns, aggs, repr_rows, accs,
                               repr_rows.size(), ctx);
  }

  // Serial path (also taken at threads == 1): single-scan grouping.
  // hash -> list of (representative row, group index); collision-safe.
  std::unordered_map<uint64_t, std::vector<std::pair<uint32_t, uint32_t>>>
      groups;
  groups.reserve(n);
  std::vector<uint32_t> repr_rows;  // group -> representative row
  std::vector<uint32_t> group_of_row(n);

  if (global) {
    repr_rows.push_back(0);
    std::fill(group_of_row.begin(), group_of_row.end(), 0);
  } else {
    for (size_t r = 0; r < n; ++r) {
      uint64_t h = key.Hash(r);
      auto& bucket = groups[h];
      uint32_t gid = UINT32_MAX;
      for (auto& [repr, g] : bucket) {
        if (key.Equals(r, key, repr)) {
          gid = g;
          break;
        }
      }
      if (gid == UINT32_MAX) {
        gid = static_cast<uint32_t>(repr_rows.size());
        repr_rows.push_back(static_cast<uint32_t>(r));
        bucket.emplace_back(static_cast<uint32_t>(r), gid);
      }
      group_of_row[r] = gid;
    }
  }
  const size_t num_groups = global ? 1 : repr_rows.size();

  std::vector<Acc> accs(aggs.size());
  GrowAccs(*rel, aggs, accs, num_groups);
  for (size_t r = 0; r < n; ++r) {
    AccumulateRow(*rel, aggs, accs, group_of_row[r], r);
  }
  return AssembleGroupOutput(*rel, group_columns, aggs, repr_rows, accs,
                             num_groups, ctx);
}

Result<RelationPtr> Distinct(const RelationPtr& rel,
                             std::vector<size_t> columns) {
  if (columns.empty()) {
    columns.resize(rel->num_columns());
    std::iota(columns.begin(), columns.end(), 0);
  }
  SPINDLE_RETURN_IF_ERROR(CheckColumnRange(*rel, columns));
  RowKey key(*rel, columns, /*self_keyed=*/true);
  std::unordered_map<uint64_t, std::vector<uint32_t>> seen;
  seen.reserve(rel->num_rows());
  std::vector<uint32_t> keep;
  for (size_t r = 0; r < rel->num_rows(); ++r) {
    uint64_t h = key.Hash(r);
    auto& bucket = seen[h];
    bool dup = false;
    for (uint32_t prev : bucket) {
      if (key.Equals(r, key, prev)) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      bucket.push_back(static_cast<uint32_t>(r));
      keep.push_back(static_cast<uint32_t>(r));
    }
  }
  Schema schema;
  std::vector<Column> cols;
  for (size_t c : columns) {
    schema.AddField(rel->schema().field(c));
    cols.push_back(rel->column(c).Gather(keep));
  }
  return Relation::Make(std::move(schema), std::move(cols));
}

Result<RelationPtr> SortBy(const RelationPtr& rel,
                           const std::vector<SortKey>& keys) {
  for (const auto& k : keys) {
    SPINDLE_RETURN_IF_ERROR(CheckColumnRange(*rel, {k.column}));
  }
  std::vector<SortKeyCtx> ctxs;
  ctxs.reserve(keys.size());
  for (const auto& k : keys) ctxs.push_back(MakeSortKeyCtx(*rel, k));
  std::vector<uint32_t> order(rel->num_rows());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](uint32_t a, uint32_t b) {
                     for (const auto& ctx : ctxs) {
                       int cmp = ctx.Compare(a, b);
                       if (cmp != 0) {
                         return ctx.descending ? cmp > 0 : cmp < 0;
                       }
                     }
                     return false;
                   });
  return GatherRows(*rel, order);
}

Result<RelationPtr> TopK(const RelationPtr& rel, const SortKey& key,
                         size_t k) {
  obs::Span span("engine", "top_k");
  if (span.active()) {
    span.Add("rows_in", static_cast<int64_t>(rel->num_rows()));
    span.Add("k", static_cast<int64_t>(k));
  }
  SPINDLE_RETURN_IF_ERROR(CheckColumnRange(*rel, {key.column}));
  const size_t num_rows = rel->num_rows();
  size_t n = std::min(k, num_rows);
  SortKeyCtx key_ctx = MakeSortKeyCtx(*rel, key);
  // cmp is a strict total order (ties broken by row index), so the top-n
  // sequence is unique — which is what lets the parallel path below
  // reproduce the serial result exactly.
  auto cmp = [&](uint32_t a, uint32_t b) {
    int v = key_ctx.Compare(a, b);
    if (v != 0) return key.descending ? v > 0 : v < 0;
    return a < b;  // deterministic tie-break by input order
  };

  const ExecContext& ctx = ExecContext::Current();
  if (ctx.ShouldParallelize(num_rows) && n < num_rows) {
    // Per-morsel top-n candidates (every global top-n row is in its
    // morsel's top-n), concatenated and re-selected.
    const size_t num_morsels = NumMorsels(ctx, num_rows);
    std::vector<std::vector<uint32_t>> candidates(num_morsels);
    ParallelFor(ctx, num_rows, [&](size_t begin, size_t end, size_t m) {
      std::vector<uint32_t>& local = candidates[m];
      local.resize(end - begin);
      std::iota(local.begin(), local.end(),
                static_cast<uint32_t>(begin));
      size_t keep = std::min(n, local.size());
      std::partial_sort(local.begin(), local.begin() + keep, local.end(),
                        cmp);
      local.resize(keep);
    });
    std::vector<uint32_t> order;
    for (const auto& part : candidates) {
      order.insert(order.end(), part.begin(), part.end());
    }
    std::partial_sort(order.begin(), order.begin() + n, order.end(), cmp);
    order.resize(n);
    return GatherRows(*rel, order);
  }

  std::vector<uint32_t> order(num_rows);
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + n, order.end(), cmp);
  order.resize(n);
  return GatherRows(*rel, order);
}

Result<RelationPtr> TopK(const RelationPtr& rel,
                         const std::vector<SortKey>& keys, size_t k) {
  obs::Span span("engine", "top_k");
  if (span.active()) {
    span.Add("rows_in", static_cast<int64_t>(rel->num_rows()));
    span.Add("k", static_cast<int64_t>(k));
    span.Add("sort_keys", static_cast<int64_t>(keys.size()));
  }
  for (const auto& key : keys) {
    SPINDLE_RETURN_IF_ERROR(CheckColumnRange(*rel, {key.column}));
  }
  const size_t num_rows = rel->num_rows();
  size_t n = std::min(k, num_rows);
  std::vector<SortKeyCtx> ctxs;
  ctxs.reserve(keys.size());
  for (const auto& key : keys) ctxs.push_back(MakeSortKeyCtx(*rel, key));
  // Strict total order (compound keys, then row index), so the top-n
  // sequence is unique and the parallel path reproduces it exactly.
  auto cmp = [&](uint32_t a, uint32_t b) {
    for (const auto& ctx : ctxs) {
      int v = ctx.Compare(a, b);
      if (v != 0) return ctx.descending ? v > 0 : v < 0;
    }
    return a < b;
  };

  const ExecContext& ctx = ExecContext::Current();
  if (ctx.ShouldParallelize(num_rows) && n < num_rows) {
    const size_t num_morsels = NumMorsels(ctx, num_rows);
    std::vector<std::vector<uint32_t>> candidates(num_morsels);
    ParallelFor(ctx, num_rows, [&](size_t begin, size_t end, size_t m) {
      std::vector<uint32_t>& local = candidates[m];
      local.resize(end - begin);
      std::iota(local.begin(), local.end(), static_cast<uint32_t>(begin));
      size_t keep = std::min(n, local.size());
      std::partial_sort(local.begin(), local.begin() + keep, local.end(),
                        cmp);
      local.resize(keep);
    });
    std::vector<uint32_t> order;
    for (const auto& part : candidates) {
      order.insert(order.end(), part.begin(), part.end());
    }
    std::partial_sort(order.begin(), order.begin() + n, order.end(), cmp);
    order.resize(n);
    return GatherRows(*rel, order);
  }

  std::vector<uint32_t> order(num_rows);
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + n, order.end(), cmp);
  order.resize(n);
  return GatherRows(*rel, order);
}

Result<RelationPtr> UnionAll(const std::vector<RelationPtr>& inputs) {
  if (inputs.empty()) {
    return Status::InvalidArgument("UnionAll requires at least one input");
  }
  const Schema& schema = inputs[0]->schema();
  for (const auto& in : inputs) {
    if (!in->schema().TypesEqual(schema)) {
      return Status::TypeMismatch(
          "UnionAll inputs are not union-compatible: " + schema.ToString() +
          " vs " + in->schema().ToString());
    }
  }
  std::vector<Column> cols;
  size_t total = 0;
  for (const auto& in : inputs) total += in->num_rows();
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    Column out(schema.field(c).type);
    out.Reserve(total);
    for (const auto& in : inputs) {
      const Column& src = in->column(c);
      for (size_t r = 0; r < src.size(); ++r) out.AppendFrom(src, r);
    }
    cols.push_back(std::move(out));
  }
  return Relation::Make(schema, std::move(cols));
}

Result<RelationPtr> Limit(const RelationPtr& rel, size_t n) {
  if (n >= rel->num_rows()) return rel;
  std::vector<uint32_t> rows(n);
  std::iota(rows.begin(), rows.end(), 0);
  return GatherRows(*rel, rows);
}

Result<RelationPtr> WithRowNumber(const RelationPtr& rel,
                                  const std::string& name) {
  Schema schema = rel->schema();
  schema.AddField({name, DataType::kInt64});
  std::vector<ColumnPtr> cols;
  for (size_t c = 0; c < rel->num_columns(); ++c) {
    cols.push_back(rel->column_ptr(c));
  }
  std::vector<int64_t> nums(rel->num_rows());
  std::iota(nums.begin(), nums.end(), 1);
  cols.push_back(
      std::make_shared<const Column>(Column::MakeInt64(std::move(nums))));
  return Relation::MakeShared(std::move(schema), std::move(cols));
}

}  // namespace spindle
