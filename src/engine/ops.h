/// \file ops.h
/// \brief The relational operator kernels of the column-store engine.
///
/// Every operator is a pure function RelationPtr -> RelationPtr with full
/// materialization of its result (MonetDB/BAT execution model). This is
/// deliberate: it is what makes the paper's adaptive, query-driven
/// materialization cache (§2.2) natural — any intermediate is a nameable,
/// reusable table.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "engine/expr.h"
#include "exec/exec_context.h"
#include "storage/relation.h"

namespace spindle {

/// \brief Join flavours. Inner emits left columns followed by right
/// columns; semi/anti emit left columns only.
enum class JoinType { kInner, kLeftSemi, kLeftAnti };

/// \brief An equi-join key pair (column positions in left and right input).
struct JoinKey {
  size_t left;
  size_t right;
};

/// \brief Aggregate function kinds.
enum class AggKind { kCount, kSum, kAvg, kMin, kMax };

/// \brief One aggregate to compute in GroupAggregate.
struct AggSpec {
  AggKind kind;
  /// Input column (ignored for kCount).
  size_t column = 0;
  /// Output field name.
  std::string name;
};

/// \brief Sort key: column position and direction.
struct SortKey {
  size_t column;
  bool descending = false;
};

/// \brief Unifies the key representation of two kString columns so join
/// build/probe can run on integer ids instead of strings.
///
/// Returns int64 key columns (a', b') such that a'[i] == b'[j] iff
/// a[i] == b[j] as strings, computed without materializing any string:
///  - both sides share one dict instance: codes are emitted directly;
///  - otherwise the side with the larger dict becomes the base and the
///    other side is recoded against it via dict lookups; strings absent
///    from the base dict get unique negative ids (they can never match the
///    base side, whose values are all in its dict).
/// Returns nullopt when neither side is dict-encoded (or types are not
/// kString) — callers then fall back to generic string hashing.
std::optional<std::pair<Column, Column>> RecodeToShared(const Column& a,
                                                        const Column& b);

/// \brief Morsel-parallel row gather of a single column: returns a column
/// holding col[rows[0]], col[rows[1]], ... Identical to col.Gather(rows)
/// but splits the copy across ctx.threads when `rows` spans more than one
/// morsel. Dict-encoded columns gather 4-byte codes and share the dict.
Column GatherColumnRows(const Column& col, const std::vector<uint32_t>& rows,
                        const ExecContext& ctx);

/// \brief Rows where `predicate` evaluates to non-zero.
Result<RelationPtr> Filter(const RelationPtr& rel, const ExprPtr& predicate,
                           const FunctionRegistry& registry);

/// \brief Positional projection; shares column buffers with the input.
/// If `names` is non-empty it renames the projected fields.
Result<RelationPtr> ProjectColumns(const RelationPtr& rel,
                                   const std::vector<size_t>& columns,
                                   const std::vector<std::string>& names = {});

/// \brief Generalized projection: one expression per output field.
Result<RelationPtr> ProjectExprs(const RelationPtr& rel,
                                 const std::vector<ExprPtr>& exprs,
                                 const std::vector<std::string>& names,
                                 const FunctionRegistry& registry);

/// \brief Hash equi-join.
///
/// Builds on the smaller side for inner joins; emits matches in left-row
/// order (stable for the left input). Join key columns must have identical
/// types on both sides.
Result<RelationPtr> HashJoin(const RelationPtr& left, const RelationPtr& right,
                             const std::vector<JoinKey>& keys,
                             JoinType type = JoinType::kInner);

/// \brief Hash group-by with aggregates.
///
/// Output schema: the group columns (original names) followed by one field
/// per AggSpec. An empty `group_columns` yields a single global row
/// (matching SQL aggregate-without-group-by on non-empty input; on empty
/// input it yields COUNT=0, SUM=0, and an error-free empty-min convention
/// of 0 for min/max/avg).
Result<RelationPtr> GroupAggregate(const RelationPtr& rel,
                                   const std::vector<size_t>& group_columns,
                                   const std::vector<AggSpec>& aggs);

/// \brief Distinct rows over the given columns (all columns if empty);
/// keeps the first occurrence, preserving input order, and projects to the
/// distinct columns.
Result<RelationPtr> Distinct(const RelationPtr& rel,
                             std::vector<size_t> columns = {});

/// \brief Stable sort by the given keys.
Result<RelationPtr> SortBy(const RelationPtr& rel,
                           const std::vector<SortKey>& keys);

/// \brief Top-k rows under a single sort key (ties broken by row order).
Result<RelationPtr> TopK(const RelationPtr& rel, const SortKey& key,
                         size_t k);

/// \brief Top-k rows under a compound sort key (remaining ties broken by
/// row order). With keys = {score desc, docID asc} this realizes the
/// ranked-retrieval total order that the fused pruning path
/// (ir/topk_pruning.h) reproduces.
Result<RelationPtr> TopK(const RelationPtr& rel,
                         const std::vector<SortKey>& keys, size_t k);

/// \brief Appends union-compatible relations (bag semantics, no dedup).
/// Output takes the first input's schema.
Result<RelationPtr> UnionAll(const std::vector<RelationPtr>& inputs);

/// \brief First n rows.
Result<RelationPtr> Limit(const RelationPtr& rel, size_t n);

/// \brief Appends an int64 column `name` numbering rows 1..N
/// (the paper's `row_number() over ()`).
Result<RelationPtr> WithRowNumber(const RelationPtr& rel,
                                  const std::string& name);

}  // namespace spindle
