/// \file materialization_cache.h
/// \brief The adaptive, query-driven materialization cache (paper §2.2).
///
/// Every intermediate result in Spindle is produced by a canonical
/// expression (a SpinQL/plan signature). The cache maps signatures to
/// materialized relations, so that "when the same computation is requested
/// several times, its full result is already materialized". This subsumes
/// on-demand vertical partitioning: a selection on the property column of
/// the triples table becomes a cached per-property table the first time it
/// is asked for.

#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "storage/relation.h"

namespace spindle {

/// \brief LRU cache of materialized relations keyed by plan signature.
///
/// Thread safety: all operations synchronize on one internal mutex, so
/// concurrent queries can Get/Put freely. Entries whose relation is still
/// referenced outside the cache (an in-flight reader holds the
/// RelationPtr a Get returned, or the producer kept its copy) are
/// *pinned*: eviction walks the LRU list skipping them, so a reader's
/// entry is never dropped mid-query. When every entry is pinned the
/// budget may transiently overshoot; it recovers as readers release
/// their references.
class MaterializationCache {
 public:
  /// \brief Counters exposed for tests and the E3/E8 benchmarks.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
    size_t bytes_cached = 0;
    size_t entries = 0;
  };

  /// \param budget_bytes approximate maximum resident size; entries are
  /// evicted LRU-first once exceeded. 0 disables caching entirely.
  explicit MaterializationCache(size_t budget_bytes = 256 << 20)
      : budget_bytes_(budget_bytes) {}

  /// \brief Returns the cached relation for `signature`, if resident.
  /// Counts a hit or miss.
  std::optional<RelationPtr> Get(const std::string& signature);

  /// \brief Materializes `rel` under `signature`, evicting LRU entries as
  /// needed. Relations larger than the whole budget are not cached.
  ///
  /// Dictionary-aware accounting: a StringDict shared by several resident
  /// relations (e.g. every cached selection over one triples table) is
  /// charged against the budget once — when its first referencing entry is
  /// inserted — and released when its last referencing entry is evicted.
  /// An entry's own charge is its relation's dict-free footprint.
  void Put(const std::string& signature, RelationPtr rel);

  /// \brief Drops every entry (used to measure cold performance).
  void Clear();

  /// \brief A consistent snapshot of the counters (taken under the lock,
  /// hence by value).
  Stats stats() const;
  void ResetCounters();
  size_t budget_bytes() const;
  void set_budget_bytes(size_t b);

 private:
  struct Entry {
    RelationPtr rel;
    size_t bytes;  // dict-free footprint charged to this entry alone
    std::vector<StringDictPtr> dicts;  // distinct dicts the relation uses
    std::list<std::string>::iterator lru_it;
  };

  struct DictUse {
    size_t refs = 0;   // resident entries referencing this dict
    size_t bytes = 0;  // charged once while refs > 0
  };

  /// Evicts the least-recently-used entry whose relation is not pinned
  /// by an external reference; returns false if every entry is pinned
  /// (or the cache is empty). Caller holds mu_.
  bool EvictOneUnpinned();
  void EvictToFit(size_t incoming_bytes);
  void Remove(std::unordered_map<std::string, Entry>::iterator it);
  /// Budget charge Put(rel) would add right now: the dict-free footprint
  /// plus every referenced dict not yet charged by a resident entry.
  size_t IncrementalBytes(const Relation& rel) const;

  /// Guards every member below.
  mutable std::mutex mu_;
  size_t budget_bytes_;
  std::unordered_map<std::string, Entry> entries_;
  std::unordered_map<const StringDict*, DictUse> dict_uses_;
  std::list<std::string> lru_;  // front = most recent
  Stats stats_;
};

}  // namespace spindle
