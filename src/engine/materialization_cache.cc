#include "engine/materialization_cache.h"

#include "obs/trace.h"

namespace spindle {

std::optional<RelationPtr> MaterializationCache::Get(
    const std::string& signature) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(signature);
  if (it == entries_.end()) {
    stats_.misses++;
    obs::Event("cache", "miss");
    return std::nullopt;
  }
  stats_.hits++;
  obs::Event("cache", "hit");
  lru_.erase(it->second.lru_it);
  lru_.push_front(signature);
  it->second.lru_it = lru_.begin();
  return it->second.rel;
}

size_t MaterializationCache::IncrementalBytes(const Relation& rel) const {
  size_t bytes = rel.ByteSizeExcludingDicts();
  for (const auto& d : rel.CollectDicts()) {
    auto it = dict_uses_.find(d.get());
    if (it == dict_uses_.end() || it->second.refs == 0) {
      bytes += d->ByteSize();
    }
  }
  return bytes;
}

bool MaterializationCache::EvictOneUnpinned() {
  // Walk LRU-first, skipping pinned entries. The cache itself holds one
  // reference; any additional one means an in-flight reader (or the
  // producer) still uses the relation, so evicting it now would yank a
  // table out of a running query's working set.
  for (auto rit = lru_.rbegin(); rit != lru_.rend(); ++rit) {
    auto it = entries_.find(*rit);
    if (it->second.rel.use_count() > 1) continue;
    Remove(it);
    stats_.evictions++;
    obs::Event("cache", "evict");
    return true;
  }
  return false;
}

void MaterializationCache::Put(const std::string& signature,
                               RelationPtr rel) {
  std::lock_guard<std::mutex> lock(mu_);
  if (budget_bytes_ == 0) return;
  auto it = entries_.find(signature);
  if (it != entries_.end()) Remove(it);
  if (IncrementalBytes(*rel) > budget_bytes_) return;
  // Recompute the incoming charge after every eviction: evicting the last
  // holder of a dict this relation shares moves that dict's bytes from the
  // resident total into the incoming charge.
  while (stats_.bytes_cached + IncrementalBytes(*rel) > budget_bytes_) {
    if (!EvictOneUnpinned()) break;  // everything pinned: overshoot
  }
  size_t own_bytes = rel->ByteSizeExcludingDicts();
  std::vector<StringDictPtr> dicts = rel->CollectDicts();
  for (const auto& d : dicts) {
    DictUse& use = dict_uses_[d.get()];
    if (use.refs++ == 0) {
      use.bytes = d->ByteSize();
      stats_.bytes_cached += use.bytes;
    }
  }
  lru_.push_front(signature);
  entries_[signature] =
      Entry{std::move(rel), own_bytes, std::move(dicts), lru_.begin()};
  stats_.bytes_cached += own_bytes;
  stats_.inserts++;
  stats_.entries++;
  obs::Event("cache", "materialize",
             {{"bytes", static_cast<int64_t>(own_bytes)}});
}

void MaterializationCache::Remove(
    std::unordered_map<std::string, Entry>::iterator it) {
  stats_.bytes_cached -= it->second.bytes;
  for (const auto& d : it->second.dicts) {
    auto use_it = dict_uses_.find(d.get());
    if (use_it != dict_uses_.end() && --use_it->second.refs == 0) {
      stats_.bytes_cached -= use_it->second.bytes;
      dict_uses_.erase(use_it);
    }
  }
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
  stats_.entries--;
}

void MaterializationCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  dict_uses_.clear();
  lru_.clear();
  stats_.bytes_cached = 0;
  stats_.entries = 0;
}

MaterializationCache::Stats MaterializationCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void MaterializationCache::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.hits = stats_.misses = stats_.inserts = stats_.evictions = 0;
}

size_t MaterializationCache::budget_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return budget_bytes_;
}

void MaterializationCache::set_budget_bytes(size_t b) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_bytes_ = b;
  EvictToFit(0);
}

void MaterializationCache::EvictToFit(size_t incoming_bytes) {
  while (stats_.bytes_cached + incoming_bytes > budget_bytes_) {
    if (!EvictOneUnpinned()) break;
  }
}

}  // namespace spindle
