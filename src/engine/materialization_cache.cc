#include "engine/materialization_cache.h"

namespace spindle {

std::optional<RelationPtr> MaterializationCache::Get(
    const std::string& signature) {
  auto it = entries_.find(signature);
  if (it == entries_.end()) {
    stats_.misses++;
    return std::nullopt;
  }
  stats_.hits++;
  lru_.erase(it->second.lru_it);
  lru_.push_front(signature);
  it->second.lru_it = lru_.begin();
  return it->second.rel;
}

void MaterializationCache::Put(const std::string& signature,
                               RelationPtr rel) {
  if (budget_bytes_ == 0) return;
  size_t bytes = rel->ByteSize();
  if (bytes > budget_bytes_) return;
  auto it = entries_.find(signature);
  if (it != entries_.end()) {
    stats_.bytes_cached -= it->second.bytes;
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
    stats_.entries--;
  }
  EvictToFit(bytes);
  lru_.push_front(signature);
  entries_[signature] = Entry{std::move(rel), bytes, lru_.begin()};
  stats_.bytes_cached += bytes;
  stats_.inserts++;
  stats_.entries++;
}

void MaterializationCache::Clear() {
  entries_.clear();
  lru_.clear();
  stats_.bytes_cached = 0;
  stats_.entries = 0;
}

void MaterializationCache::ResetCounters() {
  stats_.hits = stats_.misses = stats_.inserts = stats_.evictions = 0;
}

void MaterializationCache::set_budget_bytes(size_t b) {
  budget_bytes_ = b;
  EvictToFit(0);
}

void MaterializationCache::EvictToFit(size_t incoming_bytes) {
  while (!lru_.empty() &&
         stats_.bytes_cached + incoming_bytes > budget_bytes_) {
    const std::string& victim = lru_.back();
    auto it = entries_.find(victim);
    stats_.bytes_cached -= it->second.bytes;
    stats_.evictions++;
    stats_.entries--;
    entries_.erase(it);
    lru_.pop_back();
  }
}

}  // namespace spindle
