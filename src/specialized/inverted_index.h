/// \file inverted_index.h
/// \brief A classic specialized in-memory text engine — the baseline class
/// the paper positions itself against ("while beating specialized text
/// retrieval systems on raw speed is not the focus of this study, reaching
/// reasonable performance is a requirement").
///
/// Dictionary + postings lists (doc, tf), document lengths, term-at-a-time
/// BM25 scoring with a bounded top-k heap. Uses the same Analyzer as the
/// IR-on-DB path, so scores are *exactly* comparable (tested).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "ir/ranking.h"
#include "storage/relation.h"
#include "storage/string_dict.h"
#include "text/analyzer.h"

namespace spindle {

/// \brief A scored document.
struct ScoredDoc {
  int64_t doc_id;
  double score;
};

/// \brief Specialized inverted index with BM25 top-k search.
class SpecializedIndex {
 public:
  /// \brief One postings entry.
  struct Posting {
    int64_t doc;
    int32_t tf;
  };

  /// \brief Builds from a (docID: int64, data: string) relation.
  static Result<SpecializedIndex> Build(const RelationPtr& docs,
                                        const Analyzer& analyzer);

  /// \brief BM25 top-k, term-at-a-time with an accumulator table.
  /// Results are sorted by descending score, ties by ascending docID.
  std::vector<ScoredDoc> SearchBm25(const std::string& query, size_t k,
                                    const Bm25Params& params = {}) const;

  int64_t num_docs() const { return num_docs_; }
  double avg_doc_len() const { return avg_doc_len_; }
  int64_t num_terms() const { return dict_.size(); }

  /// \brief The postings list for a term ("" view if absent).
  const std::vector<Posting>* PostingsFor(const std::string& term) const;

 private:
  explicit SpecializedIndex(Analyzer analyzer)
      : analyzer_(std::move(analyzer)) {}

  Analyzer analyzer_;
  StringDict dict_{0};  // term -> dense id
  std::vector<std::vector<Posting>> postings_;
  std::vector<int64_t> doc_ids_;   // dense doc index -> external docID
  std::vector<int32_t> doc_lens_;  // dense doc index -> length
  int64_t num_docs_ = 0;
  double avg_doc_len_ = 0.0;
};

}  // namespace spindle
