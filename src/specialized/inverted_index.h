/// \file inverted_index.h
/// \brief A classic specialized in-memory text engine — the baseline class
/// the paper positions itself against ("while beating specialized text
/// retrieval systems on raw speed is not the focus of this study, reaching
/// reasonable performance is a requirement").
///
/// Dictionary + postings lists (doc, tf), document lengths, term-at-a-time
/// BM25 scoring with a bounded top-k heap. Uses the same Analyzer as the
/// IR-on-DB path, so scores are *exactly* comparable (tested).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "ir/ranking.h"
#include "ir/topk_pruning.h"
#include "storage/relation.h"
#include "storage/string_dict.h"
#include "text/analyzer.h"

namespace spindle {

/// \brief A scored document.
struct ScoredDoc {
  int64_t doc_id;
  double score;
};

/// \brief Specialized inverted index with BM25 top-k search.
class SpecializedIndex {
 public:
  /// \brief One postings entry.
  struct Posting {
    int64_t doc;
    int32_t tf;
  };

  /// \brief Builds from a (docID: int64, data: string) relation.
  static Result<SpecializedIndex> Build(const RelationPtr& docs,
                                        const Analyzer& analyzer);

  /// \brief BM25 top-k, term-at-a-time with an accumulator table.
  /// Results are sorted by descending score, ties by ascending docID.
  std::vector<ScoredDoc> SearchBm25(const std::string& query, size_t k,
                                    const Bm25Params& params = {}) const;

  /// \brief BM25 top-k, document-at-a-time with MaxScore term partitioning
  /// and WAND-style block skipping over per-term / per-block (tf, len)
  /// bounds. Returns exactly SearchBm25's results (same score doubles,
  /// same order) while skipping provably sub-threshold documents — the
  /// specialized-engine counterpart of the relational fused path
  /// (ir/topk_pruning.h), so bench_e9 compares like against like.
  std::vector<ScoredDoc> SearchBm25Daat(const std::string& query, size_t k,
                                        const Bm25Params& params = {},
                                        PruningStats* stats = nullptr) const;

  int64_t num_docs() const { return num_docs_; }
  double avg_doc_len() const { return avg_doc_len_; }
  int64_t num_terms() const { return dict_.size(); }

  /// \brief The postings list for a term ("" view if absent).
  const std::vector<Posting>* PostingsFor(const std::string& term) const;

 private:
  /// Postings per skip block (mirrors ImpactIndex::kBlockSize).
  static constexpr uint32_t kBlockSize = 128;

  /// Per-block skip bound + (tf, len) box over kBlockSize postings.
  struct Block {
    int64_t last_doc;  // dense doc index of the block's last posting
    int32_t max_tf;
    int32_t min_tf;
    int32_t min_len;
    int32_t max_len;
  };

  /// Per-term (tf, len) box and the term's span in blocks_.
  struct TermBound {
    int32_t max_tf = 0;
    int32_t min_tf = 0;
    int32_t min_len = 0;
    int32_t max_len = 0;
    uint32_t block_off = 0;
    uint32_t num_blocks = 0;
  };

  explicit SpecializedIndex(Analyzer analyzer)
      : analyzer_(std::move(analyzer)) {}

  /// Builds term_bounds_/blocks_ once all postings are in (Build tail).
  void BuildImpactBounds();

  Analyzer analyzer_;
  StringDict dict_{0};  // term -> dense id
  std::vector<std::vector<Posting>> postings_;
  std::vector<int64_t> doc_ids_;   // dense doc index -> external docID
  std::vector<int32_t> doc_lens_;  // dense doc index -> length
  int64_t num_docs_ = 0;
  double avg_doc_len_ = 0.0;
  std::vector<Block> blocks_;
  std::vector<TermBound> term_bounds_;
};

}  // namespace spindle
