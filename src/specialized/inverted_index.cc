#include "specialized/inverted_index.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace spindle {

Result<SpecializedIndex> SpecializedIndex::Build(const RelationPtr& docs,
                                                 const Analyzer& analyzer) {
  auto id_field = docs->schema().FindField("docID");
  auto data_field = docs->schema().FindField("data");
  size_t id_col = id_field.value_or(0);
  size_t data_col = data_field.value_or(1);
  if (docs->num_columns() < 2 ||
      docs->column(id_col).type() != DataType::kInt64 ||
      docs->column(data_col).type() != DataType::kString) {
    return Status::InvalidArgument(
        "SpecializedIndex needs (docID: int64, data: string), got " +
        docs->schema().ToString());
  }

  SpecializedIndex index(analyzer);
  index.num_docs_ = static_cast<int64_t>(docs->num_rows());
  index.doc_ids_.reserve(docs->num_rows());
  index.doc_lens_.reserve(docs->num_rows());

  int64_t total_len = 0;
  std::unordered_map<int64_t, int32_t> term_freqs;
  for (size_t r = 0; r < docs->num_rows(); ++r) {
    const std::string& text = docs->column(data_col).StringAt(r);
    std::vector<Token> tokens = index.analyzer_.Analyze(text);
    term_freqs.clear();
    for (const Token& tok : tokens) {
      int64_t tid = index.dict_.Intern(tok.text);
      if (tid >= static_cast<int64_t>(index.postings_.size())) {
        index.postings_.resize(tid + 1);
      }
      term_freqs[tid]++;
    }
    int64_t dense_doc = static_cast<int64_t>(index.doc_ids_.size());
    index.doc_ids_.push_back(docs->column(id_col).Int64At(r));
    index.doc_lens_.push_back(static_cast<int32_t>(tokens.size()));
    total_len += static_cast<int64_t>(tokens.size());
    for (const auto& [tid, tf] : term_freqs) {
      index.postings_[tid].push_back(Posting{dense_doc, tf});
    }
  }
  index.avg_doc_len_ =
      index.num_docs_ == 0
          ? 0.0
          : static_cast<double>(total_len) / index.num_docs_;
  return index;
}

const std::vector<SpecializedIndex::Posting>* SpecializedIndex::PostingsFor(
    const std::string& term) const {
  int64_t tid = dict_.Lookup(term);
  if (tid < 0) return nullptr;
  return &postings_[tid];
}

std::vector<ScoredDoc> SpecializedIndex::SearchBm25(
    const std::string& query, size_t k, const Bm25Params& params) const {
  std::vector<Token> qtokens = analyzer_.Analyze(query);
  const double avgdl = avg_doc_len_ > 0 ? avg_doc_len_ : 1.0;
  const double n = static_cast<double>(num_docs_);

  std::unordered_map<int64_t, double> acc;  // dense doc -> score
  for (const Token& tok : qtokens) {
    int64_t tid = dict_.Lookup(tok.text);
    if (tid < 0) continue;
    const auto& plist = postings_[tid];
    const double df = static_cast<double>(plist.size());
    const double idf = std::log((n - df + 0.5) / (df + 0.5));
    for (const Posting& p : plist) {
      const double tf = static_cast<double>(p.tf);
      const double len = static_cast<double>(doc_lens_[p.doc]);
      const double w =
          idf * tf /
          (tf + params.k1 * (1.0 - params.b + params.b * len / avgdl));
      acc[p.doc] += w;
    }
  }

  std::vector<ScoredDoc> results;
  results.reserve(acc.size());
  for (const auto& [dense, score] : acc) {
    results.push_back(ScoredDoc{doc_ids_[dense], score});
  }
  auto better = [](const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc_id < b.doc_id;
  };
  if (k < results.size()) {
    std::partial_sort(results.begin(), results.begin() + k, results.end(),
                      better);
    results.resize(k);
  } else {
    std::sort(results.begin(), results.end(), better);
  }
  return results;
}

}  // namespace spindle
