#include "specialized/inverted_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

namespace spindle {

Result<SpecializedIndex> SpecializedIndex::Build(const RelationPtr& docs,
                                                 const Analyzer& analyzer) {
  auto id_field = docs->schema().FindField("docID");
  auto data_field = docs->schema().FindField("data");
  size_t id_col = id_field.value_or(0);
  size_t data_col = data_field.value_or(1);
  if (docs->num_columns() < 2 ||
      docs->column(id_col).type() != DataType::kInt64 ||
      docs->column(data_col).type() != DataType::kString) {
    return Status::InvalidArgument(
        "SpecializedIndex needs (docID: int64, data: string), got " +
        docs->schema().ToString());
  }

  SpecializedIndex index(analyzer);
  index.num_docs_ = static_cast<int64_t>(docs->num_rows());
  index.doc_ids_.reserve(docs->num_rows());
  index.doc_lens_.reserve(docs->num_rows());

  int64_t total_len = 0;
  std::unordered_map<int64_t, int32_t> term_freqs;
  for (size_t r = 0; r < docs->num_rows(); ++r) {
    const std::string& text = docs->column(data_col).StringAt(r);
    std::vector<Token> tokens = index.analyzer_.Analyze(text);
    term_freqs.clear();
    for (const Token& tok : tokens) {
      int64_t tid = index.dict_.Intern(tok.text);
      if (tid >= static_cast<int64_t>(index.postings_.size())) {
        index.postings_.resize(tid + 1);
      }
      term_freqs[tid]++;
    }
    int64_t dense_doc = static_cast<int64_t>(index.doc_ids_.size());
    index.doc_ids_.push_back(docs->column(id_col).Int64At(r));
    index.doc_lens_.push_back(static_cast<int32_t>(tokens.size()));
    total_len += static_cast<int64_t>(tokens.size());
    for (const auto& [tid, tf] : term_freqs) {
      index.postings_[tid].push_back(Posting{dense_doc, tf});
    }
  }
  index.avg_doc_len_ =
      index.num_docs_ == 0
          ? 0.0
          : static_cast<double>(total_len) / index.num_docs_;
  index.BuildImpactBounds();
  return index;
}

void SpecializedIndex::BuildImpactBounds() {
  // Postings are appended in dense-doc order during Build, so every list
  // is already doc-sorted — block last_doc values are valid skip bounds.
  term_bounds_.assign(postings_.size(), TermBound{});
  blocks_.clear();
  for (size_t tid = 0; tid < postings_.size(); ++tid) {
    const auto& plist = postings_[tid];
    TermBound& tb = term_bounds_[tid];
    tb.block_off = static_cast<uint32_t>(blocks_.size());
    tb.max_tf = 0;
    tb.min_tf = std::numeric_limits<int32_t>::max();
    tb.min_len = std::numeric_limits<int32_t>::max();
    tb.max_len = 0;
    for (size_t i = 0; i < plist.size(); i += kBlockSize) {
      size_t end = std::min(plist.size(), i + kBlockSize);
      Block blk;
      blk.last_doc = plist[end - 1].doc;
      blk.max_tf = 0;
      blk.min_tf = std::numeric_limits<int32_t>::max();
      blk.min_len = std::numeric_limits<int32_t>::max();
      blk.max_len = 0;
      for (size_t j = i; j < end; ++j) {
        int32_t len = doc_lens_[plist[j].doc];
        blk.max_tf = std::max(blk.max_tf, plist[j].tf);
        blk.min_tf = std::min(blk.min_tf, plist[j].tf);
        blk.min_len = std::min(blk.min_len, len);
        blk.max_len = std::max(blk.max_len, len);
      }
      blocks_.push_back(blk);
      tb.max_tf = std::max(tb.max_tf, blk.max_tf);
      tb.min_tf = std::min(tb.min_tf, blk.min_tf);
      tb.min_len = std::min(tb.min_len, blk.min_len);
      tb.max_len = std::max(tb.max_len, blk.max_len);
    }
    tb.num_blocks = static_cast<uint32_t>(blocks_.size()) - tb.block_off;
    if (plist.empty()) {
      tb.min_tf = 0;
      tb.min_len = 0;
    }
  }
}

const std::vector<SpecializedIndex::Posting>* SpecializedIndex::PostingsFor(
    const std::string& term) const {
  int64_t tid = dict_.Lookup(term);
  if (tid < 0) return nullptr;
  return &postings_[tid];
}

std::vector<ScoredDoc> SpecializedIndex::SearchBm25(
    const std::string& query, size_t k, const Bm25Params& params) const {
  std::vector<Token> qtokens = analyzer_.Analyze(query);
  const double avgdl = avg_doc_len_ > 0 ? avg_doc_len_ : 1.0;
  const double n = static_cast<double>(num_docs_);

  std::unordered_map<int64_t, double> acc;  // dense doc -> score
  for (const Token& tok : qtokens) {
    int64_t tid = dict_.Lookup(tok.text);
    if (tid < 0) continue;
    const auto& plist = postings_[tid];
    const double df = static_cast<double>(plist.size());
    const double idf = std::log((n - df + 0.5) / (df + 0.5));
    for (const Posting& p : plist) {
      const double tf = static_cast<double>(p.tf);
      const double len = static_cast<double>(doc_lens_[p.doc]);
      const double w =
          idf * tf /
          (tf + params.k1 * (1.0 - params.b + params.b * len / avgdl));
      acc[p.doc] += w;
    }
  }

  std::vector<ScoredDoc> results;
  results.reserve(acc.size());
  for (const auto& [dense, score] : acc) {
    results.push_back(ScoredDoc{doc_ids_[dense], score});
  }
  auto better = [](const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc_id < b.doc_id;
  };
  if (k < results.size()) {
    std::partial_sort(results.begin(), results.begin() + k, results.end(),
                      better);
    results.resize(k);
  } else {
    std::sort(results.begin(), results.end(), better);
  }
  return results;
}

namespace {

/// Pruning slack mirroring the relational fused path: bounds are summed in
/// a different association order than exact scores, so only prune when the
/// bound is below the threshold by more than accumulated-ulp headroom.
inline double DaatSlack(double bound, double threshold) {
  return 1e-9 * (1.0 + std::fabs(bound) + std::fabs(threshold));
}

}  // namespace

std::vector<ScoredDoc> SpecializedIndex::SearchBm25Daat(
    const std::string& query, size_t k, const Bm25Params& params,
    PruningStats* stats) const {
  std::vector<Token> qtokens = analyzer_.Analyze(query);
  const double avgdl = avg_doc_len_ > 0 ? avg_doc_len_ : 1.0;
  const double n = static_cast<double>(num_docs_);
  PruningStats local;

  // One entry per query-token occurrence (duplicates score once per
  // occurrence, exactly as in SearchBm25's accumulator loop).
  struct Entry {
    const Posting* plist;
    size_t size;
    const Block* blocks;
    size_t num_blocks;
    double idf;
    double ub;
    size_t pos = 0;
  };
  // The exact per-posting contribution SearchBm25 computes, same shape.
  auto contribution = [&](const Entry& e, double tf, double len) {
    return e.idf * tf /
           (tf + params.k1 * (1.0 - params.b + params.b * len / avgdl));
  };
  // Box upper bound via the four corners: the contribution is monotone in
  // tf and len separately (direction depending on idf's sign), so the
  // corner maximum dominates every posting in the box.
  auto box_bound = [&](const Entry& e, int32_t min_tf, int32_t max_tf,
                       int32_t min_len, int32_t max_len) {
    const double tl = static_cast<double>(min_tf);
    const double th = static_cast<double>(max_tf);
    const double ll = static_cast<double>(min_len);
    const double lh = static_cast<double>(max_len);
    double u = contribution(e, tl, ll);
    u = std::max(u, contribution(e, tl, lh));
    u = std::max(u, contribution(e, th, ll));
    u = std::max(u, contribution(e, th, lh));
    return u;
  };

  std::vector<Entry> entries;
  entries.reserve(qtokens.size());
  for (const Token& tok : qtokens) {
    int64_t tid = dict_.Lookup(tok.text);
    if (tid < 0 || postings_[tid].empty()) continue;
    const auto& plist = postings_[tid];
    const TermBound& tb = term_bounds_[tid];
    Entry e;
    e.plist = plist.data();
    e.size = plist.size();
    e.blocks = blocks_.data() + tb.block_off;
    e.num_blocks = tb.num_blocks;
    const double df = static_cast<double>(plist.size());
    e.idf = std::log((n - df + 0.5) / (df + 0.5));
    e.ub = box_bound(e, tb.min_tf, tb.max_tf, tb.min_len, tb.max_len);
    entries.push_back(e);
  }

  // Positions e.pos at the first posting with dense doc >= target,
  // jumping whole blocks via their last_doc skip bound.
  auto advance_to = [&local](Entry& e, int64_t target) {
    if (e.pos >= e.size) return false;
    if (e.plist[e.pos].doc >= target) return true;
    size_t b = e.pos / kBlockSize;
    while (b < e.num_blocks && e.blocks[b].last_doc < target) {
      ++b;
      ++local.blocks_skipped;
    }
    if (b >= e.num_blocks) {
      e.pos = e.size;
      return false;
    }
    size_t begin = std::max(e.pos, b * kBlockSize);
    size_t end = std::min(e.size, (b + 1) * kBlockSize);
    e.pos = static_cast<size_t>(
        std::lower_bound(e.plist + begin, e.plist + end, target,
                         [](const Posting& p, int64_t t) {
                           return p.doc < t;
                         }) -
        e.plist);
    return e.pos < e.size;
  };

  const size_t ne = entries.size();
  // MaxScore partition: occurrence indices by ascending upper bound with
  // prefix sums; the prefix that provably cannot reach the threshold is
  // non-essential.
  std::vector<size_t> order(ne);
  for (size_t i = 0; i < ne; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return entries[a].ub < entries[b].ub;
  });
  // Bounds are clamped at 0 in sums: a negative bound (negative-idf term)
  // only applies when the term is present; absence contributes exactly 0.
  std::vector<double> prefix(ne + 1, 0.0);
  for (size_t i = 0; i < ne; ++i) {
    prefix[i + 1] = prefix[i] + std::max(entries[order[i]].ub, 0.0);
  }

  // Bounded heap under the result order (score desc, external docID asc);
  // top() is the current worst, i.e. the pruning threshold.
  auto beats = [](const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc_id < b.doc_id;
  };
  std::vector<ScoredDoc> heap;
  heap.reserve(k + 1);
  const auto neg_inf = -std::numeric_limits<double>::infinity();
  std::vector<double> contrib(ne, 0.0);
  std::vector<char> present(ne, 0);

  size_t first_essential = 0;
  while (k > 0 && ne > 0) {
    const double theta = heap.size() == k ? heap.front().score : neg_inf;
    while (first_essential < ne &&
           prefix[first_essential + 1] +
                   DaatSlack(prefix[first_essential + 1], theta) <
               theta) {
      ++first_essential;
    }
    if (first_essential >= ne) break;

    int64_t d = std::numeric_limits<int64_t>::max();
    for (size_t i = first_essential; i < ne; ++i) {
      const Entry& e = entries[order[i]];
      if (e.pos < e.size && e.plist[e.pos].doc < d) d = e.plist[e.pos].doc;
    }
    if (d == std::numeric_limits<int64_t>::max()) break;

    const double len = static_cast<double>(doc_lens_[d]);

    // Block-max refinement before touching term frequencies.
    double quick = prefix[first_essential];
    for (size_t i = first_essential; i < ne; ++i) {
      const Entry& e = entries[order[i]];
      if (e.pos < e.size && e.plist[e.pos].doc == d) {
        const Block& blk = e.blocks[e.pos / kBlockSize];
        quick += box_bound(e, blk.min_tf, blk.max_tf, blk.min_len,
                           blk.max_len);
      } else {
        quick += std::max(e.ub, 0.0);
      }
    }
    bool rejected = quick + DaatSlack(quick, theta) < theta;

    double tracking = 0.0;
    if (!rejected) {
      std::fill(present.begin(), present.end(), 0);
      for (size_t i = first_essential; i < ne; ++i) {
        Entry& e = entries[order[i]];
        if (e.pos < e.size && e.plist[e.pos].doc == d) {
          size_t occ = order[i];
          contrib[occ] = contribution(
              e, static_cast<double>(e.plist[e.pos].tf), len);
          present[occ] = 1;
          tracking += contrib[occ];
        }
      }
      for (size_t i = first_essential; i-- > 0;) {
        double bound = tracking + prefix[i + 1];
        if (bound + DaatSlack(bound, theta) < theta) {
          rejected = true;
          break;
        }
        Entry& e = entries[order[i]];
        if (advance_to(e, d) && e.plist[e.pos].doc == d) {
          size_t occ = order[i];
          contrib[occ] = contribution(
              e, static_cast<double>(e.plist[e.pos].tf), len);
          present[occ] = 1;
          tracking += contrib[occ];
        }
      }
    }

    if (rejected) {
      local.docs_skipped++;
    } else {
      // Canonical fold in query-occurrence order — the association order
      // of SearchBm25's accumulator, so scores are bit-identical.
      double score = 0.0;
      for (size_t occ = 0; occ < ne; ++occ) {
        if (present[occ]) score += contrib[occ];
      }
      local.docs_scored++;
      ScoredDoc cand{doc_ids_[d], score};
      if (heap.size() < k) {
        heap.push_back(cand);
        std::push_heap(heap.begin(), heap.end(), beats);
      } else if (beats(cand, heap.front())) {
        std::pop_heap(heap.begin(), heap.end(), beats);
        heap.back() = cand;
        std::push_heap(heap.begin(), heap.end(), beats);
      }
    }

    for (size_t i = first_essential; i < ne; ++i) {
      Entry& e = entries[order[i]];
      if (e.pos < e.size && e.plist[e.pos].doc == d) {
        ++e.pos;
        advance_to(e, d + 1);
      }
    }
  }

  std::vector<ScoredDoc> results(heap.begin(), heap.end());
  std::sort(results.begin(), results.end(), beats);
  if (stats != nullptr) {
    stats->docs_scored += local.docs_scored;
    stats->docs_skipped += local.docs_skipped;
    stats->blocks_skipped += local.blocks_skipped;
  }
  return results;
}

}  // namespace spindle
