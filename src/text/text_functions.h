/// \file text_functions.h
/// \brief Registers the text UDFs into an engine FunctionRegistry.
///
/// These are the paper's "only additions needed to MonetDB": a tokenizer
/// (exposed as the relational Tokenize operator in src/ir) and Snowball
/// stemmers, exposed here as the scalar function
///   stem(term, language)   e.g.  stem(lcase($1), "sb-english").

#pragma once

#include "engine/expr.h"

namespace spindle {

/// \brief Registers `stem` (and `stop_en`, a stopword predicate) into
/// `registry`. Idempotent.
void RegisterTextFunctions(FunctionRegistry& registry);

}  // namespace spindle
