/// \file stemmer.h
/// \brief Stemmer interface and registry.
///
/// The paper (§2.1) extends MonetDB with "Snowball stemmers for several
/// languages" as a UDF. Spindle ships:
///   - "sb-english" (aliases "english", "porter2"): a full implementation
///     of the Snowball English stemmer;
///   - "s-english": Harman's weak s-stemmer;
///   - "sb-dutch", "sb-german", "sb-french": light suffix-stripping
///     approximations of the corresponding Snowball stemmers (documented
///     substitutions — full algorithms are out of reproduction scope);
///   - "none": identity.

#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace spindle {

/// \brief Maps a token to its stem. Implementations are stateless and
/// thread-compatible.
class Stemmer {
 public:
  virtual ~Stemmer() = default;

  /// \brief Stems one (already lowercased) token.
  virtual std::string Stem(std::string_view word) const = 0;

  /// \brief The registry name of this stemmer.
  virtual std::string_view name() const = 0;
};

/// \brief Returns the stemmer registered under `name` (see file comment for
/// the available names), or NotFound.
Result<const Stemmer*> GetStemmer(const std::string& name);

/// \brief Names of all registered stemmers, sorted.
std::vector<std::string> ListStemmers();

/// \brief The Snowball English (Porter2) stemmer; exposed directly for
/// unit tests.
const Stemmer& SnowballEnglish();

}  // namespace spindle
