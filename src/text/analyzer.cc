#include "text/analyzer.h"

#include "common/str.h"
#include "text/stopwords.h"

namespace spindle {

std::string AnalyzerOptions::Signature() const {
  std::string sig = "analyzer(lc=";
  sig += lowercase ? "1" : "0";
  sig += ",stem=" + stemmer;
  sig += ",stop=";
  sig += remove_stopwords ? "1" : "0";
  sig += ",min=" + std::to_string(tokenizer.min_token_len);
  sig += ",max=" + std::to_string(tokenizer.max_token_len);
  sig += ",num=";
  sig += tokenizer.keep_numbers ? "1" : "0";
  sig += ")";
  return sig;
}

Result<Analyzer> Analyzer::Make(const AnalyzerOptions& options) {
  SPINDLE_ASSIGN_OR_RETURN(const Stemmer* stemmer,
                           GetStemmer(options.stemmer));
  return Analyzer(options, stemmer);
}

std::vector<Token> Analyzer::Analyze(std::string_view text) const {
  std::vector<Token> tokens = Tokenize(text, options_.tokenizer);
  std::vector<Token> out;
  out.reserve(tokens.size());
  for (auto& tok : tokens) {
    std::string term =
        options_.lowercase ? ToLowerAscii(tok.text) : tok.text;
    if (options_.remove_stopwords && IsEnglishStopword(term)) continue;
    term = stemmer_->Stem(term);
    if (term.empty()) continue;
    out.push_back(Token{std::move(term), tok.pos});
  }
  return out;
}

std::string Analyzer::AnalyzeTerm(std::string_view token) const {
  std::string term =
      options_.lowercase ? ToLowerAscii(token) : std::string(token);
  if (options_.remove_stopwords && IsEnglishStopword(term)) return "";
  return stemmer_->Stem(term);
}

}  // namespace spindle
