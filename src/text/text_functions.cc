#include "text/text_functions.h"

#include "text/stemmer.h"
#include "text/stopwords.h"

namespace spindle {

void RegisterTextFunctions(FunctionRegistry& registry) {
  registry.Register(
      "stem",
      [](const std::vector<Column>& args, size_t nrows) -> Result<Column> {
        if (args.size() != 2) {
          return Status::InvalidArgument("stem expects (term, language)");
        }
        if (args[0].type() != DataType::kString ||
            args[1].type() != DataType::kString) {
          return Status::TypeMismatch("stem requires string arguments");
        }
        const Column& terms = args[0];
        const Column& langs = args[1];
        size_t out_n = (terms.size() == 1 && langs.size() == 1) ? 1 : nrows;
        std::vector<std::string> out(out_n);
        // Fast path: constant language (the common case).
        if (langs.size() == 1) {
          SPINDLE_ASSIGN_OR_RETURN(const Stemmer* stemmer,
                                   GetStemmer(langs.StringAt(0)));
          for (size_t r = 0; r < out_n; ++r) {
            out[r] = stemmer->Stem(terms.StringAt(terms.size() == 1 ? 0 : r));
          }
        } else {
          for (size_t r = 0; r < out_n; ++r) {
            SPINDLE_ASSIGN_OR_RETURN(
                const Stemmer* stemmer,
                GetStemmer(langs.StringAt(langs.size() == 1 ? 0 : r)));
            out[r] = stemmer->Stem(terms.StringAt(terms.size() == 1 ? 0 : r));
          }
        }
        return Column::MakeString(std::move(out));
      });

  registry.Register(
      "stop_en",
      [](const std::vector<Column>& args, size_t nrows) -> Result<Column> {
        if (args.size() != 1 || args[0].type() != DataType::kString) {
          return Status::InvalidArgument("stop_en expects a string argument");
        }
        size_t out_n = args[0].size() == 1 ? 1 : nrows;
        std::vector<int64_t> out(out_n);
        for (size_t r = 0; r < out_n; ++r) {
          out[r] = IsEnglishStopword(
                       args[0].StringAt(args[0].size() == 1 ? 0 : r))
                       ? 1
                       : 0;
        }
        return Column::MakeInt64(std::move(out));
      });
}

}  // namespace spindle
