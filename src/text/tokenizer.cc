#include "text/tokenizer.h"

#include <cctype>

namespace spindle {

namespace {

bool IsTokenChar(unsigned char c, bool keep_numbers) {
  if (c >= 0x80) return true;  // UTF-8 continuation/lead bytes
  if (std::isalpha(c)) return true;
  if (keep_numbers && std::isdigit(c)) return true;
  return false;
}

}  // namespace

std::vector<Token> Tokenize(std::string_view text,
                            const TokenizerOptions& options) {
  std::vector<Token> tokens;
  int64_t pos = 0;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    if (!IsTokenChar(static_cast<unsigned char>(text[i]),
                     options.keep_numbers)) {
      ++i;
      continue;
    }
    size_t start = i;
    while (i < n) {
      unsigned char c = static_cast<unsigned char>(text[i]);
      if (IsTokenChar(c, options.keep_numbers)) {
        ++i;
      } else if (c == '\'' && i > start && i + 1 < n &&
                 IsTokenChar(static_cast<unsigned char>(text[i + 1]),
                             options.keep_numbers)) {
        ++i;  // in-word apostrophe
      } else {
        break;
      }
    }
    size_t len = i - start;
    if (len >= options.min_token_len && len <= options.max_token_len) {
      tokens.push_back(Token{std::string(text.substr(start, len)), pos});
    }
    ++pos;
  }
  return tokens;
}

}  // namespace spindle
