/// \file simple_stemmers.cc
/// \brief The weak s-stemmer and light suffix strippers for Dutch, German
/// and French, plus the identity stemmer and the stemmer registry.
///
/// The non-English stemmers are *documented approximations* of the Snowball
/// algorithms (see DESIGN.md): longest-suffix stripping with a minimum stem
/// length, which preserves the behaviour that matters for the reproduction —
/// conflating inflected forms so that on-demand indexing under different
/// `stemming language` parameters produces different term spaces.

#include <algorithm>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/str.h"
#include "text/stemmer.h"

namespace spindle {
namespace internal {
// Implemented in german.cc / dutch.cc / porter1.cc.
std::string StemGerman(std::string_view word);
std::string StemDutch(std::string_view word);
std::string StemPorter1(std::string_view word);
}  // namespace internal

namespace {

/// Adapts a free stemming function to the Stemmer interface.
class FnStemmer : public Stemmer {
 public:
  using Fn = std::string (*)(std::string_view);
  FnStemmer(std::string name, Fn fn) : name_(std::move(name)), fn_(fn) {}
  std::string Stem(std::string_view word) const override {
    return fn_(word);
  }
  std::string_view name() const override { return name_; }

 private:
  std::string name_;
  Fn fn_;
};

class IdentityStemmer : public Stemmer {
 public:
  std::string Stem(std::string_view word) const override {
    return std::string(word);
  }
  std::string_view name() const override { return "none"; }
};

/// Harman's weak "s-stemmer": only plural suffixes.
class SStemmer : public Stemmer {
 public:
  std::string Stem(std::string_view word) const override {
    std::string w = ToLowerAscii(word);
    size_t n = w.size();
    if (n > 3 && w.ends_with("ies") && !w.ends_with("eies") &&
        !w.ends_with("aies")) {
      w.replace(n - 3, 3, "y");
    } else if (n > 2 && w.ends_with("es") && !w.ends_with("aes") &&
               !w.ends_with("ees") && !w.ends_with("oes")) {
      w.erase(n - 1);  // "es" -> "e"
    } else if (n > 2 && w.ends_with("s") && !w.ends_with("us") &&
               !w.ends_with("ss")) {
      w.erase(n - 1);
    }
    return w;
  }
  std::string_view name() const override { return "s-english"; }
};

struct SuffixRule {
  std::string_view suffix;
  std::string_view repl;
};

/// Longest-match suffix stripper with a minimum remaining stem length.
class LightStemmer : public Stemmer {
 public:
  LightStemmer(std::string name, std::vector<SuffixRule> rules,
               size_t min_stem)
      : name_(std::move(name)), rules_(std::move(rules)),
        min_stem_(min_stem) {
    std::stable_sort(rules_.begin(), rules_.end(),
                     [](const SuffixRule& a, const SuffixRule& b) {
                       return a.suffix.size() > b.suffix.size();
                     });
  }

  std::string Stem(std::string_view word) const override {
    std::string w = ToLowerAscii(word);
    for (const auto& rule : rules_) {
      if (w.size() >= rule.suffix.size() + min_stem_ &&
          std::string_view(w).substr(w.size() - rule.suffix.size()) ==
              rule.suffix) {
        w.replace(w.size() - rule.suffix.size(), rule.suffix.size(),
                  rule.repl);
        break;
      }
    }
    return w;
  }
  std::string_view name() const override { return name_; }

 private:
  std::string name_;
  std::vector<SuffixRule> rules_;
  size_t min_stem_;
};

const LightStemmer& FrenchLight() {
  static const LightStemmer* instance = new LightStemmer(
      "sb-french",
      {{"issement", ""},
       {"issant", ""},
       {"ements", ""},
       {"ement", ""},
       {"ments", "ment"},
       {"euses", "eux"},
       {"euse", "eux"},
       {"elles", "el"},
       {"elle", "el"},
       {"ives", "if"},
       {"ive", "if"},
       {"ites", "ite"},
       {"ations", "ation"},
       {"aux", "al"},
       {"ales", "al"},
       {"ale", "al"},
       {"ees", "e"},
       {"ee", "e"},
       {"es", ""},
       {"er", ""},
       {"ez", ""},
       {"s", ""}},
      3);
  return *instance;
}

}  // namespace

Result<const Stemmer*> GetStemmer(const std::string& name) {
  static const IdentityStemmer* identity = new IdentityStemmer();
  static const SStemmer* s_stemmer = new SStemmer();
  static const std::map<std::string, const Stemmer*>* registry = [] {
    auto* m = new std::map<std::string, const Stemmer*>();
    (*m)["none"] = identity;
    (*m)["s-english"] = s_stemmer;
    (*m)["sb-english"] = &SnowballEnglish();
    (*m)["english"] = &SnowballEnglish();
    (*m)["porter2"] = &SnowballEnglish();
    (*m)["sb-dutch"] = new FnStemmer("sb-dutch", &internal::StemDutch);
    (*m)["sb-german"] =
        new FnStemmer("sb-german", &internal::StemGerman);
    (*m)["sb-french"] = &FrenchLight();
    (*m)["porter1"] = new FnStemmer("porter1", &internal::StemPorter1);
    return m;
  }();
  auto it = registry->find(name);
  if (it == registry->end()) {
    return Status::NotFound("no stemmer named '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> ListStemmers() {
  return {"none",    "s-english", "sb-english", "english", "porter2",
          "porter1", "sb-dutch",  "sb-german",  "sb-french"};
}

}  // namespace spindle
