/// \file dutch.cc
/// \brief Full implementation of the Snowball Dutch stemmer.
///
/// Follows the published algorithm: accent removal, y/i protection,
/// regions R1 (adjusted to leave >= 3 letters) and R2, steps 1, 2, 3a,
/// 3b, 4 (vowel undoubling) and the postlude. UTF-8 accented vowels fold
/// to their base letter during the prelude (documented deviation; they
/// are vowels either way).

#include <string>
#include <string_view>

#include "common/str.h"
#include "text/stemmer.h"

namespace spindle {
namespace {

bool IsVowel(char c) {
  return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u' ||
         c == 'y';
}

class DutchSnowball {
 public:
  std::string Run(std::string word) {
    w_ = std::move(word);
    Prelude();
    if (w_.size() <= 2) {
      Postlude();
      return w_;
    }
    ComputeRegions();
    Step1();
    Step2();
    Step3a();
    Step3b();
    Step4();
    Postlude();
    return w_;
  }

 private:
  bool Ends(std::string_view suf) const {
    return w_.size() >= suf.size() &&
           std::string_view(w_).substr(w_.size() - suf.size()) == suf;
  }
  bool InR1(size_t suf_len) const { return w_.size() - suf_len >= r1_; }
  bool InR2(size_t suf_len) const { return w_.size() - suf_len >= r2_; }
  void Drop(size_t n) { w_.erase(w_.size() - n); }

  void Undouble() {
    if (Ends("kk") || Ends("dd") || Ends("tt")) Drop(1);
  }

  /// A valid en-ending: preceded by a non-vowel, and not by "gem".
  bool ValidEnEnding(size_t suf_len) const {
    size_t n = w_.size() - suf_len;
    if (n == 0 || IsVowel(w_[n - 1])) return false;
    if (n >= 3 && std::string_view(w_).substr(n - 3, 3) == "gem") {
      return false;
    }
    return true;
  }

  /// A valid s-ending: a non-vowel other than j.
  bool ValidSEnding(size_t suf_len) const {
    size_t n = w_.size() - suf_len;
    return n > 0 && !IsVowel(w_[n - 1]) && w_[n - 1] != 'j';
  }

  void Prelude() {
    // Fold UTF-8 accented vowels (umlauts, acutes, grave e).
    std::string out;
    out.reserve(w_.size());
    for (size_t i = 0; i < w_.size(); ++i) {
      unsigned char c = static_cast<unsigned char>(w_[i]);
      if (c == 0xC3 && i + 1 < w_.size()) {
        unsigned char d = static_cast<unsigned char>(w_[i + 1]);
        ++i;
        switch (d) {
          case 0xA4:  // ä
          case 0xA1:  // á
            out.push_back('a');
            continue;
          case 0xAB:  // ë
          case 0xA9:  // é
          case 0xA8:  // è
            out.push_back('e');
            continue;
          case 0xAF:  // ï
          case 0xAD:  // í
            out.push_back('i');
            continue;
          case 0xB6:  // ö
          case 0xB3:  // ó
            out.push_back('o');
            continue;
          case 0xBC:  // ü
          case 0xBA:  // ú
            out.push_back('u');
            continue;
          default:
            out.push_back(static_cast<char>(c));
            out.push_back(static_cast<char>(d));
            continue;
        }
      }
      out.push_back(static_cast<char>(c));
    }
    w_ = std::move(out);
    // Protect initial y, y after vowel, and i between vowels.
    for (size_t i = 0; i < w_.size(); ++i) {
      if (w_[i] == 'y' && (i == 0 || IsVowel(w_[i - 1]))) {
        w_[i] = 'Y';
      } else if (w_[i] == 'i' && i > 0 && i + 1 < w_.size() &&
                 IsVowel(w_[i - 1]) && IsVowel(w_[i + 1])) {
        w_[i] = 'I';
      }
    }
  }

  void ComputeRegions() {
    size_t n = w_.size();
    r1_ = n;
    for (size_t i = 1; i < n; ++i) {
      if (!IsVowel(w_[i]) && IsVowel(w_[i - 1])) {
        r1_ = i + 1;
        break;
      }
    }
    if (r1_ < 3) r1_ = 3;
    r2_ = n;
    for (size_t i = r1_ + 1; i < n; ++i) {
      if (!IsVowel(w_[i]) && IsVowel(w_[i - 1])) {
        r2_ = i + 1;
        break;
      }
    }
  }

  void Step1() {
    if (Ends("heden")) {
      if (InR1(5)) {
        Drop(5);
        w_ += "heid";
      }
      return;
    }
    if (Ends("ene") || Ends("en")) {
      size_t len = Ends("ene") ? 3 : 2;
      if (InR1(len) && ValidEnEnding(len)) {
        Drop(len);
        Undouble();
      }
      return;
    }
    if (Ends("se") || Ends("s")) {
      size_t len = Ends("se") ? 2 : 1;
      if (InR1(len) && ValidSEnding(len)) Drop(len);
    }
  }

  void Step2() {
    e_removed_ = false;
    size_t n = w_.size();
    if (n >= 2 && w_[n - 1] == 'e' && InR1(1) && !IsVowel(w_[n - 2])) {
      Drop(1);
      e_removed_ = true;
      Undouble();
    }
  }

  void Step3a() {
    if (Ends("heid") && InR2(4) && w_.size() >= 5 &&
        w_[w_.size() - 5] != 'c') {
      Drop(4);
      if (Ends("en") && InR1(2) && ValidEnEnding(2)) {
        Drop(2);
        Undouble();
      }
    }
  }

  void Step3b() {
    if (Ends("end") || Ends("ing")) {
      if (InR2(3)) {
        Drop(3);
        if (Ends("ig") && InR2(2) && w_.size() >= 3 &&
            w_[w_.size() - 3] != 'e') {
          Drop(2);
        } else {
          Undouble();
        }
      }
      return;
    }
    if (Ends("ig")) {
      if (InR2(2) && w_.size() >= 3 && w_[w_.size() - 3] != 'e') Drop(2);
      return;
    }
    if (Ends("lijk")) {
      if (InR2(4)) {
        Drop(4);
        Step2();
      }
      return;
    }
    if (Ends("baar")) {
      if (InR2(4)) Drop(4);
      return;
    }
    if (Ends("bar")) {
      if (InR2(3) && e_removed_) Drop(3);
    }
  }

  void Step4() {
    // Undouble vowel: ...C vv D  ->  ...C v D  (vv in {aa, ee, oo, uu},
    // D a non-vowel other than I).
    size_t n = w_.size();
    if (n < 4) return;
    char d = w_[n - 1];
    char v1 = w_[n - 2], v2 = w_[n - 3];
    char c = w_[n - 4];
    if (!IsVowel(d) && d != 'I' && v1 == v2 &&
        (v1 == 'a' || v1 == 'e' || v1 == 'o' || v1 == 'u') &&
        !IsVowel(c)) {
      w_.erase(n - 2, 1);
    }
  }

  void Postlude() {
    for (char& c : w_) {
      if (c == 'Y') c = 'y';
      if (c == 'I') c = 'i';
    }
  }

  std::string w_;
  size_t r1_ = 0;
  size_t r2_ = 0;
  bool e_removed_ = false;
};

}  // namespace

namespace internal {

std::string StemDutch(std::string_view word) {
  DutchSnowball d;
  return d.Run(ToLowerAscii(word));
}

}  // namespace internal
}  // namespace spindle
