/// \file german.cc
/// \brief Full implementation of the Snowball German stemmer.
///
/// Follows the published algorithm: prelude (ß -> ss; u/y between vowels
/// are protected), regions R1/R2 with the R1-at-least-3-letters
/// adjustment, steps 1-3, and the postlude. One documented deviation: the
/// UTF-8 umlauts ä/ö/ü are folded to a/o/u in the prelude rather than in
/// the postlude — they are vowels either way, so region computation and
/// suffix matching are unaffected.

#include <string>
#include <string_view>

#include "common/str.h"
#include "text/stemmer.h"

namespace spindle {
namespace {

bool IsVowel(char c) {
  return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u' ||
         c == 'y';
}

bool ValidSEnding(char c) {
  switch (c) {
    case 'b':
    case 'd':
    case 'f':
    case 'g':
    case 'h':
    case 'k':
    case 'l':
    case 'm':
    case 'n':
    case 'r':
    case 't':
      return true;
    default:
      return false;
  }
}

bool ValidStEnding(char c) { return ValidSEnding(c) && c != 'r'; }

class GermanSnowball {
 public:
  std::string Run(std::string word) {
    w_ = std::move(word);
    Prelude();
    if (w_.size() <= 2) {
      Postlude();
      return w_;
    }
    ComputeRegions();
    Step1();
    Step2();
    Step3();
    Postlude();
    return w_;
  }

 private:
  bool Ends(std::string_view suf) const {
    return w_.size() >= suf.size() &&
           std::string_view(w_).substr(w_.size() - suf.size()) == suf;
  }
  bool InR1(size_t suf_len) const { return w_.size() - suf_len >= r1_; }
  bool InR2(size_t suf_len) const { return w_.size() - suf_len >= r2_; }
  void Drop(size_t n) { w_.erase(w_.size() - n); }

  void Prelude() {
    // Fold UTF-8 umlauts and ß (documented deviation: done up front).
    std::string out;
    out.reserve(w_.size());
    for (size_t i = 0; i < w_.size(); ++i) {
      unsigned char c = static_cast<unsigned char>(w_[i]);
      if (c == 0xC3 && i + 1 < w_.size()) {
        unsigned char d = static_cast<unsigned char>(w_[i + 1]);
        ++i;
        switch (d) {
          case 0xA4:  // ä
          case 0x84:  // Ä
            out.push_back('a');
            continue;
          case 0xB6:  // ö
          case 0x96:  // Ö
            out.push_back('o');
            continue;
          case 0xBC:  // ü
          case 0x9C:  // Ü
            out.push_back('u');
            continue;
          case 0x9F:  // ß
            out += "ss";
            continue;
          default:
            out.push_back(static_cast<char>(c));
            out.push_back(static_cast<char>(d));
            continue;
        }
      }
      out.push_back(static_cast<char>(c));
    }
    w_ = std::move(out);
    // Protect u and y between vowels from being treated as vowels.
    for (size_t i = 1; i + 1 < w_.size(); ++i) {
      if ((w_[i] == 'u' || w_[i] == 'y') && IsVowel(w_[i - 1]) &&
          IsVowel(w_[i + 1])) {
        w_[i] = static_cast<char>(w_[i] - 'a' + 'A');  // U / Y
      }
    }
  }

  void ComputeRegions() {
    size_t n = w_.size();
    r1_ = n;
    for (size_t i = 1; i < n; ++i) {
      if (!IsVowel(w_[i]) && IsVowel(w_[i - 1])) {
        r1_ = i + 1;
        break;
      }
    }
    // R1 is adjusted so that the region before it contains >= 3 letters.
    if (r1_ < 3) r1_ = 3;
    r2_ = n;
    for (size_t i = r1_ + 1; i < n; ++i) {
      if (!IsVowel(w_[i]) && IsVowel(w_[i - 1])) {
        r2_ = i + 1;
        break;
      }
    }
  }

  void Step1() {
    // Group (a): em, ern, er.
    for (std::string_view suf : {"ern", "em", "er"}) {
      if (Ends(suf)) {
        if (InR1(suf.size())) Drop(suf.size());
        return;
      }
    }
    // Group (b): e, en, es — then undouble a trailing "niss".
    for (std::string_view suf : {"en", "es", "e"}) {
      if (Ends(suf)) {
        if (InR1(suf.size())) {
          Drop(suf.size());
          if (Ends("niss")) Drop(1);
        }
        return;
      }
    }
    // Group (c): s after a valid s-ending.
    if (Ends("s")) {
      if (InR1(1) && w_.size() >= 2 && ValidSEnding(w_[w_.size() - 2])) {
        Drop(1);
      }
    }
  }

  void Step2() {
    for (std::string_view suf : {"est", "en", "er"}) {
      if (Ends(suf)) {
        if (InR1(suf.size())) Drop(suf.size());
        return;
      }
    }
    if (Ends("st")) {
      // Valid st-ending, itself preceded by at least 3 letters.
      if (InR1(2) && w_.size() >= 6 &&
          ValidStEnding(w_[w_.size() - 3])) {
        Drop(2);
      }
    }
  }

  void Step3() {
    if (Ends("end") || Ends("ung")) {
      if (InR2(3)) {
        Drop(3);
        if (Ends("ig") && InR2(2) && w_.size() >= 3 &&
            w_[w_.size() - 3] != 'e') {
          Drop(2);
        }
      }
      return;
    }
    if (Ends("isch")) {
      if (InR2(4) && w_.size() >= 5 && w_[w_.size() - 5] != 'e') {
        Drop(4);
      }
      return;
    }
    if (Ends("ig") || Ends("ik")) {
      if (InR2(2) && w_.size() >= 3 && w_[w_.size() - 3] != 'e') {
        Drop(2);
      }
      return;
    }
    if (Ends("lich") || Ends("heit")) {
      if (InR2(4)) {
        Drop(4);
        if ((Ends("er") || Ends("en")) && InR1(2)) Drop(2);
      }
      return;
    }
    if (Ends("keit")) {
      if (InR2(4)) {
        Drop(4);
        if (Ends("lich") && InR2(4)) {
          Drop(4);
        } else if (Ends("ig") && InR2(2)) {
          Drop(2);
        }
      }
    }
  }

  void Postlude() {
    for (char& c : w_) {
      if (c == 'U') c = 'u';
      if (c == 'Y') c = 'y';
    }
  }

  std::string w_;
  size_t r1_ = 0;
  size_t r2_ = 0;
};

}  // namespace

namespace internal {

/// Exposed for simple_stemmers.cc's registry.
std::string StemGerman(std::string_view word) {
  GermanSnowball g;
  return g.Run(ToLowerAscii(word));
}

}  // namespace internal
}  // namespace spindle
