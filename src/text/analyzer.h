/// \file analyzer.h
/// \brief Configurable text analysis chains.
///
/// An analyzer is the paper's `stem(lcase(token), 'sb-english')` pipeline as
/// a first-class object: tokenize -> lowercase -> (stop filter) -> stem.
/// Because indexing is on-demand, the same raw text can be analyzed under
/// any configuration at any time — no re-ingest required (paper §2.1).

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "text/stemmer.h"
#include "text/tokenizer.h"

namespace spindle {

/// \brief Analyzer configuration. The default matches the paper's example:
/// lowercase + Snowball English, no stop filter.
struct AnalyzerOptions {
  bool lowercase = true;
  /// A stemmer registry name ("sb-english", "none", ...).
  std::string stemmer = "sb-english";
  bool remove_stopwords = false;
  TokenizerOptions tokenizer;

  /// \brief Canonical signature, part of index cache keys: two analyzers
  /// with equal signatures produce identical term spaces.
  std::string Signature() const;
};

/// \brief An immutable, configured analysis chain.
class Analyzer {
 public:
  /// \brief Builds an analyzer; fails if the stemmer name is unknown.
  static Result<Analyzer> Make(const AnalyzerOptions& options);

  /// \brief Full analysis of a document: tokens with their original
  /// positions. Stop-filtered tokens are removed but positions of the
  /// survivors are unchanged.
  std::vector<Token> Analyze(std::string_view text) const;

  /// \brief Analyzes a single already-extracted token (lowercase + stem);
  /// returns an empty string if the token is stop-filtered away.
  std::string AnalyzeTerm(std::string_view token) const;

  const AnalyzerOptions& options() const { return options_; }
  std::string Signature() const { return options_.Signature(); }

 private:
  Analyzer(AnalyzerOptions options, const Stemmer* stemmer)
      : options_(std::move(options)), stemmer_(stemmer) {}

  AnalyzerOptions options_;
  const Stemmer* stemmer_;
};

}  // namespace spindle
