/// \file stopwords.h
/// \brief English stopword list for the optional stop filter.

#pragma once

#include <string>
#include <unordered_set>

namespace spindle {

/// \brief The standard English stopword set (SMART-style subset).
const std::unordered_set<std::string>& EnglishStopwords();

/// \brief True if `word` (lowercase) is an English stopword.
bool IsEnglishStopword(const std::string& word);

}  // namespace spindle
