/// \file porter2.cc
/// \brief Full implementation of the Snowball English ("Porter2") stemmer.
///
/// Follows the published algorithm definition: prelude (apostrophe removal,
/// consonant-y marking), regions R1/R2, steps 0, 1a, 1b, 1c, 2, 3, 4, 5,
/// exceptional forms, and the postlude. Words of length <= 2 are left
/// unchanged.

#include <array>
#include <string>
#include <string_view>

#include "common/str.h"
#include "text/stemmer.h"

namespace spindle {
namespace {

bool IsVowel(char c) {
  return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u' || c == 'y';
}

// Doubles are exactly these nine pairs; note ll/ss/zz are *not* doubles.
bool IsDoubleEnd(const std::string& w) {
  size_t n = w.size();
  if (n < 2 || w[n - 1] != w[n - 2]) return false;
  switch (w[n - 1]) {
    case 'b':
    case 'd':
    case 'f':
    case 'g':
    case 'm':
    case 'n':
    case 'p':
    case 'r':
    case 't':
      return true;
    default:
      return false;
  }
}

bool ValidLiEnding(char c) {
  switch (c) {
    case 'c':
    case 'd':
    case 'e':
    case 'g':
    case 'h':
    case 'k':
    case 'm':
    case 'n':
    case 'r':
    case 't':
      return true;
    default:
      return false;
  }
}

/// True if `w` ends in a short syllable: either VC with the final
/// consonant not w/x/Y and the vowel preceded by a consonant, or a
/// two-letter word starting vowel + consonant.
bool EndsInShortSyllable(const std::string& w) {
  size_t n = w.size();
  if (n == 2 && IsVowel(w[0]) && !IsVowel(w[1])) return true;
  if (n >= 3 && !IsVowel(w[n - 3]) && IsVowel(w[n - 2]) && !IsVowel(w[n - 1]) &&
      w[n - 1] != 'w' && w[n - 1] != 'x' && w[n - 1] != 'Y') {
    return true;
  }
  return false;
}

class Porter2 {
 public:
  std::string Run(std::string word) {
    w_ = std::move(word);
    if (w_.size() <= 2) return w_;

    if (const char* ex = Exception1()) return ex;

    Prelude();
    ComputeRegions();

    Step0();
    Step1a();
    if (Exception2()) {
      Postlude();
      return w_;
    }
    Step1b();
    Step1c();
    Step2();
    Step3();
    Step4();
    Step5();
    Postlude();
    return w_;
  }

 private:
  bool Ends(std::string_view suf) const {
    return w_.size() >= suf.size() &&
           std::string_view(w_).substr(w_.size() - suf.size()) == suf;
  }
  bool InR1(size_t suf_len) const { return w_.size() - suf_len >= r1_; }
  bool InR2(size_t suf_len) const { return w_.size() - suf_len >= r2_; }
  void Replace(size_t suf_len, std::string_view repl) {
    w_.replace(w_.size() - suf_len, suf_len, repl);
  }
  bool HasVowelBefore(size_t suf_len) const {
    for (size_t i = 0; i + suf_len < w_.size(); ++i) {
      if (IsVowel(w_[i])) return true;
    }
    return false;
  }

  const char* Exception1() const {
    struct Pair {
      const char* from;
      const char* to;
    };
    static constexpr std::array<Pair, 18> kMap = {{{"skis", "ski"},
                                                   {"skies", "sky"},
                                                   {"dying", "die"},
                                                   {"lying", "lie"},
                                                   {"tying", "tie"},
                                                   {"idly", "idl"},
                                                   {"gently", "gentl"},
                                                   {"ugly", "ugli"},
                                                   {"early", "earli"},
                                                   {"only", "onli"},
                                                   {"singly", "singl"},
                                                   {"sky", "sky"},
                                                   {"news", "news"},
                                                   {"howe", "howe"},
                                                   {"atlas", "atlas"},
                                                   {"cosmos", "cosmos"},
                                                   {"bias", "bias"},
                                                   {"andes", "andes"}}};
    for (const auto& p : kMap) {
      if (w_ == p.from) return p.to;
    }
    return nullptr;
  }

  bool Exception2() const {
    static constexpr std::array<const char*, 8> kStop = {
        "inning",  "outing", "canning", "herring",
        "earring", "proceed", "exceed",  "succeed"};
    for (const char* s : kStop) {
      if (w_ == s) return true;
    }
    return false;
  }

  void Prelude() {
    if (w_[0] == '\'') w_.erase(0, 1);
    if (w_.empty()) return;
    if (w_[0] == 'y') w_[0] = 'Y';
    for (size_t i = 1; i < w_.size(); ++i) {
      if (w_[i] == 'y' && IsVowel(w_[i - 1])) w_[i] = 'Y';
    }
  }

  void ComputeRegions() {
    size_t n = w_.size();
    r1_ = n;
    // Exceptional prefixes fix R1 directly.
    if (w_.rfind("gener", 0) == 0) {
      r1_ = 5;
    } else if (w_.rfind("commun", 0) == 0) {
      r1_ = 6;
    } else if (w_.rfind("arsen", 0) == 0) {
      r1_ = 5;
    } else {
      for (size_t i = 1; i < n; ++i) {
        if (!IsVowel(w_[i]) && IsVowel(w_[i - 1])) {
          r1_ = i + 1;
          break;
        }
      }
    }
    r2_ = n;
    for (size_t i = r1_ + 1; i < n; ++i) {
      if (!IsVowel(w_[i]) && IsVowel(w_[i - 1])) {
        r2_ = i + 1;
        break;
      }
    }
  }

  void Step0() {
    if (Ends("'s'")) {
      Replace(3, "");
    } else if (Ends("'s")) {
      Replace(2, "");
    } else if (Ends("'")) {
      Replace(1, "");
    }
  }

  void Step1a() {
    if (Ends("sses")) {
      Replace(4, "ss");
    } else if (Ends("ied") || Ends("ies")) {
      Replace(3, w_.size() - 3 > 1 ? "i" : "ie");
    } else if (Ends("us") || Ends("ss")) {
      // leave as is
    } else if (Ends("s")) {
      // Delete if the preceding word part contains a vowel not
      // immediately before the s.
      bool vowel_earlier = false;
      for (size_t i = 0; i + 2 < w_.size(); ++i) {
        if (IsVowel(w_[i])) {
          vowel_earlier = true;
          break;
        }
      }
      if (vowel_earlier) Replace(1, "");
    }
  }

  void Step1b() {
    if (Ends("eedly")) {
      if (InR1(5)) Replace(5, "ee");
      return;
    }
    if (Ends("eed")) {
      if (InR1(3)) Replace(3, "ee");
      return;
    }
    size_t suf = 0;
    if (Ends("ingly") || Ends("edly")) {
      suf = Ends("ingly") ? 5 : 4;
    } else if (Ends("ing")) {
      suf = 3;
    } else if (Ends("ed")) {
      suf = 2;
    } else {
      return;
    }
    if (!HasVowelBefore(suf)) return;
    Replace(suf, "");
    if (Ends("at") || Ends("bl") || Ends("iz")) {
      w_.push_back('e');
    } else if (IsDoubleEnd(w_)) {
      w_.pop_back();
    } else if (EndsInShortSyllable(w_) && r1_ >= w_.size()) {
      w_.push_back('e');
    }
  }

  void Step1c() {
    size_t n = w_.size();
    if (n >= 3 && (w_[n - 1] == 'y' || w_[n - 1] == 'Y') &&
        !IsVowel(w_[n - 2])) {
      w_[n - 1] = 'i';
    }
  }

  void Step2() {
    struct Rule {
      std::string_view suffix;
      std::string_view repl;
    };
    static constexpr std::array<Rule, 22> kRules = {{
        {"ization", "ize"}, {"ational", "ate"}, {"fulness", "ful"},
        {"ousness", "ous"}, {"iveness", "ive"}, {"tional", "tion"},
        {"biliti", "ble"},  {"lessli", "less"}, {"entli", "ent"},
        {"ation", "ate"},   {"alism", "al"},    {"aliti", "al"},
        {"ousli", "ous"},   {"iviti", "ive"},   {"fulli", "ful"},
        {"enci", "ence"},   {"anci", "ance"},   {"abli", "able"},
        {"izer", "ize"},    {"ator", "ate"},    {"alli", "al"},
        {"bli", "ble"},
    }};
    for (const auto& rule : kRules) {
      if (Ends(rule.suffix)) {
        if (InR1(rule.suffix.size())) Replace(rule.suffix.size(), rule.repl);
        return;
      }
    }
    if (Ends("ogi")) {
      if (InR1(3) && w_.size() >= 4 && w_[w_.size() - 4] == 'l') {
        Replace(3, "og");
      }
      return;
    }
    if (Ends("li")) {
      if (InR1(2) && w_.size() >= 3 && ValidLiEnding(w_[w_.size() - 3])) {
        Replace(2, "");
      }
    }
  }

  void Step3() {
    if (Ends("ational")) {
      if (InR1(7)) Replace(7, "ate");
      return;
    }
    if (Ends("tional")) {
      if (InR1(6)) Replace(6, "tion");
      return;
    }
    struct Rule {
      std::string_view suffix;
      std::string_view repl;
    };
    static constexpr std::array<Rule, 4> kRules = {{
        {"alize", "al"},
        {"icate", "ic"},
        {"iciti", "ic"},
        {"ical", "ic"},
    }};
    for (const auto& rule : kRules) {
      if (Ends(rule.suffix)) {
        if (InR1(rule.suffix.size())) Replace(rule.suffix.size(), rule.repl);
        return;
      }
    }
    if (Ends("ative")) {
      if (InR1(5) && InR2(5)) Replace(5, "");
      return;
    }
    if (Ends("ness")) {
      if (InR1(4)) Replace(4, "");
      return;
    }
    if (Ends("ful")) {
      if (InR1(3)) Replace(3, "");
    }
  }

  void Step4() {
    static constexpr std::array<std::string_view, 17> kSuffixes = {
        "ement", "ance", "ence", "able", "ible", "ment", "ant", "ent", "ism",
        "ate",   "iti",  "ous",  "ive",  "ize",  "al",   "er",  "ic"};
    for (std::string_view suf : kSuffixes) {
      if (Ends(suf)) {
        if (InR2(suf.size())) Replace(suf.size(), "");
        return;
      }
    }
    if (Ends("ion")) {
      if (InR2(3) && w_.size() >= 4 &&
          (w_[w_.size() - 4] == 's' || w_[w_.size() - 4] == 't')) {
        Replace(3, "");
      }
    }
  }

  void Step5() {
    size_t n = w_.size();
    if (n == 0) return;
    if (w_[n - 1] == 'e') {
      if (InR2(1)) {
        Replace(1, "");
      } else if (InR1(1)) {
        std::string head = w_.substr(0, n - 1);
        if (!EndsInShortSyllable(head)) Replace(1, "");
      }
    } else if (w_[n - 1] == 'l') {
      if (InR2(1) && n >= 2 && w_[n - 2] == 'l') Replace(1, "");
    }
  }

  void Postlude() {
    for (char& c : w_) {
      if (c == 'Y') c = 'y';
    }
  }

  std::string w_;
  size_t r1_ = 0;
  size_t r2_ = 0;
};

class EnglishStemmer : public Stemmer {
 public:
  std::string Stem(std::string_view word) const override {
    Porter2 p;
    return p.Run(ToLowerAscii(word));
  }
  std::string_view name() const override { return "sb-english"; }
};

}  // namespace

const Stemmer& SnowballEnglish() {
  static const EnglishStemmer* instance = new EnglishStemmer();
  return *instance;
}

}  // namespace spindle
