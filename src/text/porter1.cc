/// \file porter1.cc
/// \brief The original Porter (1980) stemmer — predecessor of the
/// Snowball English algorithm, included for analyzer ablations (E8) and
/// as the classic reference point.
///
/// Implemented from the paper "An algorithm for suffix stripping":
/// measure m of VC sequences, conditions *v*, *d, *o, steps 1a-5b.

#include <string>
#include <string_view>

#include "common/str.h"
#include "text/stemmer.h"

namespace spindle {
namespace {

/// y is a vowel when preceded by a consonant (or at position 0 it is a
/// consonant).
bool IsConsonant(const std::string& w, size_t i) {
  switch (w[i]) {
    case 'a':
    case 'e':
    case 'i':
    case 'o':
    case 'u':
      return false;
    case 'y':
      return i == 0 ? true : !IsConsonant(w, i - 1);
    default:
      return true;
  }
}

class Porter1 {
 public:
  std::string Run(std::string word) {
    w_ = std::move(word);
    if (w_.size() <= 2) return w_;
    Step1a();
    Step1b();
    Step1c();
    Step2();
    Step3();
    Step4();
    Step5a();
    Step5b();
    return w_;
  }

 private:
  bool Ends(std::string_view suf) const {
    return w_.size() >= suf.size() &&
           std::string_view(w_).substr(w_.size() - suf.size()) == suf;
  }

  /// Measure of the stem obtained by removing `suf_len` chars:
  /// the number of VC sequences in [C](VC)^m[V].
  int Measure(size_t suf_len) const {
    size_t n = w_.size() - suf_len;
    int m = 0;
    size_t i = 0;
    while (i < n && IsConsonant(w_, i)) ++i;  // leading consonants
    while (i < n) {
      while (i < n && !IsConsonant(w_, i)) ++i;  // vowels
      if (i >= n) break;
      ++m;
      while (i < n && IsConsonant(w_, i)) ++i;  // consonants
    }
    return m;
  }

  /// *v*: the stem (minus suffix) contains a vowel.
  bool HasVowel(size_t suf_len) const {
    for (size_t i = 0; i + suf_len < w_.size(); ++i) {
      if (!IsConsonant(w_, i)) return true;
    }
    return false;
  }

  /// *d: stem ends with a double consonant.
  bool EndsDoubleConsonant() const {
    size_t n = w_.size();
    return n >= 2 && w_[n - 1] == w_[n - 2] && IsConsonant(w_, n - 1);
  }

  /// *o: stem ends cvc where the final c is not w, x or y.
  bool EndsCvc(size_t suf_len) const {
    size_t n = w_.size() - suf_len;
    if (n < 3) return false;
    if (!IsConsonant(w_, n - 3) || IsConsonant(w_, n - 2) ||
        !IsConsonant(w_, n - 1)) {
      return false;
    }
    char c = w_[n - 1];
    return c != 'w' && c != 'x' && c != 'y';
  }

  void Replace(size_t suf_len, std::string_view repl) {
    w_.replace(w_.size() - suf_len, suf_len, repl);
  }

  /// Applies `suffix -> repl` if the stem measure condition holds.
  /// Returns true if the suffix matched (whether or not replaced).
  bool Rule(std::string_view suffix, std::string_view repl, int min_m) {
    if (!Ends(suffix)) return false;
    if (Measure(suffix.size()) > min_m - 1) {
      Replace(suffix.size(), repl);
    }
    return true;
  }

  void Step1a() {
    if (Ends("sses")) {
      Replace(4, "ss");
    } else if (Ends("ies")) {
      Replace(3, "i");
    } else if (Ends("ss")) {
      // keep
    } else if (Ends("s")) {
      Replace(1, "");
    }
  }

  void Step1b() {
    if (Ends("eed")) {
      if (Measure(3) > 0) Replace(3, "ee");
      return;
    }
    size_t suf = 0;
    if (Ends("ed") && HasVowel(2)) {
      suf = 2;
    } else if (Ends("ing") && HasVowel(3)) {
      suf = 3;
    } else {
      return;
    }
    Replace(suf, "");
    if (Ends("at")) {
      Replace(2, "ate");
    } else if (Ends("bl")) {
      Replace(2, "ble");
    } else if (Ends("iz")) {
      Replace(2, "ize");
    } else if (EndsDoubleConsonant() && !Ends("l") && !Ends("s") &&
               !Ends("z")) {
      w_.pop_back();
    } else if (Measure(0) == 1 && EndsCvc(0)) {
      w_.push_back('e');
    }
  }

  void Step1c() {
    if (Ends("y") && HasVowel(1)) {
      w_[w_.size() - 1] = 'i';
    }
  }

  void Step2() {
    static constexpr struct {
      std::string_view suffix;
      std::string_view repl;
    } kRules[] = {
        {"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
        {"anci", "ance"},   {"izer", "ize"},    {"abli", "able"},
        {"alli", "al"},     {"entli", "ent"},   {"eli", "e"},
        {"ousli", "ous"},   {"ization", "ize"}, {"ation", "ate"},
        {"ator", "ate"},    {"alism", "al"},    {"iveness", "ive"},
        {"fulness", "ful"}, {"ousness", "ous"}, {"aliti", "al"},
        {"iviti", "ive"},   {"biliti", "ble"},
    };
    for (const auto& r : kRules) {
      if (Rule(r.suffix, r.repl, 1)) return;
    }
  }

  void Step3() {
    static constexpr struct {
      std::string_view suffix;
      std::string_view repl;
    } kRules[] = {
        {"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
        {"ical", "ic"},  {"ful", ""},   {"ness", ""},
    };
    for (const auto& r : kRules) {
      if (Rule(r.suffix, r.repl, 1)) return;
    }
  }

  void Step4() {
    static constexpr std::string_view kSuffixes[] = {
        "ement", "ance", "ence", "able", "ible", "ment", "ant", "ent",
        "ism",   "ate",  "iti",  "ous",  "ive",  "ize",  "ou",  "al",
        "er",    "ic",
    };
    for (std::string_view suf : kSuffixes) {
      if (Ends(suf)) {
        if (Measure(suf.size()) > 1) Replace(suf.size(), "");
        return;
      }
    }
    if (Ends("ion")) {
      if (Measure(3) > 1 && w_.size() >= 4 &&
          (w_[w_.size() - 4] == 's' || w_[w_.size() - 4] == 't')) {
        Replace(3, "");
      }
    }
  }

  void Step5a() {
    if (!Ends("e")) return;
    int m = Measure(1);
    if (m > 1 || (m == 1 && !EndsCvc(1))) {
      Replace(1, "");
    }
  }

  void Step5b() {
    if (Measure(0) > 1 && EndsDoubleConsonant() &&
        w_.back() == 'l') {
      w_.pop_back();
    }
  }

  std::string w_;
};

}  // namespace

namespace internal {

std::string StemPorter1(std::string_view word) {
  Porter1 p;
  return p.Run(ToLowerAscii(word));
}

}  // namespace internal
}  // namespace spindle
