/// \file tokenizer.h
/// \brief The text tokenizer (the paper's first MonetDB UDF).
///
/// Splits raw text into tokens and token positions. A token is a maximal
/// run of ASCII alphanumerics or non-ASCII bytes; a single apostrophe
/// between two letters stays inside the token ("don't"), which lets the
/// Snowball stemmer handle possessive forms.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace spindle {

/// \brief One token with its position (0-based token index).
struct Token {
  std::string text;
  int64_t pos;

  bool operator==(const Token& other) const {
    return text == other.text && pos == other.pos;
  }
};

/// \brief Tokenizer configuration.
struct TokenizerOptions {
  /// Tokens shorter than this are dropped (positions still advance).
  size_t min_token_len = 1;
  /// Tokens longer than this are dropped (typical indexing hygiene).
  size_t max_token_len = 64;
  /// Treat ASCII digits as token characters.
  bool keep_numbers = true;
};

/// \brief Splits `text` into tokens.
std::vector<Token> Tokenize(std::string_view text,
                            const TokenizerOptions& options = {});

}  // namespace spindle
