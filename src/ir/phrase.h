/// \file phrase.h
/// \brief Positional phrase matching and proximity-boosted ranking.
///
/// Fig. 1 of the paper stores term *positions* in the relational inverted
/// index precisely so that "custom distance functions" stay expressible.
/// This module exercises them: a phrase match is a cascade of self-joins
/// on (docID, pos - offset) over the term_doc relation — no new index
/// structure, just relational algebra over the existing views.

#pragma once

#include <string>

#include "common/status.h"
#include "ir/indexing.h"
#include "ir/ranking.h"

namespace spindle {

/// \brief Documents containing the analyzed terms of `phrase`
/// consecutively and in order. Returns (docID: int64, phrase_tf: int64),
/// the number of phrase occurrences per document.
///
/// A single-term phrase degenerates to that term's tf; an empty or
/// fully-out-of-vocabulary phrase yields an empty relation.
Result<RelationPtr> MatchPhrase(const TextIndex& index,
                                const std::string& phrase);

/// \brief BM25 with a phrase bonus: score = bm25 + boost * ln(1 +
/// phrase_tf). Documents matching only the bag-of-words still rank; exact
/// phrase hits move up.
struct PhraseBoostParams {
  Bm25Params bm25;
  double boost = 1.0;
};

Result<RelationPtr> RankBm25PhraseBoosted(const TextIndex& index,
                                          const std::string& query,
                                          const PhraseBoostParams& params =
                                              {});

}  // namespace spindle
