#include "ir/ranking.h"

#include "engine/ops.h"
#include "exec/scheduler.h"

namespace spindle {

namespace {

const FunctionRegistry& Reg() { return FunctionRegistry::Default(); }

Status CheckQterms(const RelationPtr& qterms) {
  if (qterms->num_columns() < 1 ||
      qterms->column(0).type() != DataType::kInt64) {
    return Status::InvalidArgument(
        "qterms must be a (termID: int64[, w: float64]) relation");
  }
  if (qterms->num_columns() >= 2 &&
      qterms->column(1).type() != DataType::kFloat64) {
    return Status::TypeMismatch("qterms weight column must be float64");
  }
  return Status::OK();
}

/// tf (termID, docID, tf) restricted to query terms (one copy per query
/// occurrence): join tf x qterms on termID. Output: (termID, docID, tf, w)
/// where w is the per-query-term weight (1.0 when qterms has no weight
/// column) — weighted query terms are how synonym/compound expansion
/// contributes with reduced influence (paper §3, production strategy).
Result<RelationPtr> MatchQuery(const TextIndex& index,
                               const RelationPtr& qterms) {
  // Equivalent to HashJoin(tf, qterms, termID = termID), but goes through
  // the query-independent term-partitioned access path so only matching
  // tf rows are touched (see TextIndex::TfRowsForTerm).
  const bool weighted = qterms->num_columns() >= 2;
  const ExecContext& ctx = ExecContext::Current();
  // Per-term posting spans are query-independent offsets, so the copy of
  // each term's rows/weights is independent work: fan out one task per
  // term into a preallocated output when the total is worth it.
  const size_t num_terms = qterms->num_rows();
  std::vector<std::pair<const uint32_t*, size_t>> spans(num_terms);
  std::vector<size_t> offsets(num_terms);
  size_t total = 0;
  for (size_t q = 0; q < num_terms; ++q) {
    spans[q] = index.TfRowsForTerm(qterms->column(0).Int64At(q));
    offsets[q] = total;
    total += spans[q].second;
  }
  std::vector<uint32_t> rows(total);
  std::vector<double> weights(total);
  auto fill_term = [&](size_t q) {
    auto [begin, len] = spans[q];
    double w = weighted ? qterms->column(1).Float64At(q) : 1.0;
    std::copy(begin, begin + len, rows.begin() + offsets[q]);
    std::fill(weights.begin() + offsets[q],
              weights.begin() + offsets[q] + len, w);
  };
  if (ctx.ShouldParallelize(total) && num_terms > 1) {
    Scheduler::Global().EnsureWorkers(ctx.threads - 1);
    TaskGroup group;
    for (size_t q = 0; q + 1 < num_terms; ++q) {
      group.Spawn([&fill_term, q] { fill_term(q); });
    }
    fill_term(num_terms - 1);
    group.Wait();
  } else {
    for (size_t q = 0; q < num_terms; ++q) fill_term(q);
  }
  Schema schema({{"termID", DataType::kInt64},
                 {"docID", DataType::kInt64},
                 {"tf", DataType::kInt64},
                 {"w", DataType::kFloat64}});
  std::vector<Column> cols;
  cols.push_back(GatherColumnRows(index.tf()->column(0), rows, ctx));
  cols.push_back(GatherColumnRows(index.tf()->column(1), rows, ctx));
  cols.push_back(GatherColumnRows(index.tf()->column(2), rows, ctx));
  cols.push_back(Column::MakeFloat64(std::move(weights)));
  return Relation::Make(std::move(schema), std::move(cols));
}

}  // namespace

Result<RelationPtr> RankBm25(const TextIndex& index,
                             const RelationPtr& qterms,
                             const Bm25Params& params) {
  SPINDLE_RETURN_IF_ERROR(CheckQterms(qterms));
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr matched, MatchQuery(index, qterms));
  // + idf:   termID, docID, tf, termID, df, idf
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr with_idf,
                           HashJoin(matched, index.idf(), {{0, 0}}));
  // + len:   ..., docID, len
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr with_len,
                           HashJoin(with_idf, index.doc_len(), {{1, 0}}));
  // columns: termID, docID, tf, w, termID, df, idf, docID, len
  const size_t kDoc = 1, kTf = 2, kW = 3, kIdf = 6, kLen = 8;
  const double avgdl =
      index.stats().avg_doc_len > 0 ? index.stats().avg_doc_len : 1.0;
  // tf / (tf + k1*(1 - b + b*len/avgdl)) * idf   — the paper's tf_bm25
  // with the idf contribution folded in.
  auto tf = Expr::Call("to_float64", {Expr::Column(kTf)});
  auto norm = Expr::Add(
      tf, Expr::Mul(Expr::LitFloat(params.k1),
                    Expr::Add(Expr::LitFloat(1.0 - params.b),
                              Expr::Mul(Expr::LitFloat(params.b),
                                        Expr::Div(Expr::Column(kLen),
                                                  Expr::LitFloat(avgdl))))));
  auto weight = Expr::Mul(Expr::Mul(Expr::Div(tf, norm), Expr::Column(kIdf)),
                          Expr::Column(kW));
  SPINDLE_ASSIGN_OR_RETURN(
      RelationPtr weighted,
      ProjectExprs(with_len, {Expr::Column(kDoc), weight},
                   {"docID", "w"}, Reg()));
  return GroupAggregate(weighted, {0}, {{AggKind::kSum, 1, "score"}});
}

Result<RelationPtr> RankTfIdf(const TextIndex& index,
                              const RelationPtr& qterms) {
  SPINDLE_RETURN_IF_ERROR(CheckQterms(qterms));
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr matched, MatchQuery(index, qterms));
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr with_df,
                           HashJoin(matched, index.idf(), {{0, 0}}));
  // columns: termID, docID, tf, w, termID, df, idf
  const size_t kDoc = 1, kTf = 2, kW = 3, kDf = 5;
  const double n = static_cast<double>(
      index.stats().num_docs > 0 ? index.stats().num_docs : 1);
  auto tf = Expr::Call("to_float64", {Expr::Column(kTf)});
  auto plain_idf = Expr::Call(
      "log", {Expr::Div(Expr::LitFloat(n), Expr::Column(kDf))});
  auto weight = Expr::Mul(
      Expr::Mul(Expr::Add(Expr::LitFloat(1.0), Expr::Call("log", {tf})),
                plain_idf),
      Expr::Column(kW));
  SPINDLE_ASSIGN_OR_RETURN(
      RelationPtr weighted,
      ProjectExprs(with_df, {Expr::Column(kDoc), weight}, {"docID", "w"},
                   Reg()));
  return GroupAggregate(weighted, {0}, {{AggKind::kSum, 1, "score"}});
}

Result<RelationPtr> RankLmDirichlet(const TextIndex& index,
                                    const RelationPtr& qterms,
                                    const DirichletParams& params) {
  SPINDLE_RETURN_IF_ERROR(CheckQterms(qterms));
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr matched, MatchQuery(index, qterms));
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr with_cf,
                           HashJoin(matched, index.cf(), {{0, 0}}));
  // columns: termID, docID, tf, w, termID, cf
  const size_t kDoc = 1, kTf = 2, kW = 3, kCf = 5;
  const double total = static_cast<double>(
      index.stats().total_postings > 0 ? index.stats().total_postings : 1);
  const double mu = params.mu;
  // w * ln(1 + tf * total / (mu * cf))
  auto tf = Expr::Call("to_float64", {Expr::Column(kTf)});
  auto term_part = Expr::Mul(
      Expr::Call(
          "log",
          {Expr::Add(Expr::LitFloat(1.0),
                     Expr::Div(Expr::Mul(tf, Expr::LitFloat(total)),
                               Expr::Mul(Expr::LitFloat(mu),
                                         Expr::Column(kCf))))}),
      Expr::Column(kW));
  SPINDLE_ASSIGN_OR_RETURN(
      RelationPtr weighted,
      ProjectExprs(with_cf, {Expr::Column(kDoc), term_part}, {"docID", "m"},
                   Reg()));
  SPINDLE_ASSIGN_OR_RETURN(
      RelationPtr summed,
      GroupAggregate(weighted, {0}, {{AggKind::kSum, 1, "msum"}}));
  // + |q| * ln(mu / (len + mu)) over candidate documents; with weighted
  // query terms |q| generalizes to the total query weight.
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr with_len,
                           HashJoin(summed, index.doc_len(), {{0, 0}}));
  // columns: docID, msum, docID, len
  double qlen = 0.0;
  if (qterms->num_columns() >= 2) {
    for (double w : qterms->column(1).float64_data()) qlen += w;
  } else {
    qlen = static_cast<double>(qterms->num_rows());
  }
  auto len_part = Expr::Mul(
      Expr::LitFloat(qlen),
      Expr::Call("log",
                 {Expr::Div(Expr::LitFloat(mu),
                            Expr::Add(Expr::Column(3),
                                      Expr::LitFloat(mu)))}));
  return ProjectExprs(with_len,
                      {Expr::Column(0), Expr::Add(Expr::Column(1), len_part)},
                      {"docID", "score"}, Reg());
}

Result<RelationPtr> RankLmJelinekMercer(const TextIndex& index,
                                        const RelationPtr& qterms,
                                        const JelinekMercerParams& params) {
  SPINDLE_RETURN_IF_ERROR(CheckQterms(qterms));
  if (params.lambda <= 0.0 || params.lambda >= 1.0) {
    return Status::InvalidArgument("lambda must be in (0, 1)");
  }
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr matched, MatchQuery(index, qterms));
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr with_cf,
                           HashJoin(matched, index.cf(), {{0, 0}}));
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr with_len,
                           HashJoin(with_cf, index.doc_len(), {{1, 0}}));
  // columns: termID, docID, tf, w, termID, cf, docID, len
  const size_t kDoc = 1, kTf = 2, kW = 3, kCf = 5, kLen = 7;
  const double total = static_cast<double>(
      index.stats().total_postings > 0 ? index.stats().total_postings : 1);
  const double ratio = (1.0 - params.lambda) / params.lambda;
  // w * ln(1 + ratio * (tf/len) / (cf/total))
  auto tf = Expr::Call("to_float64", {Expr::Column(kTf)});
  auto weight = Expr::Mul(
      Expr::Call(
          "log",
          {Expr::Add(
              Expr::LitFloat(1.0),
              Expr::Mul(Expr::LitFloat(ratio),
                        Expr::Div(Expr::Mul(tf, Expr::LitFloat(total)),
                                  Expr::Mul(Expr::Column(kLen),
                                            Expr::Call(
                                                "to_float64",
                                                {Expr::Column(kCf)})))))}),
      Expr::Column(kW));
  SPINDLE_ASSIGN_OR_RETURN(
      RelationPtr weighted,
      ProjectExprs(with_len, {Expr::Column(kDoc), weight}, {"docID", "w"},
                   Reg()));
  return GroupAggregate(weighted, {0}, {{AggKind::kSum, 1, "score"}});
}

}  // namespace spindle
