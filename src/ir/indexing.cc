#include "ir/indexing.h"

#include <set>
#include <string_view>
#include <unordered_map>

#include "engine/ops.h"
#include "ir/topk_pruning.h"

namespace spindle {

namespace {

/// Resolves the (docID, data) columns of a collection relation: prefers
/// fields named "docID"/"data", falling back to the first int64 and first
/// string column.
Status ResolveDocColumns(const Relation& docs, size_t* id_col,
                         size_t* text_col) {
  auto id = docs.schema().FindField("docID");
  auto tx = docs.schema().FindField("data");
  if (!id.has_value()) {
    for (size_t c = 0; c < docs.num_columns(); ++c) {
      if (docs.column(c).type() == DataType::kInt64) {
        id = c;
        break;
      }
    }
  }
  if (!tx.has_value()) {
    for (size_t c = 0; c < docs.num_columns(); ++c) {
      if (docs.column(c).type() == DataType::kString) {
        tx = c;
        break;
      }
    }
  }
  if (!id.has_value() || !tx.has_value()) {
    return Status::InvalidArgument(
        "collection relation needs an int64 docID column and a string data "
        "column; got " + docs.schema().ToString());
  }
  if (docs.column(*id).type() != DataType::kInt64 ||
      docs.column(*tx).type() != DataType::kString) {
    return Status::TypeMismatch("docID must be int64 and data string, got " +
                                docs.schema().ToString());
  }
  *id_col = *id;
  *text_col = *tx;
  return Status::OK();
}

}  // namespace

Result<RelationPtr> TokenizeRelation(const RelationPtr& rel, size_t text_col,
                                     const Analyzer& analyzer) {
  if (text_col >= rel->num_columns()) {
    return Status::OutOfRange("tokenize column out of range");
  }
  if (rel->column(text_col).type() != DataType::kString) {
    return Status::TypeMismatch("tokenize requires a string column");
  }

  Schema schema;
  std::vector<size_t> carry;
  for (size_t c = 0; c < rel->num_columns(); ++c) {
    if (c == text_col) continue;
    schema.AddField(rel->schema().field(c));
    carry.push_back(c);
  }
  schema.AddField({"term", DataType::kString});
  schema.AddField({"pos", DataType::kInt64});

  std::vector<Column> cols;
  cols.reserve(schema.num_fields());
  for (size_t c : carry) cols.emplace_back(rel->column(c).type());
  // Terms are interned as they stream out of the analyzer: the `term`
  // column is born dictionary-encoded, so every downstream distinct/join
  // (termdict construction, tf build, query-term lookup) runs on codes.
  auto term_dict = std::make_shared<StringDict>();
  const int64_t first = term_dict->first_id();
  std::vector<int32_t> term_codes;
  Column positions(DataType::kInt64);

  const Column& text = rel->column(text_col);
  for (size_t r = 0; r < rel->num_rows(); ++r) {
    std::vector<Token> tokens = analyzer.Analyze(text.StringAt(r));
    for (const Token& tok : tokens) {
      for (size_t i = 0; i < carry.size(); ++i) {
        cols[i].AppendFrom(rel->column(carry[i]), r);
      }
      term_codes.push_back(
          static_cast<int32_t>(term_dict->Intern(tok.text) - first));
      positions.AppendInt64(tok.pos);
    }
  }
  cols.push_back(
      Column::MakeDictString(std::move(term_codes), std::move(term_dict)));
  cols.push_back(std::move(positions));
  return Relation::Make(std::move(schema), std::move(cols));
}

Result<TextIndexPtr> TextIndex::Build(const RelationPtr& docs,
                                      const Analyzer& analyzer) {
  size_t id_col = 0, text_col = 0;
  SPINDLE_RETURN_IF_ERROR(ResolveDocColumns(*docs, &id_col, &text_col));
  SPINDLE_ASSIGN_OR_RETURN(
      RelationPtr narrowed,
      ProjectColumns(docs, {id_col, text_col}, {"docID", "data"}));

  auto index = std::shared_ptr<TextIndex>(new TextIndex(analyzer));

  // (docID, term, pos) then reordered to Fig. 1's (term, docID, pos).
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr tokenized,
                           TokenizeRelation(narrowed, 1, analyzer));
  SPINDLE_ASSIGN_OR_RETURN(
      index->term_doc_,
      ProjectColumns(tokenized, {1, 0, 2}, {"term", "docID", "pos"}));

  // doc_len, zero-filled for documents with no surviving tokens so that
  // avg_doc_len reflects the whole collection.
  SPINDLE_ASSIGN_OR_RETURN(
      RelationPtr doc_len_nonzero,
      GroupAggregate(tokenized, {0}, {{AggKind::kCount, 0, "len"}}));
  SPINDLE_ASSIGN_OR_RETURN(
      RelationPtr all_ids, ProjectColumns(narrowed, {0}, {"docID"}));
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr distinct_ids, Distinct(all_ids));
  SPINDLE_ASSIGN_OR_RETURN(
      RelationPtr missing,
      HashJoin(distinct_ids, doc_len_nonzero, {{0, 0}},
               JoinType::kLeftAnti));
  SPINDLE_ASSIGN_OR_RETURN(
      RelationPtr missing_zero,
      ProjectExprs(missing, {Expr::Column(0), Expr::LitInt(0)},
                   {"docID", "len"}, FunctionRegistry::Default()));
  SPINDLE_ASSIGN_OR_RETURN(index->doc_len_,
                           UnionAll({doc_len_nonzero, missing_zero}));

  // termdict: row_number() over distinct terms.
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr distinct_terms,
                           Distinct(index->term_doc_, {0}));
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr numbered,
                           WithRowNumber(distinct_terms, "termID"));
  SPINDLE_ASSIGN_OR_RETURN(
      index->termdict_,
      ProjectColumns(numbered, {1, 0}, {"termID", "term"}));

  // tf: join term_doc with termdict on term, then count.
  SPINDLE_ASSIGN_OR_RETURN(
      RelationPtr with_ids,
      HashJoin(index->term_doc_, index->termdict_, {{0, 1}}));
  // columns: term, docID, pos, termID, term
  SPINDLE_ASSIGN_OR_RETURN(
      index->tf_,
      GroupAggregate(with_ids, {3, 1}, {{AggKind::kCount, 0, "tf"}}));

  const int64_t num_docs = static_cast<int64_t>(distinct_ids->num_rows());

  // idf: ln((N - df + 0.5) / (df + 0.5)), the paper's formulation.
  SPINDLE_ASSIGN_OR_RETURN(
      RelationPtr df,
      GroupAggregate(index->tf_, {0}, {{AggKind::kCount, 0, "df"}}));
  auto df_col = Expr::Column(1);
  auto idf_expr = Expr::Call(
      "log", {Expr::Div(
                 Expr::Add(Expr::Sub(Expr::LitFloat(double(num_docs)),
                                     df_col),
                           Expr::LitFloat(0.5)),
                 Expr::Add(df_col, Expr::LitFloat(0.5)))});
  SPINDLE_ASSIGN_OR_RETURN(
      index->idf_,
      ProjectExprs(df, {Expr::Column(0), df_col, idf_expr},
                   {"termID", "df", "idf"}, FunctionRegistry::Default()));

  // cf: collection frequency per term (for the language models).
  SPINDLE_ASSIGN_OR_RETURN(
      index->cf_,
      GroupAggregate(index->tf_, {0}, {{AggKind::kSum, 2, "cf"}}));

  // Term-partitioned tf access path (counting sort by the dense termID):
  // query-independent, built once, reused by every ranking call.
  {
    const auto& term_ids = index->tf_->column(0).int64_data();
    const size_t num_terms = index->termdict_->num_rows();
    std::vector<uint32_t> counts(num_terms + 2, 0);
    for (int64_t id : term_ids) counts[static_cast<size_t>(id)]++;
    std::vector<OffsetLen> tf_offsets(num_terms + 1, OffsetLen{});
    uint32_t offset = 0;
    for (size_t id = 1; id <= num_terms; ++id) {
      tf_offsets[id] = {offset, counts[id]};
      offset += counts[id];
    }
    std::vector<uint32_t> tf_rows(term_ids.size());
    std::vector<uint32_t> cursor(num_terms + 1, 0);
    for (size_t r = 0; r < term_ids.size(); ++r) {
      size_t id = static_cast<size_t>(term_ids[r]);
      tf_rows[tf_offsets[id].offset + cursor[id]++] =
          static_cast<uint32_t>(r);
    }
    index->tf_rows_ = MappedVector<uint32_t>::Own(std::move(tf_rows));
    index->tf_offsets_ = MappedVector<OffsetLen>::Own(std::move(tf_offsets));
  }

  index->stats_.num_docs = num_docs;
  index->stats_.num_terms = static_cast<int64_t>(index->termdict_->num_rows());
  index->stats_.total_postings =
      static_cast<int64_t>(index->term_doc_->num_rows());
  index->stats_.avg_doc_len =
      num_docs == 0 ? 0.0
                    : static_cast<double>(index->stats_.total_postings) /
                          static_cast<double>(num_docs);

  // Impact metadata for the fused top-k path: doc-ordered postings with
  // per-term/per-block score-bound boxes. Query-independent, so built
  // eagerly with the other views and shared by every fused query.
  index->impact_ =
      ImpactIndex::Build(*index->tf_, *index->doc_len_, *index->idf_,
                         *index->cf_, index->termdict_->num_rows());

  // Cold-column compression: once the impact index exists, the fused
  // serving path never touches the relational views' bulk columns — they
  // are cold until an exhaustive ranking, phrase match or SpinQL scan
  // asks for them. Store their int64 / dict-code columns compressed
  // (segment-wise lazy decode) so a serving node's footprint is the
  // packed bytes, not the flat arrays. Logical content is unchanged:
  // every consumer decodes transparently and results stay bit-identical.
  if (blockcodec::GetCompressionDefaults().cold_columns) {
    index->term_doc_ = CompressColumns(index->term_doc_);
    index->tf_ = CompressColumns(index->tf_);
    index->doc_len_ = CompressColumns(index->doc_len_);
    index->idf_ = CompressColumns(index->idf_);
    index->cf_ = CompressColumns(index->cf_);
  }
  return TextIndexPtr(std::move(index));
}

const ImpactIndex& TextIndex::impact() const { return *impact_; }

size_t TextIndex::MappedByteSize() const {
  size_t bytes = tf_rows_.MappedBytes() + tf_offsets_.MappedBytes();
  for (const RelationPtr* rel :
       {&term_doc_, &termdict_, &doc_len_, &tf_, &idf_, &cf_}) {
    if (*rel != nullptr) bytes += (*rel)->MappedByteSize();
  }
  if (impact_ != nullptr) bytes += impact_->MappedByteSize();
  return bytes;
}

StorageByteStats TextIndex::ByteSizes() const {
  StorageByteStats s;
  s.heap_bytes += tf_rows_.HeapBytes() + tf_offsets_.HeapBytes();
  s.mapped_bytes += tf_rows_.MappedBytes() + tf_offsets_.MappedBytes();
  std::set<const StringDict*> seen;
  for (const RelationPtr* rel :
       {&term_doc_, &termdict_, &doc_len_, &tf_, &idf_, &cf_}) {
    if (*rel == nullptr) continue;
    s.heap_bytes += (*rel)->ByteSizeExcludingDicts();
    s.mapped_bytes += (*rel)->MappedByteSize();
    s.compressed_bytes += (*rel)->CompressedByteSize();
    for (const StringDictPtr& dict : (*rel)->CollectDicts()) {
      if (seen.insert(dict.get()).second) s.heap_bytes += dict->ByteSize();
    }
  }
  if (impact_ != nullptr) s += impact_->ByteSizes();
  return s;
}

std::pair<const uint32_t*, size_t> TextIndex::TfRowsForTerm(
    int64_t term_id) const {
  if (term_id < 1 ||
      term_id >= static_cast<int64_t>(tf_offsets_.size())) {
    return {nullptr, 0};
  }
  const auto& [offset, len] = tf_offsets_[static_cast<size_t>(term_id)];
  return {tf_rows_.data() + offset, len};
}

Column TextIndex::EncodeQueryTokens(const std::vector<Token>& tokens,
                                    std::vector<size_t>* kept) const {
  const Column& dict_col = termdict_->column(1);
  if (!dict_col.dict_encoded()) {
    // Plain fallback (hand-built indexes): keep every token as a string.
    Column terms(DataType::kString);
    for (size_t i = 0; i < tokens.size(); ++i) {
      terms.AppendString(tokens[i].text);
      if (kept != nullptr) kept->push_back(i);
    }
    return terms;
  }
  // Dict fast path: a query term either exists in the collection's term
  // dict (then its code is its identity and the termdict join compares
  // codes) or it matches no document at all and is dropped right here —
  // exactly what the inner join would have done, minus the string hashing.
  const StringDict& dict = *dict_col.dict();
  const int64_t first = dict.first_id();
  std::vector<int32_t> codes;
  codes.reserve(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) {
    int64_t id = dict.Lookup(tokens[i].text);
    if (id < 0) continue;
    codes.push_back(static_cast<int32_t>(id - first));
    if (kept != nullptr) kept->push_back(i);
  }
  return Column::MakeDictString(std::move(codes), dict_col.dict());
}

Result<RelationPtr> TextIndex::MapQueryTerms(
    const std::vector<std::string>& terms) const {
  const Column& tid_col = termdict_->column(0);
  const Column& term_col = termdict_->column(1);
  std::vector<int64_t> out(terms.size(), 0);
  if (term_col.dict_encoded()) {
    // Dict fast path: scatter termID by dictionary code once (cheap int
    // writes, same order of work as QueryTerms' per-query join build),
    // then each input term is one dict lookup.
    const StringDict& dict = *term_col.dict();
    const int64_t first = dict.first_id();
    std::vector<int64_t> code_to_tid(static_cast<size_t>(dict.size()), 0);
    for (size_t r = 0; r < termdict_->num_rows(); ++r) {
      code_to_tid[static_cast<size_t>(term_col.CodeAt(r))] =
          tid_col.Int64At(r);
    }
    for (size_t i = 0; i < terms.size(); ++i) {
      int64_t id = dict.Lookup(terms[i]);
      if (id >= 0) out[i] = code_to_tid[static_cast<size_t>(id - first)];
    }
  } else {
    // Plain fallback (hand-built indexes): hash the dictionary strings.
    std::unordered_map<std::string_view, int64_t> by_term;
    by_term.reserve(termdict_->num_rows());
    for (size_t r = 0; r < termdict_->num_rows(); ++r) {
      by_term.emplace(term_col.StringAt(r), tid_col.Int64At(r));
    }
    for (size_t i = 0; i < terms.size(); ++i) {
      auto it = by_term.find(terms[i]);
      if (it != by_term.end()) out[i] = it->second;
    }
  }
  Schema schema({{"termID", DataType::kInt64}});
  std::vector<Column> cols;
  cols.push_back(Column::MakeInt64(std::move(out)));
  return Relation::Make(std::move(schema), std::move(cols));
}

Result<RelationPtr> TextIndex::QueryTerms(const std::string& query) const {
  std::vector<Token> tokens = analyzer_.Analyze(query);
  Schema schema({{"qterm", DataType::kString}});
  std::vector<Column> cols;
  cols.push_back(EncodeQueryTokens(tokens, nullptr));
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr qrel,
                           Relation::Make(std::move(schema),
                                          std::move(cols)));
  // Join against termdict (term lookup as a relational join, Fig. 1);
  // with a dict-encoded qrel both sides share the dict and join on codes.
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr joined,
                           HashJoin(qrel, termdict_, {{0, 1}}));
  // columns: qterm, termID, term
  return ProjectColumns(joined, {1}, {"termID"});
}

Result<RelationPtr> TextIndex::QueryTermsWeighted(
    const std::vector<std::pair<std::string, double>>& texts) const {
  std::vector<Token> tokens;
  std::vector<double> token_weights;
  for (const auto& [text, weight] : texts) {
    for (Token& tok : analyzer_.Analyze(text)) {
      tokens.push_back(std::move(tok));
      token_weights.push_back(weight);
    }
  }
  std::vector<size_t> kept;
  Column terms = EncodeQueryTokens(tokens, &kept);
  Column weights(DataType::kFloat64);
  weights.Reserve(kept.size());
  for (size_t i : kept) weights.AppendFloat64(token_weights[i]);
  Schema schema({{"qterm", DataType::kString}, {"w", DataType::kFloat64}});
  std::vector<Column> cols;
  cols.push_back(std::move(terms));
  cols.push_back(std::move(weights));
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr qrel,
                           Relation::Make(std::move(schema),
                                          std::move(cols)));
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr joined,
                           HashJoin(qrel, termdict_, {{0, 1}}));
  // columns: qterm, w, termID, term
  return ProjectColumns(joined, {2, 1}, {"termID", "w"});
}

}  // namespace spindle
