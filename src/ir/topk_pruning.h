/// \file topk_pruning.h
/// \brief Safe-up-to-k dynamic pruning for ranked retrieval (MaxScore /
/// WAND-style block skipping) over the relational TextIndex.
///
/// The exhaustive rank pipeline (ranking.h) scores every document that
/// matches any query term and only then sorts; for Search(top_k = k) that
/// is work proportional to the candidate set, not to k. The fused path
/// here evaluates document-at-a-time over doc-ordered postings with
/// per-term and per-block score upper bounds, maintaining a bounded heap
/// whose threshold prunes non-essential terms (MaxScore partitioning) and
/// skips whole posting blocks (WAND-style) — while provably returning
/// exactly the same top-k, with the same scores and the same total order
/// (score descending, docID ascending), as the exhaustive rank→TopK
/// cascade. See docs/topk_pruning.md for the safety argument.

#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/status.h"
#include "ir/searcher.h"
#include "storage/block_codec.h"
#include "storage/mmap_file.h"
#include "storage/relation.h"

namespace spindle {

class IndexSnapshotIO;

/// \brief Score-upper-bound metadata over a TextIndex: per-term postings
/// re-sorted by document ID with per-term and per-block (tf, doc length)
/// extrema, plus skip offsets. Query-independent; built once per index
/// (TextIndex::Build) and shared by every fused query.
///
/// Upper bounds are *derived at query time* from the stored (tf, len)
/// boxes by evaluating the model's exact contribution formula at the box
/// corners — each model's per-posting contribution is monotone in tf and
/// in len separately, so the corner maximum dominates every posting in
/// the box for any model parameters (no per-parameter re-build needed).
class ImpactIndex {
 public:
  /// Postings per block. Small enough that the per-block (tf, len) box is
  /// tight on skewed lists, large enough that block metadata stays a few
  /// percent of the postings themselves.
  static constexpr uint32_t kBlockSize = 128;

  /// \brief Per-block metadata over kBlockSize doc-ordered postings.
  struct Block {
    uint32_t last_ord;  ///< doc ordinal of the last posting in the block
    int32_t max_tf;
    int32_t min_tf;
    int32_t min_len;
    int32_t max_len;
  };

  /// \brief Per-term aggregate metadata (the whole posting list's box).
  struct TermMeta {
    int32_t max_tf = 0;
    int32_t min_tf = 0;
    int32_t min_len = 0;
    int32_t max_len = 0;
    int64_t df = 0;
    int64_t cf = 0;
    double idf = 0.0;  ///< the index's BM25 idf column value
  };

  /// \brief Builds the impact structures from an index's materialized
  /// views (tf, doc_len, idf, cf). Called by TextIndex::Build. When
  /// `compress` is true (the blockcodec::GetCompressionDefaults default)
  /// the flattened postings are stored as frame-of-reference bit-packed
  /// blocks instead of raw (uint32 ord, int32 tf) arrays — ~4-6× smaller
  /// — and the fused kernel decodes only the blocks it visits.
  static std::shared_ptr<const ImpactIndex> Build(
      const Relation& tf, const Relation& doc_len, const Relation& idf,
      const Relation& cf, size_t num_terms, bool compress);
  static std::shared_ptr<const ImpactIndex> Build(
      const Relation& tf, const Relation& doc_len, const Relation& idf,
      const Relation& cf, size_t num_terms) {
    return Build(tf, doc_len, idf, cf, num_terms,
                 blockcodec::GetCompressionDefaults().postings);
  }

  size_t num_docs() const { return doc_ids_.size(); }
  size_t num_terms() const { return term_meta_.empty()
                                 ? 0
                                 : term_meta_.size() - 1; }

  /// \brief External docID for a doc ordinal (ordinals are the rank of
  /// the docID in ascending order, so ordinal order == docID order).
  int64_t doc_id(uint32_t ord) const { return doc_ids_[ord]; }
  int32_t doc_len(uint32_t ord) const { return doc_lens_[ord]; }

  /// \brief Doc-length range over documents that have at least one
  /// posting (candidate documents). Zero when the index is empty.
  int32_t min_posting_len() const { return min_posting_len_; }
  int32_t max_posting_len() const { return max_posting_len_; }

  /// \brief Term metadata for a dense termID in [1, num_terms()].
  const TermMeta& term_meta(int64_t term_id) const {
    return term_meta_[static_cast<size_t>(term_id)];
  }

  /// \brief The term's postings sorted by doc ordinal. Empty view for
  /// out-of-range ids. Two physical representations behind one view:
  ///  - uncompressed: `ords`/`tfs` point at parallel flat arrays;
  ///  - compressed: `packed` points at the bit-packed stream and block b
  ///    occupies bytes [payload_off[b], payload_off[b+1]) — consumers
  ///    decode one block at a time (blockcodec::DecodePostingBlock).
  /// `blocks`/`num_blocks` (score-bound boxes + last_ord skip table) are
  /// identical in both modes, so skipping never needs a decode.
  struct PostingsView {
    const uint32_t* ords = nullptr;
    const int32_t* tfs = nullptr;
    size_t size = 0;
    const Block* blocks = nullptr;
    size_t num_blocks = 0;
    const uint8_t* packed = nullptr;
    const uint64_t* payload_off = nullptr;  ///< num_blocks + 1 entries

    bool compressed() const { return packed != nullptr; }
  };
  PostingsView postings(int64_t term_id) const;

  /// \brief True when postings are stored as compressed blocks.
  bool compressed() const { return !payload_offsets_.empty(); }

  /// \brief Decodes one term's full posting list into `ords`/`tfs`
  /// (resized to the list length). Works in both modes; meant for tests,
  /// validation and offline tools — the fused kernel decodes block-wise.
  void DecodePostings(int64_t term_id, std::vector<uint32_t>* ords,
                      std::vector<int32_t>* tfs) const;

  /// \brief Mapped (page-cache) bytes viewed by the flattened arrays;
  /// 0 for an in-memory build.
  size_t MappedByteSize() const;

  /// \brief Three-way byte accounting: owned heap bytes, mapped snapshot
  /// bytes (excluding the packed stream), and compressed posting bytes
  /// (the packed stream, wherever it lives).
  StorageByteStats ByteSizes() const;

 private:
  friend class IndexSnapshotIO;  // snapshot save/load (ir/index_snapshot.cc)

  ImpactIndex() = default;

  // All flattened arrays are MappedVectors: owned heap vectors when built
  // in memory, borrowed spans of a snapshot mapping when restored — the
  // fused RankTopK kernel runs over either without change.
  MappedVector<int64_t> doc_ids_;   ///< ordinal -> external docID (sorted)
  MappedVector<int32_t> doc_lens_;  ///< ordinal -> doc length
  int32_t min_posting_len_ = 0;
  int32_t max_posting_len_ = 0;

  // Flattened per-term postings (1-based dense termIDs, entry 0 unused).
  // Exactly one of {ords_ + tfs_} (uncompressed) or {packed_ +
  // payload_offsets_} (compressed) is populated; blocks_ and the offset
  // tables are shared by both representations.
  MappedVector<uint32_t> ords_;
  MappedVector<int32_t> tfs_;
  MappedVector<uint8_t> packed_;  ///< concatenated encoded blocks
  MappedVector<uint64_t> payload_offsets_;  ///< blocks_.size() + 1, into packed_
  MappedVector<Block> blocks_;
  MappedVector<OffsetLen> term_offsets_;
  MappedVector<OffsetLen> block_offsets_;
  MappedVector<TermMeta> term_meta_;
};

// The flattened arrays are stored verbatim in snapshot sections.
static_assert(std::is_trivially_copyable_v<ImpactIndex::Block> &&
              sizeof(ImpactIndex::Block) == 20);
static_assert(std::is_trivially_copyable_v<ImpactIndex::TermMeta> &&
              sizeof(ImpactIndex::TermMeta) == 40);

/// \brief Pruning observability counters for one fused evaluation.
struct PruningStats {
  uint64_t docs_scored = 0;    ///< candidates fully scored
  uint64_t docs_skipped = 0;   ///< candidates rejected by an upper bound
  uint64_t blocks_skipped = 0; ///< posting blocks jumped without scanning
  uint64_t blocks_decoded = 0; ///< compressed blocks actually decompressed
  uint64_t decode_bytes = 0;   ///< compressed bytes fed to the decoder
};

/// \brief Global-collection statistics shipped with a sharded query
/// (src/shard/): when passed to RankTopK they replace the index's own
/// collection-level stats — N, avgdl, total postings, and per-query-term
/// df/cf — so a shard holding a partition scores every document exactly
/// as a single node holding the full collection would. This is the
/// soundness rule that makes distributed top-k bit-identical to
/// single-node ranking: local statistics would shift every idf and
/// language-model denominator per shard.
///
/// `df`/`cf` run parallel to the qterms rows (one value per query-term
/// occurrence, global values). A qterms row whose term is absent from
/// this shard carries termID 0 — it contributes no postings, but it
/// still counts toward Dirichlet's |q| exactly as on a single node where
/// the term is in the dictionary.
struct QueryStatsOverride {
  CollectionStats collection;
  std::vector<int64_t> df;
  std::vector<int64_t> cf;
};

/// \brief Fused rank→TopK: returns the exact top options.top_k documents
/// under the total order (score descending, docID ascending) for the
/// configured model — bit-identical (same docIDs, same score doubles,
/// same order) to RankWithModel's exhaustive rank-then-TopK cascade.
///
/// `qterms` is a (termID[, w]) relation as produced by
/// TextIndex::QueryTerms / QueryTermsWeighted; duplicate query terms
/// contribute once per occurrence, exactly as in the exhaustive path.
/// Requires options.top_k > 0 (k == 0 means "all documents": that is a
/// full scoring pass by definition, use the exhaustive cascade).
///
/// `global` (optional) overrides collection statistics for sharded
/// serving; scores are then bit-identical to a single-node evaluation
/// over the full collection, restricted to this index's documents.
///
/// `deleted` (optional) is a sorted-ascending list of doc *ordinals*
/// masked out of the result (live ingestion, src/ingest/): a masked
/// ordinal still participates in candidate selection — its bounds
/// dominate it, so MaxScore pruning stays sound — but it is rejected
/// before scoring and can never reach the heap. With an exact-stats
/// override the surviving scores are bit-identical to an index built
/// without the masked documents.
Result<RelationPtr> RankTopK(const TextIndex& index,
                             const RelationPtr& qterms,
                             const SearchOptions& options,
                             PruningStats* stats = nullptr,
                             const QueryStatsOverride* global = nullptr,
                             const std::vector<uint32_t>* deleted = nullptr);

}  // namespace spindle
