/// \file ranking.h
/// \brief Retrieval models as relational pipelines over a TextIndex.
///
/// The paper implements Okapi BM25 as a cascade of SQL views and observes
/// that "most alternative ranking functions would easily adapt or reuse
/// large parts of this implementation". Spindle ships BM25, TF-IDF and two
/// query-likelihood language models; all four share the materialized,
/// query-independent views (tf, doc_len, idf, cf) and differ only in the
/// final join-project-aggregate.
///
/// Every ranker returns (docID: int64, score: float64), unsorted; compose
/// with TopK for result lists. Scores follow the conventions of each
/// model; the PRA layer treats them as (unnormalized) probabilities of
/// relevance, which the relational Bayes can normalize when needed.

#pragma once

#include "common/status.h"
#include "ir/indexing.h"
#include "storage/relation.h"

namespace spindle {

/// \brief Okapi BM25 free parameters (paper: k1 saturation, b doc-length
/// normalization).
struct Bm25Params {
  double k1 = 1.2;
  double b = 0.75;
};

/// \brief score(d) = sum over query terms of
/// idf * tf / (tf + k1 * (1 - b + b * len/avgdl)).
///
/// `qterms` is a (termID) relation, typically TextIndex::QueryTerms();
/// duplicated query terms contribute once per occurrence, as in the
/// paper's SQL.
Result<RelationPtr> RankBm25(const TextIndex& index,
                             const RelationPtr& qterms,
                             const Bm25Params& params = {});

/// \brief score(d) = sum (1 + ln tf) * ln(N / df).
Result<RelationPtr> RankTfIdf(const TextIndex& index,
                              const RelationPtr& qterms);

/// \brief Dirichlet-smoothed query likelihood.
struct DirichletParams {
  double mu = 2000.0;
};

/// \brief score(d) = sum_{t in q∩d} ln(1 + tf / (mu * P(t|C)))
///                   + |q| * ln(mu / (len + mu)),
/// the standard rank-equivalent decomposition of Dirichlet QL restricted
/// to candidate documents (those matching at least one query term).
Result<RelationPtr> RankLmDirichlet(const TextIndex& index,
                                    const RelationPtr& qterms,
                                    const DirichletParams& params = {});

/// \brief Jelinek-Mercer smoothed query likelihood.
struct JelinekMercerParams {
  double lambda = 0.1;  ///< collection weight
};

/// \brief score(d) = sum_{t in q∩d}
///   ln(1 + (1 - lambda)/lambda * (tf/len) / P(t|C)).
Result<RelationPtr> RankLmJelinekMercer(const TextIndex& index,
                                        const RelationPtr& qterms,
                                        const JelinekMercerParams& params = {});

}  // namespace spindle
