/// \file eval.h
/// \brief Retrieval-effectiveness metrics (precision@k, MRR, AP).
///
/// The paper's goal is "effective and efficient search solutions"; these
/// metrics close the loop on the *effective* half: given a ranked result
/// list and a relevance set, they quantify ranking quality. Used by the
/// quality tests over synthetic topical collections
/// (workload/topical_gen.h), where ground-truth relevance is known by
/// construction.

#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "storage/relation.h"

namespace spindle {

/// \brief A relevance judgment set for one query.
using RelevantSet = std::unordered_set<int64_t>;

/// \brief Extracts the docID column of a ranked (docID, score) relation
/// in rank order.
std::vector<int64_t> RankedIds(const Relation& ranked);

/// \brief Fraction of the top-k results that are relevant. Returns 0 for
/// k == 0 or an empty ranking.
double PrecisionAtK(const std::vector<int64_t>& ranked,
                    const RelevantSet& relevant, size_t k);

/// \brief Fraction of the relevant set retrieved within the top-k.
double RecallAtK(const std::vector<int64_t>& ranked,
                 const RelevantSet& relevant, size_t k);

/// \brief Reciprocal rank of the first relevant result (0 if none).
double ReciprocalRank(const std::vector<int64_t>& ranked,
                      const RelevantSet& relevant);

/// \brief Average precision over the full ranking.
double AveragePrecision(const std::vector<int64_t>& ranked,
                        const RelevantSet& relevant);

}  // namespace spindle
