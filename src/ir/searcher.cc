#include "ir/searcher.h"

#include "engine/ops.h"
#include "exec/request_context.h"
#include "ir/phrase.h"
#include "ir/topk_pruning.h"
#include "obs/trace.h"

namespace {
/// Ranked-retrieval total order: score descending, then docID ascending —
/// the order the fused pruning path reproduces bit-identically.
const std::vector<spindle::SortKey> kRankOrder = {
    {1, /*descending=*/true}, {0, /*descending=*/false}};
}  // namespace

namespace spindle {

const char* RankModelName(RankModel model) {
  switch (model) {
    case RankModel::kBm25:
      return "bm25";
    case RankModel::kTfIdf:
      return "tfidf";
    case RankModel::kLmDirichlet:
      return "lm-dirichlet";
    case RankModel::kLmJelinekMercer:
      return "lm-jm";
  }
  return "?";
}

Result<RelationPtr> RankWithModel(const TextIndex& index,
                                  const RelationPtr& qterms,
                                  const SearchOptions& options) {
  RelationPtr scored;
  switch (options.model) {
    case RankModel::kBm25: {
      SPINDLE_ASSIGN_OR_RETURN(scored,
                               RankBm25(index, qterms, options.bm25));
      break;
    }
    case RankModel::kTfIdf: {
      SPINDLE_ASSIGN_OR_RETURN(scored, RankTfIdf(index, qterms));
      break;
    }
    case RankModel::kLmDirichlet: {
      SPINDLE_ASSIGN_OR_RETURN(
          scored, RankLmDirichlet(index, qterms, options.dirichlet));
      break;
    }
    case RankModel::kLmJelinekMercer: {
      SPINDLE_ASSIGN_OR_RETURN(
          scored, RankLmJelinekMercer(index, qterms, options.jm));
      break;
    }
  }
  size_t k = options.top_k == 0 ? scored->num_rows() : options.top_k;
  return TopK(scored, kRankOrder, k);
}

Result<TextIndexPtr> Searcher::GetOrBuildIndex(
    const RelationPtr& docs, const std::string& collection_signature,
    Stats* call_stats) {
  SPINDLE_ASSIGN_OR_RETURN(Analyzer analyzer,
                           Analyzer::Make(analyzer_options_));
  std::string key = collection_signature + "|" + analyzer.Signature();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = indexes_.find(key);
    if (it != indexes_.end()) {
      stats_.index_hits.fetch_add(1, std::memory_order_relaxed);
      if (call_stats != nullptr) call_stats->index_hits++;
      obs::Event("ir", "index_hit");
      return it->second;
    }
    stats_.index_misses.fetch_add(1, std::memory_order_relaxed);
    if (call_stats != nullptr) call_stats->index_misses++;
  }
  // Build outside the lock (it is the expensive part); on a race the
  // first inserted index wins and the duplicate build is discarded.
  obs::Span span("ir", "index_build");
  if (span.active()) {
    span.Add("docs", static_cast<int64_t>(docs->num_rows()));
    span.Note("key", key);
  }
  SPINDLE_ASSIGN_OR_RETURN(TextIndexPtr index,
                           TextIndex::Build(docs, analyzer));
  std::lock_guard<std::mutex> lock(mu_);
  return indexes_.emplace(std::move(key), index).first->second;
}

void Searcher::RecordPruning(const PruningStats& pstats, Stats* call_stats,
                             obs::Span* span) {
  stats_.docs_scored.fetch_add(pstats.docs_scored,
                               std::memory_order_relaxed);
  stats_.docs_skipped.fetch_add(pstats.docs_skipped,
                                std::memory_order_relaxed);
  stats_.blocks_skipped.fetch_add(pstats.blocks_skipped,
                                  std::memory_order_relaxed);
  stats_.blocks_decoded.fetch_add(pstats.blocks_decoded,
                                  std::memory_order_relaxed);
  stats_.decode_bytes.fetch_add(pstats.decode_bytes,
                                std::memory_order_relaxed);
  stats_.fused_path_used.fetch_add(1, std::memory_order_relaxed);
  if (call_stats != nullptr) {
    call_stats->docs_scored += pstats.docs_scored;
    call_stats->docs_skipped += pstats.docs_skipped;
    call_stats->blocks_skipped += pstats.blocks_skipped;
    call_stats->blocks_decoded += pstats.blocks_decoded;
    call_stats->decode_bytes += pstats.decode_bytes;
    call_stats->fused_path_used++;
  }
  if (span != nullptr && span->active()) {
    span->Add("docs_scored", static_cast<int64_t>(pstats.docs_scored));
    span->Add("docs_skipped", static_cast<int64_t>(pstats.docs_skipped));
    span->Add("blocks_skipped",
              static_cast<int64_t>(pstats.blocks_skipped));
    span->Add("blocks_decoded",
              static_cast<int64_t>(pstats.blocks_decoded));
    span->Add("decode_bytes", static_cast<int64_t>(pstats.decode_bytes));
    span->Add("fused", 1);
  }
}

Result<RelationPtr> Searcher::Search(const RelationPtr& docs,
                                     const std::string& collection_signature,
                                     const std::string& query,
                                     const SearchOptions& options,
                                     Stats* call_stats) {
  // Entry cancellation point: don't even build/fetch the index for a
  // request that is already past its deadline.
  SPINDLE_RETURN_IF_ERROR(RequestContext::CheckCurrent());
  obs::Span span("ir", "search");
  if (span.active()) {
    span.Add("top_k", static_cast<int64_t>(options.top_k));
    span.Note("model", RankModelName(options.model));
  }
  SPINDLE_ASSIGN_OR_RETURN(
      TextIndexPtr index,
      GetOrBuildIndex(docs, collection_signature, call_stats));
  if (options.phrase_boost > 0.0 && options.model == RankModel::kBm25) {
    SPINDLE_ASSIGN_OR_RETURN(
        RelationPtr scored,
        RankBm25PhraseBoosted(*index, query,
                              {options.bm25, options.phrase_boost}));
    SPINDLE_RETURN_IF_ERROR(RequestContext::CheckCurrent());
    size_t k = options.top_k == 0 ? scored->num_rows() : options.top_k;
    return TopK(scored, kRankOrder, k);
  }
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr qterms, index->QueryTerms(query));
  if (options.top_k > 0) {
    // Fused document-at-a-time path: same top-k, same scores, same order
    // as the exhaustive cascade, but with MaxScore/block-skip pruning.
    PruningStats pstats;
    SPINDLE_ASSIGN_OR_RETURN(RelationPtr result,
                             RankTopK(*index, qterms, options, &pstats));
    // One fold for all three consumers — the searcher's cumulative
    // atomics, the caller's per-call out-param, and the span counter
    // bag — so the pruning counters cannot drift apart.
    RecordPruning(pstats, call_stats, &span);
    return result;
  }
  Result<RelationPtr> exhaustive = RankWithModel(*index, qterms, options);
  // The exhaustive cascade runs morsel-parallel operators that stop
  // dispensing when the request is cancelled; discard any partial.
  SPINDLE_RETURN_IF_ERROR(RequestContext::CheckCurrent());
  return exhaustive;
}

Result<RelationPtr> Searcher::SearchSharded(
    const RelationPtr& docs, const std::string& collection_signature,
    const QueryGlobalStats& global, const SearchOptions& options,
    Stats* call_stats) {
  SPINDLE_RETURN_IF_ERROR(RequestContext::CheckCurrent());
  if (options.top_k == 0) {
    return Status::InvalidArgument(
        "sharded search requires top_k > 0 (k == 0 is a full scoring "
        "pass; run it single-node)");
  }
  if (options.phrase_boost > 0.0) {
    return Status::NotImplemented(
        "phrase boost is not supported on sharded queries");
  }
  obs::Span span("ir", "search_sharded");
  if (span.active()) {
    span.Add("top_k", static_cast<int64_t>(options.top_k));
    span.Add("terms", static_cast<int64_t>(global.terms.size()));
    span.Note("model", RankModelName(options.model));
  }
  SPINDLE_ASSIGN_OR_RETURN(
      TextIndexPtr index,
      GetOrBuildIndex(docs, collection_signature, call_stats));
  std::vector<std::string> terms;
  terms.reserve(global.terms.size());
  QueryStatsOverride ov;
  ov.collection.num_docs = global.num_docs;
  ov.collection.total_postings = global.total_postings;
  ov.collection.avg_doc_len = global.avg_doc_len;
  ov.df.reserve(global.terms.size());
  ov.cf.reserve(global.terms.size());
  for (const QueryGlobalStats::Term& t : global.terms) {
    terms.push_back(t.term);
    ov.df.push_back(t.df);
    ov.cf.push_back(t.cf);
  }
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr qterms,
                           index->MapQueryTerms(terms));
  PruningStats pstats;
  SPINDLE_ASSIGN_OR_RETURN(
      RelationPtr result, RankTopK(*index, qterms, options, &pstats, &ov));
  RecordPruning(pstats, call_stats, &span);
  return result;
}

}  // namespace spindle
