/// \file indexing.h
/// \brief On-demand inverted indexing as relations (paper §2.1, Fig. 1).
///
/// An inverted index is "just" a relation: BuildTermDoc turns a
/// (docID, data) collection into the term-doc matrix, and TextIndex derives
/// the statistical views of the paper's SQL — termdict, doc_len, tf, idf —
/// with relational operators. Because everything is computed from raw text
/// at build time, the same collection can be indexed under any analyzer
/// configuration at any moment ("the original text can be ranked at any
/// time by custom tokenization strategies, stemming choices").

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/mmap_file.h"
#include "storage/relation.h"
#include "text/analyzer.h"

namespace spindle {

class ImpactIndex;
class IndexSnapshotIO;

/// \brief The relational Tokenize operator (the paper's tokenize() UDF):
/// maps (..., text at `text_col`, ...) to one output row per token:
/// all columns except `text_col`, then (term: string, pos: int64).
Result<RelationPtr> TokenizeRelation(const RelationPtr& rel, size_t text_col,
                                     const Analyzer& analyzer);

/// \brief Collection-level statistics shared by all ranking models.
struct CollectionStats {
  int64_t num_docs = 0;
  double avg_doc_len = 0.0;
  int64_t num_terms = 0;       ///< distinct terms
  int64_t total_postings = 0;  ///< term occurrences
};

/// \brief The materialized index views over one document collection under
/// one analyzer configuration.
///
/// All views are ordinary relations; they are exactly the paper's SQL views
/// and are query-independent, so they can be cached and shared across
/// queries ("most of the SQL queries above are independent of query-terms,
/// which allows to materialize intermediate results for reuse").
class TextIndex {
 public:
  /// \brief Builds the index from a (docID: int64, data: string) relation.
  /// Additional columns are ignored; rows with empty analyzed text
  /// contribute no postings (and get doc_len 0).
  static Result<std::shared_ptr<const TextIndex>> Build(
      const RelationPtr& docs, const Analyzer& analyzer);

  /// \brief (term: string, docID: int64, pos: int64) — Fig. 1's relational
  /// inverted index.
  const RelationPtr& term_doc() const { return term_doc_; }
  /// \brief (termID: int64, term: string) — the paper's termdict.
  const RelationPtr& termdict() const { return termdict_; }
  /// \brief (docID: int64, len: int64).
  const RelationPtr& doc_len() const { return doc_len_; }
  /// \brief (termID: int64, docID: int64, tf: int64).
  const RelationPtr& tf() const { return tf_; }
  /// \brief (termID: int64, df: int64, idf: float64) with BM25's
  /// idf = ln((N - df + 0.5) / (df + 0.5)).
  const RelationPtr& idf() const { return idf_; }
  /// \brief (termID: int64, cf: int64) collection frequency, for the
  /// language models.
  const RelationPtr& cf() const { return cf_; }

  const CollectionStats& stats() const { return stats_; }
  const AnalyzerOptions& analyzer_options() const {
    return analyzer_.options();
  }

  /// \brief Term-partitioned access path into tf(): the row indices of all
  /// tf tuples for `term_id`, or an empty span if absent.
  ///
  /// This is the relational analogue of MonetDB's indexed BAT access: a
  /// query-independent auxiliary structure materialized once at build
  /// time, so per-query ranking touches only the matching tf rows instead
  /// of scanning the whole relation. (The E9 benchmark ablates it.)
  std::pair<const uint32_t*, size_t> TfRowsForTerm(int64_t term_id) const;

  /// \brief Score-upper-bound metadata (doc-ordered postings with per-term
  /// and per-block (tf, len) extrema plus skip offsets) for the fused
  /// top-k pruning path (ir/topk_pruning.h). Query-independent; built once
  /// with the other index views.
  const ImpactIndex& impact() const;

  /// \brief Analyzes a free-text query under this index's analyzer and
  /// maps it to (termID: int64) — the paper's qterms view. Terms not in
  /// the dictionary are dropped; duplicates are kept (a term queried
  /// twice contributes twice, as in the paper's SQL).
  Result<RelationPtr> QueryTerms(const std::string& query) const;

  /// \brief Weighted variant: each (text, weight) pair is analyzed and its
  /// tokens mapped to (termID: int64, w: float64). Used for query
  /// expansion, where synonym/compound terms carry reduced weight
  /// (paper §3, production strategy).
  Result<RelationPtr> QueryTermsWeighted(
      const std::vector<std::pair<std::string, double>>& texts) const;

  /// \brief Maps pre-analyzed terms to a (termID: int64) relation with one
  /// row per input term, *in input order*, using termID 0 for terms absent
  /// from this index's dictionary. Used by sharded serving: the
  /// coordinator analyzes the query once against the global dictionary and
  /// ships the surviving terms; a shard maps them here without
  /// re-analyzing, keeping every globally-present term as a qterms row
  /// (absent-here terms score nothing but still count toward |q|).
  Result<RelationPtr> MapQueryTerms(
      const std::vector<std::string>& terms) const;

  /// \brief Mapped (page-cache) bytes viewed by this index's relations
  /// and flattened arrays; 0 for an in-memory build.
  size_t MappedByteSize() const;

  /// \brief Three-way byte accounting over every view, the tf access
  /// path and the impact index: heap vs mapped vs compressed, with each
  /// shared StringDict counted once.
  StorageByteStats ByteSizes() const;

 private:
  friend class IndexSnapshotIO;  // snapshot save/load (ir/index_snapshot.cc)

  TextIndex(Analyzer analyzer) : analyzer_(std::move(analyzer)) {}

  /// Encodes analyzed query tokens against the termdict's shared dict
  /// (dropping tokens absent from the collection — they cannot match the
  /// term join anyway); falls back to a plain string column when the
  /// termdict is not dict-encoded. Records surviving token indices in
  /// `kept` when non-null.
  Column EncodeQueryTokens(const std::vector<Token>& tokens,
                           std::vector<size_t>* kept) const;

  Analyzer analyzer_;
  RelationPtr term_doc_;
  RelationPtr termdict_;
  RelationPtr doc_len_;
  RelationPtr tf_;
  RelationPtr idf_;
  RelationPtr cf_;
  CollectionStats stats_;
  /// tf row indices grouped by termID; offsets index into tf_rows_.
  /// Owned when built, borrowed from the mapping when snapshot-restored.
  MappedVector<uint32_t> tf_rows_;
  MappedVector<OffsetLen> tf_offsets_;  // termID -> (off, len)
  std::shared_ptr<const ImpactIndex> impact_;
};

using TextIndexPtr = std::shared_ptr<const TextIndex>;

}  // namespace spindle
