/// \file searcher.h
/// \brief High-level keyword search with on-demand index reuse.
///
/// A Searcher builds TextIndexes on demand for (sub-)collections and keeps
/// them keyed by (collection signature, analyzer signature) — the IR-side
/// instance of the paper's adaptive materialization: "two distinct inverted
/// indices were created on-demand, given the selected sub-collection"
/// (paper §3), and re-requesting the same sub-collection hits the cache.

#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "ir/indexing.h"
#include "ir/ranking.h"

namespace spindle {

/// \brief Which retrieval model Search() runs.
enum class RankModel { kBm25, kTfIdf, kLmDirichlet, kLmJelinekMercer };

const char* RankModelName(RankModel model);

/// \brief Search configuration: model, its parameters, result-list size.
struct SearchOptions {
  RankModel model = RankModel::kBm25;
  Bm25Params bm25;
  DirichletParams dirichlet;
  JelinekMercerParams jm;
  /// Top-k cutoff; 0 returns all matching documents (unsorted callers
  /// beware: k == 0 still sorts by score descending).
  size_t top_k = 10;
  /// BM25 only: when > 0, documents containing the query as an exact
  /// phrase get a bonus of phrase_boost * ln(1 + phrase_tf), using the
  /// positional self-join of ir/phrase.h.
  double phrase_boost = 0.0;
};

/// \brief Builds, caches and queries on-demand text indexes.
class Searcher {
 public:
  struct Stats {
    uint64_t index_hits = 0;
    uint64_t index_misses = 0;
    /// Pruning observability (fused top-k path, ir/topk_pruning.h):
    /// candidates fully scored, candidates rejected by an upper bound,
    /// posting blocks jumped without scanning, and how many searches took
    /// the fused path at all. Counter totals can vary with the thread
    /// count (per-morsel thresholds prune independently); the result
    /// relation never does.
    uint64_t docs_scored = 0;
    uint64_t docs_skipped = 0;
    uint64_t blocks_skipped = 0;
    uint64_t fused_path_used = 0;
  };

  explicit Searcher(AnalyzerOptions analyzer_options = {})
      : analyzer_options_(std::move(analyzer_options)) {}

  /// \brief Returns the index for `docs` under this searcher's analyzer,
  /// building it if `collection_signature` has not been seen (or the
  /// analyzer changed). The signature must uniquely identify the
  /// collection contents — e.g. a SpinQL expression signature or a
  /// catalog name + version.
  Result<TextIndexPtr> GetOrBuildIndex(
      const RelationPtr& docs, const std::string& collection_signature);

  /// \brief Ranks `docs` for `query`; returns (docID, score) sorted by
  /// score descending, cut to options.top_k.
  Result<RelationPtr> Search(const RelationPtr& docs,
                             const std::string& collection_signature,
                             const std::string& query,
                             const SearchOptions& options = {});

  /// \brief Drops all cached indexes (cold-start measurements).
  void ClearIndexCache() {
    std::lock_guard<std::mutex> lock(mu_);
    indexes_.clear();
  }

  /// \brief Counter snapshot (by value: concurrent searches mutate them).
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  const AnalyzerOptions& analyzer_options() const {
    return analyzer_options_;
  }

 private:
  AnalyzerOptions analyzer_options_;
  /// Guards indexes_ and stats_ so concurrent queries can share one
  /// Searcher; index builds happen outside the lock (first build wins).
  mutable std::mutex mu_;
  std::unordered_map<std::string, TextIndexPtr> indexes_;
  Stats stats_;
};

/// \brief Runs the configured model over a prebuilt index: (docID, score)
/// sorted descending, cut to options.top_k.
Result<RelationPtr> RankWithModel(const TextIndex& index,
                                  const RelationPtr& qterms,
                                  const SearchOptions& options);

}  // namespace spindle
