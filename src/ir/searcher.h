/// \file searcher.h
/// \brief High-level keyword search with on-demand index reuse.
///
/// A Searcher builds TextIndexes on demand for (sub-)collections and keeps
/// them keyed by (collection signature, analyzer signature) — the IR-side
/// instance of the paper's adaptive materialization: "two distinct inverted
/// indices were created on-demand, given the selected sub-collection"
/// (paper §3), and re-requesting the same sub-collection hits the cache.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "ir/indexing.h"
#include "ir/ranking.h"

namespace spindle {

struct PruningStats;
namespace obs {
class Span;
}  // namespace obs

/// \brief Which retrieval model Search() runs.
enum class RankModel { kBm25, kTfIdf, kLmDirichlet, kLmJelinekMercer };

const char* RankModelName(RankModel model);

/// \brief Search configuration: model, its parameters, result-list size.
struct SearchOptions {
  RankModel model = RankModel::kBm25;
  Bm25Params bm25;
  DirichletParams dirichlet;
  JelinekMercerParams jm;
  /// Top-k cutoff; 0 returns all matching documents (unsorted callers
  /// beware: k == 0 still sorts by score descending).
  size_t top_k = 10;
  /// BM25 only: when > 0, documents containing the query as an exact
  /// phrase get a bonus of phrase_boost * ln(1 + phrase_tf), using the
  /// positional self-join of ir/phrase.h.
  double phrase_boost = 0.0;
};

/// \brief A query resolved against *global* collection statistics by a
/// shard coordinator (src/shard/global_stats.h): the analyzed query terms
/// that survive the global dictionary — in query order, duplicates
/// preserved — each with its global df/cf, plus the collection-level
/// totals. Shipped with every sharded query so each shard scores its
/// partition with full-collection statistics (the soundness rule that
/// makes distributed ranking bit-identical to single-node; see
/// docs/sharding.md).
struct QueryGlobalStats {
  int64_t num_docs = 0;
  int64_t total_postings = 0;
  /// total_postings / num_docs in double arithmetic (the index build's
  /// expression shape); carried explicitly so every consumer uses the
  /// same double.
  double avg_doc_len = 0.0;
  struct Term {
    std::string term;  ///< analyzer output (post-stem), not raw query text
    int64_t df = 0;
    int64_t cf = 0;
  };
  std::vector<Term> terms;
};

/// \brief Builds, caches and queries on-demand text indexes.
class Searcher {
 public:
  /// \brief Plain counter snapshot. Used both as the service-wide total
  /// (stats()) and as the per-call contribution a concurrent caller can
  /// request via Search's out-param — concurrent Search calls each get
  /// their own exact counters instead of diffing a racing shared total.
  struct Stats {
    uint64_t index_hits = 0;
    uint64_t index_misses = 0;
    /// Pruning observability (fused top-k path, ir/topk_pruning.h):
    /// candidates fully scored, candidates rejected by an upper bound,
    /// posting blocks jumped without scanning, and how many searches took
    /// the fused path at all. Counter totals can vary with the thread
    /// count (per-morsel thresholds prune independently); the result
    /// relation never does.
    uint64_t docs_scored = 0;
    uint64_t docs_skipped = 0;
    uint64_t blocks_skipped = 0;
    uint64_t blocks_decoded = 0;  ///< compressed posting blocks decompressed
    uint64_t decode_bytes = 0;    ///< compressed bytes fed to the decoder
    uint64_t fused_path_used = 0;
  };

  explicit Searcher(AnalyzerOptions analyzer_options = {})
      : analyzer_options_(std::move(analyzer_options)) {}

  /// \brief Returns the index for `docs` under this searcher's analyzer,
  /// building it if `collection_signature` has not been seen (or the
  /// analyzer changed). The signature must uniquely identify the
  /// collection contents — e.g. a SpinQL expression signature or a
  /// catalog name + version. When `call_stats` is non-null the call's
  /// index hit/miss is added to it as well as to the shared totals.
  Result<TextIndexPtr> GetOrBuildIndex(
      const RelationPtr& docs, const std::string& collection_signature,
      Stats* call_stats = nullptr);

  /// \brief Ranks `docs` for `query`; returns (docID, score) sorted by
  /// score descending, cut to options.top_k.
  ///
  /// Thread-safe: any number of threads may Search through one Searcher.
  /// `call_stats` (optional) receives exactly this call's counters —
  /// accumulated locally, so it is race-free under concurrent serving.
  /// Honors the ambient RequestContext: a cancelled or past-deadline
  /// request returns kDeadlineExceeded/kCancelled instead of a result.
  Result<RelationPtr> Search(const RelationPtr& docs,
                             const std::string& collection_signature,
                             const std::string& query,
                             const SearchOptions& options = {},
                             Stats* call_stats = nullptr);

  /// \brief Sharded-serving variant of Search: scores this searcher's
  /// (sub-)collection with the shipped *global* statistics instead of the
  /// local index's own. The query arrives pre-analyzed inside `global`
  /// (terms in query order, global df/cf per term) and is mapped to local
  /// termIDs without re-tokenizing; terms absent from this partition keep
  /// a zero-termID qterms row so Dirichlet's |q| matches single-node.
  /// Requires options.top_k > 0 and no phrase boost (the fused pruning
  /// path is the only one with the global-stats hook).
  Result<RelationPtr> SearchSharded(const RelationPtr& docs,
                                    const std::string& collection_signature,
                                    const QueryGlobalStats& global,
                                    const SearchOptions& options,
                                    Stats* call_stats = nullptr);

  /// \brief Installs a prebuilt index (e.g. one restored from a mapped
  /// snapshot) under `collection_signature`, replacing any cached entry.
  /// Subsequent Search calls with this signature hit the cache and serve
  /// without re-tokenizing a single document. The caller must ensure the
  /// index was built under an analyzer equal to this searcher's (compare
  /// AnalyzerOptions::Signature()); a mismatched install would silently
  /// serve a different term space.
  void InstallIndex(const std::string& collection_signature,
                    TextIndexPtr index) {
    // Same composite key GetOrBuildIndex uses, so the next Search with
    // this signature is a cache hit.
    const std::string key =
        collection_signature + "|" + analyzer_options_.Signature();
    std::lock_guard<std::mutex> lock(mu_);
    indexes_[key] = std::move(index);
  }

  /// \brief Drops all cached indexes (cold-start measurements).
  void ClearIndexCache() {
    std::lock_guard<std::mutex> lock(mu_);
    indexes_.clear();
  }

  /// \brief Snapshot of the shared totals (atomic counters; a snapshot
  /// taken while searches are in flight is a consistent set of
  /// monotonically-lagging values).
  Stats stats() const {
    Stats s;
    s.index_hits = stats_.index_hits.load(std::memory_order_relaxed);
    s.index_misses = stats_.index_misses.load(std::memory_order_relaxed);
    s.docs_scored = stats_.docs_scored.load(std::memory_order_relaxed);
    s.docs_skipped = stats_.docs_skipped.load(std::memory_order_relaxed);
    s.blocks_skipped = stats_.blocks_skipped.load(std::memory_order_relaxed);
    s.blocks_decoded = stats_.blocks_decoded.load(std::memory_order_relaxed);
    s.decode_bytes = stats_.decode_bytes.load(std::memory_order_relaxed);
    s.fused_path_used =
        stats_.fused_path_used.load(std::memory_order_relaxed);
    return s;
  }
  const AnalyzerOptions& analyzer_options() const {
    return analyzer_options_;
  }

 private:
  /// One fold of a fused query's pruning counters into all three
  /// consumers — shared atomics, the per-call out-param and the search
  /// span's counter bag — so they cannot drift apart.
  void RecordPruning(const PruningStats& pstats, Stats* call_stats,
                     obs::Span* span);

  /// Shared totals as atomics: Search never takes mu_ on the scoring
  /// path, so stats accumulation cannot serialize (or race) concurrent
  /// queries.
  struct AtomicStats {
    std::atomic<uint64_t> index_hits{0};
    std::atomic<uint64_t> index_misses{0};
    std::atomic<uint64_t> docs_scored{0};
    std::atomic<uint64_t> docs_skipped{0};
    std::atomic<uint64_t> blocks_skipped{0};
    std::atomic<uint64_t> blocks_decoded{0};
    std::atomic<uint64_t> decode_bytes{0};
    std::atomic<uint64_t> fused_path_used{0};
  };

  AnalyzerOptions analyzer_options_;
  /// Guards indexes_ only; index builds happen outside the lock (first
  /// build wins).
  mutable std::mutex mu_;
  std::unordered_map<std::string, TextIndexPtr> indexes_;
  AtomicStats stats_;
};

/// \brief Runs the configured model over a prebuilt index: (docID, score)
/// sorted descending, cut to options.top_k.
Result<RelationPtr> RankWithModel(const TextIndex& index,
                                  const RelationPtr& qterms,
                                  const SearchOptions& options);

}  // namespace spindle
