/// \file index_snapshot.h
/// \brief Whole-snapshot save/load: catalog relations plus text indexes
/// (TextIndex views and the flattened ImpactIndex) in one mapped file.
///
/// Save serializes every catalog relation and any prebuilt indexes into
/// the sectioned container of storage/snapshot.h. Load maps the file and
/// reconstructs: numeric columns, dict codes, postings, block score-bound
/// boxes and skip pointers all *borrow* the mapping (zero-copy), so a
/// restored Searcher serves its first query without re-tokenizing a
/// single document, and the fused RankTopK kernel runs over mapped
/// postings unchanged.

#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "ir/indexing.h"
#include "storage/catalog.h"
#include "storage/snapshot.h"

namespace spindle {

/// \brief One text index stored in (or restored from) a snapshot,
/// labelled with the catalog collection it was built from.
struct SnapshotIndexEntry {
  std::string collection;
  TextIndexPtr index;
};

/// \brief Load summary for logging / trace counters.
struct SnapshotLoadInfo {
  size_t file_bytes = 0;
  size_t sections = 0;
  size_t relations = 0;
  size_t indexes = 0;
};

/// \brief Extra opaque sections stored alongside the catalog and indexes
/// — (section name, bytes) pairs a subsystem wants persisted in the same
/// checksummed file (e.g. the sharding layer's "gstats" blob). Names must
/// not collide with the container's own sections.
using SnapshotExtraSections =
    std::vector<std::pair<std::string, std::string>>;

/// \brief Writes catalog + indexes to `path` (format of snapshot.h).
/// `indexes` may be empty (catalog-only snapshot, e.g. from the shell).
Status SaveSnapshotFile(const std::string& path, const Catalog& catalog,
                        const std::vector<SnapshotIndexEntry>& indexes,
                        const SnapshotExtraSections& extra = {});

/// \brief Maps `path`, validates it, and registers every stored relation
/// into `catalog` (replacing same-named entries; registration happens in
/// sorted-name order, so version assignment is deterministic). Stored
/// indexes are returned through `indexes` when non-null. On any error the
/// catalog is left untouched. When `extra_names` is non-empty, each named
/// section that exists in the file is copied into `*extra_out` (sections
/// a given snapshot lacks are simply skipped — older files stay
/// loadable).
Status LoadSnapshotFile(const std::string& path, Catalog* catalog,
                        std::vector<SnapshotIndexEntry>* indexes = nullptr,
                        SnapshotLoadInfo* info = nullptr,
                        const std::vector<std::string>& extra_names = {},
                        std::map<std::string, std::string>* extra_out =
                            nullptr);

}  // namespace spindle
