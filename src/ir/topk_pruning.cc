#include "ir/topk_pruning.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "exec/request_context.h"
#include "exec/scheduler.h"
#include "ir/indexing.h"
#include "obs/trace.h"

namespace spindle {

// ---------------------------------------------------------------------------
// ImpactIndex construction
// ---------------------------------------------------------------------------

std::shared_ptr<const ImpactIndex> ImpactIndex::Build(
    const Relation& tf, const Relation& doc_len, const Relation& idf,
    const Relation& cf, size_t num_terms, bool compress) {
  auto impact = std::shared_ptr<ImpactIndex>(new ImpactIndex());

  // Built into local vectors and moved into the (owned-mode) MappedVector
  // members at the end; snapshot restore installs borrowed spans into the
  // same members instead.

  // Doc ordinals: the rank of each external docID in ascending order, so
  // document-at-a-time traversal in ordinal order is traversal in docID
  // order — which is exactly the exhaustive pipeline's TopK tie-break.
  const size_t num_docs = doc_len.num_rows();
  std::vector<std::pair<int64_t, int32_t>> docs(num_docs);
  for (size_t r = 0; r < num_docs; ++r) {
    docs[r] = {doc_len.column(0).Int64At(r),
               static_cast<int32_t>(doc_len.column(1).Int64At(r))};
  }
  std::sort(docs.begin(), docs.end());
  std::vector<int64_t> doc_ids(num_docs);
  std::vector<int32_t> doc_lens(num_docs);
  for (size_t i = 0; i < num_docs; ++i) {
    doc_ids[i] = docs[i].first;
    doc_lens[i] = docs[i].second;
  }

  // Per-term df/idf/cf, scattered from the (first-occurrence-ordered)
  // idf and cf views into dense termID-indexed arrays.
  std::vector<TermMeta> term_meta(num_terms + 1, TermMeta{});
  for (size_t r = 0; r < idf.num_rows(); ++r) {
    auto tid = static_cast<size_t>(idf.column(0).Int64At(r));
    if (tid == 0 || tid > num_terms) continue;
    term_meta[tid].df = idf.column(1).Int64At(r);
    term_meta[tid].idf = idf.column(2).Float64At(r);
  }
  for (size_t r = 0; r < cf.num_rows(); ++r) {
    auto tid = static_cast<size_t>(cf.column(0).Int64At(r));
    if (tid == 0 || tid > num_terms) continue;
    term_meta[tid].cf = cf.column(1).Int64At(r);
  }

  // Postings re-sorted by doc ordinal, flattened per term via a counting
  // pass. tf is (termID, docID, tf).
  const size_t postings = tf.num_rows();
  std::vector<uint32_t> counts(num_terms + 1, 0);
  for (size_t r = 0; r < postings; ++r) {
    auto tid = static_cast<size_t>(tf.column(0).Int64At(r));
    if (tid >= 1 && tid <= num_terms) counts[tid]++;
  }
  std::vector<OffsetLen> term_offsets(num_terms + 1, OffsetLen{});
  uint32_t offset = 0;
  for (size_t tid = 1; tid <= num_terms; ++tid) {
    term_offsets[tid] = {offset, counts[tid]};
    offset += counts[tid];
  }
  std::vector<uint32_t> all_ords(offset);
  std::vector<int32_t> all_tfs(offset);
  std::vector<uint32_t> cursor(num_terms + 1, 0);
  int32_t min_plen = std::numeric_limits<int32_t>::max();
  int32_t max_plen = 0;
  for (size_t r = 0; r < postings; ++r) {
    auto tid = static_cast<size_t>(tf.column(0).Int64At(r));
    if (tid < 1 || tid > num_terms) continue;
    int64_t doc_id = tf.column(1).Int64At(r);
    auto it = std::lower_bound(doc_ids.begin(), doc_ids.end(), doc_id);
    auto ord = static_cast<uint32_t>(it - doc_ids.begin());
    size_t slot = term_offsets[tid].offset + cursor[tid]++;
    all_ords[slot] = ord;
    all_tfs[slot] = static_cast<int32_t>(tf.column(2).Int64At(r));
    int32_t len = doc_lens[ord];
    min_plen = std::min(min_plen, len);
    max_plen = std::max(max_plen, len);
  }
  impact->min_posting_len_ = offset == 0 ? 0 : min_plen;
  impact->max_posting_len_ = max_plen;

  // Per-term: sort by ordinal (tf rows arrive in collection ingest order,
  // which is already ascending for id-ordered collections — check first),
  // then per-term extrema and fixed-size block metadata with skip bounds.
  std::vector<Block> blocks;
  std::vector<OffsetLen> block_offsets(num_terms + 1, OffsetLen{});
  for (size_t tid = 1; tid <= num_terms; ++tid) {
    auto [off, len] = term_offsets[tid];
    uint32_t* ords = all_ords.data() + off;
    int32_t* tfs = all_tfs.data() + off;
    if (!std::is_sorted(ords, ords + len)) {
      std::vector<std::pair<uint32_t, int32_t>> pairs(len);
      for (uint32_t i = 0; i < len; ++i) pairs[i] = {ords[i], tfs[i]};
      std::sort(pairs.begin(), pairs.end());
      for (uint32_t i = 0; i < len; ++i) {
        ords[i] = pairs[i].first;
        tfs[i] = pairs[i].second;
      }
    }
    TermMeta& meta = term_meta[tid];
    meta.max_tf = 0;
    meta.min_tf = std::numeric_limits<int32_t>::max();
    meta.min_len = std::numeric_limits<int32_t>::max();
    meta.max_len = 0;
    auto bfirst = static_cast<uint32_t>(blocks.size());
    for (uint32_t i = 0; i < len; i += kBlockSize) {
      uint32_t bend = std::min(len, i + kBlockSize);
      Block blk;
      blk.last_ord = ords[bend - 1];
      blk.max_tf = 0;
      blk.min_tf = std::numeric_limits<int32_t>::max();
      blk.min_len = std::numeric_limits<int32_t>::max();
      blk.max_len = 0;
      for (uint32_t j = i; j < bend; ++j) {
        int32_t dlen = doc_lens[ords[j]];
        blk.max_tf = std::max(blk.max_tf, tfs[j]);
        blk.min_tf = std::min(blk.min_tf, tfs[j]);
        blk.min_len = std::min(blk.min_len, dlen);
        blk.max_len = std::max(blk.max_len, dlen);
      }
      blocks.push_back(blk);
      meta.max_tf = std::max(meta.max_tf, blk.max_tf);
      meta.min_tf = std::min(meta.min_tf, blk.min_tf);
      meta.min_len = std::min(meta.min_len, blk.min_len);
      meta.max_len = std::max(meta.max_len, blk.max_len);
    }
    if (len == 0) {
      meta.min_tf = 0;
      meta.min_len = 0;
    }
    block_offsets[tid] = {bfirst,
                          static_cast<uint32_t>(blocks.size()) - bfirst};
  }

  impact->doc_ids_ = MappedVector<int64_t>::Own(std::move(doc_ids));
  impact->doc_lens_ = MappedVector<int32_t>::Own(std::move(doc_lens));
  if (compress) {
    // Encode each 128-posting block independently (frame-of-reference
    // deltas at per-block bit width) and record where every block's bytes
    // land, so the kernel can decode exactly one block on demand. The raw
    // flat arrays are dropped — the packed stream plus the offset table
    // is the only physical copy of (ord, tf).
    std::vector<uint8_t> packed;
    packed.reserve(offset * 2);
    std::vector<uint64_t> payload_offsets;
    payload_offsets.reserve(blocks.size() + 1);
    for (size_t tid = 1; tid <= num_terms; ++tid) {
      auto [off, len] = term_offsets[tid];
      for (uint32_t i = 0; i < len; i += kBlockSize) {
        const uint32_t n = std::min(len - i, kBlockSize);
        payload_offsets.push_back(packed.size());
        blockcodec::EncodePostingBlock(all_ords.data() + off + i,
                                       all_tfs.data() + off + i, n, &packed);
      }
    }
    payload_offsets.push_back(packed.size());
    impact->packed_ = MappedVector<uint8_t>::Own(std::move(packed));
    impact->payload_offsets_ =
        MappedVector<uint64_t>::Own(std::move(payload_offsets));
  } else {
    impact->ords_ = MappedVector<uint32_t>::Own(std::move(all_ords));
    impact->tfs_ = MappedVector<int32_t>::Own(std::move(all_tfs));
  }
  impact->blocks_ = MappedVector<Block>::Own(std::move(blocks));
  impact->term_offsets_ = MappedVector<OffsetLen>::Own(std::move(term_offsets));
  impact->block_offsets_ =
      MappedVector<OffsetLen>::Own(std::move(block_offsets));
  impact->term_meta_ = MappedVector<TermMeta>::Own(std::move(term_meta));
  return impact;
}

size_t ImpactIndex::MappedByteSize() const {
  return doc_ids_.MappedBytes() + doc_lens_.MappedBytes() +
         ords_.MappedBytes() + tfs_.MappedBytes() + packed_.MappedBytes() +
         payload_offsets_.MappedBytes() + blocks_.MappedBytes() +
         term_offsets_.MappedBytes() + block_offsets_.MappedBytes() +
         term_meta_.MappedBytes();
}

StorageByteStats ImpactIndex::ByteSizes() const {
  StorageByteStats s;
  // The packed stream is "compressed bytes" wherever it lives (heap or
  // mapping); everything else splits by owned vs borrowed.
  s.compressed_bytes = packed_.size();
  auto add = [&s](size_t heap, size_t mapped) {
    s.heap_bytes += heap;
    s.mapped_bytes += mapped;
  };
  add(doc_ids_.HeapBytes(), doc_ids_.MappedBytes());
  add(doc_lens_.HeapBytes(), doc_lens_.MappedBytes());
  add(ords_.HeapBytes(), ords_.MappedBytes());
  add(tfs_.HeapBytes(), tfs_.MappedBytes());
  add(payload_offsets_.HeapBytes(), payload_offsets_.MappedBytes());
  add(blocks_.HeapBytes(), blocks_.MappedBytes());
  add(term_offsets_.HeapBytes(), term_offsets_.MappedBytes());
  add(block_offsets_.HeapBytes(), block_offsets_.MappedBytes());
  add(term_meta_.HeapBytes(), term_meta_.MappedBytes());
  return s;
}

ImpactIndex::PostingsView ImpactIndex::postings(int64_t term_id) const {
  PostingsView view;
  if (term_id < 1 ||
      term_id >= static_cast<int64_t>(term_offsets_.size())) {
    return view;
  }
  auto [off, len] = term_offsets_[static_cast<size_t>(term_id)];
  auto [boff, blen] = block_offsets_[static_cast<size_t>(term_id)];
  view.size = len;
  view.blocks = blocks_.data() + boff;
  view.num_blocks = blen;
  if (compressed()) {
    view.packed = packed_.data();
    view.payload_off = payload_offsets_.data() + boff;
  } else {
    view.ords = ords_.data() + off;
    view.tfs = tfs_.data() + off;
  }
  return view;
}

void ImpactIndex::DecodePostings(int64_t term_id,
                                 std::vector<uint32_t>* ords,
                                 std::vector<int32_t>* tfs) const {
  const PostingsView pv = postings(term_id);
  ords->resize(pv.size);
  tfs->resize(pv.size);
  if (pv.size == 0) return;
  if (!pv.compressed()) {
    std::copy(pv.ords, pv.ords + pv.size, ords->begin());
    std::copy(pv.tfs, pv.tfs + pv.size, tfs->begin());
    return;
  }
  for (size_t b = 0; b < pv.num_blocks; ++b) {
    const size_t begin = b * kBlockSize;
    const size_t n = std::min(pv.size, begin + kBlockSize) - begin;
    const uint64_t o = pv.payload_off[b];
    const bool ok = blockcodec::DecodePostingBlock(
        pv.packed + o, static_cast<size_t>(pv.payload_off[b + 1] - o), n,
        ords->data() + begin, tfs->data() + begin);
    (void)ok;  // build/load-time validation makes decode infallible here
  }
}

// ---------------------------------------------------------------------------
// Fused document-at-a-time MaxScore / block-skipping evaluation
// ---------------------------------------------------------------------------

namespace {

/// Model parameters resolved once per query, with the same degenerate-case
/// adjustments ranking.cc applies (avgdl/N/total floored at 1).
struct ModelCtx {
  RankModel model;
  double k1 = 0, b = 0, one_minus_b = 0, avgdl = 1;  // bm25
  double n = 1;                                      // tfidf
  double mu = 0, total = 1;                          // dirichlet / jm
  double ratio = 0;                                  // jm
  double qlen = 0;                                   // dirichlet
};

/// One query-term occurrence (duplicate query terms keep one entry per
/// occurrence, as in the exhaustive pipeline's per-occurrence match rows).
struct Entry {
  ImpactIndex::PostingsView pv;
  double idf = 0;        // index BM25 idf column value
  double plain_idf = 0;  // tfidf: ln(N / df)
  double cf = 1;
  double w = 1;
  double ub = 0;  // upper bound on this occurrence's contribution
  size_t pos = 0; // cursor into pv

  // Decoded window over the block containing pos: `words`/`wtfs` cover
  // postings [wbegin, wend). Uncompressed lists point straight into the
  // flat arrays; compressed lists point into this occurrence's
  // BlockDecoder scratch slot, refilled one block at a time.
  const uint32_t* words = nullptr;
  const int32_t* wtfs = nullptr;
  size_t wbegin = 0;
  size_t wend = 0;  // == 0 means "no window loaded yet"
  uint32_t* scratch_ords = nullptr;
  int32_t* scratch_tfs = nullptr;
};

/// Points the entry's window at the block containing posting `pos`. For a
/// compressed list this is THE decompression site: MaxScore/WAND decide
/// which blocks get scanned, and only those ever reach the decoder —
/// skipped blocks stay packed.
void LoadWindow(Entry& e, size_t pos, PruningStats& stats) {
  const size_t b = pos / ImpactIndex::kBlockSize;
  const size_t begin = b * ImpactIndex::kBlockSize;
  const size_t end =
      std::min(e.pv.size, begin + ImpactIndex::kBlockSize);
  if (!e.pv.compressed()) {
    e.words = e.pv.ords + begin;
    e.wtfs = e.pv.tfs + begin;
  } else {
    const uint64_t off = e.pv.payload_off[b];
    const size_t bytes = static_cast<size_t>(e.pv.payload_off[b + 1] - off);
    // Build/load-time validation makes this decode infallible; the
    // decoder itself is bounds-safe on any input regardless.
    const bool ok = blockcodec::DecodePostingBlock(
        e.pv.packed + off, bytes, end - begin, e.scratch_ords,
        e.scratch_tfs);
    (void)ok;
    e.words = e.scratch_ords;
    e.wtfs = e.scratch_tfs;
    stats.blocks_decoded++;
    stats.decode_bytes += bytes;
  }
  e.wbegin = begin;
  e.wend = end;
}

/// Current ordinal / tf under the cursor, decoding the block on first
/// touch. Callers guarantee pos < pv.size.
inline uint32_t OrdAt(Entry& e, size_t pos, PruningStats& stats) {
  if (pos < e.wbegin || pos >= e.wend) LoadWindow(e, pos, stats);
  return e.words[pos - e.wbegin];
}
inline int32_t TfAt(const Entry& e, size_t pos) {
  // Only called for pos inside the loaded window (OrdAt ran first).
  return e.wtfs[pos - e.wbegin];
}

/// The per-posting score contribution. The expression shapes (operation
/// order and association) mirror the Expr trees in ranking.cc exactly, so
/// a fused score is the bit-identical double the exhaustive pipeline
/// computes for the same posting.
inline double Contribution(const ModelCtx& m, const Entry& e, double tf,
                           double len) {
  switch (m.model) {
    case RankModel::kBm25:
      return ((tf / (tf + (m.k1 * (m.one_minus_b + (m.b * (len / m.avgdl)))))) *
              e.idf) *
             e.w;
    case RankModel::kTfIdf:
      return ((1.0 + std::log(tf)) * e.plain_idf) * e.w;
    case RankModel::kLmDirichlet:
      return (std::log(1.0 + ((tf * m.total) / (m.mu * e.cf)))) * e.w;
    case RankModel::kLmJelinekMercer:
      return (std::log(1.0 + (m.ratio * ((tf * m.total) / (len * e.cf))))) *
             e.w;
  }
  return 0.0;
}

/// Upper bound of Contribution over a (tf, len) box. Every model's
/// contribution is monotone in tf and in len separately (in a direction
/// that may depend on the signs of idf and w), so the maximum over the box
/// is attained at one of the four corners; evaluating all four is sign-
/// agnostic and uses the exact same arithmetic as real contributions,
/// which (with IEEE ops being weakly monotone) keeps the bound safe.
inline double BoxBound(const ModelCtx& m, const Entry& e, int32_t min_tf,
                       int32_t max_tf, int32_t min_len, int32_t max_len) {
  const double tl = static_cast<double>(min_tf);
  const double th = static_cast<double>(max_tf);
  const double ll = static_cast<double>(min_len);
  const double lh = static_cast<double>(max_len);
  double u = Contribution(m, e, tl, ll);
  u = std::max(u, Contribution(m, e, tl, lh));
  u = std::max(u, Contribution(m, e, th, ll));
  u = std::max(u, Contribution(m, e, th, lh));
  return u;
}

/// Dirichlet's candidate-document length part, |q| * ln(mu / (len + mu)),
/// in the exact expression shape of RankLmDirichlet's len_part.
inline double DirichletDocPart(const ModelCtx& m, double len) {
  return m.qlen * std::log(m.mu / (len + m.mu));
}

/// Safety margin for threshold comparisons: upper bounds are summed in a
/// different association order than exact scores, so give pruning a
/// headroom several orders of magnitude above accumulated ulp error.
/// Pruning only when bound + slack < threshold keeps the top-k exact.
inline double Slack(double bound, double threshold) {
  return 1e-9 * (1.0 + std::fabs(bound) + std::fabs(threshold));
}

struct Cand {
  double score;
  uint32_t ord;
};

/// The result-list total order: score descending, docID (== ordinal)
/// ascending. Scores are unique per doc, so this is a strict total order.
inline bool Beats(const Cand& a, const Cand& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.ord < b.ord;
}

/// Positions e.pos at the first posting with ordinal >= target, jumping
/// whole blocks via their last_ord skip bound — the bound lives in block
/// metadata, so skipping inspects no posting data and decodes nothing;
/// only the landing block is (lazily) decompressed. Returns false when
/// the list has no posting >= target.
inline bool AdvanceTo(Entry& e, uint32_t target, PruningStats& stats) {
  if (e.pos >= e.pv.size) return false;
  // Fast path only when the cursor's block is already decoded: if it is
  // not, the skip loop below may jump the whole block via last_ord
  // without ever paying for its decompression.
  if (e.pos >= e.wbegin && e.pos < e.wend &&
      e.words[e.pos - e.wbegin] >= target) {
    return true;
  }
  size_t b = e.pos / ImpactIndex::kBlockSize;
  while (b < e.pv.num_blocks && e.pv.blocks[b].last_ord < target) {
    ++b;
    ++stats.blocks_skipped;
  }
  if (b >= e.pv.num_blocks) {
    e.pos = e.pv.size;
    return false;
  }
  size_t begin = std::max(e.pos, b * ImpactIndex::kBlockSize);
  size_t end = std::min(e.pv.size, (b + 1) * ImpactIndex::kBlockSize);
  if (begin < e.wbegin || begin >= e.wend) LoadWindow(e, begin, stats);
  const uint32_t* wb = e.words + (begin - e.wbegin);
  const uint32_t* we = e.words + (end - e.wbegin);
  e.pos = begin + static_cast<size_t>(std::lower_bound(wb, we, target) - wb);
  return e.pos < e.pv.size;
}

/// Document-at-a-time MaxScore over doc ordinals in [lo, hi): appends the
/// range's top-k candidates (unordered) to `out`. Entry cursors are
/// range-local (entries passed by value).
void RankRange(const ImpactIndex& impact, const ModelCtx& m,
               std::vector<Entry> entries, uint32_t lo, uint32_t hi,
               size_t k, const std::vector<uint32_t>* deleted,
               std::vector<Cand>& out, PruningStats& stats) {
  const size_t ne = entries.size();
  // Deletion mask cursor: candidates are produced in ascending ordinal
  // order within a range, so one forward pointer over the sorted deleted
  // list covers every membership test.
  const uint32_t* del = deleted != nullptr ? deleted->data() : nullptr;
  const uint32_t* del_end =
      deleted != nullptr ? del + deleted->size() : nullptr;
  if (del != nullptr) del = std::lower_bound(del, del_end, lo);
  // Per-range decode scratch: one kBlockSize slot per occurrence,
  // allocated once here — block decode inside the loop allocates nothing.
  // Entries were copied by value, so re-point their window state at this
  // range's slots (ranges run concurrently; windows must not be shared).
  blockcodec::BlockDecoder decoder(ne, ImpactIndex::kBlockSize);
  for (size_t i = 0; i < ne; ++i) {
    entries[i].scratch_ords = decoder.ords(i);
    entries[i].scratch_tfs = decoder.tfs(i);
    entries[i].words = nullptr;
    entries[i].wtfs = nullptr;
    entries[i].wbegin = 0;
    entries[i].wend = 0;
  }
  for (Entry& e : entries) AdvanceTo(e, lo, stats);

  // MaxScore partitioning state: occurrence indices sorted by upper bound
  // ascending and the prefix sums of those bounds. Occurrences in the
  // sorted prefix whose cumulative bound cannot reach the threshold are
  // "non-essential": they never generate candidates and are only probed
  // for documents surfaced by the essential suffix.
  std::vector<size_t> order(ne);
  for (size_t i = 0; i < ne; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return entries[a].ub < entries[b].ub;
  });
  // Prefix sums clamp each bound at 0: a negative bound (negative-idf
  // term) only applies when the term is *present* — an absent term
  // contributes exactly 0, so the sound absent-or-present bound is
  // max(ub, 0).
  std::vector<double> prefix(ne + 1, 0.0);
  for (size_t i = 0; i < ne; ++i) {
    prefix[i + 1] = prefix[i] + std::max(entries[order[i]].ub, 0.0);
  }

  // Dirichlet only: the doc-dependent part applies to every candidate;
  // bound it over the collection's candidate length range.
  double doc_part_ub = 0.0;
  if (m.model == RankModel::kLmDirichlet && impact.num_docs() > 0) {
    doc_part_ub = std::max(
        DirichletDocPart(m, static_cast<double>(impact.min_posting_len())),
        DirichletDocPart(m, static_cast<double>(impact.max_posting_len())));
  }

  std::vector<Cand> heap;  // Beats-comparator heap: top() is the worst
  heap.reserve(k + 1);
  const auto neg_inf = -std::numeric_limits<double>::infinity();

  std::vector<double> contrib(ne, 0.0);
  std::vector<char> present(ne, 0);

  size_t first_essential = 0;  // index into `order`
  uint32_t cancel_probe = 0;
  while (true) {
    // Sub-morsel cancellation point: the serial fused path scores one
    // whole collection in a single range, so morsel-boundary checks alone
    // would never fire. Every 4096 candidates is ~100 µs of work; a
    // cancelled range just stops early — RankTopK discards the partial
    // heap by returning the token's status.
    if ((++cancel_probe & 0xFFFu) == 0 &&
        RequestContext::CurrentCancelled()) {
      break;
    }
    const double theta = heap.size() == k ? heap.front().score : neg_inf;

    // Grow the non-essential prefix while its total bound (plus the
    // doc-dependent part) provably cannot beat theta.
    while (first_essential < ne &&
           prefix[first_essential + 1] + doc_part_ub +
                   Slack(prefix[first_essential + 1] + doc_part_ub, theta) <
               theta) {
      ++first_essential;
    }
    if (first_essential >= ne) break;  // nothing left can enter the heap

    // Next candidate: the minimum current ordinal among essential
    // occurrences.
    uint32_t d = std::numeric_limits<uint32_t>::max();
    for (size_t i = first_essential; i < ne; ++i) {
      Entry& e = entries[order[i]];
      if (e.pos < e.pv.size) {
        const uint32_t ord = OrdAt(e, e.pos, stats);
        if (ord < d) d = ord;
      }
    }
    if (d >= hi) break;

    // A deleted document is still a valid pruning candidate (its bounds
    // dominate it) but must never reach the heap: force the rejected
    // path, which advances every cursor past d below.
    bool masked = false;
    if (del != del_end) {
      while (del != del_end && *del < d) ++del;
      masked = del != del_end && *del == d;
    }

    const double len = static_cast<double>(impact.doc_len(d));
    const double doc_part =
        m.model == RankModel::kLmDirichlet ? DirichletDocPart(m, len) : 0.0;

    // Cheap block-max refinement before touching tfs: essential
    // occurrences positioned at d contribute at most their current
    // block's box bound; everything else at most its list bound.
    double quick = prefix[first_essential] + doc_part;
    for (size_t i = first_essential; i < ne; ++i) {
      Entry& e = entries[order[i]];
      if (e.pos < e.pv.size && OrdAt(e, e.pos, stats) == d) {
        const ImpactIndex::Block& blk =
            e.pv.blocks[e.pos / ImpactIndex::kBlockSize];
        quick += BoxBound(m, e, blk.min_tf, blk.max_tf, blk.min_len,
                          blk.max_len);
      } else {
        // The term may be absent from d (contribution 0), so a negative
        // list bound must not lower the estimate.
        quick += std::max(e.ub, 0.0);
      }
    }
    bool rejected = masked || quick + Slack(quick, theta) < theta;

    double tracking = doc_part;
    if (!rejected) {
      std::fill(present.begin(), present.end(), 0);
      // Exact contributions from the essential occurrences at d.
      for (size_t i = first_essential; i < ne; ++i) {
        Entry& e = entries[order[i]];
        if (e.pos < e.pv.size && OrdAt(e, e.pos, stats) == d) {
          size_t occ = order[i];
          contrib[occ] = Contribution(
              m, e, static_cast<double>(TfAt(e, e.pos)), len);
          present[occ] = 1;
          tracking += contrib[occ];
        }
      }
      // Probe non-essential occurrences from the largest bound down,
      // re-checking the remaining bound after each resolution.
      for (size_t i = first_essential; i-- > 0;) {
        double bound = tracking + prefix[i + 1];
        if (bound + Slack(bound, theta) < theta) {
          rejected = true;
          break;
        }
        Entry& e = entries[order[i]];
        if (AdvanceTo(e, d, stats) && OrdAt(e, e.pos, stats) == d) {
          size_t occ = order[i];
          contrib[occ] = Contribution(
              m, e, static_cast<double>(TfAt(e, e.pos)), len);
          present[occ] = 1;
          tracking += contrib[occ];
        }
      }
    }

    if (rejected) {
      stats.docs_skipped++;
    } else {
      // Canonical fold: sum the contributions in query-occurrence order —
      // the exact association order of the exhaustive GroupAggregate —
      // then the Dirichlet doc part, matching its final ProjectExprs add.
      double score = 0.0;
      for (size_t occ = 0; occ < ne; ++occ) {
        if (present[occ]) score += contrib[occ];
      }
      if (m.model == RankModel::kLmDirichlet) score = score + doc_part;
      stats.docs_scored++;
      Cand cand{score, d};
      if (heap.size() < k) {
        heap.push_back(cand);
        std::push_heap(heap.begin(), heap.end(), Beats);
      } else if (Beats(cand, heap.front())) {
        std::pop_heap(heap.begin(), heap.end(), Beats);
        heap.back() = cand;
        std::push_heap(heap.begin(), heap.end(), Beats);
      }
    }

    // Move every essential occurrence past d.
    for (size_t i = first_essential; i < ne; ++i) {
      Entry& e = entries[order[i]];
      if (e.pos < e.pv.size && OrdAt(e, e.pos, stats) == d) {
        ++e.pos;
        // Re-align with the block grid so later skips start correctly.
        AdvanceTo(e, d + 1, stats);
      }
    }
  }

  out.insert(out.end(), heap.begin(), heap.end());
}

Status CheckQterms(const RelationPtr& qterms) {
  if (qterms->num_columns() < 1 ||
      qterms->column(0).type() != DataType::kInt64) {
    return Status::InvalidArgument(
        "qterms must be a (termID: int64[, w: float64]) relation");
  }
  if (qterms->num_columns() >= 2 &&
      qterms->column(1).type() != DataType::kFloat64) {
    return Status::TypeMismatch("qterms weight column must be float64");
  }
  return Status::OK();
}

}  // namespace

Result<RelationPtr> RankTopK(const TextIndex& index,
                             const RelationPtr& qterms,
                             const SearchOptions& options,
                             PruningStats* stats,
                             const QueryStatsOverride* global,
                             const std::vector<uint32_t>* deleted) {
  obs::Span span("ir", "rank_topk");
  if (span.active()) {
    span.Add("k", static_cast<int64_t>(options.top_k));
    span.Add("terms", static_cast<int64_t>(qterms->num_rows()));
    if (global != nullptr) span.Add("global_stats", 1);
  }
  SPINDLE_RETURN_IF_ERROR(CheckQterms(qterms));
  if (options.top_k == 0) {
    return Status::InvalidArgument(
        "RankTopK requires top_k > 0; k == 0 means a full scoring pass — "
        "use the exhaustive rank pipeline");
  }
  if (global != nullptr &&
      (global->df.size() != qterms->num_rows() ||
       global->cf.size() != qterms->num_rows())) {
    return Status::InvalidArgument(
        "QueryStatsOverride df/cf must be parallel to the qterms rows");
  }
  const ImpactIndex& impact = index.impact();
  // Collection-level statistics: the index's own for single-node serving,
  // the shipped global ones for a shard (so every per-document score is
  // the double a full-collection evaluation computes).
  const CollectionStats& cstats =
      global != nullptr ? global->collection : index.stats();

  ModelCtx m;
  m.model = options.model;
  switch (options.model) {
    case RankModel::kBm25:
      m.k1 = options.bm25.k1;
      m.b = options.bm25.b;
      m.one_minus_b = 1.0 - options.bm25.b;
      m.avgdl = cstats.avg_doc_len > 0 ? cstats.avg_doc_len : 1.0;
      break;
    case RankModel::kTfIdf:
      m.n = static_cast<double>(cstats.num_docs > 0 ? cstats.num_docs : 1);
      break;
    case RankModel::kLmDirichlet: {
      m.mu = options.dirichlet.mu;
      m.total = static_cast<double>(
          cstats.total_postings > 0 ? cstats.total_postings : 1);
      if (qterms->num_columns() >= 2) {
        for (double w : qterms->column(1).float64_data()) m.qlen += w;
      } else {
        m.qlen = static_cast<double>(qterms->num_rows());
      }
      break;
    }
    case RankModel::kLmJelinekMercer:
      if (options.jm.lambda <= 0.0 || options.jm.lambda >= 1.0) {
        return Status::InvalidArgument("lambda must be in (0, 1)");
      }
      m.ratio = (1.0 - options.jm.lambda) / options.jm.lambda;
      m.total = static_cast<double>(
          cstats.total_postings > 0 ? cstats.total_postings : 1);
      break;
  }

  // One entry per query-term occurrence. Occurrences whose term has no
  // postings can never contribute and are dropped (the exhaustive match
  // join drops their rows the same way; under an override a dropped row
  // still counted toward Dirichlet's |q| above, like a dictionary term
  // absent from this shard's partition).
  const bool weighted = qterms->num_columns() >= 2;
  std::vector<Entry> entries;
  entries.reserve(qterms->num_rows());
  for (size_t q = 0; q < qterms->num_rows(); ++q) {
    Entry e;
    int64_t tid = qterms->column(0).Int64At(q);
    e.pv = impact.postings(tid);
    if (e.pv.size == 0) continue;
    const ImpactIndex::TermMeta& meta = impact.term_meta(tid);
    if (global != nullptr) {
      // Global statistics, recomputed in the exact expression shapes the
      // index build / exhaustive path uses, so the doubles match bit for
      // bit: idf = ln((N - df + 0.5) / (df + 0.5)) with N, df global.
      const double n_docs = static_cast<double>(cstats.num_docs);
      const double dfd = static_cast<double>(global->df[q]);
      e.idf = std::log(((n_docs - dfd) + 0.5) / (dfd + 0.5));
      e.cf = static_cast<double>(global->cf[q]);
      if (options.model == RankModel::kTfIdf) {
        e.plain_idf = std::log(m.n / dfd);
      }
    } else {
      e.idf = meta.idf;
      e.cf = static_cast<double>(meta.cf);
      if (options.model == RankModel::kTfIdf) {
        e.plain_idf = std::log(m.n / static_cast<double>(meta.df));
      }
    }
    e.w = weighted ? qterms->column(1).Float64At(q) : 1.0;
    e.ub = BoxBound(m, e, meta.min_tf, meta.max_tf, meta.min_len,
                    meta.max_len);
    entries.push_back(e);
  }

  PruningStats local;
  std::vector<Cand> cands;
  const size_t num_docs = impact.num_docs();
  const ExecContext& ctx = ExecContext::Current();
  if (!entries.empty() && ctx.ShouldParallelize(num_docs)) {
    // Parallel fused mode: the ordinal space is cut on the morsel grid;
    // each range runs the full MaxScore machine with its own bounded heap
    // and range-local threshold (every global top-k document is in its
    // range's top-k, so local pruning stays safe), and the per-range
    // survivors are merged deterministically under the total order.
    const size_t num_morsels = NumMorsels(ctx, num_docs);
    std::vector<std::vector<Cand>> parts(num_morsels);
    std::vector<PruningStats> part_stats(num_morsels);
    ParallelFor(ctx, num_docs, [&](size_t begin, size_t end, size_t mi) {
      RankRange(impact, m, entries, static_cast<uint32_t>(begin),
                static_cast<uint32_t>(end), options.top_k, deleted,
                parts[mi], part_stats[mi]);
    });
    for (size_t mi = 0; mi < num_morsels; ++mi) {
      cands.insert(cands.end(), parts[mi].begin(), parts[mi].end());
      local.docs_scored += part_stats[mi].docs_scored;
      local.docs_skipped += part_stats[mi].docs_skipped;
      local.blocks_skipped += part_stats[mi].blocks_skipped;
      local.blocks_decoded += part_stats[mi].blocks_decoded;
      local.decode_bytes += part_stats[mi].decode_bytes;
    }
  } else if (!entries.empty()) {
    RankRange(impact, m, entries, 0, static_cast<uint32_t>(num_docs),
              options.top_k, deleted, cands, local);
  }
  // If the request was cancelled, some ranges stopped early and `cands`
  // is incomplete — surface the deadline instead of a wrong top-k.
  SPINDLE_RETURN_IF_ERROR(RequestContext::CheckCurrent());

  const size_t n = std::min(options.top_k, cands.size());
  std::partial_sort(cands.begin(), cands.begin() + n, cands.end(), Beats);
  cands.resize(n);

  std::vector<int64_t> out_ids(n);
  std::vector<double> out_scores(n);
  for (size_t i = 0; i < n; ++i) {
    out_ids[i] = impact.doc_id(cands[i].ord);
    out_scores[i] = cands[i].score;
  }
  if (stats != nullptr) {
    stats->docs_scored += local.docs_scored;
    stats->docs_skipped += local.docs_skipped;
    stats->blocks_skipped += local.blocks_skipped;
    stats->blocks_decoded += local.blocks_decoded;
    stats->decode_bytes += local.decode_bytes;
  }
  if (span.active()) {
    span.Add("docs_scored", static_cast<int64_t>(local.docs_scored));
    span.Add("docs_skipped", static_cast<int64_t>(local.docs_skipped));
    span.Add("blocks_skipped",
             static_cast<int64_t>(local.blocks_skipped));
    span.Add("blocks_decoded",
             static_cast<int64_t>(local.blocks_decoded));
    span.Add("decode_bytes", static_cast<int64_t>(local.decode_bytes));
  }
  Schema schema({{"docID", DataType::kInt64}, {"score", DataType::kFloat64}});
  std::vector<Column> cols;
  cols.push_back(Column::MakeInt64(std::move(out_ids)));
  cols.push_back(Column::MakeFloat64(std::move(out_scores)));
  return Relation::Make(std::move(schema), std::move(cols));
}

}  // namespace spindle
