#include "ir/eval.h"

#include <algorithm>

namespace spindle {

std::vector<int64_t> RankedIds(const Relation& ranked) {
  std::vector<int64_t> ids;
  ids.reserve(ranked.num_rows());
  for (size_t r = 0; r < ranked.num_rows(); ++r) {
    ids.push_back(ranked.column(0).Int64At(r));
  }
  return ids;
}

double PrecisionAtK(const std::vector<int64_t>& ranked,
                    const RelevantSet& relevant, size_t k) {
  if (k == 0 || ranked.empty()) return 0.0;
  size_t n = std::min(k, ranked.size());
  size_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    if (relevant.count(ranked[i])) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double RecallAtK(const std::vector<int64_t>& ranked,
                 const RelevantSet& relevant, size_t k) {
  if (relevant.empty()) return 0.0;
  size_t n = std::min(k, ranked.size());
  size_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    if (relevant.count(ranked[i])) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(relevant.size());
}

double ReciprocalRank(const std::vector<int64_t>& ranked,
                      const RelevantSet& relevant) {
  for (size_t i = 0; i < ranked.size(); ++i) {
    if (relevant.count(ranked[i])) {
      return 1.0 / static_cast<double>(i + 1);
    }
  }
  return 0.0;
}

double AveragePrecision(const std::vector<int64_t>& ranked,
                        const RelevantSet& relevant) {
  if (relevant.empty()) return 0.0;
  double sum = 0.0;
  size_t hits = 0;
  for (size_t i = 0; i < ranked.size(); ++i) {
    if (relevant.count(ranked[i])) {
      ++hits;
      sum += static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  return sum / static_cast<double>(relevant.size());
}

}  // namespace spindle
