#include "ir/index_snapshot.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "ir/topk_pruning.h"
#include "obs/trace.h"

namespace spindle {

/// Friend of TextIndex and ImpactIndex: the only code that touches their
/// private members for serialization, keeping the snapshot format out of
/// the index headers.
class IndexSnapshotIO {
 public:
  static void Encode(SnapshotWriter* writer, SnapshotDictTable* dicts,
                     const TextIndex& index, const std::string& prefix,
                     ByteWriter* meta) {
    const AnalyzerOptions& a = index.analyzer_options();
    meta->U8(a.lowercase ? 1 : 0);
    meta->Str(a.stemmer);
    meta->U8(a.remove_stopwords ? 1 : 0);
    meta->U64(a.tokenizer.min_token_len);
    meta->U64(a.tokenizer.max_token_len);
    meta->U8(a.tokenizer.keep_numbers ? 1 : 0);

    const CollectionStats& s = index.stats();
    meta->I64(s.num_docs);
    meta->F64(s.avg_doc_len);
    meta->I64(s.num_terms);
    meta->I64(s.total_postings);

    EncodeRelation(writer, dicts, *index.term_doc_, prefix + ".td", meta);
    EncodeRelation(writer, dicts, *index.termdict_, prefix + ".dict", meta);
    EncodeRelation(writer, dicts, *index.doc_len_, prefix + ".dl", meta);
    EncodeRelation(writer, dicts, *index.tf_, prefix + ".tf", meta);
    EncodeRelation(writer, dicts, *index.idf_, prefix + ".idf", meta);
    EncodeRelation(writer, dicts, *index.cf_, prefix + ".cf", meta);

    meta->U32(writer->AddPodSection(prefix + ".tfrows",
                                    index.tf_rows_.span()));
    meta->U32(writer->AddPodSection(prefix + ".tfoff",
                                    index.tf_offsets_.span()));

    const ImpactIndex& im = *index.impact_;
    meta->I32(im.min_posting_len_);
    meta->I32(im.max_posting_len_);
    meta->U32(writer->AddPodSection(prefix + ".docids",
                                    im.doc_ids_.span()));
    meta->U32(writer->AddPodSection(prefix + ".doclens",
                                    im.doc_lens_.span()));
    // Postings: one representation per index. Compressed blocks are
    // written verbatim (no decode/re-encode) and map back byte-identical,
    // so a warm restart decodes on demand exactly like the builder's copy.
    meta->U8(im.compressed() ? 1 : 0);
    if (im.compressed()) {
      meta->U32(writer->AddPodSection(prefix + ".packed",
                                      im.packed_.span()));
      meta->U32(writer->AddPodSection(prefix + ".poff",
                                      im.payload_offsets_.span()));
    } else {
      meta->U32(writer->AddPodSection(prefix + ".ords", im.ords_.span()));
      meta->U32(writer->AddPodSection(prefix + ".tfs", im.tfs_.span()));
    }
    meta->U32(writer->AddPodSection(prefix + ".blocks", im.blocks_.span()));
    meta->U32(writer->AddPodSection(prefix + ".toff",
                                    im.term_offsets_.span()));
    meta->U32(writer->AddPodSection(prefix + ".boff",
                                    im.block_offsets_.span()));
    meta->U32(writer->AddPodSection(prefix + ".tmeta",
                                    im.term_meta_.span()));
  }

  static Result<TextIndexPtr> Decode(
      const std::shared_ptr<const SnapshotReader>& snap,
      const std::vector<StringDictPtr>& dicts, ByteReader* meta) {
    AnalyzerOptions opts;
    opts.lowercase = meta->U8() != 0;
    opts.stemmer = meta->Str();
    opts.remove_stopwords = meta->U8() != 0;
    opts.tokenizer.min_token_len = static_cast<size_t>(meta->U64());
    opts.tokenizer.max_token_len = static_cast<size_t>(meta->U64());
    opts.tokenizer.keep_numbers = meta->U8() != 0;
    SPINDLE_RETURN_IF_ERROR(meta->status());
    SPINDLE_ASSIGN_OR_RETURN(Analyzer analyzer, Analyzer::Make(opts));

    auto index = std::shared_ptr<TextIndex>(new TextIndex(std::move(analyzer)));
    index->stats_.num_docs = meta->I64();
    index->stats_.avg_doc_len = meta->F64();
    index->stats_.num_terms = meta->I64();
    index->stats_.total_postings = meta->I64();
    SPINDLE_RETURN_IF_ERROR(meta->status());

    SPINDLE_ASSIGN_OR_RETURN(index->term_doc_,
                             DecodeRelation(snap, dicts, meta));
    SPINDLE_ASSIGN_OR_RETURN(index->termdict_,
                             DecodeRelation(snap, dicts, meta));
    SPINDLE_ASSIGN_OR_RETURN(index->doc_len_,
                             DecodeRelation(snap, dicts, meta));
    SPINDLE_ASSIGN_OR_RETURN(index->tf_, DecodeRelation(snap, dicts, meta));
    SPINDLE_ASSIGN_OR_RETURN(index->idf_, DecodeRelation(snap, dicts, meta));
    SPINDLE_ASSIGN_OR_RETURN(index->cf_, DecodeRelation(snap, dicts, meta));

    const uint32_t tfrows_sec = meta->U32();
    const uint32_t tfoff_sec = meta->U32();
    SPINDLE_RETURN_IF_ERROR(meta->status());
    SPINDLE_ASSIGN_OR_RETURN(index->tf_rows_,
                             snap->MappedSection<uint32_t>(tfrows_sec));
    SPINDLE_ASSIGN_OR_RETURN(index->tf_offsets_,
                             snap->MappedSection<OffsetLen>(tfoff_sec));

    auto impact = std::shared_ptr<ImpactIndex>(new ImpactIndex());
    impact->min_posting_len_ = meta->I32();
    impact->max_posting_len_ = meta->I32();
    const uint32_t docids_sec = meta->U32();
    const uint32_t doclens_sec = meta->U32();
    const uint8_t postings_compressed = meta->U8();
    const uint32_t ords_sec = meta->U32();   // .packed when compressed
    const uint32_t tfs_sec = meta->U32();    // .poff when compressed
    const uint32_t blocks_sec = meta->U32();
    const uint32_t toff_sec = meta->U32();
    const uint32_t boff_sec = meta->U32();
    const uint32_t tmeta_sec = meta->U32();
    SPINDLE_RETURN_IF_ERROR(meta->status());
    SPINDLE_ASSIGN_OR_RETURN(impact->doc_ids_,
                             snap->MappedSection<int64_t>(docids_sec));
    SPINDLE_ASSIGN_OR_RETURN(impact->doc_lens_,
                             snap->MappedSection<int32_t>(doclens_sec));
    if (postings_compressed != 0) {
      SPINDLE_ASSIGN_OR_RETURN(impact->packed_,
                               snap->MappedSection<uint8_t>(ords_sec));
      SPINDLE_ASSIGN_OR_RETURN(impact->payload_offsets_,
                               snap->MappedSection<uint64_t>(tfs_sec));
    } else {
      SPINDLE_ASSIGN_OR_RETURN(impact->ords_,
                               snap->MappedSection<uint32_t>(ords_sec));
      SPINDLE_ASSIGN_OR_RETURN(impact->tfs_,
                               snap->MappedSection<int32_t>(tfs_sec));
    }
    SPINDLE_ASSIGN_OR_RETURN(
        impact->blocks_, snap->MappedSection<ImpactIndex::Block>(blocks_sec));
    SPINDLE_ASSIGN_OR_RETURN(impact->term_offsets_,
                             snap->MappedSection<OffsetLen>(toff_sec));
    SPINDLE_ASSIGN_OR_RETURN(impact->block_offsets_,
                             snap->MappedSection<OffsetLen>(boff_sec));
    SPINDLE_ASSIGN_OR_RETURN(
        impact->term_meta_, snap->MappedSection<ImpactIndex::TermMeta>(tmeta_sec));
    SPINDLE_RETURN_IF_ERROR(
        Validate(snap->path(), *index, *impact, postings_compressed != 0));
    index->impact_ = std::move(impact);
    return TextIndexPtr(std::move(index));
  }

 private:
  /// Structural consistency of the mapped arrays. The file checksum
  /// guarantees bytes-as-saved; this guards against logically inconsistent
  /// files (hand-edited, or written by a buggy saver) so indexing into
  /// the arrays can never leave bounds. For compressed postings this
  /// includes a full decode-check of every block: the fused kernel then
  /// treats block decode as infallible (a validated stream cannot fail),
  /// exactly as CompressedInts::Parse does for cold columns.
  static Status Validate(const std::string& path, const TextIndex& index,
                         const ImpactIndex& impact, bool compressed) {
    auto corrupt = [&](const std::string& what) {
      return Status::ParseError("snapshot '" + path + "': index " + what);
    };
    const size_t num_terms = static_cast<size_t>(index.termdict_->num_rows());
    const size_t expected = num_terms == 0 && impact.term_meta_.empty()
                                ? 0
                                : num_terms + 1;
    if (impact.term_meta_.size() != expected ||
        impact.term_offsets_.size() != expected ||
        impact.block_offsets_.size() != expected ||
        index.tf_offsets_.size() != expected) {
      return corrupt("term table lengths disagree with termdict");
    }
    if (impact.doc_ids_.size() != impact.doc_lens_.size()) {
      return corrupt("doc_ids/doc_lens length mismatch");
    }
    if (impact.ords_.size() != impact.tfs_.size()) {
      return corrupt("ords/tfs length mismatch");
    }
    if (index.tf_rows_.size() != static_cast<size_t>(index.tf_->num_rows())) {
      return corrupt("tf_rows length disagrees with tf view");
    }
    const size_t num_blocks = impact.blocks_.size();
    const size_t num_tf_rows = index.tf_rows_.size();
    const size_t num_docs = impact.doc_ids_.size();
    if (compressed) {
      // The payload offset table carries one entry per block plus a final
      // sentinel; entries are nondecreasing and bounded by the stream.
      if (impact.payload_offsets_.size() != num_blocks + 1) {
        return corrupt("payload offset table length disagrees with blocks");
      }
      const uint64_t packed_size = impact.packed_.size();
      for (size_t b = 0; b < num_blocks; ++b) {
        if (impact.payload_offsets_[b] > impact.payload_offsets_[b + 1]) {
          return corrupt("payload offsets not monotone");
        }
      }
      if (impact.payload_offsets_[num_blocks] != packed_size ||
          impact.payload_offsets_[0] != 0) {
        return corrupt("payload offsets disagree with packed stream size");
      }
    }
    std::vector<uint32_t> dec_ords(ImpactIndex::kBlockSize);
    std::vector<int32_t> dec_tfs(ImpactIndex::kBlockSize);
    for (size_t t = 0; t < expected; ++t) {
      const OffsetLen to = impact.term_offsets_[t];
      const OffsetLen bo = impact.block_offsets_[t];
      const OffsetLen fo = index.tf_offsets_[t];
      if (size_t{bo.offset} + bo.length > num_blocks ||
          size_t{fo.offset} + fo.length > num_tf_rows) {
        return corrupt("offset table out of bounds");
      }
      if (!compressed &&
          size_t{to.offset} + to.length > impact.ords_.size()) {
        return corrupt("offset table out of bounds");
      }
      if (compressed) {
        // Block grid: exactly ceil(len / kBlockSize) blocks per term, so
        // the kernel's pos -> block arithmetic stays within this term.
        const size_t want_blocks =
            (size_t{to.length} + ImpactIndex::kBlockSize - 1) /
            ImpactIndex::kBlockSize;
        if (bo.length != want_blocks) {
          return corrupt("block count disagrees with posting count");
        }
        // Decode-check every block: well-formed stream, exact count,
        // strictly increasing in-range ordinals that agree with the
        // skip table's last_ord (AdvanceTo trusts it without decoding).
        uint32_t prev_last = 0;
        for (size_t b = 0; b < bo.length; ++b) {
          const size_t gb = size_t{bo.offset} + b;
          const size_t n =
              std::min<size_t>(ImpactIndex::kBlockSize,
                               size_t{to.length} - b * ImpactIndex::kBlockSize);
          const uint64_t begin = impact.payload_offsets_[gb];
          const uint64_t end = impact.payload_offsets_[gb + 1];
          if (!blockcodec::DecodePostingBlock(
                  impact.packed_.data() + begin,
                  static_cast<size_t>(end - begin), n, dec_ords.data(),
                  dec_tfs.data())) {
            return corrupt("posting block failed to decode");
          }
          if (dec_ords[n - 1] >= num_docs) {
            return corrupt("posting ordinal out of range");
          }
          if (b > 0 && dec_ords[0] <= prev_last) {
            return corrupt("posting ordinals not increasing across blocks");
          }
          if (dec_ords[n - 1] != impact.blocks_[gb].last_ord) {
            return corrupt("block skip entry disagrees with postings");
          }
          prev_last = dec_ords[n - 1];
        }
      }
    }
    if (!compressed) {
      for (uint32_t ord : impact.ords_) {
        if (ord >= num_docs) return corrupt("posting ordinal out of range");
      }
    }
    for (uint32_t row : index.tf_rows_) {
      if (row >= num_tf_rows) return corrupt("tf row index out of range");
    }
    return Status::OK();
  }
};

Status SaveSnapshotFile(const std::string& path, const Catalog& catalog,
                        const std::vector<SnapshotIndexEntry>& indexes,
                        const SnapshotExtraSections& extra) {
  obs::Span span("snapshot", "serialize");
  SnapshotWriter writer;
  SnapshotDictTable dicts(&writer);
  EncodeCatalog(&writer, &dicts, catalog);
  ByteWriter imeta;
  imeta.U32(static_cast<uint32_t>(indexes.size()));
  for (size_t i = 0; i < indexes.size(); ++i) {
    imeta.Str(indexes[i].collection);
    IndexSnapshotIO::Encode(&writer, &dicts, *indexes[i].index,
                            "i" + std::to_string(i), &imeta);
  }
  writer.AddOwnedSection("indexes", imeta.Take());
  for (const auto& [name, bytes] : extra) {
    writer.AddOwnedSection(name, bytes);
  }
  // Written last: the dict table is only complete once every relation and
  // index referencing a dict has been encoded.
  writer.AddOwnedSection("dicts", dicts.EncodeMeta());
  if (span.active()) {
    span.Add("relations", static_cast<int64_t>(catalog.List().size()));
    span.Add("indexes", static_cast<int64_t>(indexes.size()));
  }
  return writer.Finish(path);
}

Status LoadSnapshotFile(const std::string& path, Catalog* catalog,
                        std::vector<SnapshotIndexEntry>* indexes,
                        SnapshotLoadInfo* info,
                        const std::vector<std::string>& extra_names,
                        std::map<std::string, std::string>* extra_out) {
  obs::Span span("snapshot", "load");
  SPINDLE_ASSIGN_OR_RETURN(std::shared_ptr<const SnapshotReader> snap,
                           SnapshotReader::Open(path));
  SPINDLE_ASSIGN_OR_RETURN(std::vector<StringDictPtr> dicts,
                           DecodeSnapshotDicts(snap));

  // Stage into a scratch catalog first so a corrupt tail section cannot
  // leave the live catalog half-replaced.
  Catalog staged;
  SPINDLE_ASSIGN_OR_RETURN(size_t num_relations,
                           DecodeCatalog(snap, dicts, &staged));

  std::vector<SnapshotIndexEntry> loaded;
  if (snap->HasSection("indexes")) {
    SPINDLE_ASSIGN_OR_RETURN(uint32_t sec, snap->FindSection("indexes"));
    SPINDLE_ASSIGN_OR_RETURN(std::span<const std::byte> bytes,
                             snap->SectionBytes(sec));
    ByteReader meta(bytes);
    const uint32_t count = meta.U32();
    SPINDLE_RETURN_IF_ERROR(meta.status());
    loaded.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      SnapshotIndexEntry entry;
      entry.collection = meta.Str();
      SPINDLE_RETURN_IF_ERROR(meta.status());
      SPINDLE_ASSIGN_OR_RETURN(entry.index,
                               IndexSnapshotIO::Decode(snap, dicts, &meta));
      loaded.push_back(std::move(entry));
    }
  }

  // Requested extra sections (opaque subsystem blobs, e.g. "gstats");
  // copied out because their lifetime should not pin the whole mapping.
  if (extra_out != nullptr) {
    for (const std::string& name : extra_names) {
      if (!snap->HasSection(name)) continue;
      SPINDLE_ASSIGN_OR_RETURN(uint32_t sec, snap->FindSection(name));
      SPINDLE_ASSIGN_OR_RETURN(std::span<const std::byte> bytes,
                               snap->SectionBytes(sec));
      (*extra_out)[name].assign(
          reinterpret_cast<const char*>(bytes.data()), bytes.size());
    }
  }

  // Commit: registration order is the saved (sorted-name) order, so the
  // version counters a server derives from it are deterministic.
  for (const std::string& name : staged.List()) {
    catalog->Register(name, staged.Get(name).ValueOrDie());
  }
  if (indexes != nullptr) *indexes = std::move(loaded);

  if (info != nullptr) {
    info->file_bytes = snap->file_size();
    info->sections = snap->num_sections();
    info->relations = num_relations;
    info->indexes = indexes != nullptr ? indexes->size() : loaded.size();
  }
  if (span.active()) {
    span.Add("bytes", static_cast<int64_t>(snap->file_size()));
    span.Add("sections", static_cast<int64_t>(snap->num_sections()));
    span.Add("relations", static_cast<int64_t>(num_relations));
    span.Note("path", path);
  }
  return Status::OK();
}

}  // namespace spindle
