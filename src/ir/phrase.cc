#include "ir/phrase.h"

#include "engine/ops.h"
#include "text/analyzer.h"

namespace spindle {

namespace {

const FunctionRegistry& Reg() { return FunctionRegistry::Default(); }

}  // namespace

Result<RelationPtr> MatchPhrase(const TextIndex& index,
                                const std::string& phrase) {
  SPINDLE_ASSIGN_OR_RETURN(Analyzer analyzer,
                           Analyzer::Make(index.analyzer_options()));
  std::vector<Token> terms = analyzer.Analyze(phrase);
  Schema out_schema(
      {{"docID", DataType::kInt64}, {"phrase_tf", DataType::kInt64}});
  if (terms.empty()) return Relation::Empty(out_schema);

  // Occurrences of term i, shifted: (docID, pos - i). A phrase occurrence
  // is a (docID, start) present in every shifted set.
  RelationPtr acc;
  for (size_t i = 0; i < terms.size(); ++i) {
    SPINDLE_ASSIGN_OR_RETURN(
        RelationPtr occurrences,
        Filter(index.term_doc(),
               Expr::Eq(Expr::Column(0), Expr::LitString(terms[i].text)),
               Reg()));
    SPINDLE_ASSIGN_OR_RETURN(
        RelationPtr shifted,
        ProjectExprs(occurrences,
                     {Expr::Column(1),
                      Expr::Sub(Expr::Column(2),
                                Expr::LitInt(static_cast<int64_t>(i)))},
                     {"docID", "start"}, Reg()));
    if (i == 0) {
      acc = std::move(shifted);
    } else {
      SPINDLE_ASSIGN_OR_RETURN(
          acc, HashJoin(acc, shifted, {{0, 0}, {1, 1}},
                        JoinType::kLeftSemi));
    }
    if (acc->num_rows() == 0) return Relation::Empty(out_schema);
  }
  // acc: (docID, start) per phrase occurrence.
  return GroupAggregate(acc, {0}, {{AggKind::kCount, 0, "phrase_tf"}});
}

Result<RelationPtr> RankBm25PhraseBoosted(const TextIndex& index,
                                          const std::string& query,
                                          const PhraseBoostParams& params) {
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr qterms, index.QueryTerms(query));
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr bag,
                           RankBm25(index, qterms, params.bm25));
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr phrases, MatchPhrase(index, query));
  if (phrases->num_rows() == 0) return bag;

  // bag left-joined with phrase counts: matched docs get the bonus.
  // (docID, score) semi/anti split keeps the relational style.
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr with_phrase,
                           HashJoin(bag, phrases, {{0, 0}}));
  // columns: docID, score, docID, phrase_tf
  auto boosted = Expr::Add(
      Expr::Column(1),
      Expr::Mul(Expr::LitFloat(params.boost),
                Expr::Call("log",
                           {Expr::Add(Expr::LitFloat(1.0),
                                      Expr::Column(3))})));
  SPINDLE_ASSIGN_OR_RETURN(
      RelationPtr boosted_rows,
      ProjectExprs(with_phrase, {Expr::Column(0), boosted},
                   {"docID", "score"}, Reg()));
  SPINDLE_ASSIGN_OR_RETURN(
      RelationPtr unboosted_rows,
      HashJoin(bag, phrases, {{0, 0}}, JoinType::kLeftAnti));
  return UnionAll({boosted_rows, unboosted_rows});
}

}  // namespace spindle
