#include "server/slowlog.h"

#include <atomic>

#include "obs/trace.h"

namespace spindle {
namespace server {

std::string SlowLogEntry::ToJson() const {
  std::string out = "{";
  out += "\"seq\":" + std::to_string(seq);
  out += ",\"at_ms\":" + std::to_string(at_ns / 1000000);
  out += ",\"kind\":\"" + obs::EscapeJson(kind) + "\"";
  out += ",\"text\":\"" + obs::EscapeJson(text) + "\"";
  out += ",\"status\":\"" + obs::EscapeJson(status) + "\"";
  out += ",\"latency_us\":" + std::to_string(latency_us);
  out += ",\"queue_wait_us\":" + std::to_string(queue_wait_us);
  out += ",\"docs_scored\":" + std::to_string(docs_scored);
  out += ",\"docs_skipped\":" + std::to_string(docs_skipped);
  out += ",\"blocks_decoded\":" + std::to_string(blocks_decoded);
  out += ",\"trace_id\":" + std::to_string(trace_id);
  out += ",\"sampled\":";
  out += sampled ? "true" : "false";
  if (!detail.empty()) {
    out += ",\"detail\":\"" + obs::EscapeJson(detail) + "\"";
  }
  out += "}";
  return out;
}

bool SlowQueryLog::ShouldRecord(uint64_t latency_us, bool* sampled_out) {
  *sampled_out = false;
  if (opts_.threshold_ms > 0 &&
      latency_us >= static_cast<uint64_t>(opts_.threshold_ms) * 1000) {
    return true;
  }
  if (opts_.sample_every > 0) {
    uint64_t n = sample_counter_.fetch_add(1, std::memory_order_relaxed);
    if (n % opts_.sample_every == 0) {
      *sampled_out = true;
      return true;
    }
  }
  return false;
}

void SlowQueryLog::Record(SlowLogEntry entry) {
  entry.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() >= opts_.capacity) ring_.pop_front();
  ring_.push_back(std::move(entry));
}

std::vector<SlowLogEntry> SlowQueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<SlowLogEntry>(ring_.begin(), ring_.end());
}

std::vector<std::string> SlowQueryLog::RenderRows() const {
  std::vector<std::string> rows;
  std::lock_guard<std::mutex> lock(mu_);
  rows.reserve(ring_.size());
  for (const SlowLogEntry& e : ring_) rows.push_back(e.ToJson());
  return rows;
}

}  // namespace server
}  // namespace spindle
