#include "server/admission.h"

#include <algorithm>
#include <chrono>

namespace spindle {
namespace server {

bool AdmissionController::IsNext(uint64_t id) const {
  if (!queues_[0].empty()) return queues_[0].front() == id;
  return !queues_[1].empty() && queues_[1].front() == id;
}

void AdmissionController::RemoveWaiter(uint64_t id, int pri) {
  auto& q = queues_[pri];
  auto it = std::find(q.begin(), q.end(), id);
  if (it != q.end()) q.erase(it);
}

Status AdmissionController::Admit(const RequestContext& rc,
                                  uint64_t* queue_wait_us) {
  const auto t0 = std::chrono::steady_clock::now();
  const int pri = static_cast<int>(rc.priority);
  std::unique_lock<std::mutex> lock(mu_);

  // Shed on arrival: the queue is the only buffer, and it is bounded.
  if (queues_[0].size() + queues_[1].size() >= opts_.max_queue) {
    ++shed_total_;
    return Status::Overloaded(
        "admission queue full (" + std::to_string(opts_.max_queue) +
        " waiting, " + std::to_string(inflight_) + " in flight)");
  }

  // Even when a slot is free, go through the queue: a new arrival must
  // not barge past already-queued waiters of its class.
  const uint64_t id = next_id_++;
  queues_[pri].push_back(id);

  for (;;) {
    if (IsNext(id) && inflight_ < opts_.max_inflight) {
      queues_[pri].pop_front();
      ++inflight_;
      // The next waiter may also fit (several Releases can land while
      // the head waiter was scheduled out).
      cv_.notify_all();
      if (queue_wait_us != nullptr) {
        *queue_wait_us = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
      }
      return Status::OK();
    }
    // A queued request that dies (deadline / explicit cancel) must leave
    // the queue rather than be admitted to do no work.
    Status st = rc.Check();
    if (!st.ok()) {
      RemoveWaiter(id, pri);
      cv_.notify_all();  // the waiter behind us may now be next
      return st;
    }
    if (rc.token != nullptr && rc.has_deadline()) {
      cv_.wait_until(lock, rc.deadline);
    } else {
      // Bounded nap: an external CancelToken::Cancel does not know this
      // cv, so poll the token at a coarse interval.
      cv_.wait_for(lock, std::chrono::milliseconds(50));
    }
  }
}

void AdmissionController::Release() {
  std::lock_guard<std::mutex> lock(mu_);
  --inflight_;
  cv_.notify_all();
}

}  // namespace server
}  // namespace spindle
