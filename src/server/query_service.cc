#include "server/query_service.h"

#include <chrono>
#include <exception>
#include <utility>

#include "exec/exec_context.h"
#include "storage/column.h"
#include "storage/relation.h"
#include "storage/schema.h"

namespace spindle {
namespace server {

namespace {

uint64_t ElapsedUs(std::chrono::steady_clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

QueryService::QueryService(QueryServiceOptions options)
    : opts_(options),
      cache_(options.cache_budget_bytes),
      searcher_(options.analyzer),
      evaluator_(&catalog_, &cache_),
      admission_(options.admission),
      slowlog_(SlowLogOptions{options.slow_query_ms, options.slow_sample,
                              options.slow_log_capacity}) {
  metrics_.Register(&registry_);
  RegisterGauges();
}

void QueryService::RegisterGauges() {
  registry_.AddCounterFn(
      "spindle_cache_hits_total", "Materialization cache hits.", "",
      [this] { return static_cast<double>(cache_.stats().hits); });
  registry_.AddCounterFn(
      "spindle_cache_misses_total", "Materialization cache misses.", "",
      [this] { return static_cast<double>(cache_.stats().misses); });
  registry_.AddGaugeFn(
      "spindle_heap_bytes", "Catalog heap bytes.", "",
      [this] { return static_cast<double>(catalog_.ByteSizes().heap_bytes); });
  registry_.AddGaugeFn(
      "spindle_mapped_bytes", "Catalog memory-mapped snapshot bytes.", "",
      [this] {
        return static_cast<double>(catalog_.ByteSizes().mapped_bytes);
      });
  registry_.AddGaugeFn(
      "spindle_compressed_bytes", "Catalog compressed column/posting bytes.",
      "", [this] {
        return static_cast<double>(catalog_.ByteSizes().compressed_bytes);
      });
  registry_.AddGaugeFn(
      "spindle_admission_inflight", "Requests currently executing.", "",
      [this] { return static_cast<double>(admission_.inflight()); });
  registry_.AddGaugeFn(
      "spindle_admission_queued", "Requests waiting for admission.", "",
      [this] { return static_cast<double>(admission_.queued()); });
  registry_.AddCounterFn(
      "spindle_shed_total", "Requests shed by admission control.", "",
      [this] { return static_cast<double>(admission_.shed_total()); });
  registry_.AddGaugeCallback(
      "spindle_freshness_epoch",
      "Latest searchable epoch per live-written collection.",
      [this](std::vector<std::pair<std::string, double>>* out) {
        std::lock_guard<std::mutex> lock(live_mu_);
        for (const auto& [name, table] : live_) {
          out->emplace_back(
              obs::RenderLabels({{"collection", name}}),
              static_cast<double>(table->stats().epoch));
        }
      });
}

void QueryService::RegisterCollection(const std::string& name,
                                      RelationPtr docs) {
  catalog_.RegisterEncoded(name, std::move(docs));
}

RequestContext QueryService::MakeContext(const RequestOptions& ro) const {
  RequestContext rc;
  rc.token = ro.token != nullptr ? ro.token
                                 : std::make_shared<CancelToken>();
  rc.priority = ro.priority;
  int64_t ms = ro.deadline_ms != 0 ? ro.deadline_ms
                                   : opts_.default_deadline_ms;
  if (ms > 0) {
    rc.deadline =
        RequestContext::Clock::now() + std::chrono::milliseconds(ms);
  }
  return rc;
}

Result<RelationPtr> QueryService::RunAdmitted(
    const RequestOptions& ro, RequestStats* stats,
    std::shared_ptr<const obs::Tracer>* trace_out, const char* kind,
    const std::function<std::string()>& text_fn,
    const std::function<Result<RelationPtr>()>& body) {
  const auto t0 = std::chrono::steady_clock::now();
  metrics_.requests_total.fetch_add(1, std::memory_order_relaxed);
  metrics_.requests_by_priority[ro.priority == Priority::kBatch ? 1 : 0]
      .fetch_add(1, std::memory_order_relaxed);

  // Per-request tracer: minted only when tracing is on, so the disabled
  // serving path allocates nothing and the engine sees a null ambient
  // tracer (one pointer check per instrumentation point). A propagated
  // coordinator trace id (`tid=` wire token) also forces tracing.
  std::shared_ptr<obs::Tracer> tracer;
  if (opts_.trace_requests || ro.trace || ro.foreign_trace_id != 0) {
    tracer = std::make_shared<obs::Tracer>();
    stats->trace_id = tracer->trace_id();
    // Enter the TRACEPULL window at mint time, keyed by the foreign id
    // when one was propagated: a coordinator can pull a still-running
    // (e.g. cancelled straggler) request's spans mid-flight.
    PullEntry entry;
    entry.key = ro.foreign_trace_id != 0 ? ro.foreign_trace_id
                                         : tracer->trace_id();
    entry.parent_span = ro.foreign_parent_span;
    entry.tracer = tracer;
    std::lock_guard<std::mutex> lock(pull_mu_);
    pull_log_.push_back(std::move(entry));
    while (pull_log_.size() > kPullCapacity) pull_log_.pop_front();
  }

  RequestContext rc = MakeContext(ro);
  rc.tracer = tracer;

  auto finish = [&](const Status& st) {
    const uint64_t us = ElapsedUs(t0);
    stats->latency_us = us;
    metrics_.latency_us.Record(us);
    metrics_.queue_wait_us.Record(stats->queue_wait_us);
    switch (st.code()) {
      case StatusCode::kOk:
        metrics_.requests_ok.fetch_add(1, std::memory_order_relaxed);
        break;
      case StatusCode::kDeadlineExceeded:
        metrics_.requests_deadline_exceeded.fetch_add(
            1, std::memory_order_relaxed);
        break;
      case StatusCode::kCancelled:
        metrics_.requests_cancelled.fetch_add(1, std::memory_order_relaxed);
        break;
      case StatusCode::kOverloaded:
        metrics_.requests_overloaded.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        metrics_.requests_error.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  };

  // The whole admitted lifecycle runs inside a "request" root span so
  // it closes (and its wall time is final) before the rollup below.
  Result<RelationPtr> out = [&]() -> Result<RelationPtr> {
    obs::ScopedTracer trace_scope(tracer.get());
    obs::Span request_span("server", "request");

    Status admitted;
    {
      // Admission wait is its own child span: a Chrome trace of an
      // overloaded server shows the request parked here.
      obs::Span admission_span("server", "admission");
      admitted = admission_.Admit(rc, &stats->queue_wait_us);
      if (admission_span.active()) {
        admission_span.Add(
            "queue_wait_us", static_cast<int64_t>(stats->queue_wait_us));
      }
    }
    if (!admitted.ok()) {
      if (request_span.active()) request_span.Note("status", "shed");
      return admitted;
    }

    Result<RelationPtr> r = [&]() -> Result<RelationPtr> {
      // The ambient request context is what every cancellation point in
      // the engine consults; the exec context bounds per-query
      // parallelism.
      ScopedRequestContext request_scope(rc);
      std::unique_ptr<ScopedExecContext> exec_scope;
      if (opts_.threads > 0) {
        exec_scope =
            std::make_unique<ScopedExecContext>(ExecContext(opts_.threads));
      }
      // Exception firewall: the engine is Status-based, but a stray throw
      // from malformed input must degrade to one failed request, not a
      // terminated service.
      try {
        return body();
      } catch (const std::exception& e) {
        return Status::Internal(std::string("uncaught exception: ") +
                                e.what());
      } catch (...) {
        return Status::Internal("uncaught non-standard exception");
      }
    }();
    admission_.Release();
    if (request_span.active()) {
      request_span.Note(
          "status",
          StatusCodeName(r.ok() ? StatusCode::kOk : r.status().code()));
    }
    return r;
  }();

  // Roll this request's work counters into the service totals.
  metrics_.docs_scored.fetch_add(stats->search.docs_scored,
                                 std::memory_order_relaxed);
  metrics_.docs_skipped.fetch_add(stats->search.docs_skipped,
                                  std::memory_order_relaxed);
  metrics_.blocks_skipped.fetch_add(stats->search.blocks_skipped,
                                    std::memory_order_relaxed);
  metrics_.blocks_decoded.fetch_add(stats->search.blocks_decoded,
                                    std::memory_order_relaxed);
  metrics_.decode_bytes.fetch_add(stats->search.decode_bytes,
                                  std::memory_order_relaxed);
  metrics_.index_hits.fetch_add(stats->search.index_hits,
                                std::memory_order_relaxed);
  metrics_.index_misses.fetch_add(stats->search.index_misses,
                                  std::memory_order_relaxed);

  finish(out.ok() ? Status::OK() : out.status());

  // Slow-query log: decided once the end-to-end latency is known, off
  // the response's critical path. One relaxed check when disabled.
  if (slowlog_.enabled()) {
    bool sampled = false;
    if (slowlog_.ShouldRecord(stats->latency_us, &sampled)) {
      SlowLogEntry e;
      e.at_ns = obs::NowNs();
      e.kind = kind;
      e.text = text_fn ? text_fn() : std::string();
      e.status =
          StatusCodeName(out.ok() ? StatusCode::kOk : out.status().code());
      e.latency_us = stats->latency_us;
      e.queue_wait_us = stats->queue_wait_us;
      e.docs_scored = stats->search.docs_scored;
      e.docs_skipped = stats->search.docs_skipped;
      e.blocks_decoded = stats->search.blocks_decoded;
      e.trace_id = stats->trace_id;
      e.sampled = sampled;
      slowlog_.Record(std::move(e));
      if (tracer != nullptr) {
        // Pin the exemplar so the SLOWLOG row's trace id stays pullable
        // for as long as the row itself (the rolling window rotates).
        PullEntry pin;
        pin.key = ro.foreign_trace_id != 0 ? ro.foreign_trace_id
                                           : tracer->trace_id();
        pin.parent_span = ro.foreign_parent_span;
        pin.tracer = tracer;
        std::lock_guard<std::mutex> lock(pull_mu_);
        pinned_log_.push_back(std::move(pin));
        while (pinned_log_.size() > opts_.slow_log_capacity) {
          pinned_log_.pop_front();
        }
      }
    }
  }

  if (tracer != nullptr) {
    // The request span is closed: fold this trace into the since-start
    // per-operator rollup and retain it for Chrome export.
    trace_agg_.Merge(*tracer);
    {
      std::lock_guard<std::mutex> lock(trace_mu_);
      trace_log_.push_back(tracer);
      while (trace_log_.size() > opts_.trace_log_capacity &&
             !trace_log_.empty()) {
        trace_log_.pop_front();
      }
    }
    if (trace_out != nullptr) *trace_out = tracer;
  }
  return out;
}

Status QueryService::SaveSnapshot(const std::string& path) {
  std::vector<SnapshotIndexEntry> entries;
  for (const std::string& name : catalog_.List()) {
    Result<RelationPtr> docs = catalog_.Get(name);
    if (!docs.ok()) continue;
    const std::string sig =
        "tbl:" + name + "@" + std::to_string(catalog_.Version(name));
    // Build (or fetch) the index so the snapshot restarts warm. Tables
    // that are not (docID, text) collections fail the build — they are
    // saved as plain relations.
    Result<TextIndexPtr> index =
        searcher_.GetOrBuildIndex(docs.ValueOrDie(), sig);
    if (index.ok()) {
      entries.push_back({name, index.MoveValueOrDie()});
    }
  }
  SnapshotExtraSections extra;
  if (!global_stats_.empty()) {
    // A shard server persists its global statistics next to its partition,
    // so a restored shard serves bit-identical sharded queries immediately.
    extra.emplace_back(shard::kGlobalStatsSection,
                       shard::SerializeGlobalStatsMap(global_stats_));
  }
  return SaveSnapshotFile(path, catalog_, entries, extra);
}

Status QueryService::LoadSnapshot(const std::string& path,
                                  SnapshotLoadInfo* info) {
  std::vector<SnapshotIndexEntry> entries;
  std::map<std::string, std::string> extra;
  SPINDLE_RETURN_IF_ERROR(LoadSnapshotFile(
      path, &catalog_, &entries, info, {shard::kGlobalStatsSection},
      &extra));
  const std::string analyzer_sig = searcher_.analyzer_options().Signature();
  if (auto it = extra.find(shard::kGlobalStatsSection); it != extra.end()) {
    SPINDLE_ASSIGN_OR_RETURN(shard::GlobalStatsMap stats,
                             shard::DeserializeGlobalStatsMap(it->second));
    for (auto& [name, s] : stats) {
      // Same rule as for stored indexes: statistics computed under a
      // different analyzer describe a different term space — drop them.
      if (s->analyzer_signature() != analyzer_sig) continue;
      global_stats_[name] = std::move(s);
    }
  }
  for (SnapshotIndexEntry& entry : entries) {
    // A snapshot written under a different analyzer would serve a
    // different term space; skip those indexes (search rebuilds lazily).
    if (entry.index->analyzer_options().Signature() != analyzer_sig) {
      continue;
    }
    // Signatures use the post-load catalog version, exactly what Search
    // computes for its cache key.
    const std::string sig =
        "tbl:" + entry.collection + "@" +
        std::to_string(catalog_.Version(entry.collection));
    searcher_.InstallIndex(sig, std::move(entry.index));
  }
  return Status::OK();
}

std::string QueryService::MetricsJson() {
  // The materialization cache keeps its own internally-locked counters;
  // mirror them into the snapshot so one JSON object tells the whole
  // story.
  MaterializationCache::Stats cs = cache_.stats();
  metrics_.cache_hits.store(cs.hits, std::memory_order_relaxed);
  metrics_.cache_misses.store(cs.misses, std::memory_order_relaxed);
  // Ingest gauges are refreshed at scrape time so a background
  // compaction that drained the delta is visible without another write.
  {
    uint64_t delta = 0, deleted = 0;
    std::lock_guard<std::mutex> lock(live_mu_);
    for (const auto& [name, table] : live_) {
      ingest::LiveTable::Stats s = table->stats();
      delta += s.delta_docs;
      deleted += s.deleted_docs;
    }
    metrics_.delta_docs.store(delta, std::memory_order_relaxed);
    metrics_.deleted_docs.store(deleted, std::memory_order_relaxed);
  }
  // Merge the tracer rollup in: the snapshot's closing brace is replaced
  // by a "top_operators" member (the N slowest operator kinds by total
  // wall time since start — empty until a request runs traced).
  std::string json = metrics_.SnapshotJson();
  if (!json.empty() && json.back() == '}') {
    json.pop_back();
    // Catalog storage accounting: heap and mapped bytes reported as
    // disjoint numbers — mapped snapshot pages are page cache, charging
    // them as heap would double-count them.
    Catalog::ByteStats cb = catalog_.ByteSizes();
    json += ",\"catalog\":{\"heap_bytes\":" + std::to_string(cb.heap_bytes) +
            ",\"mapped_bytes\":" + std::to_string(cb.mapped_bytes) +
            ",\"compressed_bytes\":" + std::to_string(cb.compressed_bytes) +
            "}";
    json += ",\"top_operators\":" + trace_agg_.TopJson(10) + "}";
  }
  return json;
}

std::string QueryService::MetricsPrometheus() {
  return registry_.PrometheusText();
}

std::string QueryService::HealthRow() {
  uint64_t max_epoch = 0, delta = 0;
  {
    std::lock_guard<std::mutex> lock(live_mu_);
    for (const auto& [name, table] : live_) {
      ingest::LiveTable::Stats s = table->stats();
      if (s.epoch > max_epoch) max_epoch = s.epoch;
      delta += s.delta_docs;
    }
  }
  const bool degraded =
      admission_.queued() >= static_cast<size_t>(opts_.admission.max_queue);
  std::string row = "ready=1";
  row += " degraded=" + std::to_string(degraded ? 1 : 0);
  row += " collections=" + std::to_string(catalog_.List().size());
  row += " epoch=" + std::to_string(max_epoch);
  row += " delta_docs=" + std::to_string(delta);
  row += " inflight=" + std::to_string(admission_.inflight());
  row += " queued=" + std::to_string(admission_.queued());
  row += " shed=" + std::to_string(admission_.shed_total());
  return row;
}

Result<std::vector<std::string>> QueryService::PullTraceRows(
    uint64_t id) const {
  PullEntry found;
  {
    std::lock_guard<std::mutex> lock(pull_mu_);
    auto scan = [&](const std::deque<PullEntry>& log) {
      for (auto it = log.rbegin(); it != log.rend(); ++it) {
        if (it->key == id || it->tracer->trace_id() == id) {
          found = *it;
          return true;
        }
      }
      return false;
    };
    if (!scan(pull_log_) && !scan(pinned_log_)) {
      return Status::NotFound("no retained trace with id " +
                              std::to_string(id));
    }
  }
  obs::SpanPayload payload;
  payload.trace_id = found.key;
  payload.parent_span = found.parent_span;
  payload.now_ns = obs::NowNs();
  payload.dropped = found.tracer->dropped();
  payload.spans = found.tracer->Snapshot();
  return obs::SpanPayloadToRows(payload);
}

std::string QueryService::ExportChromeTraceJson() const {
  std::vector<std::shared_ptr<const obs::Tracer>> tracers;
  {
    std::lock_guard<std::mutex> lock(trace_mu_);
    tracers.assign(trace_log_.begin(), trace_log_.end());
  }
  return obs::ExportChromeTrace(tracers);
}

Result<QueryResponse> QueryService::Search(const SearchRequest& req) {
  QueryResponse resp;
  metrics_.searches_by_model[static_cast<int>(req.options.model)].fetch_add(
      1, std::memory_order_relaxed);
  Result<RelationPtr> rows = RunAdmitted(
      req.request, &resp.stats, &resp.trace, "search",
      [&] { return req.collection + " " + req.query; },
      [&]() -> Result<RelationPtr> {
        // A live-written collection with a dirty delta takes the fused
        // two-lane path: the pinned version stays consistent for the
        // whole query no matter how many writes land meanwhile. With a
        // clean delta the compacted relation/index are already
        // registered, so the ordinary path below serves them.
        if (ingest::LiveTable* live = FindLive(req.collection)) {
          ingest::CatalogVersionPtr version = live->Pin();
          if (version->delta->dirty()) {
            PruningStats ps;
            Result<RelationPtr> r =
                live->Search(version, req.query, req.options, &ps);
            resp.stats.search.docs_scored += ps.docs_scored;
            resp.stats.search.docs_skipped += ps.docs_skipped;
            resp.stats.search.blocks_skipped += ps.blocks_skipped;
            resp.stats.search.blocks_decoded += ps.blocks_decoded;
            resp.stats.search.decode_bytes += ps.decode_bytes;
            resp.stats.search.fused_path_used += 1;
            return r;
          }
        }
        SPINDLE_ASSIGN_OR_RETURN(RelationPtr docs,
                                 catalog_.Get(req.collection));
        // Same signature scheme the evaluator uses for base tables, so a
        // catalog replace invalidates the cached index.
        std::string sig =
            "tbl:" + req.collection + "@" +
            std::to_string(catalog_.Version(req.collection));
        return searcher_.Search(docs, sig, req.query, req.options,
                                &resp.stats.search);
      });
  if (!rows.ok()) return rows.status();
  resp.rows = std::move(rows).ValueOrDie();
  return resp;
}

namespace {

RelationPtr EpochRow(uint64_t epoch) {
  Schema schema({{"epoch", DataType::kInt64}});
  Result<RelationPtr> rel = Relation::Make(
      schema, {Column::MakeInt64({static_cast<int64_t>(epoch)})});
  return rel.ok() ? rel.MoveValueOrDie() : nullptr;
}

RelationPtr FlushRow(uint64_t epoch, int64_t docs) {
  Schema schema({{"epoch", DataType::kInt64}, {"docs", DataType::kInt64}});
  Result<RelationPtr> rel = Relation::Make(
      schema, {Column::MakeInt64({static_cast<int64_t>(epoch)}),
               Column::MakeInt64({docs})});
  return rel.ok() ? rel.MoveValueOrDie() : nullptr;
}

}  // namespace

Result<QueryResponse> QueryService::Write(const WriteRequest& req) {
  QueryResponse resp;
  Result<RelationPtr> rows = RunAdmitted(
      req.request, &resp.stats, &resp.trace, "write",
      [&] { return req.collection; }, [&]() -> Result<RelationPtr> {
        SPINDLE_ASSIGN_OR_RETURN(ingest::LiveTable * live,
                                 GetOrCreateLive(req.collection));
        const auto w0 = std::chrono::steady_clock::now();
        Result<uint64_t> epoch = live->Apply(req.op);
        if (!epoch.ok()) {
          metrics_.writes_rejected.fetch_add(1, std::memory_order_relaxed);
          return epoch.status();
        }
        // The write is searchable the moment Apply installs the next
        // version; the lag it took to get there is the freshness lag.
        metrics_.freshness_lag_us.Record(ElapsedUs(w0));
        metrics_.writes_total.fetch_add(1, std::memory_order_relaxed);
        // The epoch bump is what invalidates materialized SpinQL plans
        // over this collection (plan signatures embed the epoch).
        catalog_.BumpEpoch(req.collection);
        ingest::LiveTable::Stats s = live->stats();
        metrics_.delta_docs.store(s.delta_docs, std::memory_order_relaxed);
        metrics_.deleted_docs.store(s.deleted_docs,
                                    std::memory_order_relaxed);
        return EpochRow(epoch.ValueOrDie());
      });
  if (!rows.ok()) return rows.status();
  resp.rows = std::move(rows).ValueOrDie();
  return resp;
}

Result<QueryResponse> QueryService::Flush(const FlushRequest& req) {
  QueryResponse resp;
  Result<RelationPtr> rows = RunAdmitted(
      req.request, &resp.stats, &resp.trace, "flush",
      [&] { return req.collection; }, [&]() -> Result<RelationPtr> {
        ingest::LiveTable* live = FindLive(req.collection);
        if (live == nullptr) {
          // Never written: FLUSH is a no-op, but still validates the name.
          SPINDLE_ASSIGN_OR_RETURN(RelationPtr docs,
                                   catalog_.Get(req.collection));
          return FlushRow(0, static_cast<int64_t>(docs->num_rows()));
        }
        SPINDLE_RETURN_IF_ERROR(live->Flush());
        catalog_.BumpEpoch(req.collection);
        metrics_.delta_docs.store(0, std::memory_order_relaxed);
        metrics_.deleted_docs.store(0, std::memory_order_relaxed);
        ingest::CatalogVersionPtr version = live->Pin();
        return FlushRow(version->epoch,
                        static_cast<int64_t>(version->docs->num_rows()));
      });
  if (!rows.ok()) return rows.status();
  resp.rows = std::move(rows).ValueOrDie();
  return resp;
}

ingest::LiveTable::Stats QueryService::LiveStats(
    const std::string& collection) const {
  ingest::LiveTable* live = FindLive(collection);
  return live == nullptr ? ingest::LiveTable::Stats{} : live->stats();
}

Result<ingest::LiveTable*> QueryService::GetOrCreateLive(
    const std::string& collection) {
  {
    std::lock_guard<std::mutex> lock(live_mu_);
    auto it = live_.find(collection);
    if (it != live_.end()) return it->second.get();
  }
  // Built outside the registry lock: the first write pays an index
  // build (cache hit when the collection was already searched). Losing
  // a creation race just discards the duplicate table.
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr docs, catalog_.Get(collection));
  const std::string sig = "tbl:" + collection + "@" +
                          std::to_string(catalog_.Version(collection));
  SPINDLE_ASSIGN_OR_RETURN(TextIndexPtr index,
                           searcher_.GetOrBuildIndex(docs, sig));
  ingest::LiveTable::Options lopts;
  lopts.compact_threshold = opts_.compact_threshold;
  lopts.auto_compact = opts_.auto_compact;
  ingest::LiveTable::Hooks hooks;
  const std::string name = collection;
  hooks.on_install = [this, name](const RelationPtr& d,
                                  const TextIndexPtr& idx) {
    // Register-then-install keeps the ordinary Search path coherent: the
    // catalog version bump changes the index cache key, and the install
    // fills that key, so no query ever rebuilds the compacted index.
    catalog_.RegisterEncoded(name, d);
    searcher_.InstallIndex(
        "tbl:" + name + "@" + std::to_string(catalog_.Version(name)), idx);
  };
  hooks.on_compaction = [this](uint64_t, size_t) {
    metrics_.compactions.fetch_add(1, std::memory_order_relaxed);
  };
  if (opts_.trace_requests) {
    hooks.make_tracer = [] { return std::make_shared<obs::Tracer>(); };
    hooks.on_trace = [this](const std::shared_ptr<obs::Tracer>& t) {
      RetainTrace(t);
    };
  }
  SPINDLE_ASSIGN_OR_RETURN(
      std::unique_ptr<ingest::LiveTable> table,
      ingest::LiveTable::Make(collection, std::move(docs), std::move(index),
                              opts_.analyzer, lopts, std::move(hooks)));
  std::lock_guard<std::mutex> lock(live_mu_);
  auto [it, inserted] = live_.emplace(collection, std::move(table));
  (void)inserted;
  return it->second.get();
}

ingest::LiveTable* QueryService::FindLive(
    const std::string& collection) const {
  std::lock_guard<std::mutex> lock(live_mu_);
  auto it = live_.find(collection);
  return it == live_.end() ? nullptr : it->second.get();
}

void QueryService::RetainTrace(
    const std::shared_ptr<const obs::Tracer>& tracer) {
  if (tracer == nullptr) return;
  trace_agg_.Merge(*tracer);
  std::lock_guard<std::mutex> lock(trace_mu_);
  trace_log_.push_back(tracer);
  while (trace_log_.size() > opts_.trace_log_capacity &&
         !trace_log_.empty()) {
    trace_log_.pop_front();
  }
}

Result<QueryResponse> QueryService::SearchSharded(
    const ShardSearchRequest& req) {
  QueryResponse resp;
  metrics_.searches_by_model[static_cast<int>(req.options.model)].fetch_add(
      1, std::memory_order_relaxed);
  Result<RelationPtr> rows = RunAdmitted(
      req.request, &resp.stats, &resp.trace, "searchg",
      [&] { return req.collection; }, [&]() -> Result<RelationPtr> {
        SPINDLE_ASSIGN_OR_RETURN(RelationPtr docs,
                                 catalog_.Get(req.collection));
        std::string sig =
            "tbl:" + req.collection + "@" +
            std::to_string(catalog_.Version(req.collection));
        return searcher_.SearchSharded(docs, sig, req.global, req.options,
                                       &resp.stats.search);
      });
  if (!rows.ok()) return rows.status();
  resp.rows = std::move(rows).ValueOrDie();
  return resp;
}

Status QueryService::SetGlobalStats(const std::string& collection,
                                    shard::GlobalStatsPtr stats) {
  if (stats == nullptr) {
    return Status::InvalidArgument("SetGlobalStats: null stats");
  }
  const std::string sig = searcher_.analyzer_options().Signature();
  if (stats->analyzer_signature() != sig) {
    return Status::InvalidArgument(
        "global statistics analyzer " + stats->analyzer_signature() +
        " does not match the service analyzer " + sig);
  }
  global_stats_[collection] = std::move(stats);
  return Status::OK();
}

Result<shard::GlobalStatsPtr> QueryService::ComputeLocalStats(
    const std::string& collection) {
  if (ingest::LiveTable* live = FindLive(collection)) {
    ingest::CatalogVersionPtr version = live->Pin();
    if (version->delta->dirty()) {
      return Status::InvalidArgument(
          "collection '" + collection +
          "' has pending live writes; FLUSH before refreshing statistics");
    }
  }
  SPINDLE_ASSIGN_OR_RETURN(RelationPtr docs, catalog_.Get(collection));
  const std::string sig = "tbl:" + collection + "@" +
                          std::to_string(catalog_.Version(collection));
  SPINDLE_ASSIGN_OR_RETURN(TextIndexPtr index,
                           searcher_.GetOrBuildIndex(docs, sig));
  return shard::GlobalStats::FromIndex(*index);
}

shard::GlobalStatsPtr QueryService::GetGlobalStats(
    const std::string& collection) const {
  auto it = global_stats_.find(collection);
  return it == global_stats_.end() ? nullptr : it->second;
}

Result<QueryResponse> QueryService::EvalSpinql(const SpinqlRequest& req) {
  QueryResponse resp;
  Result<RelationPtr> rows = RunAdmitted(
      req.request, &resp.stats, &resp.trace, "spinql",
      [&] { return req.text; }, [&]() -> Result<RelationPtr> {
        Result<ProbRelation> r = evaluator_.EvalExpression(req.text);
        if (!r.ok()) return r.status();
        return r.ValueOrDie().rel();
      });
  if (!rows.ok()) return rows.status();
  resp.rows = std::move(rows).ValueOrDie();
  return resp;
}

}  // namespace server
}  // namespace spindle
