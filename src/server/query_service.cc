#include "server/query_service.h"

#include <chrono>
#include <exception>

#include "exec/exec_context.h"

namespace spindle {
namespace server {

namespace {

uint64_t ElapsedUs(std::chrono::steady_clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

QueryService::QueryService(QueryServiceOptions options)
    : opts_(options),
      cache_(options.cache_budget_bytes),
      searcher_(options.analyzer),
      evaluator_(&catalog_, &cache_),
      admission_(options.admission) {}

void QueryService::RegisterCollection(const std::string& name,
                                      RelationPtr docs) {
  catalog_.RegisterEncoded(name, std::move(docs));
}

RequestContext QueryService::MakeContext(const RequestOptions& ro) const {
  RequestContext rc;
  rc.token = ro.token != nullptr ? ro.token
                                 : std::make_shared<CancelToken>();
  rc.priority = ro.priority;
  int64_t ms = ro.deadline_ms != 0 ? ro.deadline_ms
                                   : opts_.default_deadline_ms;
  if (ms > 0) {
    rc.deadline =
        RequestContext::Clock::now() + std::chrono::milliseconds(ms);
  }
  return rc;
}

Result<RelationPtr> QueryService::RunAdmitted(
    const RequestOptions& ro, RequestStats* stats,
    const std::function<Result<RelationPtr>()>& body) {
  const auto t0 = std::chrono::steady_clock::now();
  metrics_.requests_total.fetch_add(1, std::memory_order_relaxed);
  RequestContext rc = MakeContext(ro);

  auto finish = [&](const Status& st) {
    const uint64_t us = ElapsedUs(t0);
    stats->latency_us = us;
    metrics_.latency_us.Record(us);
    metrics_.queue_wait_us.Record(stats->queue_wait_us);
    switch (st.code()) {
      case StatusCode::kOk:
        metrics_.requests_ok.fetch_add(1, std::memory_order_relaxed);
        break;
      case StatusCode::kDeadlineExceeded:
        metrics_.requests_deadline_exceeded.fetch_add(
            1, std::memory_order_relaxed);
        break;
      case StatusCode::kCancelled:
        metrics_.requests_cancelled.fetch_add(1, std::memory_order_relaxed);
        break;
      case StatusCode::kOverloaded:
        metrics_.requests_overloaded.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        metrics_.requests_error.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  };

  Status admitted = admission_.Admit(rc, &stats->queue_wait_us);
  if (!admitted.ok()) {
    finish(admitted);
    return admitted;
  }

  Result<RelationPtr> out = [&]() -> Result<RelationPtr> {
    // The ambient request context is what every cancellation point in the
    // engine consults; the exec context bounds per-query parallelism.
    ScopedRequestContext request_scope(rc);
    std::unique_ptr<ScopedExecContext> exec_scope;
    if (opts_.threads > 0) {
      exec_scope =
          std::make_unique<ScopedExecContext>(ExecContext(opts_.threads));
    }
    // Exception firewall: the engine is Status-based, but a stray throw
    // from malformed input must degrade to one failed request, not a
    // terminated service.
    try {
      return body();
    } catch (const std::exception& e) {
      return Status::Internal(std::string("uncaught exception: ") +
                              e.what());
    } catch (...) {
      return Status::Internal("uncaught non-standard exception");
    }
  }();
  admission_.Release();

  // Roll this request's work counters into the service totals.
  metrics_.docs_scored.fetch_add(stats->search.docs_scored,
                                 std::memory_order_relaxed);
  metrics_.docs_skipped.fetch_add(stats->search.docs_skipped,
                                  std::memory_order_relaxed);
  metrics_.index_hits.fetch_add(stats->search.index_hits,
                                std::memory_order_relaxed);
  metrics_.index_misses.fetch_add(stats->search.index_misses,
                                  std::memory_order_relaxed);

  finish(out.ok() ? Status::OK() : out.status());
  return out;
}

std::string QueryService::MetricsJson() {
  // The materialization cache keeps its own internally-locked counters;
  // mirror them into the snapshot so one JSON object tells the whole
  // story.
  MaterializationCache::Stats cs = cache_.stats();
  metrics_.cache_hits.store(cs.hits, std::memory_order_relaxed);
  metrics_.cache_misses.store(cs.misses, std::memory_order_relaxed);
  return metrics_.SnapshotJson();
}

Result<QueryResponse> QueryService::Search(const SearchRequest& req) {
  QueryResponse resp;
  Result<RelationPtr> rows = RunAdmitted(
      req.request, &resp.stats, [&]() -> Result<RelationPtr> {
        SPINDLE_ASSIGN_OR_RETURN(RelationPtr docs,
                                 catalog_.Get(req.collection));
        // Same signature scheme the evaluator uses for base tables, so a
        // catalog replace invalidates the cached index.
        std::string sig =
            "tbl:" + req.collection + "@" +
            std::to_string(catalog_.Version(req.collection));
        return searcher_.Search(docs, sig, req.query, req.options,
                                &resp.stats.search);
      });
  if (!rows.ok()) return rows.status();
  resp.rows = std::move(rows).ValueOrDie();
  return resp;
}

Result<QueryResponse> QueryService::EvalSpinql(const SpinqlRequest& req) {
  QueryResponse resp;
  Result<RelationPtr> rows = RunAdmitted(
      req.request, &resp.stats, [&]() -> Result<RelationPtr> {
        Result<ProbRelation> r = evaluator_.EvalExpression(req.text);
        if (!r.ok()) return r.status();
        return r.ValueOrDie().rel();
      });
  if (!rows.ok()) return rows.status();
  resp.rows = std::move(rows).ValueOrDie();
  return resp;
}

}  // namespace server
}  // namespace spindle
