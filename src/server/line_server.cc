#include "server/line_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "shard/wire.h"

namespace spindle {
namespace server {

namespace {

/// One wire field from a cell: float64 printed with %.17g so the client
/// reparses the exact double; strings escape the protocol's framing
/// characters.
std::string FieldOf(const Column& col, size_t row) {
  switch (col.type()) {
    case DataType::kInt64:
      return std::to_string(col.Int64At(row));
    case DataType::kFloat64: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", col.Float64At(row));
      return buf;
    }
    case DataType::kString: {
      const std::string& s = col.StringAt(row);
      std::string out;
      out.reserve(s.size());
      for (char c : s) {
        if (c == '\\') {
          out += "\\\\";
        } else if (c == '\t') {
          out += "\\t";
        } else if (c == '\n') {
          out += "\\n";
        } else {
          out.push_back(c);
        }
      }
      return out;
    }
  }
  return "";
}

std::string SanitizeMessage(const std::string& msg) {
  std::string out;
  out.reserve(msg.size());
  for (char c : msg) out.push_back((c == '\n' || c == '\t') ? ' ' : c);
  return out;
}

}  // namespace

std::vector<std::string> WireSplitLines(const std::string& text) {
  std::vector<std::string> rows;
  size_t start = 0;
  while (start < text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      rows.push_back(text.substr(start));
      break;
    }
    rows.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return rows;
}

std::string WireErrLine(const Status& st) {
  return std::string("ERR ") + StatusCodeName(st.code()) + " " +
         SanitizeMessage(st.message()) + "\n";
}

/// `trace_id` != 0 appends a " trace=<id>" token, `partial` a
/// " partial=1" token after the row count — existing clients parse the
/// count with strtoll and stop at the space, so both extensions are
/// backward compatible.
std::string WireOkBlock(const std::vector<std::string>& rows,
                        uint64_t trace_id, bool partial) {
  std::string out = "OK " + std::to_string(rows.size());
  if (trace_id != 0) out += " trace=" + std::to_string(trace_id);
  if (partial) out += " partial=1";
  out += "\n";
  for (const std::string& r : rows) {
    out += r;
    out += "\n";
  }
  return out;
}

std::string WireTakeWord(std::string* rest) {
  size_t start = rest->find_first_not_of(' ');
  if (start == std::string::npos) {
    rest->clear();
    return "";
  }
  size_t end = rest->find(' ', start);
  std::string word = end == std::string::npos
                         ? rest->substr(start)
                         : rest->substr(start, end - start);
  *rest = end == std::string::npos ? "" : rest->substr(end + 1);
  size_t lead = rest->find_first_not_of(' ');
  if (lead == std::string::npos) {
    rest->clear();
  } else if (lead > 0) {
    *rest = rest->substr(lead);
  }
  return word;
}

bool WireParseInt64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno == ERANGE || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

std::vector<std::string> SerializeRows(const Relation& rel) {
  std::vector<std::string> rows;
  rows.reserve(rel.num_rows());
  for (size_t r = 0; r < rel.num_rows(); ++r) {
    std::string line;
    for (size_t c = 0; c < rel.num_columns(); ++c) {
      if (c > 0) line += "\t";
      line += FieldOf(rel.column(c), r);
    }
    rows.push_back(std::move(line));
  }
  return rows;
}

std::string QueryServiceHandler::Handle(const std::string& cmd,
                                        std::string rest) {
  if (cmd == "STATS") return WireOkBlock({service_->MetricsJson()});
  if (cmd == "METRICS") {
    return WireOkBlock(WireSplitLines(service_->MetricsPrometheus()));
  }
  if (cmd == "HEALTH") return WireOkBlock({service_->HealthRow()});
  if (cmd == "SLOWLOG") return WireOkBlock(service_->SlowLogRows());
  if (cmd == "TRACEPULL") {
    const std::string word = WireTakeWord(&rest);
    errno = 0;
    char* end = nullptr;
    unsigned long long id = std::strtoull(word.c_str(), &end, 16);
    if (word.empty() || !rest.empty() || errno != 0 ||
        end != word.c_str() + word.size() || id == 0) {
      return WireErrLine(
          Status::InvalidArgument("usage: TRACEPULL <trace id (hex)>"));
    }
    Result<std::vector<std::string>> rows = service_->PullTraceRows(id);
    if (!rows.ok()) return WireErrLine(rows.status());
    return WireOkBlock(rows.ValueOrDie());
  }

  // An optional leading `tid=<hex>:<span>` token joins this request to a
  // coordinator-minted distributed trace. Stripped here — before
  // command-specific parsing — so every command accepts it and command
  // grammars stay unchanged.
  uint64_t foreign_trace = 0, foreign_span = 0;
  if (rest.compare(0, 4, "tid=") == 0) {
    const std::string token = WireTakeWord(&rest);
    if (!shard::ParseTraceToken(token, &foreign_trace, &foreign_span)) {
      return WireErrLine(
          Status::InvalidArgument("malformed trace token: " + token));
    }
  }

  if (cmd == "SEARCH") {
    SearchRequest req;
    req.collection = WireTakeWord(&rest);
    int64_t k = 0, deadline_ms = 0;
    if (req.collection.empty() || !WireParseInt64(WireTakeWord(&rest), &k) ||
        !WireParseInt64(WireTakeWord(&rest), &deadline_ms) || rest.empty()) {
      return WireErrLine(Status::InvalidArgument(
          "usage: SEARCH <collection> <k> <deadline_ms> <query...>"));
    }
    if (k < 0) {
      return WireErrLine(Status::InvalidArgument("k must be >= 0"));
    }
    req.query = rest;
    req.options.top_k = static_cast<size_t>(k);
    req.request.deadline_ms = deadline_ms;
    req.request.foreign_trace_id = foreign_trace;
    req.request.foreign_parent_span = foreign_span;
    Result<QueryResponse> resp = service_->Search(req);
    if (!resp.ok()) return WireErrLine(resp.status());
    return WireOkBlock(SerializeRows(*resp.ValueOrDie().rows),
                       resp.ValueOrDie().stats.trace_id);
  }

  if (cmd == "SEARCHG") {
    // Coordinator-issued sharded search: the query terms arrive already
    // analyzed, with the full-collection statistics to score under.
    ShardSearchRequest req;
    int64_t deadline_ms = 0;
    Status st = shard::ParseSearchG(std::move(rest), &req.collection,
                                    &deadline_ms, &req.options, &req.global);
    if (!st.ok()) return WireErrLine(st);
    req.request.deadline_ms = deadline_ms;
    req.request.foreign_trace_id = foreign_trace;
    req.request.foreign_parent_span = foreign_span;
    Result<QueryResponse> resp = service_->SearchSharded(req);
    if (!resp.ok()) return WireErrLine(resp.status());
    return WireOkBlock(SerializeRows(*resp.ValueOrDie().rows),
                       resp.ValueOrDie().stats.trace_id);
  }

  if (cmd == "GSTATS") {
    const std::string collection = WireTakeWord(&rest);
    if (collection.empty() || !rest.empty()) {
      return WireErrLine(
          Status::InvalidArgument("usage: GSTATS <collection>"));
    }
    shard::GlobalStatsPtr stats = service_->GetGlobalStats(collection);
    if (stats == nullptr) {
      return WireErrLine(Status::NotFound(
          "no global statistics for collection: " + collection));
    }
    return WireOkBlock(stats->ToWireRows());
  }

  if (cmd == "ADD" || cmd == "UPDATE" || cmd == "DELETE") {
    // Live writes share one grammar: <collection> <docID> [text...].
    // The parser owns validation (DELETE rejects trailing text, the
    // docID must be a full integer); the epoch row it returns is the
    // client's freshness token.
    Result<ingest::ParsedWrite> parsed =
        ingest::ParseWriteCommand(cmd + " " + rest);
    if (!parsed.ok()) return WireErrLine(parsed.status());
    WriteRequest req;
    req.collection = parsed.ValueOrDie().collection;
    req.op = std::move(parsed.ValueOrDie().op);
    req.request.foreign_trace_id = foreign_trace;
    req.request.foreign_parent_span = foreign_span;
    Result<QueryResponse> resp = service_->Write(req);
    if (!resp.ok()) return WireErrLine(resp.status());
    const Relation& rows = *resp.ValueOrDie().rows;
    return WireOkBlock(
        {"epoch=" + std::to_string(rows.column(0).Int64At(0))},
        resp.ValueOrDie().stats.trace_id);
  }

  if (cmd == "FLUSH") {
    FlushRequest req;
    req.collection = WireTakeWord(&rest);
    if (req.collection.empty() || !rest.empty()) {
      return WireErrLine(Status::InvalidArgument("usage: FLUSH <collection>"));
    }
    req.request.foreign_trace_id = foreign_trace;
    req.request.foreign_parent_span = foreign_span;
    Result<QueryResponse> resp = service_->Flush(req);
    if (!resp.ok()) return WireErrLine(resp.status());
    const Relation& rows = *resp.ValueOrDie().rows;
    return WireOkBlock(
        {"epoch=" + std::to_string(rows.column(0).Int64At(0)) +
         " docs=" + std::to_string(rows.column(1).Int64At(0))},
        resp.ValueOrDie().stats.trace_id);
  }

  if (cmd == "GSTATSL") {
    // Local-partition statistics, recomputed from the current index —
    // what a coordinator merges across shards after a FLUSH to refresh
    // the shipped full-collection statistics.
    const std::string collection = WireTakeWord(&rest);
    if (collection.empty() || !rest.empty()) {
      return WireErrLine(
          Status::InvalidArgument("usage: GSTATSL <collection>"));
    }
    Result<shard::GlobalStatsPtr> stats =
        service_->ComputeLocalStats(collection);
    if (!stats.ok()) return WireErrLine(stats.status());
    return WireOkBlock(stats.ValueOrDie()->ToWireRows());
  }

  if (cmd == "SPINQL") {
    SpinqlRequest req;
    int64_t deadline_ms = 0;
    if (!WireParseInt64(WireTakeWord(&rest), &deadline_ms) || rest.empty()) {
      return WireErrLine(Status::InvalidArgument(
          "usage: SPINQL <deadline_ms> <expression...>"));
    }
    req.text = rest;
    req.request.deadline_ms = deadline_ms;
    req.request.foreign_trace_id = foreign_trace;
    req.request.foreign_parent_span = foreign_span;
    Result<QueryResponse> resp = service_->EvalSpinql(req);
    if (!resp.ok()) return WireErrLine(resp.status());
    return WireOkBlock(SerializeRows(*resp.ValueOrDie().rows),
                       resp.ValueOrDie().stats.trace_id);
  }

  if (cmd == "TRACE") {
    // Executes the expression with per-request tracing forced on and
    // returns the rendered operator tree (per-node wall time, rows,
    // cache annotations) instead of the result rows.
    SpinqlRequest req;
    int64_t deadline_ms = 0;
    if (!WireParseInt64(WireTakeWord(&rest), &deadline_ms) || rest.empty()) {
      return WireErrLine(Status::InvalidArgument(
          "usage: TRACE <deadline_ms> <expression...>"));
    }
    req.text = rest;
    req.request.deadline_ms = deadline_ms;
    req.request.trace = true;
    req.request.foreign_trace_id = foreign_trace;
    req.request.foreign_parent_span = foreign_span;
    Result<QueryResponse> resp = service_->EvalSpinql(req);
    if (!resp.ok()) return WireErrLine(resp.status());
    const QueryResponse& qr = resp.ValueOrDie();
    if (qr.trace == nullptr) {
      return WireErrLine(
          Status::Internal("traced request produced no trace"));
    }
    return WireOkBlock(WireSplitLines(qr.trace->RenderTree()),
                       qr.stats.trace_id);
  }

  return WireErrLine(Status::InvalidArgument("unknown command: " + cmd));
}

LineServer::LineServer(QueryService* service, LineServerOptions options)
    : owned_handler_(std::make_unique<QueryServiceHandler>(service)),
      handler_(owned_handler_.get()),
      opts_(std::move(options)) {}

LineServer::LineServer(LineHandler* handler, LineServerOptions options)
    : handler_(handler), opts_(std::move(options)) {}

LineServer::~LineServer() { Stop(); }

Status LineServer::Start() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(opts_.port));
  if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad listen host: " + opts_.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Status::Internal(std::string("bind: ") +
                                 std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 128) != 0) {
    Status st = Status::Internal(std::string("listen: ") +
                                 std::strerror(errno));
    ::close(fd);
    return st;
  }
  listen_fd_.store(fd, std::memory_order_release);
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound),
                    &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void LineServer::AcceptLoop() {
  // Loaded once: Start() published the fd before spawning this thread,
  // and Stop() invalidates the member (not this copy) when it closes the
  // socket — accept() then fails and the loop exits via stopping_.
  const int listen_fd = listen_fd_.load(std::memory_order_acquire);
  for (;;) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) return;
      if (errno == EINTR) continue;
      return;  // listener closed
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    conn_fds_.insert(fd);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void LineServer::ServeConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    size_t nl;
    while ((nl = buffer.find('\n')) == std::string::npos) {
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        open = false;
        break;
      }
      buffer.append(chunk, static_cast<size_t>(n));
    }
    if (!open) break;
    std::string line = buffer.substr(0, nl);
    buffer.erase(0, nl + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();

    bool close_connection = false;
    std::string response = HandleLine(line, &close_connection);
    size_t sent = 0;
    while (sent < response.size()) {
      ssize_t n = ::send(fd, response.data() + sent,
                         response.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        open = false;
        break;
      }
      sent += static_cast<size_t>(n);
    }
    if (close_connection) break;
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(mu_);
  conn_fds_.erase(fd);
}

std::string LineServer::HandleLine(const std::string& line,
                                   bool* close_connection) {
  std::string rest = line;
  std::string cmd = WireTakeWord(&rest);

  // Protocol-level commands, independent of the backing handler.
  if (cmd == "PING") return WireOkBlock({});
  if (cmd == "QUIT") {
    *close_connection = true;
    return WireOkBlock({});
  }
  if (cmd == "SHUTDOWN") {
    *close_connection = true;
    RequestShutdown();
    return WireOkBlock({});
  }
  return handler_->Handle(cmd, std::move(rest));
}

void LineServer::WaitForShutdown() {
  // Timed poll rather than a pure cv wait: a signal handler may only set
  // an atomic (see spindle_serve_main.cc), never notify a cv.
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_.load(std::memory_order_acquire)) {
    shutdown_cv_.wait_for(lock, std::chrono::milliseconds(100));
  }
}

void LineServer::RequestShutdown() {
  stopping_.store(true, std::memory_order_release);
  shutdown_cv_.notify_all();
}

void LineServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
  }
  RequestShutdown();
  // Unblock accept(): shutdown then close the listener. exchange() makes
  // the close idempotent and race-free against the accept loop.
  int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Unblock connection reads, then join their threads.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    threads.swap(conn_threads_);
    started_ = false;
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

}  // namespace server
}  // namespace spindle
