/// \file spindle_client_main.cc
/// \brief The spindle_client binary: sends scripted request lines to a
/// running spindle_serve and prints the responses. Exits non-zero if any
/// request fails, so CI can assert on it.
///
///   spindle_client --port=7654 PING "SEARCH docs 5 0 word7 word11" STATS
///   spindle_client --port=7654 --allow-err "SEARCH docs 5 1 word7" SHUTDOWN
///
/// Flags:
///   --host=ADDR   server address (default 127.0.0.1)
///   --port=N      server port (required)
///   --allow-err   treat ERR responses as expected output, not failure
///                 (transport errors still fail)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/client.h"

namespace {

bool FlagValue(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  bool allow_err = false;
  int first_command = argc;

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (FlagValue(argv[i], "--host", &v)) {
      host = v;
    } else if (FlagValue(argv[i], "--port", &v)) {
      port = std::atoi(v.c_str());
    } else if (std::strcmp(argv[i], "--allow-err") == 0) {
      allow_err = true;
    } else {
      first_command = i;
      break;
    }
  }
  if (port <= 0 || first_command >= argc) {
    std::fprintf(stderr,
                 "usage: spindle_client --port=N [--host=A] [--allow-err] "
                 "<request line>...\n");
    return 2;
  }

  spindle::server::LineClient client;
  spindle::Status st = client.Connect(host, port);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  int failures = 0;
  for (int i = first_command; i < argc; ++i) {
    std::printf(">> %s\n", argv[i]);
    auto resp = client.Call(argv[i]);
    if (!resp.ok()) {
      std::printf("ERR %s %s\n",
                  spindle::StatusCodeName(resp.status().code()),
                  resp.status().message().c_str());
      bool transport = resp.status().code() == spindle::StatusCode::kInternal;
      if (!allow_err || transport) ++failures;
      continue;
    }
    const auto& wire = resp.ValueOrDie();
    if (wire.trace_id != 0) {
      std::printf("OK %zu trace=%llu\n", wire.rows.size(),
                  static_cast<unsigned long long>(wire.trace_id));
    } else {
      std::printf("OK %zu\n", wire.rows.size());
    }
    for (const std::string& row : wire.rows) std::printf("%s\n", row.c_str());
  }
  return failures == 0 ? 0 : 1;
}
