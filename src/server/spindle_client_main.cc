/// \file spindle_client_main.cc
/// \brief The spindle_client binary: sends scripted request lines to a
/// running spindle_serve or spindle_coord and prints the responses.
/// Exits non-zero if any request fails, so CI can assert on it.
///
///   spindle_client --port=7654 PING "SEARCH docs 5 0 word7 word11" STATS
///   spindle_client --port=7654 --allow-err "SEARCH docs 5 1 word7" SHUTDOWN
///
/// Flags:
///   --host=ADDR           server address (default 127.0.0.1)
///   --port=N              server port (required)
///   --allow-err           treat ERR responses as expected output, not
///                         failure (transport errors still fail)
///   --connect-timeout-ms=N / --connect-retries=N
///                         bounded connect with backoff (for scripts
///                         racing a server that is still starting)
///   --read-timeout-ms=N   fail instead of hanging on a dead server
///
/// Exit codes (scripts branch on the failure class):
///   0  every request succeeded (or --allow-err covered its ERRs)
///   1  transport / connection failure, or a generic ERR
///   2  usage error
///   3  a request was shed with ERR Overloaded
///   4  a request exceeded its deadline (ERR DeadlineExceeded)
///   5  backend unavailable (connect failed, read timed out, or a
///      coordinator answered ERR Unavailable — e.g. a dead shard under
///      --partial=fail)
/// When several requests fail differently, the highest code wins.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/client.h"

namespace {

bool FlagValue(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

int ExitCodeFor(const spindle::Status& st) {
  switch (st.code()) {
    case spindle::StatusCode::kOverloaded:
      return 3;
    case spindle::StatusCode::kDeadlineExceeded:
      return 4;
    case spindle::StatusCode::kUnavailable:
      return 5;
    default:
      return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  bool allow_err = false;
  int first_command = argc;
  spindle::server::LineClientOptions client_opts;

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (FlagValue(argv[i], "--host", &v)) {
      host = v;
    } else if (FlagValue(argv[i], "--port", &v)) {
      port = std::atoi(v.c_str());
    } else if (std::strcmp(argv[i], "--allow-err") == 0) {
      allow_err = true;
    } else if (FlagValue(argv[i], "--connect-timeout-ms", &v)) {
      client_opts.connect_timeout_ms = std::atoll(v.c_str());
    } else if (FlagValue(argv[i], "--connect-retries", &v)) {
      client_opts.connect_retries = std::atoi(v.c_str());
    } else if (FlagValue(argv[i], "--read-timeout-ms", &v)) {
      client_opts.read_timeout_ms = std::atoll(v.c_str());
    } else {
      first_command = i;
      break;
    }
  }
  if (port <= 0 || first_command >= argc) {
    std::fprintf(stderr,
                 "usage: spindle_client --port=N [--host=A] [--allow-err] "
                 "[--connect-timeout-ms=N] [--connect-retries=N] "
                 "[--read-timeout-ms=N] <request line>...\n");
    return 2;
  }

  spindle::server::LineClient client(client_opts);
  spindle::Status st = client.Connect(host, port);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return ExitCodeFor(st);
  }

  int exit_code = 0;
  for (int i = first_command; i < argc; ++i) {
    std::printf(">> %s\n", argv[i]);
    auto resp = client.Call(argv[i]);
    if (!resp.ok()) {
      std::printf("ERR %s %s\n",
                  spindle::StatusCodeName(resp.status().code()),
                  resp.status().message().c_str());
      // A transport-level failure (kInternal: connection lost; or
      // kUnavailable from a read timeout, which also closed the socket)
      // is never "expected output" — --allow-err covers server ERRs only.
      const spindle::StatusCode code = resp.status().code();
      const bool transport =
          code == spindle::StatusCode::kInternal || !client.connected();
      if (!allow_err || transport) {
        exit_code = std::max(exit_code, ExitCodeFor(resp.status()));
      }
      if (!client.connected()) break;  // nothing further can be sent
      continue;
    }
    const auto& wire = resp.ValueOrDie();
    std::string header = "OK " + std::to_string(wire.rows.size());
    if (wire.trace_id != 0) {
      header += " trace=" + std::to_string(wire.trace_id);
    }
    if (wire.partial) header += " partial=1";
    std::printf("%s\n", header.c_str());
    for (const std::string& row : wire.rows) std::printf("%s\n", row.c_str());
  }
  return exit_code;
}
