/// \file admission.h
/// \brief Admission control for the query service: bounds in-flight
/// queries, queues the overflow FIFO per priority class, and sheds load
/// with Status::Overloaded once the queue cap is hit.
///
/// Guarantees:
///  - at most Options::max_inflight requests execute concurrently;
///  - within a priority class, waiters are admitted in strict arrival
///    order (FIFO fairness — no barging, even by the fast path);
///  - kInteractive waiters are always admitted before kBatch waiters;
///  - arrival when the queue already holds Options::max_queue waiters
///    returns Overloaded immediately (bounded memory, explicit shedding,
///    never unbounded queuing);
///  - a queued request whose deadline passes (or whose token is
///    cancelled) leaves the queue and returns the token's status instead
///    of occupying a slot it can no longer use.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "common/status.h"
#include "exec/request_context.h"

namespace spindle {
namespace server {

class AdmissionController {
 public:
  struct Options {
    /// Maximum concurrently executing requests.
    int max_inflight = 4;
    /// Maximum queued (admitted-pending) requests across both priority
    /// classes; arrivals beyond this shed with Overloaded.
    size_t max_queue = 64;
  };

  explicit AdmissionController(Options options) : opts_(options) {}

  /// \brief Blocks until this request may execute, then claims a slot.
  /// Returns OK (caller MUST pair with Release()), Overloaded (shed on
  /// arrival, no slot claimed), or the request's cancellation status
  /// (deadline passed / token cancelled while queued, no slot claimed).
  /// `queue_wait_us`, when non-null, receives the time spent queued.
  Status Admit(const RequestContext& rc, uint64_t* queue_wait_us = nullptr);

  /// \brief Returns the slot claimed by a successful Admit().
  void Release();

  int inflight() const {
    std::lock_guard<std::mutex> lock(mu_);
    return inflight_;
  }
  size_t queued() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queues_[0].size() + queues_[1].size();
  }
  uint64_t shed_total() const {
    std::lock_guard<std::mutex> lock(mu_);
    return shed_total_;
  }

  const Options& options() const { return opts_; }

 private:
  /// True when `id` is the next waiter to admit: the head of the highest
  /// priority non-empty queue. Caller holds mu_.
  bool IsNext(uint64_t id) const;
  /// Removes `id` from its queue (abandoned waiter). Caller holds mu_.
  void RemoveWaiter(uint64_t id, int pri);

  Options opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int inflight_ = 0;
  uint64_t next_id_ = 1;
  uint64_t shed_total_ = 0;
  /// Waiter ids in arrival order, one queue per priority class
  /// (index = static_cast<int>(Priority)).
  std::deque<uint64_t> queues_[2];
};

}  // namespace server
}  // namespace spindle
